package relatrust_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"relatrust"
)

const peopleCSV = `Name,Dept,Floor,Phone
ann,eng,3,111
bob,eng,3,222
cam,ops,5,333
dee,ops,5,444
eli,eng,3,555
`

func loadPeople(t *testing.T) *relatrust.Instance {
	t.Helper()
	in, err := relatrust.ReadCSV(strings.NewReader(peopleCSV))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestFacadeDiscoverFindsDeptFloor(t *testing.T) {
	in := loadPeople(t)
	d, err := relatrust.NewDiscoverer(in, relatrust.DiscoverOptions{MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	found, err := d.Discover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var hasDeptFloor bool
	for _, f := range found {
		if f.FD.LHS == relatrust.NewAttrSet(1) && f.FD.RHS == 2 {
			hasDeptFloor = true
			if f.Error != 0 {
				t.Errorf("exact FD reported error %v", f.Error)
			}
		}
	}
	if !hasDeptFloor {
		t.Fatalf("Dept->Floor not discovered: %v", relatrust.Sigma(found).Format(in.Schema))
	}
	// Sigma bridges into the repair facade without further conversion.
	if !relatrust.Satisfies(in, relatrust.Sigma(found)) {
		t.Fatal("discovered FDs do not hold on their own instance")
	}
}

func TestFacadeDiscoverStreamMatchesBatch(t *testing.T) {
	in := loadPeople(t)
	sess := relatrust.NewSession(in)
	d, err := relatrust.NewDiscoverer(in, relatrust.DiscoverOptions{MaxLHS: 2, Session: sess})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []relatrust.DiscoveredFD
	for f, err := range d.Stream(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, f)
	}
	batch, err := d.Discover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(batch) {
		t.Fatalf("stream yielded %d FDs, batch %d", len(streamed), len(batch))
	}
	// Batch is sorted; the stream is in mining order — same set.
	seen := map[string]bool{}
	for _, f := range streamed {
		seen[f.FD.String()] = true
	}
	for _, f := range batch {
		if !seen[f.FD.String()] {
			t.Fatalf("batch FD %v missing from stream", f.FD)
		}
	}
}

func TestFacadeDiscoverStreamEarlyBreak(t *testing.T) {
	in := loadPeople(t)
	d, err := relatrust.NewDiscoverer(in, relatrust.DiscoverOptions{MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for _, err := range d.Stream(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		got++
		break
	}
	if got != 1 {
		t.Fatalf("yielded %d after break", got)
	}
}

func TestFacadeDiscoverStructuredErrors(t *testing.T) {
	in := loadPeople(t)

	empty, err := relatrust.ReadCSV(strings.NewReader("A,B\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := relatrust.NewDiscoverer(empty, relatrust.DiscoverOptions{}); !errors.Is(err, relatrust.ErrEmptyInstance) {
		t.Fatalf("empty instance: err = %v, want ErrEmptyInstance", err)
	}

	var rangeErr *relatrust.AttrsRangeError
	if _, err := relatrust.NewDiscoverer(in, relatrust.DiscoverOptions{Attrs: relatrust.NewAttrSet(0, 9)}); !errors.As(err, &rangeErr) {
		t.Fatalf("out-of-range attrs: err = %v, want *AttrsRangeError", err)
	}
	if rangeErr.Attr != 9 || rangeErr.Width != 4 {
		t.Fatalf("AttrsRangeError = %+v", rangeErr)
	}

	if _, err := relatrust.NewDiscoverer(in, relatrust.DiscoverOptions{MaxError: -0.5}); err == nil {
		t.Fatal("negative MaxError accepted")
	}

	other := loadPeople(t)
	if _, err := relatrust.NewDiscoverer(in, relatrust.DiscoverOptions{Session: relatrust.NewSession(other)}); err == nil {
		t.Fatal("session over a different instance accepted")
	}

	// Cancellation surfaces the cause as the final yield.
	d, err := relatrust.NewDiscoverer(in, relatrust.DiscoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("gone away")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	var last error
	for _, err := range d.Stream(ctx) {
		last = err
	}
	if !errors.Is(last, cause) {
		t.Fatalf("cancelled stream: err = %v, want the cause", last)
	}
}

func TestFacadeDiscoverSessionReuse(t *testing.T) {
	in := loadPeople(t)
	sess := relatrust.NewSession(in)
	mine := func() []relatrust.DiscoveredFD {
		d, err := relatrust.NewDiscoverer(in, relatrust.DiscoverOptions{MaxLHS: 2, Session: sess})
		if err != nil {
			t.Fatal(err)
		}
		out, err := d.Discover(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first, second := mine(), mine()
	if len(first) != len(second) {
		t.Fatalf("warm run found %d FDs, cold %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("entry %d differs across shared-session runs: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestFacadeDiscoverMaxResults(t *testing.T) {
	in := loadPeople(t)
	d, err := relatrust.NewDiscoverer(in, relatrust.DiscoverOptions{MaxLHS: 2, MaxResults: 2})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := d.Discover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("batch yielded %d FDs, want 2", len(batch))
	}
	streamed := 0
	for _, err := range d.Stream(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		streamed++
	}
	if streamed != 2 {
		t.Fatalf("stream yielded %d FDs, want 2", streamed)
	}
}
