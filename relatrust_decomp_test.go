package relatrust_test

// Facade-layer pin of the conflict-hypergraph decomposition: the streamed
// frontier of a decomposed Repairer must equal, point for point and in
// order, the NoDecomposition frontier of the same instance, for worker
// counts 1 and 4 — on the CSV fixture and on a generated workload whose
// conflict graph splits into many components.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"relatrust"
)

// blockCSV builds a CSV whose Blk,A->B violations stay inside 4-row
// blocks, so the conflict graph decomposes into many small components.
func blockCSV(blocks int) string {
	var b strings.Builder
	b.WriteString("Blk,A,B,C\n")
	vals := []string{"x", "y"}
	for blk := 0; blk < blocks; blk++ {
		for r := 0; r < 4; r++ {
			fmt.Fprintf(&b, "b%d,%s,%s,c%d\n", blk, vals[r%2], vals[(r/2)%2], r%3)
		}
	}
	return b.String()
}

func TestFrontierDecompositionMatchesMonolithic(t *testing.T) {
	fixtures := []struct {
		name string
		csv  string
		fds  string
	}{
		{"cities", multiCSV, "City->ZIP; City->State"},
		{"many-components", blockCSV(12), "Blk,A->B"},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			in, err := relatrust.ReadCSV(strings.NewReader(fx.csv))
			if err != nil {
				t.Fatal(err)
			}
			sigma, err := relatrust.ParseFDs(in.Schema, fx.fds)
			if err != nil {
				t.Fatal(err)
			}

			collect := func(workers int, noDecomp bool) []*relatrust.Repair {
				rp, err := relatrust.NewRepairer(in, sigma, relatrust.Options{
					Workers:         workers,
					Seed:            7,
					NoDecomposition: noDecomp,
				})
				if err != nil {
					t.Fatal(err)
				}
				var out []*relatrust.Repair
				for r, err := range rp.Frontier(context.Background()) {
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, r)
				}
				return out
			}

			want := collect(1, true)
			if len(want) == 0 {
				t.Fatal("fixture produced an empty frontier")
			}
			for _, workers := range []int{1, 4} {
				got := collect(workers, false)
				if len(got) != len(want) {
					t.Fatalf("workers=%d: decomposed frontier has %d points, monolithic %d", workers, len(got), len(want))
				}
				for i := range want {
					if !equalRepair(want[i], got[i]) {
						t.Fatalf("workers=%d: frontier point %d differs (decomposed τ=%d δP=%d, monolithic τ=%d δP=%d)",
							workers, i, got[i].Tau, got[i].DeltaP, want[i].Tau, want[i].DeltaP)
					}
				}
			}
		})
	}
}
