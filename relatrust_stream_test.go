package relatrust_test

// Tests for the context-first streaming facade: the Repairer handle, the
// Frontier iterator's batch-equivalence pin, cancellation behavior (prompt
// return, no goroutine leaks, engine hygiene), and the structured errors.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"relatrust"

	"relatrust/internal/experiments"
	"relatrust/internal/gen"
	"relatrust/internal/repair"
	"relatrust/internal/search"
	"relatrust/internal/testkit"
	"relatrust/internal/weights"
)

// multiCSV violates City->ZIP and City->State several times, giving a
// frontier with multiple trust levels.
const multiCSV = `City,ZIP,State
Springfield,62701,IL
Springfield,62701,IL
Springfield,97477,OR
Shelbyville,46176,IN
Shelbyville,46176,TN
`

func loadMulti(t *testing.T) (*relatrust.Instance, relatrust.FDSet) {
	t.Helper()
	in, err := relatrust.ReadCSV(strings.NewReader(multiCSV))
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := relatrust.ParseFDs(in.Schema, "City->ZIP; City->State")
	if err != nil {
		t.Fatal(err)
	}
	return in, sigma
}

// equalRepair compares everything except Stats (streaming snapshots effort
// mid-sweep; batch stamps the final totals — documented divergence):
// FD-side bookkeeping, the changed cells, and the repaired values those
// cells received (variables compare by var-ness, V-instance semantics make
// their identities immaterial).
func equalRepair(a, b *relatrust.Repair) bool {
	if a.Tau != b.Tau || a.DeltaP != b.DeltaP || a.FDCost != b.FDCost ||
		!a.Sigma.Equal(b.Sigma) || a.Ext.Key() != b.Ext.Key() ||
		len(a.Data.Changed) != len(b.Data.Changed) {
		return false
	}
	for i := range a.Data.Changed {
		ca, cb := a.Data.Changed[i], b.Data.Changed[i]
		if ca != cb {
			return false
		}
		va := a.Data.Instance.Tuples[ca.Tuple][ca.Attr]
		vb := b.Data.Instance.Tuples[cb.Tuple][cb.Attr]
		if va.IsVar() != vb.IsVar() || (!va.IsVar() && !va.Equal(vb)) {
			return false
		}
	}
	return true
}

// TestFrontierMatchesBatchRunRange pins the acceptance criterion: the
// stream collected from Frontier(ctx) must equal, point for point and in
// order, the pre-Repairer batch path (repair.Session.RunRange with the
// equivalent config) — on a small CSV fixture and on a generated workload,
// sequential and parallel.
func TestFrontierMatchesBatchRunRange(t *testing.T) {
	type fixture struct {
		name  string
		in    *relatrust.Instance
		sigma relatrust.FDSet
	}
	var fixtures []fixture

	in, sigma := loadMulti(t)
	fixtures = append(fixtures, fixture{"csv", in, sigma})

	spec := gen.SubSpec(gen.CensusSpec(), 10)
	w, err := experiments.MakeWorkload(spec, gen.TwoFDs(spec), 300, 0.34, 0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	fixtures = append(fixtures, fixture{"census", w.Dirty, w.SigmaD})

	for _, f := range fixtures {
		for _, workers := range []int{1, 4} {
			// The batch oracle goes through the internal layer directly, so
			// this pin survives even though SuggestRepairs itself now
			// collects the stream.
			cfg := repair.Config{
				Weights: weights.NewDistinctCount(f.in),
				Seed:    7,
				Search:  search.Options{Workers: workers},
			}
			s, err := repair.NewSession(f.in, f.sigma, cfg)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := s.RunRange(context.Background(), 0, s.DeltaPOriginal())
			s.Close()
			if err != nil {
				t.Fatal(err)
			}

			rp, err := relatrust.NewRepairer(f.in, f.sigma, relatrust.Options{Seed: 7, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			var streamed []*relatrust.Repair
			for r, err := range rp.Frontier(context.Background()) {
				if err != nil {
					t.Fatal(err)
				}
				streamed = append(streamed, r)
			}

			if len(batch) == 0 {
				t.Fatalf("%s: empty frontier makes the pin vacuous", f.name)
			}
			if len(batch) != len(streamed) {
				t.Fatalf("%s workers=%d: batch %d repairs, stream %d", f.name, workers, len(batch), len(streamed))
			}
			for i := range batch {
				if !equalRepair(batch[i], streamed[i]) {
					t.Fatalf("%s workers=%d: repair %d diverges:\n batch  %v\n stream %v",
						f.name, workers, i, batch[i], streamed[i])
				}
			}
		}
	}
}

// TestFrontierEarlyBreak: breaking out of the range loop stops the sweep
// cleanly — no error surfaces, goroutines return to baseline, and the
// Repairer still serves a complete follow-up sweep.
func TestFrontierEarlyBreak(t *testing.T) {
	in, sigma := loadMulti(t)
	rp, err := relatrust.NewRepairer(in, sigma, relatrust.Options{Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	full := collect(t, rp)
	if len(full) < 2 {
		t.Fatalf("need a multi-point frontier, got %d", len(full))
	}

	baseline := runtime.NumGoroutine()
	got := 0
	for r, err := range rp.Frontier(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if r == nil {
			t.Fatal("nil repair without error")
		}
		got++
		break
	}
	if got != 1 {
		t.Fatalf("broke after one repair but saw %d", got)
	}
	testkit.WaitGoroutineBaseline(t, baseline)

	again := collect(t, rp)
	if len(again) != len(full) {
		t.Fatalf("follow-up sweep returned %d repairs, want %d", len(again), len(full))
	}
	for i := range full {
		if !equalRepair(full[i], again[i]) {
			t.Fatalf("repair %d diverges after an abandoned sweep", i)
		}
	}
}

// TestFrontierCancelMidSweep is the facade half of the cancellation
// criterion: cancelling during iteration yields errors.Is(err,
// context.Canceled) as the final pair, goroutines drain, and a session
// engine used by the cancelled call still serves a correct follow-up.
func TestFrontierCancelMidSweep(t *testing.T) {
	in, sigma := loadMulti(t)
	sess := relatrust.NewSession(in)
	opt := relatrust.Options{Seed: 1, Workers: 4, Session: sess}

	rp, err := relatrust.NewRepairer(in, sigma, opt)
	if err != nil {
		t.Fatal(err)
	}
	full := collect(t, rp)
	if len(full) < 2 {
		t.Fatalf("need a multi-point frontier, got %d", len(full))
	}

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sawCancel bool
	var yielded int
	for r, err := range rp.Frontier(ctx) {
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			sawCancel = true
			continue
		}
		yielded++
		cancel()
		_ = r
	}
	if !sawCancel {
		t.Fatal("cancelled sweep ended without reporting context.Canceled")
	}
	if yielded >= len(full) {
		t.Fatalf("cancel was a no-op: all %d repairs yielded", yielded)
	}
	testkit.WaitGoroutineBaseline(t, baseline)

	// The shared session survived the cancelled sweep: a fresh Repairer on
	// the same session reproduces the full frontier.
	rp2, err := relatrust.NewRepairer(in, sigma, opt)
	if err != nil {
		t.Fatal(err)
	}
	again := collect(t, rp2)
	if len(again) != len(full) {
		t.Fatalf("post-cancel sweep returned %d repairs, want %d", len(again), len(full))
	}
	for i := range full {
		if !equalRepair(full[i], again[i]) {
			t.Fatalf("repair %d diverges after a cancelled sweep on the shared session", i)
		}
	}
}

// TestSampleCancel: a cancelled context aborts Sample (and the
// SampleRepairs wrapper keeps working without one).
func TestSampleCancel(t *testing.T) {
	in, sigma := loadMulti(t)
	rp, err := relatrust.NewRepairer(in, sigma, relatrust.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rp.Sample(ctx, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	samples, err := rp.Sample(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
}

// TestStructuredErrors: every documented failure mode is errors.Is-able,
// and the typed wrappers carry their payloads.
func TestStructuredErrors(t *testing.T) {
	in, sigma := loadMulti(t)

	if _, err := relatrust.NewRepairer(in, nil, relatrust.Options{}); !errors.Is(err, relatrust.ErrEmptyFDSet) {
		t.Errorf("empty Σ: err = %v, want ErrEmptyFDSet", err)
	}

	empty := relatrust.NewInstance(in.Schema)
	if _, err := relatrust.NewRepairer(empty, sigma, relatrust.Options{}); !errors.Is(err, relatrust.ErrEmptyInstance) {
		t.Errorf("empty instance: err = %v, want ErrEmptyInstance", err)
	}

	wide, err := relatrust.NewSchema("A", "B", "C", "D")
	if err != nil {
		t.Fatal(err)
	}
	badFD, err := relatrust.ParseFD(wide, "C->D")
	if err != nil {
		t.Fatal(err)
	}
	_, err = relatrust.NewRepairer(in, relatrust.FDSet{badFD}, relatrust.Options{})
	if !errors.Is(err, relatrust.ErrSchemaMismatch) {
		t.Errorf("out-of-schema FD: err = %v, want ErrSchemaMismatch", err)
	}
	var sm *relatrust.SchemaMismatchError
	if !errors.As(err, &sm) || sm.FD.RHS != badFD.RHS {
		t.Errorf("schema mismatch does not carry the FD: %v", err)
	}

	rp, err := relatrust.NewRepairer(in, sigma, relatrust.Options{MaxVisited: 1})
	if err != nil {
		t.Fatal(err)
	}
	// τ = δP−1 sits above the feasibility floor (so the search actually
	// runs) and below δP (so the root is not an immediate goal): the
	// one-visit cap must fire.
	dp, err := rp.MaxBudget(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = rp.RepairWithBudget(context.Background(), dp-1)
	if !errors.Is(err, relatrust.ErrMaxVisited) {
		t.Errorf("MaxVisited=1: err = %v, want ErrMaxVisited", err)
	}
	var mv *relatrust.MaxVisitedError
	if !errors.As(err, &mv) || mv.Stats.Visited != 1 {
		t.Errorf("MaxVisited error does not carry stats: %v", err)
	}

	// An unextendable two-attribute schema at τ=0 has no repair: the
	// handle reports ErrNoRepairInBudget with τ attached; the back-compat
	// wrapper keeps returning (nil, nil).
	two, err := relatrust.ReadCSV(strings.NewReader("City,ZIP\nA,1\nA,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := relatrust.ParseFDs(two.Schema, "City->ZIP")
	if err != nil {
		t.Fatal(err)
	}
	rp2, err := relatrust.NewRepairer(two, sig2, relatrust.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rp2.RepairWithBudget(context.Background(), 0)
	if !errors.Is(err, relatrust.ErrNoRepairInBudget) {
		t.Errorf("infeasible τ: err = %v, want ErrNoRepairInBudget", err)
	}
	var be *relatrust.BudgetError
	if !errors.As(err, &be) || be.Tau != 0 {
		t.Errorf("budget error does not carry τ: %v", err)
	}
	r, err := relatrust.RepairWithBudget(two, sig2, 0, relatrust.Options{})
	if r != nil || err != nil {
		t.Errorf("wrapper contract broken: repair=%v err=%v, want nil, nil", r, err)
	}
}

// TestFrontierPreCancelled: iterating with an already-cancelled context
// yields exactly one (nil, context.Canceled) pair.
func TestFrontierPreCancelled(t *testing.T) {
	in, sigma := loadMulti(t)
	rp, err := relatrust.NewRepairer(in, sigma, relatrust.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var repairs, errs int
	for r, err := range rp.Frontier(ctx) {
		if err != nil {
			errs++
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			continue
		}
		_ = r
		repairs++
	}
	if repairs != 0 || errs != 1 {
		t.Fatalf("pre-cancelled frontier yielded %d repairs, %d errors", repairs, errs)
	}
}

func collect(t *testing.T, rp *relatrust.Repairer) []*relatrust.Repair {
	t.Helper()
	var out []*relatrust.Repair
	for r, err := range rp.Frontier(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	return out
}
