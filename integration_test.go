package relatrust_test

// Integration tests spanning the whole pipeline: generate a census-like
// workload with known ground truth, perturb both sides, repair across the
// trust spectrum, and check every paper-level invariant at once. These
// complement the per-package unit and property tests.

import (
	"math/rand"
	"strings"
	"testing"

	"relatrust"

	"relatrust/internal/discovery"
	"relatrust/internal/experiments"
	"relatrust/internal/fd"
	"relatrust/internal/gen"
	"relatrust/internal/metrics"
	"relatrust/internal/relation"
)

func TestPipelinePerturbRepairEvaluate(t *testing.T) {
	spec := gen.SubSpec(gen.CensusSpec(), 12)
	sigma := fd.Set{gen.PaperFD(spec)}
	w, err := experiments.MakeWorkload(spec, sigma, 600, 0.5, 0.03, 9)
	if err != nil {
		t.Fatal(err)
	}
	opt := relatrust.Options{Weights: relatrust.DistinctCountWeights(w.Dirty), Seed: 9}
	repairs, err := relatrust.SuggestRepairs(w.Dirty, w.SigmaD, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) < 3 {
		t.Fatalf("spectrum too small: %d repairs", len(repairs))
	}
	dp, err := relatrust.MaxBudget(w.Dirty, w.SigmaD, opt)
	if err != nil {
		t.Fatal(err)
	}

	prevCost := -1.0
	prevDelta := dp + 1
	bestF, bestAt := -1.0, 0
	for i, r := range repairs {
		// (1) Consistency and budget.
		if !relatrust.Satisfies(r.Data.Instance, r.Sigma) {
			t.Fatalf("repair %d inconsistent", i)
		}
		if r.Data.NumChanges() > r.Tau {
			t.Fatalf("repair %d changes %d > τ %d", i, r.Data.NumChanges(), r.Tau)
		}
		// (2) Strict Pareto staircase.
		if r.FDCost <= prevCost {
			t.Fatalf("repair %d cost %v not increasing after %v", i, r.FDCost, prevCost)
		}
		if r.DeltaP >= prevDelta {
			t.Fatalf("repair %d δP %d not decreasing after %d", i, r.DeltaP, prevDelta)
		}
		prevCost, prevDelta = r.FDCost, r.DeltaP
		// (3) Only relaxations of Σd.
		if !r.Sigma.IsRelaxationOf(w.SigmaD) {
			t.Fatalf("repair %d is not a relaxation", i)
		}
		// (4) Quality is well-defined against ground truth.
		q, err := w.Evaluate(r)
		if err != nil {
			t.Fatal(err)
		}
		if f := q.CombinedF(); f > bestF {
			bestF, bestAt = f, i
		}
	}
	// (5) With both error kinds injected, the best repair should sit
	// strictly inside the spectrum — the paper's core claim.
	if bestAt == 0 || bestAt == len(repairs)-1 {
		t.Logf("warning: best combined F %.3f at spectrum endpoint %d/%d", bestF, bestAt, len(repairs)-1)
	}
	if bestF <= 0 {
		t.Fatalf("best combined F = %v; repairs recover nothing", bestF)
	}
}

func TestPipelineDiscoveryToRepair(t *testing.T) {
	// Discover FDs on clean data, corrupt some cells, and confirm a
	// full-trust-in-FDs repair restores consistency with bounded changes.
	spec := gen.SubSpec(gen.CensusSpec(), 8)
	planted := fd.MustNew(relation.NewAttrSet(0, 1), 6)
	clean, err := gen.Generate(spec, fd.Set{planted}, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	found, err := discovery.Discover(clean, discovery.Options{MaxLHS: 2, Attrs: relation.NewAttrSet(0, 1, 6)})
	if err != nil {
		t.Fatal(err)
	}
	var target *fd.FD
	for i := range found {
		if found[i].RHS == 6 {
			target = &found[i]
			break
		}
	}
	if target == nil {
		t.Fatal("planted FD not discovered")
	}
	p, err := gen.PerturbData(clean, fd.Set{*target}, 0.02, 6)
	if err != nil {
		t.Fatal(err)
	}
	r, err := relatrust.RepairWithBudget(p.Instance, fd.Set{*target}, len(p.Cells)*3, relatrust.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("no repair")
	}
	if !relatrust.Satisfies(r.Data.Instance, r.Sigma) {
		t.Fatal("inconsistent repair")
	}
	prec, rec, err := metrics.EvalData(clean, p.Instance, r.Data.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if prec == 0 && rec == 0 && len(p.Cells) > 0 {
		t.Log("repair restored nothing exactly — acceptable, V-instances count as correct only when variables land on erroneous cells")
	}
}

func TestPipelineCSVRoundTripThroughRepair(t *testing.T) {
	// CSV in → repair → ground → CSV out → re-read → still satisfied.
	csv := "A,B,C\n1,x,p\n1,y,p\n2,z,q\n2,z,q\n"
	in, err := relatrust.ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := relatrust.ParseFDs(in.Schema, "A->B")
	if err != nil {
		t.Fatal(err)
	}
	r, err := relatrust.RepairWithBudget(in, sigma, 2, relatrust.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("no repair")
	}
	ground := r.Data.Instance.Ground("fresh_")
	var b strings.Builder
	if err := relatrust.WriteCSV(&b, ground); err != nil {
		t.Fatal(err)
	}
	back, err := relatrust.ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !relatrust.Satisfies(back, r.Sigma) {
		t.Fatal("round-tripped repair no longer satisfies Σ'")
	}
}

func TestPipelineStressManySeeds(t *testing.T) {
	// Same workload, many repair seeds: every seed must give a valid
	// repair within budget (randomization affects which cells change, not
	// correctness).
	spec := gen.SubSpec(gen.CensusSpec(), 10)
	sigma := gen.TwoFDs(spec)
	w, err := experiments.MakeWorkload(spec, sigma, 300, 0.34, 0.02, 77)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		seed := rng.Int63()
		opt := relatrust.Options{Seed: seed}
		dp, err := relatrust.MaxBudget(w.Dirty, w.SigmaD, opt)
		if err != nil {
			t.Fatal(err)
		}
		r, err := relatrust.RepairWithBudget(w.Dirty, w.SigmaD, dp/2, opt)
		if err != nil {
			t.Fatal(err)
		}
		if r == nil {
			continue
		}
		if !relatrust.Satisfies(r.Data.Instance, r.Sigma) || r.Data.NumChanges() > dp/2 {
			t.Fatalf("seed %d: invalid repair", seed)
		}
	}
}
