package components

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"relatrust/internal/conflict"
	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/testkit"
)

// shapes returns the three conflict-graph shapes of the oracle matrix:
// one giant component (tiny domains collide everywhere), many small
// components (a block-id attribute in every LHS keeps clusters inside
// their block), and singleton-only (unique tuples, no violations).
func shapes(rng *rand.Rand) []struct {
	name  string
	in    *relation.Instance
	sigma fd.Set
} {
	connected := testkit.RandomInstance(rng, 60, 4, 2)
	connectedFDs := testkit.RandomFDs(rng, 4, 2, 2)

	blocks := relation.NewInstance(relation.MustSchema("Blk", "A", "B", "C"))
	for t := 0; t < 80; t++ {
		err := blocks.AppendConsts(
			fmt.Sprintf("b%d", t/5),
			fmt.Sprintf("v%d", rng.Intn(2)),
			fmt.Sprintf("v%d", rng.Intn(3)),
			fmt.Sprintf("v%d", rng.Intn(2)),
		)
		if err != nil {
			panic(err)
		}
	}
	blockFDs := fd.Set{
		fd.MustNew(relation.NewAttrSet(0, 1), 2), // Blk,A -> B
		fd.MustNew(relation.NewAttrSet(0, 3), 1), // Blk,C -> A
	}

	clean := relation.NewInstance(relation.MustSchema("A", "B", "C"))
	for t := 0; t < 40; t++ {
		if err := clean.AppendConsts(fmt.Sprintf("u%d", t), fmt.Sprintf("v%d", t), "c"); err != nil {
			panic(err)
		}
	}
	cleanFDs := fd.Set{fd.MustNew(relation.NewAttrSet(0), 1)}

	return []struct {
		name  string
		in    *relation.Instance
		sigma fd.Set
	}{
		{"connected", connected, connectedFDs},
		{"many-small", blocks, blockFDs},
		{"singleton-only", clean, cleanFDs},
	}
}

// randExt draws a random extension vector; roughly a third of the draws
// are nil (the base query).
func randExt(rng *rand.Rand, sigma fd.Set, width int) []relation.AttrSet {
	if rng.Intn(3) == 0 {
		return nil
	}
	ext := make([]relation.AttrSet, len(sigma))
	for fi := range ext {
		for a := 0; a < width; a++ {
			if rng.Intn(width+1) == 0 {
				ext[fi] = ext[fi].Add(a)
			}
		}
	}
	return ext
}

// TestEvaluatorMatchesMonolithic is the component-level oracle: on every
// shape, the evaluator's CoverSize equals the monolithic Analysis.CoverSize
// for random extension vectors, and splitting EvalDelta over arbitrary
// chunk boundaries combines to the same answer.
func TestEvaluatorMatchesMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, sh := range shapes(rng) {
		t.Run(sh.name, func(t *testing.T) {
			an := conflict.New(sh.in, sh.sigma)
			ev := NewEvaluator(an)
			width := sh.in.Schema.Width()
			d := ev.Decomposition()
			t.Logf("%s: %d components, largest %d tuples", sh.name, d.Components(), d.LargestComponent())
			if sh.name == "many-small" && d.Components() < 4 {
				t.Fatalf("expected many components, got %d", d.Components())
			}
			if sh.name == "singleton-only" && d.Components() != 0 {
				t.Fatalf("clean instance decomposed into %d components", d.Components())
			}
			for trial := 0; trial < 400; trial++ {
				ext := randExt(rng, sh.sigma, width)
				want := an.CoverSize(ext)
				if got := ev.CoverSize(an, ext); got != want {
					t.Fatalf("trial %d: evaluator CoverSize = %d, monolithic = %d (ext %v)", trial, got, want, ext)
				}
				// Chunked deltas (the worker fan-out path) must combine to
				// the same size regardless of the split point.
				comps := ev.Affected(ext)
				if len(comps) > 1 {
					cut := 1 + rng.Intn(len(comps)-1)
					l1, p1 := ev.EvalDelta(an, comps[:cut], ext)
					l2, p2 := ev.EvalDelta(an, comps[cut:], ext)
					if got := ev.Combine(l1+l2, p1+p2); got != want {
						t.Fatalf("trial %d: chunked combine = %d, monolithic = %d", trial, got, want)
					}
				}
			}
			c := ev.Counters()
			if c.Evals == 0 && d.Components() > 0 {
				t.Fatalf("no component evaluations recorded")
			}
			if c.MemoHits == 0 && d.Components() > 0 {
				t.Fatalf("memo never hit across repeated queries")
			}
		})
	}
}

// TestComponentsPartitionClusters checks the decomposition is a partition:
// every cluster appears in exactly one component, in global construction
// order, and tuple counts plus the base sums are consistent.
func TestComponentsPartitionClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sh := range shapes(rng) {
		t.Run(sh.name, func(t *testing.T) {
			an := conflict.New(sh.in, sh.sigma)
			d := Decompose(an)
			seen := make(map[conflict.ClusterRef]bool)
			total := 0
			for fi := range sh.sigma {
				total += an.NumClusters(fi)
			}
			for _, comp := range d.Comps {
				if len(comp.Clusters) == 0 {
					t.Fatalf("empty component")
				}
				prev := conflict.ClusterRef{FD: -1, Cluster: -1}
				for _, ref := range comp.Clusters {
					if seen[ref] {
						t.Fatalf("cluster %v in two components", ref)
					}
					seen[ref] = true
					if ref.FD < prev.FD || (ref.FD == prev.FD && ref.Cluster <= prev.Cluster) {
						t.Fatalf("cluster order not global construction order: %v after %v", ref, prev)
					}
					prev = ref
				}
				if comp.Tuples < 2 {
					t.Fatalf("component with %d tuples", comp.Tuples)
				}
				if comp.Relevant.IsEmpty() {
					t.Fatalf("violating component with empty relevant set")
				}
			}
			if len(seen) != total {
				t.Fatalf("components cover %d clusters, analysis has %d", len(seen), total)
			}
		})
	}
}

// TestEvaluatorConcurrent hammers one shared evaluator from several
// goroutines, each with its own analysis fork — the session-engine usage —
// and checks every answer against the monolithic oracle (run under -race
// in CI).
func TestEvaluatorConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	in := testkit.RandomInstance(rng, 120, 5, 3)
	sigma := testkit.RandomFDs(rng, 5, 3, 2)
	an := conflict.New(in, sigma)
	ev := NewEvaluator(an)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			fork := an.Fork()
			defer fork.Release()
			for trial := 0; trial < 200; trial++ {
				ext := randExt(rng, sigma, in.Schema.Width())
				want := fork.CoverSize(ext)
				if got := ev.CoverSize(fork, ext); got != want {
					errs <- fmt.Errorf("seed %d trial %d: got %d want %d", seed, trial, got, want)
					return
				}
			}
		}(int64(100 + g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
