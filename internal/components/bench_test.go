package components

import (
	"math/rand"
	"testing"

	"relatrust/internal/conflict"
)

// BenchmarkComponentDecompose measures building the decomposition —
// union-find over every cluster of every FD plus per-component base
// covers — off a prebuilt analysis. Paid once per root analysis (the
// session engine caches the evaluator), so it must stay cheap relative
// to conflict.New.
func BenchmarkComponentDecompose(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	sh := shapes(rng)[1] // many-small: the decomposition's intended shape
	an := conflict.New(sh.in, sh.sigma)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompose(an)
	}
}

// BenchmarkComponentCover measures the decomposed cover query in steady
// state: a warm memo answers repeated queries with per-component map
// lookups (plus the Affected cache), no cluster scans.
func BenchmarkComponentCover(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	sh := shapes(rng)[1]
	an := conflict.New(sh.in, sh.sigma)
	ev := NewEvaluator(an)
	ext := randExt(rng, sh.sigma, sh.in.Schema.Width())
	for ext == nil {
		ext = randExt(rng, sh.sigma, sh.in.Schema.Width())
	}
	ev.CoverSize(an, ext) // warm the memo and the Affected cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.CoverSize(an, ext)
	}
}
