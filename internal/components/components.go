// Package components decomposes the conflict hypergraph of an analyzed
// instance into connected components and evaluates vertex-cover queries
// per component, so the repair search pays per state only for the
// components an extension vector actually touches — and can fan that work
// across the parallel engine's workers — instead of re-walking every
// violation cluster of the instance.
//
// # Decomposition model
//
// A violation cluster (tuples sharing an FD's original LHS projection with
// ≥2 distinct RHS values) induces a complete multipartite conflict graph,
// so every cluster is internally connected and lies inside exactly one
// connected component of the global conflict graph. Components are
// therefore computed by union–find over the cluster tuple lists in
// O(violating tuples), and a component is a set of clusters — no tuple is
// shared across components. Because the conflict graph of every extension
// Σ′ ∈ S(Σ) is a subgraph of the base graph (agreement on XiYi implies
// agreement on Xi), the base decomposition remains valid for every state
// the search visits.
//
// # Merged frontiers and the bit-identity guarantee
//
// The global cover() of internal/conflict runs two passes — a maximal
// matching M, then an "all but the largest subgroup" cover — and returns
// the pass-2 cover unless it exceeds the 2·|M| certificate. Epoch marks
// never cross components (their tuple sets are disjoint), so both passes
// decompose exactly: the per-component pair counts and cover lengths sum
// to the global ones, and
//
//	CoverSize(ext) = min(Σ_c len2_c(ext), 2·Σ_c pairs_c(ext))
//
// reproduces the global fallback decision on the sums. Each component's
// (len2_c, pairs_c) is evaluated against the extension vector projected
// onto the component — its FDs, intersected with the attributes on which
// its tuples differ at all (refining by an attribute every tuple agrees on
// is a partition no-op) — which is what makes the per-component responses
// memoizable: many global states project to the same local query, and a
// component untouched by a state's extensions answers from its base value
// without any partition work. Merging the per-component responses this way
// keeps the A* pop sequence — and therefore the Pareto frontier, its
// Definition-4 supersede/tie-break order, and every reported statistic of
// the search — bit-identical to the monolithic sweep, for every worker
// count, which the oracle suites in internal/components, internal/search,
// the facade, and internal/server pin.
//
// # Concurrency
//
// A Decomposition is immutable after Decompose. An Evaluator may be shared
// by any number of goroutines (the parallel engine's workers, concurrent
// searchers over the same session root): memo tables are striped by
// component, values are pure functions of the projected query, and callers
// supply their own forked conflict.Analysis for the partition scratch.
package components

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"relatrust/internal/conflict"
	"relatrust/internal/relation"
)

// Component is one connected component of the conflict hypergraph.
type Component struct {
	// Clusters lists the component's violation clusters in global (FD,
	// cluster) construction order — the order the monolithic passes visit
	// them.
	Clusters []conflict.ClusterRef
	// FDs lists the FDs with at least one cluster in this component,
	// ascending.
	FDs []int32
	// Tuples is the number of distinct tuples in the component.
	Tuples int
	// Relevant is the set of attributes on which the component's tuples
	// are not all equal; extension attributes outside it cannot refine any
	// of the component's partitions.
	Relevant relation.AttrSet
}

// Decomposition is the component structure of one analyzed (instance, Σ)
// pair, with the per-component base cover responses (ext = nil)
// precomputed. Immutable after Decompose.
type Decomposition struct {
	Comps []Component
	// compsOf[fi] lists the components containing a cluster of FD fi,
	// ascending.
	compsOf [][]int32
	lhs     []relation.AttrSet // per-FD LHS, for extension projection

	// compOf[t] is the component containing tuple t, -1 for tuples in no
	// violation cluster. The live mutation tier uses it to find which
	// components a mutated tuple dirties.
	compOf []int32

	baseLen2   []int32
	basePairs  []int32
	baseLen2S  int64
	basePairsS int64

	largest int // max Component.Tuples
	// alive counts non-tombstone components. Decompose never produces
	// tombstones; SpliceEvaluator leaves a dead slot behind when dirty
	// components merge, so surviving components keep their ids (and their
	// striped memo tables) across splices.
	alive int
}

// Decompose computes the connected components of an analysis' conflict
// hypergraph in O(violating tuples · α(n)) plus one base cover pass. The
// analysis is only read; the returned decomposition shares its immutable
// cluster arenas and stays valid for every fork of the same root.
func Decompose(an *conflict.Analysis) *Decomposition {
	n := an.N()
	sigma := an.Sigma
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1 // not violating
	}
	var find func(t int32) int32
	find = func(t int32) int32 {
		if parent[t] == t {
			return t
		}
		r := find(parent[t])
		parent[t] = r
		return r
	}
	for fi := range sigma {
		for ci := 0; ci < an.NumClusters(fi); ci++ {
			g := an.ClusterTuples(fi, ci)
			for _, t := range g {
				if parent[t] == -1 {
					parent[t] = t
				}
			}
			r := find(g[0])
			for _, t := range g[1:] {
				rt := find(t)
				if rt != r {
					parent[rt] = r
				}
			}
		}
	}

	// Component IDs by first appearance in global (fi, ci) cluster order,
	// so the decomposition is deterministic for a fixed analysis.
	compOf := make(map[int32]int32)
	d := &Decomposition{
		compsOf: make([][]int32, len(sigma)),
		lhs:     make([]relation.AttrSet, len(sigma)),
	}
	for fi, f := range sigma {
		d.lhs[fi] = f.LHS
	}
	for fi := range sigma {
		for ci := 0; ci < an.NumClusters(fi); ci++ {
			g := an.ClusterTuples(fi, ci)
			r := find(g[0])
			c, ok := compOf[r]
			if !ok {
				c = int32(len(d.Comps))
				compOf[r] = c
				d.Comps = append(d.Comps, Component{})
			}
			comp := &d.Comps[c]
			comp.Clusters = append(comp.Clusters, conflict.ClusterRef{FD: int32(fi), Cluster: int32(ci)})
			if len(comp.FDs) == 0 || comp.FDs[len(comp.FDs)-1] != int32(fi) {
				comp.FDs = append(comp.FDs, int32(fi))
				d.compsOf[fi] = append(d.compsOf[fi], c)
			}
		}
	}

	// Tuple counts and relevant-attribute sets: one pass over each
	// component's cluster tuples, deduplicated by stamping.
	width := an.In.Schema.Width()
	cols := make([][]int32, width)
	for a := 0; a < width; a++ {
		cols[a], _ = an.In.Codes(a)
	}
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	full := relation.FullSet(width)
	for c := range d.Comps {
		comp := &d.Comps[c]
		var first int32 = -1
		for _, ref := range comp.Clusters {
			for _, t := range an.ClusterTuples(int(ref.FD), int(ref.Cluster)) {
				if stamp[t] == int32(c) {
					continue
				}
				stamp[t] = int32(c)
				comp.Tuples++
				if first < 0 {
					first = t
					continue
				}
				if comp.Relevant == full {
					continue
				}
				for a := 0; a < width; a++ {
					if !comp.Relevant.Contains(a) && cols[a][t] != cols[a][first] {
						comp.Relevant = comp.Relevant.Add(a)
					}
				}
			}
		}
		if comp.Tuples > d.largest {
			d.largest = comp.Tuples
		}
	}
	// The stamp array ends holding exactly the component of every violating
	// tuple (-1 elsewhere) — keep it as the tuple→component map.
	d.compOf = stamp
	d.alive = len(d.Comps)

	// Base responses: the component covers of the unmodified Σ. Their sums
	// with the global fallback rule equal CoverSize(nil) by the argument in
	// the package doc.
	d.baseLen2 = make([]int32, len(d.Comps))
	d.basePairs = make([]int32, len(d.Comps))
	for c := range d.Comps {
		l2, p := an.SubsetCover(d.Comps[c].Clusters, nil, d.Comps[c].Relevant)
		d.baseLen2[c] = int32(l2)
		d.basePairs[c] = int32(p)
		d.baseLen2S += int64(l2)
		d.basePairsS += int64(p)
	}
	return d
}

// Components returns the number of live connected components (splice
// tombstones excluded).
func (d *Decomposition) Components() int { return d.alive }

// CompOf returns the component containing tuple t, or -1 when t is in no
// violation cluster (including splice tombstone-cleared tuples).
func (d *Decomposition) CompOf(t int32) int32 { return d.compOf[t] }

// LargestComponent returns the tuple count of the largest component.
func (d *Decomposition) LargestComponent() int { return d.largest }

// compVal is one memoized per-component cover response.
type compVal struct {
	len2, pairs int32
}

// memoStripes bounds lock contention when workers evaluate disjoint
// component chunks; memoCap bounds each component's memo table (a pure
// memo — clearing costs only future hits, never correctness).
const (
	memoStripes = 64
	memoCap     = 2048
)

// Counters reports an evaluator's lifetime effort. Monotonic; safe to read
// concurrently with evaluations.
type Counters struct {
	// Evals counts per-component cover evaluations that ran the two
	// restricted passes (memo misses).
	Evals int64
	// MemoHits counts per-component queries answered from the memo or the
	// base response without partition work.
	MemoHits int64
	// Parallel counts per-component evaluations dispatched through the
	// parallel engine's cross-component fan-out.
	Parallel int64
}

// Evaluator answers global CoverSize queries through the decomposition,
// memoizing per-component responses. Safe for concurrent use; each call
// site supplies its own (forked) analysis for partition scratch.
type Evaluator struct {
	d *Decomposition

	// stripes is shared across every evaluator spliced from one ancestor:
	// surviving components alias their memo maps across the splice, and the
	// shared mutexes keep concurrent mutation of one map by the old and new
	// evaluator (an in-flight sweep and a post-mutation sweep) serialized —
	// component ids are stable across splices, so both sides lock the same
	// stripe for the same map.
	stripes *[memoStripes]sync.Mutex
	// memo1 serves the dominant single-FD components keyed by the
	// projected extension set directly; memoK serves multi-FD components
	// keyed by the packed projection. Both indexed by component, created
	// lazily under the component's stripe.
	memo1 []map[relation.AttrSet]compVal
	memoK []map[string]compVal

	affMu  sync.RWMutex
	affect map[uint64][]int32 // affected components by nonempty-FD mask

	evals    atomic.Int64
	memoHits atomic.Int64
	parallel atomic.Int64
}

// NewEvaluator decomposes the analysis and returns a shared evaluator
// over it. The analysis is only used during construction; later queries
// run against whatever fork the caller passes.
func NewEvaluator(an *conflict.Analysis) *Evaluator {
	d := Decompose(an)
	return &Evaluator{
		d:       d,
		stripes: new([memoStripes]sync.Mutex),
		// Fixed-size so concurrent stripes never reallocate the slices;
		// the maps themselves are created lazily under their stripe.
		memo1:  make([]map[relation.AttrSet]compVal, len(d.Comps)),
		memoK:  make([]map[string]compVal, len(d.Comps)),
		affect: make(map[uint64][]int32),
	}
}

// Decomposition returns the underlying component structure.
func (e *Evaluator) Decomposition() *Decomposition { return e.d }

// Counters returns a snapshot of the evaluator's effort counters.
func (e *Evaluator) Counters() Counters {
	return Counters{
		Evals:    e.evals.Load(),
		MemoHits: e.memoHits.Load(),
		Parallel: e.parallel.Load(),
	}
}

// CountParallel records n per-component evaluations dispatched across
// workers (called by the parallel engine's fan-out).
func (e *Evaluator) CountParallel(n int) { e.parallel.Add(int64(n)) }

// Affected returns the components containing a cluster of some FD whose
// extension in ext is non-empty, ascending — exactly the components whose
// response can differ from the base. The result is memoized by the set of
// extended FDs and shared: callers must not modify it. A nil return means
// no component is affected.
func (e *Evaluator) Affected(ext []relation.AttrSet) []int32 {
	if ext == nil {
		return nil
	}
	var mask uint64
	masked := len(e.d.lhs) <= 64
	any := false
	for fi := range e.d.lhs {
		if !ext[fi].Diff(e.d.lhs[fi]).IsEmpty() {
			any = true
			if masked {
				mask |= 1 << uint(fi)
			}
		}
	}
	if !any {
		return nil
	}
	if masked {
		if mask&(mask-1) == 0 { // single extended FD: its list verbatim
			return e.d.compsOf[bits.TrailingZeros64(mask)]
		}
		e.affMu.RLock()
		cached, ok := e.affect[mask]
		e.affMu.RUnlock()
		if ok {
			return cached
		}
	}
	merged := e.mergeAffected(ext)
	if masked {
		e.affMu.Lock()
		e.affect[mask] = merged
		e.affMu.Unlock()
	}
	return merged
}

// mergeAffected unions the per-FD component lists of the extended FDs
// into one deduplicated ascending list.
func (e *Evaluator) mergeAffected(ext []relation.AttrSet) []int32 {
	seen := make(map[int32]bool)
	var out []int32
	for fi := range e.d.lhs {
		if ext[fi].Diff(e.d.lhs[fi]).IsEmpty() {
			continue
		}
		for _, c := range e.d.compsOf[fi] {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	// First-appearance order depends on FD order; sort for a canonical
	// ascending result.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// EvalDelta evaluates the listed components against ext on the supplied
// analysis and returns the summed differences from the base responses.
// Deterministic: the sums are integers, so any partition of the affected
// list across workers combines to the same totals.
func (e *Evaluator) EvalDelta(an *conflict.Analysis, comps []int32, ext []relation.AttrSet) (dLen2, dPairs int64) {
	var evals, hits int64
	var keyArr [128]byte
	for _, c := range comps {
		comp := &e.d.Comps[c]
		if len(comp.FDs) == 1 {
			fi := int(comp.FDs[0])
			y := ext[fi].Diff(e.d.lhs[fi]).Intersect(comp.Relevant)
			if y.IsEmpty() {
				hits++ // projected to the base query: no partition work
				continue
			}
			stripe := &e.stripes[int(c)%memoStripes]
			stripe.Lock()
			m := e.memoAt1(c)
			v, ok := m[y]
			stripe.Unlock()
			if !ok {
				evals++
				l2, p := an.SubsetCover(comp.Clusters, ext, comp.Relevant)
				v = compVal{len2: int32(l2), pairs: int32(p)}
				stripe.Lock()
				if len(m) >= memoCap {
					clear(m)
				}
				m[y] = v
				stripe.Unlock()
			} else {
				hits++
			}
			dLen2 += int64(v.len2 - e.d.baseLen2[c])
			dPairs += int64(v.pairs - e.d.basePairs[c])
			continue
		}
		key := keyArr[:0]
		zero := true
		for _, fi := range comp.FDs {
			y := ext[fi].Diff(e.d.lhs[fi]).Intersect(comp.Relevant)
			if !y.IsEmpty() {
				zero = false
			}
			key = appendUint64(key, uint64(y))
		}
		if zero {
			hits++
			continue
		}
		stripe := &e.stripes[int(c)%memoStripes]
		stripe.Lock()
		m := e.memoAtK(c)
		v, ok := m[string(key)]
		stripe.Unlock()
		if !ok {
			evals++
			l2, p := an.SubsetCover(comp.Clusters, ext, comp.Relevant)
			v = compVal{len2: int32(l2), pairs: int32(p)}
			stripe.Lock()
			if len(m) >= memoCap {
				clear(m)
			}
			m[string(key)] = v
			stripe.Unlock()
		} else {
			hits++
		}
		dLen2 += int64(v.len2 - e.d.baseLen2[c])
		dPairs += int64(v.pairs - e.d.basePairs[c])
	}
	e.evals.Add(evals)
	e.memoHits.Add(hits)
	return dLen2, dPairs
}

// memoAt1 returns component c's single-FD memo table, creating it on first
// use. Caller holds c's stripe.
func (e *Evaluator) memoAt1(c int32) map[relation.AttrSet]compVal {
	if e.memo1[c] == nil {
		e.memo1[c] = make(map[relation.AttrSet]compVal)
	}
	return e.memo1[c]
}

// memoAtK is memoAt1 for multi-FD components.
func (e *Evaluator) memoAtK(c int32) map[string]compVal {
	if e.memoK[c] == nil {
		e.memoK[c] = make(map[string]compVal)
	}
	return e.memoK[c]
}

// Combine folds summed deltas into the global cover size, applying the
// 2·|M| certificate fallback to the merged totals exactly as the
// monolithic cover() applies it globally.
func (e *Evaluator) Combine(dLen2, dPairs int64) int {
	l := e.d.baseLen2S + dLen2
	p2 := 2 * (e.d.basePairsS + dPairs)
	if l <= p2 {
		return int(l)
	}
	return int(p2)
}

// CoverSize returns |C2opt(Σ′, I)| for the extension vector, bit-identical
// to an.CoverSize(ext) on any fork of the decomposed analysis.
func (e *Evaluator) CoverSize(an *conflict.Analysis, ext []relation.AttrSet) int {
	comps := e.Affected(ext)
	if len(comps) == 0 {
		return e.Combine(0, 0)
	}
	dLen2, dPairs := e.EvalDelta(an, comps, ext)
	return e.Combine(dLen2, dPairs)
}

// appendUint64 appends v little-endian.
func appendUint64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
