package components

import (
	"sort"

	"relatrust/internal/conflict"
	"relatrust/internal/relation"
)

// SpliceInfo describes how a mutation batch turned one analyzed instance
// into the next, in the vocabulary the decomposition needs: which clusters
// survived unchanged (and where they moved), which are gone or rewritten,
// and how tuple positions were renumbered. The live mutation tier
// (internal/live) produces it as a byproduct of splicing the cluster
// arenas.
type SpliceInfo struct {
	// OldToNew[fi][ci] is the new-analysis index of FD fi's old cluster ci
	// when the cluster survived with identical membership, -1 when it
	// vanished or changed. Every cluster of a component untouched by the
	// batch must map (a changed cluster dirties its component).
	OldToNew [][]int32
	// OldDirtyTuples holds, per old cluster that vanished or changed, one
	// representative member in OLD tuple numbering — enough to find the
	// component each such cluster belonged to.
	OldDirtyTuples []int32
	// Dirty lists the new-analysis clusters that are new or changed.
	Dirty []conflict.ClusterRef
	// OldPos[t] is tuple t's position in the old instance, or -1 when the
	// batch inserted it. Deletes renumber by swap-remove, so positions of
	// untouched tuples may still move; OldPos is the complete new→old map.
	OldPos []int32
}

// SpliceEvaluator derives the evaluator of a mutated instance's analysis
// from its predecessor without re-decomposing the whole hypergraph: only
// the components touched by the batch (holding a changed cluster, or
// connected to one by a new cluster) are re-grouped by union–find and get
// fresh base responses; every other component keeps its id, its base
// response, and — the expensive part — its memoized per-extension cover
// responses, alias-shared with the old evaluator under shared stripe
// locks. The old evaluator remains fully usable (in-flight sweeps finish
// against their snapshot).
//
// Rebuilt components take over the freed ids in order of first appearance
// in (FD, cluster) order; when merges leave ids over, dead slots remain as
// tombstones (zero Component) skipped by Components() and absent from
// compsOf, so they are never evaluated.
//
// The second return value is the number of old components invalidated by
// the batch (their memoized state discarded) — the live tier's
// components_dirtied observability counter.
func SpliceEvaluator(old *Evaluator, an *conflict.Analysis, info SpliceInfo) (*Evaluator, int) {
	od := old.d
	newN := len(info.OldPos)

	// Tuple→component in new numbering, still pointing at old ids.
	compOf := make([]int32, newN)
	for t, op := range info.OldPos {
		if op >= 0 {
			compOf[t] = od.compOf[op]
		} else {
			compOf[t] = -1
		}
	}

	// Dirty components: those that owned a vanished/changed cluster, plus
	// those a new/changed cluster now touches (it may bridge previously
	// separate components).
	dirty := make([]bool, len(od.Comps))
	for _, t := range info.OldDirtyTuples {
		if c := od.compOf[t]; c >= 0 {
			dirty[c] = true
		}
	}
	for _, ref := range info.Dirty {
		for _, t := range an.ClusterTuples(int(ref.FD), int(ref.Cluster)) {
			if c := compOf[t]; c >= 0 {
				dirty[c] = true
			}
		}
	}

	// The clusters to re-group: the dirty components' surviving clusters
	// (remapped to new indices) plus the batch's new/changed clusters, in
	// ascending (FD, cluster) order — the order Decompose visits, so each
	// rebuilt component's cluster list comes out in construction order.
	var refs []conflict.ClusterRef
	for c := range od.Comps {
		if !dirty[c] {
			continue
		}
		for _, ref := range od.Comps[c].Clusters {
			if ni := info.OldToNew[int(ref.FD)][int(ref.Cluster)]; ni >= 0 {
				refs = append(refs, conflict.ClusterRef{FD: ref.FD, Cluster: ni})
			}
		}
	}
	refs = append(refs, info.Dirty...)
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].FD != refs[j].FD {
			return refs[i].FD < refs[j].FD
		}
		return refs[i].Cluster < refs[j].Cluster
	})

	// Union–find restricted to the re-grouped clusters' tuples.
	parent := make([]int32, newN)
	for i := range parent {
		parent[i] = -1
	}
	var find func(t int32) int32
	find = func(t int32) int32 {
		if parent[t] == t {
			return t
		}
		r := find(parent[t])
		parent[t] = r
		return r
	}
	prev := conflict.ClusterRef{FD: -1, Cluster: -1}
	for _, ref := range refs {
		if ref == prev {
			continue
		}
		prev = ref
		g := an.ClusterTuples(int(ref.FD), int(ref.Cluster))
		for _, t := range g {
			if parent[t] == -1 {
				parent[t] = t
			}
		}
		r := find(g[0])
		for _, t := range g[1:] {
			if rt := find(t); rt != r {
				parent[rt] = r
			}
		}
	}

	// Freed ids, ascending, for the rebuilt groups to take over.
	var free []int32
	for c := range od.Comps {
		if dirty[c] {
			free = append(free, int32(c))
		}
	}

	nd := &Decomposition{
		compsOf: make([][]int32, len(od.lhs)),
		lhs:     od.lhs,
		compOf:  compOf,
	}
	newLen := len(od.Comps)
	idOf := make(map[int32]int32) // union-find root → new component id
	nextFree := 0
	prev = conflict.ClusterRef{FD: -1, Cluster: -1}
	var rebuilt []int32
	// Size pass: assign ids in first-appearance order before touching
	// nd.Comps, so the slice is allocated once.
	for _, ref := range refs {
		if ref == prev {
			continue
		}
		prev = ref
		r := find(an.ClusterTuples(int(ref.FD), int(ref.Cluster))[0])
		if _, ok := idOf[r]; ok {
			continue
		}
		var id int32
		if nextFree < len(free) {
			id = free[nextFree]
			nextFree++
		} else {
			id = int32(newLen)
			newLen++
		}
		idOf[r] = id
		rebuilt = append(rebuilt, id)
	}

	nd.Comps = make([]Component, newLen)
	nd.baseLen2 = make([]int32, newLen)
	nd.basePairs = make([]int32, newLen)
	nd.baseLen2S = od.baseLen2S
	nd.basePairsS = od.basePairsS
	nd.alive = od.alive - len(free) + len(rebuilt)

	// Survivors: same id, clusters remapped, base and tuple stats carried
	// over. Tombstones from earlier splices stay zero slots.
	for c := range od.Comps {
		if dirty[c] || len(od.Comps[c].Clusters) == 0 {
			continue
		}
		src := &od.Comps[c]
		cl := make([]conflict.ClusterRef, len(src.Clusters))
		for i, ref := range src.Clusters {
			ni := info.OldToNew[int(ref.FD)][int(ref.Cluster)]
			if ni < 0 {
				panic("components: splice lost a cluster of an untouched component")
			}
			cl[i] = conflict.ClusterRef{FD: ref.FD, Cluster: ni}
		}
		nd.Comps[c] = Component{Clusters: cl, FDs: src.FDs, Tuples: src.Tuples, Relevant: src.Relevant}
		nd.baseLen2[c] = od.baseLen2[c]
		nd.basePairs[c] = od.basePairs[c]
	}
	// Retire the dirty components' tuples and base contributions; rebuilt
	// groups re-claim theirs below.
	for t, c := range compOf {
		if c >= 0 && dirty[c] {
			compOf[t] = -1
		}
	}
	for _, c := range free {
		nd.baseLen2S -= int64(od.baseLen2[c])
		nd.basePairsS -= int64(od.basePairs[c])
	}

	// Rebuilt components: cluster lists in construction order, then the
	// same tuple/Relevant/base pass Decompose runs — restricted to them.
	prev = conflict.ClusterRef{FD: -1, Cluster: -1}
	for _, ref := range refs {
		if ref == prev {
			continue
		}
		prev = ref
		id := idOf[find(an.ClusterTuples(int(ref.FD), int(ref.Cluster))[0])]
		comp := &nd.Comps[id]
		comp.Clusters = append(comp.Clusters, ref)
		if len(comp.FDs) == 0 || comp.FDs[len(comp.FDs)-1] != ref.FD {
			comp.FDs = append(comp.FDs, ref.FD)
		}
	}
	width := an.In.Schema.Width()
	cols := make([][]int32, width)
	for a := 0; a < width; a++ {
		cols[a], _ = an.In.Codes(a)
	}
	full := relation.FullSet(width)
	for _, id := range rebuilt {
		comp := &nd.Comps[id]
		var first int32 = -1
		for _, ref := range comp.Clusters {
			for _, t := range an.ClusterTuples(int(ref.FD), int(ref.Cluster)) {
				if compOf[t] == id {
					continue
				}
				compOf[t] = id
				comp.Tuples++
				if first < 0 {
					first = t
					continue
				}
				if comp.Relevant == full {
					continue
				}
				for a := 0; a < width; a++ {
					if !comp.Relevant.Contains(a) && cols[a][t] != cols[a][first] {
						comp.Relevant = comp.Relevant.Add(a)
					}
				}
			}
		}
		l2, p := an.SubsetCover(comp.Clusters, nil, comp.Relevant)
		nd.baseLen2[id] = int32(l2)
		nd.basePairs[id] = int32(p)
		nd.baseLen2S += int64(l2)
		nd.basePairsS += int64(p)
	}

	// compsOf and largest: one pass over all live components, ascending, so
	// each per-FD list comes out sorted like Decompose's.
	for c := range nd.Comps {
		comp := &nd.Comps[c]
		if len(comp.Clusters) == 0 {
			continue
		}
		for _, fi := range comp.FDs {
			nd.compsOf[fi] = append(nd.compsOf[fi], int32(c))
		}
		if comp.Tuples > nd.largest {
			nd.largest = comp.Tuples
		}
	}

	ev := &Evaluator{
		d:       nd,
		stripes: old.stripes,
		memo1:   make([]map[relation.AttrSet]compVal, newLen),
		memoK:   make([]map[string]compVal, newLen),
		affect:  make(map[uint64][]int32),
	}
	// Survivors keep their memo tables by reference — safe because both
	// evaluators lock the same shared stripe for the same component id.
	for c := range od.Comps {
		if !dirty[c] {
			ev.memo1[c] = old.memo1[c]
			ev.memoK[c] = old.memoK[c]
		}
	}
	return ev, len(free)
}
