package relation

// Columnar instance snapshots. The serving layer persists registered
// datasets so they survive a daemon restart; this file defines the on-disk
// format and the encode/decode pair. The layout deliberately mirrors the
// in-memory dictionary encoding of codes.go: per attribute, a dictionary
// of distinct values in first-encounter (= code) order followed by the
// int32 code column. Decoding therefore rebuilds the tuples *and* installs
// the code columns into the instance's cache in one pass — a rehydrated
// instance answers Codes() without re-interning anything, exactly as if it
// had been analyzed already.
//
// # Format (version RTSNAP01)
//
//	magic   8 bytes  "RTSNAP01"
//	crc32c  4 bytes  little-endian Castagnoli checksum of the payload
//	length  8 bytes  little-endian payload byte count
//	payload:
//	  uvarint width, then width × (uvarint len + name bytes)
//	  uvarint nTuples
//	  per attribute:
//	    uvarint dictLen
//	    dictLen × value: kind byte 0 (constant: uvarint len + bytes)
//	                     or 1 (variable: varint id)
//	    nTuples × uvarint code (each < dictLen)
//
// Any mismatch — bad magic, checksum failure, truncation, out-of-range
// codes or widths — decodes to an error matching ErrSnapshotCorrupt, so
// callers can tell a damaged file (quarantine it) from an I/O failure
// (surface it).

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// snapMagic identifies snapshot files; the trailing digits are the format
// version and change whenever the payload layout does.
const snapMagic = "RTSNAP01"

// maxSnapshotPayload bounds the payload length field before any allocation
// happens, so a corrupt header cannot ask for an absurd buffer.
const maxSnapshotPayload = 1 << 31

// ErrSnapshotCorrupt reports that snapshot bytes are not a valid RTSNAP01
// document: wrong magic, failed checksum, truncated payload, or
// inconsistent internal structure. Matched with errors.Is.
var ErrSnapshotCorrupt = errors.New("relation: snapshot corrupt")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
}

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// WriteSnapshot encodes the instance as one self-contained snapshot
// document. The instance must not be mutated concurrently (the encoder
// reads the shared code columns, like any analysis).
func WriteSnapshot(w io.Writer, in *Instance) error {
	var payload bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		payload.Write(scratch[:binary.PutUvarint(scratch[:], v)])
	}
	putVarint := func(v int64) {
		payload.Write(scratch[:binary.PutVarint(scratch[:], v)])
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		payload.WriteString(s)
	}

	width := in.Schema.Width()
	putUvarint(uint64(width))
	for a := 0; a < width; a++ {
		putString(in.Schema.Name(a))
	}
	n := in.N()
	putUvarint(uint64(n))

	for a := 0; a < width; a++ {
		codes, distinct := in.Codes(a)
		// Re-canonicalize to dense first-encounter codes: columns installed
		// by the live mutation tier share grow-only dictionaries, so after
		// deletes their code space can have gaps (distinct > values actually
		// present), which the decoder rightly rejects. For columns that are
		// already dense and first-encounter ordered — everything Codes()
		// builds itself — the remap is the identity and the bytes are
		// unchanged.
		remap := make([]int32, distinct)
		for i := range remap {
			remap[i] = -1
		}
		dict := make([]Value, 0, distinct)
		for t, c := range codes {
			if remap[c] < 0 {
				remap[c] = int32(len(dict))
				dict = append(dict, in.Tuples[t][a])
			}
		}
		putUvarint(uint64(len(dict)))
		for _, v := range dict {
			if v.IsVar() {
				payload.WriteByte(1)
				putVarint(v.VarID())
			} else {
				payload.WriteByte(0)
				putString(v.Str())
			}
		}
		for _, c := range codes {
			putUvarint(uint64(remap[c]))
		}
	}

	var header [20]byte
	copy(header[:8], snapMagic)
	binary.LittleEndian.PutUint32(header[8:12], crc32.Checksum(payload.Bytes(), snapCRC))
	binary.LittleEndian.PutUint64(header[12:20], uint64(payload.Len()))
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// ReadSnapshot decodes one snapshot document into a fresh instance whose
// per-attribute code columns are already cached — rehydration pays no
// re-interning. Damaged input errors match ErrSnapshotCorrupt; errors from
// r are returned as-is.
func ReadSnapshot(r io.Reader) (*Instance, error) {
	var header [20]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, corruptf("short header")
		}
		return nil, err
	}
	if string(header[:8]) != snapMagic {
		return nil, corruptf("bad magic %q", header[:8])
	}
	wantCRC := binary.LittleEndian.Uint32(header[8:12])
	length := binary.LittleEndian.Uint64(header[12:20])
	if length > maxSnapshotPayload {
		return nil, corruptf("payload length %d exceeds limit", length)
	}
	// Read incrementally rather than allocating the declared length up
	// front: a corrupt header claiming gigabytes must cost only as much
	// memory as data actually arrives.
	payload, err := io.ReadAll(io.LimitReader(r, int64(length)))
	if err != nil {
		return nil, err
	}
	if uint64(len(payload)) != length {
		return nil, corruptf("truncated payload: %d of %d bytes", len(payload), length)
	}
	if got := crc32.Checksum(payload, snapCRC); got != wantCRC {
		return nil, corruptf("checksum mismatch: file says %08x, payload is %08x", wantCRC, got)
	}
	// A snapshot is a whole document: bytes beyond the declared payload
	// mean the file was damaged or double-written.
	var extra [1]byte
	if n, _ := io.ReadFull(r, extra[:]); n != 0 {
		return nil, corruptf("data after the declared payload")
	}
	return decodeSnapshotPayload(payload)
}

// ReadSnapshotBytes is ReadSnapshot over an in-memory document — the
// zero-copy entry for memory-mapped snapshot files. The slice is only read
// during the call (the decoder copies every value it keeps), so callers
// may unmap b as soon as it returns. Validation matches ReadSnapshot: bad
// magic, checksum, truncation, or trailing bytes all error with
// ErrSnapshotCorrupt.
func ReadSnapshotBytes(b []byte) (*Instance, error) {
	if len(b) < 20 {
		return nil, corruptf("short header")
	}
	if string(b[:8]) != snapMagic {
		return nil, corruptf("bad magic %q", b[:8])
	}
	wantCRC := binary.LittleEndian.Uint32(b[8:12])
	length := binary.LittleEndian.Uint64(b[12:20])
	if length > maxSnapshotPayload {
		return nil, corruptf("payload length %d exceeds limit", length)
	}
	if uint64(len(b)-20) < length {
		return nil, corruptf("truncated payload: %d of %d bytes", len(b)-20, length)
	}
	if uint64(len(b)-20) > length {
		return nil, corruptf("data after the declared payload")
	}
	payload := b[20:]
	if got := crc32.Checksum(payload, snapCRC); got != wantCRC {
		return nil, corruptf("checksum mismatch: file says %08x, payload is %08x", wantCRC, got)
	}
	return decodeSnapshotPayload(payload)
}

// snapReader walks the checksummed payload; every read failure is a
// corruption (the checksum already matched, so the structure itself lies).
type snapReader struct {
	buf []byte
}

func (d *snapReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, corruptf("bad uvarint")
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *snapReader) varint() (int64, error) {
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		return 0, corruptf("bad varint")
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *snapReader) string() (string, error) {
	l, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if l > uint64(len(d.buf)) {
		return "", corruptf("string length %d overruns payload", l)
	}
	s := string(d.buf[:l])
	d.buf = d.buf[l:]
	return s, nil
}

func (d *snapReader) byte() (byte, error) {
	if len(d.buf) == 0 {
		return 0, corruptf("unexpected end of payload")
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b, nil
}

func decodeSnapshotPayload(payload []byte) (*Instance, error) {
	d := &snapReader{buf: payload}
	width, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if width == 0 || width > MaxAttrs {
		return nil, corruptf("width %d outside [1, %d]", width, MaxAttrs)
	}
	names := make([]string, width)
	for a := range names {
		if names[a], err = d.string(); err != nil {
			return nil, err
		}
	}
	schema, err := NewSchema(names...)
	if err != nil {
		return nil, corruptf("invalid schema: %v", err)
	}
	nTuples, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Each (dict entry + code) costs at least one payload byte, so the
	// tuple count is bounded by what actually arrived.
	if nTuples > uint64(len(payload)) {
		return nil, corruptf("tuple count %d overruns payload", nTuples)
	}

	in := NewInstance(schema)
	in.Tuples = make([]Tuple, nTuples)
	cells := make([]Value, nTuples*width) // one backing array for all rows
	for t := range in.Tuples {
		in.Tuples[t] = cells[uint64(t)*width : (uint64(t)+1)*width : (uint64(t)+1)*width]
	}
	in.codes.cols = make([]*codeColumn, width)

	for a := 0; a < int(width); a++ {
		dictLen, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if dictLen > nTuples || (nTuples > 0 && dictLen == 0) || dictLen > math.MaxInt32 {
			return nil, corruptf("attribute %d: dictionary of %d values for %d tuples", a, dictLen, nTuples)
		}
		dict := make([]Value, dictLen)
		for c := range dict {
			kind, err := d.byte()
			if err != nil {
				return nil, err
			}
			switch kind {
			case 0:
				s, err := d.string()
				if err != nil {
					return nil, err
				}
				dict[c] = Const(s)
			case 1:
				id, err := d.varint()
				if err != nil {
					return nil, err
				}
				dict[c] = Value{id: id, isVar: true}
			default:
				return nil, corruptf("attribute %d: unknown value kind %d", a, kind)
			}
		}
		codes := make([]int32, nTuples)
		for t := range codes {
			c, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if c >= dictLen {
				return nil, corruptf("attribute %d: code %d outside dictionary of %d", a, c, dictLen)
			}
			codes[t] = int32(c)
			in.Tuples[t][a] = dict[c]
		}
		in.codes.cols[a] = &codeColumn{codes: codes, n: int32(dictLen)}
	}
	if len(d.buf) != 0 {
		return nil, corruptf("%d trailing bytes after payload", len(d.buf))
	}
	return in, nil
}
