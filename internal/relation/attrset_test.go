package relation

import (
	"testing"
	"testing/quick"
)

func TestAttrSetBasics(t *testing.T) {
	s := NewAttrSet(0, 3, 5)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, a := range []int{0, 3, 5} {
		if !s.Contains(a) {
			t.Errorf("Contains(%d) = false, want true", a)
		}
	}
	for _, a := range []int{1, 2, 4, 63} {
		if s.Contains(a) {
			t.Errorf("Contains(%d) = true, want false", a)
		}
	}
	if s.Min() != 0 || s.Max() != 5 {
		t.Errorf("Min/Max = %d/%d, want 0/5", s.Min(), s.Max())
	}
	if got := s.String(); got != "{0,3,5}" {
		t.Errorf("String = %q", got)
	}
}

func TestAttrSetEmpty(t *testing.T) {
	var s AttrSet
	if !s.IsEmpty() || s.Len() != 0 {
		t.Fatal("zero AttrSet should be empty")
	}
	if s.Min() != -1 || s.Max() != -1 {
		t.Errorf("Min/Max of empty = %d/%d, want -1/-1", s.Min(), s.Max())
	}
	if len(s.Attrs()) != 0 {
		t.Errorf("Attrs of empty = %v", s.Attrs())
	}
	if !s.SubsetOf(NewAttrSet(1)) {
		t.Error("empty set should be subset of everything")
	}
	if s.ProperSubsetOf(s) {
		t.Error("set is not a proper subset of itself")
	}
}

func TestAttrSetAddRemove(t *testing.T) {
	s := NewAttrSet(2)
	s = s.Add(2) // idempotent
	if s.Len() != 1 {
		t.Fatalf("Add not idempotent: %v", s)
	}
	s = s.Remove(2)
	if !s.IsEmpty() {
		t.Fatalf("Remove failed: %v", s)
	}
	if s.Remove(99) != s {
		t.Error("Remove out-of-range should be a no-op")
	}
}

func TestAttrSetAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(64) should panic")
		}
	}()
	NewAttrSet(64)
}

func TestFullSet(t *testing.T) {
	if FullSet(0) != 0 {
		t.Error("FullSet(0) should be empty")
	}
	if got := FullSet(3); got != NewAttrSet(0, 1, 2) {
		t.Errorf("FullSet(3) = %v", got)
	}
	if FullSet(64).Len() != 64 {
		t.Errorf("FullSet(64).Len() = %d", FullSet(64).Len())
	}
}

func TestAttrSetSetAlgebraProperties(t *testing.T) {
	// Union/Intersect/Diff agree with element-wise membership.
	f := func(x, y uint16) bool {
		a, b := AttrSet(x), AttrSet(y)
		for i := 0; i < 16; i++ {
			u := a.Union(b).Contains(i) == (a.Contains(i) || b.Contains(i))
			n := a.Intersect(b).Contains(i) == (a.Contains(i) && b.Contains(i))
			d := a.Diff(b).Contains(i) == (a.Contains(i) && !b.Contains(i))
			if !u || !n || !d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAttrSetSubsetProperties(t *testing.T) {
	f := func(x, y uint16) bool {
		a, b := AttrSet(x), AttrSet(y)
		// a∩b ⊆ a ⊆ a∪b, and SubsetOf is consistent with Diff.
		if !a.Intersect(b).SubsetOf(a) || !a.SubsetOf(a.Union(b)) {
			return false
		}
		return a.SubsetOf(b) == a.Diff(b).IsEmpty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAttrSetAttrsRoundTrip(t *testing.T) {
	f := func(x uint32) bool {
		a := AttrSet(x)
		back := NewAttrSet(a.Attrs()...)
		if back != a {
			return false
		}
		// Attrs is sorted ascending.
		attrs := a.Attrs()
		for i := 1; i < len(attrs); i++ {
			if attrs[i-1] >= attrs[i] {
				return false
			}
		}
		return len(attrs) == a.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAttrSetForEachEarlyStop(t *testing.T) {
	s := NewAttrSet(1, 2, 3)
	count := 0
	s.ForEach(func(a int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("ForEach visited %d attrs after early stop, want 2", count)
	}
}

func TestSortAttrSets(t *testing.T) {
	sets := []AttrSet{NewAttrSet(0, 1), NewAttrSet(5), NewAttrSet(2), NewAttrSet(0, 1, 2)}
	SortAttrSets(sets)
	want := []AttrSet{NewAttrSet(2), NewAttrSet(5), NewAttrSet(0, 1), NewAttrSet(0, 1, 2)}
	for i := range want {
		if sets[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, sets[i], want[i])
		}
	}
}

func TestAttrSetNames(t *testing.T) {
	s := MustSchema("A", "B", "C")
	if got := NewAttrSet(0, 2).Names(s); got != "A,C" {
		t.Errorf("Names = %q, want A,C", got)
	}
}
