package relation

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// strippedVia computes the stripped partition of X by a from-scratch
// BeginAll + RefineSet pass — the oracle Product must agree with.
func strippedVia(p *Partitioner, x AttrSet) Partition {
	p.BeginAll()
	p.RefineSet(x)
	pt := p.Partition()
	out := Partition{Offsets: []int32{0}}
	for gi := 0; gi < pt.NumGroups(); gi++ {
		g := pt.Group(gi)
		if len(g) < 2 {
			continue
		}
		out.Tuples = append(out.Tuples, g...)
		out.Offsets = append(out.Offsets, int32(len(out.Tuples)))
	}
	return out.Clone()
}

// canonPartition renders a partition as a canonical class set: classes
// sorted internally and by first element, so two partitions with the
// same classes in different encounter orders compare equal.
func canonPartition(pt Partition) [][]int32 {
	out := make([][]int32, 0, pt.NumGroups())
	for gi := 0; gi < pt.NumGroups(); gi++ {
		g := append([]int32(nil), pt.Group(gi)...)
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func samePartition(a, b Partition) bool {
	ca, cb := canonPartition(a), canonPartition(b)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if len(ca[i]) != len(cb[i]) {
			return false
		}
		for j := range ca[i] {
			if ca[i][j] != cb[i][j] {
				return false
			}
		}
	}
	return true
}

// randProductInstance mirrors the duplicate-heavy shapes of the discovery
// oracle tests: few distinct values per column, so partitions carry real
// multi-tuple classes at several levels.
func randProductInstance(rng *rand.Rand) *Instance {
	width := 3 + rng.Intn(4)
	names := make([]string, width)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	in := NewInstance(MustSchema(names...))
	n := 2 + rng.Intn(40)
	for t := 0; t < n; t++ {
		tp := make(Tuple, width)
		for a := range tp {
			tp[a] = Const(fmt.Sprintf("v%d", rng.Intn(2+rng.Intn(3))))
		}
		_ = in.Append(tp)
	}
	return in
}

// TestQuickProductMatchesRefineSet: π(X)·π(Y) equals the from-scratch
// stripped partition of X∪Y across random shapes, seeds, and overlapping
// attribute sets (the prefix-join parents of discovery always overlap in
// k−1 attributes, but the product is exact for any pair).
func TestQuickProductMatchesRefineSet(t *testing.T) {
	f := func(seed int64, xRaw, yRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randProductInstance(rng)
		full := FullSet(in.Schema.Width())
		x := AttrSet(xRaw) & full
		y := AttrSet(yRaw) & full
		if x.IsEmpty() {
			x = NewAttrSet(0)
		}
		if y.IsEmpty() {
			y = NewAttrSet(in.Schema.Width() - 1)
		}
		p := NewPartitioner(in)
		px := strippedVia(p, x)
		py := strippedVia(p, y)
		got := p.Product(px, py)
		want := strippedVia(p, x.Union(y))
		return samePartition(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestProductIsOwned: the result survives subsequent partitioner calls
// that overwrite the scratch buffers — the property the store relies on.
func TestProductIsOwned(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randProductInstance(rng)
	p := NewPartitioner(in)
	x, y := NewAttrSet(0), NewAttrSet(1)
	px := strippedVia(p, x)
	py := strippedVia(p, y)
	got := p.Product(px, py)
	snap := got.Clone()
	// Churn every scratch path: refinement, split, and another product.
	p.BeginAll()
	p.RefineSet(FullSet(in.Schema.Width()))
	if in.N() > 0 {
		all := make([]int32, in.N())
		for i := range all {
			all[i] = int32(i)
		}
		_ = p.Split(all, 0)
	}
	_ = p.Product(py, px)
	if !samePartition(got, snap) {
		t.Fatal("Product result aliases partitioner scratch")
	}
}

func TestProductEmptyFactors(t *testing.T) {
	in := NewInstance(MustSchema("A", "B"))
	_ = in.Append(Tuple{Const("1"), Const("2")})
	p := NewPartitioner(in)
	empty := Partition{Offsets: []int32{0}}
	px := strippedVia(p, NewAttrSet(0))
	if got := p.Product(empty, px); got.NumGroups() != 0 {
		t.Errorf("empty · π(X) has %d groups", got.NumGroups())
	}
	if got := p.Product(px, empty); got.NumGroups() != 0 {
		t.Errorf("π(X) · empty has %d groups", got.NumGroups())
	}
}

func TestPartitionStoreLevelEviction(t *testing.T) {
	s := NewPartitionStore()
	one := Partition{Tuples: []int32{0, 1}, Offsets: []int32{0, 2}}
	s.Put(NewAttrSet(0), one)
	s.Put(NewAttrSet(1), one)
	s.Put(NewAttrSet(0, 1), one)
	s.Put(NewAttrSet(0, 2), one)
	if s.Len() != 4 || s.Peak() != 4 {
		t.Fatalf("len=%d peak=%d, want 4/4", s.Len(), s.Peak())
	}
	// Re-putting an existing key must not inflate the counters.
	s.Put(NewAttrSet(0), one)
	if s.Len() != 4 || s.Peak() != 4 {
		t.Fatalf("re-put inflated counters: len=%d peak=%d", s.Len(), s.Peak())
	}
	s.EvictLevel(1)
	if s.Len() != 2 {
		t.Fatalf("len=%d after evicting level 1, want 2", s.Len())
	}
	if _, ok := s.Get(NewAttrSet(0)); ok {
		t.Fatal("evicted partition still served")
	}
	if _, ok := s.Get(NewAttrSet(0, 1)); !ok {
		t.Fatal("level-2 partition lost by level-1 eviction")
	}
	if s.Peak() != 4 {
		t.Fatalf("peak=%d after eviction, want the high-water 4", s.Peak())
	}
}

// BenchmarkPartitionProduct vs BenchmarkPartitionRefineLevel measure the
// two ways of building one level-k partition: the probe-table product of
// two cached level-(k−1) parents against a from-scratch RefineSet — the
// product-vs-refine cost BENCH_discovery.json records at the discovery
// level.
func benchProductInstance(b *testing.B) (*Instance, AttrSet, AttrSet) {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	names := make([]string, 8)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	in := NewInstance(MustSchema(names...))
	for t := 0; t < 4000; t++ {
		tp := make(Tuple, len(names))
		for a := range tp {
			tp[a] = Const(fmt.Sprintf("v%d", rng.Intn(6)))
		}
		_ = in.Append(tp)
	}
	return in, NewAttrSet(0, 1), NewAttrSet(0, 2)
}

func BenchmarkPartitionProduct(b *testing.B) {
	in, x, y := benchProductInstance(b)
	p := NewPartitioner(in)
	px := strippedVia(p, x)
	py := strippedVia(p, y)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Product(px, py)
	}
}

func BenchmarkPartitionRefineLevel(b *testing.B) {
	in, x, y := benchProductInstance(b)
	p := NewPartitioner(in)
	union := x.Union(y)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.BeginAll()
		p.RefineSet(union)
		_ = p.Partition()
	}
}
