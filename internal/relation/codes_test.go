package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randInstance builds a small instance with duplicate-heavy constant
// domains and a sprinkling of shared and distinct variables — the value
// mix every partition map in the system must handle.
func randInstance(rng *rand.Rand, width, n int) *Instance {
	names := make([]string, width)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	in := NewInstance(MustSchema(names...))
	var g VarGen
	shared := []Value{g.Fresh(), g.Fresh()}
	for t := 0; t < n; t++ {
		tp := make(Tuple, width)
		for a := range tp {
			switch rng.Intn(10) {
			case 0:
				tp[a] = shared[rng.Intn(len(shared))]
			case 1:
				tp[a] = g.Fresh()
			default:
				tp[a] = Const(string(rune('a' + rng.Intn(3))))
			}
		}
		_ = in.Append(tp)
	}
	return in
}

// stringGroups is the legacy string-keyed partition: projection key →
// members in tuple order.
func stringGroups(in *Instance, tuples []int32, x AttrSet) map[string][]int32 {
	groups := make(map[string][]int32)
	for _, t := range tuples {
		groups[in.Project(int(t), x)] = append(groups[in.Project(int(t), x)], t)
	}
	return groups
}

// TestQuickCodesMatchProjectKeys: per-attribute codes agree exactly with
// single-attribute projection keys, and the distinct-code count matches.
func TestQuickCodesMatchProjectKeys(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng, 3+rng.Intn(3), 1+rng.Intn(30))
		for a := 0; a < in.Schema.Width(); a++ {
			codes, n := in.Codes(a)
			distinct := make(map[string]bool)
			for i := 0; i < in.N(); i++ {
				distinct[in.Tuples[i][a].Key()] = true
				for j := i + 1; j < in.N(); j++ {
					want := in.Tuples[i][a].Equal(in.Tuples[j][a])
					if (codes[i] == codes[j]) != want {
						return false
					}
				}
			}
			if int(n) != len(distinct) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickPartitionerMatchesStringGroups: refining the full tuple set by
// an arbitrary attribute set yields exactly the legacy string-keyed groups,
// with members in ascending tuple order within each group.
func TestQuickPartitionerMatchesStringGroups(t *testing.T) {
	f := func(seed int64, setRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng, 4+rng.Intn(3), 1+rng.Intn(40))
		x := AttrSet(setRaw) & FullSet(in.Schema.Width())
		p := NewPartitioner(in)
		p.BeginAll()
		p.RefineSet(x)
		pt := p.Partition()

		all := make([]int32, in.N())
		for i := range all {
			all[i] = int32(i)
		}
		want := stringGroups(in, all, x)

		if pt.NumGroups() != len(want) || pt.Len() != in.N() {
			return false
		}
		for gi := 0; gi < pt.NumGroups(); gi++ {
			g := pt.Group(gi)
			ref, ok := want[in.Project(int(g[0]), x)]
			if !ok || len(ref) != len(g) {
				return false
			}
			for i := range g {
				if g[i] != ref[i] { // same members, same (ascending) order
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickSplitMatchesStringGroups: Split on an arbitrary subset of
// tuples agrees with string-keyed grouping of that subset and leaves the
// current partition intact.
func TestQuickSplitMatchesStringGroups(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng, 3+rng.Intn(3), 2+rng.Intn(30))
		var g []int32
		for t := 0; t < in.N(); t++ {
			if rng.Intn(2) == 0 {
				g = append(g, int32(t))
			}
		}
		a := rng.Intn(in.Schema.Width())
		p := NewPartitioner(in)
		p.BeginAll()
		sp := p.Split(g, a)
		want := stringGroups(in, g, NewAttrSet(a))
		if sp.NumGroups() != len(want) {
			return false
		}
		for si := 0; si < sp.NumGroups(); si++ {
			sub := sp.Group(si)
			ref := want[in.Project(int(sub[0]), NewAttrSet(a))]
			if len(ref) != len(sub) {
				return false
			}
			for i := range sub {
				if sub[i] != ref[i] {
					return false
				}
			}
		}
		// Split must not disturb the current partition.
		return p.Partition().Len() == in.N() && p.Partition().NumGroups() == min(1, in.N())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// keyOfRef mirrors the legacy standalone-tuple projection key.
func keyOfRef(t Tuple, x AttrSet) string {
	key := ""
	x.ForEach(func(a int) bool {
		key += t[a].Key() + "\x1f"
		return true
	})
	return key
}

// TestQuickProjCoderMatchesKeys: ProjCoder codes agree with legacy string
// keys on standalone tuples, and Lookup is consistent with Code.
func TestQuickProjCoderMatchesKeys(t *testing.T) {
	f := func(seed int64, setRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 4
		x := AttrSet(setRaw) & FullSet(width)
		c := NewProjCoder(x, nil)
		var g VarGen
		shared := []Value{g.Fresh(), g.Fresh()}
		mk := func() Tuple {
			tp := make(Tuple, width)
			for a := range tp {
				switch rng.Intn(8) {
				case 0:
					tp[a] = shared[rng.Intn(len(shared))]
				case 1:
					tp[a] = g.Fresh()
				default:
					tp[a] = Const(string(rune('a' + rng.Intn(3))))
				}
			}
			return tp
		}
		var tuples []Tuple
		var codes []int32
		for i := 0; i < 25; i++ {
			tp := mk()
			// Lookup before coding must agree with the string-keyed history.
			k, ok := c.Lookup(tp)
			code := c.Code(tp)
			if ok && k != code {
				return false
			}
			tuples = append(tuples, tp)
			codes = append(codes, code)
			// After interning, Lookup must find the same code.
			if k2, ok2 := c.Lookup(tp); !ok2 || k2 != code {
				return false
			}
		}
		for i := range tuples {
			for j := range tuples {
				want := keyOfRef(tuples[i], x) == keyOfRef(tuples[j], x)
				if (codes[i] == codes[j]) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCodesAppendInvalidates: appending tuples after a column was built
// rebuilds it; in-place mutation requires InvalidateCodes.
func TestCodesAppendInvalidates(t *testing.T) {
	in := NewInstance(MustSchema("A", "B"))
	_ = in.AppendConsts("x", "1")
	_ = in.AppendConsts("y", "2")
	codes, n := in.Codes(0)
	if len(codes) != 2 || n != 2 {
		t.Fatalf("codes=%v n=%d", codes, n)
	}
	_ = in.AppendConsts("x", "3")
	codes, n = in.Codes(0)
	if len(codes) != 3 || n != 2 || codes[0] != codes[2] {
		t.Fatalf("after append: codes=%v n=%d", codes, n)
	}
	in.Tuples[1][0] = Const("x")
	in.InvalidateCodes()
	codes, n = in.Codes(0)
	if n != 1 || codes[0] != codes[1] || codes[1] != codes[2] {
		t.Fatalf("after mutate+invalidate: codes=%v n=%d", codes, n)
	}
}

// TestPartitionerEmpty: zero-tuple seeds and empty instances are handled.
func TestPartitionerEmpty(t *testing.T) {
	in := NewInstance(MustSchema("A"))
	p := NewPartitioner(in)
	p.BeginAll()
	p.Refine(0)
	if got := p.Partition().NumGroups(); got != 0 {
		t.Fatalf("empty instance: %d groups", got)
	}
	_ = in.AppendConsts("x")
	p2 := NewPartitioner(in)
	p2.Begin(nil)
	p2.Refine(0)
	if got := p2.Partition().NumGroups(); got != 0 {
		t.Fatalf("empty seed: %d groups", got)
	}
	sp := p2.Split(nil, 0)
	if sp.NumGroups() != 0 {
		t.Fatalf("empty split: %d groups", sp.NumGroups())
	}
}
