package relation

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	in := NewInstance(MustSchema("Name", "City"))
	_ = in.AppendConsts("Ann", "Oslo")
	_ = in.AppendConsts("Bob", "Rome, Italy") // embedded comma exercises quoting

	var buf strings.Builder
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 2 || back.Schema.Width() != 2 {
		t.Fatalf("round trip shape: %d tuples × %d attrs", back.N(), back.Schema.Width())
	}
	if got := back.Tuples[1][1].Str(); got != "Rome, Italy" {
		t.Errorf("quoted field = %q", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty stream must fail on header")
	}
	if _, err := ReadCSV(strings.NewReader("A,B\n1\n")); err == nil {
		t.Error("ragged row must fail")
	}
	if _, err := ReadCSV(strings.NewReader("A,A\n1,2\n")); err == nil {
		t.Error("duplicate header names must fail")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.csv")
	in := NewInstance(MustSchema("X"))
	_ = in.AppendConsts("1")
	if err := WriteCSVFile(path, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 1 || back.Tuples[0][0].Str() != "1" {
		t.Error("file round trip mismatch")
	}
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file must error")
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema must fail")
	}
	if _, err := NewSchema(""); err == nil {
		t.Error("blank attribute name must fail")
	}
	names := make([]string, MaxAttrs+1)
	for i := range names {
		names[i] = string(rune('A')) + itoa(i)
	}
	if _, err := NewSchema(names...); err == nil {
		t.Error("over-wide schema must fail")
	}
	s := MustSchema("A", "B")
	if s.Index("A") != 0 || s.Index("missing") != -1 {
		t.Error("Index lookup broken")
	}
	if s.String() != "R(A, B)" {
		t.Errorf("String = %q", s.String())
	}
	set, err := s.ParseAttrs(" A , B ")
	if err != nil || set != NewAttrSet(0, 1) {
		t.Errorf("ParseAttrs = %v, %v", set, err)
	}
	if _, err := s.ParseAttrs("A,Z"); err == nil {
		t.Error("unknown attribute must fail")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}
