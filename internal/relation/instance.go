package relation

import (
	"fmt"
	"strings"
)

// Tuple is one row of an instance; Tuple[a] is the cell of attribute a.
type Tuple []Value

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Equal reports cell-wise V-instance equality of two tuples.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// AgreeOn reports whether t and u agree (cell equality) on every attribute
// in the set X. Per V-instance semantics, a cell holding a variable agrees
// only with the very same variable.
func (t Tuple) AgreeOn(u Tuple, X AttrSet) bool {
	agree := true
	X.ForEach(func(a int) bool {
		if !t[a].Equal(u[a]) {
			agree = false
			return false
		}
		return true
	})
	return agree
}

// DiffSet returns the set of attributes on which t and u differ — the
// "difference set" of the pair (Section 5.2 of the paper).
func (t Tuple) DiffSet(u Tuple) AttrSet {
	var d AttrSet
	for a := range t {
		if !t[a].Equal(u[a]) {
			d = d.Add(a)
		}
	}
	return d
}

// Instance is a (V-)instance of a schema: an ordered multiset of tuples.
// Tuple order is stable and tuple indices are used as identities throughout
// the repair algorithms (e.g. vertex-cover membership).
//
// Instances are always handled by pointer: the embedded code cache (see
// Codes) contains a mutex and must not be copied.
type Instance struct {
	Schema *Schema
	Tuples []Tuple

	codes codeCache // lazily built dictionary-code columns; see codes.go
}

// NewInstance returns an empty instance of the schema.
func NewInstance(s *Schema) *Instance {
	return &Instance{Schema: s}
}

// N returns the number of tuples.
func (in *Instance) N() int { return len(in.Tuples) }

// Append adds a tuple, validating its width.
func (in *Instance) Append(t Tuple) error {
	if len(t) != in.Schema.Width() {
		return fmt.Errorf("relation: tuple width %d does not match schema width %d", len(t), in.Schema.Width())
	}
	in.Tuples = append(in.Tuples, t)
	return nil
}

// AppendConsts adds a tuple of constant cells.
func (in *Instance) AppendConsts(vals ...string) error {
	if len(vals) != in.Schema.Width() {
		return fmt.Errorf("relation: %d values for schema width %d", len(vals), in.Schema.Width())
	}
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = Const(v)
	}
	in.Tuples = append(in.Tuples, t)
	return nil
}

// Clone returns a deep copy (tuples and cells). Cached code columns are
// not carried over: a clone that is subsequently mutated starts from an
// empty cache and can never observe stale codes.
func (in *Instance) Clone() *Instance {
	out := &Instance{Schema: in.Schema, Tuples: make([]Tuple, len(in.Tuples))}
	for i, t := range in.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// Project returns the values of tuple i on the attributes of X, joined into
// a hashable key. Variable cells embed their identity so that distinct
// variables never collide with constants or each other.
func (in *Instance) Project(i int, X AttrSet) string {
	var b strings.Builder
	X.ForEach(func(a int) bool {
		b.WriteString(in.Tuples[i][a].Key())
		b.WriteByte(0x1f) // unit separator: cannot occur in CSV fields we read
		return true
	})
	return b.String()
}

// DiffCells returns the set of cell coordinates at which in and other hold
// non-equal values: Δd(I, I′) of the paper. Both instances must have the
// same schema width and tuple count (data repairs never add or drop tuples).
func (in *Instance) DiffCells(other *Instance) ([]CellRef, error) {
	if in.Schema.Width() != other.Schema.Width() {
		return nil, fmt.Errorf("relation: schema width mismatch %d vs %d", in.Schema.Width(), other.Schema.Width())
	}
	if len(in.Tuples) != len(other.Tuples) {
		return nil, fmt.Errorf("relation: tuple count mismatch %d vs %d", len(in.Tuples), len(other.Tuples))
	}
	var out []CellRef
	for i := range in.Tuples {
		for a := range in.Tuples[i] {
			if !in.Tuples[i][a].Equal(other.Tuples[i][a]) {
				out = append(out, CellRef{Tuple: i, Attr: a})
			}
		}
	}
	return out, nil
}

// CellRef names one cell of an instance.
type CellRef struct {
	Tuple int
	Attr  int
}

// String renders the reference as "t3[Phone]"-style when given a schema via
// Format; the bare form is "t3[5]".
func (c CellRef) String() string { return fmt.Sprintf("t%d[%d]", c.Tuple, c.Attr) }

// Format renders the reference with the attribute name.
func (c CellRef) Format(s *Schema) string {
	return fmt.Sprintf("t%d[%s]", c.Tuple, s.Name(c.Attr))
}

// Ground instantiates every variable of the V-instance with a concrete
// fresh constant, returning a plain instance. Fresh constants are formed as
// "<prefix><n>" and are guaranteed distinct from every constant occurring in
// the instance and from each other, satisfying Definition 1.
func (in *Instance) Ground(prefix string) *Instance {
	used := make(map[string]bool)
	for _, t := range in.Tuples {
		for _, v := range t {
			if !v.IsVar() {
				used[v.Str()] = true
			}
		}
	}
	assigned := make(map[int64]string)
	next := 0
	fresh := func(id int64) string {
		if s, ok := assigned[id]; ok {
			return s
		}
		for {
			cand := fmt.Sprintf("%s%d", prefix, next)
			next++
			if !used[cand] {
				used[cand] = true
				assigned[id] = cand
				return cand
			}
		}
	}
	out := in.Clone()
	for _, t := range out.Tuples {
		for a, v := range t {
			if v.IsVar() {
				t[a] = Const(fresh(v.VarID()))
			}
		}
	}
	return out
}

// CountVars returns the number of variable cells in the instance.
func (in *Instance) CountVars() int {
	n := 0
	for _, t := range in.Tuples {
		for _, v := range t {
			if v.IsVar() {
				n++
			}
		}
	}
	return n
}

// String renders a small instance as an aligned table; intended for
// examples and debugging, not for large data.
func (in *Instance) String() string {
	w := make([]int, in.Schema.Width())
	for a := 0; a < in.Schema.Width(); a++ {
		w[a] = len(in.Schema.Name(a))
	}
	for _, t := range in.Tuples {
		for a, v := range t {
			if l := len(v.String()); l > w[a] {
				w[a] = l
			}
		}
	}
	var b strings.Builder
	for a := 0; a < in.Schema.Width(); a++ {
		fmt.Fprintf(&b, "%-*s  ", w[a], in.Schema.Name(a))
	}
	b.WriteByte('\n')
	for _, t := range in.Tuples {
		for a, v := range t {
			fmt.Fprintf(&b, "%-*s  ", w[a], v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
