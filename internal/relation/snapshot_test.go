package relation

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// snapInstance builds a fixture with repeated values (so dictionaries are
// smaller than columns) and, optionally, variable cells.
func snapInstance(t *testing.T, withVars bool) *Instance {
	t.Helper()
	in := NewInstance(MustSchema("City", "ZIP", "State"))
	rows := [][]string{
		{"Springfield", "62701", "IL"},
		{"Springfield", "62701", "IL"},
		{"Springfield", "97477", "OR"},
		{"Shelbyville", "46176", "IN"},
	}
	for _, r := range rows {
		if err := in.AppendConsts(r...); err != nil {
			t.Fatal(err)
		}
	}
	if withVars {
		var g VarGen
		v1, v2 := g.Fresh(), g.Fresh()
		in.Tuples[1][1] = v1
		in.Tuples[2][1] = v1 // same variable twice: must stay identical
		in.Tuples[3][2] = v2
	}
	return in
}

func encodeSnapshot(t *testing.T, in *Instance) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, in); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func assertSameInstance(t *testing.T, got, want *Instance) {
	t.Helper()
	if g, w := got.Schema.String(), want.Schema.String(); g != w {
		t.Fatalf("schema %s, want %s", g, w)
	}
	if got.N() != want.N() {
		t.Fatalf("%d tuples, want %d", got.N(), want.N())
	}
	for i := range want.Tuples {
		if !got.Tuples[i].Equal(want.Tuples[i]) {
			t.Errorf("tuple %d = %v, want %v", i, got.Tuples[i], want.Tuples[i])
		}
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	for _, withVars := range []bool{false, true} {
		in := snapInstance(t, withVars)
		out, err := ReadSnapshot(bytes.NewReader(encodeSnapshot(t, in)))
		if err != nil {
			t.Fatalf("withVars=%v: %v", withVars, err)
		}
		assertSameInstance(t, out, in)
		// The code columns must have been rehydrated, not rebuilt: the
		// cache is populated before any Codes call.
		if out.codes.cols == nil {
			t.Fatal("decoded instance has no cached code columns")
		}
		for a := 0; a < in.Schema.Width(); a++ {
			if out.codes.cols[a] == nil {
				t.Fatalf("attribute %d: code column not rehydrated", a)
			}
			wantCodes, wantN := in.Codes(a)
			gotCodes, gotN := out.Codes(a)
			if gotN != wantN {
				t.Errorf("attribute %d: %d distinct codes, want %d", a, gotN, wantN)
			}
			for i := range wantCodes {
				if gotCodes[i] != wantCodes[i] {
					t.Errorf("attribute %d code %d: %d, want %d", a, i, gotCodes[i], wantCodes[i])
				}
			}
		}
	}
}

func TestSnapshotRoundtripEmpty(t *testing.T) {
	in := NewInstance(MustSchema("A", "B"))
	out, err := ReadSnapshot(bytes.NewReader(encodeSnapshot(t, in)))
	if err != nil {
		t.Fatal(err)
	}
	assertSameInstance(t, out, in)
}

func TestSnapshotRoundtripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		width := 1 + rng.Intn(6)
		names := make([]string, width)
		for i := range names {
			names[i] = "A" + string(rune('0'+i))
		}
		in := NewInstance(MustSchema(names...))
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			row := make([]string, width)
			for a := range row {
				row[a] = strings.Repeat("v", 1+rng.Intn(3)) + string(rune('a'+rng.Intn(4)))
			}
			if err := in.AppendConsts(row...); err != nil {
				t.Fatal(err)
			}
		}
		out, err := ReadSnapshot(bytes.NewReader(encodeSnapshot(t, in)))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertSameInstance(t, out, in)
	}
}

// TestSnapshotCorruption: every damaged form of a valid snapshot decodes
// to ErrSnapshotCorrupt — never a panic, never a silently wrong instance.
func TestSnapshotCorruption(t *testing.T) {
	valid := encodeSnapshot(t, snapInstance(t, false))
	cases := map[string][]byte{
		"empty":       {},
		"short":       valid[:10],
		"bad magic":   append([]byte("NOTSNAP0"), valid[8:]...),
		"old version": append([]byte("RTSNAP00"), valid[8:]...),
		"truncated":   valid[:len(valid)-3],
		"trailing":    append(append([]byte{}, valid...), 0xff),
	}
	// Flip one payload byte: the checksum must catch it.
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)-1] ^= 0x5a
	cases["bit flip"] = flipped

	for name, data := range cases {
		if _, err := ReadSnapshot(bytes.NewReader(data)); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("%s: err = %v, want ErrSnapshotCorrupt", name, err)
		}
	}
}

// FuzzReadSnapshot: arbitrary bytes must decode to an instance or an
// error, never a panic or runaway allocation; valid snapshots round-trip.
func FuzzReadSnapshot(f *testing.F) {
	in := NewInstance(MustSchema("A", "B"))
	_ = in.AppendConsts("x", "y")
	_ = in.AppendConsts("x", "z")
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, in); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must re-encode to an equal instance.
		var out bytes.Buffer
		if err := WriteSnapshot(&out, got); err != nil {
			t.Fatalf("re-encoding decoded snapshot: %v", err)
		}
		again, err := ReadSnapshot(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding: %v", err)
		}
		if again.N() != got.N() || again.Schema.String() != got.Schema.String() {
			t.Fatalf("roundtrip drift: %d/%s vs %d/%s",
				again.N(), again.Schema, got.N(), got.Schema)
		}
	})
}
