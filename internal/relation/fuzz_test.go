package relation

import (
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV reader never panics and accepted inputs
// round-trip structurally (same shape after write + re-read).
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		"A,B\n1,2\n",
		"A\n\n",
		"A,B\n\"x,y\",z\n",
		"A,A\n1,2\n",
		",\n,\n",
		"A,B\n1\n",
		"H\n" + strings.Repeat("v\n", 5),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		in, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		var out strings.Builder
		if err := WriteCSV(&out, in); err != nil {
			t.Fatalf("accepted instance fails to serialize: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("serialized instance fails to re-parse: %v", err)
		}
		if back.N() != in.N() || back.Schema.Width() != in.Schema.Width() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				in.N(), in.Schema.Width(), back.N(), back.Schema.Width())
		}
		for i := range in.Tuples {
			for a := range in.Tuples[i] {
				// Constants round-trip exactly (variables cannot occur in
				// CSV input).
				if !in.Tuples[i][a].Equal(back.Tuples[i][a]) {
					t.Fatalf("cell (%d,%d) changed: %v vs %v", i, a, in.Tuples[i][a], back.Tuples[i][a])
				}
			}
		}
	})
}
