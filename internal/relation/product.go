package relation

// The TANE partition product and the level-keyed partition store that
// FD discovery runs on. A level-wise discovery pass needs π(Z) for every
// attribute set Z of the current lattice level; computing each from
// scratch costs |Z| refinement passes over the whole instance. TANE
// (Huhtala et al.) instead derives π(Z) from the two level-(k−1) parents
// a prefix join already pairs up: π(X)·π(Y) = π(X∪Y), computed in
// O(|π(X)| + |π(Y)|) with a probe table. Stripped partitions (classes of
// size ≥ 2 only) make this exact: a tuple that is a singleton in either
// factor is a singleton in the product and thus stripped from it.

import "sync"

// Clone returns an owned deep copy of the partition, detached from any
// partitioner scratch — the form a PartitionStore holds.
func (p Partition) Clone() Partition {
	out := Partition{
		Tuples:  make([]int32, len(p.Tuples)),
		Offsets: make([]int32, len(p.Offsets)),
	}
	copy(out.Tuples, p.Tuples)
	copy(out.Offsets, p.Offsets)
	return out
}

// Product computes the stripped product x·y: the stripped partition of
// X∪Y given the stripped partitions of X and Y over the same instance.
// One pass marks each tuple with its x-class in a probe table; a second
// pass splits every y-class by those marks, dropping tuples unmarked in
// the table (singletons of π(X)) and product classes that collapse below
// size 2. Classes appear in y-class order, x-class first-encounter order
// within each, with relative tuple order preserved — deterministic, though
// not necessarily the encounter order a from-scratch refinement would
// produce (partition consumers must not depend on class order).
//
// Unlike Refine/Split results, the returned partition is freshly
// allocated and owned by the caller — it is safe to cache (and that is
// its purpose). Product does not disturb the current partition.
func (p *Partitioner) Product(x, y Partition) Partition {
	n := p.in.N()
	if len(p.prodCls) < n {
		p.prodCls = make([]int32, n)
		p.prodEpoch = make([]uint64, n)
	}
	p.prodVer++
	for ci := 0; ci < x.NumGroups(); ci++ {
		for _, t := range x.Group(ci) {
			p.prodCls[t] = int32(ci)
			p.prodEpoch[t] = p.prodVer
		}
	}
	if xg := x.NumGroups(); len(p.pcCnt) < xg {
		p.pcCnt = make([]int32, xg)
		p.pcPos = make([]int32, xg)
		p.pcEpoch = make([]uint64, xg)
	}
	bound := len(x.Tuples)
	if len(y.Tuples) < bound {
		bound = len(y.Tuples)
	}
	out := Partition{
		Tuples:  make([]int32, 0, bound),
		Offsets: make([]int32, 1, 8),
	}
	seen := p.seen[:0]
	for gi := 0; gi < y.NumGroups(); gi++ {
		g := y.Group(gi)
		p.pcVer++
		seen = seen[:0]
		for _, t := range g {
			if p.prodEpoch[t] != p.prodVer {
				continue // singleton in π(X) ⇒ singleton in the product
			}
			c := p.prodCls[t]
			if p.pcEpoch[c] != p.pcVer {
				p.pcEpoch[c] = p.pcVer
				p.pcCnt[c] = 0
				seen = append(seen, c)
			}
			p.pcCnt[c]++
		}
		// Lay out the surviving subgroups, then scatter stably. Classes
		// that collapsed to singletons are parked at position -1.
		base := int32(len(out.Tuples))
		grown := false
		for _, c := range seen {
			if p.pcCnt[c] < 2 {
				p.pcPos[c] = -1
				continue
			}
			p.pcPos[c] = base
			base += p.pcCnt[c]
			out.Offsets = append(out.Offsets, base)
			grown = true
		}
		if !grown {
			continue
		}
		out.Tuples = out.Tuples[:base]
		for _, t := range g {
			if p.prodEpoch[t] != p.prodVer {
				continue
			}
			c := p.prodCls[t]
			if pos := p.pcPos[c]; pos >= 0 {
				out.Tuples[pos] = t
				p.pcPos[c]++
			}
		}
	}
	p.seen = seen[:0]
	return out
}

// PartitionStore caches owned stripped partitions keyed by attribute set,
// grouped by level (|X|) so a level-wise consumer can evict a whole level
// once it stops being a parent. Discovery hangs one store off the shared
// session engine, so repeated mining passes over a warm dataset skip the
// partitions they already computed; Put expects partitions detached from
// any partitioner scratch (Product results, or Clone'd refinements).
// Stored partitions are immutable — concurrent readers may share them,
// and eviction only forgets the reference, never the backing arrays, so
// a reader holding a partition across an eviction stays valid.
//
// A PartitionStore is safe for concurrent use.
type PartitionStore struct {
	mu     sync.Mutex
	levels map[int]map[AttrSet]Partition
	count  int
	peak   int
}

// NewPartitionStore returns an empty store.
func NewPartitionStore() *PartitionStore {
	return &PartitionStore{levels: make(map[int]map[AttrSet]Partition)}
}

// Get returns the cached stripped partition of X.
func (s *PartitionStore) Get(X AttrSet) (Partition, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pt, ok := s.levels[X.Len()][X]
	return pt, ok
}

// Put caches the stripped partition of X. pt must be owned (not aliasing
// partitioner scratch) and must not be mutated afterwards.
func (s *PartitionStore) Put(X AttrSet, pt Partition) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lvl := s.levels[X.Len()]
	if lvl == nil {
		lvl = make(map[AttrSet]Partition)
		s.levels[X.Len()] = lvl
	}
	if _, ok := lvl[X]; !ok {
		s.count++
		if s.count > s.peak {
			s.peak = s.count
		}
	}
	lvl[X] = pt
}

// EvictLevel drops every cached partition with |X| == level. Level-wise
// discovery calls it for level k−1 once level k is fully built, bounding
// the working set to two adjacent levels (single-attribute partitions are
// deliberately retained by its caller for cross-run reuse).
func (s *PartitionStore) EvictLevel(level int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count -= len(s.levels[level])
	delete(s.levels, level)
}

// Len returns the number of cached partitions.
func (s *PartitionStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Peak returns the largest number of partitions ever cached at once —
// the regression guard against unbounded level retention.
func (s *PartitionStore) Peak() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}
