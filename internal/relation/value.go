package relation

import "fmt"

// Value is one cell of a V-instance: either a constant drawn from the
// attribute's domain, or a variable vᴬᵢ (Definition 1 of the paper).
//
// Equality semantics:
//   - constant == constant  iff the strings are equal,
//   - variable == variable  iff they are the *same* variable (same ID),
//   - constant == variable  never (a variable instantiates to a fresh value
//     not occurring in the instance).
//
// The zero Value is the constant empty string.
type Value struct {
	s     string // constant payload when isVar is false
	id    int64  // variable identity when isVar is true
	isVar bool
}

// Const returns a constant value.
func Const(s string) Value { return Value{s: s} }

// IsVar reports whether v is a variable.
func (v Value) IsVar() bool { return v.isVar }

// Str returns the constant payload. It panics on variables so that code can
// never silently treat a variable as a value.
func (v Value) Str() string {
	if v.isVar {
		panic("relation: Str called on a variable cell")
	}
	return v.s
}

// VarID returns the variable identity; it panics on constants.
func (v Value) VarID() int64 {
	if !v.isVar {
		panic("relation: VarID called on a constant cell")
	}
	return v.id
}

// Equal implements V-instance cell equality.
func (v Value) Equal(u Value) bool {
	if v.isVar != u.isVar {
		return false
	}
	if v.isVar {
		return v.id == u.id
	}
	return v.s == u.s
}

// Key returns a string that is equal for two values iff Equal holds, for use
// as a hash-map key. Variable keys are prefixed with a byte that cannot
// occur at the start of generator output or CSV data (0x00).
func (v Value) Key() string {
	if v.isVar {
		return fmt.Sprintf("\x00v%d", v.id)
	}
	return v.s
}

// String renders constants verbatim and variables as "?vN".
func (v Value) String() string {
	if v.isVar {
		return fmt.Sprintf("?v%d", v.id)
	}
	return v.s
}

// VarGen hands out variables with process-unique IDs. The zero VarGen is
// ready to use. VarGen is not safe for concurrent use; each repair run owns
// its own generator.
type VarGen struct {
	next int64
}

// Fresh returns a brand-new variable, distinct from every variable returned
// before by this generator.
func (g *VarGen) Fresh() Value {
	g.next++
	return Value{id: g.next, isVar: true}
}

// Count returns how many variables have been handed out.
func (g *VarGen) Count() int64 { return g.next }
