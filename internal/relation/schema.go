package relation

import (
	"fmt"
	"strings"
)

// Schema is an ordered list of named attributes. It is immutable after
// construction; all packages share *Schema pointers.
type Schema struct {
	names []string
	index map[string]int
}

// NewSchema builds a schema from attribute names. Names must be non-empty
// and unique (case-sensitive), and there can be at most MaxAttrs of them.
func NewSchema(names ...string) (*Schema, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("relation: schema needs at least one attribute")
	}
	if len(names) > MaxAttrs {
		return nil, fmt.Errorf("relation: schema has %d attributes, max is %d", len(names), MaxAttrs)
	}
	s := &Schema{
		names: make([]string, len(names)),
		index: make(map[string]int, len(names)),
	}
	for i, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			return nil, fmt.Errorf("relation: attribute %d has an empty name", i)
		}
		if _, dup := s.index[n]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute name %q", n)
		}
		s.names[i] = n
		s.index[n] = i
	}
	return s, nil
}

// MustSchema is NewSchema but panics on error; for tests and literals.
func MustSchema(names ...string) *Schema {
	s, err := NewSchema(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Width returns |R|, the number of attributes.
func (s *Schema) Width() int { return len(s.names) }

// Name returns the name of attribute a.
func (s *Schema) Name(a int) string { return s.names[a] }

// Names returns a copy of all attribute names in schema order.
func (s *Schema) Names() []string { return append([]string(nil), s.names...) }

// Index returns the position of the named attribute, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// All returns the set of all attributes {0, …, Width-1}.
func (s *Schema) All() AttrSet { return FullSet(len(s.names)) }

// String renders the schema as "R(A, B, C)".
func (s *Schema) String() string {
	return "R(" + strings.Join(s.names, ", ") + ")"
}

// ParseAttrs resolves a comma-separated list of attribute names to a set.
func (s *Schema) ParseAttrs(list string) (AttrSet, error) {
	var set AttrSet
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		i := s.Index(part)
		if i < 0 {
			return 0, fmt.Errorf("relation: unknown attribute %q in %q", part, list)
		}
		set = set.Add(i)
	}
	return set, nil
}
