package relation

import (
	"strings"
	"testing"
)

func small(t *testing.T) *Instance {
	t.Helper()
	in := NewInstance(MustSchema("A", "B", "C"))
	for _, row := range [][]string{{"1", "x", "p"}, {"1", "y", "p"}, {"2", "x", "q"}} {
		if err := in.AppendConsts(row...); err != nil {
			t.Fatal(err)
		}
	}
	return in
}

func TestInstanceAppendValidatesWidth(t *testing.T) {
	in := NewInstance(MustSchema("A", "B"))
	if err := in.AppendConsts("only-one"); err == nil {
		t.Error("short row must be rejected")
	}
	if err := in.Append(Tuple{Const("a")}); err == nil {
		t.Error("short tuple must be rejected")
	}
	if err := in.AppendConsts("a", "b"); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if in.N() != 1 {
		t.Errorf("N = %d, want 1", in.N())
	}
}

func TestTupleAgreeOnAndDiffSet(t *testing.T) {
	in := small(t)
	t0, t1 := in.Tuples[0], in.Tuples[1]
	if !t0.AgreeOn(t1, NewAttrSet(0, 2)) {
		t.Error("t0,t1 agree on A,C")
	}
	if t0.AgreeOn(t1, NewAttrSet(0, 1)) {
		t.Error("t0,t1 differ on B")
	}
	if d := t0.DiffSet(t1); d != NewAttrSet(1) {
		t.Errorf("DiffSet = %v, want {1}", d)
	}
	if d := t0.DiffSet(t0); !d.IsEmpty() {
		t.Errorf("DiffSet with self = %v, want empty", d)
	}
}

func TestTupleAgreeOnVariables(t *testing.T) {
	var g VarGen
	v := g.Fresh()
	a := Tuple{v, Const("1")}
	b := Tuple{v, Const("1")}
	c := Tuple{g.Fresh(), Const("1")}
	if !a.AgreeOn(b, NewAttrSet(0)) {
		t.Error("same variable must agree")
	}
	if a.AgreeOn(c, NewAttrSet(0)) {
		t.Error("distinct variables must not agree")
	}
}

func TestInstanceCloneIsDeep(t *testing.T) {
	in := small(t)
	cp := in.Clone()
	cp.Tuples[0][0] = Const("mutated")
	if in.Tuples[0][0].Str() != "1" {
		t.Error("Clone shares cell storage with the original")
	}
}

func TestProjectDistinguishesGroups(t *testing.T) {
	in := small(t)
	if in.Project(0, NewAttrSet(0)) != in.Project(1, NewAttrSet(0)) {
		t.Error("t0,t1 share A and must share the A-projection key")
	}
	if in.Project(0, NewAttrSet(0, 1)) == in.Project(1, NewAttrSet(0, 1)) {
		t.Error("t0,t1 differ on B and must differ on the AB-projection key")
	}
}

func TestProjectSeparatorAmbiguity(t *testing.T) {
	// Keys must not confuse ("ab","c") with ("a","bc").
	in := NewInstance(MustSchema("A", "B"))
	_ = in.AppendConsts("ab", "c")
	_ = in.AppendConsts("a", "bc")
	if in.Project(0, NewAttrSet(0, 1)) == in.Project(1, NewAttrSet(0, 1)) {
		t.Error("projection keys collide for distinct value pairs")
	}
}

func TestDiffCells(t *testing.T) {
	in := small(t)
	cp := in.Clone()
	cp.Tuples[1][2] = Const("CHANGED")
	cells, err := in.DiffCells(cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0] != (CellRef{Tuple: 1, Attr: 2}) {
		t.Errorf("DiffCells = %v, want [{1 2}]", cells)
	}
	if _, err := in.DiffCells(NewInstance(in.Schema)); err == nil {
		t.Error("tuple-count mismatch must error")
	}
}

func TestGroundInstantiatesFreshDistinctValues(t *testing.T) {
	var g VarGen
	in := NewInstance(MustSchema("A"))
	v1, v2 := g.Fresh(), g.Fresh()
	_ = in.Append(Tuple{Const("fresh0")}) // collides with the generator prefix
	_ = in.Append(Tuple{v1})
	_ = in.Append(Tuple{v2})
	_ = in.Append(Tuple{v1}) // same variable twice

	ground := in.Ground("fresh")
	if ground.CountVars() != 0 {
		t.Fatal("Ground left variables behind")
	}
	g1 := ground.Tuples[1][0].Str()
	g2 := ground.Tuples[2][0].Str()
	g3 := ground.Tuples[3][0].Str()
	if g1 == g2 {
		t.Error("distinct variables must ground to distinct values")
	}
	if g1 != g3 {
		t.Error("the same variable must ground to one value")
	}
	if g1 == "fresh0" || g2 == "fresh0" {
		t.Error("grounded values must avoid constants already in the instance")
	}
	if in.CountVars() != 3 {
		t.Error("Ground must not mutate the receiver")
	}
}

func TestCellRefFormatting(t *testing.T) {
	s := MustSchema("A", "Phone")
	c := CellRef{Tuple: 3, Attr: 1}
	if c.String() != "t3[1]" {
		t.Errorf("String = %q", c.String())
	}
	if c.Format(s) != "t3[Phone]" {
		t.Errorf("Format = %q", c.Format(s))
	}
}

func TestInstanceStringRendersTable(t *testing.T) {
	out := small(t).String()
	if !strings.Contains(out, "A") || !strings.Contains(out, "q") {
		t.Errorf("table rendering missing content:\n%s", out)
	}
	if got := len(strings.Split(strings.TrimRight(out, "\n"), "\n")); got != 4 {
		t.Errorf("table has %d lines, want 4 (header + 3 rows)", got)
	}
}
