package relation

import "testing"

func TestValueConstEquality(t *testing.T) {
	if !Const("x").Equal(Const("x")) {
		t.Error("equal constants must compare equal")
	}
	if Const("x").Equal(Const("y")) {
		t.Error("distinct constants must not compare equal")
	}
	var zero Value
	if !zero.Equal(Const("")) {
		t.Error("zero Value is the empty-string constant")
	}
}

func TestValueVariableSemantics(t *testing.T) {
	var g VarGen
	v1, v2 := g.Fresh(), g.Fresh()
	if v1.Equal(v2) {
		t.Error("distinct variables must not compare equal (Definition 1)")
	}
	if !v1.Equal(v1) {
		t.Error("a variable equals itself")
	}
	if v1.Equal(Const("anything")) || Const("?v1").Equal(v1) {
		t.Error("variables never equal constants, even ones that render alike")
	}
	if g.Count() != 2 {
		t.Errorf("Count = %d, want 2", g.Count())
	}
}

func TestValueKeyMirrorsEqual(t *testing.T) {
	var g VarGen
	vals := []Value{Const(""), Const("a"), Const("b"), g.Fresh(), g.Fresh()}
	for i, v := range vals {
		for j, u := range vals {
			if (v.Key() == u.Key()) != v.Equal(u) {
				t.Errorf("Key consistency broken for vals[%d], vals[%d]", i, j)
			}
		}
	}
}

func TestValueAccessorsPanic(t *testing.T) {
	var g VarGen
	v := g.Fresh()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Str on variable should panic")
			}
		}()
		_ = v.Str()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("VarID on constant should panic")
			}
		}()
		_ = Const("x").VarID()
	}()
}

func TestValueString(t *testing.T) {
	if Const("abc").String() != "abc" {
		t.Error("constant String")
	}
	var g VarGen
	if got := g.Fresh().String(); got != "?v1" {
		t.Errorf("variable String = %q, want ?v1", got)
	}
}
