// Package relation implements the relational substrate of the paper:
// schemas, attribute sets, tuples, instances and V-instances (Section 2).
//
// A V-instance is an instance whose cells may hold variables in addition to
// constants. A variable v stands for "any fresh value from the attribute's
// domain that does not already occur in the instance", and two distinct
// variables can never be instantiated to equal values. V-instances let the
// repair algorithms express "set this cell to anything new" without
// committing to a concrete value.
//
// The package also provides the dictionary-encoding layer the hot paths of
// the system are built on (codes.go): per-attribute int32 code columns on
// Instance, an allocation-free code-indexed Partitioner for grouping tuples
// by projection equality, and a ProjCoder interning projections of
// standalone tuples. Consumers (conflict analysis, clean indexes, FD
// discovery, weightings) group by codes instead of building string keys.
package relation

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxAttrs is the maximum number of attributes a schema may have. Attribute
// sets are represented as 64-bit masks; the paper's widest experiment uses a
// 34-attribute relation, so 64 is comfortable headroom.
const MaxAttrs = 64

// AttrSet is a set of attribute positions represented as a bitmask.
// Attribute i of a schema corresponds to bit i.
type AttrSet uint64

// NewAttrSet returns the set containing exactly the given attribute indices.
func NewAttrSet(attrs ...int) AttrSet {
	var s AttrSet
	for _, a := range attrs {
		s = s.Add(a)
	}
	return s
}

// Add returns s with attribute a added.
func (s AttrSet) Add(a int) AttrSet {
	if a < 0 || a >= MaxAttrs {
		panic(fmt.Sprintf("relation: attribute index %d out of range [0,%d)", a, MaxAttrs))
	}
	return s | 1<<uint(a)
}

// Remove returns s with attribute a removed.
func (s AttrSet) Remove(a int) AttrSet {
	if a < 0 || a >= MaxAttrs {
		return s
	}
	return s &^ (1 << uint(a))
}

// Contains reports whether attribute a is in s.
func (s AttrSet) Contains(a int) bool {
	if a < 0 || a >= MaxAttrs {
		return false
	}
	return s&(1<<uint(a)) != 0
}

// Union returns s ∪ t.
func (s AttrSet) Union(t AttrSet) AttrSet { return s | t }

// Intersect returns s ∩ t.
func (s AttrSet) Intersect(t AttrSet) AttrSet { return s & t }

// Diff returns s \ t.
func (s AttrSet) Diff(t AttrSet) AttrSet { return s &^ t }

// SubsetOf reports whether s ⊆ t.
func (s AttrSet) SubsetOf(t AttrSet) bool { return s&^t == 0 }

// ProperSubsetOf reports whether s ⊂ t.
func (s AttrSet) ProperSubsetOf(t AttrSet) bool { return s != t && s.SubsetOf(t) }

// Intersects reports whether s ∩ t is non-empty.
func (s AttrSet) Intersects(t AttrSet) bool { return s&t != 0 }

// IsEmpty reports whether s contains no attributes.
func (s AttrSet) IsEmpty() bool { return s == 0 }

// Len returns the number of attributes in s.
func (s AttrSet) Len() int { return bits.OnesCount64(uint64(s)) }

// Min returns the smallest attribute index in s, or -1 if s is empty.
func (s AttrSet) Min() int {
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(s))
}

// Max returns the largest attribute index in s, or -1 if s is empty.
func (s AttrSet) Max() int {
	if s == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(uint64(s))
}

// Attrs returns the attribute indices in s in increasing order.
func (s AttrSet) Attrs() []int {
	out := make([]int, 0, s.Len())
	for t := s; t != 0; {
		a := bits.TrailingZeros64(uint64(t))
		out = append(out, a)
		t &^= 1 << uint(a)
	}
	return out
}

// ForEach calls f for each attribute in s in increasing order. Iteration
// stops early if f returns false.
func (s AttrSet) ForEach(f func(a int) bool) {
	for t := s; t != 0; {
		a := bits.TrailingZeros64(uint64(t))
		if !f(a) {
			return
		}
		t &^= 1 << uint(a)
	}
}

// String formats s using attribute indices, e.g. "{0,3,5}".
func (s AttrSet) String() string {
	parts := make([]string, 0, s.Len())
	for _, a := range s.Attrs() {
		parts = append(parts, fmt.Sprintf("%d", a))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Names formats s using the attribute names of the given schema, sorted by
// attribute position, e.g. "Surname,GivenName".
func (s AttrSet) Names(sc *Schema) string {
	parts := make([]string, 0, s.Len())
	for _, a := range s.Attrs() {
		parts = append(parts, sc.Name(a))
	}
	return strings.Join(parts, ",")
}

// FullSet returns the set {0, …, n-1}.
func FullSet(n int) AttrSet {
	if n < 0 || n > MaxAttrs {
		panic(fmt.Sprintf("relation: schema width %d out of range [0,%d]", n, MaxAttrs))
	}
	if n == MaxAttrs {
		return AttrSet(^uint64(0))
	}
	return AttrSet(1<<uint(n)) - 1
}

// SortAttrSets sorts sets by cardinality, then numerically; useful for
// deterministic output in tests and reports.
func SortAttrSets(sets []AttrSet) {
	sort.Slice(sets, func(i, j int) bool {
		if sets[i].Len() != sets[j].Len() {
			return sets[i].Len() < sets[j].Len()
		}
		return sets[i] < sets[j]
	})
}
