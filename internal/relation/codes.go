package relation

// Dictionary encoding. Every hot path of the repair system groups tuples by
// equality of projections; doing that with concatenated string keys costs
// an allocation and a string hash per tuple per query. This file replaces
// the string machinery with dense int32 value codes:
//
//   - Dict interns Values (constants and variables alike) to dense codes;
//     two cells receive the same code iff Value.Equal holds.
//   - Instance.Codes(a) lazily materializes the code column of attribute a.
//     Columns are cached on the instance and dropped by Clone, so a cloned
//     instance that is subsequently mutated never sees stale codes.
//   - Partitioner refines tuple groups one attribute at a time by direct
//     code indexing — a radix-style scatter into epoch-versioned scratch
//     arrays, no hashing — and is allocation-free once its buffers have
//     grown to the working-set size.
//   - ProjCoder interns projections of standalone tuples (tuples under
//     construction, not rows of an instance) to a single int32 via pair
//     interning, replacing string projection keys in the clean indexes of
//     the repair algorithms.

import (
	"math/bits"
	"sync"
)

// Dict interns Values to dense int32 codes 0, 1, 2, … in first-encounter
// order. Two values receive the same code iff they are Equal: Value is
// canonically constructed (Const sets only the payload, VarGen.Fresh sets
// only the identity), so Go's == on Value coincides with Equal and a plain
// map works without building string keys. The zero Dict is ready to use.
type Dict struct {
	m map[Value]int32
}

// Code returns the code of v, interning it if unseen.
func (d *Dict) Code(v Value) int32 {
	if d.m == nil {
		d.m = make(map[Value]int32)
	}
	if c, ok := d.m[v]; ok {
		return c
	}
	c := int32(len(d.m))
	d.m[v] = c
	return c
}

// Lookup returns the code of v without interning; ok is false if v has
// never been seen.
func (d *Dict) Lookup(v Value) (int32, bool) {
	c, ok := d.m[v]
	return c, ok
}

// Len returns the number of distinct values interned.
func (d *Dict) Len() int { return len(d.m) }

// codeColumn is one materialized per-attribute code column.
type codeColumn struct {
	codes []int32 // codes[t] is the code of Tuples[t][a]
	n     int32   // number of distinct codes (codes are in [0, n))
}

// codeCache holds the lazily built columns of an instance. The mutex makes
// concurrent lazy builds safe (several goroutines may analyze one shared,
// no-longer-mutated instance); consumers cache the returned slices, so the
// lock is off every per-query path.
type codeCache struct {
	mu   sync.Mutex
	cols []*codeColumn
}

// Codes returns the code column of attribute a and the number of distinct
// codes in it: codes[t] == codes[u] iff Tuples[t][a].Equal(Tuples[u][a]).
// The column is built on first use and cached; appending tuples invalidates
// it automatically (the length check fails), but callers that mutate cells
// in place must call InvalidateCodes before the next Codes call. Clone does
// not carry the cache over, so the common pattern — clone, then rewrite the
// clone — needs no invalidation.
func (in *Instance) Codes(a int) ([]int32, int32) {
	in.codes.mu.Lock()
	defer in.codes.mu.Unlock()
	if in.codes.cols == nil {
		in.codes.cols = make([]*codeColumn, in.Schema.Width())
	}
	col := in.codes.cols[a]
	if col == nil || len(col.codes) != len(in.Tuples) {
		var d Dict
		codes := make([]int32, len(in.Tuples))
		for t, tup := range in.Tuples {
			codes[t] = d.Code(tup[a])
		}
		col = &codeColumn{codes: codes, n: int32(d.Len())}
		in.codes.cols[a] = col
	}
	return col.codes, col.n
}

// InvalidateCodes drops every cached code column. Call it after mutating
// cells of an instance whose columns may already have been built.
func (in *Instance) InvalidateCodes() {
	in.codes.mu.Lock()
	in.codes.cols = nil
	in.codes.mu.Unlock()
}

// InvalidateCodesFor drops only the cached code columns of the attributes
// in X, leaving the others warm. Callers that rewrite a known subset of
// cells (a targeted mutation batch, a single-cell Set) use this instead of
// InvalidateCodes so untouched columns keep their lazily built encoding.
func (in *Instance) InvalidateCodesFor(X AttrSet) {
	in.codes.mu.Lock()
	if in.codes.cols != nil {
		for _, a := range X.Attrs() {
			if a < len(in.codes.cols) {
				in.codes.cols[a] = nil
			}
		}
	}
	in.codes.mu.Unlock()
}

// SetCodes installs an externally maintained code column for attribute a:
// codes[t] must be the code of Tuples[t][a] under some dictionary with n
// distinct codes (codes in [0, n), equal codes iff Equal cells). The live
// mutation tier uses this to hand a freshly spliced instance columns it
// already keeps current, instead of paying a full re-encoding scan per
// batch. len(codes) must equal the instance's tuple count — Codes would
// otherwise discard the column and rebuild.
func (in *Instance) SetCodes(a int, codes []int32, n int32) {
	in.codes.mu.Lock()
	if in.codes.cols == nil {
		in.codes.cols = make([]*codeColumn, in.Schema.Width())
	}
	in.codes.cols[a] = &codeColumn{codes: codes, n: n}
	in.codes.mu.Unlock()
}

// Partition is an ordered partition of tuple indices, stored flat: group i
// is Tuples[Offsets[i]:Offsets[i+1]]. The flat layout is deliberate — the
// conflict analysis runs two-pointer sweeps across group boundaries
// directly on Tuples. Partitions returned by Partitioner alias its scratch
// and are valid only until the next call that produces one.
type Partition struct {
	Tuples  []int32
	Offsets []int32 // len = NumGroups()+1, starts at 0
}

// NumGroups returns the number of groups.
func (p Partition) NumGroups() int { return len(p.Offsets) - 1 }

// Group returns group i. The slice aliases the partitioner's scratch.
func (p Partition) Group(i int) []int32 { return p.Tuples[p.Offsets[i]:p.Offsets[i+1]] }

// Len returns the total number of tuples across all groups.
func (p Partition) Len() int { return len(p.Tuples) }

// partBuf is one flat partition buffer.
type partBuf struct {
	tuples  []int32
	offsets []int32
}

// Partitioner refines tuple groups by one attribute at a time using direct
// code indexing. A refinement pass is a counting scatter: for each group,
// occurrences per code are counted into epoch-versioned slot arrays (no
// clearing pass between groups), subgroup bases are laid out in
// first-encounter order of the codes, and members are scattered stably —
// subgroups preserve the relative tuple order of their parent. After the
// buffers have grown to the working-set size, no call allocates.
//
// A Partitioner is bound to one instance, whose tuples must not change
// while the partitioner is in use. It is not safe for concurrent use.
type Partitioner struct {
	in   *Instance
	cols [][]int32 // cached Codes columns, indexed by attribute

	// slot arrays indexed by value code, versioned by epoch so groups
	// never clear them.
	slotCnt   []int32
	slotPos   []int32
	slotEpoch []uint64
	epoch     uint64
	seen      []int32 // codes of the current group in encounter order

	cur, nxt partBuf // ping-pong buffers for Refine
	split    partBuf // separate output for Split

	// Product scratch (see product.go): a tuple→x-class probe table and
	// per-x-class counters, both epoch-versioned so calls never clear them.
	prodCls   []int32
	prodEpoch []uint64
	prodVer   uint64
	pcCnt     []int32
	pcPos     []int32
	pcEpoch   []uint64
	pcVer     uint64
}

// NewPartitioner returns a partitioner over the instance.
func NewPartitioner(in *Instance) *Partitioner {
	return &Partitioner{in: in}
}

// col returns the cached code column of attribute a, fetching it from the
// instance and sizing the slot arrays on first use.
func (p *Partitioner) col(a int) []int32 {
	if p.cols == nil {
		p.cols = make([][]int32, p.in.Schema.Width())
	}
	if c := p.cols[a]; c != nil {
		return c
	}
	codes, n := p.in.Codes(a)
	if codes == nil {
		codes = []int32{} // distinguish "cached empty" from "not fetched"
	}
	p.cols[a] = codes
	if int(n) > len(p.slotCnt) {
		p.slotCnt = make([]int32, n)
		p.slotPos = make([]int32, n)
		p.slotEpoch = make([]uint64, n)
	}
	return codes
}

// Begin starts a new partition holding the given tuples as a single group
// (copied; the argument may alias anything).
func (p *Partitioner) Begin(tuples []int32) {
	if cap(p.cur.tuples) < len(tuples) {
		p.cur.tuples = make([]int32, len(tuples))
	} else {
		p.cur.tuples = p.cur.tuples[:len(tuples)]
	}
	copy(p.cur.tuples, tuples)
	p.cur.offsets = append(p.cur.offsets[:0], 0)
	if len(tuples) > 0 {
		p.cur.offsets = append(p.cur.offsets, int32(len(tuples)))
	}
}

// BeginAll starts a new partition holding every tuple of the instance as a
// single group.
func (p *Partitioner) BeginAll() {
	n := p.in.N()
	if cap(p.cur.tuples) < n {
		p.cur.tuples = make([]int32, n)
	} else {
		p.cur.tuples = p.cur.tuples[:n]
	}
	for t := range p.cur.tuples {
		p.cur.tuples[t] = int32(t)
	}
	p.cur.offsets = append(p.cur.offsets[:0], 0)
	if n > 0 {
		p.cur.offsets = append(p.cur.offsets, int32(n))
	}
}

// BeginFrom loads an existing partition as the current one (copied; pt may
// alias any earlier result), so subsequent Refine calls refine it
// incrementally. This is the entry point of the cover-query partition
// cache: a snapshot of a parent state's refined partition is reloaded and
// refined by the one attribute the child state appends, instead of
// re-refining the original group by the whole extension set from scratch.
func (p *Partitioner) BeginFrom(pt Partition) {
	if cap(p.cur.tuples) < len(pt.Tuples) {
		p.cur.tuples = make([]int32, len(pt.Tuples))
	} else {
		p.cur.tuples = p.cur.tuples[:len(pt.Tuples)]
	}
	copy(p.cur.tuples, pt.Tuples)
	p.cur.offsets = append(p.cur.offsets[:0], pt.Offsets...)
}

// Refine splits every group of the current partition by attribute a.
// Subgroups appear in first-encounter order of a's codes within their
// parent group and preserve relative tuple order (stable).
func (p *Partitioner) Refine(a int) {
	col := p.col(a)
	src, dst := &p.cur, &p.nxt
	if cap(dst.tuples) < len(src.tuples) {
		dst.tuples = make([]int32, 0, len(src.tuples))
	} else {
		dst.tuples = dst.tuples[:0]
	}
	dst.offsets = append(dst.offsets[:0], 0)
	for gi := 0; gi+1 < len(src.offsets); gi++ {
		g := src.tuples[src.offsets[gi]:src.offsets[gi+1]]
		if len(g) == 1 {
			dst.tuples = append(dst.tuples, g[0])
			dst.offsets = append(dst.offsets, int32(len(dst.tuples)))
			continue
		}
		p.scatter(dst, g, col)
	}
	p.cur, p.nxt = p.nxt, p.cur
}

// RefineSet refines by every attribute of X in ascending order.
func (p *Partitioner) RefineSet(X AttrSet) {
	for x := uint64(X); x != 0; x &= x - 1 {
		p.Refine(bits.TrailingZeros64(x))
	}
}

// Partition returns the current partition. It aliases the partitioner's
// scratch and is valid until the next Begin/BeginAll/Refine call; Split
// does not disturb it.
func (p *Partitioner) Partition() Partition {
	return Partition{Tuples: p.cur.tuples, Offsets: p.cur.offsets}
}

// Split partitions one group by attribute a without disturbing the current
// partition — the RHS-subgrouping primitive of the conflict analysis. The
// result is valid until the next Split call.
func (p *Partitioner) Split(g []int32, a int) Partition {
	col := p.col(a)
	p.split.tuples = p.split.tuples[:0]
	p.split.offsets = append(p.split.offsets[:0], 0)
	if len(g) > 0 {
		p.scatter(&p.split, g, col)
	}
	return Partition{Tuples: p.split.tuples, Offsets: p.split.offsets}
}

// scatter appends the subgroups of g under col to dst: one counting pass
// over g records per-code counts and the encounter order, then subgroup
// bases are laid out and members scattered stably. g must not alias
// dst.tuples.
func (p *Partitioner) scatter(dst *partBuf, g []int32, col []int32) {
	p.epoch++
	seen := p.seen[:0]
	for _, t := range g {
		c := col[t]
		if p.slotEpoch[c] != p.epoch {
			p.slotEpoch[c] = p.epoch
			p.slotCnt[c] = 0
			seen = append(seen, c)
		}
		p.slotCnt[c]++
	}
	p.seen = seen
	base := int32(len(dst.tuples))
	dst.tuples = append(dst.tuples, g...)
	if len(seen) == 1 {
		dst.offsets = append(dst.offsets, base+int32(len(g)))
		return
	}
	for _, c := range seen {
		p.slotPos[c] = base
		base += p.slotCnt[c]
		dst.offsets = append(dst.offsets, base)
	}
	for _, t := range g {
		c := col[t]
		dst.tuples[p.slotPos[c]] = t
		p.slotPos[c]++
	}
}

// NewDicts returns a fresh slice of per-attribute dictionaries for a schema
// of the given width, for sharing across the ProjCoders of one index.
func NewDicts(width int) []*Dict {
	dicts := make([]*Dict, width)
	for a := range dicts {
		dicts[a] = &Dict{}
	}
	return dicts
}

// ProjCoder interns the projection of standalone tuples on a fixed
// attribute set X to a single int32: two tuples receive the same code iff
// they agree (cell-wise Equal) on every attribute of X. It replaces the
// string keys of the repair clean indexes. Coding folds per-attribute value
// codes through a pair-interning table, so a code computation is |X| map
// probes of comparable keys — no string building, no allocation.
//
// Final codes are only meaningful relative to the coder that produced them
// (and only for full-length projections; prefix path codes share the same
// space internally).
type ProjCoder struct {
	attrs []int
	dicts []*Dict // indexed by attribute position; may be shared
	paths map[[2]int32]int32
}

// NewProjCoder returns a coder for X. dicts, when non-nil, supplies shared
// per-attribute dictionaries (indexed by attribute position, covering at
// least X.Max()+1 entries); a nil dicts gives the coder private ones.
func NewProjCoder(X AttrSet, dicts []*Dict) *ProjCoder {
	if dicts == nil {
		dicts = NewDicts(X.Max() + 1)
	}
	return &ProjCoder{
		attrs: X.Attrs(),
		dicts: dicts,
		paths: make(map[[2]int32]int32),
	}
}

// Code returns the projection code of t on the coder's attribute set,
// interning any unseen values or paths. All tuples code to 0 under an
// empty attribute set.
func (c *ProjCoder) Code(t Tuple) int32 {
	k := int32(-1)
	for _, a := range c.attrs {
		vc := c.dicts[a].Code(t[a])
		pk := [2]int32{k, vc}
		nk, ok := c.paths[pk]
		if !ok {
			nk = int32(len(c.paths))
			c.paths[pk] = nk
		}
		k = nk
	}
	if k < 0 {
		return 0
	}
	return k
}

// Lookup returns the projection code of t without interning. ok is false
// when some cell or path has never been coded — in which case no previously
// coded tuple agrees with t on the attribute set.
func (c *ProjCoder) Lookup(t Tuple) (int32, bool) {
	k := int32(-1)
	for _, a := range c.attrs {
		vc, ok := c.dicts[a].Lookup(t[a])
		if !ok {
			return 0, false
		}
		k, ok = c.paths[[2]int32{k, vc}]
		if !ok {
			return 0, false
		}
	}
	if k < 0 {
		return 0, true
	}
	return k, true
}
