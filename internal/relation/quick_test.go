package relation

import (
	"testing"
	"testing/quick"
)

// TestQuickDiffSetProperties: the difference set is symmetric, empty iff
// the tuples are equal, and consistent with AgreeOn on its complement.
func TestQuickDiffSetProperties(t *testing.T) {
	mk := func(raw [5]uint8) Tuple {
		tp := make(Tuple, 5)
		for i, v := range raw {
			tp[i] = Const(string(rune('a' + v%4)))
		}
		return tp
	}
	f := func(aRaw, bRaw [5]uint8) bool {
		a, b := mk(aRaw), mk(bRaw)
		d := a.DiffSet(b)
		if d != b.DiffSet(a) {
			return false
		}
		if d.IsEmpty() != a.Equal(b) {
			return false
		}
		// They agree exactly on the complement of d.
		comp := FullSet(5).Diff(d)
		if !a.AgreeOn(b, comp) {
			return false
		}
		if !d.IsEmpty() && a.AgreeOn(b, d) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickProjectKeyEquality: projection keys are equal exactly when the
// tuples agree on the projected attributes — the invariant every partition
// map in the system relies on.
func TestQuickProjectKeyEquality(t *testing.T) {
	f := func(aRaw, bRaw [4]uint8, setRaw uint8) bool {
		in := NewInstance(MustSchema("A", "B", "C", "D"))
		row := func(raw [4]uint8) []string {
			out := make([]string, 4)
			for i, v := range raw {
				out[i] = string(rune('a' + v%3))
			}
			return out
		}
		_ = in.AppendConsts(row(aRaw)...)
		_ = in.AppendConsts(row(bRaw)...)
		x := AttrSet(setRaw) & FullSet(4)
		agree := in.Tuples[0].AgreeOn(in.Tuples[1], x)
		return (in.Project(0, x) == in.Project(1, x)) == agree
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickGroundIdempotent: grounding is stable — a grounded instance has
// no variables and grounds to itself.
func TestQuickGroundIdempotent(t *testing.T) {
	f := func(raw [6]uint8, varMask uint8) bool {
		var g VarGen
		in := NewInstance(MustSchema("A", "B"))
		for i := 0; i < 3; i++ {
			tp := make(Tuple, 2)
			for j := 0; j < 2; j++ {
				if varMask&(1<<(uint(i*2+j))) != 0 {
					tp[j] = g.Fresh()
				} else {
					tp[j] = Const(string(rune('a' + raw[i*2+j]%3)))
				}
			}
			_ = in.Append(tp)
		}
		ground := in.Ground("g_")
		if ground.CountVars() != 0 {
			return false
		}
		again := ground.Ground("g_")
		for i := range ground.Tuples {
			if !ground.Tuples[i].Equal(again.Tuples[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickGroundPreservesEquality: grounding preserves cell equality and
// inequality (Definition 1: distinct variables map to distinct fresh
// values, never colliding with constants).
func TestQuickGroundPreservesEquality(t *testing.T) {
	f := func(varPattern [4]uint8) bool {
		var g VarGen
		vars := []Value{g.Fresh(), g.Fresh()}
		in := NewInstance(MustSchema("A"))
		var cells []Value
		for _, p := range varPattern {
			switch p % 3 {
			case 0:
				cells = append(cells, Const("c"))
			default:
				cells = append(cells, vars[p%2])
			}
		}
		for _, c := range cells {
			_ = in.Append(Tuple{c})
		}
		ground := in.Ground("g_")
		for i := range cells {
			for j := range cells {
				want := cells[i].Equal(cells[j])
				got := ground.Tuples[i][0].Equal(ground.Tuples[j][0])
				if want != got {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
