package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV parses a header-first CSV stream into an instance of constants.
// The header row defines the schema. Variable cells cannot be expressed in
// CSV input; every cell is read as a constant.
func ReadCSV(r io.Reader) (*Instance, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	schema, err := NewSchema(header...)
	if err != nil {
		return nil, err
	}
	in := NewInstance(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV line %d: %w", line, err)
		}
		if len(rec) != schema.Width() {
			return nil, fmt.Errorf("relation: CSV line %d has %d fields, want %d", line, len(rec), schema.Width())
		}
		if err := in.AppendConsts(rec...); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// ReadCSVFile is ReadCSV over a file path.
func ReadCSVFile(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

// WriteCSV writes the instance with a header row. Variable cells are
// rendered as "?vN"; call Ground first to emit a purely-constant instance.
func WriteCSV(w io.Writer, in *Instance) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(in.Schema.Names()); err != nil {
		return err
	}
	row := make([]string, in.Schema.Width())
	for _, t := range in.Tuples {
		for a, v := range t {
			row[a] = v.String()
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile is WriteCSV to a file path.
func WriteCSVFile(path string, in *Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, in); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
