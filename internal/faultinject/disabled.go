//go:build !faultinject

package faultinject

// Enabled reports whether fault injection is compiled in.
const Enabled = false

// Hit is a no-op in production builds; the compiler inlines the constant
// nil away at every call site.
func Hit(point string) error { return nil }
