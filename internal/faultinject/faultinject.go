// Package faultinject is a build-tag-gated fault-point registry for the
// robustness test battery. Production code marks the places where the
// serving tier must survive failure — snapshot writes and loads, sweep
// start, mid-stream emits — with a Hit call naming the point; the e2e
// tests then inject I/O errors or panics at exactly those places and
// assert the process stays up.
//
// # Contract
//
// In a default build (no tag), Enabled is false and Hit is a constant
// nil return the compiler inlines away — production binaries carry zero
// registry, zero locks, zero overhead. Under `-tags faultinject`,
// Enabled is true and Set arms a point with a function: every Hit on
// that point calls it. The function returns the error Hit reports (which
// the call site must propagate like any real failure), or panics (which
// must be contained by the recovery layer under test), or returns nil to
// let the call through. Armed points are process-global; tests that arm
// one must Reset (or defer Reset) so points never leak between tests.
//
// Fault points are named by the exported constants so call sites and
// tests cannot drift apart; the constants exist in both build modes.
package faultinject

// Fault points of the serving tier.
const (
	// StoreWrite fires in store.Save before the snapshot file is written.
	StoreWrite = "store/write"
	// StoreLoad fires in store.Load before a snapshot file is decoded.
	StoreLoad = "store/load"
	// SweepStart fires at the top of every server sweep, after the
	// response status is committed for streaming sweeps.
	SweepStart = "server/sweep-start"
	// StreamEmit fires before each frontier row is written to the stream.
	StreamEmit = "server/stream-emit"
	// JobRecordWrite fires in store.JobStore.SaveRecord before a job
	// record is written.
	JobRecordWrite = "jobs/record-write"
	// JobCheckpoint fires in store.JobStore.AppendResult before a frontier
	// row is appended to a job's result log.
	JobCheckpoint = "jobs/checkpoint"
	// JobResumeLoad fires in store.JobStore.LoadAll before each persisted
	// job record is decoded at boot.
	JobResumeLoad = "jobs/resume-load"
)
