//go:build faultinject

package faultinject

import "sync"

// Enabled reports whether fault injection is compiled in.
const Enabled = true

var (
	mu    sync.Mutex
	armed = map[string]func() error{}
)

// Set arms a fault point: every subsequent Hit(point) calls f, which may
// return an error (propagated by the call site), panic (contained by the
// recovery layer under test), or return nil to pass. f runs on the
// goroutine that hits the point and may be hit concurrently; it must be
// safe for that. Arming replaces any previous function.
func Set(point string, f func() error) {
	mu.Lock()
	armed[point] = f
	mu.Unlock()
}

// Reset disarms every fault point. Tests defer it.
func Reset() {
	mu.Lock()
	armed = map[string]func() error{}
	mu.Unlock()
}

// Hit fires the fault point: nil when unarmed, otherwise whatever the
// armed function does.
func Hit(point string) error {
	mu.Lock()
	f := armed[point]
	mu.Unlock()
	if f == nil {
		return nil
	}
	return f()
}
