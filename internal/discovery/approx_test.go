package discovery

import (
	"math/rand"
	"testing"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/testkit"
)

func TestDiscoverApproxIncludesExact(t *testing.T) {
	in := testkit.Build([]string{"A", "B", "C"}, [][]string{
		{"1", "x", "p"}, {"1", "x", "q"}, {"2", "y", "p"},
	})
	approx := mustDiscoverApprox(t, in, ApproxOptions{MaxError: 0, MaxLHS: 2})
	exact := mustDiscover(t, in, Options{MaxLHS: 2})
	if len(approx) != len(exact) {
		t.Fatalf("zero-error approximate discovery found %d, exact found %d", len(approx), len(exact))
	}
	for i := range approx {
		if !approx[i].FD.Equal(exact[i]) {
			t.Errorf("mismatch at %d: %v vs %v", i, approx[i].FD, exact[i])
		}
		if approx[i].Error != 0 {
			t.Errorf("exact FD reported error %v", approx[i].Error)
		}
	}
}

func TestDiscoverApproxToleratesNoise(t *testing.T) {
	// A->B holds except for one dissenting tuple out of ten.
	rows := [][]string{}
	for i := 0; i < 9; i++ {
		rows = append(rows, []string{"k", "x", string(rune('0' + i))})
	}
	rows = append(rows, []string{"k", "ODD", "z"})
	in := testkit.Build([]string{"A", "B", "C"}, rows)

	strict := mustDiscoverApprox(t, in, ApproxOptions{MaxError: 0, MaxLHS: 1, Attrs: relation.NewAttrSet(0, 1)})
	for _, f := range strict {
		if f.FD.Equal(fd.MustNew(relation.NewAttrSet(0), 1)) {
			t.Fatal("A->B does not hold exactly")
		}
	}
	loose := mustDiscoverApprox(t, in, ApproxOptions{MaxError: 0.15, MaxLHS: 1, Attrs: relation.NewAttrSet(0, 1)})
	found := false
	for _, f := range loose {
		if f.FD.Equal(fd.MustNew(relation.NewAttrSet(0), 1)) {
			found = true
			if f.Error != 0.1 {
				t.Errorf("error = %v, want 0.1", f.Error)
			}
		}
	}
	if !found {
		t.Fatal("A->B within 15% error not discovered")
	}
}

func TestDiscoverApproxMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		in := testkit.RandomInstance(rng, 12, 4, 2)
		res := mustDiscoverApprox(t, in, ApproxOptions{MaxError: 0.2, MaxLHS: 3})
		seen := map[string]float64{}
		for _, f := range res {
			seen[f.FD.String()] = f.Error
			// Error must be within threshold and consistent with Error().
			if f.Error > 0.2 {
				t.Fatalf("trial %d: %v exceeds threshold (%v)", trial, f.FD, f.Error)
			}
			want := float64(Error(in, f.FD)) / float64(in.N())
			if f.Error != want {
				t.Fatalf("trial %d: error mismatch for %v: %v vs %v", trial, f.FD, f.Error, want)
			}
			// No reported FD has a reported subset-LHS FD with same RHS.
			for _, g := range res {
				if g.FD.RHS == f.FD.RHS && g.FD.LHS.ProperSubsetOf(f.FD.LHS) {
					t.Fatalf("trial %d: non-minimal %v reported alongside %v", trial, f.FD, g.FD)
				}
			}
		}
	}
}

func TestDiscoverApproxEmptyInstance(t *testing.T) {
	in := relation.NewInstance(relation.MustSchema("A", "B"))
	got, err := DiscoverApprox(in, ApproxOptions{MaxError: 0.5})
	if err != nil {
		t.Fatalf("DiscoverApprox: %v", err)
	}
	if got != nil {
		t.Errorf("empty instance should yield nil, got %v", got)
	}
}

func mustDiscoverApprox(t *testing.T, in *relation.Instance, opt ApproxOptions) []ApproxFD {
	t.Helper()
	res, err := DiscoverApprox(in, opt)
	if err != nil {
		t.Fatalf("DiscoverApprox: %v", err)
	}
	return res
}
