package discovery

import (
	"context"
	"sort"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// ApproxOptions bounds the approximate-FD discovery search.
type ApproxOptions struct {
	// MaxError is the largest tolerated g3-style error: the fraction of
	// tuples that must be ignored for X → A to hold (0 = exact FDs).
	MaxError float64
	// MaxLHS is the largest LHS size to explore. Default 3.
	MaxLHS int
	// MaxResults stops early after this many FDs (0 = unlimited), same
	// early-return-sorted contract as Discover: the first MaxResults
	// dependencies in mining order, sorted.
	MaxResults int
	// Attrs restricts discovery to a subset of attributes (empty = all).
	Attrs relation.AttrSet
}

func (o ApproxOptions) withDefaults(width int) (ApproxOptions, error) {
	if err := ValidateAttrs(o.Attrs, width); err != nil {
		return o, err
	}
	if o.MaxLHS <= 0 {
		o.MaxLHS = 3
	}
	if o.Attrs.IsEmpty() {
		o.Attrs = relation.FullSet(width)
	}
	return o, nil
}

// ApproxFD is a discovered approximate dependency with its error.
type ApproxFD struct {
	FD    fd.FD
	Error float64 // fraction of tuples violating the plurality assignment
}

// DiscoverApprox returns every minimal approximate FD X → A with
// |X| ≤ MaxLHS whose g3 error is at most MaxError, in the sense of the
// approximate-dependency work the paper cites ([9] TANE, [11], [14]):
// the minimum fraction of tuples to remove so the FD holds exactly.
// Minimality is with respect to the error threshold: no proper LHS subset
// already satisfies it. This substrate supports workflows that start from
// almost-holding FDs rather than exact ones — exactly the "FDs that were
// automatically discovered from legacy data" scenario of Section 1.
//
// The g3 error of each candidate is computed by splitting the cached
// stripped π(X) classes, not by repartitioning the instance per candidate;
// an oracle test pins the results byte-equal to the Error() reference.
// An empty instance returns nil. An Attrs set referencing a column
// outside the schema returns an *AttrsRangeError.
func DiscoverApprox(in *relation.Instance, opt ApproxOptions) ([]ApproxFD, error) {
	opt, err := opt.withDefaults(in.Schema.Width())
	if err != nil {
		return nil, err
	}
	if in.N() == 0 {
		return nil, nil
	}
	var out []ApproxFD
	serr := Stream(context.Background(), in, StreamOptions{
		MaxLHS:   opt.MaxLHS,
		MaxError: opt.MaxError,
		Attrs:    opt.Attrs,
	}, func(f Found) error {
		out = append(out, ApproxFD{FD: f.FD, Error: f.Error})
		if opt.MaxResults > 0 && len(out) >= opt.MaxResults {
			return errStopDiscover
		}
		return nil
	})
	if serr != nil && serr != errStopDiscover {
		return nil, serr
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FD.RHS != out[j].FD.RHS {
			return out[i].FD.RHS < out[j].FD.RHS
		}
		if out[i].FD.LHS.Len() != out[j].FD.LHS.Len() {
			return out[i].FD.LHS.Len() < out[j].FD.LHS.Len()
		}
		return out[i].FD.LHS < out[j].FD.LHS
	})
	return out, nil
}
