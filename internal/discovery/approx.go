package discovery

import (
	"sort"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// ApproxOptions bounds the approximate-FD discovery search.
type ApproxOptions struct {
	// MaxError is the largest tolerated g3-style error: the fraction of
	// tuples that must be ignored for X → A to hold (0 = exact FDs).
	MaxError float64
	// MaxLHS is the largest LHS size to explore. Default 3.
	MaxLHS int
	// Attrs restricts discovery to a subset of attributes (empty = all).
	Attrs relation.AttrSet
}

// ApproxFD is a discovered approximate dependency with its error.
type ApproxFD struct {
	FD    fd.FD
	Error float64 // fraction of tuples violating the plurality assignment
}

// DiscoverApprox returns every minimal approximate FD X → A with
// |X| ≤ MaxLHS whose g3 error is at most MaxError, in the sense of the
// approximate-dependency work the paper cites ([9] TANE, [11], [14]):
// the minimum fraction of tuples to remove so the FD holds exactly.
// Minimality is with respect to the error threshold: no proper LHS subset
// already satisfies it. This substrate supports workflows that start from
// almost-holding FDs rather than exact ones — exactly the "FDs that were
// automatically discovered from legacy data" scenario of Section 1.
func DiscoverApprox(in *relation.Instance, opt ApproxOptions) []ApproxFD {
	if opt.MaxLHS <= 0 {
		opt.MaxLHS = 3
	}
	if opt.Attrs.IsEmpty() {
		opt.Attrs = relation.FullSet(in.Schema.Width())
	}
	if in.N() == 0 {
		return nil
	}
	attrs := opt.Attrs.Attrs()
	n := float64(in.N())

	var out []ApproxFD
	found := make(map[int][]relation.AttrSet)

	level := make([]relation.AttrSet, 0, len(attrs))
	for _, a := range attrs {
		level = append(level, relation.NewAttrSet(a))
	}
	for size := 1; size <= opt.MaxLHS && len(level) > 0; size++ {
		sort.Slice(level, func(i, j int) bool { return level[i] < level[j] })
		for _, x := range level {
			for _, a := range attrs {
				if x.Contains(a) || hasSubsetLHS(found[a], x) {
					continue
				}
				f := fd.FD{LHS: x, RHS: a}
				errFrac := float64(Error(in, f)) / n
				if errFrac <= opt.MaxError {
					found[a] = append(found[a], x)
					out = append(out, ApproxFD{FD: f, Error: errFrac})
				}
			}
		}
		if size < opt.MaxLHS {
			next := make(map[relation.AttrSet]bool)
			for _, x := range level {
				for _, a := range attrs {
					if !x.Contains(a) {
						next[x.Add(a)] = true
					}
				}
			}
			level = level[:0]
			for x := range next {
				level = append(level, x)
			}
		} else {
			level = nil
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FD.RHS != out[j].FD.RHS {
			return out[i].FD.RHS < out[j].FD.RHS
		}
		if out[i].FD.LHS.Len() != out[j].FD.LHS.Len() {
			return out[i].FD.LHS.Len() < out[j].FD.LHS.Len()
		}
		return out[i].FD.LHS < out[j].FD.LHS
	})
	return out
}
