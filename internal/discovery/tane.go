// Package discovery implements level-wise discovery of minimal functional
// dependencies from data, in the style of TANE (Huhtala et al., [9] in the
// paper). The paper's experimental setup uses such a discovery pass to
// obtain the clean FD set Σc before perturbing it; this package is that
// substrate.
//
// The implementation uses stripped partitions: the partition of the tuple
// set induced by an attribute set X, with singleton equivalence classes
// removed. X → A holds exactly when the partition of X∪{A} has the same
// error (number of tuples minus number of classes) as the partition of X.
package discovery

import (
	"sort"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// Options bounds the discovery search.
type Options struct {
	// MaxLHS is the largest LHS size to explore (the paper uses "fewer
	// than 6 attributes"). Default 3.
	MaxLHS int
	// MaxResults stops early after this many FDs (0 = unlimited).
	MaxResults int
	// Attrs restricts discovery to a subset of attributes (empty = all).
	// Useful on wide schemas where the lattice is otherwise huge.
	Attrs relation.AttrSet
}

func (o Options) withDefaults(width int) Options {
	if o.MaxLHS <= 0 {
		o.MaxLHS = 3
	}
	if o.Attrs.IsEmpty() {
		o.Attrs = relation.FullSet(width)
	}
	return o
}

// stripped is a stripped partition: equivalence classes of size ≥ 2.
type stripped struct {
	classes [][]int32
	err     int // Σ(|class|−1): tuples that would need to merge targets
}

// Discover returns every minimal FD X → A with |X| ≤ MaxLHS that holds
// exactly on the instance, sorted deterministically. Minimality here is
// the discovery notion: no proper subset of X determines A.
func Discover(in *relation.Instance, opt Options) fd.Set {
	opt = opt.withDefaults(in.Schema.Width())
	attrs := opt.Attrs.Attrs()

	// Level 1 partitions.
	parts := make(map[relation.AttrSet]stripped, len(attrs)*4)
	for _, a := range attrs {
		parts[relation.NewAttrSet(a)] = partitionByAttr(in, a)
	}

	var out fd.Set
	// found[A] lists the minimal LHS sets discovered so far per RHS, used
	// to skip supersets (minimality pruning).
	found := make(map[int][]relation.AttrSet)

	level := make([]relation.AttrSet, 0, len(attrs))
	for _, a := range attrs {
		level = append(level, relation.NewAttrSet(a))
	}

	for size := 1; size <= opt.MaxLHS && len(level) > 0; size++ {
		sort.Slice(level, func(i, j int) bool { return level[i] < level[j] })
		for _, x := range level {
			px, ok := parts[x]
			if !ok {
				px = partitionBySet(in, x)
				parts[x] = px
			}
			for _, a := range attrs {
				if x.Contains(a) {
					continue
				}
				if hasSubsetLHS(found[a], x) {
					continue // a smaller LHS already determines a
				}
				xa := x.Add(a)
				pxa, ok := parts[xa]
				if !ok {
					pxa = partitionBySet(in, xa)
					parts[xa] = pxa
				}
				if px.err == pxa.err { // X → A holds exactly
					found[a] = append(found[a], x)
					out = append(out, fd.MustNew(x, a))
					if opt.MaxResults > 0 && len(out) >= opt.MaxResults {
						sortFDs(out)
						return out
					}
				}
			}
		}
		// Next level: all (size+1)-sets from the allowed attributes. A
		// prefix-join would be faster; candidate counts at the small
		// MaxLHS values used here keep this simple form adequate.
		if size < opt.MaxLHS {
			next := make(map[relation.AttrSet]bool)
			for _, x := range level {
				for _, a := range attrs {
					if !x.Contains(a) {
						next[x.Add(a)] = true
					}
				}
			}
			level = level[:0]
			for x := range next {
				level = append(level, x)
			}
		} else {
			level = nil
		}
	}
	sortFDs(out)
	return out
}

// Holds reports whether X → A holds exactly on the instance, via the
// partition-error criterion.
func Holds(in *relation.Instance, f fd.FD) bool {
	px := partitionBySet(in, f.LHS)
	pxa := partitionBySet(in, f.LHS.Add(f.RHS))
	return px.err == pxa.err
}

// Error returns the number of tuples that must be ignored for X → A to
// hold (the g3-style count used by approximate-FD work): for each X-class,
// all tuples not in the class's plurality A-value.
func Error(in *relation.Instance, f fd.FD) int {
	groups := make(map[string]map[string]int)
	for t := 0; t < in.N(); t++ {
		k := in.Project(t, f.LHS)
		sub, ok := groups[k]
		if !ok {
			sub = make(map[string]int, 2)
			groups[k] = sub
		}
		sub[in.Tuples[t][f.RHS].Key()]++
	}
	errs := 0
	for _, sub := range groups {
		total, maxc := 0, 0
		for _, c := range sub {
			total += c
			if c > maxc {
				maxc = c
			}
		}
		errs += total - maxc
	}
	return errs
}

func partitionByAttr(in *relation.Instance, a int) stripped {
	return partitionBySet(in, relation.NewAttrSet(a))
}

func partitionBySet(in *relation.Instance, x relation.AttrSet) stripped {
	groups := make(map[string][]int32, in.N())
	for t := 0; t < in.N(); t++ {
		k := in.Project(t, x)
		groups[k] = append(groups[k], int32(t))
	}
	var p stripped
	for _, g := range groups {
		if len(g) >= 2 {
			p.classes = append(p.classes, g)
			p.err += len(g) - 1
		}
	}
	return p
}

func hasSubsetLHS(sets []relation.AttrSet, x relation.AttrSet) bool {
	for _, s := range sets {
		if s.SubsetOf(x) {
			return true
		}
	}
	return false
}

func sortFDs(set fd.Set) {
	sort.Slice(set, func(i, j int) bool {
		if set[i].RHS != set[j].RHS {
			return set[i].RHS < set[j].RHS
		}
		if set[i].LHS.Len() != set[j].LHS.Len() {
			return set[i].LHS.Len() < set[j].LHS.Len()
		}
		return set[i].LHS < set[j].LHS
	})
}
