// Package discovery implements level-wise discovery of minimal functional
// dependencies from data, in the style of TANE (Huhtala et al., [9] in the
// paper). The paper's relative-trust story starts from FDs "automatically
// discovered from legacy data"; this package is that substrate, serving
// both the offline CLI and the POST /v1/discover endpoint.
//
// The implementation works on stripped partitions — the partition of the
// tuple set induced by an attribute set X, with singleton classes removed.
// X → A holds exactly when refining π(X) by A splits nothing, and its g3
// error (the minimum number of tuples to ignore for the FD to hold) is the
// per-class count of tuples outside the plurality A-value. Both facts are
// read off the stripped form directly.
//
// Two TANE techniques keep the lattice walk cheap. Level-k partitions are
// built by the partition product π(X)·π(Y) of their two level-(k−1)
// prefix-join parents (relation.Partitioner.Product) instead of refining
// from scratch, and candidate generation is the matching prefix join.
// Partitions live in a relation.PartitionStore — shareable across runs via
// session.Engine — and each level is evicted once the next is built, so
// peak retention is two lattice levels plus the single-attribute row, not
// the whole lattice.
//
// Stream is the core entry point; Discover and DiscoverApprox are batch
// wrappers over it that collect and sort. The historical from-scratch
// helpers (partitionBySet, refineStripped, Error) are retained as the
// reference implementations the oracle tests pin Stream against.
package discovery

import (
	"context"
	"errors"
	"sort"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// Options bounds the discovery search.
type Options struct {
	// MaxLHS is the largest LHS size to explore (the paper uses "fewer
	// than 6 attributes"). Default 3.
	MaxLHS int
	// MaxResults stops early after this many FDs (0 = unlimited). The
	// first MaxResults dependencies in mining order are returned, sorted.
	MaxResults int
	// Attrs restricts discovery to a subset of attributes (empty = all).
	// Useful on wide schemas where the lattice is otherwise huge.
	Attrs relation.AttrSet
}

func (o Options) withDefaults(width int) (Options, error) {
	if err := ValidateAttrs(o.Attrs, width); err != nil {
		return o, err
	}
	if o.MaxLHS <= 0 {
		o.MaxLHS = 3
	}
	if o.Attrs.IsEmpty() {
		o.Attrs = relation.FullSet(width)
	}
	return o, nil
}

// stripped is a stripped partition: equivalence classes of size ≥ 2.
// Classes appear in refinement encounter order (deterministic) and share
// one backing arena per partition. It remains the representation of the
// reference helpers below; the streaming miner uses relation.Partition.
type stripped struct {
	classes [][]int32
	err     int // Σ(|class|−1): tuples that would need to merge targets
}

// errStopDiscover aborts a Stream run from a batch wrapper once
// MaxResults dependencies have been collected.
var errStopDiscover = errors.New("discovery: max results reached")

// Discover returns every minimal FD X → A with |X| ≤ MaxLHS that holds
// exactly on the instance, sorted deterministically. Minimality here is
// the discovery notion: no proper subset of X determines A. An Attrs set
// referencing a column outside the schema returns an *AttrsRangeError.
func Discover(in *relation.Instance, opt Options) (fd.Set, error) {
	opt, err := opt.withDefaults(in.Schema.Width())
	if err != nil {
		return nil, err
	}
	var out fd.Set
	serr := Stream(context.Background(), in, StreamOptions{
		MaxLHS: opt.MaxLHS,
		Attrs:  opt.Attrs,
	}, func(f Found) error {
		out = append(out, f.FD)
		if opt.MaxResults > 0 && len(out) >= opt.MaxResults {
			return errStopDiscover
		}
		return nil
	})
	if serr != nil && serr != errStopDiscover {
		return nil, serr
	}
	sortFDs(out)
	return out, nil
}

// Holds reports whether X → A holds exactly on the instance, via the
// partition-error criterion.
func Holds(in *relation.Instance, f fd.FD) bool {
	p := relation.NewPartitioner(in)
	px := partitionBySet(p, f.LHS)
	pxa := refineStripped(p, px, f.RHS)
	return px.err == pxa.err
}

// Error returns the number of tuples that must be ignored for X → A to
// hold (the g3-style count used by approximate-FD work): for each X-class,
// all tuples not in the class's plurality A-value.
//
// This is the from-scratch reference: it rebuilds a partitioner and
// repartitions the instance per call. The miner computes the same count
// by splitting cached stripped partitions (g3Split); the oracle tests pin
// the two equal.
func Error(in *relation.Instance, f fd.FD) int {
	p := relation.NewPartitioner(in)
	p.BeginAll()
	p.RefineSet(f.LHS)
	pt := p.Partition()
	errs := 0
	for gi := 0; gi < pt.NumGroups(); gi++ {
		g := pt.Group(gi)
		if len(g) < 2 {
			continue
		}
		sp := p.Split(g, f.RHS)
		maxc := 0
		for si := 0; si < sp.NumGroups(); si++ {
			if l := len(sp.Group(si)); l > maxc {
				maxc = l
			}
		}
		errs += len(g) - maxc
	}
	return errs
}

// partitionBySet computes the stripped partition of X by code-based
// refinement from the whole tuple set (reference implementation).
func partitionBySet(p *relation.Partitioner, x relation.AttrSet) stripped {
	p.BeginAll()
	p.RefineSet(x)
	pt := p.Partition()
	total := 0
	for gi := 0; gi < pt.NumGroups(); gi++ {
		if g := pt.Group(gi); len(g) >= 2 {
			total += len(g)
		}
	}
	var s stripped
	arena := make([]int32, 0, total)
	for gi := 0; gi < pt.NumGroups(); gi++ {
		g := pt.Group(gi)
		if len(g) < 2 {
			continue
		}
		start := len(arena)
		arena = append(arena, g...)
		s.classes = append(s.classes, arena[start:len(arena):len(arena)])
		s.err += len(g) - 1
	}
	return s
}

// refineStripped computes the stripped partition of X∪{a} from the
// stripped partition of X: each class splits by a's codes, and classes
// collapsing to singletons drop out. Singleton classes of π(X) never
// produce multi-tuple classes, so working on the stripped form is exact
// (reference implementation; the miner derives level-k partitions by
// Product instead).
func refineStripped(p *relation.Partitioner, parent stripped, a int) stripped {
	total := 0
	for _, c := range parent.classes {
		total += len(c)
	}
	var s stripped
	arena := make([]int32, 0, total)
	for _, c := range parent.classes {
		sp := p.Split(c, a)
		for si := 0; si < sp.NumGroups(); si++ {
			g := sp.Group(si)
			if len(g) < 2 {
				continue
			}
			start := len(arena)
			arena = append(arena, g...)
			s.classes = append(s.classes, arena[start:len(arena):len(arena)])
			s.err += len(g) - 1
		}
	}
	return s
}

func hasSubsetLHS(sets []relation.AttrSet, x relation.AttrSet) bool {
	for _, s := range sets {
		if s.SubsetOf(x) {
			return true
		}
	}
	return false
}

func sortFDs(set fd.Set) {
	sort.Slice(set, func(i, j int) bool {
		if set[i].RHS != set[j].RHS {
			return set[i].RHS < set[j].RHS
		}
		if set[i].LHS.Len() != set[j].LHS.Len() {
			return set[i].LHS.Len() < set[j].LHS.Len()
		}
		return set[i].LHS < set[j].LHS
	})
}
