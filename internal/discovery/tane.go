// Package discovery implements level-wise discovery of minimal functional
// dependencies from data, in the style of TANE (Huhtala et al., [9] in the
// paper). The paper's experimental setup uses such a discovery pass to
// obtain the clean FD set Σc before perturbing it; this package is that
// substrate.
//
// The implementation uses stripped partitions: the partition of the tuple
// set induced by an attribute set X, with singleton equivalence classes
// removed. X → A holds exactly when the partition of X∪{A} has the same
// error (number of tuples minus number of classes) as the partition of X.
package discovery

import (
	"sort"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// Options bounds the discovery search.
type Options struct {
	// MaxLHS is the largest LHS size to explore (the paper uses "fewer
	// than 6 attributes"). Default 3.
	MaxLHS int
	// MaxResults stops early after this many FDs (0 = unlimited).
	MaxResults int
	// Attrs restricts discovery to a subset of attributes (empty = all).
	// Useful on wide schemas where the lattice is otherwise huge.
	Attrs relation.AttrSet
}

func (o Options) withDefaults(width int) Options {
	if o.MaxLHS <= 0 {
		o.MaxLHS = 3
	}
	if o.Attrs.IsEmpty() {
		o.Attrs = relation.FullSet(width)
	}
	return o
}

// stripped is a stripped partition: equivalence classes of size ≥ 2.
// Classes appear in refinement encounter order (deterministic) and share
// one backing arena per partition.
type stripped struct {
	classes [][]int32
	err     int // Σ(|class|−1): tuples that would need to merge targets
}

// Discover returns every minimal FD X → A with |X| ≤ MaxLHS that holds
// exactly on the instance, sorted deterministically. Minimality here is
// the discovery notion: no proper subset of X determines A.
func Discover(in *relation.Instance, opt Options) fd.Set {
	opt = opt.withDefaults(in.Schema.Width())
	attrs := opt.Attrs.Attrs()
	p := relation.NewPartitioner(in)

	// Level 1 partitions.
	parts := make(map[relation.AttrSet]stripped, len(attrs)*4)
	for _, a := range attrs {
		parts[relation.NewAttrSet(a)] = partitionBySet(p, relation.NewAttrSet(a))
	}

	var out fd.Set
	// found[A] lists the minimal LHS sets discovered so far per RHS, used
	// to skip supersets (minimality pruning).
	found := make(map[int][]relation.AttrSet)

	level := make([]relation.AttrSet, 0, len(attrs))
	for _, a := range attrs {
		level = append(level, relation.NewAttrSet(a))
	}

	for size := 1; size <= opt.MaxLHS && len(level) > 0; size++ {
		sort.Slice(level, func(i, j int) bool { return level[i] < level[j] })
		for _, x := range level {
			px, ok := parts[x]
			if !ok {
				px = partitionBySet(p, x)
				parts[x] = px
			}
			for _, a := range attrs {
				if x.Contains(a) {
					continue
				}
				if hasSubsetLHS(found[a], x) {
					continue // a smaller LHS already determines a
				}
				xa := x.Add(a)
				pxa, ok := parts[xa]
				if !ok {
					// TANE's key optimization: π(X∪{A}) refines the already
					// computed π(X) instead of repartitioning the instance.
					pxa = refineStripped(p, px, a)
					parts[xa] = pxa
				}
				if px.err == pxa.err { // X → A holds exactly
					found[a] = append(found[a], x)
					out = append(out, fd.MustNew(x, a))
					if opt.MaxResults > 0 && len(out) >= opt.MaxResults {
						sortFDs(out)
						return out
					}
				}
			}
		}
		// Next level: all (size+1)-sets from the allowed attributes. A
		// prefix-join would be faster; candidate counts at the small
		// MaxLHS values used here keep this simple form adequate.
		if size < opt.MaxLHS {
			next := make(map[relation.AttrSet]bool)
			for _, x := range level {
				for _, a := range attrs {
					if !x.Contains(a) {
						next[x.Add(a)] = true
					}
				}
			}
			level = level[:0]
			for x := range next {
				level = append(level, x)
			}
		} else {
			level = nil
		}
	}
	sortFDs(out)
	return out
}

// Holds reports whether X → A holds exactly on the instance, via the
// partition-error criterion.
func Holds(in *relation.Instance, f fd.FD) bool {
	p := relation.NewPartitioner(in)
	px := partitionBySet(p, f.LHS)
	pxa := refineStripped(p, px, f.RHS)
	return px.err == pxa.err
}

// Error returns the number of tuples that must be ignored for X → A to
// hold (the g3-style count used by approximate-FD work): for each X-class,
// all tuples not in the class's plurality A-value.
func Error(in *relation.Instance, f fd.FD) int {
	p := relation.NewPartitioner(in)
	p.BeginAll()
	p.RefineSet(f.LHS)
	pt := p.Partition()
	errs := 0
	for gi := 0; gi < pt.NumGroups(); gi++ {
		g := pt.Group(gi)
		if len(g) < 2 {
			continue
		}
		sp := p.Split(g, f.RHS)
		maxc := 0
		for si := 0; si < sp.NumGroups(); si++ {
			if l := len(sp.Group(si)); l > maxc {
				maxc = l
			}
		}
		errs += len(g) - maxc
	}
	return errs
}

// partitionBySet computes the stripped partition of X by code-based
// refinement from the whole tuple set.
func partitionBySet(p *relation.Partitioner, x relation.AttrSet) stripped {
	p.BeginAll()
	p.RefineSet(x)
	pt := p.Partition()
	total := 0
	for gi := 0; gi < pt.NumGroups(); gi++ {
		if g := pt.Group(gi); len(g) >= 2 {
			total += len(g)
		}
	}
	var s stripped
	arena := make([]int32, 0, total)
	for gi := 0; gi < pt.NumGroups(); gi++ {
		g := pt.Group(gi)
		if len(g) < 2 {
			continue
		}
		start := len(arena)
		arena = append(arena, g...)
		s.classes = append(s.classes, arena[start:len(arena):len(arena)])
		s.err += len(g) - 1
	}
	return s
}

// refineStripped computes the stripped partition of X∪{a} from the
// stripped partition of X: each class splits by a's codes, and classes
// collapsing to singletons drop out. Singleton classes of π(X) never
// produce multi-tuple classes, so working on the stripped form is exact.
func refineStripped(p *relation.Partitioner, parent stripped, a int) stripped {
	total := 0
	for _, c := range parent.classes {
		total += len(c)
	}
	var s stripped
	arena := make([]int32, 0, total)
	for _, c := range parent.classes {
		sp := p.Split(c, a)
		for si := 0; si < sp.NumGroups(); si++ {
			g := sp.Group(si)
			if len(g) < 2 {
				continue
			}
			start := len(arena)
			arena = append(arena, g...)
			s.classes = append(s.classes, arena[start:len(arena):len(arena)])
			s.err += len(g) - 1
		}
	}
	return s
}

func hasSubsetLHS(sets []relation.AttrSet, x relation.AttrSet) bool {
	for _, s := range sets {
		if s.SubsetOf(x) {
			return true
		}
	}
	return false
}

func sortFDs(set fd.Set) {
	sort.Slice(set, func(i, j int) bool {
		if set[i].RHS != set[j].RHS {
			return set[i].RHS < set[j].RHS
		}
		if set[i].LHS.Len() != set[j].LHS.Len() {
			return set[i].LHS.Len() < set[j].LHS.Len()
		}
		return set[i].LHS < set[j].LHS
	})
}
