package discovery

import (
	"math/rand"
	"testing"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/testkit"
)

func TestDiscoverSimple(t *testing.T) {
	// B is a function of A; C is independent.
	in := testkit.Build([]string{"A", "B", "C"}, [][]string{
		{"1", "x", "p"},
		{"1", "x", "q"},
		{"2", "y", "p"},
		{"2", "y", "q"},
		{"3", "x", "r"},
	})
	set := mustDiscover(t, in, Options{MaxLHS: 2})
	if !contains(set, fd.MustNew(relation.NewAttrSet(0), 1)) {
		t.Errorf("A->B not discovered: %v", set)
	}
	if contains(set, fd.MustNew(relation.NewAttrSet(0), 2)) {
		t.Errorf("A->C should not hold: %v", set)
	}
	// Every discovered FD actually holds.
	for _, f := range set {
		if !Holds(in, f) {
			t.Errorf("discovered FD %v does not hold", f)
		}
	}
}

func TestDiscoverMinimality(t *testing.T) {
	in := testkit.Build([]string{"A", "B", "C"}, [][]string{
		{"1", "u", "x"},
		{"1", "v", "x"},
		{"2", "u", "y"},
		{"2", "v", "y"},
	})
	// A->C holds; AB->C therefore must not be reported (non-minimal).
	set := mustDiscover(t, in, Options{MaxLHS: 2})
	for _, f := range set {
		if f.RHS == 2 && f.LHS.Len() > 1 && f.LHS.Contains(0) {
			t.Errorf("non-minimal FD reported: %v", f)
		}
	}
}

func TestDiscoverAgainstExhaustiveCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		in := testkit.RandomInstance(rng, 12, 4, 2)
		set := mustDiscover(t, in, Options{MaxLHS: 3})
		got := map[string]bool{}
		for _, f := range set {
			got[f.String()] = true
			if !Holds(in, f) {
				t.Fatalf("trial %d: %v reported but does not hold", trial, f)
			}
		}
		// Exhaustive: every minimal holding FD with |LHS| ≤ 3 is reported.
		for rhs := 0; rhs < 4; rhs++ {
			free := relation.FullSet(4).Remove(rhs)
			attrs := free.Attrs()
			for mask := 1; mask < 1<<len(attrs); mask++ {
				var lhs relation.AttrSet
				for b, a := range attrs {
					if mask&(1<<b) != 0 {
						lhs = lhs.Add(a)
					}
				}
				f := fd.MustNew(lhs, rhs)
				if !Holds(in, f) {
					continue
				}
				minimal := true
				for _, a := range lhs.Attrs() {
					if Holds(in, fd.MustNew(lhs.Remove(a), rhs)) {
						minimal = false
						break
					}
				}
				if minimal != got[f.String()] {
					t.Fatalf("trial %d: FD %v minimal=%v reported=%v\n%s",
						trial, f, minimal, got[f.String()], in)
				}
			}
		}
	}
}

func TestDiscoverRespectsAttrsRestriction(t *testing.T) {
	in := testkit.Build([]string{"A", "B", "C"}, [][]string{
		{"1", "x", "1"}, {"2", "y", "2"},
	})
	set := mustDiscover(t, in, Options{MaxLHS: 1, Attrs: relation.NewAttrSet(0, 1)})
	for _, f := range set {
		if f.Attrs().Contains(2) {
			t.Errorf("FD %v uses excluded attribute", f)
		}
	}
}

func TestDiscoverMaxResults(t *testing.T) {
	in := testkit.Build([]string{"A", "B", "C"}, [][]string{
		{"1", "1", "1"}, {"2", "2", "2"},
	})
	set := mustDiscover(t, in, Options{MaxLHS: 1, MaxResults: 2})
	if len(set) != 2 {
		t.Errorf("MaxResults ignored: %d", len(set))
	}
}

func TestErrorCount(t *testing.T) {
	in := testkit.Build([]string{"A", "B"}, [][]string{
		{"1", "x"}, {"1", "x"}, {"1", "y"}, {"2", "z"},
	})
	f := fd.MustNew(relation.NewAttrSet(0), 1)
	if got := Error(in, f); got != 1 {
		t.Errorf("Error = %d, want 1 (one minority tuple in the A=1 group)", got)
	}
	if Holds(in, f) {
		t.Error("A->B does not hold")
	}
}

func mustDiscover(t *testing.T, in *relation.Instance, opt Options) fd.Set {
	t.Helper()
	set, err := Discover(in, opt)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	return set
}

func contains(set fd.Set, f fd.FD) bool {
	for _, g := range set {
		if g.Equal(f) {
			return true
		}
	}
	return false
}
