package discovery

import (
	"context"
	"fmt"
	"sort"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// AttrsRangeError reports an Options.Attrs bit that falls outside the
// instance schema — the served-input hazard that used to panic inside
// Partitioner.col. The server maps it to 422 schema_mismatch.
type AttrsRangeError struct {
	Attr  int // the offending attribute index (the set's highest bit)
	Width int // the schema width it exceeds
}

func (e *AttrsRangeError) Error() string {
	return fmt.Sprintf("discovery: attrs references column %d but the schema has %d columns", e.Attr, e.Width)
}

// ValidateAttrs checks an Attrs restriction against a schema width,
// returning an *AttrsRangeError when the set references a column the
// schema does not have. Every discovery entry point applies it; callers
// that need to reject bad input before starting a run (the facade, the
// server) can call it directly.
func ValidateAttrs(attrs relation.AttrSet, width int) error {
	if !attrs.IsEmpty() && attrs.Max() >= width {
		return &AttrsRangeError{Attr: attrs.Max(), Width: width}
	}
	return nil
}

// Found is one discovered dependency, reported in mining order.
type Found struct {
	FD    fd.FD
	Error float64 // g3 fraction (0 for exact FDs)
	Level int     // LHS size, the lattice level that produced it
}

// StreamOptions bounds a Stream run. The zero value mines exact FDs over
// all attributes up to the default MaxLHS with a private partition store.
type StreamOptions struct {
	// MaxLHS is the largest LHS size to explore. Default 3.
	MaxLHS int
	// MaxError is the largest tolerated g3 error fraction (0 = exact FDs).
	MaxError float64
	// Attrs restricts discovery to a subset of attributes (empty = all).
	Attrs relation.AttrSet
	// Store supplies stripped partitions and caches the ones this run
	// computes; nil uses a run-private store. A session-shared store lets
	// repeated mining passes over a warm dataset skip level-1 partitions.
	Store *relation.PartitionStore
	// Progress, if set, is called at the start of each lattice level with
	// the level (LHS size) and the number of candidate LHS sets in it.
	Progress func(level, sets int)
}

// Stream mines minimal FDs level by level and hands each to emit as it is
// found — the core every entry point (batch Discover/DiscoverApprox, the
// relatrust.Discoverer facade, POST /v1/discover) shares. A non-nil error
// from emit aborts the run and is returned verbatim; ctx cancellation is
// checked once per candidate LHS and returns context.Cause(ctx).
//
// Mining order is deterministic: levels ascend, LHS sets ascend within a
// level, RHS attributes ascend per LHS. Level-k partitions are built by
// the TANE product of their two level-(k−1) prefix-join parents; g3 is
// computed by splitting the cached stripped π(X) classes, never by
// repartitioning the instance. Once level k is scanned, level k−1
// partitions are evicted from the store (level-1 partitions are retained
// for reuse across runs), bounding the working set to two lattice levels
// plus the single-attribute row.
func Stream(ctx context.Context, in *relation.Instance, opt StreamOptions, emit func(Found) error) error {
	width := in.Schema.Width()
	if err := ValidateAttrs(opt.Attrs, width); err != nil {
		return err
	}
	if opt.MaxLHS <= 0 {
		opt.MaxLHS = 3
	}
	if opt.Attrs.IsEmpty() {
		opt.Attrs = relation.FullSet(width)
	}
	store := opt.Store
	if store == nil {
		store = relation.NewPartitionStore()
	}
	attrs := opt.Attrs.Attrs()
	p := relation.NewPartitioner(in)
	n := float64(in.N())
	// budget is the largest integer g3 count that still passes the
	// float-fraction test below, so g3Split can stop counting the moment a
	// candidate is unsalvageable (immediately, in exact mode) without
	// changing a single accept/reject decision or reported fraction.
	budget := 0
	if in.N() > 0 {
		budget = int(opt.MaxError * n)
		for float64(budget+1)/n <= opt.MaxError {
			budget++
		}
		for budget > 0 && float64(budget)/n > opt.MaxError {
			budget--
		}
	}

	// found[A] lists the minimal LHS sets discovered so far per RHS, used
	// to skip supersets (minimality pruning).
	found := make(map[int][]relation.AttrSet)

	level := make([]relation.AttrSet, 0, len(attrs))
	for _, a := range attrs {
		level = append(level, relation.NewAttrSet(a))
	}

	for size := 1; size <= opt.MaxLHS && len(level) > 0; size++ {
		sort.Slice(level, func(i, j int) bool { return level[i] < level[j] })
		if opt.Progress != nil {
			opt.Progress(size, len(level))
		}
		for _, x := range level {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			px := partitionFor(p, store, x)
			for _, a := range attrs {
				if x.Contains(a) {
					continue
				}
				if hasSubsetLHS(found[a], x) {
					continue // a smaller LHS already determines a
				}
				g3, ok := g3Split(p, px, a, budget)
				if ok {
					frac := 0.0
					if n > 0 {
						frac = float64(g3) / n
					}
					found[a] = append(found[a], x)
					if err := emit(Found{FD: fd.MustNew(x, a), Error: frac, Level: size}); err != nil {
						return err
					}
				}
			}
		}
		if size < opt.MaxLHS {
			level = prefixJoin(level)
		} else {
			level = nil
		}
		// Level size−1 partitions were only needed as product parents for
		// level size; drop them. The single-attribute row stays cached so
		// the next run over the same store starts warm.
		if size-1 >= 2 {
			store.EvictLevel(size - 1)
		}
	}
	return nil
}

// partitionFor returns the stripped partition of x, preferring the store,
// then the product of x's two prefix-join parents (for |x| ≥ 2), then a
// from-scratch refinement. Whatever path ran, the result is owned and
// cached before returning; all three produce the same classes, so results
// are deterministic regardless of which partitions the store still holds.
func partitionFor(p *relation.Partitioner, store *relation.PartitionStore, x relation.AttrSet) relation.Partition {
	if pt, ok := store.Get(x); ok {
		return pt
	}
	var pt relation.Partition
	built := false
	if x.Len() >= 2 {
		a := x.Remove(x.Max()) // drop the largest attribute
		b := x.Remove(a.Max()) // drop the second-largest
		if pa, ok := store.Get(a); ok {
			if pb, ok := store.Get(b); ok {
				pt = p.Product(pa, pb)
				built = true
			}
		}
	}
	if !built {
		pt = strippedOf(p, x)
	}
	store.Put(x, pt)
	return pt
}

// strippedOf computes the stripped partition of x by code-based refinement
// from the whole tuple set, returning an owned copy safe to cache.
func strippedOf(p *relation.Partitioner, x relation.AttrSet) relation.Partition {
	p.BeginAll()
	p.RefineSet(x)
	pt := p.Partition()
	total := 0
	groups := 0
	for gi := 0; gi < pt.NumGroups(); gi++ {
		if g := pt.Group(gi); len(g) >= 2 {
			total += len(g)
			groups++
		}
	}
	out := relation.Partition{
		Tuples:  make([]int32, 0, total),
		Offsets: make([]int32, 1, groups+1),
	}
	for gi := 0; gi < pt.NumGroups(); gi++ {
		g := pt.Group(gi)
		if len(g) < 2 {
			continue
		}
		out.Tuples = append(out.Tuples, g...)
		out.Offsets = append(out.Offsets, int32(len(out.Tuples)))
	}
	return out
}

// g3Split computes the g3 error of X → a from the cached stripped π(X):
// for each X-class, the tuples outside the class's plurality a-value.
// Split reads the column codes directly and never disturbs the partition,
// so no repartitioning of the instance happens per candidate. Counting
// stops as soon as the error exceeds budget (false, count invalid) — in
// exact mining that means bailing at the first class that splits at all.
func g3Split(p *relation.Partitioner, px relation.Partition, a, budget int) (int, bool) {
	errs := 0
	for gi := 0; gi < px.NumGroups(); gi++ {
		g := px.Group(gi)
		sp := p.Split(g, a)
		maxc := 0
		for si := 0; si < sp.NumGroups(); si++ {
			if l := len(sp.Group(si)); l > maxc {
				maxc = l
			}
		}
		errs += len(g) - maxc
		if errs > budget {
			return errs, false
		}
	}
	return errs, true
}

// prefixJoin generates level k+1 from the complete level k: two k-sets
// sharing all attributes but their largest join into their union, and
// every (k+1)-set is produced by exactly one such pair — its two
// partitionFor parents. The scan sorts a copy by (prefix, max) so prefix
// blocks are contiguous; the caller's level slice keeps its mining order.
func prefixJoin(level []relation.AttrSet) []relation.AttrSet {
	byPrefix := append([]relation.AttrSet(nil), level...)
	sort.Slice(byPrefix, func(i, j int) bool {
		pi := byPrefix[i].Remove(byPrefix[i].Max())
		pj := byPrefix[j].Remove(byPrefix[j].Max())
		if pi != pj {
			return pi < pj
		}
		return byPrefix[i] < byPrefix[j]
	})
	var next []relation.AttrSet
	for i := 0; i < len(byPrefix); i++ {
		pi := byPrefix[i].Remove(byPrefix[i].Max())
		for j := i + 1; j < len(byPrefix); j++ {
			if byPrefix[j].Remove(byPrefix[j].Max()) != pi {
				break
			}
			next = append(next, byPrefix[i].Union(byPrefix[j]))
		}
	}
	return next
}
