package discovery

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// randDupInstance builds a duplicate-heavy instance with variables — the
// shapes code-based partitions must group identically to string keys.
func randDupInstance(rng *rand.Rand) *relation.Instance {
	width := 3 + rng.Intn(3)
	names := make([]string, width)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	in := relation.NewInstance(relation.MustSchema(names...))
	var vg relation.VarGen
	shared := vg.Fresh()
	n := 2 + rng.Intn(35)
	for t := 0; t < n; t++ {
		tp := make(relation.Tuple, width)
		for a := range tp {
			switch rng.Intn(12) {
			case 0:
				tp[a] = shared
			case 1:
				tp[a] = vg.Fresh()
			default:
				tp[a] = relation.Const(string(rune('a' + rng.Intn(3))))
			}
		}
		_ = in.Append(tp)
	}
	return in
}

// refStripped is the seed's string-keyed stripped partition.
func refStripped(in *relation.Instance, x relation.AttrSet) (classes [][]int32, errSum int) {
	groups := make(map[string][]int32, in.N())
	for t := 0; t < in.N(); t++ {
		k := in.Project(t, x)
		groups[k] = append(groups[k], int32(t))
	}
	for _, g := range groups {
		if len(g) >= 2 {
			classes = append(classes, g)
			errSum += len(g) - 1
		}
	}
	return classes, errSum
}

func canonClasses(classes [][]int32) [][]int32 {
	out := append([][]int32(nil), classes...)
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// TestQuickStrippedPartitionsMatchStringKeys: partitionBySet and the
// incremental refineStripped both equal the string-keyed partition, class
// for class.
func TestQuickStrippedPartitionsMatchStringKeys(t *testing.T) {
	f := func(seed int64, setRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randDupInstance(rng)
		x := relation.AttrSet(setRaw) & relation.FullSet(in.Schema.Width())
		if x.IsEmpty() {
			x = relation.NewAttrSet(0)
		}
		p := relation.NewPartitioner(in)
		got := partitionBySet(p, x)
		wantClasses, wantErr := refStripped(in, x)
		if got.err != wantErr || len(got.classes) != len(wantClasses) {
			return false
		}
		gc, wc := canonClasses(got.classes), canonClasses(wantClasses)
		for i := range gc {
			if len(gc[i]) != len(wc[i]) {
				return false
			}
			for j := range gc[i] {
				if gc[i][j] != wc[i][j] {
					return false
				}
			}
		}
		// Incremental refinement: π(X∪{a}) from π(X).
		a := rng.Intn(in.Schema.Width())
		if x.Contains(a) {
			return true
		}
		inc := refineStripped(p, got, a)
		_, wantErrXA := refStripped(in, x.Add(a))
		return inc.err == wantErrXA
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickErrorMatchesStringReference: the g3-style Error equals the
// seed's nested string-map computation.
func TestQuickErrorMatchesStringReference(t *testing.T) {
	refError := func(in *relation.Instance, f fd.FD) int {
		groups := make(map[string]map[string]int)
		for t := 0; t < in.N(); t++ {
			k := in.Project(t, f.LHS)
			if groups[k] == nil {
				groups[k] = map[string]int{}
			}
			groups[k][in.Tuples[t][f.RHS].Key()]++
		}
		errs := 0
		for _, sub := range groups {
			total, maxc := 0, 0
			for _, c := range sub {
				total += c
				if c > maxc {
					maxc = c
				}
			}
			errs += total - maxc
		}
		return errs
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randDupInstance(rng)
		width := in.Schema.Width()
		rhs := rng.Intn(width)
		lhs := relation.NewAttrSet((rhs + 1) % width)
		if width > 2 && rng.Intn(2) == 0 {
			lhs = lhs.Add((rhs + 2) % width)
		}
		fdep := fd.MustNew(lhs, rhs)
		return Error(in, fdep) == refError(in, fdep)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
