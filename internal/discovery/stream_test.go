package discovery

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/testkit"
)

// referenceDiscover is the pre-product implementation, kept verbatim as
// the bit-identity oracle: a whole-run partition map, refineStripped for
// every π(X∪{A}), and an all-supersets next map. The streaming miner must
// return exactly its FD sequence.
func referenceDiscover(in *relation.Instance, opt Options) fd.Set {
	if opt.MaxLHS <= 0 {
		opt.MaxLHS = 3
	}
	if opt.Attrs.IsEmpty() {
		opt.Attrs = relation.FullSet(in.Schema.Width())
	}
	attrs := opt.Attrs.Attrs()
	p := relation.NewPartitioner(in)
	parts := make(map[relation.AttrSet]stripped, len(attrs)*4)
	for _, a := range attrs {
		parts[relation.NewAttrSet(a)] = partitionBySet(p, relation.NewAttrSet(a))
	}
	var out fd.Set
	found := make(map[int][]relation.AttrSet)
	level := make([]relation.AttrSet, 0, len(attrs))
	for _, a := range attrs {
		level = append(level, relation.NewAttrSet(a))
	}
	for size := 1; size <= opt.MaxLHS && len(level) > 0; size++ {
		sort.Slice(level, func(i, j int) bool { return level[i] < level[j] })
		for _, x := range level {
			px, ok := parts[x]
			if !ok {
				px = partitionBySet(p, x)
				parts[x] = px
			}
			for _, a := range attrs {
				if x.Contains(a) || hasSubsetLHS(found[a], x) {
					continue
				}
				xa := x.Add(a)
				pxa, ok := parts[xa]
				if !ok {
					pxa = refineStripped(p, px, a)
					parts[xa] = pxa
				}
				if px.err == pxa.err {
					found[a] = append(found[a], x)
					out = append(out, fd.MustNew(x, a))
					if opt.MaxResults > 0 && len(out) >= opt.MaxResults {
						sortFDs(out)
						return out
					}
				}
			}
		}
		if size < opt.MaxLHS {
			next := make(map[relation.AttrSet]bool)
			for _, x := range level {
				for _, a := range attrs {
					if !x.Contains(a) {
						next[x.Add(a)] = true
					}
				}
			}
			level = level[:0]
			for x := range next {
				level = append(level, x)
			}
		} else {
			level = nil
		}
	}
	sortFDs(out)
	return out
}

// referenceApprox is the pre-product DiscoverApprox: Error() per
// candidate, rebuilding a partitioner each time.
func referenceApprox(in *relation.Instance, opt ApproxOptions) []ApproxFD {
	if opt.MaxLHS <= 0 {
		opt.MaxLHS = 3
	}
	if opt.Attrs.IsEmpty() {
		opt.Attrs = relation.FullSet(in.Schema.Width())
	}
	if in.N() == 0 {
		return nil
	}
	attrs := opt.Attrs.Attrs()
	n := float64(in.N())
	var out []ApproxFD
	found := make(map[int][]relation.AttrSet)
	level := make([]relation.AttrSet, 0, len(attrs))
	for _, a := range attrs {
		level = append(level, relation.NewAttrSet(a))
	}
	for size := 1; size <= opt.MaxLHS && len(level) > 0; size++ {
		sort.Slice(level, func(i, j int) bool { return level[i] < level[j] })
		for _, x := range level {
			for _, a := range attrs {
				if x.Contains(a) || hasSubsetLHS(found[a], x) {
					continue
				}
				f := fd.FD{LHS: x, RHS: a}
				errFrac := float64(Error(in, f)) / n
				if errFrac <= opt.MaxError {
					found[a] = append(found[a], x)
					out = append(out, ApproxFD{FD: f, Error: errFrac})
				}
			}
		}
		if size < opt.MaxLHS {
			next := make(map[relation.AttrSet]bool)
			for _, x := range level {
				for _, a := range attrs {
					if !x.Contains(a) {
						next[x.Add(a)] = true
					}
				}
			}
			level = level[:0]
			for x := range next {
				level = append(level, x)
			}
		} else {
			level = nil
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FD.RHS != out[j].FD.RHS {
			return out[i].FD.RHS < out[j].FD.RHS
		}
		if out[i].FD.LHS.Len() != out[j].FD.LHS.Len() {
			return out[i].FD.LHS.Len() < out[j].FD.LHS.Len()
		}
		return out[i].FD.LHS < out[j].FD.LHS
	})
	return out
}

// TestDiscoverBitIdenticalToReference: the product/store miner returns
// exactly the pre-PR FD sequence across random instances and knobs.
func TestDiscoverBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		width := 3 + rng.Intn(3)
		in := testkit.RandomInstance(rng, 4+rng.Intn(30), width, 2+rng.Intn(3))
		opt := Options{MaxLHS: 1 + rng.Intn(width)}
		if rng.Intn(3) == 0 {
			opt.MaxResults = 1 + rng.Intn(4)
		}
		want := referenceDiscover(in, opt)
		got, err := Discover(in, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d FDs, reference found %d\ngot  %v\nwant %v", trial, len(got), len(want), got, want)
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("trial %d: FD %d differs: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestDiscoverApproxBitIdenticalToReference: same pin for the approximate
// miner, including byte-equal error fractions (the g3-split bugfix must
// not change a single float).
func TestDiscoverApproxBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		width := 3 + rng.Intn(3)
		in := testkit.RandomInstance(rng, 4+rng.Intn(30), width, 2+rng.Intn(3))
		opt := ApproxOptions{MaxError: float64(rng.Intn(4)) * 0.1, MaxLHS: 1 + rng.Intn(width)}
		want := referenceApprox(in, opt)
		got, err := DiscoverApprox(in, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d FDs, reference found %d", trial, len(got), len(want))
		}
		for i := range got {
			if !got[i].FD.Equal(want[i].FD) || got[i].Error != want[i].Error {
				t.Fatalf("trial %d: entry %d differs: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestQuickG3SplitMatchesError: the cached-partition g3 equals the
// from-scratch Error() reference on random FDs.
func TestQuickG3SplitMatchesError(t *testing.T) {
	f := func(seed int64, lhsRaw uint8, rhsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 3 + rng.Intn(3)
		in := testkit.RandomInstance(rng, 2+rng.Intn(30), width, 2+rng.Intn(3))
		rhs := int(rhsRaw) % width
		lhs := relation.AttrSet(lhsRaw) & relation.FullSet(width).Remove(rhs)
		if lhs.IsEmpty() {
			lhs = relation.NewAttrSet((rhs + 1) % width)
		}
		dep := fd.MustNew(lhs, rhs)
		p := relation.NewPartitioner(in)
		px := strippedOf(p, lhs)
		g3, ok := g3Split(p, px, rhs, in.N())
		return ok && g3 == Error(in, dep)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestStreamPeakRetentionBounded pins the satellite-1 fix: on a wide
// schema the store never holds more than the single-attribute row plus
// two adjacent lattice levels — far below whole-run retention.
func TestStreamPeakRetentionBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const width, maxLHS = 9, 4
	names := make([]string, width)
	rows := make([][]string, 60)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	for r := range rows {
		row := make([]string, width)
		for c := range row {
			row[c] = fmt.Sprintf("v%d", rng.Intn(3))
		}
		rows[r] = row
	}
	in := testkit.Build(names, rows)
	store := relation.NewPartitionStore()
	err := Stream(context.Background(), in, StreamOptions{MaxLHS: maxLHS, Store: store}, func(Found) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	binom := func(n, k int) int {
		out := 1
		for i := 0; i < k; i++ {
			out = out * (n - i) / (i + 1)
		}
		return out
	}
	// During the level-k scan the store holds level 1, level k−1 (evicted
	// only after the scan), and level k as it is built.
	bound := 0
	for k := 2; k <= maxLHS; k++ {
		if b := width + binom(width, k-1) + binom(width, k); b > bound {
			bound = b
		}
	}
	total := 0
	for k := 1; k <= maxLHS; k++ {
		total += binom(width, k)
	}
	if store.Peak() > bound {
		t.Fatalf("peak retention %d exceeds two-level bound %d", store.Peak(), bound)
	}
	if store.Peak() >= total {
		t.Fatalf("peak retention %d not below whole-lattice retention %d — eviction is not working", store.Peak(), total)
	}
}

// TestStreamSharedStoreIsWarmAndIdentical: a second run over the same
// store reuses cached partitions and returns the same FDs.
func TestStreamSharedStoreIsWarmAndIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	in := testkit.RandomInstance(rng, 40, 5, 3)
	store := relation.NewPartitionStore()
	mine := func() []Found {
		var out []Found
		if err := Stream(context.Background(), in, StreamOptions{MaxLHS: 3, Store: store}, func(f Found) error {
			out = append(out, f)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := mine()
	if store.Len() == 0 {
		t.Fatal("store empty after a run; nothing cached for reuse")
	}
	second := mine()
	if len(first) != len(second) {
		t.Fatalf("warm run found %d FDs, cold run %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("entry %d differs across runs: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestDiscoverAttrsOutOfRange(t *testing.T) {
	in := testkit.Build([]string{"A", "B"}, [][]string{{"1", "x"}, {"2", "y"}})
	bad := relation.NewAttrSet(0, 5) // schema width 2
	var rangeErr *AttrsRangeError

	if _, err := Discover(in, Options{Attrs: bad}); !errors.As(err, &rangeErr) {
		t.Fatalf("Discover: err = %v, want *AttrsRangeError", err)
	}
	if rangeErr.Attr != 5 || rangeErr.Width != 2 {
		t.Fatalf("AttrsRangeError = %+v, want Attr=5 Width=2", rangeErr)
	}
	if _, err := DiscoverApprox(in, ApproxOptions{MaxError: 0.1, Attrs: bad}); !errors.As(err, &rangeErr) {
		t.Fatalf("DiscoverApprox: err = %v, want *AttrsRangeError", err)
	}
	if err := Stream(context.Background(), in, StreamOptions{Attrs: bad}, func(Found) error { return nil }); !errors.As(err, &rangeErr) {
		t.Fatalf("Stream: err = %v, want *AttrsRangeError", err)
	}
}

// TestDiscoverApproxMaxResults pins the satellite fix: MaxResults applies
// in approximate mode with the same early-return-sorted contract.
func TestDiscoverApproxMaxResults(t *testing.T) {
	in := testkit.Build([]string{"A", "B", "C"}, [][]string{
		{"1", "1", "1"}, {"2", "2", "2"},
	})
	full, err := DiscoverApprox(in, ApproxOptions{MaxError: 0.5, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 3 {
		t.Fatalf("fixture too small: only %d approximate FDs", len(full))
	}
	capped, err := DiscoverApprox(in, ApproxOptions{MaxError: 0.5, MaxLHS: 1, MaxResults: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 2 {
		t.Fatalf("MaxResults ignored in approx mode: got %d FDs", len(capped))
	}
	// Same contract as Discover: the first MaxResults in mining order,
	// then sorted — so each capped entry appears in the full result.
	for _, f := range capped {
		found := false
		for _, g := range full {
			if g.FD.Equal(f.FD) && g.Error == f.Error {
				found = true
			}
		}
		if !found {
			t.Fatalf("capped entry %+v not in the full result", f)
		}
	}
}

func TestStreamCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := testkit.RandomInstance(rng, 30, 5, 2)
	sentinel := errors.New("stop now")

	// Pre-cancelled: the run aborts before any candidate is scanned and
	// surfaces the cause, not bare context.Canceled.
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(sentinel)
	err := Stream(ctx, in, StreamOptions{MaxLHS: 4}, func(Found) error {
		t.Fatal("emitted after cancellation")
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the cancellation cause", err)
	}

	// Mid-run: cancelling once level 2 starts stops the scan there; no
	// emission may carry a level ≥ 2.
	ctx2, cancel2 := context.WithCancelCause(context.Background())
	err = Stream(ctx2, in, StreamOptions{
		MaxLHS: 4,
		Progress: func(level, _ int) {
			if level == 2 {
				cancel2(sentinel)
			}
		},
	}, func(f Found) error {
		if f.Level >= 2 {
			t.Fatalf("FD emitted from level %d after cancellation", f.Level)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("mid-run err = %v, want the cancellation cause", err)
	}
}

func TestStreamProgressReportsLevels(t *testing.T) {
	in := testkit.Build([]string{"A", "B", "C"}, [][]string{
		{"1", "x", "p"}, {"1", "x", "q"}, {"2", "y", "p"},
	})
	var levels, sizes []int
	err := Stream(context.Background(), in, StreamOptions{
		MaxLHS: 2,
		Progress: func(level, sets int) {
			levels = append(levels, level)
			sizes = append(sizes, sets)
		},
	}, func(Found) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 2 || levels[0] != 1 || levels[1] != 2 {
		t.Fatalf("levels = %v, want [1 2]", levels)
	}
	if sizes[0] != 3 || sizes[1] != 3 { // C(3,1) and C(3,2)
		t.Fatalf("candidate counts = %v, want [3 3]", sizes)
	}
}

func benchDiscoverInstance(b *testing.B) *relation.Instance {
	b.Helper()
	rng := rand.New(rand.NewSource(29))
	const width = 8
	names := make([]string, width)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	rows := make([][]string, 1000)
	for r := range rows {
		row := make([]string, width)
		for c := range row {
			row[c] = fmt.Sprintf("v%d", rng.Intn(5))
		}
		rows[r] = row
	}
	return testkit.Build(names, rows)
}

// BenchmarkDiscoverProduct vs BenchmarkDiscoverRefine: a full mining pass
// on a wide schema with the product/store miner against the pre-PR
// refine-everything reference — the level-k cost BENCH_discovery.json
// records.
func BenchmarkDiscoverProduct(b *testing.B) {
	in := benchDiscoverInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Discover(in, Options{MaxLHS: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscoverRefine(b *testing.B) {
	in := benchDiscoverInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = referenceDiscover(in, Options{MaxLHS: 3})
	}
}
