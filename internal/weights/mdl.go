package weights

import (
	"math"

	"relatrust/internal/relation"
)

// MDL prices an LHS extension by the growth in description length of
// modeling the instance with the extended FD — the weighting family the
// paper points to via its references [5] (Chiang & Miller's unified model)
// and [11] (partial determinations). Modeling X → A costs, to first
// order, one A-value per distinct X-value: DL(X → A) ≈ |Π_X(I)| · log₂|A|
// bits, because the model must store the function table from X-groups to
// A-values. Appending Y multiplies the table's rows up to |Π_{XY}(I)|, so
//
//	w(Y) relative to a base X  =  (|Π_{XY}| − |Π_X|) · log₂(distinct A).
//
// Since the Func interface prices Y in isolation (the search sums
// per-position weights and caches per set), this implementation uses the
// base-free form DL(Y) = |Π_Y(I)| · log₂(avg column cardinality), which is
// non-negative, monotone (projections refine), and zero for the empty set
// — ordering candidate extensions the same way the relative form does for
// a fixed FD.
type MDL struct {
	in      *relation.Instance
	part    *relation.Partitioner
	valBits float64
	cache   map[relation.AttrSet]float64
}

// NewMDL builds the description-length weighting bound to an instance.
func NewMDL(in *relation.Instance) *MDL {
	m := &MDL{
		in:    in,
		part:  relation.NewPartitioner(in),
		cache: make(map[relation.AttrSet]float64),
	}
	// Average per-column cardinality sets the per-table-row cost; the
	// distinct count per column is the size of its code dictionary.
	total := 0.0
	width := in.Schema.Width()
	for a := 0; a < width; a++ {
		_, n := in.Codes(a)
		total += float64(n)
	}
	avg := total / math.Max(float64(width), 1)
	m.valBits = math.Log2(math.Max(avg, 2))
	return m
}

// Weight returns |Π_Y(I)| · log₂(avg cardinality), 0 for the empty set.
func (m *MDL) Weight(y relation.AttrSet) float64 {
	if y.IsEmpty() {
		return 0
	}
	if w, ok := m.cache[y]; ok {
		return w
	}
	m.part.BeginAll()
	m.part.RefineSet(y)
	w := float64(m.part.Partition().NumGroups()) * m.valBits
	m.cache[y] = w
	return w
}

// Name implements Func.
func (m *MDL) Name() string { return "mdl" }
