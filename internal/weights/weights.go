// Package weights implements the weighting functions w(Y) that price an
// LHS extension Y of an FD (Section 3.1 of the paper). All implementations
// are non-negative and monotone (X ⊆ Y ⟹ w(X) ≤ w(Y)), which the search
// relies on for pruning, and they evaluate against the *initial* instance
// only — the paper's simplifying assumption that repairing a small number
// of cells does not materially change attribute statistics.
package weights

import (
	"fmt"
	"math"

	"relatrust/internal/relation"
)

// Func prices an attribute-set extension. Implementations must be
// non-negative, monotone, and return 0 for the empty set.
type Func interface {
	// Weight returns w(Y).
	Weight(y relation.AttrSet) float64
	// Name identifies the function in reports.
	Name() string
}

// AttrCount is the simplest weighting: w(Y) = |Y|.
type AttrCount struct{}

// Weight returns the number of attributes in y.
func (AttrCount) Weight(y relation.AttrSet) float64 { return float64(y.Len()) }

// Name implements Func.
func (AttrCount) Name() string { return "attr-count" }

// DistinctCount prices Y by the number of distinct values of the projection
// Π_Y(I) — the paper's experimental choice: the more informative an
// attribute set, the more expensive it is to append (a near-key makes the
// FD almost trivially satisfied, which should be discouraged). Results are
// memoized per attribute set; the zero value is not usable, construct with
// NewDistinctCount.
type DistinctCount struct {
	in    *relation.Instance
	part  *relation.Partitioner
	cache map[relation.AttrSet]float64
}

// NewDistinctCount builds a distinct-value weighting bound to an instance.
func NewDistinctCount(in *relation.Instance) *DistinctCount {
	return &DistinctCount{
		in:    in,
		part:  relation.NewPartitioner(in),
		cache: make(map[relation.AttrSet]float64),
	}
}

// Weight returns |Π_Y(I)|, and 0 for the empty set. Distinct projections
// are counted as groups of a code-based partition refinement, not by
// materializing projection keys.
func (d *DistinctCount) Weight(y relation.AttrSet) float64 {
	if y.IsEmpty() {
		return 0
	}
	if w, ok := d.cache[y]; ok {
		return w
	}
	d.part.BeginAll()
	d.part.RefineSet(y)
	w := float64(d.part.Partition().NumGroups())
	d.cache[y] = w
	return w
}

// Name implements Func.
func (d *DistinctCount) Name() string { return "distinct-count" }

// Entropy prices Y by the Shannon entropy (in bits) of the empirical
// distribution of Π_Y(I): another "informativeness" metric the paper
// suggests. Entropy is monotone under projection refinement, so the Func
// contract holds. Construct with NewEntropy.
type Entropy struct {
	in    *relation.Instance
	part  *relation.Partitioner
	cache map[relation.AttrSet]float64
}

// NewEntropy builds an entropy weighting bound to an instance.
func NewEntropy(in *relation.Instance) *Entropy {
	return &Entropy{
		in:    in,
		part:  relation.NewPartitioner(in),
		cache: make(map[relation.AttrSet]float64),
	}
}

// Weight returns H(Π_Y(I)) in bits, and 0 for the empty set. Group sizes
// come from a code-based partition refinement.
func (e *Entropy) Weight(y relation.AttrSet) float64 {
	if y.IsEmpty() {
		return 0
	}
	if w, ok := e.cache[y]; ok {
		return w
	}
	n := e.in.N()
	if n == 0 {
		return 0
	}
	e.part.BeginAll()
	e.part.RefineSet(y)
	pt := e.part.Partition()
	h := 0.0
	for gi := 0; gi < pt.NumGroups(); gi++ {
		p := float64(len(pt.Group(gi))) / float64(n)
		h -= p * math.Log2(p)
	}
	if h < 0 { // guard against -0 from rounding
		h = 0
	}
	e.cache[y] = h
	return h
}

// Name implements Func.
func (e *Entropy) Name() string { return "entropy" }

// VectorCost sums a weighting over an extension vector:
// dist_c(Σ, Σ′) = Σ_Y∈Δc(Σ,Σ′) w(Y).
func VectorCost(w Func, ext []relation.AttrSet) float64 {
	total := 0.0
	for _, y := range ext {
		total += w.Weight(y)
	}
	return total
}

// ByName constructs a weighting by its report name; instance-backed
// weightings are bound to in.
func ByName(name string, in *relation.Instance) (Func, error) {
	switch name {
	case "attr-count", "count", "":
		return AttrCount{}, nil
	case "distinct-count", "distinct":
		return NewDistinctCount(in), nil
	case "entropy":
		return NewEntropy(in), nil
	case "mdl":
		return NewMDL(in), nil
	}
	return nil, fmt.Errorf("weights: unknown weighting %q (want attr-count, distinct-count, entropy, or mdl)", name)
}
