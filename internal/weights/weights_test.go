package weights

import (
	"math"
	"math/rand"
	"testing"

	"relatrust/internal/relation"
	"relatrust/internal/testkit"
)

func sample() *relation.Instance {
	return testkit.Build([]string{"A", "B", "C"}, [][]string{
		{"1", "x", "k0"},
		{"1", "y", "k1"},
		{"2", "x", "k2"},
		{"2", "y", "k3"},
	})
}

func TestAttrCount(t *testing.T) {
	w := AttrCount{}
	if w.Weight(relation.NewAttrSet(0, 2)) != 2 {
		t.Error("weight of a 2-set must be 2")
	}
	if w.Weight(0) != 0 {
		t.Error("weight of empty set must be 0")
	}
	if w.Name() != "attr-count" {
		t.Error("name")
	}
}

func TestDistinctCount(t *testing.T) {
	in := sample()
	w := NewDistinctCount(in)
	if got := w.Weight(relation.NewAttrSet(0)); got != 2 {
		t.Errorf("|Π_A| = %v, want 2", got)
	}
	if got := w.Weight(relation.NewAttrSet(2)); got != 4 {
		t.Errorf("|Π_C| = %v, want 4 (near-key costs more)", got)
	}
	if got := w.Weight(relation.NewAttrSet(0, 1)); got != 4 {
		t.Errorf("|Π_AB| = %v, want 4", got)
	}
	if w.Weight(0) != 0 {
		t.Error("empty set must be free")
	}
	// memoized second call
	if w.Weight(relation.NewAttrSet(0)) != 2 {
		t.Error("cache broke the result")
	}
}

func TestEntropy(t *testing.T) {
	in := sample()
	w := NewEntropy(in)
	if got := w.Weight(relation.NewAttrSet(0)); math.Abs(got-1) > 1e-12 {
		t.Errorf("H(A) = %v, want 1 bit", got)
	}
	if got := w.Weight(relation.NewAttrSet(2)); math.Abs(got-2) > 1e-12 {
		t.Errorf("H(C) = %v, want 2 bits", got)
	}
	if w.Weight(0) != 0 {
		t.Error("empty set must be free")
	}
}

// TestMonotonicity is the Func contract: X ⊆ Y ⟹ w(X) ≤ w(Y), checked on
// random instances for every implementation.
func TestMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := testkit.RandomInstance(rng, 30, 5, 3)
	funcs := []Func{AttrCount{}, NewDistinctCount(in), NewEntropy(in)}
	for trial := 0; trial < 200; trial++ {
		x := relation.AttrSet(rng.Intn(32))
		y := x.Union(relation.AttrSet(rng.Intn(32)))
		for _, w := range funcs {
			wx, wy := w.Weight(x), w.Weight(y)
			if wx > wy+1e-9 {
				t.Fatalf("%s not monotone: w(%v)=%v > w(%v)=%v", w.Name(), x, wx, y, wy)
			}
			if wx < 0 {
				t.Fatalf("%s negative: w(%v)=%v", w.Name(), x, wx)
			}
		}
	}
}

func TestVectorCost(t *testing.T) {
	ext := []relation.AttrSet{relation.NewAttrSet(0), relation.NewAttrSet(1, 2)}
	if got := VectorCost(AttrCount{}, ext); got != 3 {
		t.Errorf("VectorCost = %v, want 3", got)
	}
}

func TestByName(t *testing.T) {
	in := sample()
	for _, name := range []string{"attr-count", "count", "", "distinct-count", "distinct", "entropy"} {
		if _, err := ByName(name, in); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope", in); err == nil {
		t.Error("unknown name must fail")
	}
}

func TestMDL(t *testing.T) {
	in := sample()
	w := NewMDL(in)
	if w.Weight(0) != 0 {
		t.Error("empty set must be free")
	}
	// |Π_A| = 2 < |Π_C| = 4 ⇒ near-keys cost more, same ordering as
	// distinct-count.
	if w.Weight(relation.NewAttrSet(0)) >= w.Weight(relation.NewAttrSet(2)) {
		t.Error("MDL should price the near-key attribute higher")
	}
	if w.Name() != "mdl" {
		t.Error("name")
	}
	if _, err := ByName("mdl", in); err != nil {
		t.Errorf("ByName(mdl): %v", err)
	}
}

func TestMDLMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := testkit.RandomInstance(rng, 25, 5, 3)
	w := NewMDL(in)
	for trial := 0; trial < 150; trial++ {
		x := relation.AttrSet(rng.Intn(32))
		y := x.Union(relation.AttrSet(rng.Intn(32)))
		if w.Weight(x) > w.Weight(y)+1e-9 {
			t.Fatalf("MDL not monotone: w(%v) > w(%v)", x, y)
		}
	}
}
