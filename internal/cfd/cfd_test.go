package cfd

import (
	"context"
	"strings"
	"testing"

	"relatrust/internal/relation"
	"relatrust/internal/testkit"
)

func zipInstance() *relation.Instance {
	return testkit.Build([]string{"CC", "ZIP", "City"}, [][]string{
		{"US", "62701", "Springfield"},
		{"US", "62701", "Springfeld"}, // violates ZIP->City when CC=US
		{"UK", "SW1", "London"},
		{"UK", "SW1", "Westminster"}, // no violation: pattern is CC=US
		{"US", "10001", "NYC"},
	})
}

func TestParseAndFormat(t *testing.T) {
	s := relation.MustSchema("CC", "ZIP", "City")
	c, err := Parse(s, "CC,ZIP->City | US,_")
	if err != nil {
		t.Fatal(err)
	}
	if c.LHSPattern[0] != "US" {
		t.Errorf("pattern = %v", c.LHSPattern)
	}
	if _, wild := c.LHSPattern[1]; wild {
		t.Error("ZIP should be a wildcard")
	}
	if got := c.Format(s); got != "CC,ZIP->City | US,_" {
		t.Errorf("Format = %q", got)
	}
	// RHS pattern.
	c2, err := Parse(s, "CC->ZIP | UK || SW1")
	if err != nil {
		t.Fatal(err)
	}
	if c2.RHSPattern != "SW1" {
		t.Errorf("RHS pattern = %q", c2.RHSPattern)
	}
	if !strings.Contains(c2.Format(s), "|| SW1") {
		t.Errorf("Format = %q", c2.Format(s))
	}
	// Pure FD (no pattern section).
	c3, err := Parse(s, "CC->ZIP")
	if err != nil {
		t.Fatal(err)
	}
	if len(c3.LHSPattern) != 0 || c3.RHSPattern != "" {
		t.Error("pure FD should have no patterns")
	}
}

func TestParseErrors(t *testing.T) {
	s := relation.MustSchema("A", "B", "C")
	for _, spec := range []string{
		"A->B | x,y",  // too many pattern cells
		"nope",        // no arrow
		"A->Z | x",    // unknown attribute
		"A,B->C | un", // one cell for two attrs
	} {
		if _, err := Parse(s, spec); err == nil {
			t.Errorf("Parse(%q) succeeded", spec)
		}
	}
}

func TestMatchesAndViolations(t *testing.T) {
	in := zipInstance()
	set, err := ParseSet(in.Schema, "CC,ZIP->City | US,_")
	if err != nil {
		t.Fatal(err)
	}
	vs := set.Violations(in, 0)
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly the US pair", vs)
	}
	if vs[0].T1 != 0 || vs[0].T2 != 1 {
		t.Errorf("violation = %+v", vs[0])
	}
	if set.SatisfiedBy(in) {
		t.Error("SatisfiedBy should be false")
	}
	// The same dependency without the pattern also fires on the UK pair.
	plain, _ := ParseSet(in.Schema, "CC,ZIP->City")
	if got := len(plain.Violations(in, 0)); got != 2 {
		t.Errorf("pattern-free violations = %d, want 2", got)
	}
}

func TestSingleViolations(t *testing.T) {
	in := zipInstance()
	set, err := ParseSet(in.Schema, "CC->ZIP | UK || SW1A")
	if err != nil {
		t.Fatal(err)
	}
	vs := set.Violations(in, 0)
	// Both UK tuples carry ZIP=SW1 ≠ SW1A.
	singles := 0
	for _, v := range vs {
		if v.T2 < 0 {
			singles++
		}
	}
	if singles != 2 {
		t.Errorf("single violations = %d, want 2", singles)
	}
}

func TestExtendIsRelaxation(t *testing.T) {
	in := zipInstance()
	c, _ := Parse(in.Schema, "ZIP->City | _")
	ext, err := c.Extend(relation.NewAttrSet(0))
	if err != nil {
		t.Fatal(err)
	}
	// Violations of the extension are a subset of the original's.
	before := Set{c}.Violations(in, 0)
	after := Set{ext}.Violations(in, 0)
	if len(after) > len(before) {
		t.Errorf("extension added violations: %d → %d", len(before), len(after))
	}
	if _, err := c.Extend(relation.NewAttrSet(2)); err == nil {
		t.Error("appending the RHS must fail")
	}
}

func TestRepairPairViolationsByData(t *testing.T) {
	in := zipInstance()
	set, _ := ParseSet(in.Schema, "CC,ZIP->City | US,_")
	r, err := RepairWithBudget(context.Background(), in, set, 10, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("no repair")
	}
	if !r.Set.SatisfiedBy(r.Instance) {
		t.Fatal("repair violates the CFD set")
	}
	if r.FDCost != 0 {
		t.Errorf("large τ should keep the CFDs, cost=%v", r.FDCost)
	}
	if r.NumChanges() == 0 || r.NumChanges() > 2 {
		t.Errorf("expected 1-2 cell changes, got %d", r.NumChanges())
	}
	// The UK tuples must be untouched (outside the pattern).
	for _, c := range r.Changed {
		if in.Tuples[c.Tuple][0].Str() == "UK" {
			t.Errorf("changed a UK tuple %v that the pattern excludes", c)
		}
	}
}

func TestRepairRelaxesAtTauZero(t *testing.T) {
	in := zipInstance()
	set, _ := ParseSet(in.Schema, "ZIP->City | _")
	// ZIP->City is violated by both pairs; at τ=0 the repair must append
	// an attribute (CC cannot help the US pair — same CC — so City/CC…:
	// the only appendable attribute is CC, which fixes the UK pair only;
	// the US pair differs solely on City → permanent → τ=0 infeasible).
	r, err := RepairWithBudget(context.Background(), in, set, 0, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r != nil {
		t.Fatalf("τ=0 must be infeasible here, got %v", r)
	}
	// With τ=2 (α=1, the US pair repaired by data), relaxation+data works.
	r, err = RepairWithBudget(context.Background(), in, set, 2, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("τ=2 should be feasible")
	}
	if !r.Set.SatisfiedBy(r.Instance) {
		t.Fatal("inconsistent repair")
	}
	if r.NumChanges() > 2 {
		t.Errorf("changes %d exceed τ", r.NumChanges())
	}
}

func TestRepairSingleViolations(t *testing.T) {
	in := zipInstance()
	set, _ := ParseSet(in.Schema, "CC->ZIP | UK || SW1A")
	// Two single violations, α = 1: need τ ≥ 2.
	r, err := RepairWithBudget(context.Background(), in, set, 1, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r != nil {
		t.Fatal("τ=1 cannot cover two unavoidable single violations")
	}
	r, err = RepairWithBudget(context.Background(), in, set, 2, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("τ=2 should repair both singles")
	}
	if !r.Set.SatisfiedBy(r.Instance) {
		t.Fatal("repair violates set")
	}
	if r.NumChanges() != 2 {
		t.Errorf("changes = %d, want 2", r.NumChanges())
	}
}

func TestRepairMixedSet(t *testing.T) {
	in := testkit.Build([]string{"CC", "ZIP", "City", "Region"}, [][]string{
		{"US", "1", "a", "r1"},
		{"US", "1", "b", "r1"},
		{"US", "2", "c", "r2"},
		{"UK", "9", "x", "r9"},
		{"UK", "9", "y", "r9"},
	})
	set, err := ParseSet(in.Schema, "CC,ZIP->City | US,_; CC->Region | UK || r9")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RepairWithBudget(context.Background(), in, set, 5, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("no repair")
	}
	if !r.Set.SatisfiedBy(r.Instance) {
		t.Fatal("violates after repair")
	}
}

func TestParseSetErrors(t *testing.T) {
	s := relation.MustSchema("A", "B")
	if _, err := ParseSet(s, "# nothing"); err == nil {
		t.Error("empty set must fail")
	}
	if _, err := ParseSet(s, "A->B | bogus,extra"); err == nil {
		t.Error("bad member must fail")
	}
}

func TestNewValidatesPattern(t *testing.T) {
	s := relation.MustSchema("A", "B", "C")
	f, _ := Parse(s, "A->B")
	if _, err := New(f.Embedded, map[int]string{2: "x"}, ""); err == nil {
		t.Error("pattern on a non-LHS attribute must fail")
	}
}
