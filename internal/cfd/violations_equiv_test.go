package cfd

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// The seed implementation of Set.Violations grouped pattern-matching
// tuples by concatenated string projection keys (and enumerated groups in
// map-iteration order, so its output order was nondeterministic). The
// oracle below reproduces it verbatim; the code-based port must enumerate
// the same violation set and honor the max cap as a prefix of its own
// deterministic order.

func oracleViolations(set Set, in *relation.Instance, max int) []Violation {
	var out []Violation
	add := func(v Violation) bool {
		out = append(out, v)
		return max > 0 && len(out) >= max
	}
	for ci, c := range set {
		if c.RHSPattern != "" {
			for t := 0; t < in.N(); t++ {
				if c.SingleViolation(in.Tuples[t]) {
					if add(Violation{T1: t, T2: -1, CFD: ci}) {
						return out
					}
				}
			}
		}
		groups := make(map[string][]int, in.N())
		for t := 0; t < in.N(); t++ {
			if !c.Matches(in.Tuples[t]) {
				continue
			}
			key := in.Project(t, c.Embedded.LHS)
			groups[key] = append(groups[key], t)
		}
		for _, g := range groups {
			for i := 0; i < len(g); i++ {
				for j := i + 1; j < len(g); j++ {
					if !in.Tuples[g[i]][c.Embedded.RHS].Equal(in.Tuples[g[j]][c.Embedded.RHS]) {
						if add(Violation{T1: g[i], T2: g[j], CFD: ci}) {
							return out
						}
					}
				}
			}
		}
	}
	return out
}

// randomVInstance builds an instance over small domains with occasional
// variable cells, exercising V-instance semantics in pattern matching
// (variables never match a constant pattern).
func randomVInstance(rng *rand.Rand, n, width, domain int) *relation.Instance {
	names := make([]string, width)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	in := relation.NewInstance(relation.MustSchema(names...))
	vg := &relation.VarGen{}
	for i := 0; i < n; i++ {
		t := make(relation.Tuple, width)
		for a := range t {
			if rng.Intn(12) == 0 {
				t[a] = vg.Fresh()
			} else {
				t[a] = relation.Const(string(rune('a' + rng.Intn(domain))))
			}
		}
		if err := in.Append(t); err != nil {
			panic(err)
		}
	}
	return in
}

// randomCFDSet draws CFDs with random LHS patterns (over the instance's
// domain, so patterns actually match tuples) and occasional constant RHS
// patterns.
func randomCFDSet(rng *rand.Rand, width, size, domain int) Set {
	var out Set
	for len(out) < size {
		lhsSize := 1 + rng.Intn(2)
		var lhs relation.AttrSet
		for lhs.Len() < lhsSize {
			lhs = lhs.Add(rng.Intn(width))
		}
		rhs := rng.Intn(width)
		if lhs.Contains(rhs) {
			continue
		}
		f, err := fd.New(lhs, rhs)
		if err != nil {
			continue
		}
		pattern := map[int]string{}
		for _, a := range lhs.Attrs() {
			if rng.Intn(3) == 0 {
				pattern[a] = string(rune('a' + rng.Intn(domain)))
			}
		}
		rhsPat := ""
		if rng.Intn(4) == 0 {
			rhsPat = string(rune('a' + rng.Intn(domain)))
		}
		c, err := New(f, pattern, rhsPat)
		if err != nil {
			continue
		}
		out = append(out, c)
	}
	return out
}

// TestViolationsMatchOracle: the code-based enumeration must produce
// exactly the oracle's violation set (compared sorted — the oracle's group
// order was map-random), the max cap must truncate a prefix of the ported
// deterministic order, and SatisfiedBy must agree with the oracle's
// verdict.
func TestViolationsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1912))
	sortViol := func(v []Violation) {
		sort.Slice(v, func(i, j int) bool {
			if v[i].CFD != v[j].CFD {
				return v[i].CFD < v[j].CFD
			}
			if v[i].T1 != v[j].T1 {
				return v[i].T1 < v[j].T1
			}
			return v[i].T2 < v[j].T2
		})
	}
	nonEmpty := 0
	for trial := 0; trial < 250; trial++ {
		width := 3 + rng.Intn(3)
		domain := 2 + rng.Intn(2)
		in := randomVInstance(rng, 4+rng.Intn(20), width, domain)
		set := randomCFDSet(rng, width, 1+rng.Intn(3), domain)

		want := oracleViolations(set, in, 0)
		got := set.Violations(in, 0)
		if len(want) != len(got) {
			t.Fatalf("trial %d: oracle %d violations, got %d\nset=%s\n%s",
				trial, len(want), len(got), set.Format(in.Schema), in)
		}
		if len(got) > 0 {
			nonEmpty++
		}
		full := append([]Violation(nil), got...)
		sortViol(want)
		sortViol(got)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: violation sets differ at %d: oracle %+v, got %+v\nset=%s",
					trial, i, want[i], got[i], set.Format(in.Schema))
			}
		}
		if (len(want) == 0) != set.SatisfiedBy(in) {
			t.Fatalf("trial %d: SatisfiedBy disagrees with the enumeration", trial)
		}
		if len(full) > 1 {
			capN := 1 + rng.Intn(len(full))
			capped := set.Violations(in, capN)
			if len(capped) != capN {
				t.Fatalf("trial %d: cap %d returned %d violations", trial, capN, len(capped))
			}
			for i := range capped {
				if capped[i] != full[i] {
					t.Fatalf("trial %d: capped result is not a prefix of the full enumeration", trial)
				}
			}
		}
	}
	if nonEmpty < 60 {
		t.Fatalf("only %d trials had violations; workload too clean to be meaningful", nonEmpty)
	}
}

// TestViolationsDeterministic pins the ported enumeration order: repeated
// calls must return the identical sequence (the oracle's map iteration
// made no such promise).
func TestViolationsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		width := 3 + rng.Intn(3)
		in := randomVInstance(rng, 10+rng.Intn(15), width, 2)
		set := randomCFDSet(rng, width, 1+rng.Intn(2), 2)
		first := set.Violations(in, 0)
		for rep := 0; rep < 3; rep++ {
			again := set.Violations(in, 0)
			if fmt.Sprint(first) != fmt.Sprint(again) {
				t.Fatalf("trial %d: enumeration order changed between calls", trial)
			}
		}
	}
}
