// Package cfd extends the relative-trust framework to Conditional
// Functional Dependencies — the first item on the paper's future-work list
// (Section 10: "our relative trust framework is relevant and applicable to
// many other types of constraints, such as conditional FDs").
//
// A CFD φ = (X → A, tp) embeds a standard FD and adds a pattern tuple tp
// over X ∪ {A}: each pattern cell is either a constant that matching
// tuples must carry, or the wildcard "_". The CFD constrains only the
// tuples matching the X-part of the pattern; a constant A-pattern
// additionally pins the RHS value itself (single-tuple violations), while
// a wildcard A behaves like the FD's RHS restricted to the matching
// subset.
//
// The relative-trust machinery carries over: relaxation appends
// wildcard-patterned attributes to the LHS (every instance satisfying the
// original CFD satisfies the extension), τ caps cell changes, and a
// best-first search over the same single-parent state tree finds the
// minimal relaxation whose certified repair budget fits τ. The conflict
// structure restricted to pattern-matching tuples is exactly the FD case,
// so the guarantees (2-approximate covers, change bound per rewritten
// tuple) transfer.
package cfd

import (
	"fmt"
	"strings"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// Wildcard is the pattern cell that matches any value.
const Wildcard = "_"

// CFD is a conditional functional dependency (X → A, tp).
type CFD struct {
	// Embedded is the underlying FD X → A.
	Embedded fd.FD
	// LHSPattern maps LHS attributes to required constants; attributes
	// absent from the map are wildcards.
	LHSPattern map[int]string
	// RHSPattern is the required RHS constant, or "" for a wildcard.
	RHSPattern string
}

// New builds a CFD, validating that pattern attributes belong to the LHS.
func New(embedded fd.FD, lhsPattern map[int]string, rhsPattern string) (CFD, error) {
	for a := range lhsPattern {
		if !embedded.LHS.Contains(a) {
			return CFD{}, fmt.Errorf("cfd: pattern attribute %d is not in the LHS %s", a, embedded.LHS)
		}
	}
	cp := make(map[int]string, len(lhsPattern))
	for a, v := range lhsPattern {
		cp[a] = v
	}
	return CFD{Embedded: embedded, LHSPattern: cp, RHSPattern: rhsPattern}, nil
}

// Parse reads a CFD in the form "A,B->C | a1,_ || c" against a schema:
// the FD part, a comma-separated LHS pattern aligned with the LHS
// attributes in schema order ("_" = wildcard), and an optional "|| const"
// RHS pattern. The pattern section may be omitted entirely (pure FD).
func Parse(s *relation.Schema, spec string) (CFD, error) {
	fdPart, patPart, hasPattern := strings.Cut(spec, "|")
	f, err := fd.Parse(s, strings.TrimSpace(fdPart))
	if err != nil {
		return CFD{}, err
	}
	cfd := CFD{Embedded: f, LHSPattern: map[int]string{}}
	if !hasPattern {
		return cfd, nil
	}
	lhsPart, rhsPart, hasRHS := strings.Cut(patPart, "||")
	attrs := f.LHS.Attrs()
	fields := strings.Split(strings.TrimSpace(lhsPart), ",")
	if len(fields) == 1 && strings.TrimSpace(fields[0]) == "" {
		fields = nil
	}
	if len(fields) != 0 && len(fields) != len(attrs) {
		return CFD{}, fmt.Errorf("cfd: pattern %q has %d cells for %d LHS attributes", lhsPart, len(fields), len(attrs))
	}
	for i, cell := range fields {
		cell = strings.TrimSpace(cell)
		if cell != Wildcard && cell != "" {
			cfd.LHSPattern[attrs[i]] = cell
		}
	}
	if hasRHS {
		v := strings.TrimSpace(rhsPart)
		if v != Wildcard {
			cfd.RHSPattern = v
		}
	}
	return cfd, nil
}

// Matches reports whether tuple t matches the CFD's LHS pattern.
func (c CFD) Matches(t relation.Tuple) bool {
	for a, want := range c.LHSPattern {
		cell := t[a]
		if cell.IsVar() || cell.Str() != want {
			return false
		}
	}
	return true
}

// SingleViolation reports whether t alone violates the CFD: it matches the
// LHS pattern but its RHS differs from a constant RHS pattern.
func (c CFD) SingleViolation(t relation.Tuple) bool {
	if c.RHSPattern == "" || !c.Matches(t) {
		return false
	}
	cell := t[c.Embedded.RHS]
	return cell.IsVar() || cell.Str() != c.RHSPattern
}

// PairViolation reports whether the matching pair (t, u) violates the
// variable part: both match the LHS pattern, agree on X, differ on A.
func (c CFD) PairViolation(t, u relation.Tuple) bool {
	if !c.Matches(t) || !c.Matches(u) {
		return false
	}
	return c.Embedded.Violates(t, u)
}

// Extend appends wildcard attributes to the LHS — the relaxation operator.
// Appended attributes receive no pattern constant, so every instance
// satisfying c satisfies the extension.
func (c CFD) Extend(y relation.AttrSet) (CFD, error) {
	g, err := c.Embedded.Extend(y)
	if err != nil {
		return CFD{}, err
	}
	return CFD{Embedded: g, LHSPattern: c.LHSPattern, RHSPattern: c.RHSPattern}, nil
}

// Format renders the CFD with attribute names.
func (c CFD) Format(s *relation.Schema) string {
	var b strings.Builder
	b.WriteString(c.Embedded.Format(s))
	if len(c.LHSPattern) == 0 && c.RHSPattern == "" {
		return b.String()
	}
	b.WriteString(" | ")
	cells := make([]string, 0, c.Embedded.LHS.Len())
	for _, a := range c.Embedded.LHS.Attrs() {
		if v, ok := c.LHSPattern[a]; ok {
			cells = append(cells, v)
		} else {
			cells = append(cells, Wildcard)
		}
	}
	b.WriteString(strings.Join(cells, ","))
	if c.RHSPattern != "" {
		b.WriteString(" || ")
		b.WriteString(c.RHSPattern)
	}
	return b.String()
}

// Set is an ordered list of CFDs.
type Set []CFD

// ParseSet parses semicolon- or newline-separated CFD specs.
func ParseSet(s *relation.Schema, specs string) (Set, error) {
	var out Set
	for _, line := range strings.FieldsFunc(specs, func(r rune) bool { return r == ';' || r == '\n' }) {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		c, err := Parse(s, line)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cfd: no dependencies in %q", specs)
	}
	return out, nil
}

// Violation is one detected CFD violation: a pair (T2 ≥ 0) or a
// single-tuple pattern violation (T2 < 0).
type Violation struct {
	T1, T2 int
	CFD    int
}

// Violations enumerates violations of the set, up to max (0 = all). Pair
// violations are found by partitioning the pattern-matching tuples on
// dictionary-encoded LHS codes (no string projection keys, no pair scan
// across groups); the result is deterministic for a fixed instance — CFDs
// in set order, single-tuple violations in tuple order, then LHS groups in
// order of their first member (stable code-based refinement keeps members
// in tuple order), pairs in lexicographic order within a group.
//
// Like every code-column consumer, this reads the instance's cached
// dictionary codes: callers that mutate cells in place between checks must
// call Instance.InvalidateCodes first (appends and clones are tracked
// automatically).
func (set Set) Violations(in *relation.Instance, max int) []Violation {
	p := relation.NewPartitioner(in)
	var seed []int32
	var out []Violation
	add := func(v Violation) bool {
		out = append(out, v)
		return max > 0 && len(out) >= max
	}
	for ci, c := range set {
		// Single-tuple violations of constant RHS patterns.
		if c.RHSPattern != "" {
			for t := 0; t < in.N(); t++ {
				if c.SingleViolation(in.Tuples[t]) {
					if add(Violation{T1: t, T2: -1, CFD: ci}) {
						return out
					}
				}
			}
		}
		// Pair violations among matching tuples, via code-based LHS
		// partitioning of the pattern-matching subset.
		seed = seed[:0]
		for t := 0; t < in.N(); t++ {
			if c.Matches(in.Tuples[t]) {
				seed = append(seed, int32(t))
			}
		}
		p.Begin(seed)
		p.RefineSet(c.Embedded.LHS)
		pt := p.Partition()
		rhs, _ := in.Codes(c.Embedded.RHS)
		for gi := 0; gi < pt.NumGroups(); gi++ {
			g := pt.Group(gi)
			for i := 0; i < len(g); i++ {
				for j := i + 1; j < len(g); j++ {
					if rhs[g[i]] != rhs[g[j]] {
						if add(Violation{T1: int(g[i]), T2: int(g[j]), CFD: ci}) {
							return out
						}
					}
				}
			}
		}
	}
	return out
}

// SatisfiedBy reports whether the instance satisfies every CFD.
func (set Set) SatisfiedBy(in *relation.Instance) bool {
	return len(set.Violations(in, 1)) == 0
}

// Format renders the set with attribute names.
func (set Set) Format(s *relation.Schema) string {
	parts := make([]string, len(set))
	for i, c := range set {
		parts[i] = c.Format(s)
	}
	return strings.Join(parts, "; ")
}
