package cfd

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/search"
	"relatrust/internal/session"
	"relatrust/internal/weights"
)

// Repair is one suggested CFD-and-data repair.
type Repair struct {
	// Set is the relaxed CFD set (wildcard attributes appended to LHSs).
	Set Set
	// Ext is the per-CFD appended attribute vector.
	Ext []relation.AttrSet
	// FDCost is the weighting of the appended attributes.
	FDCost float64
	// Instance is the repaired V-instance satisfying Set.
	Instance *relation.Instance
	// Changed lists the modified cells.
	Changed []relation.CellRef
	// Tau is the budget this repair was generated under.
	Tau int
}

// NumChanges returns |Δd(I, I′)|.
func (r *Repair) NumChanges() int { return len(r.Changed) }

// String summarizes the repair.
func (r *Repair) String() string {
	exts := make([]string, len(r.Ext))
	for i, y := range r.Ext {
		exts[i] = y.String()
	}
	return fmt.Sprintf("τ=%d: ext=[%s], cost=%.3g, changes=%d",
		r.Tau, strings.Join(exts, " "), r.FDCost, len(r.Changed))
}

// Config mirrors the FD repair configuration.
type Config struct {
	Weights weights.Func
	Seed    int64
	Search  search.Options
	// Engine, when non-nil, supplies the shared repair-session engine
	// (bound to the repaired instance); repeated budget runs over the
	// same CFD set then fork one filtered analysis instead of rebuilding
	// it. Nil builds a private engine.
	Engine *session.Engine
}

// RepairWithBudget finds the minimal relaxation of the CFD set whose
// certified repair budget fits tau and materializes the data repair —
// Algorithm 1 of the paper lifted to CFDs (the paper's Section 10
// future-work direction). Single-tuple pattern violations cannot be
// resolved by any relaxation, so they charge the budget up front; pair
// violations go through the same conflict-cover search as plain FDs,
// restricted to pattern-matching tuples. Cancelling ctx aborts the
// relaxation search with context.Cause(ctx).
func RepairWithBudget(ctx context.Context, in *relation.Instance, set Set, tau int, cfg Config) (*Repair, error) {
	if len(set) == 0 {
		return nil, fmt.Errorf("cfd: empty CFD set")
	}
	if cfg.Weights == nil {
		cfg.Weights = weights.AttrCount{}
	}
	if cfg.Search == (search.Options{}) {
		// The gc heuristic's difference-set reasoning is FD-shaped; CFD
		// search defaults to the exhaustive-but-sound best-first mode.
		cfg.Search.BestFirst = true
	}

	embedded := make(fd.Set, len(set))
	filters := make([]func(relation.Tuple) bool, len(set))
	for i, c := range set {
		embedded[i] = c.Embedded
		cc := c
		filters[i] = cc.Matches
	}
	eng, err := session.For(cfg.Engine, in)
	if err != nil {
		return nil, fmt.Errorf("cfd: %w", err)
	}
	// The pattern rendering identifies the filters' semantics: two CFD
	// sets with the same embedded FDs and the same patterns restrict the
	// analysis to the same tuples.
	an := eng.AcquireFiltered(embedded, filters, set.Format(in.Schema))
	defer eng.Release(an)

	singles := singleViolators(in, set)
	alpha := in.Schema.Width() - 1
	if len(set) < alpha {
		alpha = len(set)
	}
	if alpha < 1 {
		alpha = 1
	}
	searchBudget := tau - alpha*len(singles)
	if searchBudget < 0 {
		return nil, nil // even relaxing everything cannot fit the budget
	}

	sr := search.NewSearcher(an, cfg.Weights, cfg.Search)
	res, err := sr.Find(ctx, searchBudget)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, nil
	}

	relaxed := make(Set, len(set))
	for i, c := range set {
		rc, err := c.Extend(res.State[i].Diff(c.Embedded.LHS).Remove(c.Embedded.RHS))
		if err != nil {
			return nil, err
		}
		relaxed[i] = rc
	}

	cover := an.Cover(res.State)
	inst, changed, err := materialize(in, relaxed, cover, singles, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if len(changed) > tau {
		return nil, fmt.Errorf("cfd: internal error: %d changes exceed τ=%d", len(changed), tau)
	}
	return &Repair{
		Set:      relaxed,
		Ext:      res.State,
		FDCost:   res.Cost,
		Instance: inst,
		Changed:  changed,
		Tau:      tau,
	}, nil
}

// singleViolators returns the tuples violating a constant RHS pattern.
func singleViolators(in *relation.Instance, set Set) []int32 {
	seen := make(map[int32]bool)
	var out []int32
	for _, c := range set {
		if c.RHSPattern == "" {
			continue
		}
		for t := 0; t < in.N(); t++ {
			if !seen[int32(t)] && c.SingleViolation(in.Tuples[t]) {
				seen[int32(t)] = true
				out = append(out, int32(t))
			}
		}
	}
	return out
}

// materialize rewrites the cover tuples and the single violators so the
// result satisfies the relaxed CFD set — the tuple-by-tuple repair of
// Algorithm 4 with a pattern-aware clean index.
func materialize(in *relation.Instance, set Set, cover, singles []int32, seed int64) (*relation.Instance, []relation.CellRef, error) {
	out := in.Clone()
	rng := rand.New(rand.NewSource(seed))
	var vg relation.VarGen

	dirty := make(map[int32]bool, len(cover)+len(singles))
	for _, t := range cover {
		dirty[t] = true
	}
	for _, t := range singles {
		dirty[t] = true
	}
	ci := newCFDIndex(out, set, dirty)

	order := make([]int32, 0, len(dirty))
	for t := range dirty {
		order = append(order, t)
	}
	// Deterministic base order before shuffling (map iteration is random).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j-1] > order[j]; j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	width := in.Schema.Width()
	var changed []relation.CellRef
	for _, ti := range order {
		t := out.Tuples[ti]
		attrs := rng.Perm(width)
		fixed := relation.NewAttrSet(attrs[0])
		tc, ok := ci.findAssignment(t, fixed, &vg)
		if !ok {
			return nil, nil, fmt.Errorf("cfd: no valid assignment for tuple %d with one fixed attribute", ti)
		}
		for _, a := range attrs[1:] {
			fixed = fixed.Add(a)
			if tc2, ok := ci.findAssignment(t, fixed, &vg); ok {
				tc = tc2
				continue
			}
			if !t[a].Equal(tc[a]) {
				t[a] = tc[a]
				changed = append(changed, relation.CellRef{Tuple: int(ti), Attr: a})
			}
		}
		ci.add(t)
	}
	// SatisfiedBy reads cached code columns, so drop any built before the
	// in-place rewrites above (none today; this guards reordering).
	out.InvalidateCodes()
	if !set.SatisfiedBy(out) {
		return nil, nil, fmt.Errorf("cfd: repair left violations; cover or singles incomplete")
	}
	return out, changed, nil
}

// cfdIndex is the pattern-aware clean index: per CFD, the RHS value of
// each LHS projection code among clean matching tuples. Projections are
// interned by per-CFD ProjCoders over shared dictionaries instead of
// building string keys.
type cfdIndex struct {
	set    Set
	coders []*relation.ProjCoder
	idx    []map[int32]relation.Value
}

func newCFDIndex(in *relation.Instance, set Set, dirty map[int32]bool) *cfdIndex {
	dicts := relation.NewDicts(in.Schema.Width())
	ci := &cfdIndex{
		set:    set,
		coders: make([]*relation.ProjCoder, len(set)),
		idx:    make([]map[int32]relation.Value, len(set)),
	}
	for i, c := range set {
		ci.coders[i] = relation.NewProjCoder(c.Embedded.LHS, dicts)
		ci.idx[i] = make(map[int32]relation.Value, in.N())
	}
	for t := 0; t < in.N(); t++ {
		if dirty[int32(t)] {
			continue
		}
		ci.add(in.Tuples[t])
	}
	return ci
}

func (ci *cfdIndex) add(t relation.Tuple) {
	for i, c := range ci.set {
		if c.Matches(t) {
			ci.idx[i][ci.coders[i].Code(t)] = t[c.Embedded.RHS]
		}
	}
}

// violation returns the first CFD (in set order) violated by tc against a
// clean tuple or a constant RHS pattern, with the value tc's RHS must take.
func (ci *cfdIndex) violation(tc relation.Tuple) (int, relation.Value, bool) {
	for i, c := range ci.set {
		if !c.Matches(tc) {
			continue
		}
		rhs := tc[c.Embedded.RHS]
		if c.RHSPattern != "" && (rhs.IsVar() || rhs.Str() != c.RHSPattern) {
			return i, relation.Const(c.RHSPattern), true
		}
		if k, ok := ci.coders[i].Lookup(tc); ok {
			if v, ok := ci.idx[i][k]; ok && !rhs.Equal(v) {
				return i, v, true
			}
		}
	}
	return 0, relation.Value{}, false
}

func (ci *cfdIndex) findAssignment(t relation.Tuple, fixed relation.AttrSet, vg *relation.VarGen) (relation.Tuple, bool) {
	tc := make(relation.Tuple, len(t))
	for a := range t {
		if fixed.Contains(a) {
			tc[a] = t[a]
		} else {
			tc[a] = vg.Fresh()
		}
	}
	for step := 0; step <= len(t)+len(ci.set); step++ {
		fi, v, found := ci.violation(tc)
		if !found {
			return tc, true
		}
		a := ci.set[fi].Embedded.RHS
		if fixed.Contains(a) {
			return nil, false
		}
		tc[a] = v
		fixed = fixed.Add(a)
	}
	return nil, false
}
