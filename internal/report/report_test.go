package report

import (
	"context"
	"strings"
	"testing"

	"relatrust/internal/repair"
	"relatrust/internal/testkit"
)

func spectrumFixture(t *testing.T) (*repair.Session, []*repair.Repair) {
	t.Helper()
	in, sigma := testkit.Paper4x4()
	s, err := repair.NewSession(in, sigma, repair.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reps, err := s.RunRange(context.Background(), 0, s.DeltaPOriginal())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) == 0 {
		t.Fatal("no repairs")
	}
	return s, reps
}

func TestSpectrumTable(t *testing.T) {
	s, reps := spectrumFixture(t)
	var b strings.Builder
	if err := Spectrum(&b, s.In, reps); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "FD modification") {
		t.Error("missing header")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(reps)+1 {
		t.Errorf("table has %d lines, want %d", len(lines), len(reps)+1)
	}
	// Columns align: every line at least as long as the header's prefix.
	if len(lines[1]) < len("level") {
		t.Error("row rendering broken")
	}
}

func TestChangesListing(t *testing.T) {
	s, reps := spectrumFixture(t)
	first := reps[0] // pure data repair: has changes
	var b strings.Builder
	if err := Changes(&b, s.In, first, Options{ShowTuples: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "→") {
		t.Errorf("no change arrows in output:\n%s", out)
	}
	if !strings.Contains(out, "before:") || !strings.Contains(out, "after:") {
		t.Error("tuple diff missing")
	}
}

func TestChangesCap(t *testing.T) {
	s, reps := spectrumFixture(t)
	first := reps[0]
	if first.Data.NumChanges() < 2 {
		t.Skip("fixture produced fewer than 2 changes")
	}
	var b strings.Builder
	if err := Changes(&b, s.In, first, Options{MaxCells: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "more changes") {
		t.Errorf("cap not applied:\n%s", b.String())
	}
}
