package report

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden files from the current output. Run it
// deliberately: a diff in these files is a wire- or CLI-format change.
var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("%s drifted from golden file (intentional changes: re-run with -update):\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// TestSpectrumWriterGolden pins the CLI's streamed spectrum rendering —
// and, through RowOf, the field set every other spectrum surface encodes.
func TestSpectrumWriterGolden(t *testing.T) {
	s, reps := spectrumFixture(t)
	var b strings.Builder
	sw := NewSpectrumWriter(&b)
	for _, r := range reps {
		if err := sw.Row(s.In, r); err != nil {
			t.Fatal(err)
		}
	}
	if sw.Rows() != len(reps) {
		t.Fatalf("writer counted %d rows, want %d", sw.Rows(), len(reps))
	}
	checkGolden(t, "spectrum.golden", []byte(b.String()))
}

// TestRowJSONGolden pins the JSON encoding of the shared wire row: the
// server's NDJSON and SSE frames are built from exactly this object.
func TestRowJSONGolden(t *testing.T) {
	s, reps := spectrumFixture(t)
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for i, r := range reps {
		if err := enc.Encode(RowOf(s.In, i+1, r)); err != nil {
			t.Fatal(err)
		}
	}
	checkGolden(t, "rows.ndjson.golden", []byte(b.String()))
}

// TestSpectrumMatchesWriter: the batch table and the streaming writer
// render the same cells (the batch form right-sizes columns, so compare
// field-wise, not byte-wise).
func TestSpectrumMatchesWriter(t *testing.T) {
	s, reps := spectrumFixture(t)
	var batch strings.Builder
	if err := Spectrum(&batch, s.In, reps); err != nil {
		t.Fatal(err)
	}
	var stream strings.Builder
	sw := NewSpectrumWriter(&stream)
	for _, r := range reps {
		if err := sw.Row(s.In, r); err != nil {
			t.Fatal(err)
		}
	}
	bl := strings.Split(strings.TrimRight(batch.String(), "\n"), "\n")
	sl := strings.Split(strings.TrimRight(stream.String(), "\n"), "\n")
	if len(bl) != len(sl) {
		t.Fatalf("batch renders %d lines, stream %d", len(bl), len(sl))
	}
	for i := range bl {
		if got, want := strings.Fields(sl[i]), strings.Fields(bl[i]); strings.Join(got, " ") != strings.Join(want, " ") {
			t.Errorf("line %d: stream %q vs batch %q", i, got, want)
		}
	}
}
