// Package report renders repairs as human-readable summaries: the trust
// spectrum as a table, per-repair cell-change listings, and a side-by-side
// diff of the touched tuples. The CLI uses it; library users can too.
package report

import (
	"fmt"
	"io"
	"strings"

	"relatrust/internal/relation"
	"relatrust/internal/repair"
)

// Row is the wire form of one frontier point, shared by every renderer of
// the trust spectrum: the CLI's table writers and the HTTP server's
// NDJSON/SSE streams all encode exactly these fields, so the two surfaces
// cannot drift apart. Level is 1-based in frontier order ("trust the FDs"
// first); Sigma is the modified FD set rendered against the instance's
// schema.
type Row struct {
	Level       int     `json:"level"`
	Tau         int     `json:"tau"`
	Sigma       string  `json:"sigma"`
	FDCost      float64 `json:"fd_cost"`
	CellChanges int     `json:"cell_changes"`
	DeltaP      int     `json:"delta_p"`
}

// RowOf encodes one repair as the wire row it is rendered from.
func RowOf(in *relation.Instance, level int, r *repair.Repair) Row {
	return Row{
		Level:       level,
		Tau:         r.Tau,
		Sigma:       r.Sigma.Format(in.Schema),
		FDCost:      r.FDCost,
		CellChanges: r.Data.NumChanges(),
		DeltaP:      r.DeltaP,
	}
}

// cells returns the row rendered as table cells, in header order.
func (r Row) cells() []string {
	return []string{
		fmt.Sprintf("%d", r.Level),
		fmt.Sprintf("%d", r.Tau),
		r.Sigma,
		fmt.Sprintf("%.4g", r.FDCost),
		fmt.Sprintf("%d", r.CellChanges),
		fmt.Sprintf("%d", r.DeltaP),
	}
}

// spectrumHeader is the shared column header of the spectrum renderers.
var spectrumHeader = []string{"level", "tau", "FD modification", "dist_c", "cell changes", "bound δP"}

// Options tunes rendering.
type Options struct {
	// MaxCells caps the changed-cell listing per repair (0 = 20).
	MaxCells int
	// ShowTuples adds a before/after rendering of each touched tuple.
	ShowTuples bool
}

func (o Options) withDefaults() Options {
	if o.MaxCells <= 0 {
		o.MaxCells = 20
	}
	return o
}

// Spectrum renders the full list of suggested repairs as a table: one row
// per trust level with the FD modification, its cost, and the data cost.
func Spectrum(w io.Writer, in *relation.Instance, repairs []*repair.Repair) error {
	tw := newTable(spectrumHeader...)
	for i, r := range repairs {
		tw.row(RowOf(in, i+1, r).cells()...)
	}
	_, err := io.WriteString(w, tw.String())
	return err
}

// SpectrumWriter renders the trust spectrum one row at a time, for
// streaming consumers (the CLI prints each frontier point as the sweep
// yields it, so a cancelled sweep still shows the partial frontier).
// Unlike Spectrum it cannot right-size columns to the data, so it uses
// fixed widths sized for typical FD renderings.
type SpectrumWriter struct {
	w     io.Writer
	n     int
	wrote bool
}

// NewSpectrumWriter returns a streaming spectrum renderer over w.
func NewSpectrumWriter(w io.Writer) *SpectrumWriter {
	return &SpectrumWriter{w: w}
}

const spectrumRowFmt = "%-5s  %-6s  %-40s  %-7s  %-12s  %s\n"

// Row renders one frontier point, emitting the header before the first.
func (sw *SpectrumWriter) Row(in *relation.Instance, r *repair.Repair) error {
	if !sw.wrote {
		sw.wrote = true
		h := make([]any, len(spectrumHeader))
		for i, c := range spectrumHeader {
			h[i] = c
		}
		if _, err := fmt.Fprintf(sw.w, spectrumRowFmt, h...); err != nil {
			return err
		}
	}
	sw.n++
	row := RowOf(in, sw.n, r)
	cells := row.cells()
	args := make([]any, len(cells))
	for i, c := range cells {
		args[i] = c
	}
	_, err := fmt.Fprintf(sw.w, spectrumRowFmt, args...)
	return err
}

// Rows reports how many rows were rendered.
func (sw *SpectrumWriter) Rows() int { return sw.n }

// Changes renders the changed cells of one repair.
func Changes(w io.Writer, in *relation.Instance, r *repair.Repair, opt Options) error {
	opt = opt.withDefaults()
	var b strings.Builder
	for i, c := range r.Data.Changed {
		if i >= opt.MaxCells {
			fmt.Fprintf(&b, "  … %d more changes\n", r.Data.NumChanges()-i)
			break
		}
		fmt.Fprintf(&b, "  %-16s %s → %s\n", c.Format(in.Schema),
			in.Tuples[c.Tuple][c.Attr], r.Data.Instance.Tuples[c.Tuple][c.Attr])
	}
	if opt.ShowTuples {
		seen := map[int]bool{}
		for _, c := range r.Data.Changed {
			if seen[c.Tuple] {
				continue
			}
			seen[c.Tuple] = true
			fmt.Fprintf(&b, "  t%d before: %s\n", c.Tuple, renderTuple(in.Tuples[c.Tuple]))
			fmt.Fprintf(&b, "  t%d after:  %s\n", c.Tuple, renderTuple(r.Data.Instance.Tuples[c.Tuple]))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func renderTuple(t relation.Tuple) string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// table is a minimal aligned-column writer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
