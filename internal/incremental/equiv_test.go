package incremental

import (
	"math/rand"
	"testing"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/testkit"
)

// The seed implementation keyed groups by concatenated string projections
// and histograms by Value.Key strings. The oracle below reproduces it on
// its own instance copy; the dictionary-code tracker must report identical
// pair counts and per-update deltas across arbitrary update streams.

type oracleTracker struct {
	in    *relation.Instance
	sigma fd.Set
	fds   []*oracleFDState
	pairs int64
}

type oracleFDState struct {
	f      fd.FD
	groups map[string]*oracleGroup
	pairs  int64
}

type oracleGroup struct {
	size   int
	counts map[string]int
}

func newOracle(in *relation.Instance, sigma fd.Set) *oracleTracker {
	t := &oracleTracker{in: in, sigma: sigma}
	for _, f := range sigma {
		st := &oracleFDState{f: f, groups: make(map[string]*oracleGroup, in.N())}
		for ti := 0; ti < in.N(); ti++ {
			st.addTuple(in, ti)
		}
		t.fds = append(t.fds, st)
		t.pairs += st.pairs
	}
	return t
}

func (t *oracleTracker) set(tuple, attr int, v relation.Value) int64 {
	old := t.in.Tuples[tuple][attr]
	if old.Equal(v) {
		return 0
	}
	before := t.pairs
	for _, st := range t.fds {
		if st.f.LHS.Contains(attr) || st.f.RHS == attr {
			t.pairs -= st.pairs
			st.removeTuple(t.in, tuple)
		}
	}
	t.in.Tuples[tuple][attr] = v
	t.in.InvalidateCodes()
	for _, st := range t.fds {
		if st.f.LHS.Contains(attr) || st.f.RHS == attr {
			st.addTuple(t.in, tuple)
			t.pairs += st.pairs
		}
	}
	return t.pairs - before
}

func (t *oracleTracker) insert(tuple relation.Tuple) int64 {
	before := t.pairs
	t.in.Tuples = append(t.in.Tuples, tuple)
	ti := t.in.N() - 1
	for _, st := range t.fds {
		t.pairs -= st.pairs
		st.addTuple(t.in, ti)
		t.pairs += st.pairs
	}
	return t.pairs - before
}

func (t *oracleTracker) delete(ti int) int64 {
	before := t.pairs
	for _, st := range t.fds {
		t.pairs -= st.pairs
		st.removeTuple(t.in, ti)
		t.pairs += st.pairs
	}
	last := t.in.N() - 1
	if ti != last {
		t.in.Tuples[ti] = t.in.Tuples[last]
	}
	t.in.Tuples = t.in.Tuples[:last]
	return t.pairs - before
}

func (st *oracleFDState) addTuple(in *relation.Instance, ti int) {
	key := in.Project(ti, st.f.LHS)
	g, ok := st.groups[key]
	if !ok {
		g = &oracleGroup{counts: make(map[string]int, 2)}
		st.groups[key] = g
	}
	st.pairs -= g.pairs()
	g.size++
	g.counts[in.Tuples[ti][st.f.RHS].Key()]++
	st.pairs += g.pairs()
}

func (st *oracleFDState) removeTuple(in *relation.Instance, ti int) {
	key := in.Project(ti, st.f.LHS)
	g := st.groups[key]
	if g == nil {
		return
	}
	st.pairs -= g.pairs()
	g.size--
	rk := in.Tuples[ti][st.f.RHS].Key()
	if g.counts[rk]--; g.counts[rk] == 0 {
		delete(g.counts, rk)
	}
	if g.size == 0 {
		delete(st.groups, key)
		return
	}
	st.pairs += g.pairs()
}

func (g *oracleGroup) pairs() int64 {
	if len(g.counts) < 2 {
		return 0
	}
	s := int64(g.size)
	var sq int64
	for _, c := range g.counts {
		sq += int64(c) * int64(c)
	}
	return (s*s - sq) / 2
}

// TestTrackerMatchesStringKeyedOracle drives both trackers through the
// same random update stream — constants from a small domain plus
// occasional fresh and repeated variables — and asserts identical total
// pairs, per-FD pairs, and per-update deltas at every step.
func TestTrackerMatchesStringKeyedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 60; trial++ {
		width := 3 + rng.Intn(3)
		n := 6 + rng.Intn(20)
		in := testkit.RandomInstance(rng, n, width, 2+rng.Intn(2))
		sigma := testkit.RandomFDs(rng, width, 1+rng.Intn(3), 2)

		tracker := New(in.Clone(), sigma)
		oracle := newOracle(in.Clone(), sigma)
		if tracker.ViolatingPairs() != oracle.pairs {
			t.Fatalf("trial %d: initial pairs %d != oracle %d", trial, tracker.ViolatingPairs(), oracle.pairs)
		}

		vg := &relation.VarGen{}
		var reusable relation.Value
		for step := 0; step < 40; step++ {
			ti := rng.Intn(n)
			attr := rng.Intn(width)
			var v relation.Value
			switch rng.Intn(8) {
			case 0:
				v = vg.Fresh()
				reusable = v
			case 1:
				if reusable == (relation.Value{}) {
					reusable = vg.Fresh()
				}
				v = reusable
			default:
				v = relation.Const(string(rune('a' + rng.Intn(3))))
			}
			delta, err := tracker.Set(ti, attr, v)
			if err != nil {
				t.Fatal(err)
			}
			wantDelta := oracle.set(ti, attr, v)
			if delta != wantDelta {
				t.Fatalf("trial %d step %d: delta %d != oracle %d (set t%d a%d)",
					trial, step, delta, wantDelta, ti, attr)
			}
			if tracker.ViolatingPairs() != oracle.pairs {
				t.Fatalf("trial %d step %d: pairs %d != oracle %d", trial, step, tracker.ViolatingPairs(), oracle.pairs)
			}
			perFD := tracker.PairsPerFD()
			for i, st := range oracle.fds {
				if perFD[i] != st.pairs {
					t.Fatalf("trial %d step %d: FD %d pairs %d != oracle %d", trial, step, i, perFD[i], st.pairs)
				}
			}
			if tracker.Satisfied() != (oracle.pairs == 0) {
				t.Fatalf("trial %d step %d: Satisfied disagrees with the oracle", trial, step)
			}
		}
	}
}

// TestTrackerMatchesOracleUnderRowChurn widens the stream to row inserts
// and swap-remove deletes — the same batch semantics the live mutation
// tier applies — and holds the dictionary-code tracker to the string-keyed
// oracle's totals, per-FD splits, and per-operation deltas throughout.
func TestTrackerMatchesOracleUnderRowChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(2027))
	for trial := 0; trial < 40; trial++ {
		width := 3 + rng.Intn(3)
		n := 4 + rng.Intn(16)
		dom := 2 + rng.Intn(2)
		in := testkit.RandomInstance(rng, n, width, dom)
		sigma := testkit.RandomFDs(rng, width, 1+rng.Intn(3), 2)

		tracker := New(in.Clone(), sigma)
		oracle := newOracle(in.Clone(), sigma)

		randomTuple := func() relation.Tuple {
			tup := make(relation.Tuple, width)
			for a := range tup {
				tup[a] = relation.Const(string(rune('a' + rng.Intn(dom))))
			}
			return tup
		}
		for step := 0; step < 60; step++ {
			var delta, wantDelta int64
			var err error
			cur := tracker.Instance().N()
			switch op := rng.Intn(4); {
			case op == 0 || cur == 0: // insert
				tup := randomTuple()
				// Each side gets its own backing array: a later Set through
				// one tracker must not write through the other's cells.
				delta, err = tracker.Insert(append(relation.Tuple(nil), tup...))
				if err != nil {
					t.Fatal(err)
				}
				wantDelta = oracle.insert(append(relation.Tuple(nil), tup...))
			case op == 1: // swap-remove delete
				ti := rng.Intn(cur)
				var moved int
				delta, moved, err = tracker.Delete(ti)
				if err != nil {
					t.Fatal(err)
				}
				if wantMoved := -1; ti != cur-1 {
					wantMoved = cur - 1
					if moved != wantMoved {
						t.Fatalf("trial %d step %d: moved %d, want %d", trial, step, moved, wantMoved)
					}
				} else if moved != wantMoved {
					t.Fatalf("trial %d step %d: moved %d deleting the last row", trial, step, moved)
				}
				wantDelta = oracle.delete(ti)
			default: // cell update
				ti, attr := rng.Intn(cur), rng.Intn(width)
				v := relation.Const(string(rune('a' + rng.Intn(dom))))
				delta, err = tracker.Set(ti, attr, v)
				if err != nil {
					t.Fatal(err)
				}
				wantDelta = oracle.set(ti, attr, v)
			}
			if delta != wantDelta {
				t.Fatalf("trial %d step %d: delta %d != oracle %d", trial, step, delta, wantDelta)
			}
			if tracker.ViolatingPairs() != oracle.pairs {
				t.Fatalf("trial %d step %d: pairs %d != oracle %d", trial, step, tracker.ViolatingPairs(), oracle.pairs)
			}
			perFD := tracker.PairsPerFD()
			for i, st := range oracle.fds {
				if perFD[i] != st.pairs {
					t.Fatalf("trial %d step %d: FD %d pairs %d != oracle %d", trial, step, i, perFD[i], st.pairs)
				}
			}
			if got, want := tracker.Instance().N(), oracle.in.N(); got != want {
				t.Fatalf("trial %d step %d: row counts diverged %d vs %d", trial, step, got, want)
			}
		}
		// The surviving rows must be identical, proving the swap-remove
		// renumbering matched move for move.
		for ti := 0; ti < oracle.in.N(); ti++ {
			for a := 0; a < width; a++ {
				if !tracker.Instance().Tuples[ti][a].Equal(oracle.in.Tuples[ti][a]) {
					t.Fatalf("trial %d: cell (%d,%d) diverged after the stream", trial, ti, a)
				}
			}
		}
	}
}
