// Package incremental maintains the violation state of an instance under
// single-cell updates and row inserts/deletes, without rescanning. It is
// the substrate an
// interactive cleaning session needs: after each candidate edit (or each
// accepted suggestion from the repair spectrum) the violation count, the
// dirty-tuple set, and the satisfied/violated verdict refresh in time
// proportional to the touched groups rather than to the instance.
//
// Per FD X → A the tracker keeps the partition of tuples by X-projection
// and, within each group, the histogram of A-values. A group contributes
// violations iff it holds ≥ 2 distinct A-values; the number of violating
// pairs of a group with value counts c1…ck (Σci = s) is (s² − Σci²)/2.
// A cell update moves its tuple between at most two groups per FD whose
// LHS contains the attribute, and shifts one histogram entry per FD whose
// RHS is the attribute.
//
// Groups and histograms are keyed by tracker-private dictionary codes
// (relation.ProjCoder for LHS projections, per-attribute relation.Dict for
// RHS values) rather than concatenated string keys. The instance's cached
// code *columns* would be the wrong tool here — every Set invalidates
// them, and rebuilding a column is O(n) where the tracker's whole point is
// O(touched) updates — but the incremental coders intern values as they
// appear and never need invalidation: a re-coded tuple reflects its
// current cells. Their memory grows with the number of distinct values
// (and LHS projections) ever observed across the update stream, the same
// asymptotics the string keys had.
package incremental

import (
	"fmt"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// Tracker maintains per-FD violation statistics for one instance. The
// tracker owns the instance: all mutations must go through Set.
type Tracker struct {
	in    *relation.Instance
	sigma fd.Set
	fds   []*fdState
	pairs int64 // total violating pairs across FDs (per-FD convention)
}

type fdState struct {
	f      fd.FD
	coder  *relation.ProjCoder // interns LHS projections to group keys
	rhs    *relation.Dict      // interns RHS values to histogram keys
	groups map[int32]*group    // LHS projection code -> group
	pairs  int64
}

type group struct {
	size   int
	counts map[int32]int // RHS value code -> multiplicity
}

// New builds the tracker in O(|Σ|·n).
func New(in *relation.Instance, sigma fd.Set) *Tracker {
	t := &Tracker{in: in, sigma: sigma}
	// The per-attribute dictionaries are shared across the FDs' coders, so
	// a value interned once serves every projection containing it.
	dicts := relation.NewDicts(in.Schema.Width())
	for _, f := range sigma {
		st := &fdState{
			f:      f,
			coder:  relation.NewProjCoder(f.LHS, dicts),
			rhs:    dicts[f.RHS],
			groups: make(map[int32]*group, in.N()),
		}
		for ti := 0; ti < in.N(); ti++ {
			st.addTuple(in, ti)
		}
		t.fds = append(t.fds, st)
		t.pairs += st.pairs
	}
	return t
}

// Instance returns the tracked instance (read-only view; mutate via Set).
func (t *Tracker) Instance() *relation.Instance { return t.in }

// ViolatingPairs returns the current total number of violating pairs,
// counting a pair once per FD it violates (the paper's |E| convention).
func (t *Tracker) ViolatingPairs() int64 { return t.pairs }

// Satisfied reports whether the instance currently satisfies every FD.
func (t *Tracker) Satisfied() bool { return t.pairs == 0 }

// PairsPerFD returns the violating-pair count of each FD.
func (t *Tracker) PairsPerFD() []int64 {
	out := make([]int64, len(t.fds))
	for i, st := range t.fds {
		out[i] = st.pairs
	}
	return out
}

// Set updates one cell and refreshes the statistics. It returns the
// change in total violating pairs (negative = repair progress).
func (t *Tracker) Set(tuple, attr int, v relation.Value) (delta int64, err error) {
	if tuple < 0 || tuple >= t.in.N() {
		return 0, fmt.Errorf("incremental: tuple %d out of range", tuple)
	}
	if attr < 0 || attr >= t.in.Schema.Width() {
		return 0, fmt.Errorf("incremental: attribute %d out of range", attr)
	}
	old := t.in.Tuples[tuple][attr]
	if old.Equal(v) {
		return 0, nil
	}
	before := t.pairs
	// Remove the tuple from every FD whose stats the cell touches, apply
	// the write, then re-add. Removing and re-adding only the affected
	// FDs keeps the cost proportional to the FDs mentioning the
	// attribute.
	for i, st := range t.fds {
		if st.f.LHS.Contains(attr) || st.f.RHS == attr {
			t.pairs -= st.pairs
			st.removeTuple(t.in, tuple)
			t.fds[i] = st
		}
	}
	t.in.Tuples[tuple][attr] = v
	// An in-place cell write invalidates the written attribute's cached
	// code column (see relation.Codes); the other columns stay warm.
	t.in.InvalidateCodesFor(relation.NewAttrSet(attr))
	for _, st := range t.fds {
		if st.f.LHS.Contains(attr) || st.f.RHS == attr {
			st.addTuple(t.in, tuple)
			t.pairs += st.pairs
		}
	}
	return t.pairs - before, nil
}

// Insert appends a tuple and registers it with every FD, returning the
// change in total violating pairs. Cost is O(|Σ|): one group update per
// FD, independent of the instance size.
func (t *Tracker) Insert(tuple relation.Tuple) (delta int64, err error) {
	if len(tuple) != t.in.Schema.Width() {
		return 0, fmt.Errorf("incremental: tuple width %d does not match schema width %d",
			len(tuple), t.in.Schema.Width())
	}
	before := t.pairs
	if err := t.in.Append(tuple); err != nil {
		return 0, err
	}
	ti := t.in.N() - 1
	for _, st := range t.fds {
		t.pairs -= st.pairs
		st.addTuple(t.in, ti)
		t.pairs += st.pairs
	}
	// The row count changed, so every cached code column is now the wrong
	// length; drop them all.
	t.in.InvalidateCodes()
	return t.pairs - before, nil
}

// Delete removes tuple ti by swap-remove — the last row takes index ti,
// the same renumbering the live mutation tier uses — and returns the
// change in total violating pairs plus the old index of the row that
// moved into ti (-1 when ti was the last row). The moved row needs no
// re-registration: groups and histograms are keyed by values, not
// indices, so its statistics are untouched by the renumbering.
func (t *Tracker) Delete(ti int) (delta int64, moved int, err error) {
	n := t.in.N()
	if ti < 0 || ti >= n {
		return 0, -1, fmt.Errorf("incremental: tuple %d out of range", ti)
	}
	before := t.pairs
	for _, st := range t.fds {
		t.pairs -= st.pairs
		st.removeTuple(t.in, ti)
		t.pairs += st.pairs
	}
	moved = -1
	last := n - 1
	if ti != last {
		t.in.Tuples[ti] = t.in.Tuples[last]
		moved = last
	}
	t.in.Tuples[last] = nil
	t.in.Tuples = t.in.Tuples[:last]
	t.in.InvalidateCodes()
	return t.pairs - before, moved, nil
}

// addTuple registers tuple ti with the FD's partition.
func (st *fdState) addTuple(in *relation.Instance, ti int) {
	key := st.coder.Code(in.Tuples[ti])
	g, ok := st.groups[key]
	if !ok {
		g = &group{counts: make(map[int32]int, 2)}
		st.groups[key] = g
	}
	st.pairs -= g.pairs()
	g.size++
	g.counts[st.rhs.Code(in.Tuples[ti][st.f.RHS])]++
	st.pairs += g.pairs()
}

// removeTuple unregisters tuple ti (whose cells must still hold the values
// it was registered with — coding them again finds the key addTuple
// interned).
func (st *fdState) removeTuple(in *relation.Instance, ti int) {
	key := st.coder.Code(in.Tuples[ti])
	g := st.groups[key]
	if g == nil {
		return
	}
	st.pairs -= g.pairs()
	g.size--
	rk := st.rhs.Code(in.Tuples[ti][st.f.RHS])
	if g.counts[rk]--; g.counts[rk] == 0 {
		delete(g.counts, rk)
	}
	if g.size == 0 {
		delete(st.groups, key)
		return
	}
	st.pairs += g.pairs()
}

// pairs returns the violating-pair count of the group: (s² − Σci²)/2.
func (g *group) pairs() int64 {
	if len(g.counts) < 2 {
		return 0
	}
	s := int64(g.size)
	var sq int64
	for _, c := range g.counts {
		sq += int64(c) * int64(c)
	}
	return (s*s - sq) / 2
}

// ApplyRepair plays a repaired instance's changes through the tracker,
// returning the per-step deltas; the final state satisfies the repair's
// FD set iff the tracker's Σ is (a relaxation-compatible view of) it.
func (t *Tracker) ApplyRepair(changed []relation.CellRef, repaired *relation.Instance) ([]int64, error) {
	deltas := make([]int64, 0, len(changed))
	for _, c := range changed {
		d, err := t.Set(c.Tuple, c.Attr, repaired.Tuples[c.Tuple][c.Attr])
		if err != nil {
			return deltas, err
		}
		deltas = append(deltas, d)
	}
	return deltas, nil
}
