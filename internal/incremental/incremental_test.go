package incremental

import (
	"math/rand"
	"testing"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/repair"
	"relatrust/internal/testkit"
)

// pairsByRescan recomputes the per-FD violating-pair total from scratch.
func pairsByRescan(in *relation.Instance, sigma fd.Set) int64 {
	return int64(len(sigma.Violations(in, 0)))
}

func TestTrackerInitialCount(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	tr := New(in.Clone(), sigma)
	if got, want := tr.ViolatingPairs(), pairsByRescan(in, sigma); got != want {
		t.Fatalf("initial pairs = %d, rescan = %d", got, want)
	}
	if tr.Satisfied() {
		t.Error("paper example is not satisfied")
	}
	per := tr.PairsPerFD()
	if len(per) != 2 || per[0]+per[1] != tr.ViolatingPairs() {
		t.Errorf("per-FD split inconsistent: %v", per)
	}
}

func TestTrackerSetRepairsViolation(t *testing.T) {
	in := testkit.Build([]string{"A", "B"}, [][]string{
		{"1", "x"}, {"1", "y"},
	})
	sigma := fd.MustParseSet(in.Schema, "A->B")
	tr := New(in.Clone(), sigma)
	if tr.ViolatingPairs() != 1 {
		t.Fatalf("pairs = %d", tr.ViolatingPairs())
	}
	delta, err := tr.Set(1, 1, relation.Const("x"))
	if err != nil {
		t.Fatal(err)
	}
	if delta != -1 || !tr.Satisfied() {
		t.Fatalf("delta = %d, satisfied = %v", delta, tr.Satisfied())
	}
	// Breaking it again.
	delta, _ = tr.Set(0, 1, relation.Const("z"))
	if delta != 1 || tr.Satisfied() {
		t.Fatalf("delta = %d after corruption", delta)
	}
}

func TestTrackerNoOpAndErrors(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	tr := New(in.Clone(), sigma)
	if d, err := tr.Set(0, 0, relation.Const("1")); err != nil || d != 0 {
		t.Errorf("no-op write: d=%d err=%v", d, err)
	}
	if _, err := tr.Set(99, 0, relation.Const("x")); err == nil {
		t.Error("tuple out of range must fail")
	}
	if _, err := tr.Set(0, 99, relation.Const("x")); err == nil {
		t.Error("attr out of range must fail")
	}
}

// TestTrackerMatchesRescanUnderRandomEdits is the load-bearing property:
// after every random single-cell edit, the incremental count equals a
// from-scratch rescan.
func TestTrackerMatchesRescanUnderRandomEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 15; trial++ {
		in := testkit.RandomInstance(rng, 12, 4, 2)
		sigma := testkit.RandomFDs(rng, 4, 2, 2)
		tr := New(in.Clone(), sigma)
		var vg relation.VarGen
		for step := 0; step < 60; step++ {
			ti := rng.Intn(tr.Instance().N())
			a := rng.Intn(4)
			var v relation.Value
			if rng.Intn(4) == 0 {
				v = vg.Fresh()
			} else {
				v = relation.Const(string(rune('a' + rng.Intn(3))))
			}
			if _, err := tr.Set(ti, a, v); err != nil {
				t.Fatal(err)
			}
			if got, want := tr.ViolatingPairs(), pairsByRescan(tr.Instance(), sigma); got != want {
				t.Fatalf("trial %d step %d: incremental %d ≠ rescan %d", trial, step, got, want)
			}
		}
	}
}

// TestTrackerApplyRepair: replaying a produced repair drives the tracker
// to zero violations.
func TestTrackerApplyRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	in := testkit.RandomInstance(rng, 15, 4, 2)
	sigma := testkit.RandomFDs(rng, 4, 2, 2)
	rep, err := repair.RepairData(in, sigma, nil, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(in.Clone(), sigma)
	deltas, err := tr.ApplyRepair(rep.Changed, rep.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != rep.NumChanges() {
		t.Errorf("deltas = %d, changes = %d", len(deltas), rep.NumChanges())
	}
	if !tr.Satisfied() {
		t.Fatalf("tracker still sees %d violating pairs after replaying the repair", tr.ViolatingPairs())
	}
}

func TestTrackerInsertDeleteBasics(t *testing.T) {
	in := testkit.Build([]string{"A", "B"}, [][]string{
		{"1", "x"}, {"2", "y"},
	})
	sigma := fd.MustParseSet(in.Schema, "A->B")
	tr := New(in.Clone(), sigma)
	if !tr.Satisfied() {
		t.Fatal("clean instance reported violations")
	}
	delta, err := tr.Insert(relation.Tuple{relation.Const("1"), relation.Const("y")})
	if err != nil || delta != 1 || tr.ViolatingPairs() != 1 {
		t.Fatalf("insert: delta=%d err=%v pairs=%d", delta, err, tr.ViolatingPairs())
	}
	// Deleting row 0 removes the conflict and moves the inserted row into
	// its slot.
	delta, moved, err := tr.Delete(0)
	if err != nil || delta != -1 || moved != 2 || !tr.Satisfied() {
		t.Fatalf("delete: delta=%d moved=%d err=%v", delta, moved, err)
	}
	if got := tr.Instance().Tuples[0][1].Key(); got != "y" {
		t.Fatalf("swap-remove left %q at row 0, want the moved row", got)
	}
	// Deleting the last row reports no move.
	if _, moved, _ := tr.Delete(tr.Instance().N() - 1); moved != -1 {
		t.Fatalf("deleting the last row reported move %d", moved)
	}
	if _, err := tr.Insert(relation.Tuple{relation.Const("1")}); err == nil {
		t.Error("short tuple must fail")
	}
	if _, _, err := tr.Delete(99); err == nil {
		t.Error("delete out of range must fail")
	}
}

// TestTrackerMatchesRescanUnderRowChurn: the incremental count stays equal
// to a from-scratch rescan across a mixed stream of cell updates, inserts,
// and swap-remove deletes.
func TestTrackerMatchesRescanUnderRowChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 12; trial++ {
		in := testkit.RandomInstance(rng, 10, 4, 2)
		sigma := testkit.RandomFDs(rng, 4, 2, 2)
		tr := New(in.Clone(), sigma)
		for step := 0; step < 50; step++ {
			n := tr.Instance().N()
			switch op := rng.Intn(4); {
			case op == 0 || n == 0:
				tup := make(relation.Tuple, 4)
				for a := range tup {
					tup[a] = relation.Const(string(rune('a' + rng.Intn(2))))
				}
				if _, err := tr.Insert(tup); err != nil {
					t.Fatal(err)
				}
			case op == 1:
				if _, _, err := tr.Delete(rng.Intn(n)); err != nil {
					t.Fatal(err)
				}
			default:
				v := relation.Const(string(rune('a' + rng.Intn(2))))
				if _, err := tr.Set(rng.Intn(n), rng.Intn(4), v); err != nil {
					t.Fatal(err)
				}
			}
			if got, want := tr.ViolatingPairs(), pairsByRescan(tr.Instance(), sigma); got != want {
				t.Fatalf("trial %d step %d: incremental %d ≠ rescan %d", trial, step, got, want)
			}
		}
	}
}
