package incremental

import (
	"math/rand"
	"testing"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/repair"
	"relatrust/internal/testkit"
)

// pairsByRescan recomputes the per-FD violating-pair total from scratch.
func pairsByRescan(in *relation.Instance, sigma fd.Set) int64 {
	return int64(len(sigma.Violations(in, 0)))
}

func TestTrackerInitialCount(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	tr := New(in.Clone(), sigma)
	if got, want := tr.ViolatingPairs(), pairsByRescan(in, sigma); got != want {
		t.Fatalf("initial pairs = %d, rescan = %d", got, want)
	}
	if tr.Satisfied() {
		t.Error("paper example is not satisfied")
	}
	per := tr.PairsPerFD()
	if len(per) != 2 || per[0]+per[1] != tr.ViolatingPairs() {
		t.Errorf("per-FD split inconsistent: %v", per)
	}
}

func TestTrackerSetRepairsViolation(t *testing.T) {
	in := testkit.Build([]string{"A", "B"}, [][]string{
		{"1", "x"}, {"1", "y"},
	})
	sigma := fd.MustParseSet(in.Schema, "A->B")
	tr := New(in.Clone(), sigma)
	if tr.ViolatingPairs() != 1 {
		t.Fatalf("pairs = %d", tr.ViolatingPairs())
	}
	delta, err := tr.Set(1, 1, relation.Const("x"))
	if err != nil {
		t.Fatal(err)
	}
	if delta != -1 || !tr.Satisfied() {
		t.Fatalf("delta = %d, satisfied = %v", delta, tr.Satisfied())
	}
	// Breaking it again.
	delta, _ = tr.Set(0, 1, relation.Const("z"))
	if delta != 1 || tr.Satisfied() {
		t.Fatalf("delta = %d after corruption", delta)
	}
}

func TestTrackerNoOpAndErrors(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	tr := New(in.Clone(), sigma)
	if d, err := tr.Set(0, 0, relation.Const("1")); err != nil || d != 0 {
		t.Errorf("no-op write: d=%d err=%v", d, err)
	}
	if _, err := tr.Set(99, 0, relation.Const("x")); err == nil {
		t.Error("tuple out of range must fail")
	}
	if _, err := tr.Set(0, 99, relation.Const("x")); err == nil {
		t.Error("attr out of range must fail")
	}
}

// TestTrackerMatchesRescanUnderRandomEdits is the load-bearing property:
// after every random single-cell edit, the incremental count equals a
// from-scratch rescan.
func TestTrackerMatchesRescanUnderRandomEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 15; trial++ {
		in := testkit.RandomInstance(rng, 12, 4, 2)
		sigma := testkit.RandomFDs(rng, 4, 2, 2)
		tr := New(in.Clone(), sigma)
		var vg relation.VarGen
		for step := 0; step < 60; step++ {
			ti := rng.Intn(tr.Instance().N())
			a := rng.Intn(4)
			var v relation.Value
			if rng.Intn(4) == 0 {
				v = vg.Fresh()
			} else {
				v = relation.Const(string(rune('a' + rng.Intn(3))))
			}
			if _, err := tr.Set(ti, a, v); err != nil {
				t.Fatal(err)
			}
			if got, want := tr.ViolatingPairs(), pairsByRescan(tr.Instance(), sigma); got != want {
				t.Fatalf("trial %d step %d: incremental %d ≠ rescan %d", trial, step, got, want)
			}
		}
	}
}

// TestTrackerApplyRepair: replaying a produced repair drives the tracker
// to zero violations.
func TestTrackerApplyRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	in := testkit.RandomInstance(rng, 15, 4, 2)
	sigma := testkit.RandomFDs(rng, 4, 2, 2)
	rep, err := repair.RepairData(in, sigma, nil, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(in.Clone(), sigma)
	deltas, err := tr.ApplyRepair(rep.Changed, rep.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != rep.NumChanges() {
		t.Errorf("deltas = %d, changes = %d", len(deltas), rep.NumChanges())
	}
	if !tr.Satisfied() {
		t.Fatalf("tracker still sees %d violating pairs after replaying the repair", tr.ViolatingPairs())
	}
}
