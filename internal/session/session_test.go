package session

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"relatrust/internal/conflict"
	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/testkit"
)

// queryFingerprint renders every query surface of an analysis under a few
// extension vectors into one string, so "byte-identical to conflict.New"
// is a single comparison: cover sizes and sorted covers, matching sizes,
// the permanent matching, difference sets with their edge lists, the exact
// edge count, and the violating-tuple count.
func queryFingerprint(a *conflict.Analysis, exts [][]relation.AttrSet) string {
	out := fmt.Sprintf("viol=%d permmatch=%d edges=%d\n",
		a.ViolatingTuples(), a.PermanentMatching(), a.EdgeCountExact())
	for _, ext := range exts {
		out += fmt.Sprintf("ext=%v cover=%v size=%d match=%d\n",
			ext, a.Cover(ext), a.CoverSize(ext), a.MatchingSize(ext))
	}
	for _, d := range a.DiffSets(10) {
		out += fmt.Sprintf("ds=%v edges=%v\n", d.Attrs, d.Edges)
	}
	for _, e := range a.MatchingEdgeSample(50) {
		out += fmt.Sprintf("me=%v\n", e)
	}
	return out
}

// extVectors builds a deterministic set of extension vectors for sigma:
// nil, one appended attribute, and a heavier mixed vector.
func extVectors(rng *rand.Rand, width int, sigma fd.Set) [][]relation.AttrSet {
	exts := [][]relation.AttrSet{nil}
	for k := 0; k < 3; k++ {
		ext := make([]relation.AttrSet, len(sigma))
		for i, f := range sigma {
			for tries := 0; tries < 2; tries++ {
				a := rng.Intn(width)
				if a != f.RHS {
					ext[i] = ext[i].Add(a)
				}
			}
		}
		exts = append(exts, ext)
	}
	return exts
}

// TestAcquireMatchesConflictNew: analyses acquired from a warm engine must
// answer every query byte-identically to a fresh conflict.New, across
// randomized instances and repeated Acquire/Release cycles (so the second
// and later acquisitions exercise recycled arenas and pooled scratch).
func TestAcquireMatchesConflictNew(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 40; trial++ {
		width := 3 + rng.Intn(3)
		in := testkit.RandomInstance(rng, 8+rng.Intn(24), width, 2)
		sigma := testkit.RandomFDs(rng, width, 1+rng.Intn(3), 2)
		exts := extVectors(rng, width, sigma)
		want := queryFingerprint(conflict.New(in, sigma), exts)

		eng := New(in)
		for cycle := 0; cycle < 4; cycle++ {
			a := eng.Acquire(sigma)
			if got := queryFingerprint(a, exts); got != want {
				t.Fatalf("trial %d cycle %d: warm-arena analysis diverges from conflict.New\nwant:\n%s\ngot:\n%s",
					trial, cycle, want, got)
			}
			eng.Release(a)
		}
		if st := eng.Stats(); st.Builds != 1 || st.Acquires != 4 {
			t.Fatalf("trial %d: stats %+v, want 1 build / 4 acquires", trial, eng.Stats())
		}
	}
}

// TestConcurrentAcquireRelease interleaves Acquire/Release across
// goroutines on one engine — including the very first acquisitions, so
// root construction races with concurrent acquirers — and asserts every
// goroutine sees byte-identical results. Run under -race in CI.
func TestConcurrentAcquireRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 8; trial++ {
		width := 4 + rng.Intn(2)
		in := testkit.RandomInstance(rng, 20+rng.Intn(20), width, 2)
		sigmas := []fd.Set{
			testkit.RandomFDs(rng, width, 2, 2),
			testkit.RandomFDs(rng, width, 1, 2),
		}
		exts := make([][][]relation.AttrSet, len(sigmas))
		wants := make([]string, len(sigmas))
		for i, sigma := range sigmas {
			exts[i] = extVectors(rng, width, sigma)
			wants[i] = queryFingerprint(conflict.New(in, sigma), exts[i])
		}

		eng := New(in)
		var wg sync.WaitGroup
		errs := make(chan error, 64)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for cycle := 0; cycle < 6; cycle++ {
					i := (g + cycle) % len(sigmas)
					a := eng.Acquire(sigmas[i])
					if got := queryFingerprint(a, exts[i]); got != wants[i] {
						errs <- fmt.Errorf("goroutine %d cycle %d: diverged on Σ%d", g, cycle, i)
						eng.Release(a)
						return
					}
					eng.Release(a)
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if st := eng.Stats(); st.Builds != int64(len(sigmas)) {
			t.Fatalf("trial %d: %d root builds for %d distinct FD sets", trial, st.Builds, len(sigmas))
		}
	}
}

// TestAcquireFiltered: keyed filtered acquisitions cache their root and
// answer identically to conflict.NewFiltered; an empty key builds fresh
// every time.
func TestAcquireFiltered(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	// Restrict each FD to tuples whose first cell is "1" / everything.
	filters := []func(relation.Tuple) bool{
		func(tp relation.Tuple) bool { return !tp[0].IsVar() && tp[0].Str() == "1" },
		nil,
	}
	want := queryFingerprint(conflict.NewFiltered(in, sigma, filters), [][]relation.AttrSet{nil})

	eng := New(in)
	for cycle := 0; cycle < 3; cycle++ {
		a := eng.AcquireFiltered(sigma, filters, "A=1")
		if got := queryFingerprint(a, [][]relation.AttrSet{nil}); got != want {
			t.Fatalf("cycle %d: filtered warm analysis diverges\nwant:\n%s\ngot:\n%s", cycle, want, got)
		}
		eng.Release(a)
	}
	if st := eng.Stats(); st.Builds != 1 {
		t.Fatalf("keyed filtered acquire built %d roots, want 1", st.Builds)
	}
	a := eng.AcquireFiltered(sigma, filters, "")
	if got := queryFingerprint(a, [][]relation.AttrSet{nil}); got != want {
		t.Fatalf("unkeyed filtered analysis diverges")
	}
	eng.Release(a)
	if st := eng.Stats(); st.Builds != 2 {
		t.Fatalf("empty-key acquire must build fresh (builds=%d, want 2)", st.Builds)
	}
}

// TestForRejectsForeignInstance: an engine bound to a different instance
// must be rejected, not silently used.
func TestForRejectsForeignInstance(t *testing.T) {
	in1, _ := testkit.Paper4x4()
	in2, _ := testkit.Paper4x4()
	eng := New(in1)
	if _, err := For(eng, in2); err == nil {
		t.Fatal("For accepted an engine bound to a different instance")
	}
	if got, err := For(eng, in1); err != nil || got != eng {
		t.Fatalf("For(eng, same instance) = %v, %v", got, err)
	}
	if got, err := For(nil, in2); err != nil || got == nil || got.In != in2 {
		t.Fatalf("For(nil) must mint a fresh engine, got %v, %v", got, err)
	}
}

// TestWarmAcquireWithCoverCache: a fork that had the partition cache
// enabled, was released, and is re-acquired must still answer cover
// queries identically — Release drops the cache, so no snapshot ever
// leaks across Acquire cycles and each cycle re-opts-in.
func TestWarmAcquireWithCoverCache(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	in := testkit.RandomInstance(rng, 30, 5, 2)
	sigma := testkit.RandomFDs(rng, 5, 2, 2)
	exts := extVectors(rng, 5, sigma)
	want := queryFingerprint(conflict.New(in, sigma), exts)

	eng := New(in)
	for cycle := 0; cycle < 4; cycle++ {
		a := eng.Acquire(sigma)
		a.EnableCoverCache()
		// Query twice so the second pass is served from the cache.
		for rep := 0; rep < 2; rep++ {
			if got := queryFingerprint(a, exts); got != want {
				t.Fatalf("cycle %d rep %d: cached queries diverge from conflict.New", cycle, rep)
			}
		}
		if st := a.CoverStats(); cycle > 0 && st.Hits == 0 {
			t.Fatalf("cycle %d: no cache hits despite repeated identical queries (stats %+v)", cycle, st)
		}
		eng.Release(a)
	}
}
