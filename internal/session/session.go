// Package session provides the shared repair-session engine: the single
// construction path for conflict analyses across the repair, baseline, cfd
// and search layers.
//
// The repair system repeatedly re-analyzes the *same* instance under the
// same Σ — per τ in Sampling-Repair, per cost ratio in the uniform-cost
// baseline sweep, per facade call in a CLI run. Building a fresh
// conflict.Analysis each time pays the full cluster construction
// (O(|Σ|·n) work and ~dozens of allocations for arenas and scratch) for
// state that is immutable after New. An Engine builds one root analysis
// per distinct FD set and serves every subsequent request a Fork of it:
// forks share the instance, its dictionary-code columns and the cluster
// arenas, own private cover scratch, and are recycled through the root's
// fork pool on Release — so a warm Acquire/Release cycle allocates
// nothing.
//
// # Ownership and lifecycle
//
// An Engine is bound to one relation.Instance, which must not be mutated
// while the engine is in use (the cached roots alias its tuples and code
// columns; this is the same contract conflict.New already imposes, now
// held for the engine's lifetime). Roots are cached forever — an engine's
// memory is proportional to the number of distinct FD sets analyzed
// through it, which in practice is one or two.
//
// Acquire and Release are safe for concurrent use: the root map is
// mutex-guarded (the first acquirer of a set builds the root while
// concurrent acquirers of the same set wait, then fork), and forking and
// releasing go through the root's sync.Pool. Each *acquired analysis* is
// single-goroutine, exactly like one obtained from conflict.New; after
// Release the caller must not touch it — the scratch is handed to the next
// Acquire, and any enabled partition cache is dropped so no snapshot,
// memory profile, or counter leaks from one owner to the next (see
// conflict.EnableCoverCache).
package session

import (
	"fmt"
	"sync"

	"relatrust/internal/components"
	"relatrust/internal/conflict"
	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// Engine owns one instance and the cached root analyses built against it.
type Engine struct {
	// In is the analyzed instance. It must not be mutated while the
	// engine is in use.
	In *relation.Instance

	// generation identifies which version of a live dataset this engine is
	// bound to. Engines are immutable in this respect: a mutation batch
	// builds a NEW engine over the new instance (seeded with spliced roots
	// via NewSeeded), so every analysis an engine ever hands out — including
	// re-acquires during an in-flight sweep's materialization — answers for
	// one consistent snapshot. 0 for engines outside the live tier.
	generation int64

	mu       sync.Mutex
	roots    []rootEntry
	acquires int64
	builds   int64

	// parts caches stripped partitions for FD discovery over this
	// engine's instance, built lazily on first use. Like the roots, it
	// answers for exactly one snapshot: a live-dataset mutation builds a
	// new engine and therefore a fresh, empty store.
	parts *relation.PartitionStore
}

// rootEntry is one cached root: identified by its FD set (compared
// element-wise, so the warm Acquire path allocates nothing) plus, for
// filtered analyses, the caller-supplied filter key. An engine typically
// holds one or two roots, so a linear scan beats any keyed structure.
type rootEntry struct {
	sigma     fd.Set
	filterKey string
	root      *conflict.Analysis
	// decomp is the root's conflict-hypergraph component evaluator, built
	// on first request (see CoverEvaluator) and shared by every searcher
	// over this root — so repeated sweeps skip the Decompose pass and
	// share one per-component memo.
	decomp *components.Evaluator
}

// New returns an engine over the instance.
func New(in *relation.Instance) *Engine {
	return &Engine{In: in}
}

// NewAt returns an engine over the instance pinned to a mutation
// generation (see Generation).
func NewAt(in *relation.Instance, generation int64) *Engine {
	return &Engine{In: in, generation: generation}
}

// Generation returns the mutation generation the engine's instance
// represents; 0 outside the live tier.
func (e *Engine) Generation() int64 { return e.generation }

// Root is one exported unfiltered root: the FD set it answers for, its
// root analysis, and its component evaluator (nil if never requested).
// The live tier exports a generation's roots, splices their clusters and
// evaluators against a mutation batch, and seeds the next generation's
// engine with the results.
type Root struct {
	Sigma     fd.Set
	Analysis  *conflict.Analysis
	Evaluator *components.Evaluator
}

// ExportRoots returns the engine's unfiltered roots. Filtered (CFD) roots
// are omitted — their filters are opaque, so a successor engine rebuilds
// them on demand. The returned analyses and evaluators are the cached
// originals: callers must treat them as read-only.
func (e *Engine) ExportRoots() []Root {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Root
	for i := range e.roots {
		r := &e.roots[i]
		if r.filterKey == "" {
			out = append(out, Root{Sigma: r.sigma, Analysis: r.root, Evaluator: r.decomp})
		}
	}
	return out
}

// NewSeeded returns an engine over the instance at the given generation
// whose root cache is pre-populated: each seed's analysis (and evaluator,
// when non-nil) is installed as the cached root for its FD set, exactly as
// if the engine had built it. Seeds must be built over the same instance.
func NewSeeded(in *relation.Instance, generation int64, seeds []Root) *Engine {
	e := &Engine{In: in, generation: generation}
	for _, s := range seeds {
		e.roots = append(e.roots, rootEntry{
			sigma:  s.Sigma.Clone(),
			root:   s.Analysis,
			decomp: s.Evaluator,
		})
	}
	return e
}

// For returns eng unchanged when non-nil, or a fresh single-use engine
// over the instance — the idiom of entry points whose configuration makes
// the shared engine optional. A non-nil engine must have been built over
// the same instance; the mismatch is reported as an error because a cached
// root of a different instance would silently answer every query about the
// wrong data.
func For(eng *Engine, in *relation.Instance) (*Engine, error) {
	if eng == nil {
		return New(in), nil
	}
	if eng.In != in {
		return nil, fmt.Errorf("session: engine is bound to a different instance")
	}
	return eng, nil
}

// Acquire returns an analysis of the engine's instance against sigma,
// forked from a root built once per distinct FD set. The caller owns the
// returned analysis until Release; it answers exactly the queries — with
// byte-identical results — of conflict.New(e.In, sigma). A warm Acquire
// (root cached, fork pool non-empty) allocates nothing.
func (e *Engine) Acquire(sigma fd.Set) *conflict.Analysis {
	return e.acquire(sigma, "", func() *conflict.Analysis {
		return conflict.New(e.In, sigma)
	})
}

// AcquireFiltered is Acquire for filtered analyses (conditional
// constraints restrict each FD to its pattern-matching tuples). Filters
// are opaque functions, so the caller must supply the non-empty cache key
// that identifies their semantics — for CFDs, a rendering of the full set
// including patterns. An empty key disables root caching: the analysis is
// built fresh (still through the engine, so construction stays on the one
// path), and Release simply retires it.
func (e *Engine) AcquireFiltered(sigma fd.Set, filters []func(relation.Tuple) bool, key string) *conflict.Analysis {
	build := func() *conflict.Analysis { return conflict.NewFiltered(e.In, sigma, filters) }
	if key == "" {
		e.mu.Lock()
		e.acquires++
		e.builds++
		e.mu.Unlock()
		return build()
	}
	return e.acquire(sigma, key, build)
}

// acquire returns a fork of the root cached under (sigma, filterKey),
// building the root on first use. Concurrent acquirers of the same set
// wait for the first build, then fork it.
func (e *Engine) acquire(sigma fd.Set, filterKey string, build func() *conflict.Analysis) *conflict.Analysis {
	e.mu.Lock()
	e.acquires++
	var root *conflict.Analysis
	for i := range e.roots {
		r := &e.roots[i]
		if r.filterKey == filterKey && r.sigma.Equal(sigma) {
			root = r.root
			break
		}
	}
	if root == nil {
		e.builds++
		root = build()
		e.roots = append(e.roots, rootEntry{sigma: sigma.Clone(), filterKey: filterKey, root: root})
	}
	e.mu.Unlock()
	return root.Fork()
}

// CoverEvaluator returns the component evaluator of the unfiltered root
// for sigma, building the root and the decomposition on first use. The
// evaluator is shared: it is safe for any number of concurrent searchers,
// each running queries against its own acquired fork of the same root.
// Building under the engine mutex mirrors Acquire — concurrent requesters
// of the same set wait for the first decomposition, then share it.
func (e *Engine) CoverEvaluator(sigma fd.Set) *components.Evaluator {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.roots {
		r := &e.roots[i]
		if r.filterKey == "" && r.sigma.Equal(sigma) {
			if r.decomp == nil {
				r.decomp = components.NewEvaluator(r.root)
			}
			return r.decomp
		}
	}
	e.builds++
	root := conflict.New(e.In, sigma)
	e.roots = append(e.roots, rootEntry{
		sigma:  sigma.Clone(),
		root:   root,
		decomp: components.NewEvaluator(root),
	})
	return e.roots[len(e.roots)-1].decomp
}

// Release returns an acquired analysis to its root's pool for reuse by a
// later Acquire. The caller must not use the analysis afterwards. A nil
// analysis is ignored.
func (e *Engine) Release(a *conflict.Analysis) {
	if a != nil {
		a.Release()
	}
}

// Partitions returns the engine's shared stripped-partition store,
// creating it on first use. Discovery runs over the same session reuse
// each other's partitions (level-1 partitions in particular survive
// level-wise eviction); the store answers for this engine's snapshot
// only, so cross-generation reuse never happens.
func (e *Engine) Partitions() *relation.PartitionStore {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.parts == nil {
		e.parts = relation.NewPartitionStore()
	}
	return e.parts
}

// Stats reports engine effort: how many analyses were handed out and how
// many required a from-scratch cluster build. Acquires−Builds is the
// number of constructions the engine avoided.
type Stats struct {
	Acquires int64
	Builds   int64
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{Acquires: e.acquires, Builds: e.builds}
}
