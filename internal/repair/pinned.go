package repair

import (
	"fmt"
	"math/rand"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/session"
)

// RepairDataPinned is Repair_Data under hard constraints in the spirit of
// the paper's reference [3] ("… under hard constraints"): cells in pinned
// must keep their values — they are user-verified ground truth. The
// algorithm seeds each rewritten tuple's Fixed_Attrs with its pinned
// attributes, so the chase never overwrites them; if a violating tuple's
// pinned cells alone already contradict the clean part (no valid
// assignment exists even before any free attribute is fixed), the repair
// is infeasible and an error identifies the tuple.
//
// Pinning also constrains the vertex cover: a conflict edge between two
// fully-pinned tuples cannot be repaired at all.
//
// A non-nil eng shares its warm conflict-analysis arenas for the cover
// computation (it must be bound to in); nil uses a private engine.
func RepairDataPinned(in *relation.Instance, sigma fd.Set, pinned map[relation.CellRef]bool, seed int64, eng *session.Engine) (*DataRepair, error) {
	eng, err := session.For(eng, in)
	if err != nil {
		return nil, fmt.Errorf("repair: %w", err)
	}
	an := eng.Acquire(sigma)
	hasPin := make(map[int32]bool)
	for c := range pinned {
		if pinned[c] {
			hasPin[int32(c.Tuple)] = true
		}
	}
	cover := an.CoverAvoiding(nil, func(t int32) bool { return hasPin[t] })
	eng.Release(an)
	out := in.Clone()
	rng := rand.New(rand.NewSource(seed))
	var vg relation.VarGen

	inCover := make(map[int32]bool, len(cover))
	for _, t := range cover {
		inCover[t] = true
	}
	ci := newCleanIndex(out, sigma, inCover)

	pinnedAttrsOf := func(ti int32) relation.AttrSet {
		var s relation.AttrSet
		for a := 0; a < in.Schema.Width(); a++ {
			if pinned[relation.CellRef{Tuple: int(ti), Attr: a}] {
				s = s.Add(a)
			}
		}
		return s
	}

	order := append([]int32(nil), cover...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	width := in.Schema.Width()
	var changed []relation.CellRef
	for _, ti := range order {
		t := out.Tuples[ti]
		pin := pinnedAttrsOf(ti)
		attrs := rng.Perm(width)

		fixed := pin
		if fixed.IsEmpty() {
			fixed = relation.NewAttrSet(attrs[0])
		}
		tc, ok := ci.findAssignment(t, fixed, &vg)
		if !ok {
			return nil, fmt.Errorf("repair: tuple %d cannot be repaired: its pinned cells %s conflict with the clean part of the instance",
				ti, pin)
		}
		for _, a := range attrs {
			if fixed.Contains(a) {
				continue
			}
			fixed = fixed.Add(a)
			if tc2, ok := ci.findAssignment(t, fixed, &vg); ok {
				tc = tc2
				continue
			}
			if !t[a].Equal(tc[a]) {
				t[a] = tc[a]
				changed = append(changed, relation.CellRef{Tuple: int(ti), Attr: a})
			}
		}
		ci.add(t)
	}
	out.InvalidateCodes() // the loop above rewrote cells in place
	if v := sigma.FirstViolation(out); v != nil {
		return nil, fmt.Errorf("repair: instance still violates %s between tuples %d and %d after pinned repair",
			sigma[v.FD], v.T1, v.T2)
	}
	return &DataRepair{Instance: out, Changed: changed, Cover: cover}, nil
}
