package repair

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/search"
	"relatrust/internal/session"
)

// RunSamplingParallel is the parallel form of the Sampling-Repair baseline
// that Section 7 of the paper notes is trivial ("this can be easily
// parallelized, but may be inefficient"): one worker per τ sample. The
// workers share one session engine — the first session builds the
// conflict clusters, every later Acquire forks them with private scratch —
// so the per-τ sessions pay the analysis once instead of once per τ.
// Results are deduplicated by FD modification and returned in
// descending-τ order, matching RunSampling's output for the same τ list.
// workers ≤ 0 selects GOMAXPROCS.
//
// Cancelling ctx stops feeding τ levels to the workers and cancels the
// per-τ searches already running; the workers are always drained before
// the call returns (with context.Cause(ctx)), so no goroutine outlives it
// and every session is closed back to the shared engine.
func RunSamplingParallel(ctx context.Context, in *relation.Instance, sigma fd.Set, taus []int, cfg Config, workers int) ([]*Repair, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(taus) {
		workers = len(taus)
	}
	if workers == 0 {
		return nil, nil
	}
	eng, err := session.For(cfg.Engine, in)
	if err != nil {
		return nil, fmt.Errorf("repair: %w", err)
	}
	cfg.Engine = eng

	type slot struct {
		rep *Repair
		err error
	}
	results := make([]slot, len(taus))
	var wg sync.WaitGroup
	next := make(chan int)

	// runOne contains a panic from one τ sample in that sample's result
	// slot, so a poisoned input fails the call with a *search.PanicError
	// instead of crashing the process and taking sibling sweeps with it.
	runOne := func(i int) (out slot) {
		defer func() {
			if r := recover(); r != nil {
				out = slot{err: &search.PanicError{Value: r, Stack: debug.Stack()}}
			}
		}()
		s, err := NewSession(in, sigma, cfg)
		if err != nil {
			return slot{err: err}
		}
		r, err := s.Run(ctx, taus[i])
		s.Close()
		return slot{rep: r, err: err}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = runOne(i)
			}
		}()
	}
feed:
	for i := range taus {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}

	// Deduplicate in the caller's τ order, exactly like RunSampling.
	var out []*Repair
	seen := make(map[string]bool)
	for i, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("repair: sampling τ=%d: %w", taus[i], r.err)
		}
		if r.rep == nil {
			continue
		}
		key := r.rep.Ext.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, r.rep)
	}
	return out, nil
}

// SortRepairsByTrust orders repairs from "trust the FDs" to "trust the
// data": descending δP, ties broken by ascending FD cost. RunRange already
// returns this order; the helper normalizes merged or sampled result sets.
func SortRepairsByTrust(reps []*Repair) {
	sort.SliceStable(reps, func(i, j int) bool {
		if reps[i].DeltaP != reps[j].DeltaP {
			return reps[i].DeltaP > reps[j].DeltaP
		}
		return reps[i].FDCost < reps[j].FDCost
	})
}
