package repair

import (
	"fmt"
	"math/rand"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/session"
)

// RepairDataCellwise is the cell-by-cell repair variant in the style of
// the paper's reference [3] (Beskales et al., "Sampling the repairs of
// functional dependency violations", PVLDB 2010). Section 6 of the paper
// positions Algorithm 4 as a tuple-by-tuple variant of that algorithm;
// this implementation provides the original flavor as an ablation
// baseline: instead of sweeping every attribute of a dirty tuple, it
// chases only the cells that actually participate in a violation —
// setting the violated FD's RHS to the clean side's value, or, when that
// cell was already forced, breaking the LHS agreement with a fresh
// variable.
//
// It produces a valid repair (the output satisfies sigma) but, unlike
// Algorithm 4, carries no min{|R|−1, |Σ|} per-tuple change bound — the
// trade-off the paper's design sidesteps, measurable with the ablation
// benchmarks. A non-nil eng shares its warm conflict-analysis arenas for
// the cover computation (it must be bound to in); nil uses a private one.
func RepairDataCellwise(in *relation.Instance, sigma fd.Set, cover []int32, seed int64, eng *session.Engine) (*DataRepair, error) {
	if cover == nil {
		eng, err := session.For(eng, in)
		if err != nil {
			return nil, fmt.Errorf("repair: %w", err)
		}
		an := eng.Acquire(sigma)
		cover = an.Cover(nil)
		eng.Release(an)
	}
	out := in.Clone()
	rng := rand.New(rand.NewSource(seed))
	var vg relation.VarGen

	inCover := make(map[int32]bool, len(cover))
	for _, t := range cover {
		inCover[t] = true
	}
	ci := newCleanIndex(out, sigma, inCover)

	order := append([]int32(nil), cover...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	var changed []relation.CellRef
	for _, ti := range order {
		t := out.Tuples[ti]
		var forced relation.AttrSet // RHS cells already copied once
		steps := 0
		maxSteps := 2 * len(t) * (len(sigma) + 1)
		for {
			fi, v, found := ci.violation(t)
			if !found {
				break
			}
			if steps++; steps > maxSteps {
				return nil, fmt.Errorf("repair: cellwise chase did not converge on tuple %d", ti)
			}
			f := sigma[fi]
			if !forced.Contains(f.RHS) {
				// First resolution for this RHS: adopt the clean value.
				if !t[f.RHS].Equal(v) {
					t[f.RHS] = v
					changed = append(changed, relation.CellRef{Tuple: int(ti), Attr: f.RHS})
				}
				forced = forced.Add(f.RHS)
				continue
			}
			// The RHS was already forced by another group or FD; break
			// the LHS agreement instead, choosing a random LHS cell.
			attrs := f.LHS.Attrs()
			b := attrs[rng.Intn(len(attrs))]
			t[b] = vg.Fresh()
			changed = append(changed, relation.CellRef{Tuple: int(ti), Attr: b})
		}
		ci.add(t)
	}
	out.InvalidateCodes() // the loop above rewrote cells in place
	if v := sigma.FirstViolation(out); v != nil {
		return nil, fmt.Errorf("repair: cellwise repair left a violation of %s between tuples %d and %d",
			sigma[v.FD], v.T1, v.T2)
	}
	return &DataRepair{Instance: out, Changed: dedupCells(changed), Cover: cover}, nil
}

// dedupCells collapses repeated writes to one cell (the chase may force
// the same RHS twice through different FDs) so NumChanges matches
// |Δd(I, I′)|. The first occurrence's position is kept.
func dedupCells(cells []relation.CellRef) []relation.CellRef {
	seen := make(map[relation.CellRef]bool, len(cells))
	out := cells[:0]
	for _, c := range cells {
		if seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	return out
}
