package repair

import (
	"math/rand"
	"testing"

	"relatrust/internal/conflict"
	"relatrust/internal/fd"
	"relatrust/internal/testkit"
)

func TestRepairDataPaperExample(t *testing.T) {
	// Figure 6: Σ' = {CA→B, C→D} on the 4×4 instance; C2opt = {t2};
	// the repair changes at most α·|C2opt| = 2 cells, all in t2.
	in, _ := testkit.Paper4x4()
	sigma := fd.MustParseSet(in.Schema, "C,A->B; C->D")
	rep, err := RepairData(in, sigma, nil, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sigma.SatisfiedBy(rep.Instance) {
		t.Fatal("repaired instance violates Σ'")
	}
	alpha := 2 // min{|R|-1, |Σ|} = min{3, 2}
	if rep.NumChanges() > alpha*len(rep.Cover) {
		t.Errorf("changes %d exceed α·|C2opt| = %d", rep.NumChanges(), alpha*len(rep.Cover))
	}
	for _, c := range rep.Changed {
		inCover := false
		for _, ti := range rep.Cover {
			if int(ti) == c.Tuple {
				inCover = true
			}
		}
		if !inCover {
			t.Errorf("cell %v changed outside the cover %v", c, rep.Cover)
		}
	}
}

func TestRepairDataProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 80; trial++ {
		width := 4 + rng.Intn(2)
		in := testkit.RandomInstance(rng, 8+rng.Intn(8), width, 2)
		sigma := testkit.RandomFDs(rng, width, 1+rng.Intn(2), 2)
		rep, err := RepairData(in, sigma, nil, int64(trial), nil)
		if err != nil {
			t.Fatalf("trial %d: %v\nΣ=%v\n%s", trial, err, sigma, in)
		}
		// (1) The output satisfies Σ'.
		if !sigma.SatisfiedBy(rep.Instance) {
			t.Fatalf("trial %d: repaired instance violates Σ'\nΣ=%v\nin:\n%s\nout:\n%s",
				trial, sigma, in, rep.Instance)
		}
		// (2) Tuple count unchanged; untouched tuples identical.
		if rep.Instance.N() != in.N() {
			t.Fatalf("trial %d: tuple count changed", trial)
		}
		// (3) Change bound per Theorem 3.
		alpha := width - 1
		if len(sigma) < alpha {
			alpha = len(sigma)
		}
		if rep.NumChanges() > alpha*len(rep.Cover) {
			t.Fatalf("trial %d: %d changes > α·|C2opt| = %d·%d",
				trial, rep.NumChanges(), alpha, len(rep.Cover))
		}
		// (4) Changed cells agree with DiffCells.
		diff, err := in.DiffCells(rep.Instance)
		if err != nil {
			t.Fatal(err)
		}
		if len(diff) != rep.NumChanges() {
			t.Fatalf("trial %d: DiffCells reports %d, Changed reports %d",
				trial, len(diff), rep.NumChanges())
		}
		// (5) Grounding the V-instance preserves satisfaction.
		if !sigma.SatisfiedBy(rep.Instance.Ground("fresh_")) {
			t.Fatalf("trial %d: grounded repair violates Σ'", trial)
		}
	}
}

func TestRepairDataPerTupleChangeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		width := 5
		in := testkit.RandomInstance(rng, 12, width, 2)
		sigma := testkit.RandomFDs(rng, width, 2, 2)
		rep, err := RepairData(in, sigma, nil, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		perTuple := map[int]int{}
		for _, c := range rep.Changed {
			perTuple[c.Tuple]++
		}
		bound := width - 1
		if len(sigma) < bound {
			bound = len(sigma)
		}
		for ti, n := range perTuple {
			if n > bound {
				t.Fatalf("trial %d: tuple %d changed %d cells > min{|R|-1,|Σ|} = %d",
					trial, ti, n, bound)
			}
		}
	}
}

func TestRepairDataWithSuppliedCover(t *testing.T) {
	in, _ := testkit.Paper4x4()
	sigma := fd.MustParseSet(in.Schema, "C,A->B; C->D")
	an := conflict.New(in, sigma)
	cover := an.Cover(nil)
	rep, err := RepairData(in, sigma, cover, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sigma.SatisfiedBy(rep.Instance) {
		t.Fatal("repair with supplied cover violates Σ'")
	}
	if len(rep.Cover) != len(cover) {
		t.Error("supplied cover not used")
	}
}

func TestRepairDataRejectsNonCover(t *testing.T) {
	in := testkit.Build([]string{"A", "B"}, [][]string{
		{"1", "x"}, {"1", "y"},
	})
	sigma := fd.MustParseSet(in.Schema, "A->B")
	// An empty "cover" cannot license a repair of a violated instance.
	if _, err := RepairData(in, sigma, []int32{}, 0, nil); err == nil {
		t.Error("non-cover must be rejected")
	}
}

func TestRepairDataDeterministicPerSeed(t *testing.T) {
	in, _ := testkit.Paper4x4()
	sigma := fd.MustParseSet(in.Schema, "A->B; C->D")
	a, err := RepairData(in, sigma, nil, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RepairData(in, sigma, nil, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumChanges() != b.NumChanges() {
		t.Error("same seed must give the same repair size")
	}
	for i := range a.Changed {
		if a.Changed[i] != b.Changed[i] {
			t.Error("same seed must change the same cells")
		}
	}
}

func TestRepairDataSatisfiedInputUntouched(t *testing.T) {
	in := testkit.Build([]string{"A", "B"}, [][]string{
		{"1", "x"}, {"2", "y"},
	})
	sigma := fd.MustParseSet(in.Schema, "A->B")
	rep, err := RepairData(in, sigma, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumChanges() != 0 {
		t.Errorf("satisfied input was changed: %v", rep.Changed)
	}
}

func TestRepairDataUsesVariablesOnlyWhenFree(t *testing.T) {
	// Repairing A->B where the violating tuple's partner fixes the value:
	// the repaired cell should become either the partner's B or a fresh
	// variable; both satisfy Σ'. Just assert V-instance semantics hold.
	in := testkit.Build([]string{"A", "B", "C"}, [][]string{
		{"1", "x", "c1"}, {"1", "y", "c2"}, {"2", "z", "c3"},
	})
	sigma := fd.MustParseSet(in.Schema, "A->B")
	rep, err := RepairData(in, sigma, nil, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sigma.SatisfiedBy(rep.Instance) {
		t.Fatal("violates after repair")
	}
	if rep.NumChanges() > 1 {
		t.Errorf("one violating pair needs at most 1 change, got %d", rep.NumChanges())
	}
}

// TestRepairDataStressLarger runs a bigger randomized round to shake out
// index-maintenance bugs (clean-set index updated as tuples are fixed).
func TestRepairDataStressLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	in := testkit.RandomInstance(rng, 400, 6, 3)
	sigma := testkit.RandomFDs(rng, 6, 3, 2)
	rep, err := RepairData(in, sigma, nil, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sigma.SatisfiedBy(rep.Instance) {
		t.Fatal("large repair violates Σ'")
	}
	alpha := 3
	if rep.NumChanges() > alpha*len(rep.Cover) {
		t.Errorf("changes %d exceed bound %d", rep.NumChanges(), alpha*len(rep.Cover))
	}
}
