package repair

import (
	"math/rand"
	"testing"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/testkit"
)

func TestPinnedCellsAreNeverChanged(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		width := 4
		in := testkit.RandomInstance(rng, 12, width, 2)
		sigma := testkit.RandomFDs(rng, width, 1, 2)
		// Pin a random sample of cells.
		pinned := map[relation.CellRef]bool{}
		for i := 0; i < 6; i++ {
			pinned[relation.CellRef{Tuple: rng.Intn(12), Attr: rng.Intn(width)}] = true
		}
		rep, err := RepairDataPinned(in, sigma, pinned, int64(trial), nil)
		if err != nil {
			continue // infeasible pinnings are legitimate
		}
		if !sigma.SatisfiedBy(rep.Instance) {
			t.Fatalf("trial %d: pinned repair violates Σ", trial)
		}
		for _, c := range rep.Changed {
			if pinned[c] {
				t.Fatalf("trial %d: pinned cell %v was changed", trial, c)
			}
		}
	}
}

func TestPinnedForcesAlternativeRepair(t *testing.T) {
	// A->B violated by (t0, t1). Pinning every cell of t1 forces the
	// repair to touch only t0 — wherever the cover put the pair.
	in := testkit.Build([]string{"A", "B", "C"}, [][]string{
		{"1", "x", "c0"},
		{"1", "y", "c1"},
		{"2", "z", "c2"},
	})
	sigma := fd.MustParseSet(in.Schema, "A->B")
	pinned := map[relation.CellRef]bool{}
	for a := 0; a < 3; a++ {
		pinned[relation.CellRef{Tuple: 1, Attr: a}] = true
	}
	rep, err := RepairDataPinned(in, sigma, pinned, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sigma.SatisfiedBy(rep.Instance) {
		t.Fatal("violates Σ")
	}
	for _, c := range rep.Changed {
		if c.Tuple == 1 {
			t.Fatalf("pinned tuple was modified: %v", c)
		}
	}
}

func TestPinnedInfeasibleDetected(t *testing.T) {
	// Both tuples fully pinned and in conflict: must error, not loop.
	in := testkit.Build([]string{"A", "B"}, [][]string{
		{"1", "x"}, {"1", "y"},
	})
	sigma := fd.MustParseSet(in.Schema, "A->B")
	pinned := map[relation.CellRef]bool{}
	for ti := 0; ti < 2; ti++ {
		for a := 0; a < 2; a++ {
			pinned[relation.CellRef{Tuple: ti, Attr: a}] = true
		}
	}
	if _, err := RepairDataPinned(in, sigma, pinned, 0, nil); err == nil {
		t.Fatal("fully-pinned conflicting pair must be infeasible")
	}
}

func TestPinnedNoPinsEquivalentToPlainRepair(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	rep, err := RepairDataPinned(in, sigma, nil, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sigma.SatisfiedBy(rep.Instance) {
		t.Fatal("violates Σ")
	}
	alpha := 2
	if rep.NumChanges() > alpha*len(rep.Cover) {
		t.Errorf("unpinned run exceeds the usual bound: %d > %d", rep.NumChanges(), alpha*len(rep.Cover))
	}
}
