package repair

import (
	"context"
	"math/rand"
	"testing"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/search"
	"relatrust/internal/testkit"
	"relatrust/internal/weights"
)

func TestRunPaperExample(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	s, err := NewSession(in, sigma, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("no repair at τ=2")
	}
	if rep.FDCost != 1 {
		t.Errorf("dist_c = %v, want 1", rep.FDCost)
	}
	if rep.Data.NumChanges() > 2 {
		t.Errorf("cell changes %d exceed τ=2", rep.Data.NumChanges())
	}
	if !rep.Sigma.SatisfiedBy(rep.Data.Instance) {
		t.Error("I' must satisfy Σ'")
	}
	if len(rep.String()) == 0 {
		t.Error("empty String")
	}
}

// TestRunRespectsTau: for every τ, the materialized repair never changes
// more than τ cells — Theorem 2's guarantee carried through δP.
func TestRunRespectsTau(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		width := 4 + rng.Intn(2)
		in := testkit.RandomInstance(rng, 10+rng.Intn(8), width, 2)
		sigma := testkit.RandomFDs(rng, width, 1+rng.Intn(2), 2)
		s, err := NewSession(in, sigma, Config{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		dp := s.DeltaPOriginal()
		for _, tau := range []int{0, dp / 3, dp} {
			rep, err := s.Run(context.Background(), tau)
			if err != nil {
				t.Fatal(err)
			}
			if rep == nil {
				continue
			}
			if rep.Data.NumChanges() > tau {
				t.Fatalf("trial %d: %d cell changes > τ=%d (δP=%d)\nΣ=%v",
					trial, rep.Data.NumChanges(), tau, rep.DeltaP, sigma)
			}
			if !rep.Sigma.SatisfiedBy(rep.Data.Instance) {
				t.Fatalf("trial %d: I' violates Σ'", trial)
			}
			if !rep.Sigma.IsRelaxationOf(sigma) {
				t.Fatalf("trial %d: Σ' = %v is not a relaxation of Σ = %v", trial, rep.Sigma, sigma)
			}
		}
	}
}

// TestRunRangeParetoFrontier: repairs across the trust range must be
// mutually non-dominated in (dist_c, cell changes).
func TestRunRangeParetoFrontier(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	s, err := NewSession(in, sigma, Config{})
	if err != nil {
		t.Fatal(err)
	}
	reps, err := s.RunRange(context.Background(), 0, s.DeltaPOriginal())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) < 2 {
		t.Fatalf("spectrum too small: %d", len(reps))
	}
	for i := range reps {
		for j := range reps {
			if i == j {
				continue
			}
			a, b := reps[i], reps[j]
			if a.FDCost <= b.FDCost && a.DeltaP <= b.DeltaP &&
				(a.FDCost < b.FDCost || a.DeltaP < b.DeltaP) {
				t.Errorf("repair %d (cost %v, δP %d) dominates repair %d (cost %v, δP %d)",
					i, a.FDCost, a.DeltaP, j, b.FDCost, b.DeltaP)
			}
		}
	}
}

// TestRangeAndSamplingAgree: Range-Repair and Sampling-Repair must produce
// the same set of FD repairs when sampling covers every τ.
func TestRangeAndSamplingAgree(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	s, err := NewSession(in, sigma, Config{})
	if err != nil {
		t.Fatal(err)
	}
	dp := s.DeltaPOriginal()
	ranged, err := s.RunRange(context.Background(), 0, dp)
	if err != nil {
		t.Fatal(err)
	}
	taus := make([]int, 0, dp+1)
	for tau := dp; tau >= 0; tau-- {
		taus = append(taus, tau)
	}
	sampled, err := RunSampling(context.Background(), in, sigma, taus, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranged) != len(sampled) {
		t.Fatalf("range found %d repairs, sampling found %d", len(ranged), len(sampled))
	}
	for i := range ranged {
		if ranged[i].Ext.Key() != sampled[i].Ext.Key() {
			t.Errorf("repair %d differs: range %s vs sampling %s",
				i, ranged[i].Ext, sampled[i].Ext)
		}
	}
}

func TestSessionValidation(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	if _, err := NewSession(in, fd.Set{}, Config{}); err == nil {
		t.Error("empty Σ must be rejected")
	}
	if _, err := NewSession(relation.NewInstance(in.Schema), sigma, Config{}); err == nil {
		t.Error("empty instance must be rejected")
	}
	bad := fd.Set{fd.MustNew(relation.NewAttrSet(10), 11)}
	if _, err := NewSession(in, bad, Config{}); err == nil {
		t.Error("out-of-schema FD must be rejected")
	}
}

func TestTauFromRelative(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	s, err := NewSession(in, sigma, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TauFromRelative(1.0); got != s.DeltaPOriginal() {
		t.Errorf("τr=100%% → %d, want δP=%d", got, s.DeltaPOriginal())
	}
	if got := s.TauFromRelative(0); got != 0 {
		t.Errorf("τr=0 → %d, want 0", got)
	}
	if got := s.TauFromRelative(-0.5); got != 0 {
		t.Errorf("negative τr → %d, want 0", got)
	}
}

func TestRunOneShotWrapper(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	rep, err := Run(context.Background(), in, sigma, 100, Config{Weights: weights.AttrCount{}})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.FDCost != 0 {
		t.Fatalf("large τ should give the zero-cost repair, got %+v", rep)
	}
}

func TestBestFirstConfig(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	s, err := NewSession(in, sigma, Config{Search: search.Options{BestFirst: true}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.FDCost != 1 {
		t.Fatalf("best-first config broken: %+v", rep)
	}
}

// TestMinimalityAgainstBruteForce verifies the τ-constrained-repair
// property on random instances: no FD relaxation with δP ≤ τ is cheaper
// than the one returned (brute force over the whole extension lattice).
func TestMinimalityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		width := 4
		in := testkit.RandomInstance(rng, 8, width, 2)
		sigma := testkit.RandomFDs(rng, width, 1, 2)
		s, err := NewSession(in, sigma, Config{})
		if err != nil {
			t.Fatal(err)
		}
		dp := s.DeltaPOriginal()
		for _, tau := range []int{0, dp / 2} {
			rep, err := s.Run(context.Background(), tau)
			if err != nil {
				t.Fatal(err)
			}
			best := bruteForceBestCost(s, sigma, width, tau)
			if rep == nil {
				if best >= 0 {
					t.Fatalf("trial %d τ=%d: search says infeasible, brute force found cost %d", trial, tau, best)
				}
				continue
			}
			if int(rep.FDCost) != best {
				t.Fatalf("trial %d τ=%d: search cost %v, brute force %d\nΣ=%v\n%s",
					trial, tau, rep.FDCost, best, sigma, in)
			}
		}
	}
}

// bruteForceBestCost enumerates every extension vector and returns the
// minimum |ext| whose δP fits τ, or -1 if none.
func bruteForceBestCost(s *Session, sigma fd.Set, width, tau int) int {
	alpha := s.Searcher.Alpha()
	best := -1
	var walk func(st search.State, fi int)
	walk = func(st search.State, fi int) {
		if fi == len(sigma) {
			if s.Analysis.CoverSize(st)*alpha <= tau {
				cost := 0
				for _, y := range st {
					cost += y.Len()
				}
				if best < 0 || cost < best {
					best = cost
				}
			}
			return
		}
		free := relation.FullSet(width).Diff(sigma[fi].LHS).Remove(sigma[fi].RHS)
		attrs := free.Attrs()
		for mask := 0; mask < 1<<len(attrs); mask++ {
			var y relation.AttrSet
			for b, a := range attrs {
				if mask&(1<<b) != 0 {
					y = y.Add(a)
				}
			}
			st[fi] = y
			walk(st, fi+1)
		}
		st[fi] = 0
	}
	walk(search.Root(len(sigma)), 0)
	return best
}
