package repair

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"relatrust/internal/search"
	"relatrust/internal/session"
	"relatrust/internal/testkit"
	"relatrust/internal/weights"
)

// sameRepair compares the content of two suggestions — everything except
// Stats, which streaming deliberately snapshots mid-sweep.
func sameRepair(a, b *Repair) bool {
	if a.Tau != b.Tau || a.DeltaP != b.DeltaP || a.FDCost != b.FDCost ||
		!a.Sigma.Equal(b.Sigma) || a.Ext.Key() != b.Ext.Key() ||
		len(a.Data.Changed) != len(b.Data.Changed) {
		return false
	}
	for i := range a.Data.Changed {
		ca, cb := a.Data.Changed[i], b.Data.Changed[i]
		if ca != cb {
			return false
		}
		va := a.Data.Instance.Tuples[ca.Tuple][ca.Attr]
		vb := b.Data.Instance.Tuples[cb.Tuple][cb.Attr]
		if va.IsVar() != vb.IsVar() || (!va.IsVar() && !va.Equal(vb)) {
			return false
		}
	}
	return true
}

// TestStreamRangeMatchesRunRange pins the streaming facade's central
// guarantee at the repair layer: StreamRange yields repairs identical in
// content and order to the batch RunRange — same Σ′, extension vectors,
// τ bookkeeping, δP, and changed cells — on randomized instances, for the
// sequential and the parallel engine.
func TestStreamRangeMatchesRunRange(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 16; trial++ {
		width := 4 + rng.Intn(3)
		in := testkit.RandomInstance(rng, 10+rng.Intn(25), width, 2)
		sigma := testkit.RandomFDs(rng, width, 1+rng.Intn(2), 2)
		for _, workers := range []int{1, 4} {
			label := fmt.Sprintf("trial %d workers=%d", trial, workers)
			cfg := Config{Weights: weights.NewDistinctCount(in), Seed: int64(trial), Search: searchOpts(workers)}

			sb, err := NewSession(in, sigma, cfg)
			if err != nil {
				t.Fatal(err)
			}
			dp := sb.DeltaPOriginal()
			batch, err := sb.RunRange(context.Background(), 0, dp)
			sb.Close()
			if err != nil {
				t.Fatal(err)
			}

			ss, err := NewSession(in, sigma, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var streamed []*Repair
			err = ss.StreamRange(context.Background(), 0, dp, func(r *Repair) error {
				streamed = append(streamed, r)
				return nil
			})
			ss.Close()
			if err != nil {
				t.Fatal(err)
			}

			if len(batch) != len(streamed) {
				t.Fatalf("%s: batch %d repairs, stream %d", label, len(batch), len(streamed))
			}
			for i := range batch {
				if !sameRepair(batch[i], streamed[i]) {
					t.Fatalf("%s: repair %d diverges:\n batch  %v\n stream %v", label, i, batch[i], streamed[i])
				}
			}
		}
	}
}

// TestStreamRangeYieldErrorAborts: an error returned by yield stops the
// sweep and surfaces verbatim.
func TestStreamRangeYieldErrorAborts(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	s, err := NewSession(in, sigma, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	boom := errors.New("stop right there")
	err = s.StreamRange(context.Background(), 0, s.DeltaPOriginal(), func(*Repair) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the yield error", err)
	}
}

// TestStreamRangeCancel: cancelling from inside yield aborts with
// context.Canceled, and the session's engine still serves a correct
// follow-up sweep (pooled-fork hygiene after cancellation).
func TestStreamRangeCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	in := testkit.RandomInstance(rng, 40, 6, 2)
	sigma := testkit.RandomFDs(rng, 6, 2, 2)
	eng := session.New(in)

	for _, workers := range []int{1, 4} {
		cfg := Config{Weights: weights.NewDistinctCount(in), Engine: eng, Search: searchOpts(workers)}
		ref, err := RunSampling(context.Background(), in, sigma, []int{0, 2, 4}, cfg)
		if err != nil {
			t.Fatal(err)
		}

		s, err := NewSession(in, sigma, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		err = s.StreamRange(ctx, 0, s.DeltaPOriginal(), func(*Repair) error {
			cancel()
			return nil
		})
		s.Close()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}

		// The engine the cancelled session drew from must still produce
		// exactly the pre-cancel results.
		again, err := RunSampling(context.Background(), in, sigma, []int{0, 2, 4}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(ref) != len(again) {
			t.Fatalf("workers=%d: %d repairs after cancel, %d before", workers, len(again), len(ref))
		}
		for i := range ref {
			if !sameRepair(ref[i], again[i]) {
				t.Fatalf("workers=%d: repair %d diverges after a cancelled sweep", workers, i)
			}
		}
	}
}

// TestStreamRangeProgressEvents: a full sweep reports started, one
// finished event per repair (with monotonically growing visit counts),
// and a final sweep-finished event.
func TestStreamRangeProgressEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	in := testkit.RandomInstance(rng, 30, 5, 2)
	sigma := testkit.RandomFDs(rng, 5, 2, 2)

	var events []ProgressEvent
	cfg := Config{
		Weights:  weights.NewDistinctCount(in),
		Progress: func(ev ProgressEvent) { events = append(events, ev) },
	}
	s, err := NewSession(in, sigma, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var n int
	if err := s.StreamRange(context.Background(), 0, s.DeltaPOriginal(), func(*Repair) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0].Kind != ProgressSweepStarted {
		t.Fatalf("first event %+v, want sweep-started", events)
	}
	last := events[len(events)-1]
	if last.Kind != ProgressSweepFinished {
		t.Fatalf("last event %+v, want sweep-finished", last)
	}
	finished, visited := 0, 0
	for _, ev := range events {
		if ev.Kind != ProgressTauFinished {
			continue
		}
		finished++
		if ev.Repair == nil {
			t.Fatal("tau-finished event without its repair")
		}
		if ev.Visited < visited {
			t.Fatalf("visit counts regressed: %d after %d", ev.Visited, visited)
		}
		visited = ev.Visited
	}
	if finished != n {
		t.Fatalf("%d tau-finished events for %d yielded repairs", finished, n)
	}
	if last.Visited < visited {
		t.Fatalf("final stats %d below last snapshot %d", last.Visited, visited)
	}
}

// TestRunSamplingParallelCancel: cancellation drains the τ workers and
// reports context.Canceled.
func TestRunSamplingParallelCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	in := testkit.RandomInstance(rng, 30, 5, 2)
	sigma := testkit.RandomFDs(rng, 5, 2, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSamplingParallel(ctx, in, sigma, []int{0, 1, 2, 3, 4, 5}, Config{}, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// searchOpts pins the worker count while keeping every other knob default.
func searchOpts(workers int) search.Options { return search.Options{Workers: workers} }
