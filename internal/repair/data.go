// Package repair implements the paper's repair algorithms: Repair_Data_FDs
// (Algorithm 1), the tuple-by-tuple V-instance data repair Repair_Data
// (Algorithm 4) with Find_Assignment (Algorithm 5), and the multi-repair
// generators of Section 7 (Range-Repair, Algorithm 6, and the
// Sampling-Repair baseline).
//
// The entry points are context-first: the FD-modification searches honor
// cancellation (returning context.Cause), Session.StreamRange delivers
// Range-Repair's frontier incrementally with Config.Progress observability,
// and validation failures are the structured errors of errors.go
// (ErrEmptyFDSet, ErrEmptyInstance, ErrSchemaMismatch wrappers).
package repair

import (
	"fmt"
	"math/rand"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/session"
)

// DataRepair is the result of Repair_Data: a V-instance satisfying the
// target FD set, the cells changed relative to the input, and the vertex
// cover whose tuples were rewritten.
type DataRepair struct {
	Instance *relation.Instance
	Changed  []relation.CellRef
	Cover    []int32
}

// NumChanges returns |Δd(I, I′)|, the paper's data-repair distance.
func (d *DataRepair) NumChanges() int { return len(d.Changed) }

// RepairData implements Algorithm 4: it returns an instance that satisfies
// sigma, obtained from in by rewriting only tuples of a vertex cover of the
// conflict graph, changing at most min{|R|−1, |Σ|} cells per rewritten
// tuple (Theorem 3). If cover is nil, a 2-approximate minimum vertex cover
// is computed here; callers holding a cover from the FD search should pass
// it so the δP ≤ τ accounting matches exactly.
//
// The seed drives the random tuple and attribute orders the algorithm
// prescribes; fixed seeds give reproducible repairs. A non-nil eng shares
// its warm conflict-analysis arenas for the cover computation (it must be
// bound to in); nil uses a private engine. The engine is only consulted
// when cover is nil.
func RepairData(in *relation.Instance, sigma fd.Set, cover []int32, seed int64, eng *session.Engine) (*DataRepair, error) {
	if cover == nil {
		eng, err := session.For(eng, in)
		if err != nil {
			return nil, fmt.Errorf("repair: %w", err)
		}
		an := eng.Acquire(sigma)
		cover = an.Cover(nil)
		eng.Release(an)
	}
	out := in.Clone()
	rng := rand.New(rand.NewSource(seed))
	var vg relation.VarGen

	inCover := make(map[int32]bool, len(cover))
	for _, t := range cover {
		inCover[t] = true
	}
	ci := newCleanIndex(out, sigma, inCover)

	order := append([]int32(nil), cover...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	width := in.Schema.Width()
	var changed []relation.CellRef
	for _, ti := range order {
		t := out.Tuples[ti]
		attrs := rng.Perm(width)

		fixed := relation.NewAttrSet(attrs[0])
		tc, ok := ci.findAssignment(t, fixed, &vg)
		if !ok {
			// Theorem 3 shows a valid assignment always exists with one
			// fixed attribute; reaching here means the cover is not a
			// vertex cover of sigma's conflict graph.
			return nil, fmt.Errorf("repair: no valid assignment for tuple %d with a single fixed attribute; cover does not cover all conflicts", ti)
		}
		for _, a := range attrs[1:] {
			fixed = fixed.Add(a)
			if tc2, ok := ci.findAssignment(t, fixed, &vg); ok {
				tc = tc2
				continue
			}
			// No assignment keeps t[a]: adopt the previous valid
			// assignment's value for a (Algorithm 4, line 11).
			if !t[a].Equal(tc[a]) {
				t[a] = tc[a]
				changed = append(changed, relation.CellRef{Tuple: int(ti), Attr: a})
			}
		}
		ci.add(t)
	}
	// Safety net: a wrong cover (not actually covering every conflict)
	// would leave violations among the "clean" tuples that the per-tuple
	// loop never examines. One linear verification pass catches it.
	// FirstViolation reads cached code columns, so drop any built before
	// the in-place rewrites above (none today; this guards reordering).
	out.InvalidateCodes()
	if v := sigma.FirstViolation(out); v != nil {
		return nil, fmt.Errorf("repair: instance still violates %s between tuples %d and %d; the supplied cover is not a vertex cover",
			sigma[v.FD], v.T1, v.T2)
	}
	return &DataRepair{Instance: out, Changed: changed, Cover: cover}, nil
}

// cleanIndex indexes the satisfied part of the instance (I′ \ C2opt) per
// FD: LHS projection code → the unique RHS value of that group. Because the
// clean part satisfies sigma, the RHS value per code is single-valued.
// Projections are interned by per-FD ProjCoders over dictionaries shared
// across the FDs, so indexing and probing never build string keys.
type cleanIndex struct {
	sigma  fd.Set
	coders []*relation.ProjCoder
	idx    []map[int32]relation.Value
}

func newCleanIndex(in *relation.Instance, sigma fd.Set, inCover map[int32]bool) *cleanIndex {
	dicts := relation.NewDicts(in.Schema.Width())
	ci := &cleanIndex{
		sigma:  sigma,
		coders: make([]*relation.ProjCoder, len(sigma)),
		idx:    make([]map[int32]relation.Value, len(sigma)),
	}
	for i, f := range sigma {
		ci.coders[i] = relation.NewProjCoder(f.LHS, dicts)
		ci.idx[i] = make(map[int32]relation.Value, in.N())
	}
	for t := 0; t < in.N(); t++ {
		if inCover[int32(t)] {
			continue
		}
		ci.add(in.Tuples[t])
	}
	return ci
}

// add registers a tuple as clean.
func (ci *cleanIndex) add(t relation.Tuple) {
	for i, f := range ci.sigma {
		ci.idx[i][ci.coders[i].Code(t)] = t[f.RHS]
	}
}

// violation returns the first FD (in Σ order) that tc violates against some
// clean tuple, along with the clean side's RHS value. The non-interning
// Lookup keeps the fresh variables of candidate assignments out of the
// dictionaries: an unseen cell means no clean tuple can share the key.
func (ci *cleanIndex) violation(tc relation.Tuple) (fdIdx int, rhs relation.Value, found bool) {
	for i, f := range ci.sigma {
		k, ok := ci.coders[i].Lookup(tc)
		if !ok {
			continue
		}
		v, ok := ci.idx[i][k]
		if ok && !tc[f.RHS].Equal(v) {
			return i, v, true
		}
	}
	return 0, relation.Value{}, false
}

// findAssignment implements Algorithm 5: starting from tc agreeing with t
// on the fixed attributes and holding fresh variables elsewhere, it chases
// violations against the clean part, copying the clean RHS value whenever
// the violated FD's RHS is not fixed. It returns ok=false iff a violated
// FD's RHS is fixed — no valid assignment exists (Lemma 2: sound and
// complete).
func (ci *cleanIndex) findAssignment(t relation.Tuple, fixed relation.AttrSet, vg *relation.VarGen) (relation.Tuple, bool) {
	tc := make(relation.Tuple, len(t))
	for a := range t {
		if fixed.Contains(a) {
			tc[a] = t[a]
		} else {
			tc[a] = vg.Fresh()
		}
	}
	for {
		fi, v, found := ci.violation(tc)
		if !found {
			return tc, true
		}
		a := ci.sigma[fi].RHS
		if fixed.Contains(a) {
			return nil, false
		}
		tc[a] = v
		fixed = fixed.Add(a)
	}
}
