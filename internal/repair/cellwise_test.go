package repair

import (
	"context"
	"math/rand"
	"testing"

	"relatrust/internal/fd"
	"relatrust/internal/testkit"
)

func TestCellwiseRepairSatisfiesSigma(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 60; trial++ {
		width := 4 + rng.Intn(2)
		in := testkit.RandomInstance(rng, 10+rng.Intn(8), width, 2)
		sigma := testkit.RandomFDs(rng, width, 1+rng.Intn(2), 2)
		rep, err := RepairDataCellwise(in, sigma, nil, int64(trial), nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !sigma.SatisfiedBy(rep.Instance) {
			t.Fatalf("trial %d: cellwise repair violates Σ", trial)
		}
		diff, err := in.DiffCells(rep.Instance)
		if err != nil {
			t.Fatal(err)
		}
		if len(diff) != rep.NumChanges() {
			t.Fatalf("trial %d: reported %d changes, actual %d", trial, rep.NumChanges(), len(diff))
		}
		// Cellwise changes are confined to cover tuples too.
		inCover := map[int]bool{}
		for _, ti := range rep.Cover {
			inCover[int(ti)] = true
		}
		for _, c := range rep.Changed {
			if !inCover[c.Tuple] {
				t.Fatalf("trial %d: changed non-cover tuple %d", trial, c.Tuple)
			}
		}
	}
}

func TestCellwiseOnPaperExample(t *testing.T) {
	in, _ := testkit.Paper4x4()
	sigma := fd.MustParseSet(in.Schema, "C,A->B; C->D")
	rep, err := RepairDataCellwise(in, sigma, nil, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sigma.SatisfiedBy(rep.Instance) {
		t.Fatal("violates after repair")
	}
	// One cover tuple with two violated FDs: at most two forced cells.
	if rep.NumChanges() > 2 {
		t.Errorf("cellwise changed %d cells, expected ≤ 2", rep.NumChanges())
	}
}

// TestCellwiseVsTuplewiseChangeCounts documents the ablation: the
// tuple-wise Algorithm 4 respects the min{|R|−1,|Σ|} per-tuple bound,
// while the cellwise variant may exceed it but often touches fewer cells
// on lightly-violating tuples. Both must stay within α·|C2opt| on average
// workloads — assert only validity plus the tuple-wise bound here, and
// record the counts for inspection with -v.
func TestCellwiseVsTuplewiseChangeCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	totalCell, totalTuple := 0, 0
	for trial := 0; trial < 25; trial++ {
		in := testkit.RandomInstance(rng, 20, 5, 2)
		sigma := testkit.RandomFDs(rng, 5, 2, 2)
		cw, err := RepairDataCellwise(in, sigma, nil, int64(trial), nil)
		if err != nil {
			t.Fatal(err)
		}
		tw, err := RepairData(in, sigma, nil, int64(trial), nil)
		if err != nil {
			t.Fatal(err)
		}
		totalCell += cw.NumChanges()
		totalTuple += tw.NumChanges()
	}
	t.Logf("cellwise changed %d cells total, tuple-wise %d", totalCell, totalTuple)
	if totalCell == 0 && totalTuple > 0 {
		t.Error("cellwise suspiciously free")
	}
}

func TestParallelSamplingMatchesSerial(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	taus := []int{4, 3, 2, 1, 0}
	serial, err := RunSampling(context.Background(), in, sigma, taus, Config{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSamplingParallel(context.Background(), in, sigma, taus, Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial found %d repairs, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Ext.Key() != parallel[i].Ext.Key() {
			t.Errorf("repair %d differs: %s vs %s", i, serial[i].Ext, parallel[i].Ext)
		}
	}
}

func TestParallelSamplingEdgeCases(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	if out, err := RunSamplingParallel(context.Background(), in, sigma, nil, Config{}, 2); err != nil || out != nil {
		t.Errorf("empty τ list: %v, %v", out, err)
	}
	// Single worker equals serial behavior.
	one, err := RunSamplingParallel(context.Background(), in, sigma, []int{2}, Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("expected 1 repair, got %d", len(one))
	}
}

func TestSortRepairsByTrust(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	s, err := NewSession(in, sigma, Config{})
	if err != nil {
		t.Fatal(err)
	}
	reps, err := s.RunRange(context.Background(), 0, s.DeltaPOriginal())
	if err != nil {
		t.Fatal(err)
	}
	// Shuffle then restore.
	for i := len(reps)/2 - 1; i >= 0; i-- {
		j := len(reps) - 1 - i
		reps[i], reps[j] = reps[j], reps[i]
	}
	SortRepairsByTrust(reps)
	for i := 1; i < len(reps); i++ {
		if reps[i].DeltaP > reps[i-1].DeltaP {
			t.Fatal("not sorted by descending δP")
		}
	}
}
