package repair

// ProgressKind names the moments of a trust-spectrum sweep a progress
// callback observes.
type ProgressKind int

const (
	// ProgressSweepStarted fires once when a range sweep begins; Tau is the
	// opening (largest) budget.
	ProgressSweepStarted ProgressKind = iota
	// ProgressTauFinished fires when a frontier point is finalized; Tau is
	// the budget the point was generated for and Repair is the point.
	ProgressTauFinished
	// ProgressTauStarted fires after each finalized point when the sweep
	// continues under the tightened budget Tau (which may end without
	// producing a further point).
	ProgressTauStarted
	// ProgressSweepFinished fires once when the sweep ends normally; it
	// carries the whole sweep's effort and the partition-cache hit rate.
	ProgressSweepFinished
)

// ProgressEvent is one observation of a long-running sweep, delivered to
// Config.Progress. Callbacks run synchronously on the sweeping goroutine
// between search steps: they must be fast and must not call back into the
// session.
type ProgressEvent struct {
	Kind ProgressKind
	// Tau is the cell-change budget the event refers to (see the kinds).
	Tau int
	// Repair is the finalized frontier point (ProgressTauFinished only).
	Repair *Repair
	// Visited and Generated report the FD-search effort accumulated so far
	// (final totals on ProgressSweepFinished).
	Visited, Generated int
	// CacheHitRate is the parallel engine's partition-cache hit rate in
	// [0, 1], meaningful on ProgressSweepFinished; 0 while only the
	// sequential engine has run or the cache is disabled.
	CacheHitRate float64
	// Components and LargestComponent describe the conflict-hypergraph
	// decomposition of the analyzed instance (component count and biggest
	// component's tuple count); ComponentsParallel counts per-component
	// cover evaluations dispatched across the worker pool. Meaningful on
	// ProgressSweepFinished; zero when decomposition is disabled.
	Components         int
	LargestComponent   int
	ComponentsParallel int64
	// Generation is the mutation generation of the dataset snapshot the
	// sweep runs against (Config.Generation, defaulting to the session
	// engine's); 0 outside the live mutation tier. Set on every event, so
	// observers of a long sweep can tell which snapshot it answers for
	// after later mutations have moved the dataset on.
	Generation int64
}

// progress delivers an event to the configured callback, if any.
func (s *Session) progress(ev ProgressEvent) {
	if s.cfg.Progress != nil {
		ev.Generation = s.generation
		s.cfg.Progress(ev)
	}
}
