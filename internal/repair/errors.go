package repair

import (
	"errors"
	"fmt"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// Sentinel errors of the repair entry points. The errors actually returned
// may be typed wrappers carrying detail (see SchemaMismatchError,
// BudgetError); errors.Is against these sentinels matches either form.
var (
	// ErrEmptyFDSet reports a repair request with no FDs to repair against.
	ErrEmptyFDSet = errors.New("repair: empty FD set")
	// ErrEmptyInstance reports a repair request over an instance with no
	// tuples.
	ErrEmptyInstance = errors.New("repair: empty instance")
	// ErrSchemaMismatch reports an FD referencing attributes outside the
	// instance's schema. Returned as a *SchemaMismatchError naming the FD.
	ErrSchemaMismatch = errors.New("repair: FD references attributes outside the schema")
	// ErrNoRepairInBudget reports that no FD relaxation fits the requested
	// cell-change budget — the paper's (φ, φ) answer. Returned as a
	// *BudgetError carrying τ.
	ErrNoRepairInBudget = errors.New("repair: no FD relaxation fits the cell-change budget")
)

// SchemaMismatchError identifies the FD that refers outside the schema.
// It matches ErrSchemaMismatch under errors.Is.
type SchemaMismatchError struct {
	FD     fd.FD
	Schema *relation.Schema
}

func (e *SchemaMismatchError) Error() string {
	return fmt.Sprintf("repair: FD %s references attributes outside schema %s", e.FD, e.Schema)
}

// Is reports sentinel identity so errors.Is(err, ErrSchemaMismatch) holds.
func (e *SchemaMismatchError) Is(target error) bool { return target == ErrSchemaMismatch }

// BudgetError reports the τ for which no repair exists. It matches
// ErrNoRepairInBudget under errors.Is.
type BudgetError struct {
	Tau int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("repair: no FD relaxation fits τ=%d", e.Tau)
}

// Is reports sentinel identity so errors.Is(err, ErrNoRepairInBudget) holds.
func (e *BudgetError) Is(target error) bool { return target == ErrNoRepairInBudget }

// Validate checks an instance/FD-set pair for the structural preconditions
// every repair entry point shares, returning the structured error naming
// the first problem: ErrEmptyFDSet, ErrEmptyInstance, or a
// *SchemaMismatchError. It is the one validation path — NewSession and the
// facade's Repairer both call it, so a pair accepted here is accepted
// everywhere.
func Validate(in *relation.Instance, sigma fd.Set) error {
	if len(sigma) == 0 {
		return ErrEmptyFDSet
	}
	if in.N() == 0 {
		return ErrEmptyInstance
	}
	for _, f := range sigma {
		if f.RHS >= in.Schema.Width() || f.LHS.Max() >= in.Schema.Width() {
			return &SchemaMismatchError{FD: f, Schema: in.Schema}
		}
	}
	return nil
}
