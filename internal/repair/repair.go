package repair

import (
	"context"
	"fmt"

	"relatrust/internal/conflict"
	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/search"
	"relatrust/internal/session"
	"relatrust/internal/weights"
)

// Repair is one suggested repair (Σ′, I′): the modified FD set, the
// repaired V-instance, and the bookkeeping that places the suggestion on
// the relative-trust spectrum.
type Repair struct {
	// Sigma is the modified FD set Σ′ ∈ S(Σ).
	Sigma fd.Set
	// Ext is Δc(Σ, Σ′), the per-FD LHS extensions.
	Ext search.State
	// FDCost is dist_c(Σ, Σ′) under the configured weighting.
	FDCost float64
	// Data is the materialized data repair with I′ ⊨ Σ′.
	Data *DataRepair
	// Tau is the threshold this repair was generated for.
	Tau int
	// DeltaP is δP(Σ′, I) = α·|C2opt|, the guaranteed upper bound on cell
	// changes; Data.NumChanges() never exceeds it.
	DeltaP int
	// Stats carries the FD-search effort.
	Stats search.Stats
}

// String summarizes the repair for logs and CLIs.
func (r *Repair) String() string {
	return fmt.Sprintf("τ=%d: Σ'=%s, dist_c=%.3g, δP=%d, cell changes=%d",
		r.Tau, r.Sigma, r.FDCost, r.DeltaP, r.Data.NumChanges())
}

// Config carries the knobs shared by the repair entry points.
type Config struct {
	// Weights prices LHS extensions; nil means weights.AttrCount.
	Weights weights.Func
	// Search tunes the FD-modification search; the zero value selects A*
	// with the defaults (search.Options zero value — NewSearcher fills the
	// knobs in, so no sentinel detection is needed here).
	Search search.Options
	// Seed drives the randomized data-repair order (Algorithm 4).
	Seed int64
	// Engine, when non-nil, supplies the shared repair-session engine the
	// conflict analysis is acquired from, so repeated sessions over one
	// instance (Sampling-Repair's per-τ runs, parallel workers, facade
	// calls sharing an Options.Session) reuse warm cluster arenas instead
	// of rebuilding them. It must be bound to the same instance the
	// session is opened on. Nil builds a private single-use engine.
	Engine *session.Engine
	// Generation stamps every ProgressEvent with the mutation generation of
	// the snapshot the session answers for. 0 defers to the engine's own
	// generation (session.Engine.Generation), which the live mutation tier
	// pins — so callers going through a live dataset's engine get stamped
	// events without threading the number themselves.
	Generation int64
	// Progress, when non-nil, observes sweep milestones: range sweeps
	// (StreamRange) report τ levels starting and finishing, search effort,
	// and the partition-cache hit rate; single-τ runs (Run) report start
	// and finish only. Callbacks run synchronously on the sweeping
	// goroutine — which means concurrently across goroutines when sessions
	// sharing one Config sweep in parallel (RunSamplingParallel).
	Progress func(ProgressEvent)
}

func (c Config) withDefaults() Config {
	if c.Weights == nil {
		c.Weights = weights.AttrCount{}
	}
	return c
}

// Session prepares an instance/FD pair for repeated repair calls: the
// conflict analysis and difference sets are computed once. Sessions are
// not safe for concurrent use. The analysis is acquired from the session
// engine (Config.Engine, or a private one); Close returns it for reuse.
type Session struct {
	In       *relation.Instance
	Sigma    fd.Set
	Analysis *conflict.Analysis
	Searcher *search.Searcher
	cfg      Config
	eng      *session.Engine
	// generation is the resolved snapshot generation stamped onto progress
	// events (Config.Generation, or the engine's when unset).
	generation int64
}

// NewSession analyzes the instance against the FD set. Validation errors
// are the structured ones of Validate (ErrEmptyFDSet, ErrEmptyInstance,
// *SchemaMismatchError).
func NewSession(in *relation.Instance, sigma fd.Set, cfg Config) (*Session, error) {
	if err := Validate(in, sigma); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	eng, err := session.For(cfg.Engine, in)
	if err != nil {
		return nil, fmt.Errorf("repair: %w", err)
	}
	an := eng.Acquire(sigma)
	if !cfg.Search.NoDecomposition && cfg.Search.Decomp == nil {
		// One decomposition per engine root, shared by every session over
		// it — repeated sweeps reuse the per-component memo.
		cfg.Search.Decomp = eng.CoverEvaluator(sigma)
	}
	gen := cfg.Generation
	if gen == 0 {
		gen = eng.Generation()
	}
	return &Session{
		In:         in,
		Sigma:      sigma,
		Analysis:   an,
		Searcher:   search.NewSearcher(an, cfg.Weights, cfg.Search),
		cfg:        cfg,
		eng:        eng,
		generation: gen,
	}, nil
}

// Close releases the session's analysis back to the engine so its arenas
// and scratch serve the next session over the same instance and FD set.
// The session (and the searcher it exposes) must not be used afterwards;
// Close is idempotent and optional — an unclosed session is merely not
// recycled.
func (s *Session) Close() {
	if s.Analysis == nil {
		return
	}
	s.eng.Release(s.Analysis)
	s.Analysis = nil
	s.Searcher = nil
}

// DeltaPOriginal returns δP(Σ, I) — the number of cell changes that
// repairing the data alone is bounded by, and the denominator of τr.
func (s *Session) DeltaPOriginal() int { return s.Searcher.DeltaPOriginal() }

// TauFromRelative converts a relative threshold τr ∈ [0,1] into an absolute
// cell-change budget, rounding half away from zero so τr=100% always admits
// the pure-data repair.
func (s *Session) TauFromRelative(taur float64) int {
	if taur < 0 {
		taur = 0
	}
	return int(taur*float64(s.DeltaPOriginal()) + 0.5)
}

// Run implements Algorithm 1 (Repair_Data_FDs): it finds the FD repair
// closest to Σ whose δP is within tau, then materializes the data repair.
// It returns nil (the paper's (φ, φ)) when no FD relaxation fits the
// budget. Cancelling ctx aborts the search with context.Cause(ctx).
// Config.Progress observes the sweep's start and finish (single-τ runs
// have no intermediate trust levels).
func (s *Session) Run(ctx context.Context, tau int) (*Repair, error) {
	s.progress(ProgressEvent{Kind: ProgressSweepStarted, Tau: tau})
	res, err := s.Searcher.Find(ctx, tau)
	if err != nil {
		return nil, err
	}
	var r *Repair
	if res != nil {
		if r, err = s.materialize(res, tau); err != nil {
			return nil, err
		}
	}
	final := s.Searcher.LastStats()
	cs := s.Searcher.ComponentStats()
	s.progress(ProgressEvent{
		Kind: ProgressSweepFinished, Tau: tau,
		Visited: final.Visited, Generated: final.Generated,
		CacheHitRate: s.Searcher.CoverCacheStats().HitRate(),
		Components:   cs.Components, LargestComponent: cs.LargestComponent,
		ComponentsParallel: cs.ParallelEvals,
	})
	return r, nil
}

// RunRange implements Algorithm 6 followed by data-repair materialization:
// one search pass yields the distinct FD repairs for every τ in [tauLow,
// tauHigh]; each is then completed into a full (Σ′, I′) suggestion.
func (s *Session) RunRange(ctx context.Context, tauLow, tauHigh int) ([]*Repair, error) {
	results, err := s.Searcher.FindRange(ctx, tauLow, tauHigh)
	if err != nil {
		return nil, err
	}
	repairs := make([]*Repair, 0, len(results))
	tau := tauHigh
	for _, res := range results {
		r, err := s.materialize(res, tau)
		if err != nil {
			return nil, err
		}
		repairs = append(repairs, r)
		tau = res.DeltaP - 1 // the next repair was found under this bound
	}
	return repairs, nil
}

// StreamRange is RunRange delivering each suggestion the moment its trust
// level is finalized instead of collecting the list: yield observes
// exactly the repairs, in exactly the order, that RunRange(ctx, tauLow,
// tauHigh) returns. The only difference is Repair.Stats — a streamed
// point carries the search effort accumulated up to its finalization,
// while RunRange stamps every point with the whole sweep's final effort
// (the last streamed point carries the final effort in both).
//
// An error returned by yield aborts the sweep and is returned verbatim,
// so callers can stop early with a private sentinel. Cancelling ctx
// aborts with context.Cause(ctx). Config.Progress observes the sweep's
// milestones (see ProgressEvent).
func (s *Session) StreamRange(ctx context.Context, tauLow, tauHigh int, yield func(*Repair) error) error {
	s.progress(ProgressEvent{Kind: ProgressSweepStarted, Tau: tauHigh})
	tau := tauHigh
	err := s.Searcher.FindRangeStream(ctx, tauLow, tauHigh, func(res *search.Result) error {
		r, err := s.materialize(res, tau)
		if err != nil {
			return err
		}
		s.progress(ProgressEvent{
			Kind: ProgressTauFinished, Tau: r.Tau, Repair: r,
			Visited: r.Stats.Visited, Generated: r.Stats.Generated,
		})
		tau = res.DeltaP - 1 // the next repair was found under this bound
		if tau >= tauLow {
			s.progress(ProgressEvent{Kind: ProgressTauStarted, Tau: tau})
		}
		return yield(r)
	})
	if err != nil {
		return err
	}
	final := s.Searcher.LastStats()
	cs := s.Searcher.ComponentStats()
	s.progress(ProgressEvent{
		Kind: ProgressSweepFinished, Tau: tau,
		Visited: final.Visited, Generated: final.Generated,
		CacheHitRate: s.Searcher.CoverCacheStats().HitRate(),
		Components:   cs.Components, LargestComponent: cs.LargestComponent,
		ComponentsParallel: cs.ParallelEvals,
	})
	return nil
}

// materialize runs the data-repair phase for a found FD modification,
// reusing the search's vertex cover so the δP ≤ τ guarantee carries over
// verbatim to the cell-change count.
func (s *Session) materialize(res *search.Result, tau int) (*Repair, error) {
	cover := s.Analysis.Cover(res.State)
	data, err := RepairData(s.In, res.Sigma, cover, s.cfg.Seed, s.eng)
	if err != nil {
		return nil, err
	}
	return &Repair{
		Sigma:  res.Sigma,
		Ext:    res.State,
		FDCost: res.Cost,
		Data:   data,
		Tau:    tau,
		DeltaP: res.DeltaP,
		Stats:  res.Stats,
	}, nil
}

// Run is the one-shot convenience wrapper around NewSession + Session.Run.
func Run(ctx context.Context, in *relation.Instance, sigma fd.Set, tau int, cfg Config) (*Repair, error) {
	s, err := NewSession(in, sigma, cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Run(ctx, tau)
}

// RunSampling is the Sampling-Repair baseline of Section 8.3.5: it invokes
// an independent single-τ search per requested threshold (mirroring
// repeated executions of Algorithm 1) and deduplicates identical FD
// repairs. Thresholds are processed as given.
//
// Each τ still runs its own full search — the search-effort profile
// Figure 13 measures is preserved — but the per-τ sessions draw their
// analyses from one shared engine, so iterations after the first reuse
// the warm cluster arenas instead of re-running conflict.New.
func RunSampling(ctx context.Context, in *relation.Instance, sigma fd.Set, taus []int, cfg Config) ([]*Repair, error) {
	eng, err := session.For(cfg.Engine, in)
	if err != nil {
		return nil, fmt.Errorf("repair: %w", err)
	}
	cfg.Engine = eng
	var out []*Repair
	seen := make(map[string]bool)
	for _, tau := range taus {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		s, err := NewSession(in, sigma, cfg)
		if err != nil {
			return nil, err
		}
		r, err := s.Run(ctx, tau)
		s.Close()
		if err != nil {
			return nil, err
		}
		if r == nil {
			continue
		}
		key := r.Ext.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, r)
	}
	return out, nil
}
