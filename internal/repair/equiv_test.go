package repair

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// refCleanIndex is the seed's string-keyed clean index, kept as the
// equivalence oracle for the ProjCoder-based cleanIndex: same adds, same
// violations, on tuple streams mixing constants, shared variables, and the
// fresh variables findAssignment generates.
type refCleanIndex struct {
	sigma fd.Set
	idx   []map[string]relation.Value
}

func newRefCleanIndex(sigma fd.Set) *refCleanIndex {
	r := &refCleanIndex{sigma: sigma, idx: make([]map[string]relation.Value, len(sigma))}
	for i := range sigma {
		r.idx[i] = map[string]relation.Value{}
	}
	return r
}

func refKeyOf(t relation.Tuple, X relation.AttrSet) string {
	var b strings.Builder
	X.ForEach(func(a int) bool {
		b.WriteString(t[a].Key())
		b.WriteByte(0x1f)
		return true
	})
	return b.String()
}

func (r *refCleanIndex) add(t relation.Tuple) {
	for i, f := range r.sigma {
		r.idx[i][refKeyOf(t, f.LHS)] = t[f.RHS]
	}
}

func (r *refCleanIndex) violation(tc relation.Tuple) (int, relation.Value, bool) {
	for i, f := range r.sigma {
		v, ok := r.idx[i][refKeyOf(tc, f.LHS)]
		if ok && !tc[f.RHS].Equal(v) {
			return i, v, true
		}
	}
	return 0, relation.Value{}, false
}

// TestQuickCleanIndexMatchesStringReference drives the code-based
// cleanIndex and the string-keyed reference through identical random
// add/violation interleavings and asserts identical answers at every step.
func TestQuickCleanIndexMatchesStringReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 3 + rng.Intn(3)
		names := make([]string, width)
		for i := range names {
			names[i] = string(rune('A' + i))
		}
		schema := relation.MustSchema(names...)
		in := relation.NewInstance(schema)

		nfd := 1 + rng.Intn(3)
		sigma := make(fd.Set, 0, nfd)
		for len(sigma) < nfd {
			rhs := rng.Intn(width)
			lhs := relation.NewAttrSet((rhs + 1) % width)
			if rng.Intn(2) == 0 {
				lhs = lhs.Add((rhs + 2) % width)
			}
			sigma = append(sigma, fd.MustNew(lhs, rhs))
		}

		ci := newCleanIndex(in, sigma, nil) // empty instance: index built incrementally below
		ref := newRefCleanIndex(sigma)

		var vg relation.VarGen
		shared := []relation.Value{vg.Fresh(), vg.Fresh()}
		mk := func() relation.Tuple {
			tp := make(relation.Tuple, width)
			for a := range tp {
				switch rng.Intn(10) {
				case 0:
					tp[a] = shared[rng.Intn(len(shared))]
				case 1:
					tp[a] = vg.Fresh()
				default:
					tp[a] = relation.Const(string(rune('a' + rng.Intn(3))))
				}
			}
			return tp
		}

		for step := 0; step < 60; step++ {
			tp := mk()
			gi, gv, gok := ci.violation(tp)
			wi, wv, wok := ref.violation(tp)
			if gok != wok || gi != wi || !gv.Equal(wv) {
				return false
			}
			if rng.Intn(2) == 0 {
				ci.add(tp)
				ref.add(tp)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
