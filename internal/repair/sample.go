package repair

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/session"
)

// SampleDataRepairs generates up to k distinct data repairs of in with
// respect to a fixed FD set, in the spirit of the paper's reference [3]
// ("Sampling the repairs of functional dependency violations", whose
// algorithm Repair_Data is a tuple-wise variant of): Algorithm 4's random
// tuple and attribute orders induce a distribution over repairs, and
// drawing several seeds exposes the genuinely different ways the
// violations can be resolved — useful when a human picks among suggested
// fixes. Repairs are deduplicated by their changed-cell signature
// (positions and values); the result is ordered by ascending change count,
// then deterministically.
//
// maxTries bounds the seeds attempted (0 means 8·k). Fewer than k repairs
// are returned when the repair space is smaller than requested. A non-nil
// eng shares its warm analysis arenas (it must be bound to in); nil uses a
// private engine. Cancelling ctx aborts between draws with
// context.Cause(ctx).
func SampleDataRepairs(ctx context.Context, in *relation.Instance, sigma fd.Set, k int, seed int64, maxTries int, eng *session.Engine) ([]*DataRepair, error) {
	if k <= 0 {
		return nil, fmt.Errorf("repair: sample size %d must be positive", k)
	}
	if maxTries <= 0 {
		maxTries = 8 * k
	}
	eng, err := session.For(eng, in)
	if err != nil {
		return nil, fmt.Errorf("repair: %w", err)
	}
	// One shared cover keeps the samples comparable: the variety comes
	// from the repair order, not from re-running the matching.
	an := eng.Acquire(sigma)
	cover := an.Cover(nil)
	eng.Release(an)

	seen := make(map[string]bool, k)
	var out []*DataRepair
	for try := 0; try < maxTries && len(out) < k; try++ {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		rep, err := RepairData(in, sigma, cover, seed+int64(try), eng)
		if err != nil {
			return nil, err
		}
		sig := repairSignature(rep)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, rep)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].NumChanges() != out[j].NumChanges() {
			return out[i].NumChanges() < out[j].NumChanges()
		}
		return repairSignature(out[i]) < repairSignature(out[j])
	})
	return out, nil
}

// repairSignature canonicalizes a repair for deduplication: the sorted
// changed cells with their new values, with variables abstracted to "?" —
// two repairs differing only in variable identities are the same repair
// (V-instance semantics make variable names immaterial).
func repairSignature(rep *DataRepair) string {
	cells := append([]relation.CellRef(nil), rep.Changed...)
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Tuple != cells[j].Tuple {
			return cells[i].Tuple < cells[j].Tuple
		}
		return cells[i].Attr < cells[j].Attr
	})
	var b strings.Builder
	for _, c := range cells {
		v := rep.Instance.Tuples[c.Tuple][c.Attr]
		fmt.Fprintf(&b, "%d:%d=", c.Tuple, c.Attr)
		if v.IsVar() {
			b.WriteByte('?')
		} else {
			b.WriteString(v.Str())
		}
		b.WriteByte(';')
	}
	return b.String()
}
