package repair

import (
	"context"
	"math/rand"
	"testing"

	"relatrust/internal/fd"
	"relatrust/internal/testkit"
)

func TestSampleDataRepairsDistinct(t *testing.T) {
	// One violating pair of A->B and a free attribute: repairs differ in
	// which cell they touch (B equalized, or A variablized, …).
	in := testkit.Build([]string{"A", "B", "C"}, [][]string{
		{"1", "x", "c0"}, {"1", "y", "c1"}, {"2", "z", "c2"},
	})
	sigma := fd.MustParseSet(in.Schema, "A->B")
	reps, err := SampleDataRepairs(context.Background(), in, sigma, 4, 1, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) < 2 {
		t.Fatalf("expected ≥ 2 distinct repairs, got %d", len(reps))
	}
	sigs := map[string]bool{}
	for _, r := range reps {
		if !sigma.SatisfiedBy(r.Instance) {
			t.Fatal("sampled repair violates Σ")
		}
		sig := repairSignature(r)
		if sigs[sig] {
			t.Fatalf("duplicate repair signature %q", sig)
		}
		sigs[sig] = true
	}
	// Sorted by ascending change count.
	for i := 1; i < len(reps); i++ {
		if reps[i].NumChanges() < reps[i-1].NumChanges() {
			t.Error("samples not sorted by change count")
		}
	}
}

func TestSampleDataRepairsValidInput(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	if _, err := SampleDataRepairs(context.Background(), in, sigma, 0, 1, 0, nil); err == nil {
		t.Error("k=0 must fail")
	}
	reps, err := SampleDataRepairs(context.Background(), in, sigma, 3, 7, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) == 0 {
		t.Fatal("no repairs sampled")
	}
}

func TestSampleSatisfiedInstanceOneRepair(t *testing.T) {
	in := testkit.Build([]string{"A", "B"}, [][]string{{"1", "x"}, {"2", "y"}})
	sigma := fd.MustParseSet(in.Schema, "A->B")
	reps, err := SampleDataRepairs(context.Background(), in, sigma, 5, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps[0].NumChanges() != 0 {
		t.Fatalf("satisfied instance has exactly one (empty) repair, got %d", len(reps))
	}
}

func TestSampleVariableIdentityAbstraction(t *testing.T) {
	// Two runs that only differ in variable IDs must collapse to one
	// sample: signatures abstract variables to "?".
	rng := rand.New(rand.NewSource(2))
	in := testkit.RandomInstance(rng, 8, 3, 2)
	sigma := testkit.RandomFDs(rng, 3, 1, 1)
	reps, err := SampleDataRepairs(context.Background(), in, sigma, 50, 3, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range reps {
		sig := repairSignature(r)
		if seen[sig] {
			t.Fatalf("duplicate after variable abstraction: %q", sig)
		}
		seen[sig] = true
	}
}
