package metrics

import (
	"math"
	"testing"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/testkit"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEvalDataBasic(t *testing.T) {
	ic := testkit.Build([]string{"A", "B"}, [][]string{{"1", "x"}, {"2", "y"}})
	id := ic.Clone()
	id.Tuples[0][1] = relation.Const("BAD") // one erroneous cell
	ir := id.Clone()
	ir.Tuples[0][1] = relation.Const("x")   // restored correctly
	ir.Tuples[1][0] = relation.Const("bad") // spurious change

	p, r, err := EvalData(ic, id, ir)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, 0.5) {
		t.Errorf("precision = %v, want 0.5 (1 correct of 2 modified)", p)
	}
	if !approx(r, 1) {
		t.Errorf("recall = %v, want 1 (1 of 1 erroneous restored)", r)
	}
}

func TestEvalDataVariableCountsAsCorrect(t *testing.T) {
	var g relation.VarGen
	ic := testkit.Build([]string{"A"}, [][]string{{"v"}})
	id := ic.Clone()
	id.Tuples[0][0] = relation.Const("ERR")
	ir := id.Clone()
	ir.Tuples[0][0] = g.Fresh()
	p, r, err := EvalData(ic, id, ir)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, 1) || !approx(r, 1) {
		t.Errorf("variable repair should count as correct: P=%v R=%v", p, r)
	}
}

func TestEvalDataNoErrorsNoChanges(t *testing.T) {
	ic := testkit.Build([]string{"A"}, [][]string{{"1"}})
	p, r, err := EvalData(ic, ic.Clone(), ic.Clone())
	if err != nil {
		t.Fatal(err)
	}
	// Nothing modified, nothing erroneous: both scores are perfect.
	if !approx(p, 1) || !approx(r, 1) {
		t.Errorf("P=%v R=%v, want 1/1", p, r)
	}
}

func TestEvalDataWrongRestoration(t *testing.T) {
	ic := testkit.Build([]string{"A"}, [][]string{{"good"}})
	id := ic.Clone()
	id.Tuples[0][0] = relation.Const("err")
	ir := id.Clone()
	ir.Tuples[0][0] = relation.Const("still-wrong")
	p, r, _ := EvalData(ic, id, ir)
	if p != 0 || r != 0 {
		t.Errorf("wrong constant restoration must score 0: P=%v R=%v", p, r)
	}
}

func TestEvalDataSizeMismatch(t *testing.T) {
	a := testkit.Build([]string{"A"}, [][]string{{"1"}})
	b := testkit.Build([]string{"A"}, [][]string{{"1"}, {"2"}})
	if _, _, err := EvalData(a, b, b); err == nil {
		t.Error("size mismatch must error")
	}
}

func TestEvalFDs(t *testing.T) {
	appended := []relation.AttrSet{relation.NewAttrSet(1, 2)}
	removed := []relation.AttrSet{relation.NewAttrSet(2, 3, 4)}
	p, r, err := EvalFDs(appended, removed)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, 0.5) {
		t.Errorf("precision = %v, want 0.5", p)
	}
	if !approx(r, 1.0/3) {
		t.Errorf("recall = %v, want 1/3", r)
	}
}

func TestEvalFDsPaperConventions(t *testing.T) {
	// Uniform-cost on (80% FD err, 0% data err): appended nothing, removed
	// plenty → precision 1, recall 0 (Figure 8, first row).
	p, r, _ := EvalFDs([]relation.AttrSet{0}, []relation.AttrSet{relation.NewAttrSet(1, 2)})
	if !approx(p, 1) || !approx(r, 0) {
		t.Errorf("P=%v R=%v, want 1/0", p, r)
	}
	// Nothing removed: recall 1 by convention (Figure 8, fourth row).
	p, r, _ = EvalFDs([]relation.AttrSet{0}, []relation.AttrSet{0})
	if !approx(p, 1) || !approx(r, 1) {
		t.Errorf("P=%v R=%v, want 1/1", p, r)
	}
	if _, _, err := EvalFDs([]relation.AttrSet{0, 0}, []relation.AttrSet{0}); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestFScores(t *testing.T) {
	q := Quality{DataPrecision: 1, DataRecall: 1, FDPrecision: 0, FDRecall: 0}
	if !approx(q.DataF(), 1) {
		t.Errorf("DataF = %v", q.DataF())
	}
	if !approx(q.FDF(), 0) {
		t.Errorf("FDF = %v", q.FDF())
	}
	if !approx(q.CombinedF(), 0.5) {
		t.Errorf("CombinedF = %v", q.CombinedF())
	}
	if len(q.String()) == 0 {
		t.Error("String empty")
	}
}

func TestAppended(t *testing.T) {
	s := relation.MustSchema("A", "B", "C", "D")
	sigmaD := fd.MustParseSet(s, "A->B; C->D")
	sigmaR := fd.MustParseSet(s, "A,C->B; C->D")
	got, err := Appended(sigmaD, sigmaR)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != relation.NewAttrSet(2) || got[1] != 0 {
		t.Errorf("Appended = %v", got)
	}
	if _, err := Appended(sigmaD, sigmaD[:1]); err == nil {
		t.Error("size mismatch must error")
	}
	bad := fd.MustParseSet(s, "B->A; C->D")
	if _, err := Appended(sigmaD, bad); err == nil {
		t.Error("RHS change must error")
	}
	shrunk := fd.MustParseSet(s, "B->C; C->D")
	if _, err := Appended(fd.MustParseSet(s, "A,B->C; C->D"), shrunk); err == nil {
		t.Error("shrunken LHS must error")
	}
}

func TestEvalCombined(t *testing.T) {
	ic := testkit.Build([]string{"A"}, [][]string{{"1"}})
	q, err := Eval(ic, ic.Clone(), ic.Clone(),
		[]relation.AttrSet{0}, []relation.AttrSet{0})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(q.CombinedF(), 1) {
		t.Errorf("perfect repair should score 1, got %v", q.CombinedF())
	}
}
