// Package metrics scores a generated repair against the ground truth of a
// perturbation experiment, using the paper's four measures (Section 8.1):
// data precision/recall over modified cells and FD precision/recall over
// appended LHS attributes, combined through F-scores.
package metrics

import (
	"fmt"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// Quality carries the paper's quality measures for one repair.
type Quality struct {
	DataPrecision float64
	DataRecall    float64
	FDPrecision   float64
	FDRecall      float64
}

// DataF returns the harmonic mean of data precision and recall.
func (q Quality) DataF() float64 { return fscore(q.DataPrecision, q.DataRecall) }

// FDF returns the harmonic mean of FD precision and recall.
func (q Quality) FDF() float64 { return fscore(q.FDPrecision, q.FDRecall) }

// CombinedF is the paper's headline number: the average of the data and FD
// F-scores.
func (q Quality) CombinedF() float64 { return (q.DataF() + q.FDF()) / 2 }

// String renders the five numbers in report order.
func (q Quality) String() string {
	return fmt.Sprintf("FD P=%.2f R=%.2f, Data P=%.2f R=%.2f, combined F=%.2f",
		q.FDPrecision, q.FDRecall, q.DataPrecision, q.DataRecall, q.CombinedF())
}

func fscore(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// EvalData scores the repaired instance Ir against the clean instance Ic
// and the perturbed instance Id.
//
//   - precision: of the cells the repair modified (Id→Ir), the fraction
//     that were genuinely erroneous (Ic≠Id) and were restored — set back to
//     the clean value, or to a variable (which stands for an unknown
//     correct value; the paper counts it).
//   - recall: the fraction of erroneous cells so restored.
func EvalData(ic, id, ir *relation.Instance) (precision, recall float64, err error) {
	modified, errCells := 0, 0
	correct := 0
	if ic.N() != id.N() || id.N() != ir.N() {
		return 0, 0, fmt.Errorf("metrics: instance sizes differ: %d/%d/%d", ic.N(), id.N(), ir.N())
	}
	for t := 0; t < ic.N(); t++ {
		for a := 0; a < ic.Schema.Width(); a++ {
			cWasErr := !ic.Tuples[t][a].Equal(id.Tuples[t][a])
			cModified := !id.Tuples[t][a].Equal(ir.Tuples[t][a])
			if cWasErr {
				errCells++
			}
			if cModified {
				modified++
			}
			if cWasErr && cModified &&
				(ir.Tuples[t][a].IsVar() || ir.Tuples[t][a].Equal(ic.Tuples[t][a])) {
				correct++
			}
		}
	}
	precision = ratioOrOne(correct, modified)
	recall = ratioOrOne(correct, errCells)
	return precision, recall, nil
}

// EvalFDs scores the repaired FD set against the perturbation ground
// truth: appended[i] are the LHS attributes the repair added to FD i of
// Σd, removed[i] the attributes the perturbation removed from FD i of Σc.
// An appended attribute is correct iff it was removed from that same FD.
func EvalFDs(appended, removed []relation.AttrSet) (precision, recall float64, err error) {
	if len(appended) != len(removed) {
		return 0, 0, fmt.Errorf("metrics: %d appended vectors vs %d removed", len(appended), len(removed))
	}
	totalAppended, totalRemoved, correct := 0, 0, 0
	for i := range appended {
		totalAppended += appended[i].Len()
		totalRemoved += removed[i].Len()
		correct += appended[i].Intersect(removed[i]).Len()
	}
	precision = ratioOrOne(correct, totalAppended)
	recall = ratioOrOne(correct, totalRemoved)
	return precision, recall, nil
}

// ratioOrOne returns num/den, treating an empty denominator as a perfect
// score: a repair that appended nothing has perfect precision, and a
// perturbation that removed nothing is perfectly recalled. This matches
// the paper's Figure 8 conventions (e.g. FD precision 1 with recall 0 for
// a baseline that never modifies FDs).
func ratioOrOne(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

// Eval combines both scores for a repair produced on a perturbed workload.
func Eval(ic, id, ir *relation.Instance, appended, removed []relation.AttrSet) (Quality, error) {
	var q Quality
	var err error
	q.DataPrecision, q.DataRecall, err = EvalData(ic, id, ir)
	if err != nil {
		return q, err
	}
	q.FDPrecision, q.FDRecall, err = EvalFDs(appended, removed)
	return q, err
}

// Appended extracts the per-FD appended attributes Δc(Σd, Σr) from the two
// FD sets, which must be position-aligned.
func Appended(sigmaD, sigmaR fd.Set) ([]relation.AttrSet, error) {
	if len(sigmaD) != len(sigmaR) {
		return nil, fmt.Errorf("metrics: FD sets have different sizes: %d vs %d", len(sigmaD), len(sigmaR))
	}
	out := make([]relation.AttrSet, len(sigmaD))
	for i := range sigmaD {
		if sigmaD[i].RHS != sigmaR[i].RHS {
			return nil, fmt.Errorf("metrics: FD %d changed RHS (%d → %d)", i, sigmaD[i].RHS, sigmaR[i].RHS)
		}
		if !sigmaD[i].LHS.SubsetOf(sigmaR[i].LHS) {
			return nil, fmt.Errorf("metrics: FD %d lost LHS attributes; repairs only append", i)
		}
		out[i] = sigmaR[i].LHS.Diff(sigmaD[i].LHS)
	}
	return out, nil
}
