// Package exact computes δopt(Σ, I) — the true minimum number of cell
// changes that make I satisfy Σ — by exhaustive search. The problem is
// NP-hard (Kolahi & Lakshmanan, the paper's [10]), so this is a testing
// substrate for tiny instances: the property suites use it to verify the
// production algorithms' approximation guarantees end to end (Theorem 3:
// Repair_Data changes at most 2·min{|R|−1,|Σ|}·δopt cells).
//
// The search relies on the standard active-domain argument: if a k-change
// repair exists, one exists in which every changed cell takes either a
// fresh variable (distinct from everything) or a value already present in
// its attribute's column. Candidate assignments are therefore finite.
package exact

import (
	"fmt"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// MaxCells bounds the number of cells the exhaustive search will consider
// changing; calls needing more return an error rather than running for
// hours.
const MaxCells = 24

// DeltaOpt returns δopt(Σ, I) and one witnessing repaired instance. The
// search enumerates change budgets k = 0, 1, … and, per budget, every
// k-subset of cells and every active-domain-or-variable assignment to it.
func DeltaOpt(in *relation.Instance, sigma fd.Set) (int, *relation.Instance, error) {
	totalCells := in.N() * in.Schema.Width()
	if totalCells > MaxCells {
		return 0, nil, fmt.Errorf("exact: instance has %d cells, limit is %d", totalCells, MaxCells)
	}
	if satisfied(in, sigma) {
		return 0, in.Clone(), nil
	}
	// Candidate values per attribute: the active domain plus one fresh
	// variable (fresh variables never equal anything, so one generator
	// value per changed cell suffices).
	candidates := make([][]relation.Value, in.Schema.Width())
	for a := 0; a < in.Schema.Width(); a++ {
		seen := map[string]bool{}
		for t := 0; t < in.N(); t++ {
			v := in.Tuples[t][a]
			if !v.IsVar() && !seen[v.Str()] {
				seen[v.Str()] = true
				candidates[a] = append(candidates[a], v)
			}
		}
	}

	cells := make([]relation.CellRef, 0, totalCells)
	for t := 0; t < in.N(); t++ {
		for a := 0; a < in.Schema.Width(); a++ {
			cells = append(cells, relation.CellRef{Tuple: t, Attr: a})
		}
	}

	for k := 1; k <= totalCells; k++ {
		if witness := trySubsets(in, sigma, cells, candidates, k); witness != nil {
			return k, witness, nil
		}
	}
	return 0, nil, fmt.Errorf("exact: no repair found changing every cell — unreachable")
}

// trySubsets enumerates k-subsets of cells and assignments.
func trySubsets(in *relation.Instance, sigma fd.Set, cells []relation.CellRef, candidates [][]relation.Value, k int) *relation.Instance {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	work := in.Clone()
	var vg relation.VarGen
	for {
		if w := tryAssignments(work, in, sigma, cells, candidates, idx, 0, &vg); w != nil {
			return w
		}
		// Next k-combination.
		i := k - 1
		for i >= 0 && idx[i] == len(cells)-k+i {
			i--
		}
		if i < 0 {
			return nil
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// tryAssignments fills the chosen cells recursively with candidate values
// (or a fresh variable), requiring each changed cell to actually differ
// from its original value.
func tryAssignments(work, orig *relation.Instance, sigma fd.Set, cells []relation.CellRef, candidates [][]relation.Value, idx []int, pos int, vg *relation.VarGen) *relation.Instance {
	if pos == len(idx) {
		if satisfied(work, sigma) {
			return work.Clone()
		}
		return nil
	}
	c := cells[idx[pos]]
	origVal := orig.Tuples[c.Tuple][c.Attr]
	options := append([]relation.Value(nil), candidates[c.Attr]...)
	options = append(options, vg.Fresh())
	for _, v := range options {
		if v.Equal(origVal) {
			continue // not a change
		}
		work.Tuples[c.Tuple][c.Attr] = v
		if w := tryAssignments(work, orig, sigma, cells, candidates, idx, pos+1, vg); w != nil {
			work.Tuples[c.Tuple][c.Attr] = origVal
			return w
		}
	}
	work.Tuples[c.Tuple][c.Attr] = origVal
	return nil
}

// satisfied checks Σ by direct pairwise comparison. The exhaustive search
// mutates its working instance in place between checks, so it must not use
// fd.Set.SatisfiedBy — that goes through the instance's cached dictionary
// code columns, which in-place mutation leaves stale (see
// relation.Instance.Codes). On the ≤ MaxCells instances this package
// accepts, O(n²) per check is both faster than any keyed scan and
// allocation-free in the innermost loop of the search.
func satisfied(in *relation.Instance, sigma fd.Set) bool {
	for _, f := range sigma {
		for i := 0; i < in.N(); i++ {
			for j := i + 1; j < in.N(); j++ {
				ti, tj := in.Tuples[i], in.Tuples[j]
				if ti.AgreeOn(tj, f.LHS) && !ti[f.RHS].Equal(tj[f.RHS]) {
					return false
				}
			}
		}
	}
	return true
}
