package exact

import (
	"math/rand"
	"testing"

	"relatrust/internal/conflict"
	"relatrust/internal/fd"
	"relatrust/internal/repair"
	"relatrust/internal/testkit"
)

func TestDeltaOptSatisfiedInstance(t *testing.T) {
	in := testkit.Build([]string{"A", "B"}, [][]string{{"1", "x"}, {"2", "y"}})
	sigma := fd.MustParseSet(in.Schema, "A->B")
	d, witness, err := DeltaOpt(in, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 || !sigma.SatisfiedBy(witness) {
		t.Fatalf("δopt = %d, want 0", d)
	}
}

func TestDeltaOptSingleViolation(t *testing.T) {
	in := testkit.Build([]string{"A", "B"}, [][]string{{"1", "x"}, {"1", "y"}})
	sigma := fd.MustParseSet(in.Schema, "A->B")
	d, witness, err := DeltaOpt(in, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("δopt = %d, want 1", d)
	}
	if !sigma.SatisfiedBy(witness) {
		t.Fatal("witness invalid")
	}
}

func TestDeltaOptNeedsEqualizing(t *testing.T) {
	// Two pairs sharing a middle tuple: A->B with groups (1,1,1): values
	// x,y,z — two changes needed (make two of them equal the third), and
	// fresh variables alone cannot help.
	in := testkit.Build([]string{"A", "B"}, [][]string{
		{"1", "x"}, {"1", "y"}, {"1", "z"},
	})
	sigma := fd.MustParseSet(in.Schema, "A->B")
	d, _, err := DeltaOpt(in, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("δopt = %d, want 2", d)
	}
}

func TestDeltaOptRefusesLargeInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := testkit.RandomInstance(rng, 10, 5, 2)
	if _, _, err := DeltaOpt(in, testkit.RandomFDs(rng, 5, 1, 2)); err == nil {
		t.Fatal("oversized instance must be rejected")
	}
}

// TestTheorem3EndToEnd verifies the paper's headline approximation bound
// on exhaustively-checkable instances: Repair_Data changes at most
// 2·min{|R|−1,|Σ|}·δopt cells, and the vertex-cover-based δP bound indeed
// sandwiches δopt ≤ δP ≤ 2α·δopt... the left inequality (δopt ≤ α·|C2opt|
// as an upper bound on the performed changes) and the global factor are
// what Theorem 3 promises.
func TestTheorem3EndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	checked := 0
	for trial := 0; trial < 200 && checked < 60; trial++ {
		width := 2 + rng.Intn(2) // ≤ 3 attrs × ≤ 8 tuples = ≤ 24 cells
		n := 4 + rng.Intn(5)
		if n*width > MaxCells {
			continue
		}
		in := testkit.RandomInstance(rng, n, width, 2)
		sigma := testkit.RandomFDs(rng, width, 1+rng.Intn(2), 1)
		dopt, _, err := DeltaOpt(in, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if dopt == 0 {
			continue
		}
		checked++
		alpha := width - 1
		if len(sigma) < alpha {
			alpha = len(sigma)
		}
		rep, err := repair.RepairData(in, sigma, nil, int64(trial), nil)
		if err != nil {
			t.Fatal(err)
		}
		bound := 2 * alpha * dopt
		if rep.NumChanges() > bound {
			t.Fatalf("trial %d: repair changed %d cells > 2α·δopt = %d (δopt=%d, α=%d)\nΣ=%v\n%s",
				trial, rep.NumChanges(), bound, dopt, alpha, sigma, in)
		}
		// And the certified budget itself respects the factor.
		an := conflict.New(in, sigma)
		if deltaP := alpha * an.CoverSize(nil); deltaP > bound {
			t.Fatalf("trial %d: δP=%d exceeds 2α·δopt=%d", trial, deltaP, bound)
		}
		// Sanity: a minimum vertex cover never exceeds δopt.
		edges := testkit.Edges(in, sigma)
		if opt := testkit.MinVertexCover(edges); opt > dopt {
			t.Fatalf("trial %d: min vertex cover %d exceeds δopt %d", trial, opt, dopt)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d violating instances checked; generator too clean", checked)
	}
}
