package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// DataPerturbation is a perturbed instance Id together with the cells that
// were modified relative to the clean instance Ic (the ground truth the
// quality metrics score against).
type DataPerturbation struct {
	Instance *relation.Instance
	Cells    []relation.CellRef
}

// PerturbData implements the paper's two violation injectors. rate is the
// fraction of tuples that receive one injected cell error (the paper calls
// it the "Data Error Rate"; errors are necessarily sparse relative to the
// instance — Section 3.1 relies on that). Each injected change creates at
// least one new violation of sigma:
//
//   - Right-hand-side violation: find ti, tj agreeing on X∪{A} for some
//     X→A ∈ Σ and set ti[A] to a different domain value.
//   - Left-hand-side violation: find ti, tj with ti[X\{B}] = tj[X\{B}],
//     ti[B] ≠ tj[B], ti[A] ≠ tj[A], and set ti[B] = tj[B].
//
// Both kinds are attempted in equal proportion; if the data offers no site
// for one kind, the other fills in. The clean input is not modified.
func PerturbData(in *relation.Instance, sigma fd.Set, rate float64, seed int64) (*DataPerturbation, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("gen: data error rate %v outside [0,1]", rate)
	}
	want := int(rate*float64(in.N()) + 0.5)
	out := in.Clone()
	rng := rand.New(rand.NewSource(seed))
	var cells []relation.CellRef
	touched := make(map[relation.CellRef]bool)

	for len(cells) < want {
		kind := rng.Intn(2)
		var cell *relation.CellRef
		if kind == 0 {
			cell = injectRHS(out, sigma, rng, touched)
			if cell == nil {
				cell = injectLHS(out, sigma, rng, touched)
			}
		} else {
			cell = injectLHS(out, sigma, rng, touched)
			if cell == nil {
				cell = injectRHS(out, sigma, rng, touched)
			}
		}
		if cell == nil {
			return nil, fmt.Errorf("gen: could not inject %d errors (placed %d); instance has no remaining violation sites", want, len(cells))
		}
		touched[*cell] = true
		cells = append(cells, *cell)
	}
	return &DataPerturbation{Instance: out, Cells: cells}, nil
}

// partitionBy groups every tuple by its projection on X using the shared
// columnar partitioner, returning the groups ordered by first tuple index.
// That order equals the first-seen order of the projected keys in a 0..N
// scan (each group's members stay in ascending tuple order because
// refinement is stable), which the injectors' rng draws depend on — the
// partitioner's own nested refinement order would differ and silently
// reshuffle every seeded perturbation. The groups alias the partitioner's
// scratch and are valid until its next use.
func partitionBy(p *relation.Partitioner, X relation.AttrSet) [][]int32 {
	p.BeginAll()
	p.RefineSet(X)
	pt := p.Partition()
	groups := make([][]int32, pt.NumGroups())
	for i := range groups {
		groups[i] = pt.Group(i)
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
	return groups
}

// injectRHS finds a pair agreeing on X∪{A} and corrupts one side's A.
func injectRHS(in *relation.Instance, sigma fd.Set, rng *rand.Rand, touched map[relation.CellRef]bool) *relation.CellRef {
	fdOrder := rng.Perm(len(sigma))
	part := relation.NewPartitioner(in)
	for _, fi := range fdOrder {
		f := sigma[fi]
		var candidates []int
		for _, g := range partitionBy(part, f.LHS.Add(f.RHS)) {
			if len(g) >= 2 {
				for _, t := range g {
					if !touched[relation.CellRef{Tuple: int(t), Attr: f.RHS}] {
						candidates = append(candidates, int(t))
					}
				}
			}
		}
		if len(candidates) == 0 {
			continue
		}
		t := candidates[rng.Intn(len(candidates))]
		old := in.Tuples[t][f.RHS].Str()
		in.Tuples[t][f.RHS] = relation.Const(old + "#err" + itoa(rng.Intn(1<<30)))
		in.InvalidateCodes()
		return &relation.CellRef{Tuple: t, Attr: f.RHS}
	}
	return nil
}

// injectLHS finds ti, tj differing on one LHS attribute B and on A, and
// copies tj[B] into ti[B], which makes the pair agree on X but not on A.
func injectLHS(in *relation.Instance, sigma fd.Set, rng *rand.Rand, touched map[relation.CellRef]bool) *relation.CellRef {
	fdOrder := rng.Perm(len(sigma))
	part := relation.NewPartitioner(in)
	for _, fi := range fdOrder {
		f := sigma[fi]
		if f.LHS.Len() == 0 {
			continue
		}
		colA, _ := in.Codes(f.RHS)
		attrs := f.LHS.Attrs()
		rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
		for _, b := range attrs {
			colB, _ := in.Codes(b)
			type site struct{ ti, tj int }
			var sites []site
			for _, g := range partitionBy(part, f.LHS.Remove(b)) {
				if len(g) < 2 {
					continue
				}
				// Any pair differing on both B and A works; scan a few.
				for x := 0; x < len(g) && len(sites) < 64; x++ {
					for y := x + 1; y < len(g) && len(sites) < 64; y++ {
						ti, tj := int(g[x]), int(g[y])
						if touched[relation.CellRef{Tuple: ti, Attr: b}] {
							continue
						}
						if colB[ti] != colB[tj] && colA[ti] != colA[tj] {
							sites = append(sites, site{ti, tj})
						}
					}
				}
			}
			if len(sites) == 0 {
				continue
			}
			s := sites[rng.Intn(len(sites))]
			in.Tuples[s.ti][b] = in.Tuples[s.tj][b]
			in.InvalidateCodes()
			return &relation.CellRef{Tuple: s.ti, Attr: b}
		}
	}
	return nil
}

// FDPerturbation is a weakened FD set Σd with, per FD, the LHS attributes
// removed from the clean set Σc (the ground truth for FD quality metrics).
type FDPerturbation struct {
	Sigma   fd.Set
	Removed []relation.AttrSet
}

// TotalRemoved counts the removed attributes across all FDs.
func (p FDPerturbation) TotalRemoved() int {
	total := 0
	for _, r := range p.Removed {
		total += r.Len()
	}
	return total
}

// PerturbFDs removes a fraction rate of each FD's LHS attributes (rounded
// half away from zero), never dropping an FD's last LHS attribute. This is
// the paper's FD perturbation: Σd's FDs are too weak and over-fire on the
// clean data.
func PerturbFDs(sigma fd.Set, rate float64, seed int64) (FDPerturbation, error) {
	if rate < 0 || rate > 1 {
		return FDPerturbation{}, fmt.Errorf("gen: FD error rate %v outside [0,1]", rate)
	}
	rng := rand.New(rand.NewSource(seed))
	out := FDPerturbation{Sigma: make(fd.Set, len(sigma)), Removed: make([]relation.AttrSet, len(sigma))}
	for i, f := range sigma {
		k := int(rate*float64(f.LHS.Len()) + 0.5)
		if k >= f.LHS.Len() {
			k = f.LHS.Len() - 1 // keep at least one LHS attribute
		}
		attrs := f.LHS.Attrs()
		rng.Shuffle(len(attrs), func(x, y int) { attrs[x], attrs[y] = attrs[y], attrs[x] })
		var removed relation.AttrSet
		lhs := f.LHS
		for _, a := range attrs[:k] {
			removed = removed.Add(a)
			lhs = lhs.Remove(a)
		}
		out.Sigma[i] = fd.FD{LHS: lhs, RHS: f.RHS}
		out.Removed[i] = removed
	}
	return out, nil
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}
