package gen

import (
	"testing"

	"relatrust/internal/discovery"
	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

func TestCensusSpecShape(t *testing.T) {
	s := CensusSpec()
	if s.Schema.Width() != 34 {
		t.Fatalf("census width = %d, want 34 (the paper uses 34 attributes)", s.Schema.Width())
	}
	if len(s.Domains) != 34 {
		t.Fatal("domains mismatch")
	}
	for i, d := range s.Domains {
		if d < 2 {
			t.Errorf("attribute %d has degenerate domain %d", i, d)
		}
	}
}

func TestSubSpec(t *testing.T) {
	s := SubSpec(CensusSpec(), 10)
	if s.Schema.Width() != 10 || len(s.Domains) != 10 {
		t.Fatal("SubSpec shape")
	}
	if SubSpec(CensusSpec(), 0).Schema.Width() != 34 {
		t.Error("width 0 should mean full schema")
	}
}

func TestGeneratePlantsFDsExactly(t *testing.T) {
	spec := CensusSpec()
	sigma := fd.Set{PaperFD(spec)}
	in, err := Generate(spec, sigma, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 2000 {
		t.Fatalf("n = %d", in.N())
	}
	if !sigma.SatisfiedBy(in) {
		t.Fatal("planted FD does not hold")
	}
}

func TestGeneratedFDBreaksWhenWeakened(t *testing.T) {
	// Removing LHS attributes from the planted FD must create violations —
	// otherwise the perturbation experiments are vacuous.
	spec := CensusSpec()
	f := PaperFD(spec)
	in, err := Generate(spec, fd.Set{f}, 3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	weak := fd.Set{{LHS: relation.NewAttrSet(0), RHS: f.RHS}}
	if weak.SatisfiedBy(in) {
		t.Fatal("weakened FD still holds; derivation is not using all LHS attributes")
	}
}

func TestGenerateChainedFDs(t *testing.T) {
	spec := SubSpec(CensusSpec(), 8)
	sigma := fd.Set{
		fd.MustNew(relation.NewAttrSet(0, 1), 2), // A,B -> C
		fd.MustNew(relation.NewAttrSet(2, 3), 4), // C,D -> E (depends on first)
	}
	in, err := Generate(spec, sigma, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !sigma.SatisfiedBy(in) {
		t.Fatal("chained planted FDs do not hold")
	}
}

func TestGenerateRejectsSharedRHS(t *testing.T) {
	spec := SubSpec(CensusSpec(), 6)
	sigma := fd.Set{
		fd.MustNew(relation.NewAttrSet(0), 2),
		fd.MustNew(relation.NewAttrSet(1), 2),
	}
	if _, err := Generate(spec, sigma, 10, 0); err == nil {
		t.Fatal("shared RHS must be rejected")
	}
}

func TestGenerateRejectsCycle(t *testing.T) {
	spec := SubSpec(CensusSpec(), 6)
	sigma := fd.Set{
		fd.MustNew(relation.NewAttrSet(0, 1), 2),
		fd.MustNew(relation.NewAttrSet(2, 3), 1),
	}
	if _, err := Generate(spec, sigma, 10, 0); err == nil {
		t.Fatal("derivation cycle must be rejected")
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	spec := SubSpec(CensusSpec(), 8)
	sigma := fd.Set{fd.MustNew(relation.NewAttrSet(0, 1), 5)}
	a, _ := Generate(spec, sigma, 100, 7)
	b, _ := Generate(spec, sigma, 100, 7)
	for i := range a.Tuples {
		if !a.Tuples[i].Equal(b.Tuples[i]) {
			t.Fatal("same seed produced different data")
		}
	}
	c, _ := Generate(spec, sigma, 100, 8)
	same := true
	for i := range a.Tuples {
		if !a.Tuples[i].Equal(c.Tuples[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestDiscoveryFindsPlantedFD(t *testing.T) {
	// End-to-end sanity: the discovery substrate recovers a planted FD
	// (restricted to the relevant attributes to keep the lattice small).
	spec := SubSpec(CensusSpec(), 6)
	f := fd.MustNew(relation.NewAttrSet(0, 1), 5)
	in, err := Generate(spec, fd.Set{f}, 800, 4)
	if err != nil {
		t.Fatal(err)
	}
	found, err := discovery.Discover(in, discovery.Options{MaxLHS: 2, Attrs: relation.NewAttrSet(0, 1, 5)})
	if err != nil {
		t.Fatal(err)
	}
	ok := false
	for _, g := range found {
		if g.RHS == 5 && g.LHS.SubsetOf(f.LHS) {
			ok = true
		}
	}
	if !ok {
		t.Errorf("planted FD not rediscovered; got %v", found)
	}
}
