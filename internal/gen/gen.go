// Package gen synthesizes the experimental workloads of Section 8.1.
//
// The paper evaluates on the UCI Census-Income (KDD) data set (300k tuples,
// 34 attributes used) with FDs discovered from the clean data. That data
// set is not redistributable here and the build is offline, so this package
// generates a census-like relation instead: 34 attributes with realistic
// domain sizes, where the attributes on the right-hand side of a chosen FD
// set are *derived* deterministically from their LHS values — the planted
// FDs hold exactly, and removing any LHS attribute breaks the derivation
// generically, which is precisely the structure the paper's perturbation
// operators need. Both perturbation operators (right-hand-side violations
// and left-hand-side violations) and the FD perturbation (LHS-attribute
// removal) follow the paper's definitions.
package gen

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// Spec describes a generatable relation: its schema and the domain size of
// each attribute.
type Spec struct {
	Schema  *relation.Schema
	Domains []int
}

// censusAttrs mirrors the 34 Census-Income attributes the paper uses, with
// domain sizes close to the real data set's distinct-value counts.
var censusAttrs = []struct {
	name string
	dom  int
}{
	{"age", 70}, {"class_of_worker", 9}, {"industry_code", 52},
	{"occupation_code", 47}, {"education", 17}, {"wage_per_hour", 200},
	{"enroll_in_edu", 3}, {"marital_stat", 7}, {"major_industry", 24},
	{"major_occupation", 15}, {"race", 5}, {"hispanic_origin", 10},
	{"sex", 2}, {"union_member", 3}, {"unemp_reason", 6},
	{"employment_stat", 8}, {"capital_gains", 132}, {"capital_losses", 113},
	{"dividends", 123}, {"tax_filer_stat", 6}, {"region_prev_res", 6},
	{"state_prev_res", 51}, {"household_family_stat", 38},
	{"household_summary", 8}, {"migration_msa", 10}, {"migration_reg", 9},
	{"migration_within_reg", 10}, {"live_here_1yr", 3},
	{"migration_sunbelt", 4}, {"num_persons_worked", 7},
	{"family_members_u18", 5}, {"country_father", 43},
	{"country_mother", 43}, {"country_self", 43},
}

// CensusSpec returns the 34-attribute census-like specification.
func CensusSpec() Spec {
	names := make([]string, len(censusAttrs))
	doms := make([]int, len(censusAttrs))
	for i, a := range censusAttrs {
		names[i] = a.name
		doms[i] = a.dom
	}
	return Spec{Schema: relation.MustSchema(names...), Domains: doms}
}

// SubSpec restricts a spec to its first width attributes (the paper's
// attribute-scalability experiment excludes attributes from the relation).
func SubSpec(s Spec, width int) Spec {
	if width <= 0 || width > s.Schema.Width() {
		width = s.Schema.Width()
	}
	return Spec{
		Schema:  relation.MustSchema(s.Schema.Names()[:width]...),
		Domains: append([]int(nil), s.Domains[:width]...),
	}
}

// PaperFD returns the FD shape used by the quality experiments: the first
// six attributes determine the seventh. The spec must have ≥7 attributes.
func PaperFD(s Spec) fd.FD {
	return fd.MustNew(relation.NewAttrSet(0, 1, 2, 3, 4, 5), 6)
}

// TwoFDs returns the two-FD workload of the scalability experiments, with
// disjoint RHS attributes. The spec must have ≥10 attributes.
func TwoFDs(s Spec) fd.Set {
	return fd.Set{
		fd.MustNew(relation.NewAttrSet(0, 1, 2), 6),
		fd.MustNew(relation.NewAttrSet(3, 4, 5), 7),
	}
}

// ReplicatedFDs replicates one FD k times, simulating larger Σ as the
// paper's FD-scalability experiment does.
func ReplicatedFDs(f fd.FD, k int) fd.Set {
	set := make(fd.Set, k)
	for i := range set {
		set[i] = f
	}
	return set
}

// Config tunes the generator's duplication model. Real census data is full
// of near-duplicate records (the paper's Example 1 blames inconsistencies
// on exactly that); without them no two tuples would ever agree on a wide
// LHS and the perturbation operators would find no violation sites.
type Config struct {
	N    int
	Seed int64
	// DupRate is the fraction of tuples generated as near-duplicates of
	// an earlier tuple. Default (zero value) 0.5.
	DupRate float64
	// ChurnAttrs is how many non-derived attributes of a duplicate are
	// re-drawn. Default 2.
	ChurnAttrs int
}

// Generate produces n tuples over the spec such that every FD in sigma
// holds exactly, with the default duplication model. See GenerateWith.
func Generate(s Spec, sigma fd.Set, n int, seed int64) (*relation.Instance, error) {
	return GenerateWith(s, sigma, Config{N: n, Seed: seed})
}

// GenerateWith produces tuples over the spec such that every FD in sigma
// holds exactly: RHS attributes are computed as a deterministic hash of
// their LHS values, so duplicates and churned duplicates stay consistent.
// FDs must have distinct RHS attributes and must not form derivation
// cycles.
func GenerateWith(s Spec, sigma fd.Set, cfg Config) (*relation.Instance, error) {
	width := s.Schema.Width()
	order, err := derivationOrder(sigma, width)
	if err != nil {
		return nil, err
	}
	if cfg.DupRate == 0 {
		cfg.DupRate = 0.5
	}
	if cfg.DupRate < 0 { // explicit "no duplicates"
		cfg.DupRate = 0
	}
	if cfg.ChurnAttrs <= 0 {
		cfg.ChurnAttrs = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := relation.NewInstance(s.Schema)
	row := make([]string, width)
	derived := make(map[int]fd.FD, len(sigma))
	for _, f := range sigma {
		derived[f.RHS] = f
	}
	for t := 0; t < cfg.N; t++ {
		if t > 0 && rng.Float64() < cfg.DupRate {
			// Near-duplicate: copy an earlier tuple, re-draw a few
			// non-derived attributes, recompute the derived ones.
			src := in.Tuples[rng.Intn(t)]
			for a := 0; a < width; a++ {
				row[a] = src[a].Str()
			}
			for c := 0; c < cfg.ChurnAttrs; c++ {
				a := rng.Intn(width)
				if _, isDerived := derived[a]; isDerived {
					continue
				}
				row[a] = valueOf(s, a, rng.Intn(s.Domains[a]))
			}
		} else {
			for a := 0; a < width; a++ {
				if _, isDerived := derived[a]; !isDerived {
					row[a] = valueOf(s, a, rng.Intn(s.Domains[a]))
				}
			}
		}
		for _, a := range order {
			f := derived[a]
			row[a] = valueOf(s, a, deriveIndex(row, f.LHS, a, s.Domains[a]))
		}
		if err := in.AppendConsts(row...); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// valueOf renders the k-th domain value of attribute a.
func valueOf(s Spec, a, k int) string {
	return fmt.Sprintf("%s_%d", s.Schema.Name(a), k)
}

// deriveIndex maps LHS values to a stable domain index for the RHS.
func deriveIndex(row []string, lhs relation.AttrSet, rhs, dom int) int {
	h := fnv.New64a()
	lhs.ForEach(func(a int) bool {
		_, _ = h.Write([]byte(row[a]))
		_, _ = h.Write([]byte{0x1f})
		return true
	})
	_, _ = h.Write([]byte{byte(rhs)})
	return int(h.Sum64() % uint64(dom))
}

// derivationOrder topologically sorts the derived attributes so chained
// FDs (RHS feeding another FD's LHS) are computed after their inputs.
func derivationOrder(sigma fd.Set, width int) ([]int, error) {
	byRHS := make(map[int]fd.FD, len(sigma))
	for _, f := range sigma {
		if f.RHS >= width || f.LHS.Max() >= width {
			return nil, fmt.Errorf("gen: FD %s is outside the %d-attribute schema", f, width)
		}
		if prev, dup := byRHS[f.RHS]; dup && !prev.Equal(f) {
			return nil, fmt.Errorf("gen: two planted FDs share RHS attribute %d; the derivations would conflict", f.RHS)
		}
		byRHS[f.RHS] = f
	}
	var order []int
	state := make(map[int]int, len(byRHS)) // 0 unseen, 1 visiting, 2 done
	var visit func(a int) error
	visit = func(a int) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("gen: planted FDs form a derivation cycle through attribute %d", a)
		case 2:
			return nil
		}
		state[a] = 1
		if f, ok := byRHS[a]; ok {
			var err error
			f.LHS.ForEach(func(b int) bool {
				if _, isDerived := byRHS[b]; isDerived {
					err = visit(b)
				}
				return err == nil
			})
			if err != nil {
				return err
			}
			order = append(order, a)
		}
		state[a] = 2
		return nil
	}
	for a := range byRHS {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	// Deterministic order among independent derivations.
	sortInts(order)
	return orderRespectingDeps(order, byRHS), nil
}

// orderRespectingDeps re-sorts the sorted attribute list so dependencies
// still precede dependents (stable Kahn pass over the sorted candidates).
func orderRespectingDeps(sorted []int, byRHS map[int]fd.FD) []int {
	done := make(map[int]bool, len(sorted))
	var out []int
	for len(out) < len(sorted) {
		progressed := false
		for _, a := range sorted {
			if done[a] {
				continue
			}
			ready := true
			byRHS[a].LHS.ForEach(func(b int) bool {
				if _, isDerived := byRHS[b]; isDerived && !done[b] {
					ready = false
				}
				return ready
			})
			if ready {
				done[a] = true
				out = append(out, a)
				progressed = true
			}
		}
		if !progressed { // unreachable: cycles were rejected above
			break
		}
	}
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
