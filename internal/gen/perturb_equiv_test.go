package gen

// The seed implementation of the violation injectors grouped tuples by
// concatenated string projection keys. The port in perturb.go runs on the
// shared columnar partitioner instead; the oracles below reproduce the
// string-keyed versions verbatim, and the tests assert the port consumes
// the rng identically — same cells, same corrupted values, for every seed.

import (
	"fmt"
	"math/rand"
	"testing"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

func oraclePerturbData(in *relation.Instance, sigma fd.Set, rate float64, seed int64) (*DataPerturbation, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("gen: data error rate %v outside [0,1]", rate)
	}
	want := int(rate*float64(in.N()) + 0.5)
	out := in.Clone()
	rng := rand.New(rand.NewSource(seed))
	var cells []relation.CellRef
	touched := make(map[relation.CellRef]bool)

	for len(cells) < want {
		kind := rng.Intn(2)
		var cell *relation.CellRef
		if kind == 0 {
			cell = oracleInjectRHS(out, sigma, rng, touched)
			if cell == nil {
				cell = oracleInjectLHS(out, sigma, rng, touched)
			}
		} else {
			cell = oracleInjectLHS(out, sigma, rng, touched)
			if cell == nil {
				cell = oracleInjectRHS(out, sigma, rng, touched)
			}
		}
		if cell == nil {
			return nil, fmt.Errorf("gen: could not inject %d errors (placed %d)", want, len(cells))
		}
		touched[*cell] = true
		cells = append(cells, *cell)
	}
	return &DataPerturbation{Instance: out, Cells: cells}, nil
}

func oracleInjectRHS(in *relation.Instance, sigma fd.Set, rng *rand.Rand, touched map[relation.CellRef]bool) *relation.CellRef {
	fdOrder := rng.Perm(len(sigma))
	for _, fi := range fdOrder {
		f := sigma[fi]
		groups := make(map[string][]int, in.N())
		order := make([]string, 0, in.N())
		xa := f.LHS.Add(f.RHS)
		for t := 0; t < in.N(); t++ {
			key := in.Project(t, xa)
			if _, seen := groups[key]; !seen {
				order = append(order, key)
			}
			groups[key] = append(groups[key], t)
		}
		var candidates []int
		for _, key := range order { // deterministic: first-seen key order
			g := groups[key]
			if len(g) >= 2 {
				for _, t := range g {
					if !touched[relation.CellRef{Tuple: t, Attr: f.RHS}] {
						candidates = append(candidates, t)
					}
				}
			}
		}
		if len(candidates) == 0 {
			continue
		}
		t := candidates[rng.Intn(len(candidates))]
		old := in.Tuples[t][f.RHS].Str()
		in.Tuples[t][f.RHS] = relation.Const(old + "#err" + itoa(rng.Intn(1<<30)))
		in.InvalidateCodes()
		return &relation.CellRef{Tuple: t, Attr: f.RHS}
	}
	return nil
}

func oracleInjectLHS(in *relation.Instance, sigma fd.Set, rng *rand.Rand, touched map[relation.CellRef]bool) *relation.CellRef {
	fdOrder := rng.Perm(len(sigma))
	for _, fi := range fdOrder {
		f := sigma[fi]
		if f.LHS.Len() == 0 {
			continue
		}
		attrs := f.LHS.Attrs()
		rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
		for _, b := range attrs {
			rest := f.LHS.Remove(b)
			groups := make(map[string][]int, in.N())
			order := make([]string, 0, in.N())
			for t := 0; t < in.N(); t++ {
				key := in.Project(t, rest)
				if _, seen := groups[key]; !seen {
					order = append(order, key)
				}
				groups[key] = append(groups[key], t)
			}
			type site struct{ ti, tj int }
			var sites []site
			for _, key := range order { // deterministic: first-seen key order
				g := groups[key]
				if len(g) < 2 {
					continue
				}
				for x := 0; x < len(g) && len(sites) < 64; x++ {
					for y := x + 1; y < len(g) && len(sites) < 64; y++ {
						ti, tj := g[x], g[y]
						if touched[relation.CellRef{Tuple: ti, Attr: b}] {
							continue
						}
						if !in.Tuples[ti][b].Equal(in.Tuples[tj][b]) &&
							!in.Tuples[ti][f.RHS].Equal(in.Tuples[tj][f.RHS]) {
							sites = append(sites, site{ti, tj})
						}
					}
				}
			}
			if len(sites) == 0 {
				continue
			}
			s := sites[rng.Intn(len(sites))]
			in.Tuples[s.ti][b] = in.Tuples[s.tj][b]
			in.InvalidateCodes()
			return &relation.CellRef{Tuple: s.ti, Attr: b}
		}
	}
	return nil
}

// TestPerturbDataMatchesStringKeyedOracle drives both implementations over
// single- and multi-FD workloads across a seed sweep and requires identical
// injected cells and identical resulting instances.
func TestPerturbDataMatchesStringKeyedOracle(t *testing.T) {
	spec := SubSpec(CensusSpec(), 10)
	single := fd.Set{fd.MustNew(relation.NewAttrSet(0, 1, 2), 6)}
	multi := fd.Set{
		fd.MustNew(relation.NewAttrSet(0, 1, 2), 6),
		fd.MustNew(relation.NewAttrSet(3, 4), 7),
		fd.MustNew(relation.NewAttrSet(5), 8),
	}
	for _, tc := range []struct {
		name  string
		sigma fd.Set
		n     int
		rate  float64
	}{
		{"single-fd", single, 800, 0.05},
		{"multi-fd", multi, 600, 0.08},
		{"dense", multi, 300, 0.2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in, err := Generate(spec, tc.sigma, tc.n, 11)
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < 8; seed++ {
				got, gotErr := PerturbData(in, tc.sigma, tc.rate, seed)
				want, wantErr := oraclePerturbData(in, tc.sigma, tc.rate, seed)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("seed %d: err = %v, oracle err = %v", seed, gotErr, wantErr)
				}
				if gotErr != nil {
					continue
				}
				if len(got.Cells) != len(want.Cells) {
					t.Fatalf("seed %d: %d cells, oracle %d", seed, len(got.Cells), len(want.Cells))
				}
				for i := range want.Cells {
					if got.Cells[i] != want.Cells[i] {
						t.Fatalf("seed %d: cell %d = %v, oracle %v", seed, i, got.Cells[i], want.Cells[i])
					}
				}
				diff, err := got.Instance.DiffCells(want.Instance)
				if err != nil {
					t.Fatal(err)
				}
				if len(diff) != 0 {
					t.Fatalf("seed %d: instances differ at %v", seed, diff[0])
				}
			}
		})
	}
}
