package gen

import (
	"testing"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

func cleanWorkload(t *testing.T, n int) (*relation.Instance, fd.Set) {
	t.Helper()
	spec := SubSpec(CensusSpec(), 10)
	sigma := fd.Set{fd.MustNew(relation.NewAttrSet(0, 1, 2), 6)}
	in, err := Generate(spec, sigma, n, 11)
	if err != nil {
		t.Fatal(err)
	}
	return in, sigma
}

func TestPerturbDataInjectsViolations(t *testing.T) {
	in, sigma := cleanWorkload(t, 1500)
	p, err := PerturbData(in, sigma, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := 75 // 5% of 1500 tuples
	if len(p.Cells) != want {
		t.Fatalf("injected %d errors, want %d", len(p.Cells), want)
	}
	if sigma.SatisfiedBy(p.Instance) {
		t.Fatal("perturbed instance still satisfies Σ")
	}
	if !sigma.SatisfiedBy(in) {
		t.Fatal("PerturbData mutated its input")
	}
	// Every reported cell actually differs from the clean instance.
	for _, c := range p.Cells {
		if in.Tuples[c.Tuple][c.Attr].Equal(p.Instance.Tuples[c.Tuple][c.Attr]) {
			t.Errorf("cell %v reported changed but is identical", c)
		}
	}
	// The number of modified cells matches the report (no hidden changes).
	diff, err := in.DiffCells(p.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != len(p.Cells) {
		t.Errorf("DiffCells = %d, reported = %d", len(diff), len(p.Cells))
	}
}

func TestPerturbDataZeroRate(t *testing.T) {
	in, sigma := cleanWorkload(t, 200)
	p, err := PerturbData(in, sigma, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cells) != 0 {
		t.Error("zero rate must inject nothing")
	}
	if !sigma.SatisfiedBy(p.Instance) {
		t.Error("zero-rate output must stay clean")
	}
}

func TestPerturbDataRejectsBadRate(t *testing.T) {
	in, sigma := cleanWorkload(t, 50)
	if _, err := PerturbData(in, sigma, -0.1, 0); err == nil {
		t.Error("negative rate must fail")
	}
	if _, err := PerturbData(in, sigma, 1.5, 0); err == nil {
		t.Error("rate > 1 must fail")
	}
}

func TestPerturbFDsRemovesRequestedFraction(t *testing.T) {
	schema := relation.MustSchema("A", "B", "C", "D", "E", "F", "G")
	sigma := fd.Set{fd.MustNew(relation.NewAttrSet(0, 1, 2, 3, 4, 5), 6)}
	for _, tc := range []struct {
		rate float64
		want int
	}{
		{0, 0}, {0.3, 2}, {0.5, 3}, {0.8, 5}, {1.0, 5 /* keeps one attr */},
	} {
		p, err := PerturbFDs(sigma, tc.rate, 9)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.TotalRemoved(); got != tc.want {
			t.Errorf("rate %v: removed %d, want %d", tc.rate, got, tc.want)
		}
		if p.Sigma[0].LHS.Len() != 6-p.TotalRemoved() {
			t.Errorf("rate %v: LHS size inconsistent", tc.rate)
		}
		if p.Sigma[0].LHS.Intersects(p.Removed[0]) {
			t.Errorf("rate %v: removed attrs still present", tc.rate)
		}
		if p.Sigma[0].LHS.Union(p.Removed[0]) != sigma[0].LHS {
			t.Errorf("rate %v: LHS ∪ removed ≠ original", tc.rate)
		}
	}
	_ = schema
}

func TestPerturbFDsWeakenedSetOverFires(t *testing.T) {
	in, sigma := cleanWorkload(t, 1200)
	p, err := PerturbFDs(sigma, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Sigma.SatisfiedBy(in) {
		t.Fatal("weakened FD still holds on clean data; perturbation is vacuous")
	}
	if !sigma.SatisfiedBy(in) {
		t.Fatal("clean data must satisfy the clean FDs")
	}
}
