package search

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"relatrust/internal/components"
	"relatrust/internal/conflict"
	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/weights"
)

// Options tunes the FD-modification search. The zero value selects the
// paper's A*-Repair with default knobs.
type Options struct {
	// BestFirst disables the gc(S) lower bound and explores in plain
	// state-cost order (the Best-First-Repair baseline). The zero value is
	// the paper's A*-Repair — deliberately, so an unset Options can never
	// silently select the baseline algorithm.
	BestFirst bool
	// MaxDiffSets caps |Ds|, the difference sets the heuristic reasons
	// about per state. Larger is tighter but more expensive. Default 3.
	MaxDiffSets int
	// ComboCap bounds the resolution cross-product enumerated per
	// difference set before the heuristic falls back to an aggregate
	// lower bound. Default 16.
	ComboCap int
	// CapPerCluster bounds conflict-graph edges sampled per violation
	// cluster when collecting difference sets. Default 50.
	CapPerCluster int
	// MaxVisited aborts the search after this many states have been
	// popped, as a runaway guard. Default 2,000,000.
	MaxVisited int
	// MatchSampleCap bounds the vertex-disjoint matching sample behind
	// the knapsack half of the heuristic. Default 2000.
	MatchSampleCap int
	// Workers sets the number of parallel evaluation workers: successor
	// scoring, the goal-test cover query, and open-list re-estimation fan
	// out across this many goroutines, each owning a forked
	// conflict.Analysis and a private cost cache. 1 runs the sequential
	// engine; <= 0 selects GOMAXPROCS. Results are bit-identical for every
	// worker count.
	Workers int
	// NoPartitionCache disables the per-worker partition cache of the
	// parallel engine. By default each worker's forked analysis memoizes
	// refined cluster partitions keyed by (cluster, extension-set) and
	// refines a child state's cover query incrementally from its parent's
	// snapshot; results are bit-identical either way (the cache is a
	// pure-function memo), so the knob exists for memory-constrained runs
	// and for measuring the cache's effect.
	NoPartitionCache bool
	// NoDecomposition disables conflict-hypergraph decomposition: every
	// goal-test cover query walks the whole instance monolithically, as the
	// engine did before internal/components existed. By default the searcher
	// decomposes the conflict graph into connected components once and
	// answers each query from per-component responses (memoized, and fanned
	// across the workers when enough components are affected); results are
	// bit-identical either way, so the knob exists for measuring the
	// decomposition's effect and as an escape hatch.
	NoDecomposition bool
	// Decomp supplies a pre-built component evaluator sharing this
	// searcher's analysis root (the session engine caches one per root, so
	// repeated sweeps skip the Decompose pass). Nil means the searcher
	// builds its own unless NoDecomposition is set. Ignored when
	// NoDecomposition is set.
	Decomp *components.Evaluator
}

func (o Options) withDefaults() Options {
	if o.MaxDiffSets <= 0 {
		o.MaxDiffSets = 3
	}
	if o.ComboCap <= 0 {
		o.ComboCap = 16
	}
	if o.CapPerCluster <= 0 {
		o.CapPerCluster = 50
	}
	if o.MaxVisited <= 0 {
		o.MaxVisited = 2_000_000
	}
	if o.MatchSampleCap <= 0 {
		o.MatchSampleCap = 2000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// DefaultOptions returns the A* configuration used by the paper's
// experiments.
func DefaultOptions() Options { return Options{}.withDefaults() }

// Stats reports search effort.
type Stats struct {
	Visited   int           // states popped from the open list
	Generated int           // child states created
	GCCalls   int           // heuristic evaluations
	Duration  time.Duration // wall-clock time of the search call
}

// Result is one FD repair: the extension vector, the corresponding FD set,
// its cost dist_c(Σ, Σ′), and the cover statistics that determine how many
// cell changes the data-repair phase needs.
type Result struct {
	State     State
	Sigma     fd.Set  // base set with extensions applied
	Cost      float64 // dist_c(Σ, Σ′) under the searcher's weighting
	CoverSize int     // |C2opt(Σ′, I)|
	DeltaP    int     // δP(Σ′, I) = α·CoverSize: upper bound on cell changes
	Stats     Stats
}

// Searcher runs FD-modification searches over one analyzed instance. The
// Searcher itself is not safe for concurrent use (it shares the analysis'
// scratch space); with Options.Workers > 1 each search call internally
// fans evaluations out over forked analyses while keeping results
// bit-identical to the sequential engine.
type Searcher struct {
	An    *conflict.Analysis
	W     weights.Func
	Opt   Options
	alpha int
	floor int // α·(permanent matching): hard lower bound on δP of every Σ′
	ds    []conflict.DiffSet
	h     *heuristic
	costs *costCache

	// decomp answers goal-test cover queries component-wise; nil when
	// Options.NoDecomposition reverts to the monolithic path.
	decomp *components.Evaluator

	// coverStats accumulates the workers' partition-cache counters across
	// the parallel runs of this searcher (see CoverCacheStats).
	coverStats conflict.CoverStats

	// lastStats is the final effort of the most recent run (see LastStats).
	lastStats Stats
}

// NewSearcher prepares a searcher: collects difference sets once and wires
// the heuristic. The weighting w prices LHS extensions.
func NewSearcher(an *conflict.Analysis, w weights.Func, opt Options) *Searcher {
	opt = opt.withDefaults()
	width := an.In.Schema.Width()
	alpha := width - 1
	if len(an.Sigma) < alpha {
		alpha = len(an.Sigma)
	}
	if alpha < 1 {
		alpha = 1
	}
	s := &Searcher{
		An:    an,
		W:     w,
		Opt:   opt,
		alpha: alpha,
		floor: alpha * an.PermanentMatching(),
		ds:    an.DiffSets(opt.CapPerCluster),
		costs: &costCache{w: w},
	}
	s.h = &heuristic{
		sigma:      an.Sigma,
		w:          s.costs,
		alpha:      alpha,
		maxDs:      opt.MaxDiffSets,
		comboCap:   opt.ComboCap,
		width:      width,
		matchDiffs: matchDiffs(an, opt.MatchSampleCap),
	}
	if !opt.NoDecomposition {
		if opt.Decomp != nil {
			s.decomp = opt.Decomp
		} else {
			s.decomp = components.NewEvaluator(an)
		}
	}
	return s
}

// coverSize answers the goal-test cover query for one state: through the
// component evaluator when decomposition is on, monolithically otherwise.
// Bit-identical either way.
func (s *Searcher) coverSize(st State) int {
	if s.decomp != nil {
		return s.decomp.CoverSize(s.An, st)
	}
	return s.An.CoverSize(st)
}

// ComponentStats reports the conflict-hypergraph decomposition driving the
// goal-test cover queries: the component count and largest component of
// the analyzed instance, and how many per-component evaluations were
// dispatched across the worker pool so far. Zero-valued when
// Options.NoDecomposition is set.
type ComponentStats struct {
	Components       int
	LargestComponent int
	ParallelEvals    int64
}

// ComponentStats returns the searcher's decomposition shape and the
// cumulative cross-component fan-out effort (see ComponentStats type).
func (s *Searcher) ComponentStats() ComponentStats {
	if s.decomp == nil {
		return ComponentStats{}
	}
	d := s.decomp.Decomposition()
	return ComponentStats{
		Components:       d.Components(),
		LargestComponent: d.LargestComponent(),
		ParallelEvals:    s.decomp.Counters().Parallel,
	}
}

// Alpha returns α = min{|R|−1, |Σ|}, the per-tuple change bound.
func (s *Searcher) Alpha() int { return s.alpha }

// DeltaPOriginal returns δP(Σ, I) for the unmodified FD set — the natural
// upper end of the τ range and the denominator of the relative threshold
// τr used throughout the experiments.
func (s *Searcher) DeltaPOriginal() int { return s.alpha * s.An.CoverSize(nil) }

// DiffSetCount reports how many distinct difference sets were collected.
func (s *Searcher) DiffSetCount() int { return len(s.ds) }

// LastStats returns the final effort of the most recent Find, FindRange or
// FindRangeStream call on this searcher, including runs that ended in an
// error or cancellation. Streaming callers use it to report whole-sweep
// effort after the last result was already delivered with a snapshot.
func (s *Searcher) LastStats() Stats { return s.lastStats }

// CoverCacheStats returns the aggregated cover-query refinement counters
// of the parallel engine's workers, summed over every search run on this
// searcher since construction. With the partition cache enabled, Hits and
// ParentHits measure how many cluster refinements were answered from (or
// incrementally off) cached parent-state partitions; RefineSteps is the
// work that remained. Zero-valued while only the sequential engine has
// run.
func (s *Searcher) CoverCacheStats() conflict.CoverStats { return s.coverStats }

// FeasibilityFloor returns the smallest τ for which any repair can exist:
// α times a maximal matching over conflict edges that no LHS extension
// resolves (tuple pairs identical except on an FD's RHS). Find(tau) with
// tau below this returns φ without searching.
func (s *Searcher) FeasibilityFloor() int { return s.floor }

// node is an open-list entry.
type node struct {
	state State
	cost  float64 // g: dist_c of the state itself
	gc    float64 // estimated cost of the cheapest goal descendant (= cost for best-first)
	seq   int     // insertion order, for deterministic tie-breaking
	index int     // heap bookkeeping
}

type openList []*node

func (o openList) Len() int { return len(o) }
func (o openList) Less(i, j int) bool {
	if o[i].gc != o[j].gc {
		return o[i].gc < o[j].gc
	}
	if o[i].cost != o[j].cost {
		return o[i].cost < o[j].cost
	}
	return o[i].seq < o[j].seq
}
func (o openList) Swap(i, j int) {
	o[i], o[j] = o[j], o[i]
	o[i].index, o[j].index = i, j
}
func (o *openList) Push(x any) {
	n := x.(*node)
	n.index = len(*o)
	*o = append(*o, n)
}
func (o *openList) Pop() any {
	old := *o
	n := old[len(old)-1]
	old[len(old)-1] = nil
	*o = old[:len(old)-1]
	return n
}

// Find implements Algorithm 2 (Modify_FDs): it returns the FD repair of
// minimum dist_c whose δP is at most tau, or nil if none exists (which can
// only happen if some conflicting pair differs solely on an FD's RHS, so no
// LHS extension resolves it, and tau is too small to repair it by data
// changes). Cancelling ctx aborts the search with context.Cause(ctx).
func (s *Searcher) Find(ctx context.Context, tau int) (*Result, error) {
	res, err := s.run(ctx, tau, tau, nil)
	if err != nil {
		return nil, err
	}
	if len(res) == 0 {
		return nil, nil
	}
	return res[0], nil
}

// FindRange implements Algorithm 6 (Find_Repairs_FDs): it returns the FD
// repairs for every distinct relative-trust level with τ in [tauLow,
// tauHigh], ordered by decreasing τ (increasing FD cost), reusing one open
// list across levels instead of re-running the search per τ. Cancelling
// ctx aborts the search with context.Cause(ctx).
func (s *Searcher) FindRange(ctx context.Context, tauLow, tauHigh int) ([]*Result, error) {
	if tauLow > tauHigh {
		return nil, fmt.Errorf("search: tauLow %d exceeds tauHigh %d", tauLow, tauHigh)
	}
	return s.run(ctx, tauLow, tauHigh, nil)
}

// FindRangeStream is FindRange delivering each result as soon as it is
// proven final instead of collecting the list. A found goal is *held* until
// either a goal of strictly different cost arrives (Definition 4 lets a
// later equal-cost goal with smaller δP supersede the held one) or the
// search ends — so emit sees exactly the results, in exactly the order,
// that FindRange would return. Results emitted mid-search carry the effort
// accumulated up to their finalization; the final held result carries the
// whole run's stats (see LastStats). An error returned by emit aborts the
// search and is returned verbatim; cancellation returns context.Cause(ctx).
func (s *Searcher) FindRangeStream(ctx context.Context, tauLow, tauHigh int, emit func(*Result) error) error {
	if tauLow > tauHigh {
		return fmt.Errorf("search: tauLow %d exceeds tauHigh %d", tauLow, tauHigh)
	}
	_, err := s.run(ctx, tauLow, tauHigh, emit)
	return err
}

// run is the shared engine: a single-τ search is a range search whose first
// goal ends it. The emit hook, when non-nil, streams finalized results (see
// FindRangeStream). Workers > 1 selects the pipelined parallel engine,
// which returns results bit-identical to the sequential one (see runPar).
func (s *Searcher) run(ctx context.Context, tauLow, tauHigh int, emit func(*Result) error) ([]*Result, error) {
	if s.Opt.Workers > 1 {
		return s.runPar(ctx, tauLow, tauHigh, emit)
	}
	return s.runSeq(ctx, tauLow, tauHigh, emit)
}

// resultSink collects the goals of one run and streams them to an optional
// emit hook with a one-goal lag: the most recent goal stays held because a
// later goal of equal cost supersedes it (the Definition 4 tie-break by
// smaller data distance). Everything before the held tail is final and is
// delivered eagerly; finish flushes the tail once the run is over and its
// stats are final.
type resultSink struct {
	results []*Result
	emit    func(*Result) error
	emitted int
}

// add records a goal, superseding the held tail on an equal-cost tie, and
// streams every result that just became final.
func (k *resultSink) add(r *Result) error {
	if n := len(k.results); n > 0 && math.Abs(k.results[n-1].Cost-r.Cost) < 1e-9 {
		// The superseded tail was never emitted: flush stops short of it.
		k.results[n-1] = r
	} else {
		k.results = append(k.results, r)
	}
	return k.flush(len(k.results) - 1)
}

// finish flushes the held tail; the caller must have finalized its stats.
func (k *resultSink) finish() error { return k.flush(len(k.results)) }

func (k *resultSink) flush(upTo int) error {
	for k.emit != nil && k.emitted < upTo {
		if err := k.emit(k.results[k.emitted]); err != nil {
			return err
		}
		k.emitted++
	}
	return nil
}

// runSeq is the sequential engine: everything happens on the calling
// goroutine against the searcher's own analysis and cost cache.
func (s *Searcher) runSeq(ctx context.Context, tauLow, tauHigh int, emit func(*Result) error) ([]*Result, error) {
	start := time.Now()
	stats := Stats{}
	defer func() { s.lastStats = stats }()
	tau := tauHigh
	sigma := s.An.Sigma
	width := s.An.In.Schema.Width()

	// Permanent conflicts put a hard floor under δP of every relaxation:
	// below it there is no goal anywhere in the space, so don't search.
	if tau < s.floor {
		return nil, nil
	}

	gcOf := func(st State, cost float64, tau int) float64 {
		if s.Opt.BestFirst {
			return cost
		}
		stats.GCCalls++
		return s.h.gc(st, s.ds, tau)
	}

	sink := resultSink{emit: emit}
	pq := &openList{}
	heap.Init(pq)
	seq := 0
	root := Root(len(sigma))
	rootCost := s.costs.StateCost(root)
	heap.Push(pq, &node{state: root, cost: rootCost, gc: gcOf(root, rootCost, tau), seq: seq})
	var childBuf []State

	for pq.Len() > 0 && tau >= tauLow {
		if ctx.Err() != nil {
			stats.Duration = time.Since(start)
			return nil, context.Cause(ctx)
		}
		if stats.Visited >= s.Opt.MaxVisited {
			stats.Duration = time.Since(start)
			return nil, &MaxVisitedError{Stats: stats}
		}
		n := heap.Pop(pq).(*node)
		stats.Visited++
		coverSize := s.coverSize(n.state)
		if coverSize*s.alpha <= tau {
			stats.Duration = time.Since(start)
			r := &Result{
				State:     n.state,
				Sigma:     n.state.Apply(sigma),
				Cost:      n.cost,
				CoverSize: coverSize,
				DeltaP:    coverSize * s.alpha,
				Stats:     stats,
			}
			// Definition 4 breaks dist_c ties by the smaller data distance:
			// a later goal with equal cost has strictly smaller δP (τ was
			// tightened below the previous goal's δP before it was found),
			// so it supersedes the previous result instead of joining it —
			// the sink holds the tail back until it is final.
			if err := sink.add(r); err != nil {
				return nil, err
			}
			// Demand strictly fewer data changes for the next repair
			// (Algorithm 6, line 10) and re-estimate the open list under
			// the tightened τ.
			tau = coverSize*s.alpha - 1
			if tau < tauLow || tau < s.floor {
				break
			}
			rebuilt := (*pq)[:0]
			for _, m := range *pq {
				m.gc = gcOf(m.state, m.cost, tau)
				if !math.IsInf(m.gc, 1) {
					m.index = len(rebuilt)
					rebuilt = append(rebuilt, m)
				}
			}
			*pq = rebuilt
			heap.Init(pq)
		}
		childBuf = n.state.Children(width, sigma, childBuf[:0])
		for _, c := range childBuf {
			stats.Generated++
			cost := s.costs.StateCost(c)
			gc := gcOf(c, cost, tau)
			if math.IsInf(gc, 1) {
				continue // no goal state can descend from c within τ
			}
			seq++
			heap.Push(pq, &node{state: c, cost: cost, gc: gc, seq: seq})
		}
	}
	stats.Duration = time.Since(start)
	// A cancel that raced the final iterations must not be reported as
	// success: callers streaming partial results rely on the Canceled
	// verdict to know the frontier is incomplete.
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	// Stamp the full-run stats on the results not yet delivered (all of
	// them in batch mode); already-emitted results keep their documented
	// effort-so-far snapshots.
	for _, r := range sink.results[sink.emitted:] {
		r.Stats = stats
	}
	if err := sink.finish(); err != nil {
		return nil, err
	}
	return sink.results, nil
}

// runPar is the parallel engine behind Options.Workers: the same A* loop
// as runSeq, with the three expensive per-iteration evaluations fanned out
// over an evalPool (see pool.go):
//
//   - the popped state's goal-test CoverSize runs on one worker, usually
//     prefetched one iteration early — while the children of the previous
//     pop were still being scored — by speculating that the current heap
//     top wins the next pop (cover queries do not depend on τ, so only a
//     child overtaking the top invalidates the prefetch);
//   - the popped state's children are batch-scored (StateCost + gc) across
//     the workers, speculatively under the current τ, and re-scored in the
//     rare case a goal tightens τ underneath them;
//   - after a goal, the open-list re-estimation fans out in chunks.
//
// Determinism: scores land in generation order regardless of worker finish
// order, children receive exactly the seq tie-breakers runSeq would assign,
// the re-estimation compaction visits nodes in heap-array order, and every
// worker computes bit-identical floats (forked analyses share the immutable
// clusters; cost caches memoize one deterministic weights.Func). The pop
// sequence — and therefore results, goal order, and stats — matches runSeq
// exactly. Stats count logical evaluations: discarded speculative work is
// not reported, so effort numbers stay comparable across worker counts.
func (s *Searcher) runPar(ctx context.Context, tauLow, tauHigh int, emit func(*Result) error) ([]*Result, error) {
	start := time.Now()
	stats := Stats{}
	defer func() { s.lastStats = stats }()
	tau := tauHigh
	sigma := s.An.Sigma
	width := s.An.In.Schema.Width()

	// Permanent conflicts put a hard floor under δP of every relaxation:
	// below it there is no goal anywhere in the space, so don't search.
	if tau < s.floor {
		return nil, nil
	}

	// The deferred close drains every in-flight and queued task before the
	// workers exit and their forks are released, so an early return — error,
	// cancellation, emit abort — never leaks a goroutine and never recycles
	// a fork a worker is still touching.
	pool := newEvalPool(s, s.Opt.Workers)
	defer pool.close()

	sink := resultSink{emit: emit}
	pq := &openList{}
	heap.Init(pq)
	seq := 0
	root := Root(len(sigma))
	rootCost := s.costs.StateCost(root)
	rootGC := rootCost
	if !s.Opt.BestFirst {
		stats.GCCalls++
		rootGC = s.h.gc(root, s.ds, tau)
	}
	heap.Push(pq, &node{state: root, cost: rootCost, gc: rootGC, seq: seq})

	var childBuf []State
	var scoreBuf []childScore
	var prefetch *coverTask // speculative goal test of the predicted next pop
	for pq.Len() > 0 && tau >= tauLow {
		if ctx.Err() != nil {
			prefetch.discard()
			stats.Duration = time.Since(start)
			return nil, context.Cause(ctx)
		}
		if err := pool.err(); err != nil {
			prefetch.discard()
			stats.Duration = time.Since(start)
			return nil, err
		}
		if stats.Visited >= s.Opt.MaxVisited {
			prefetch.discard()
			stats.Duration = time.Since(start)
			return nil, &MaxVisitedError{Stats: stats}
		}
		n := heap.Pop(pq).(*node)
		stats.Visited++
		cover := prefetch
		prefetch = nil
		if cover != nil && cover.forNode != n {
			cover.discard() // mispredicted: a pushed child overtook the heap top
			cover = nil
		}
		if cover == nil {
			cover = pool.startCover(n.state, n)
		}
		if pq.Len() > 0 {
			prefetch = pool.startCover((*pq)[0].state, (*pq)[0])
		}
		// Score the children under the current τ while the goal test (and
		// the prefetch for the next pop) are in flight.
		childBuf = n.state.Children(width, sigma, childBuf[:0])
		batch := pool.startScore(childBuf, tau, scoreBuf)
		coverSize := cover.wait()
		// A panicked cover query completes with a poisoned size; check the
		// pool before treating it as a goal (or pushing children scored by a
		// panicked worker).
		if err := pool.err(); err != nil {
			batch.discard()
			prefetch.discard()
			stats.Duration = time.Since(start)
			return nil, err
		}
		if coverSize*s.alpha <= tau {
			stats.Duration = time.Since(start)
			r := &Result{
				State:     n.state,
				Sigma:     n.state.Apply(sigma),
				Cost:      n.cost,
				CoverSize: coverSize,
				DeltaP:    coverSize * s.alpha,
				Stats:     stats,
			}
			// Same tie-break-by-data-distance replacement as runSeq.
			if err := sink.add(r); err != nil {
				batch.discard()
				prefetch.discard()
				return nil, err
			}
			tau = coverSize*s.alpha - 1
			if tau < tauLow || tau < s.floor {
				batch.discard()
				break
			}
			// τ tightened underneath the speculative child scores: drop
			// them, fan out the open-list re-estimation, and re-score the
			// children under the new τ.
			batch.discard()
			if !s.Opt.BestFirst {
				stats.GCCalls += pq.Len() + len(childBuf)
			}
			pool.reestimate(*pq, tau)
			rebuilt := (*pq)[:0]
			for _, m := range *pq {
				if !math.IsInf(m.gc, 1) {
					m.index = len(rebuilt)
					rebuilt = append(rebuilt, m)
				}
			}
			*pq = rebuilt
			heap.Init(pq)
			batch = pool.startScore(childBuf, tau, scoreBuf)
		} else if !s.Opt.BestFirst {
			stats.GCCalls += len(childBuf)
		}
		scores := batch.wait()
		scoreBuf = scores // keep the (possibly grown) buffer for the next batch
		stats.Generated += len(childBuf)
		for i := range childBuf {
			if math.IsInf(scores[i].gc, 1) {
				continue // no goal state can descend from this child within τ
			}
			seq++
			heap.Push(pq, &node{state: childBuf[i], cost: scores[i].cost, gc: scores[i].gc, seq: seq})
		}
	}
	prefetch.discard()
	stats.Duration = time.Since(start)
	// Same as runSeq: a cancel racing the final iterations wins over a
	// completed-looking sweep, and only unemitted results get the final
	// stats stamp.
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	if err := pool.err(); err != nil {
		return nil, err
	}
	for _, r := range sink.results[sink.emitted:] {
		r.Stats = stats
	}
	if err := sink.finish(); err != nil {
		return nil, err
	}
	return sink.results, nil
}

// matchDiffs extracts the difference sets of the analysis' matching
// sample.
func matchDiffs(an *conflict.Analysis, cap int) []relation.AttrSet {
	edges := an.MatchingEdgeSample(cap)
	out := make([]relation.AttrSet, len(edges))
	for i, e := range edges {
		out[i] = an.In.Tuples[e.T1].DiffSet(an.In.Tuples[e.T2])
	}
	return out
}

// costCache adapts a weights.Func to the heuristic's costFunc, memoizing
// single-set weights (vector costs are sums of per-position weights).
type costCache struct {
	w     weights.Func
	cache map[relation.AttrSet]float64
}

func (c *costCache) weight(y relation.AttrSet) float64 {
	if y.IsEmpty() {
		return 0
	}
	if c.cache == nil {
		c.cache = make(map[relation.AttrSet]float64)
	}
	if v, ok := c.cache[y]; ok {
		return v
	}
	v := c.w.Weight(y)
	c.cache[y] = v
	return v
}

// StateCost returns dist_c(Σ, Σ′) for the extension vector.
func (c *costCache) StateCost(s State) float64 {
	total := 0.0
	for _, y := range s {
		total += c.weight(y)
	}
	return total
}

// Marginal returns w(cur ∪ {add}) − w(cur), clamped at 0 for safety against
// non-monotone user weightings.
func (c *costCache) Marginal(cur relation.AttrSet, add int) float64 {
	m := c.weight(cur.Add(add)) - c.weight(cur)
	if m < 0 {
		return 0
	}
	return m
}
