package search

import (
	"math"
	"sort"

	"relatrust/internal/conflict"
	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// heuristic computes gc(S): a lower bound on dist_c of the cheapest goal
// state descending from S (Algorithm 3, getDescGoalStates). It considers a
// small subset Ds of the difference sets still violated at S; each set d in
// Ds must either be excluded — allowed only while the accumulated
// unresolved edges keep the 2-approximate cover under τ/α — or resolved by
// appending one attribute of d to every violated FD.
//
// Every approximation applied here (subset selection, sampled edge lists,
// the aggregate fallback when the resolution cross-product is too large)
// relaxes the bound downward, preserving admissibility in the sense of
// Lemma 1 of the paper.
type heuristic struct {
	sigma    fd.Set
	w        costFunc
	alpha    int
	maxDs    int
	comboCap int
	width    int
	// matchDiffs holds the difference sets of a globally vertex-disjoint
	// matching sample of the base conflict graph; see knapsack.
	matchDiffs []relation.AttrSet
}

// costFunc prices an extension vector and single sets; split out so the
// heuristic is unit-testable without a weights.Func.
type costFunc interface {
	StateCost(s State) float64
	Marginal(cur relation.AttrSet, add int) float64
}

// fork returns a copy of the heuristic wired to a different cost function,
// sharing the read-only configuration and matching-sample slice. The worker
// pool gives each worker a fork over a private costCache so gc runs
// lock-free; gc is a pure function of (state, ds, τ) given deterministic
// weights — no map iteration influences any branch — so every fork returns
// bit-identical bounds.
func (h *heuristic) fork(w costFunc) *heuristic {
	c := *h
	c.w = w
	return &c
}

// gc returns the lower bound for state s at threshold tau: the maximum of
// the recursive difference-set bound (Algorithm 3) and the knapsack-cover
// bound over the matching sample. Both are admissible, so their maximum
// is, and each dominates on a different regime — the recursion when a few
// heavy difference sets must be resolved exactly, the knapsack when the
// budget forces resolving *many* difference sets whose attribute costs
// accumulate. Returns +Inf when no goal state can descend from s within
// tau.
func (h *heuristic) gc(s State, all []conflict.DiffSet, tau int) float64 {
	bound := h.knapsack(s, tau)
	if math.IsInf(bound, 1) {
		return bound
	}
	ds := h.pickDs(s, all)
	if rec := h.descend(s, nil, ds, tau); rec > bound {
		bound = rec
	}
	return bound
}

// knapsack lower-bounds the cheapest goal descendant of s via a covering
// argument. Let E be the matching sample restricted to edges still
// violating Σ(s): E is vertex-disjoint, so any goal Σ′ may leave at most
// B = ⌊τ/α⌋ of its edges unresolved — it must *resolve* at least
// K = |E| − B. Resolving an edge requires appending, to some violated FD,
// an attribute of the edge's difference set ("hitting" it). Charging each
// appended attribute its marginal weight and letting it hit every edge it
// could (ignoring that a real repair must hit every violated FD of an
// edge — a relaxation, hence a lower bound), the cheapest way to reach K
// hits is a 0/1 knapsack-cover solved exactly by DP.
func (h *heuristic) knapsack(s State, tau int) float64 {
	base := h.w.StateCost(s)
	if len(h.matchDiffs) == 0 {
		return base
	}
	budget := tau / h.alpha
	// Count unresolved edges and, per FD, aggregate per-attribute hit
	// counts over the edges violating that FD.
	unresolved := 0
	type itemT struct {
		w    float64
		hits int
	}
	var items []itemT
	perFD := make([][]int, len(h.sigma)) // attr -> hits, lazily allocated
	for _, d := range h.matchDiffs {
		edgeViolated := false
		for i, f := range h.sigma {
			lhs := f.LHS.Union(s[i])
			if lhs.Intersects(d) || !d.Contains(f.RHS) {
				continue
			}
			edgeViolated = true
			if perFD[i] == nil {
				perFD[i] = make([]int, h.width)
			}
			counts := perFD[i]
			d.ForEach(func(a int) bool {
				counts[a]++
				return true
			})
		}
		if edgeViolated {
			unresolved++
		}
	}
	need := unresolved - budget
	if need <= 0 {
		return base
	}
	for i, f := range h.sigma {
		if perFD[i] == nil {
			continue
		}
		lhs := f.LHS.Union(s[i])
		for a, hits := range perFD[i] {
			if hits == 0 || a == f.RHS || lhs.Contains(a) {
				continue
			}
			items = append(items, itemT{w: h.w.Marginal(s[i], a), hits: hits})
		}
	}
	// 0/1 knapsack-cover DP: dp[k] = min cost to accumulate ≥ k hits.
	inf := math.Inf(1)
	dp := make([]float64, need+1)
	for k := 1; k <= need; k++ {
		dp[k] = inf
	}
	for _, it := range items {
		for k := need; k >= 0; k-- {
			if math.IsInf(dp[k], 1) {
				continue
			}
			nk := k + it.hits
			if nk > need {
				nk = need
			}
			if c := dp[k] + it.w; c < dp[nk] {
				dp[nk] = c
			}
		}
	}
	if math.IsInf(dp[need], 1) {
		// Even appending everything appendable cannot resolve enough
		// edges: no goal descends from s within τ.
		return inf
	}
	return base + dp[need]
}

// pickDs selects up to maxDs difference sets that are violated at state s,
// favoring large edge counts and low attribute overlap (Section 5.2). The
// first pass skips sets fully covered by already-picked attributes; a
// second pass fills remaining slots in count order.
func (h *heuristic) pickDs(s State, all []conflict.DiffSet) []conflict.DiffSet {
	out := make([]conflict.DiffSet, 0, h.maxDs)
	var picked relation.AttrSet
	taken := make(map[relation.AttrSet]bool, h.maxDs)
	for pass := 0; pass < 2 && len(out) < h.maxDs; pass++ {
		for _, d := range all {
			if len(out) >= h.maxDs {
				break
			}
			if taken[d.Attrs] || !h.violated(s, d.Attrs) {
				continue
			}
			if pass == 0 && !picked.IsEmpty() && d.Attrs.SubsetOf(picked) {
				continue // heavily overlapping; defer to the second pass
			}
			taken[d.Attrs] = true
			picked = picked.Union(d.Attrs)
			out = append(out, d)
		}
	}
	return out
}

// violated reports whether a pair with difference set d violates some FD of
// the base set as extended by state s.
func (h *heuristic) violated(s State, d relation.AttrSet) bool {
	for i, f := range h.sigma {
		if !f.LHS.Union(s[i]).Intersects(d) && d.Contains(f.RHS) {
			return true
		}
	}
	return false
}

// violatedFDs returns the indices of base FDs violated by difference set d
// under state s.
func (h *heuristic) violatedFDs(s State, d relation.AttrSet) []int {
	var out []int
	for i, f := range h.sigma {
		if !f.LHS.Union(s[i]).Intersects(d) && d.Contains(f.RHS) {
			out = append(out, i)
		}
	}
	return out
}

// descend is the recursive core of Algorithm 3, returning the minimum cost
// over goal states reachable from sc that resolve or exclude every set in
// dc, given acc — the edges of already-excluded difference sets.
func (h *heuristic) descend(sc State, acc []conflict.Edge, dc []conflict.DiffSet, tau int) float64 {
	if len(dc) == 0 {
		return h.w.StateCost(sc)
	}
	d := dc[0]
	best := math.Inf(1)

	// Option 1: leave d unresolved if the accumulated uncovered edges stay
	// within budget (Algorithm 3, lines 8-11). The budget test uses the
	// matching size |M| — a certified lower bound on every vertex cover of
	// the full conflict graph — rather than the paper's 2·|M| cover, and ≤
	// rather than <: both changes keep gc(S) admissible (never above the
	// cost of a real goal descendant), at the price of a slightly looser
	// bound.
	accWithD := make([]conflict.Edge, 0, len(acc)+len(d.Edges))
	accWithD = append(accWithD, acc...)
	accWithD = append(accWithD, d.Edges...)
	if matchingSize(accWithD)*h.alpha <= tau {
		best = h.descend(sc, accWithD, dc[1:], tau)
	}

	// Option 2: resolve d by appending one of its attributes to the LHS of
	// every FD it violates (lines 12-15).
	viol := h.violatedFDs(sc, d.Attrs)
	if len(viol) == 0 {
		// Already resolved at sc (can happen after an earlier extension);
		// just move on.
		if v := h.descend(sc, acc, dc[1:], tau); v < best {
			best = v
		}
		return best
	}
	cands := make([][]int, len(viol))
	combos := 1
	for k, fi := range viol {
		c := h.candidates(sc, fi, d.Attrs)
		if len(c) == 0 {
			// d differs only on this FD's RHS: no LHS extension can
			// resolve it, so the resolve branch is infeasible.
			return best
		}
		cands[k] = c
		if combos <= h.comboCap {
			combos *= len(c)
		}
	}
	if combos > h.comboCap {
		// Cross-product too large: fall back to an aggregate lower bound —
		// resolving d costs at least the cheapest marginal per violated FD,
		// and the remaining difference sets are charged nothing.
		lb := h.w.StateCost(sc)
		for k, fi := range viol {
			cheapest := math.Inf(1)
			for _, a := range cands[k] {
				if m := h.w.Marginal(sc[fi], a); m < cheapest {
					cheapest = m
				}
			}
			lb += cheapest
		}
		if lb < best {
			best = lb
		}
		return best
	}
	choice := make([]int, len(viol))
	var rec func(k int)
	rec = func(k int) {
		if k == len(viol) {
			next := sc.Clone()
			for j, fi := range viol {
				next[fi] = next[fi].Add(choice[j])
			}
			rest := filterViolated(h, next, dc[1:])
			if v := h.descend(next, acc, rest, tau); v < best {
				best = v
			}
			return
		}
		for _, a := range cands[k] {
			choice[k] = a
			rec(k + 1)
		}
	}
	rec(0)
	return best
}

// candidates lists the attributes of d that may be appended to FD fi's LHS
// to resolve a pair with difference set d, sorted by marginal cost so the
// aggregate fallback and enumeration both favor cheap fixes.
func (h *heuristic) candidates(sc State, fi int, d relation.AttrSet) []int {
	f := h.sigma[fi]
	avail := d.Diff(f.LHS.Union(sc[fi])).Remove(f.RHS)
	attrs := avail.Attrs()
	sort.Slice(attrs, func(i, j int) bool {
		mi, mj := h.w.Marginal(sc[fi], attrs[i]), h.w.Marginal(sc[fi], attrs[j])
		if mi != mj {
			return mi < mj
		}
		return attrs[i] < attrs[j]
	})
	return attrs
}

// filterViolated keeps the difference sets still violated at state s.
func filterViolated(h *heuristic, s State, dc []conflict.DiffSet) []conflict.DiffSet {
	out := make([]conflict.DiffSet, 0, len(dc))
	for _, d := range dc {
		if h.violated(s, d.Attrs) {
			out = append(out, d)
		}
	}
	return out
}

// matchingSize returns the size of a greedy maximal matching of the given
// edge list. Every vertex cover of any supergraph has at least this many
// vertices, which is exactly the property the exclusion budget test needs.
func matchingSize(edges []conflict.Edge) int {
	matched := make(map[int32]struct{}, len(edges))
	size := 0
	for _, e := range edges {
		if _, ok := matched[e.T1]; ok {
			continue
		}
		if _, ok := matched[e.T2]; ok {
			continue
		}
		matched[e.T1] = struct{}{}
		matched[e.T2] = struct{}{}
		size++
	}
	return size
}
