// Package search implements the FD-modification state space of the paper
// (Section 5): states are vectors of LHS extensions, organized as a tree by
// the single-parent rule so each state is reachable by exactly one path,
// explored either best-first (cost order) or with A* guided by the
// difference-set lower bound gc(S) (Algorithms 2 and 3).
//
// # Concurrency model
//
// With Options.Workers > 1 the engine evaluates concurrently while
// exploring identically: each worker goroutine owns a conflict.Analysis
// fork (shared immutable clusters and code columns, private cover
// scratch), a private cost cache over one mutex-guarded weighting, and a
// private heuristic, so per-state CoverSize and gc run lock-free. Each
// fork also carries a private partition cache (unless
// Options.NoPartitionCache): cover queries memoize refined cluster
// partitions by (cluster, extension-set), and — because the coordinator
// pops a parent before scoring its children, and a child extends exactly
// one position by one attribute under the single-parent rule — a child's
// query usually refines one step off the parent's hot snapshot instead of
// from scratch. The coordinator fans out (1) successor scoring for each
// popped state, (2) the goal-test cover query — prefetched for the
// predicted next pop while the previous pop's children are still being
// scored — and (3) open-list re-estimation after a goal tightens τ.
//
// Determinism guarantee: results are bit-identical for every worker count.
// Workers compute pure functions of (state, τ); the coordinator alone
// touches the open list, commits child scores in generation order with the
// sequential engine's seq tie-breakers, and discards (never reuses)
// speculative work invalidated by a goal. Find, FindRange, goal order,
// costs, cover sizes, and effort stats all match Workers: 1 exactly.
//
// # Component-decomposed cover queries
//
// Unless Options.NoDecomposition is set, the per-state goal-test cover
// query is evaluated through a components.Evaluator (see
// internal/components): the conflict hypergraph is split into connected
// components once per analysis, each query computes per-component cover
// deltas — memoized by the extension's projection onto the component's
// relevant attributes — and the global answer is merged as
// min(Σ len2_c, 2·Σ pairs_c), which equals the monolithic two-pass
// result exactly (cluster epochs never cross components). Queries that
// touch many components are chunked across the worker pool; the merge
// sums integers, so it is order-independent and the determinism
// guarantee above extends across the decomposition knob: frontiers are
// bit-identical with decomposition on or off, at every worker count.
// Options.Decomp lets a session engine share one evaluator (its memo
// warms across sweeps) between searchers over the same root analysis.
//
// # Cancellation and errors
//
// Every search entry point takes a context.Context, checked once per
// open-list pop; cancellation aborts with context.Cause(ctx), after
// draining any in-flight worker tasks so forks return to their pools
// clean. FindRangeStream delivers results as they are proven final (see
// its doc for the one-goal lag that preserves Definition 4's tie-break).
// The MaxVisited runaway guard reports a *MaxVisitedError matching the
// ErrMaxVisited sentinel and carrying the abort-time Stats.
package search

import (
	"fmt"
	"strings"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// State is Δc(Σ, Σ′): the vector of attribute sets appended to the LHS of
// each FD of the base set, indexed by FD position. The zero-length state is
// invalid; the root state is a vector of empty sets.
type State []relation.AttrSet

// Root returns the initial state (φ, …, φ) for a base set of z FDs.
func Root(z int) State { return make(State, z) }

// Clone returns a copy of the state.
func (s State) Clone() State { return append(State(nil), s...) }

// Equal reports position-wise equality.
func (s State) Equal(t State) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Extends reports whether s extends t: t[i] ⊆ s[i] for every i (the
// dominance notion used for pruning and minimality in Section 5.1).
func (s State) Extends(t State) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if !t[i].SubsetOf(s[i]) {
			return false
		}
	}
	return true
}

// Union returns the union of all extension sets.
func (s State) Union() relation.AttrSet {
	var u relation.AttrSet
	for _, y := range s {
		u = u.Union(y)
	}
	return u
}

// maxAttrAndLastIdx returns the greatest attribute across the vector and the
// last position containing it; (-1, -1) for the root.
func (s State) maxAttrAndLastIdx() (int, int) {
	maxA := s.Union().Max()
	if maxA < 0 {
		return -1, -1
	}
	last := -1
	for i := range s {
		if s[i].Contains(maxA) {
			last = i
		}
	}
	return maxA, last
}

// Parent returns the unique parent of a non-root state under the
// single-parent rule: remove the greatest attribute from the last extension
// containing it. Calling Parent on the root returns the root.
func (s State) Parent() State {
	maxA, last := s.maxAttrAndLastIdx()
	if maxA < 0 {
		return s.Clone()
	}
	p := s.Clone()
	p[last] = p[last].Remove(maxA)
	return p
}

// Children appends to dst every child of s in the search tree over the
// given schema width and base FD set: states obtained by adding one
// attribute B to one extension position i, restricted so that the
// single-parent rule maps the child back to s — B strictly greater than
// s's maximum attribute (any position), or equal to it at a strictly later
// position. Attributes already in the FD (LHS or RHS) are never added.
func (s State) Children(width int, sigma fd.Set, dst []State) []State {
	maxA, last := s.maxAttrAndLastIdx()
	for i := range s {
		excl := sigma[i].LHS.Union(s[i]).Add(sigma[i].RHS)
		for b := 0; b < width; b++ {
			if excl.Contains(b) {
				continue
			}
			if b > maxA || (b == maxA && i > last) {
				c := s.Clone()
				c[i] = c[i].Add(b)
				dst = append(dst, c)
			}
		}
	}
	return dst
}

// Apply materializes the FD set Σ′ corresponding to the state: each FD's
// LHS is extended by the state's set at that position.
func (s State) Apply(sigma fd.Set) fd.Set {
	out := make(fd.Set, len(sigma))
	for i, f := range sigma {
		out[i] = fd.FD{LHS: f.LHS.Union(s[i].Diff(f.LHS).Remove(f.RHS)), RHS: f.RHS}
	}
	return out
}

// Key returns a canonical string identity for maps and tests.
func (s State) Key() string {
	var b strings.Builder
	for i, y := range s {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%x", uint64(y))
	}
	return b.String()
}

// String renders the extension vector, e.g. "({2,3}, φ)".
func (s State) String() string {
	parts := make([]string, len(s))
	for i, y := range s {
		if y.IsEmpty() {
			parts[i] = "φ"
		} else {
			parts[i] = y.String()
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
