package search

import (
	"context"
	"math/rand"
	"testing"

	"relatrust/internal/conflict"
	"relatrust/internal/relation"
	"relatrust/internal/testkit"
	"relatrust/internal/weights"
)

// TestFeasibilityFloorDetectsPermanentConflicts: two tuples identical
// except on the RHS can never be reconciled by an LHS extension, so τ
// below α·1 must return φ instantly (no state expansion).
func TestFeasibilityFloorDetectsPermanentConflicts(t *testing.T) {
	in := testkit.Build([]string{"A", "B", "C"}, [][]string{
		{"1", "x", "u"},
		{"1", "x", "v"}, // differs only on C
		{"2", "y", "w"},
	})
	sigma := testkit.RandomFDs(rand.New(rand.NewSource(1)), 3, 1, 1)
	sigma[0].LHS = relation.NewAttrSet(0)
	sigma[0].RHS = 2 // A->C
	s := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, DefaultOptions())
	if s.FeasibilityFloor() != 1 {
		t.Fatalf("floor = %d, want 1 (α=1, one permanent pair)", s.FeasibilityFloor())
	}
	res, err := s.Find(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatal("τ=0 must be infeasible")
	}
	// The floor path must not have expanded anything (instant φ).
	res2, err := s.Find(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2 == nil {
		t.Fatal("τ=1 is feasible: repair the one pair by data")
	}
}

// TestFeasibilityFloorZeroWhenResolvable: if every conflicting pair also
// differs somewhere else, the floor is zero (full relaxation reaches zero
// violations).
func TestFeasibilityFloorZeroWhenResolvable(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	s := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, DefaultOptions())
	if s.FeasibilityFloor() != 0 {
		t.Fatalf("floor = %d, want 0 (all pairs of the paper example are resolvable)", s.FeasibilityFloor())
	}
}

// TestFeasibilityFloorConsistentWithSearch: for random instances, Find(τ)
// returns φ exactly when τ < floor or the exhaustive search finds nothing
// — and never returns a repair below the floor.
func TestFeasibilityFloorConsistentWithSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		in := testkit.RandomInstance(rng, 8, 4, 2)
		sigma := testkit.RandomFDs(rng, 4, 1+rng.Intn(2), 2)
		s := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, DefaultOptions())
		floor := s.FeasibilityFloor()
		for _, tau := range []int{0, 1, 2, floor - 1, floor, floor + 2} {
			if tau < 0 {
				continue
			}
			res, err := s.Find(context.Background(), tau)
			if err != nil {
				t.Fatal(err)
			}
			if tau < floor && res != nil {
				t.Fatalf("trial %d: repair found below the floor (τ=%d, floor=%d)", trial, tau, floor)
			}
			if res != nil && res.DeltaP > tau {
				t.Fatalf("trial %d: δP=%d exceeds τ=%d", trial, res.DeltaP, tau)
			}
		}
		// At τ = floor the search may or may not succeed (the floor is a
		// lower bound, not exact); at τ = δP(Σ,I) it always succeeds.
		res, err := s.Find(context.Background(), s.DeltaPOriginal())
		if err != nil {
			t.Fatal(err)
		}
		if res == nil {
			t.Fatalf("trial %d: τ=δP must admit the root repair", trial)
		}
	}
}

func TestMatchingSizeMatchesCoverCertificate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		in := testkit.RandomInstance(rng, 8, 4, 2)
		sigma := testkit.RandomFDs(rng, 4, 2, 2)
		a := conflict.New(in, sigma)
		m := a.MatchingSize(nil)
		edges := testkit.Edges(in, sigma)
		opt := testkit.MinVertexCover(edges)
		if m > opt {
			t.Fatalf("trial %d: matching %d exceeds minimum vertex cover %d", trial, m, opt)
		}
		if opt > 0 && m == 0 {
			t.Fatalf("trial %d: edges exist but matching is empty", trial)
		}
		if c := a.CoverSize(nil); c > 2*m {
			t.Fatalf("trial %d: cover %d exceeds 2·matching %d", trial, c, m)
		}
	}
}
