package search

import (
	"errors"
	"fmt"
)

// ErrMaxVisited is the sentinel matched by errors.Is when a search was
// aborted by the Options.MaxVisited runaway guard. The error actually
// returned is a *MaxVisitedError carrying the search effort at the abort.
var ErrMaxVisited = errors.New("search: max visited states exceeded")

// MaxVisitedError reports a search aborted by Options.MaxVisited. It
// matches ErrMaxVisited under errors.Is and carries the effort spent up to
// the abort, so callers can decide whether to retry with a higher cap.
type MaxVisitedError struct {
	// Stats is the search effort at the moment the guard fired;
	// Stats.Visited equals the MaxVisited cap that was hit.
	Stats Stats
}

func (e *MaxVisitedError) Error() string {
	return fmt.Sprintf("search: aborted after visiting %d states (MaxVisited)", e.Stats.Visited)
}

// Is reports sentinel identity so errors.Is(err, ErrMaxVisited) holds.
func (e *MaxVisitedError) Is(target error) bool { return target == ErrMaxVisited }

// ErrPanic is the sentinel matched by errors.Is when a panic was recovered
// during a sweep — in a parallel evaluation worker, or by a serving-layer
// recovery handler. The error actually returned is a *PanicError carrying
// the panic value and the captured stack.
var ErrPanic = errors.New("search: panic recovered during sweep")

// PanicError converts a recovered panic into a structured, propagatable
// error: the sweep that panicked fails like any other failed sweep instead
// of taking the process down. It matches ErrPanic under errors.Is.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at the recovery point.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic during sweep: %v", e.Value)
}

// Is reports sentinel identity so errors.Is(err, ErrPanic) holds.
func (e *PanicError) Is(target error) bool { return target == ErrPanic }
