package search

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"relatrust/internal/conflict"
	"relatrust/internal/relation"
	"relatrust/internal/testkit"
	"relatrust/internal/weights"
)

// TestGCAdmissibility: gc(root) must never exceed the true cheapest goal
// cost, which the exhaustive best-first search provides. Violations would
// break A* optimality silently, so this is the load-bearing property test
// for both heuristic halves (recursive + knapsack).
func TestGCAdmissibility(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 80; trial++ {
		width := 4 + rng.Intn(3)
		in := testkit.RandomInstance(rng, 8+rng.Intn(8), width, 2)
		sigma := testkit.RandomFDs(rng, width, 1+rng.Intn(2), 2)

		oracle := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, Options{BestFirst: true})
		dp := oracle.DeltaPOriginal()
		for _, tau := range []int{0, 1, dp / 2, dp} {
			truth, err := oracle.Find(context.Background(), tau)
			if err != nil {
				t.Fatal(err)
			}
			hSearcher := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, Options{})
			rootGC, _ := hSearcher.DiagGC(tau, nil)
			if truth == nil {
				continue // any gc value is fine when no goal exists
			}
			if rootGC > truth.Cost+1e-9 {
				t.Fatalf("trial %d τ=%d: gc(root)=%v exceeds true optimum %v\nΣ=%v\n%s",
					trial, tau, rootGC, truth.Cost, sigma, in)
			}
		}
	}
}

// TestGCInfinityImpliesInfeasible: whenever gc(root) is +Inf, the
// exhaustive search must also find nothing.
func TestGCInfinityImpliesInfeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(31415))
	infSeen := 0
	for trial := 0; trial < 80; trial++ {
		in := testkit.RandomInstance(rng, 8, 4, 2)
		sigma := testkit.RandomFDs(rng, 4, 1, 2)
		hS := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, Options{})
		oracle := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, Options{BestFirst: true})
		for _, tau := range []int{0, 1} {
			rootGC, _ := hS.DiagGC(tau, nil)
			if !math.IsInf(rootGC, 1) {
				continue
			}
			infSeen++
			truth, err := oracle.Find(context.Background(), tau)
			if err != nil {
				t.Fatal(err)
			}
			if truth != nil {
				t.Fatalf("trial %d τ=%d: gc(root)=∞ but a goal exists (%s, cost %v)",
					trial, tau, truth.State, truth.Cost)
			}
		}
	}
	if infSeen == 0 {
		t.Skip("no infeasible instances drawn; widen the generator if this persists")
	}
}

// TestKnapsackTightensWideDiffsets: on a workload whose difference sets
// are wide (every violating pair differs almost everywhere), the recursive
// bound alone collapses to ~one attribute of lookahead; the knapsack half
// must push gc(root) above the cheapest single-attribute cost when τ
// forces resolving most of the matching.
func TestKnapsackTightensWideDiffsets(t *testing.T) {
	// 6 attributes; FD A0→A5; tuples agree on A0 in pairs but differ on
	// everything else, so each pair's difference set is {1,2,3,4,5}.
	rows := make([][]string, 0, 20)
	for i := 0; i < 10; i++ {
		k := string(rune('a' + i))
		rows = append(rows,
			[]string{k, "x" + k + "1", "y" + k + "1", "z" + k + "1", "w" + k + "1", "r1"},
			[]string{k, "x" + k + "2", "y" + k + "2", "z" + k + "2", "w" + k + "2", "r2"},
		)
	}
	in := testkit.Build([]string{"A0", "A1", "A2", "A3", "A4", "A5"}, rows)
	sigma := testkit.RandomFDs(rand.New(rand.NewSource(1)), 6, 1, 1)
	sigma[0].LHS = relation.NewAttrSet(0)
	sigma[0].RHS = 5
	s := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, DefaultOptions())
	// All 10 pairs violate; τ=0 forces resolving all of them: at least
	// one attribute must be appended, so gc(root) ≥ 1.
	rootGC, _ := s.DiagGC(0, nil)
	if rootGC < 1 {
		t.Fatalf("gc(root) = %v, want ≥ 1", rootGC)
	}
	res, err := s.Find(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Cost < rootGC {
		t.Fatalf("optimal %v vs gc %v inconsistent", res, rootGC)
	}
}
