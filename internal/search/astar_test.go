package search

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"relatrust/internal/conflict"
	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/testkit"
	"relatrust/internal/weights"
)

func paperSearcher(t *testing.T, heuristic bool) *Searcher {
	t.Helper()
	in, sigma := testkit.Paper4x4()
	a := conflict.New(in, sigma)
	return NewSearcher(a, weights.AttrCount{}, Options{BestFirst: !heuristic})
}

// TestPaperTau2 reproduces the Section 5 example: for τ=2, the minimal FD
// repairs are CA→B,C→D or DA→B,C→D, both with dist_c = 1.
func TestPaperTau2(t *testing.T) {
	for _, heuristic := range []bool{true, false} {
		s := paperSearcher(t, heuristic)
		res, err := s.Find(context.Background(), 2)
		if err != nil {
			t.Fatal(err)
		}
		if res == nil {
			t.Fatal("no repair found")
		}
		if res.Cost != 1 {
			t.Errorf("heuristic=%v: cost = %v, want 1 (state %s)", heuristic, res.Cost, res.State)
		}
		if res.DeltaP > 2 {
			t.Errorf("heuristic=%v: δP = %d > τ", heuristic, res.DeltaP)
		}
		// The extension must be C or D appended to the first FD.
		y0 := res.State[0]
		if !(y0 == relation.NewAttrSet(2) || y0 == relation.NewAttrSet(3)) || !res.State[1].IsEmpty() {
			t.Errorf("heuristic=%v: unexpected repair %s", heuristic, res.State)
		}
	}
}

// TestPaperTauLarge: with τ = δP(Σ,I) the root is already a goal — trust
// the data fully, keep Σ unchanged.
func TestPaperTauLarge(t *testing.T) {
	s := paperSearcher(t, true)
	res, err := s.Find(context.Background(), s.DeltaPOriginal())
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Cost != 0 {
		t.Fatalf("want the zero-cost root repair, got %+v", res)
	}
	if !res.Sigma.Equal(s.An.Sigma) {
		t.Error("Σ must be unchanged at τ = δP(Σ, I)")
	}
}

// TestPaperTau0: τ=0 forbids data changes entirely, so the search must
// relax the FDs until no violations remain.
func TestPaperTau0(t *testing.T) {
	s := paperSearcher(t, true)
	res, err := s.Find(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("a zero-violation relaxation exists (append enough attributes)")
	}
	if res.CoverSize != 0 {
		t.Errorf("CoverSize = %d, want 0", res.CoverSize)
	}
	if s.An.HasViolation(res.State) {
		t.Error("returned FD set still has violations")
	}
}

// TestAStarMatchesBestFirst: best-first search is exhaustive by cost, so it
// returns the true minimum-cost goal; A* with an admissible heuristic must
// match that cost on random instances across a range of τ.
func TestAStarMatchesBestFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		width := 4 + rng.Intn(2)
		in := testkit.RandomInstance(rng, 8+rng.Intn(6), width, 2)
		sigma := testkit.RandomFDs(rng, width, 1+rng.Intn(2), 2)

		aStar := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, Options{})
		bFirst := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, Options{BestFirst: true})
		dp := aStar.DeltaPOriginal()
		for _, tau := range []int{0, 1, dp / 2, dp} {
			r1, err := aStar.Find(context.Background(), tau)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := bFirst.Find(context.Background(), tau)
			if err != nil {
				t.Fatal(err)
			}
			if (r1 == nil) != (r2 == nil) {
				t.Fatalf("trial %d τ=%d: A*=%v best-first=%v disagree on feasibility\nΣ=%v\n%s",
					trial, tau, r1, r2, sigma, in)
			}
			if r1 == nil {
				continue
			}
			if math.Abs(r1.Cost-r2.Cost) > 1e-9 {
				t.Fatalf("trial %d τ=%d: A* cost %v ≠ best-first cost %v (states %s vs %s)\nΣ=%v\n%s",
					trial, tau, r1.Cost, r2.Cost, r1.State, r2.State, sigma, in)
			}
			if r1.DeltaP > tau {
				t.Fatalf("trial %d: goal violates τ: δP=%d τ=%d", trial, r1.DeltaP, tau)
			}
		}
	}
}

// TestAStarVisitsAtMostBestFirst: the admissible heuristic should never
// make A* visit more states than best-first on the same input.
func TestAStarVisitsAtMostBestFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	worse := 0
	for trial := 0; trial < 20; trial++ {
		in := testkit.RandomInstance(rng, 10, 5, 2)
		sigma := testkit.RandomFDs(rng, 5, 1, 2)
		aStar := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, Options{})
		bFirst := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, Options{BestFirst: true})
		r1, _ := aStar.Find(context.Background(), 0)
		r2, _ := bFirst.Find(context.Background(), 0)
		if r1 == nil || r2 == nil {
			continue
		}
		if r1.Stats.Visited > r2.Stats.Visited {
			worse++
		}
	}
	// Ties in cost ordering can make individual runs differ; a systematic
	// regression would flip most trials.
	if worse > 5 {
		t.Errorf("A* visited more states than best-first in %d/20 trials", worse)
	}
}

// TestFindRangeEnumeratesTrustSpectrum runs Algorithm 6 over the full τ
// range on the paper example and checks the Pareto staircase: costs
// strictly increase while δP strictly decreases.
func TestFindRangeEnumeratesTrustSpectrum(t *testing.T) {
	s := paperSearcher(t, true)
	res, err := s.FindRange(context.Background(), 0, s.DeltaPOriginal())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 2 {
		t.Fatalf("expected several repairs across the spectrum, got %d", len(res))
	}
	if res[0].Cost != 0 {
		t.Errorf("first repair should be the zero-cost root, got %v", res[0].Cost)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Cost <= res[i-1].Cost {
			t.Errorf("costs not strictly increasing: %v then %v", res[i-1].Cost, res[i].Cost)
		}
		if res[i].DeltaP >= res[i-1].DeltaP {
			t.Errorf("δP not strictly decreasing: %d then %d", res[i-1].DeltaP, res[i].DeltaP)
		}
	}
	last := res[len(res)-1]
	if last.CoverSize != 0 {
		t.Errorf("the spectrum should end at a zero-violation repair, got cover %d", last.CoverSize)
	}
}

// TestFindRangeMatchesRepeatedFind: every repair from one range pass must
// equal the repair found by an independent single-τ search at its τ level.
func TestFindRangeMatchesRepeatedFind(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		in := testkit.RandomInstance(rng, 9, 4, 2)
		sigma := testkit.RandomFDs(rng, 4, 1, 2)
		s := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, Options{})
		dp := s.DeltaPOriginal()
		rangeRes, err := s.FindRange(context.Background(), 0, dp)
		if err != nil {
			t.Fatal(err)
		}
		tau := dp
		for _, r := range rangeRes {
			fresh := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, Options{})
			single, err := fresh.Find(context.Background(), tau)
			if err != nil {
				t.Fatal(err)
			}
			if single == nil {
				t.Fatalf("trial %d: single search at τ=%d found nothing but range did", trial, tau)
			}
			if math.Abs(single.Cost-r.Cost) > 1e-9 {
				t.Fatalf("trial %d τ=%d: range cost %v ≠ single cost %v", trial, tau, r.Cost, single.Cost)
			}
			tau = r.DeltaP - 1
		}
	}
}

func TestFindRangeRejectsInvertedRange(t *testing.T) {
	s := paperSearcher(t, true)
	if _, err := s.FindRange(context.Background(), 5, 1); err == nil {
		t.Error("inverted range must error")
	}
}

func TestMaxVisitedGuard(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	s := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, Options{BestFirst: true, MaxVisited: 1})
	if _, err := s.Find(context.Background(), 0); err == nil {
		t.Error("MaxVisited=1 should abort a τ=0 search that needs expansion")
	}
}

// TestInfeasibleTau: when a conflicting pair differs only on an FD's RHS,
// no LHS extension resolves it; τ=0 must yield φ.
func TestInfeasibleTau(t *testing.T) {
	in := testkit.Build([]string{"A", "B"}, [][]string{
		{"1", "x"}, {"1", "y"},
	})
	sigma := fd.MustParseSet(in.Schema, "A->B")
	s := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, Options{})
	res, err := s.Find(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("expected φ (no repair), got %s", res.State)
	}
	// With τ = 1 the pair can be repaired by data changes alone:
	// |C2opt| = 1 and α = 1.
	res, err = s.Find(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Cost != 0 {
		t.Fatalf("τ=1 should keep Σ and repair by data, got %+v", res)
	}
}

func TestDeltaPOriginalAndAlpha(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	s := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, DefaultOptions())
	if s.Alpha() != 2 {
		t.Errorf("α = %d, want min{3,2} = 2", s.Alpha())
	}
	if s.DeltaPOriginal() != 4 {
		t.Errorf("δP(Σ,I) = %d, want 4", s.DeltaPOriginal())
	}
	if s.DiffSetCount() != 3 {
		t.Errorf("difference sets = %d, want 3", s.DiffSetCount())
	}
}

// TestDistinctCountWeighting exercises the paper's experimental weighting
// end to end: appending a near-key attribute must cost more than a
// low-cardinality one, steering the search toward the cheap fix.
func TestDistinctCountWeighting(t *testing.T) {
	in := testkit.Build([]string{"A", "B", "Low", "High"}, [][]string{
		{"1", "x", "l0", "h0"},
		{"1", "y", "l1", "h1"},
		{"2", "x", "l0", "h2"},
		{"2", "y", "l1", "h3"},
		{"3", "x", "l0", "h4"},
		{"3", "y", "l1", "h5"},
	})
	sigma := fd.MustParseSet(in.Schema, "A->B")
	w := weights.NewDistinctCount(in)
	s := NewSearcher(conflict.New(in, sigma), w, Options{})
	res, err := s.Find(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no repair")
	}
	if res.State[0] != relation.NewAttrSet(2) {
		t.Errorf("expected the low-cardinality attribute to be appended, got %s", res.State)
	}
}
