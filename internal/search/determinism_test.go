package search

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"relatrust/internal/conflict"
	"relatrust/internal/testkit"
	"relatrust/internal/weights"
)

// checkSameResults asserts two result lists are identical: same goals in
// the same order, with bit-identical costs and matching cover statistics
// and (logical) search-effort stats.
func checkSameResults(t *testing.T, label string, seq, par []*Result) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("%s: sequential found %d repairs, parallel %d", label, len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		if !a.State.Equal(b.State) {
			t.Fatalf("%s: repair %d state %s != %s", label, i, a.State, b.State)
		}
		if a.Cost != b.Cost { // bit-identical, not approximately equal
			t.Fatalf("%s: repair %d cost %v != %v", label, i, a.Cost, b.Cost)
		}
		if a.CoverSize != b.CoverSize || a.DeltaP != b.DeltaP {
			t.Fatalf("%s: repair %d cover %d/δP %d != %d/%d", label, i, a.CoverSize, a.DeltaP, b.CoverSize, b.DeltaP)
		}
		if !a.Sigma.Equal(b.Sigma) {
			t.Fatalf("%s: repair %d Σ' %v != %v", label, i, a.Sigma, b.Sigma)
		}
		if a.Stats.Visited != b.Stats.Visited || a.Stats.Generated != b.Stats.Generated ||
			a.Stats.GCCalls != b.Stats.GCCalls {
			t.Fatalf("%s: repair %d stats (visited %d, generated %d, gc %d) != (visited %d, generated %d, gc %d)",
				label, i, a.Stats.Visited, a.Stats.Generated, a.Stats.GCCalls,
				b.Stats.Visited, b.Stats.Generated, b.Stats.GCCalls)
		}
	}
}

// TestParallelMatchesSequential pins the parallel engine's central
// guarantee on randomized instances: Find and FindRange under the
// parallel engine return results — states, bit-identical costs, cover
// sizes, goal order, and effort stats — identical to Workers: 1, for
// every worker count in {2, 4, 8}, for both A* and best-first, under both
// uniform and data-dependent weightings, with the per-worker partition
// cache enabled (the default) and disabled.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 24; trial++ {
		width := 4 + rng.Intn(3)
		in := testkit.RandomInstance(rng, 10+rng.Intn(20), width, 2)
		sigma := testkit.RandomFDs(rng, width, 1+rng.Intn(2), 2)
		var w weights.Func = weights.AttrCount{}
		if trial%3 == 1 {
			w = weights.NewDistinctCount(in)
		} else if trial%3 == 2 {
			w = weights.NewEntropy(in)
		}
		workers := []int{2, 4, 8}[trial%3]
		for _, heuristic := range []bool{true, false} {
			for _, noCache := range []bool{false, true} {
				label := fmt.Sprintf("workers=%d cache=%v", workers, !noCache)
				seqS := NewSearcher(conflict.New(in, sigma), w, Options{BestFirst: !heuristic, Workers: 1})
				parS := NewSearcher(conflict.New(in, sigma), w,
					Options{BestFirst: !heuristic, Workers: workers, NoPartitionCache: noCache})
				dp := seqS.DeltaPOriginal()

				seqRange, err := seqS.FindRange(context.Background(), 0, dp)
				if err != nil {
					t.Fatal(err)
				}
				parRange, err := parS.FindRange(context.Background(), 0, dp)
				if err != nil {
					t.Fatal(err)
				}
				checkSameResults(t, "FindRange "+label, seqRange, parRange)

				for _, tau := range []int{0, 1, dp / 2, dp} {
					r1, err := seqS.Find(context.Background(), tau)
					if err != nil {
						t.Fatal(err)
					}
					r2, err := parS.Find(context.Background(), tau)
					if err != nil {
						t.Fatal(err)
					}
					if (r1 == nil) != (r2 == nil) {
						t.Fatalf("trial %d τ=%d %s: sequential %v, parallel %v disagree on feasibility", trial, tau, label, r1, r2)
					}
					if r1 == nil {
						continue
					}
					checkSameResults(t, "Find "+label, []*Result{r1}, []*Result{r2})
				}
			}
		}
	}
}

// TestPartitionCacheReducesRefinement pins the cache's reason to exist:
// at Workers 4 the same searches must execute strictly fewer
// single-attribute refinement passes with the partition cache on than
// off, with a non-trivial share of cover queries answered from cached
// (exact or parent) partitions — while returning identical repairs.
func TestPartitionCacheReducesRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	in := testkit.RandomInstance(rng, 60, 6, 2)
	sigma := testkit.RandomFDs(rng, 6, 2, 2)

	run := func(noCache bool) ([]*Result, conflict.CoverStats) {
		s := NewSearcher(conflict.New(in, sigma), weights.NewDistinctCount(in),
			Options{Workers: 4, NoPartitionCache: noCache})
		res, err := s.FindRange(context.Background(), 0, s.DeltaPOriginal())
		if err != nil {
			t.Fatal(err)
		}
		return res, s.CoverCacheStats()
	}
	off, offStats := run(true)
	on, onStats := run(false)
	checkSameResults(t, "cache on vs off", off, on)

	if offStats.Hits != 0 || offStats.ParentHits != 0 {
		t.Fatalf("cache-off run reported hits: %+v", offStats)
	}
	if onStats.Hits+onStats.ParentHits == 0 {
		t.Fatalf("cache-on run never hit: %+v", onStats)
	}
	if onStats.RefineSteps >= offStats.RefineSteps {
		t.Fatalf("cache did not reduce refinement: on %d steps, off %d steps (on stats %+v)",
			onStats.RefineSteps, offStats.RefineSteps, onStats)
	}
	t.Logf("refine steps: off=%d on=%d (%.1f%% saved), hit rate %.1f%% (%d exact, %d parent, %d miss)",
		offStats.RefineSteps, onStats.RefineSteps,
		100*float64(offStats.RefineSteps-onStats.RefineSteps)/float64(offStats.RefineSteps),
		100*onStats.HitRate(), onStats.Hits, onStats.ParentHits, onStats.Misses)
}

// TestParallelMaxVisitedGuard: the parallel engine must abort on the same
// visit budget as the sequential one.
func TestParallelMaxVisitedGuard(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	s := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, Options{BestFirst: true, MaxVisited: 1, Workers: 4})
	if _, err := s.Find(context.Background(), 0); err == nil {
		t.Error("MaxVisited=1 should abort a τ=0 search that needs expansion")
	}
}

// TestParallelSearcherReuse: repeated Find calls on one parallel searcher
// must stay self-consistent (forks are pooled and recycled between runs).
func TestParallelSearcherReuse(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	s := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, Options{Workers: 4})
	ref, err := s.Find(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r, err := s.Find(context.Background(), 2)
		if err != nil {
			t.Fatal(err)
		}
		checkSameResults(t, "reuse", []*Result{ref}, []*Result{r})
	}
}
