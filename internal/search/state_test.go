package search

import (
	"math/rand"
	"testing"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

func sigma1(t *testing.T) fd.Set {
	t.Helper()
	s := relation.MustSchema("A", "B", "C", "D", "E", "F")
	return fd.MustParseSet(s, "A->F")
}

func sigma2(t *testing.T) fd.Set {
	t.Helper()
	s := relation.MustSchema("A", "B", "C", "D")
	return fd.MustParseSet(s, "A->B; C->D")
}

// TestTreeEnumeratesFigure4 reproduces Figure 4(b): for R={A..F} and
// Σ={A→F}, the search tree spans exactly the 2⁴ subsets of {B,C,D,E}, each
// reached once.
func TestTreeEnumeratesFigure4(t *testing.T) {
	sigma := sigma1(t)
	seen := map[string]int{}
	var walk func(s State)
	var buf []State
	walk = func(s State) {
		seen[s.Key()]++
		for _, c := range s.Children(6, sigma, nil) {
			walk(c)
		}
	}
	_ = buf
	walk(Root(1))
	if len(seen) != 16 {
		t.Fatalf("tree visits %d states, want 16", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("state %s reached %d times, want exactly once", k, n)
		}
	}
}

// TestTreeEnumeratesFigure5 reproduces Figure 5: R={A,B,C,D}, Σ={A→B, C→D}.
// FD1 can take extensions from {C,D}, FD2 from {A,B}: 4×4 = 16 states.
func TestTreeEnumeratesFigure5(t *testing.T) {
	sigma := sigma2(t)
	count := 0
	var walk func(s State)
	walk = func(s State) {
		count++
		for _, c := range s.Children(4, sigma, nil) {
			walk(c)
		}
	}
	walk(Root(2))
	if count != 16 {
		t.Fatalf("tree visits %d states, want 16", count)
	}
}

// TestParentChildInverse checks the single-parent rule: every child's
// Parent is the state it was generated from.
func TestParentChildInverse(t *testing.T) {
	sigma := sigma2(t)
	var walk func(s State)
	walk = func(s State) {
		for _, c := range s.Children(4, sigma, nil) {
			if !c.Parent().Equal(s) {
				t.Fatalf("Parent(%s) = %s, want %s", c, c.Parent(), s)
			}
			walk(c)
		}
	}
	walk(Root(2))
}

func TestRootParentIsRoot(t *testing.T) {
	r := Root(2)
	if !r.Parent().Equal(r) {
		t.Error("Parent of root should be root")
	}
}

func TestChildrenNeverTouchFDAttrs(t *testing.T) {
	sigma := sigma2(t)
	var walk func(s State)
	walk = func(s State) {
		for _, c := range s.Children(4, sigma, nil) {
			for i, f := range sigma {
				if c[i].Intersects(f.LHS.Add(f.RHS)) {
					t.Fatalf("state %s extends FD %d with its own attributes", c, i)
				}
			}
			walk(c)
		}
	}
	walk(Root(2))
}

func TestExtendsAndUnion(t *testing.T) {
	a := State{relation.NewAttrSet(2), 0}
	b := State{relation.NewAttrSet(2, 3), relation.NewAttrSet(1)}
	if !b.Extends(a) {
		t.Error("b extends a")
	}
	if a.Extends(b) {
		t.Error("a does not extend b")
	}
	if !a.Extends(a) {
		t.Error("a extends itself (non-strict)")
	}
	if b.Union() != relation.NewAttrSet(1, 2, 3) {
		t.Errorf("Union = %v", b.Union())
	}
}

func TestApply(t *testing.T) {
	sigma := sigma2(t)
	s := State{relation.NewAttrSet(2), relation.NewAttrSet(0)}
	got := s.Apply(sigma)
	want := fd.Set{
		fd.MustNew(relation.NewAttrSet(0, 2), 1),
		fd.MustNew(relation.NewAttrSet(0, 2), 3),
	}
	if !got.Equal(want) {
		t.Errorf("Apply = %v, want %v", got, want)
	}
}

func TestApplyDropsOwnRHSDefensively(t *testing.T) {
	sigma := sigma2(t)
	// A state should never contain the FD's RHS, but Apply must not build
	// a trivial FD even if handed one.
	s := State{relation.NewAttrSet(1), 0}
	got := s.Apply(sigma)
	if got[0].LHS.Contains(1) {
		t.Errorf("Apply produced trivial FD %v", got[0])
	}
}

func TestStateKeyUniqueAcrossTree(t *testing.T) {
	sigma := sigma2(t)
	keys := map[string]State{}
	var walk func(s State)
	walk = func(s State) {
		k := s.Key()
		if prev, dup := keys[k]; dup && !prev.Equal(s) {
			t.Fatalf("key collision: %s vs %s", prev, s)
		}
		keys[k] = s
		for _, c := range s.Children(4, sigma, nil) {
			walk(c)
		}
	}
	walk(Root(2))
}

func TestStateStringRendering(t *testing.T) {
	s := State{0, relation.NewAttrSet(1)}
	if got := s.String(); got != "(φ, {1})" {
		t.Errorf("String = %q", got)
	}
}

// TestTreeCountRandom cross-checks the tree size against the closed form
// ∏ 2^(width-1-|LHS_i|) for random FD sets: every combination of per-FD
// extension subsets appears exactly once.
func TestTreeCountRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		width := 4 + rng.Intn(2)
		names := []string{"A", "B", "C", "D", "E"}[:width]
		schema := relation.MustSchema(names...)
		nfds := 1 + rng.Intn(2)
		var sigma fd.Set
		for len(sigma) < nfds {
			rhs := rng.Intn(width)
			lhs := relation.NewAttrSet((rhs + 1) % width)
			sigma = append(sigma, fd.MustNew(lhs, rhs))
		}
		_ = schema
		want := 1
		for _, f := range sigma {
			free := width - 1 - f.LHS.Len()
			want *= 1 << free
		}
		count := 0
		var walk func(s State)
		walk = func(s State) {
			count++
			for _, c := range s.Children(width, sigma, nil) {
				walk(c)
			}
		}
		walk(Root(len(sigma)))
		if count != want {
			t.Fatalf("trial %d: Σ=%v tree=%d want=%d", trial, sigma, count, want)
		}
	}
}
