package search

// DiagGC exposes the heuristic for diagnostics and white-box tests: it
// returns gc(root) and gc of the given single-attribute extensions at the
// supplied τ.
func (s *Searcher) DiagGC(tau int, attrs []int) (float64, []float64) {
	root := Root(len(s.An.Sigma))
	rootGC := s.h.gc(root, s.ds, tau)
	out := make([]float64, len(attrs))
	for i, a := range attrs {
		st := root.Clone()
		st[0] = st[0].Add(a)
		out[i] = s.h.gc(st, s.ds, tau)
	}
	return rootGC, out
}

// DiagPickDs exposes the selected difference sets for a state.
func (s *Searcher) DiagPickDs(tau int) []int {
	ds := s.h.pickDs(Root(len(s.An.Sigma)), s.ds)
	counts := make([]int, len(ds))
	for i, d := range ds {
		counts[i] = len(d.Edges)
	}
	return counts
}
