package search

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"relatrust/internal/conflict"
	"relatrust/internal/testkit"
	"relatrust/internal/weights"
)

// TestStreamMatchesBatch pins the streaming contract on randomized
// instances: FindRangeStream must emit exactly the results FindRange
// returns — same states, bit-identical costs, same order — for both the
// sequential and the parallel engine, and every result except the final
// one must arrive before the search finishes (the final one carries the
// run's complete stats).
func TestStreamMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 16; trial++ {
		width := 4 + rng.Intn(3)
		in := testkit.RandomInstance(rng, 10+rng.Intn(25), width, 2)
		sigma := testkit.RandomFDs(rng, width, 1+rng.Intn(2), 2)
		for _, workers := range []int{1, 4} {
			label := fmt.Sprintf("trial %d workers=%d", trial, workers)
			batchS := NewSearcher(conflict.New(in, sigma), weights.NewDistinctCount(in), Options{Workers: workers})
			streamS := NewSearcher(conflict.New(in, sigma), weights.NewDistinctCount(in), Options{Workers: workers})
			dp := batchS.DeltaPOriginal()

			batch, err := batchS.FindRange(context.Background(), 0, dp)
			if err != nil {
				t.Fatal(err)
			}
			var streamed []*Result
			err = streamS.FindRangeStream(context.Background(), 0, dp, func(r *Result) error {
				streamed = append(streamed, r)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != len(streamed) {
				t.Fatalf("%s: batch %d results, stream %d", label, len(batch), len(streamed))
			}
			for i := range batch {
				a, b := batch[i], streamed[i]
				if !a.State.Equal(b.State) || a.Cost != b.Cost || a.CoverSize != b.CoverSize ||
					a.DeltaP != b.DeltaP || !a.Sigma.Equal(b.Sigma) {
					t.Fatalf("%s: result %d diverges: batch %+v, stream %+v", label, i, a, b)
				}
			}
			if n := len(streamed); n > 0 {
				last := streamed[n-1]
				fin := streamS.LastStats()
				if last.Stats.Visited != fin.Visited || last.Stats.Generated != fin.Generated {
					t.Fatalf("%s: final streamed result stats %+v != run stats %+v", label, last.Stats, fin)
				}
			}
		}
	}
}

// TestFindCancelledBeforeStart: a pre-cancelled context aborts both
// engines before any state is popped, with errors.Is(err,
// context.Canceled).
func TestFindCancelledBeforeStart(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		s := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, Options{Workers: workers})
		_, err := s.Find(ctx, s.DeltaPOriginal())
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		_, err = s.FindRange(ctx, 0, s.DeltaPOriginal())
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: FindRange err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestStreamCancelMidSweep cancels deterministically from inside the emit
// hook — after the first delivered result — and expects both engines to
// abort with context.Canceled without delivering further results, with
// goroutine counts back at baseline (the parallel pool must drain).
func TestStreamCancelMidSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := testkit.RandomInstance(rng, 40, 6, 2)
	sigma := testkit.RandomFDs(rng, 6, 2, 2)

	for _, workers := range []int{1, 4} {
		s := NewSearcher(conflict.New(in, sigma), weights.NewDistinctCount(in), Options{Workers: workers})
		dp := s.DeltaPOriginal()
		full, err := s.FindRange(context.Background(), 0, dp)
		if err != nil {
			t.Fatal(err)
		}
		if len(full) < 2 {
			t.Fatalf("workload too easy for a mid-sweep cancel: %d results", len(full))
		}

		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		emitted := 0
		err = s.FindRangeStream(ctx, 0, dp, func(*Result) error {
			emitted++
			cancel() // the next coordinator iteration must observe it
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if emitted != 1 {
			t.Fatalf("workers=%d: %d results emitted after cancel, want 1", workers, emitted)
		}
		testkit.WaitGoroutineBaseline(t, baseline)

		// The searcher must stay usable after a cancelled run: pooled forks
		// were drained, not poisoned.
		again, err := s.FindRange(context.Background(), 0, dp)
		if err != nil {
			t.Fatal(err)
		}
		checkSameResults(t, fmt.Sprintf("workers=%d post-cancel", workers), full, again)
	}
}

// TestCancelCausePropagates: a CancelCause cause must surface verbatim.
func TestCancelCausePropagates(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	cause := errors.New("deadline budget spent")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	s := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, Options{})
	if _, err := s.Find(ctx, s.DeltaPOriginal()); !errors.Is(err, cause) {
		t.Fatalf("err = %v, want the cancel cause", err)
	}
}

// TestMaxVisitedTypedError: the runaway guard returns a *MaxVisitedError
// that matches the ErrMaxVisited sentinel and carries the abort stats.
func TestMaxVisitedTypedError(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	for _, workers := range []int{1, 4} {
		s := NewSearcher(conflict.New(in, sigma), weights.AttrCount{}, Options{BestFirst: true, MaxVisited: 1, Workers: workers})
		_, err := s.Find(context.Background(), 0)
		if !errors.Is(err, ErrMaxVisited) {
			t.Fatalf("workers=%d: err = %v, want ErrMaxVisited", workers, err)
		}
		var mv *MaxVisitedError
		if !errors.As(err, &mv) {
			t.Fatalf("workers=%d: err %T does not unwrap to *MaxVisitedError", workers, err)
		}
		if mv.Stats.Visited != 1 {
			t.Fatalf("workers=%d: abort stats report %d visited, want 1", workers, mv.Stats.Visited)
		}
	}
}
