package search

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"relatrust/internal/conflict"
	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/testkit"
	"relatrust/internal/weights"
)

// decompShapes builds the three conflict-graph shapes the decomposition
// matrix runs on: everything in one component, many small components (a
// block-id attribute in every LHS confines clusters to their block), and
// an instance with no violations at all.
func decompShapes(rng *rand.Rand) []struct {
	name  string
	in    *relation.Instance
	sigma fd.Set
} {
	connected := testkit.RandomInstance(rng, 24, 4, 2)
	connectedFDs := testkit.RandomFDs(rng, 4, 2, 2)

	blocks := relation.NewInstance(relation.MustSchema("Blk", "A", "B", "C"))
	for t := 0; t < 36; t++ {
		err := blocks.AppendConsts(
			fmt.Sprintf("b%d", t/4),
			fmt.Sprintf("v%d", rng.Intn(2)),
			fmt.Sprintf("v%d", rng.Intn(3)),
			fmt.Sprintf("v%d", rng.Intn(2)),
		)
		if err != nil {
			panic(err)
		}
	}
	blockFDs := fd.Set{
		fd.MustNew(relation.NewAttrSet(0, 1), 2),
		fd.MustNew(relation.NewAttrSet(0, 3), 1),
	}

	clean := relation.NewInstance(relation.MustSchema("A", "B", "C"))
	for t := 0; t < 12; t++ {
		if err := clean.AppendConsts(fmt.Sprintf("u%d", t), fmt.Sprintf("v%d", t), "c"); err != nil {
			panic(err)
		}
	}
	cleanFDs := fd.Set{fd.MustNew(relation.NewAttrSet(0), 1)}

	return []struct {
		name  string
		in    *relation.Instance
		sigma fd.Set
	}{
		{"connected", connected, connectedFDs},
		{"many-small", blocks, blockFDs},
		{"singleton-only", clean, cleanFDs},
	}
}

// TestDecompositionMatchesMonolithic is the search-layer bit-identity
// matrix: Workers {1, 4} × decomposition {on, off} × {Find, FindRange}
// over connected, many-small-components, and violation-free instances.
// The monolithic sequential run is the oracle; every other cell must
// reproduce its repairs — states, bit-identical costs, cover sizes, goal
// order, and effort stats.
func TestDecompositionMatchesMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, sh := range decompShapes(rng) {
		t.Run(sh.name, func(t *testing.T) {
			w := weights.NewDistinctCount(sh.in)
			oracle := NewSearcher(conflict.New(sh.in, sh.sigma), w,
				Options{Workers: 1, NoDecomposition: true})
			dp := oracle.DeltaPOriginal()
			oracleRange, err := oracle.FindRange(context.Background(), 0, dp)
			if err != nil {
				t.Fatal(err)
			}

			for _, workers := range []int{1, 4} {
				for _, noDecomp := range []bool{false, true} {
					label := fmt.Sprintf("workers=%d decomp=%v", workers, !noDecomp)
					s := NewSearcher(conflict.New(sh.in, sh.sigma), w,
						Options{Workers: workers, NoDecomposition: noDecomp})
					got, err := s.FindRange(context.Background(), 0, dp)
					if err != nil {
						t.Fatal(err)
					}
					checkSameResults(t, "FindRange "+label, oracleRange, got)

					for _, tau := range []int{0, dp / 2, dp} {
						want, err := oracle.Find(context.Background(), tau)
						if err != nil {
							t.Fatal(err)
						}
						r, err := s.Find(context.Background(), tau)
						if err != nil {
							t.Fatal(err)
						}
						if (want == nil) != (r == nil) {
							t.Fatalf("τ=%d %s: oracle %v, candidate %v disagree on feasibility", tau, label, want, r)
						}
						if want != nil {
							checkSameResults(t, "Find "+label, []*Result{want}, []*Result{r})
						}
					}

					cs := s.ComponentStats()
					if noDecomp && cs != (ComponentStats{}) {
						t.Fatalf("%s: NoDecomposition searcher reports component stats %+v", label, cs)
					}
					if !noDecomp && sh.name != "singleton-only" && cs.Components == 0 {
						t.Fatalf("%s: decomposed searcher reports zero components", label)
					}
				}
			}
		})
	}
}

// TestDecompositionFanout forces the cross-component fan-out path (many
// affected components, several workers) and pins both the bit-identity of
// the results and that parallel per-component evaluations were actually
// dispatched.
func TestDecompositionFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	in := relation.NewInstance(relation.MustSchema("Blk", "A", "B", "C", "D"))
	for t := 0; t < 120; t++ {
		err := in.AppendConsts(
			fmt.Sprintf("b%d", t/4),
			fmt.Sprintf("v%d", rng.Intn(2)),
			fmt.Sprintf("v%d", rng.Intn(2)),
			fmt.Sprintf("v%d", rng.Intn(3)),
			fmt.Sprintf("v%d", rng.Intn(3)),
		)
		if err != nil {
			panic(err)
		}
	}
	sigma := fd.Set{fd.MustNew(relation.NewAttrSet(0, 1), 2)}
	w := weights.AttrCount{}

	oracle := NewSearcher(conflict.New(in, sigma), w, Options{Workers: 1, NoDecomposition: true})
	dp := oracle.DeltaPOriginal()
	want, err := oracle.FindRange(context.Background(), 0, dp)
	if err != nil {
		t.Fatal(err)
	}

	s := NewSearcher(conflict.New(in, sigma), w, Options{Workers: 4})
	if c := s.ComponentStats().Components; c < 2*coverChunkMin {
		t.Fatalf("instance decomposed into %d components, need >= %d to exercise the fan-out", c, 2*coverChunkMin)
	}
	got, err := s.FindRange(context.Background(), 0, dp)
	if err != nil {
		t.Fatal(err)
	}
	checkSameResults(t, "fanout", want, got)
	if s.ComponentStats().ParallelEvals == 0 {
		t.Fatal("no per-component evaluations were dispatched across the pool")
	}
}
