package search

import (
	"runtime/debug"
	"sync"
	"sync/atomic"

	"relatrust/internal/components"
	"relatrust/internal/conflict"
	"relatrust/internal/relation"
	"relatrust/internal/weights"
)

// This file implements the parallel evaluation engine behind
// Options.Workers: a pool of worker goroutines, each owning a forked
// conflict.Analysis (shared immutable clusters, private cover scratch), a
// private costCache, and a private heuristic, so CoverSize and gc(S) run
// lock-free. The engine parallelizes the three hot sections of the A* loop:
//
//  1. the children of a popped state are batch-scored (StateCost + gc)
//     across the workers before being pushed;
//  2. the goal-test CoverSize of the popped state runs on one worker while
//     child scoring is still in flight — including, via a speculative
//     prefetch of the predicted next pop, while the children of the
//     previous pop are still being scored;
//  3. after a goal tightens τ, the open-list re-estimation fans out across
//     the workers.
//
// Determinism: workers only compute pure functions of (state, τ) — cover
// queries on forked analyses and gc under memoized deterministic weights
// return bit-identical values on every worker — and the coordinator commits
// results in generation order with the same seq tie-breakers the sequential
// loop would assign, so which worker finishes first never influences the
// search. See runPar in astar.go.

// lockedWeights makes one weights.Func usable from every worker: the
// underlying implementations memoize into unsynchronized maps, so all
// cache misses funnel through one mutex. Per-worker costCaches absorb
// repeated lookups, keeping the lock off the steady-state path.
type lockedWeights struct {
	mu    sync.Mutex
	w     weights.Func
	cache map[relation.AttrSet]float64
}

func newLockedWeights(w weights.Func) *lockedWeights {
	return &lockedWeights{w: w, cache: make(map[relation.AttrSet]float64)}
}

// Weight implements weights.Func.
func (l *lockedWeights) Weight(y relation.AttrSet) float64 {
	l.mu.Lock()
	v, ok := l.cache[y]
	if !ok {
		v = l.w.Weight(y)
		l.cache[y] = v
	}
	l.mu.Unlock()
	return v
}

// Name implements weights.Func.
func (l *lockedWeights) Name() string { return l.w.Name() }

// worker holds the per-goroutine state of the pool.
type worker struct {
	an    *conflict.Analysis
	h     *heuristic
	costs *costCache
}

// evalPool runs evaluation tasks for one search call. Tasks are closures
// over result slots owned by the submitter; the pool guarantees that after
// the corresponding wait, all writes by the task happen-before the reader.
type evalPool struct {
	searcher *Searcher
	workers  []*worker
	tasks    chan func(*worker)
	wg       sync.WaitGroup

	panicMu  sync.Mutex
	panicErr error // first worker panic, as a *PanicError
}

// newEvalPool forks the searcher's analysis once per worker and starts the
// worker goroutines. n must be >= 1.
func newEvalPool(s *Searcher, n int) *evalPool {
	p := &evalPool{
		searcher: s,
		workers:  make([]*worker, n),
		tasks:    make(chan func(*worker), 4*n),
	}
	lw := newLockedWeights(s.W)
	for i := range p.workers {
		costs := &costCache{w: lw}
		an := s.An.Fork()
		// Each worker's fork carries its own partition cache — no locks,
		// dropped again when the fork is released. Both branches reset the
		// fork's cover stats, so close() aggregates this pool's effort
		// only.
		if s.Opt.NoPartitionCache {
			an.DisableCoverCache()
		} else {
			an.EnableCoverCache()
		}
		p.workers[i] = &worker{
			an:    an,
			h:     s.h.fork(costs),
			costs: costs,
		}
	}
	p.wg.Add(n)
	for i := range p.workers {
		go func(w *worker) {
			defer p.wg.Done()
			for task := range p.tasks {
				p.run(w, task)
			}
		}(p.workers[i])
	}
	return p
}

// run executes one task under a recover so a panicking evaluation fails the
// sweep instead of crashing the process. The first panic is recorded (with
// its stack) for the coordinator, which checks err at every commit point;
// later panics are dropped. The worker keeps draining tasks afterwards —
// submitters still block on their completion signals, and every task
// completes its slot via defer, so wait() never deadlocks on a panicked
// task.
func (p *evalPool) run(w *worker, task func(*worker)) {
	defer func() {
		if r := recover(); r != nil {
			p.panicMu.Lock()
			if p.panicErr == nil {
				p.panicErr = &PanicError{Value: r, Stack: debug.Stack()}
			}
			p.panicMu.Unlock()
		}
	}()
	task(w)
}

// err returns the first recorded worker panic, or nil.
func (p *evalPool) err() error {
	p.panicMu.Lock()
	defer p.panicMu.Unlock()
	return p.panicErr
}

// close shuts the pool down after all submitted tasks have run, folds the
// workers' cover-query counters into the searcher, and returns the forked
// analyses to the shared pool.
func (p *evalPool) close() {
	close(p.tasks)
	p.wg.Wait()
	// After a panic the forks' private scratch may be mid-update; dropping
	// them instead of releasing keeps the shared analysis pool clean, so
	// the session stays usable for the next sweep.
	poisoned := p.err() != nil
	for _, w := range p.workers {
		if poisoned {
			continue
		}
		p.searcher.coverStats = p.searcher.coverStats.Add(w.an.CoverStats())
		w.an.Release()
	}
}

// coverTask is one in-flight CoverSize query.
type coverTask struct {
	forNode *node // the open-list node this query was started for, if any
	ch      chan int
}

// startCover submits a CoverSize query for the state and returns without
// waiting. forNode tags speculative prefetches with the predicted node so
// the coordinator can match them against the actual next pop. With
// decomposition on, queries touching many components fan out across the
// workers (see startCoverDecomposed); otherwise one worker answers.
func (p *evalPool) startCover(st State, forNode *node) *coverTask {
	t := &coverTask{forNode: forNode, ch: make(chan int, 1)}
	if ev := p.searcher.decomp; ev != nil {
		p.startCoverDecomposed(ev, st, t)
		return t
	}
	p.tasks <- func(w *worker) {
		// The deferred send keeps wait() from deadlocking when CoverSize
		// panics; the coordinator sees the pool error before trusting the
		// zero result.
		size := -1
		defer func() { t.ch <- size }()
		size = w.an.CoverSize(st)
	}
	return t
}

// coverChunkMin is the minimum number of affected components worth a
// fan-out chunk; below 2× this, one worker answers the whole query.
const coverChunkMin = 8

// coverFanout gathers the per-chunk delta sums of one decomposed cover
// query. The sums are integers, so the combined result is independent of
// chunk completion order; the last chunk to finish — successful or not —
// sends on the task channel, so wait() never deadlocks even when a chunk
// panics (the coordinator checks the pool error before trusting -1).
type coverFanout struct {
	t       *coverTask
	ev      *components.Evaluator
	pending atomic.Int32
	dLen2   atomic.Int64
	dPairs  atomic.Int64
	failed  atomic.Bool
}

func (f *coverFanout) finish(ok bool, dLen2, dPairs int64) {
	if ok {
		f.dLen2.Add(dLen2)
		f.dPairs.Add(dPairs)
	} else {
		f.failed.Store(true)
	}
	if f.pending.Add(-1) != 0 {
		return
	}
	if f.failed.Load() {
		f.t.ch <- -1
		return
	}
	f.t.ch <- f.ev.Combine(f.dLen2.Load(), f.dPairs.Load())
}

// startCoverDecomposed answers one cover query through the component
// evaluator: enough affected components and workers → the components are
// chunked across the pool (cross-component parallelism per pop); small
// queries run on one worker, where the per-component memo usually answers
// most of the work anyway.
func (p *evalPool) startCoverDecomposed(ev *components.Evaluator, st State, t *coverTask) {
	comps := ev.Affected(st)
	if len(p.workers) < 2 || len(comps) < 2*coverChunkMin {
		p.tasks <- func(w *worker) {
			size := -1
			defer func() { t.ch <- size }()
			size = ev.CoverSize(w.an, st)
		}
		return
	}
	chunks := len(p.workers)
	if max := (len(comps) + coverChunkMin - 1) / coverChunkMin; chunks > max {
		chunks = max
	}
	ev.CountParallel(len(comps))
	f := &coverFanout{t: t, ev: ev}
	f.pending.Store(int32(chunks))
	per := (len(comps) + chunks - 1) / chunks
	for i := 0; i < chunks; i++ {
		lo := i * per
		hi := lo + per
		if hi > len(comps) {
			hi = len(comps)
		}
		chunk := comps[lo:hi]
		p.tasks <- func(w *worker) {
			ok := false
			var dLen2, dPairs int64
			defer func() { f.finish(ok, dLen2, dPairs) }()
			dLen2, dPairs = ev.EvalDelta(w.an, chunk, st)
			ok = true
		}
	}
}

// wait blocks until the query finishes and returns the cover size.
func (t *coverTask) wait() int { return <-t.ch }

// discard waits for the query to finish and drops the result. Tasks are
// never cancelled — workers must not outlive the buffers a task reads — so
// a mispredicted prefetch is simply drained.
func (t *coverTask) discard() {
	if t != nil {
		<-t.ch
	}
}

// childScore is the evaluation of one candidate child state.
type childScore struct {
	cost float64
	gc   float64
}

// scoreBatch is one in-flight batch evaluation of child states. Scores land
// at the index of their state, so gathering preserves generation order no
// matter which worker finished first.
type scoreBatch struct {
	states []State
	scores []childScore
	wg     sync.WaitGroup
}

// startScore submits one evaluation task per child under the given τ. The
// states slice and the dst buffer (reused across batches once the previous
// batch was waited or discarded) must stay untouched until wait or discard
// returns; scores are written at their child's position.
func (p *evalPool) startScore(states []State, tau int, dst []childScore) *scoreBatch {
	if cap(dst) < len(states) {
		dst = make([]childScore, len(states))
	}
	b := &scoreBatch{states: states, scores: dst[:len(states)]}
	b.wg.Add(len(states))
	heuristicOn := !p.searcher.Opt.BestFirst
	ds := p.searcher.ds
	for i := range states {
		i := i
		p.tasks <- func(w *worker) {
			defer b.wg.Done()
			cost := w.costs.StateCost(b.states[i])
			gc := cost
			if heuristicOn {
				gc = w.h.gc(b.states[i], ds, tau)
			}
			b.scores[i] = childScore{cost: cost, gc: gc}
		}
	}
	return b
}

// wait blocks until every child of the batch is scored.
func (b *scoreBatch) wait() []childScore {
	b.wg.Wait()
	return b.scores
}

// discard waits for the batch and drops the scores (used when a goal
// tightened τ underneath a speculative evaluation, or on early exit).
func (b *scoreBatch) discard() {
	if b != nil {
		b.wg.Wait()
	}
}

// reestimate recomputes gc for every open-list node under the tightened τ,
// fanning the nodes out across the workers in contiguous chunks. Nodes keep
// their slice positions, so the caller's sequential compaction pass visits
// them in exactly the order the sequential engine would.
func (p *evalPool) reestimate(nodes []*node, tau int) {
	heuristicOn := !p.searcher.Opt.BestFirst
	if !heuristicOn {
		for _, m := range nodes {
			m.gc = m.cost
		}
		return
	}
	ds := p.searcher.ds
	chunk := (len(nodes) + 4*len(p.workers) - 1) / (4 * len(p.workers))
	if chunk < 1 {
		chunk = 1
	}
	var wg sync.WaitGroup
	for lo := 0; lo < len(nodes); lo += chunk {
		hi := lo + chunk
		if hi > len(nodes) {
			hi = len(nodes)
		}
		part := nodes[lo:hi]
		wg.Add(1)
		p.tasks <- func(w *worker) {
			defer wg.Done()
			for _, m := range part {
				m.gc = w.h.gc(m.state, ds, tau)
			}
		}
	}
	wg.Wait()
}
