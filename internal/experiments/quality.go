package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"relatrust/internal/baseline"
	"relatrust/internal/metrics"
	"relatrust/internal/repair"
	"relatrust/internal/weights"
)

// Fig7Point is one point of Figure 7: the combined F-score of the
// τ-constrained repair at one relative-trust level on one dataset.
type Fig7Point struct {
	Dataset  string
	TauR     float64
	Tau      int
	Quality  metrics.Quality
	Combined float64
}

// fig7Grid is the relative-trust sweep of the quality experiments.
var fig7Grid = []float64{0, 0.05, 0.10, 0.17, 0.25, 0.29, 0.40, 0.50, 0.75, 1.00}

// Figure7 regenerates Figure 7: for each of the four error-rate datasets,
// the combined F-score across the τr spectrum. One range search per
// dataset yields every distinct repair; grid points map onto them.
func Figure7(cfg Config) ([]Fig7Point, error) {
	cfg = cfg.withDefaults()
	spec, sigma := qualitySpec()
	n := cfg.tuples(1000)

	var out []Fig7Point
	for di, ds := range qualityDatasets {
		w, err := MakeWorkload(spec, sigma, n, ds.FDErr, ds.DataErr, cfg.Seed+int64(di)*100)
		if err != nil {
			return nil, fmt.Errorf("dataset %q: %w", ds.Name, err)
		}
		repairs, dp0, err := trustSpectrum(w, cfg)
		if err != nil {
			return nil, fmt.Errorf("dataset %q: %w", ds.Name, err)
		}
		for _, taur := range fig7Grid {
			tau := int(taur*float64(dp0) + 0.5)
			r := repairForTau(repairs, tau)
			if r == nil {
				continue // no relaxation fits this τ (possible at τr=0)
			}
			q, err := w.Evaluate(r)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig7Point{
				Dataset:  ds.Name,
				TauR:     taur,
				Tau:      tau,
				Quality:  q,
				Combined: q.CombinedF(),
			})
		}
	}
	return out, nil
}

// trustSpectrum runs one range search over the full τ interval and returns
// the distinct repairs ordered by increasing FD cost, plus δP(Σd, Id).
func trustSpectrum(w *Workload, cfg Config) ([]*repair.Repair, int, error) {
	s, err := w.Session(true, cfg.MaxVisited, cfg.Seed)
	if err != nil {
		return nil, 0, err
	}
	defer s.Close()
	dp0 := s.DeltaPOriginal()
	repairs, err := s.RunRange(context.Background(), 0, dp0)
	if err != nil {
		return nil, 0, err
	}
	return repairs, dp0, nil
}

// repairForTau selects the τ-constrained repair from a cost-ordered
// spectrum: the cheapest repair whose guaranteed data distance fits τ.
func repairForTau(repairs []*repair.Repair, tau int) *repair.Repair {
	for _, r := range repairs {
		if r.DeltaP <= tau {
			return r
		}
	}
	return nil
}

// FormatFigure7 renders the points as the paper's series, one line per
// (dataset, τr).
func FormatFigure7(points []Fig7Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %6s %10s  %s\n", "dataset", "tau_r", "tau", "combined-F", "detail")
	for _, p := range points {
		fmt.Fprintf(&b, "%-18s %8s %6d %10.3f  %s\n",
			p.Dataset, fmtPct(p.TauR), p.Tau, p.Combined, p.Quality)
	}
	return b.String()
}

// Fig8Row is one row of Figure 8's table: the best quality a system
// achieves on one dataset across its parameter settings.
type Fig8Row struct {
	Dataset string
	System  string // "uniform-cost" or "relative-trust"
	BestAt  string // the winning parameter setting
	Quality metrics.Quality
}

// Figure8 regenerates Figure 8: for each dataset, the maximum combined
// F-score achievable by the uniform-cost baseline (over its cost-ratio
// sweep) and by the relative-trust algorithm (over the τr spectrum).
func Figure8(cfg Config) ([]Fig8Row, error) {
	cfg = cfg.withDefaults()
	spec, sigma := qualitySpec()
	n := cfg.tuples(1000)

	var out []Fig8Row
	for di, ds := range qualityDatasets {
		w, err := MakeWorkload(spec, sigma, n, ds.FDErr, ds.DataErr, cfg.Seed+int64(di)*100)
		if err != nil {
			return nil, err
		}

		// Uniform-cost baseline: best combined F over the ratio sweep.
		wfn := weights.NewDistinctCount(w.Dirty)
		bestQ := metrics.Quality{}
		bestF := -1.0
		bestCfg := ""
		for _, bc := range baseline.SweepConfigs(wfn, cfg.Seed) {
			// The baseline analyzes the same (instance, Σd) pair as the
			// trust spectrum below: every sweep point forks the workload
			// engine's one warm analysis.
			bc.Engine = w.Engine()
			res, err := baseline.Repair(w.Dirty, w.SigmaD, bc)
			if err != nil {
				return nil, err
			}
			appended, err := metrics.Appended(w.SigmaD, res.Sigma)
			if err != nil {
				return nil, err
			}
			q, err := metrics.Eval(w.Clean, w.Dirty, res.Data.Instance, appended, w.Removed)
			if err != nil {
				return nil, err
			}
			if f := q.CombinedF(); f > bestF {
				bestF, bestQ = f, q
				bestCfg = fmt.Sprintf("cell/FD=%g", bc.CellCost/bc.FDCost)
			}
		}
		out = append(out, Fig8Row{Dataset: ds.Name, System: "uniform-cost", BestAt: bestCfg, Quality: bestQ})

		// Relative-trust: best combined F over the spectrum.
		repairs, dp0, err := trustSpectrum(w, cfg)
		if err != nil {
			return nil, err
		}
		bestQ, bestF, bestCfg = metrics.Quality{}, -1.0, ""
		for _, r := range repairs {
			q, err := w.Evaluate(r)
			if err != nil {
				return nil, err
			}
			if f := q.CombinedF(); f > bestF {
				bestF, bestQ = f, q
				bestCfg = fmt.Sprintf("tau_r=%s", fmtPct(float64(r.DeltaP)/float64(max(dp0, 1))))
			}
		}
		out = append(out, Fig8Row{Dataset: ds.Name, System: "relative-trust", BestAt: bestCfg, Quality: bestQ})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].System < out[j].System })
	return out, nil
}

// FormatFigure8 renders the table in the paper's column order.
func FormatFigure8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %-18s %6s %6s %7s %7s %10s  %s\n",
		"system", "dataset", "FD-P", "FD-R", "Data-P", "Data-R", "combined-F", "best at")
	for _, r := range rows {
		q := r.Quality
		fmt.Fprintf(&b, "%-15s %-18s %6.2f %6.2f %7.2f %7.2f %10.3f  %s\n",
			r.System, r.Dataset, q.FDPrecision, q.FDRecall,
			q.DataPrecision, q.DataRecall, q.CombinedF(), r.BestAt)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
