package experiments

import (
	"strings"
	"testing"
)

// tiny returns a configuration that keeps every harness fast enough for
// unit testing while still exercising the full pipeline.
func tiny() Config { return Config{Scale: 0.1, Seed: 42, MaxVisited: 200_000} }

func TestFigure7Shape(t *testing.T) {
	points, err := Figure7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no points")
	}
	byDataset := map[string][]Fig7Point{}
	for _, p := range points {
		if p.Combined < 0 || p.Combined > 1 {
			t.Errorf("combined F out of range: %+v", p)
		}
		byDataset[p.Dataset] = append(byDataset[p.Dataset], p)
	}
	if len(byDataset) != 4 {
		t.Fatalf("expected 4 datasets, got %d", len(byDataset))
	}
	// Shape check, pure-FD-error dataset: quality at τr=0 must be at
	// least that at τr=100% (the peak is at the no-data-changes end).
	fdOnly := byDataset["80% FD, 0% data"]
	var at0, at100 float64
	for _, p := range fdOnly {
		if p.TauR == 0 {
			at0 = p.Combined
		}
		if p.TauR == 1 {
			at100 = p.Combined
		}
	}
	if at0 < at100 {
		t.Errorf("pure FD error: F(τr=0)=%v < F(τr=100%%)=%v; peak should be at the FD-repair end", at0, at100)
	}
	// Shape check, pure-data-error dataset: the peak is at τr=100%.
	dataOnly := byDataset["0% FD, 5% data"]
	for _, p := range dataOnly {
		if p.TauR == 1 {
			at100 = p.Combined
		}
	}
	for _, p := range dataOnly {
		if p.Combined > at100+1e-9 {
			t.Errorf("pure data error: F(τr=%v)=%v exceeds F(τr=100%%)=%v", p.TauR, p.Combined, at100)
		}
	}
	if !strings.Contains(FormatFigure7(points), "combined-F") {
		t.Error("formatting broken")
	}
}

func TestFigure8Shape(t *testing.T) {
	rows, err := Figure8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("expected 4 datasets × 2 systems = 8 rows, got %d", len(rows))
	}
	best := map[string]map[string]float64{}
	for _, r := range rows {
		if best[r.Dataset] == nil {
			best[r.Dataset] = map[string]float64{}
		}
		best[r.Dataset][r.System] = r.Quality.CombinedF()
	}
	// Relative trust dominates or ties the baseline on every dataset —
	// the paper's headline comparison.
	for ds, m := range best {
		if m["relative-trust"] < m["uniform-cost"]-1e-9 {
			t.Errorf("dataset %q: relative-trust %.3f < uniform-cost %.3f",
				ds, m["relative-trust"], m["uniform-cost"])
		}
	}
	if !strings.Contains(FormatFigure8(rows), "relative-trust") {
		t.Error("formatting broken")
	}
}

func TestFigure9Shape(t *testing.T) {
	points, err := Figure9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 {
		t.Fatalf("expected 5 sizes × 2 algorithms, got %d", len(points))
	}
	for _, p := range points {
		if p.Seconds < 0 {
			t.Errorf("negative time: %+v", p)
		}
	}
	if !strings.Contains(FormatPerf(points, "tuples"), "A*") {
		t.Error("formatting broken")
	}
}

func TestFigure11SkipsSlowBaseline(t *testing.T) {
	points, err := Figure11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	skipped := 0
	for _, p := range points {
		if p.Algo == "Best-First" && p.X > 2 {
			if p.Seconds >= 0 {
				t.Error("Best-First beyond 2 FDs should be skipped")
			}
			skipped++
		}
	}
	if skipped != 2 {
		t.Errorf("expected 2 skipped points, got %d", skipped)
	}
	out := FormatPerf(points, "FDs")
	if !strings.Contains(out, "skipped") {
		t.Error("skipped points not rendered")
	}
}

func TestFigure12Shape(t *testing.T) {
	points, err := Figure12(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 14 {
		t.Fatalf("expected 7 τr × 2 algorithms, got %d", len(points))
	}
	if !strings.Contains(FormatFigure12(points), "tau_r") {
		t.Error("formatting broken")
	}
}

func TestFigure13Shape(t *testing.T) {
	points, err := Figure13(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("expected 3 ranges × 2 methods, got %d", len(points))
	}
	// Range and sampling must find the same repair sets (counts match per
	// range), since sampling's grid step subdivides every τ interval the
	// range algorithm discovers on these workloads.
	for i := 0; i+1 < len(points); i += 2 {
		if points[i].NRepairs == 0 {
			t.Errorf("range %v found no repairs", points[i].MaxTauR)
		}
	}
	if !strings.Contains(FormatFigure13(points), "Range-Repair") {
		t.Error("formatting broken")
	}
}
