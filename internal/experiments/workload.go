// Package experiments regenerates every figure of the paper's evaluation
// (Section 8): quality versus relative trust (Figures 7-8), scalability in
// tuples, attributes and FDs (Figures 9-11), the effect of τ (Figure 12),
// and multi-repair generation (Figure 13). The harnesses are shared by the
// cmd/experiments binary and the top-level benchmarks.
//
// Sizes are scaled down from the paper's (whose runs took up to tens of
// thousands of seconds on a 2006 SunFire); Config.Scale multiplies tuple
// counts for users who want to push closer to the original settings. The
// comparisons the figures make (who wins, how curves bend) are preserved.
package experiments

import (
	"fmt"

	"relatrust/internal/fd"
	"relatrust/internal/gen"
	"relatrust/internal/metrics"
	"relatrust/internal/relation"
	"relatrust/internal/repair"
	"relatrust/internal/search"
	"relatrust/internal/session"
	"relatrust/internal/weights"
)

// Config tunes the experiment harnesses.
type Config struct {
	// Scale multiplies every tuple count (default 1: the scaled-down
	// defaults; the paper's sizes correspond to roughly Scale 4-10).
	Scale float64
	// Seed makes runs reproducible.
	Seed int64
	// MaxVisited guards the slow baseline searches (0 = default).
	MaxVisited int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.MaxVisited <= 0 {
		c.MaxVisited = 2_000_000
	}
	return c
}

func (c Config) tuples(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 10 {
		n = 10
	}
	return n
}

// Workload is one perturbation experiment: clean data and FDs, their
// perturbed counterparts, and the ground truth of both perturbations.
type Workload struct {
	Spec    gen.Spec
	Clean   *relation.Instance // Ic
	Dirty   *relation.Instance // Id
	SigmaC  fd.Set             // clean FDs
	SigmaD  fd.Set             // perturbed FDs (LHS attributes removed)
	Removed []relation.AttrSet // per FD, the removed attributes
	Cells   []relation.CellRef // injected erroneous cells

	eng *session.Engine // lazily built shared engine over Dirty
}

// Engine returns the workload's shared repair-session engine over the
// dirty instance, so every harness run against one workload — quality
// spectra, baseline sweeps, sampling baselines — forks the same warm
// conflict analysis instead of rebuilding it.
func (w *Workload) Engine() *session.Engine {
	if w.eng == nil {
		w.eng = session.New(w.Dirty)
	}
	return w.eng
}

// MakeWorkload generates a clean instance in which sigma holds exactly,
// then applies the paper's data and FD perturbations at the given rates.
func MakeWorkload(spec gen.Spec, sigma fd.Set, n int, fdErr, dataErr float64, seed int64) (*Workload, error) {
	clean, err := gen.Generate(spec, sigma, n, seed)
	if err != nil {
		return nil, err
	}
	dp, err := gen.PerturbData(clean, sigma, dataErr, seed+1)
	if err != nil {
		return nil, err
	}
	fp, err := gen.PerturbFDs(sigma, fdErr, seed+2)
	if err != nil {
		return nil, err
	}
	return &Workload{
		Spec:    spec,
		Clean:   clean,
		Dirty:   dp.Instance,
		SigmaC:  sigma,
		SigmaD:  fp.Sigma,
		Removed: fp.Removed,
		Cells:   dp.Cells,
	}, nil
}

// Session builds a repair session over the dirty instance and perturbed
// FDs, using the paper's experimental weighting (distinct values of the
// appended attribute set, measured on the dirty instance).
func (w *Workload) Session(heuristic bool, maxVisited int, seed int64) (*repair.Session, error) {
	return repair.NewSession(w.Dirty, w.SigmaD, repair.Config{
		Weights: weights.NewDistinctCount(w.Dirty),
		Search:  search.Options{BestFirst: !heuristic, MaxVisited: maxVisited},
		Seed:    seed,
		Engine:  w.Engine(),
	})
}

// Evaluate scores one repair against the workload's ground truth.
func (w *Workload) Evaluate(r *repair.Repair) (metrics.Quality, error) {
	appended, err := metrics.Appended(w.SigmaD, r.Sigma)
	if err != nil {
		return metrics.Quality{}, err
	}
	return metrics.Eval(w.Clean, w.Dirty, r.Data.Instance, appended, w.Removed)
}

// qualityDatasets are the four (FD error, data error) combinations of
// Figures 7 and 8.
var qualityDatasets = []struct {
	Name           string
	FDErr, DataErr float64
}{
	{"80% FD, 0% data", 0.80, 0.00},
	{"50% FD, 5% data", 0.50, 0.05},
	{"30% FD, 5% data", 0.30, 0.05},
	{"0% FD, 5% data", 0.00, 0.05},
}

// qualitySpec returns the workload shape of the quality experiments: a
// census-like relation and one FD with six LHS attributes (the paper uses
// 5000 tuples of Census-Income and one discovered FD with 6 LHS
// attributes). The width is trimmed to 16 attributes so the search stays
// laptop-sized — see the package comment; the FD's structure matches.
func qualitySpec() (gen.Spec, fd.Set) {
	spec := gen.SubSpec(gen.CensusSpec(), 16)
	return spec, fd.Set{gen.PaperFD(spec)}
}

func fmtPct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
