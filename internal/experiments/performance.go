package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"relatrust/internal/gen"
	"relatrust/internal/repair"
	"relatrust/internal/search"
	"relatrust/internal/weights"
)

// PerfPoint is one measurement of a scalability experiment.
type PerfPoint struct {
	Algo    string // "A*" or "Best-First"
	X       int    // the swept quantity (tuples, attributes, or FDs)
	Seconds float64
	Visited int
	Found   bool
}

// runOne executes a single-τ repair search and reports effort. A nil
// result with Found=false means the search hit its MaxVisited guard — the
// paper's Best-First baseline similarly failed to finish within 24h on its
// larger settings.
func runOne(w *Workload, heuristic bool, taur float64, cfg Config) (PerfPoint, error) {
	s, err := w.Session(heuristic, cfg.MaxVisited, cfg.Seed)
	if err != nil {
		return PerfPoint{}, err
	}
	defer s.Close()
	tau := s.TauFromRelative(taur)
	start := time.Now()
	r, err := s.Run(context.Background(), tau)
	elapsed := time.Since(start).Seconds()
	name := "A*"
	if !heuristic {
		name = "Best-First"
	}
	p := PerfPoint{Algo: name, Seconds: elapsed}
	if err != nil {
		if strings.Contains(err.Error(), "MaxVisited") {
			p.Visited = cfg.MaxVisited
			return p, nil // treated as "did not terminate"
		}
		return PerfPoint{}, err
	}
	if r != nil {
		p.Visited = r.Stats.Visited
		p.Found = true
	}
	return p, nil
}

// Figure9 regenerates Figure 9: running time and visited states versus the
// number of tuples, two FDs, τr = 1%, for A* and Best-First.
func Figure9(cfg Config) ([]PerfPoint, error) {
	cfg = cfg.withDefaults()
	spec := gen.SubSpec(gen.CensusSpec(), 12)
	sigma := gen.TwoFDs(spec)
	sizes := []int{500, 1000, 2000, 4000, 8000}

	var out []PerfPoint
	for _, base := range sizes {
		n := cfg.tuples(base)
		w, err := MakeWorkload(spec, sigma, n, 0.34, 0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, heuristic := range []bool{true, false} {
			p, err := runOne(w, heuristic, 0.01, cfg)
			if err != nil {
				return nil, err
			}
			p.X = n
			out = append(out, p)
		}
	}
	return out, nil
}

// Figure10 regenerates Figure 10: running time versus the number of
// attributes (attributes are excluded from the relation as in the paper),
// two FDs, τr = 1%.
func Figure10(cfg Config) ([]PerfPoint, error) {
	cfg = cfg.withDefaults()
	widths := []int{10, 14, 18, 24, 30, 34}
	n := cfg.tuples(2000)

	var out []PerfPoint
	for _, width := range widths {
		spec := gen.SubSpec(gen.CensusSpec(), width)
		sigma := gen.TwoFDs(spec)
		w, err := MakeWorkload(spec, sigma, n, 0.34, 0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, heuristic := range []bool{true, false} {
			p, err := runOne(w, heuristic, 0.01, cfg)
			if err != nil {
				return nil, err
			}
			p.X = width
			out = append(out, p)
		}
	}
	return out, nil
}

// Figure11 regenerates Figure 11: running time versus the number of FDs.
// As in the paper, a single FD is replicated to simulate larger Σ, and the
// Best-First baseline is expected to blow up quickly (the paper aborted it
// beyond 2 FDs after 24 hours; here the MaxVisited guard plays that role).
func Figure11(cfg Config) ([]PerfPoint, error) {
	cfg = cfg.withDefaults()
	spec := gen.SubSpec(gen.CensusSpec(), 12)
	base := gen.TwoFDs(spec)[0]
	n := cfg.tuples(1000)

	var out []PerfPoint
	for _, k := range []int{1, 2, 3, 4} {
		sigma := gen.ReplicatedFDs(base, k)
		w, err := MakeWorkload(spec, sigma, n, 0.34, 0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, heuristic := range []bool{true, false} {
			if !heuristic && k > 2 {
				// Mirror the paper: Best-First did not terminate beyond
				// two FDs; skip instead of burning the benchmark budget.
				out = append(out, PerfPoint{Algo: "Best-First", X: k, Seconds: -1, Visited: -1})
				continue
			}
			p, err := runOne(w, heuristic, 0.01, cfg)
			if err != nil {
				return nil, err
			}
			p.X = k
			out = append(out, p)
		}
	}
	return out, nil
}

// Fig12Point is one measurement of Figure 12: search effort versus τr.
type Fig12Point struct {
	Algo    string
	TauR    float64
	Seconds float64
	Visited int
	Found   bool
}

// Figure12 regenerates Figure 12: running time and visited states across
// the relative-trust range, one badly-perturbed FD.
func Figure12(cfg Config) ([]Fig12Point, error) {
	cfg = cfg.withDefaults()
	spec, sigma := qualitySpec()
	n := cfg.tuples(1000)
	w, err := MakeWorkload(spec, sigma, n, 0.80, 0.01, cfg.Seed)
	if err != nil {
		return nil, err
	}
	taurs := []float64{0.10, 0.25, 0.40, 0.55, 0.70, 0.85, 0.99}
	var out []Fig12Point
	for _, taur := range taurs {
		for _, heuristic := range []bool{true, false} {
			p, err := runOne(w, heuristic, taur, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig12Point{
				Algo: p.Algo, TauR: taur,
				Seconds: p.Seconds, Visited: p.Visited, Found: p.Found,
			})
		}
	}
	return out, nil
}

// Fig13Point is one measurement of Figure 13: multi-repair generation cost
// for a τr range, Range-Repair (Algorithm 6) versus Sampling-Repair.
type Fig13Point struct {
	Method   string
	MaxTauR  float64
	Seconds  float64
	NRepairs int
}

// Figure13 regenerates Figure 13: the running time of generating all
// repairs for τr ∈ [0, max], comparing the incremental range algorithm
// against independent searches at sampled τ values (step 1.7% as in the
// paper).
//
// Measurement note: both timed regions exclude conflict-analysis
// construction — Range-Repair's session is built before its timer, and
// the sampling runs draw warm analyses from the workload's shared engine
// (PR 3), so every per-τ session forks prebuilt clusters. This deviates
// from the paper's literal from-scratch baseline but keeps the comparison
// symmetric: what is timed is exactly the search effort the figure is
// about — one incremental range pass versus repeated independent
// searches.
func Figure13(cfg Config) ([]Fig13Point, error) {
	cfg = cfg.withDefaults()
	spec, sigma := qualitySpec()
	n := cfg.tuples(1000)
	w, err := MakeWorkload(spec, sigma, n, 0.50, 0.01, cfg.Seed)
	if err != nil {
		return nil, err
	}

	var out []Fig13Point
	for _, maxTauR := range []float64{0.10, 0.20, 0.30} {
		// Range-Repair: one incremental pass.
		s, err := w.Session(true, cfg.MaxVisited, cfg.Seed)
		if err != nil {
			return nil, err
		}
		tauHigh := s.TauFromRelative(maxTauR)
		start := time.Now()
		ranged, err := s.RunRange(context.Background(), 0, tauHigh)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig13Point{
			Method: "Range-Repair", MaxTauR: maxTauR,
			Seconds: time.Since(start).Seconds(), NRepairs: len(ranged),
		})

		// Sampling-Repair: independent runs at τr = 0%, 1.7%, 3.4%, ….
		var taus []int
		for taur := 0.0; taur <= maxTauR+1e-9; taur += 0.017 {
			taus = append(taus, s.TauFromRelative(taur))
		}
		start = time.Now()
		sampled, err := repair.RunSampling(context.Background(), w.Dirty, w.SigmaD, taus, repairConfigOf(w, cfg))
		if err != nil {
			return nil, err
		}
		out = append(out, Fig13Point{
			Method: "Sampling-Repair", MaxTauR: maxTauR,
			Seconds: time.Since(start).Seconds(), NRepairs: len(sampled),
		})
	}
	return out, nil
}

// FormatPerf renders scalability measurements with a caption for X.
func FormatPerf(points []PerfPoint, xName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %12s %10s %6s\n", "algorithm", xName, "seconds", "visited", "found")
	for _, p := range points {
		if p.Seconds < 0 {
			fmt.Fprintf(&b, "%-12s %8d %12s %10s %6s\n", p.Algo, p.X, "skipped", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%-12s %8d %12.4f %10d %6v\n", p.Algo, p.X, p.Seconds, p.Visited, p.Found)
	}
	return b.String()
}

// FormatFigure12 renders the τr sweep.
func FormatFigure12(points []Fig12Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %12s %10s %6s\n", "algorithm", "tau_r", "seconds", "visited", "found")
	for _, p := range points {
		fmt.Fprintf(&b, "%-12s %8s %12.4f %10d %6v\n", p.Algo, fmtPct(p.TauR), p.Seconds, p.Visited, p.Found)
	}
	return b.String()
}

// FormatFigure13 renders the multi-repair comparison.
func FormatFigure13(points []Fig13Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %12s %9s\n", "method", "max tau_r", "seconds", "repairs")
	for _, p := range points {
		fmt.Fprintf(&b, "%-16s %10s %12.4f %9d\n", p.Method, fmtPct(p.MaxTauR), p.Seconds, p.NRepairs)
	}
	return b.String()
}

// repairConfigOf mirrors Workload.Session's configuration for entry points
// that take a repair.Config directly.
func repairConfigOf(w *Workload, cfg Config) repair.Config {
	return repair.Config{
		Weights: weights.NewDistinctCount(w.Dirty),
		Search:  search.Options{MaxVisited: cfg.MaxVisited},
		Seed:    cfg.Seed,
		Engine:  w.Engine(),
	}
}
