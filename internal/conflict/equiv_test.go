package conflict

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// This file pins the dictionary-encoded partitioning to the seed's
// string-keyed implementation: refAnalysis below is that implementation
// ported verbatim (plain maps instead of epoch-versioned scratch), and the
// quick tests drive both over random instances with variables, duplicate
// values, and overlapping FDs — the adversarial shapes for cluster overlap
// — asserting identical covers, matchings, and edge counts.

type refAnalysis struct {
	in       *relation.Instance
	sigma    fd.Set
	clusters [][][]int32
}

func newRef(in *relation.Instance, sigma fd.Set) *refAnalysis {
	r := &refAnalysis{in: in, sigma: sigma, clusters: make([][][]int32, len(sigma))}
	for fi, f := range sigma {
		groups := map[string][]int32{}
		var order []string
		for t := 0; t < in.N(); t++ {
			key := in.Project(t, f.LHS)
			if _, ok := groups[key]; !ok {
				order = append(order, key)
			}
			groups[key] = append(groups[key], int32(t))
		}
		for _, key := range order {
			g := groups[key]
			if len(g) < 2 {
				continue
			}
			mixed := false
			for _, t := range g[1:] {
				if !in.Tuples[t][f.RHS].Equal(in.Tuples[g[0]][f.RHS]) {
					mixed = true
					break
				}
			}
			if mixed {
				r.clusters[fi] = append(r.clusters[fi], g)
			}
		}
	}
	return r
}

type refBuf struct {
	subs [][]int32
}

// refGroups is the legacy buildGroups: string-keyed refinement by y with
// RHS subgrouping, skipping marked tuples.
func (r *refAnalysis) refGroups(g []int32, rhs int, y relation.AttrSet, marked map[int32]bool) []*refBuf {
	groups := map[string]*refBuf{}
	subIdx := map[string]map[string]int{}
	var order []string
	for _, t := range g {
		if marked[t] {
			continue
		}
		key := ""
		if !y.IsEmpty() {
			key = r.in.Project(int(t), y)
		}
		b, ok := groups[key]
		if !ok {
			b = &refBuf{}
			groups[key] = b
			subIdx[key] = map[string]int{}
			order = append(order, key)
		}
		rkey := r.in.Tuples[t][rhs].Key()
		si, ok := subIdx[key][rkey]
		if !ok {
			si = len(b.subs)
			subIdx[key][rkey] = si
			b.subs = append(b.subs, nil)
		}
		b.subs[si] = append(b.subs[si], t)
	}
	out := make([]*refBuf, 0, len(order))
	for _, key := range order {
		out = append(out, groups[key])
	}
	return out
}

func extOfRef(sigma fd.Set, ext []relation.AttrSet, fi int) relation.AttrSet {
	if ext == nil {
		return 0
	}
	return ext[fi].Diff(sigma[fi].LHS)
}

func (r *refAnalysis) matching(ext []relation.AttrSet) (int, map[int32]bool) {
	marked := map[int32]bool{}
	pairs := 0
	for fi, f := range r.sigma {
		y := extOfRef(r.sigma, ext, fi)
		for _, g := range r.clusters[fi] {
			for _, b := range r.refGroups(g, f.RHS, y, marked) {
				if len(b.subs) < 2 {
					continue
				}
				var flat []int32
				var sub []int
				for si, s := range b.subs {
					for _, t := range s {
						flat = append(flat, t)
						sub = append(sub, si)
					}
				}
				i, j := 0, len(flat)-1
				for i < j && sub[i] != sub[j] {
					marked[flat[i]] = true
					marked[flat[j]] = true
					pairs++
					i++
					j--
				}
			}
		}
	}
	return pairs, marked
}

func (r *refAnalysis) cover(ext []relation.AttrSet) []int32 {
	pairs, matched := r.matching(ext)
	covered := map[int32]bool{}
	cov := []int32{}
	for fi, f := range r.sigma {
		y := extOfRef(r.sigma, ext, fi)
		for _, g := range r.clusters[fi] {
			for _, b := range r.refGroups(g, f.RHS, y, covered) {
				if len(b.subs) < 2 {
					continue
				}
				exempt := 0
				for si := 1; si < len(b.subs); si++ {
					if len(b.subs[si]) > len(b.subs[exempt]) {
						exempt = si
					}
				}
				for si, s := range b.subs {
					if si == exempt {
						continue
					}
					for _, t := range s {
						covered[t] = true
						cov = append(cov, t)
					}
				}
			}
		}
	}
	if len(cov) > 2*pairs {
		cov = cov[:0]
		for t := range matched {
			cov = append(cov, t)
		}
	}
	sort.Slice(cov, func(i, j int) bool { return cov[i] < cov[j] })
	return cov
}

// randConflictWorkload builds a duplicate-heavy instance and an FD set
// with overlapping attributes so clusters of different FDs share tuples.
func randConflictWorkload(rng *rand.Rand) (*relation.Instance, fd.Set) {
	width := 4 + rng.Intn(3)
	names := make([]string, width)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	in := relation.NewInstance(relation.MustSchema(names...))
	var vg relation.VarGen
	shared := []relation.Value{vg.Fresh(), vg.Fresh()}
	n := 4 + rng.Intn(40)
	for t := 0; t < n; t++ {
		tp := make(relation.Tuple, width)
		for a := range tp {
			switch rng.Intn(12) {
			case 0:
				tp[a] = shared[rng.Intn(len(shared))]
			case 1:
				tp[a] = vg.Fresh()
			default:
				tp[a] = relation.Const(string(rune('a' + rng.Intn(2+a%2))))
			}
		}
		_ = in.Append(tp)
	}
	nfd := 2 + rng.Intn(2)
	sigma := make(fd.Set, 0, nfd)
	for len(sigma) < nfd {
		rhs := rng.Intn(width)
		lhs := relation.NewAttrSet()
		for a := 0; a < width; a++ {
			if a != rhs && rng.Intn(3) == 0 {
				lhs = lhs.Add(a)
			}
		}
		if lhs.IsEmpty() {
			lhs = lhs.Add((rhs + 1) % width)
		}
		sigma = append(sigma, fd.MustNew(lhs, rhs))
	}
	return in, sigma
}

func randExt(rng *rand.Rand, sigma fd.Set, width int) []relation.AttrSet {
	if rng.Intn(4) == 0 {
		return nil
	}
	ext := make([]relation.AttrSet, len(sigma))
	for i, f := range sigma {
		ext[i] = f.LHS
		for a := 0; a < width; a++ {
			if a != f.RHS && rng.Intn(4) == 0 {
				ext[i] = ext[i].Add(a)
			}
		}
	}
	return ext
}

// TestQuickCoverMatchesStringReference: covers, cover sizes, and matching
// sizes of the code-based Analysis equal the string-keyed reference, over
// repeated queries on one Analysis (exercising epoch/scratch reuse).
func TestQuickCoverMatchesStringReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in, sigma := randConflictWorkload(rng)
		an := New(in, sigma)
		ref := newRef(in, sigma)
		for q := 0; q < 6; q++ {
			ext := randExt(rng, sigma, in.Schema.Width())
			want := ref.cover(ext)
			got := an.Cover(ext)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			pairs, _ := ref.matching(ext)
			if an.MatchingSize(ext) != pairs {
				return false
			}
			if an.CoverSize(ext) != len(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickEdgeCountMatchesBruteForce: EdgeCountExact equals the pair
// enumeration it avoids, and DiffSets (uncapped) groups exactly the brute
// force deduplicated violating pairs.
func TestQuickEdgeCountMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in, sigma := randConflictWorkload(rng)
		an := New(in, sigma)

		var brute int64
		pairSet := map[[2]int32]bool{}
		for _, f := range sigma {
			for i := 0; i < in.N(); i++ {
				for j := i + 1; j < in.N(); j++ {
					if in.Tuples[i].AgreeOn(in.Tuples[j], f.LHS) &&
						!in.Tuples[i][f.RHS].Equal(in.Tuples[j][f.RHS]) {
						brute++
						pairSet[[2]int32{int32(i), int32(j)}] = true
					}
				}
			}
		}
		if an.EdgeCountExact() != brute {
			return false
		}

		wantByAttrs := map[relation.AttrSet]int{}
		for pr := range pairSet {
			d := in.Tuples[pr[0]].DiffSet(in.Tuples[pr[1]])
			wantByAttrs[d]++
		}
		ds := an.DiffSets(0)
		if len(ds) != len(wantByAttrs) {
			return false
		}
		for _, d := range ds {
			if wantByAttrs[d.Attrs] != d.Count() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
