package conflict

import (
	"math/rand"
	"testing"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/testkit"
)

// TestPaperFigure2Table replays the table of Figures 2-3: for each FD
// modification, the δP value (with α = min{|R|−1,|Σ|} = 2) reported by the
// paper.
func TestPaperFigure2Table(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	a := New(in, sigma)

	ext := func(y0, y1 relation.AttrSet) []relation.AttrSet {
		return []relation.AttrSet{y0, y1}
	}
	C := func(names ...int) relation.AttrSet { return relation.NewAttrSet(names...) }
	alpha := 2

	cases := []struct {
		name   string
		ext    []relation.AttrSet
		deltaP int
	}{
		{"A->B, C->D", nil, 4},
		{"CA->B, C->D", ext(C(2), 0), 2},
		{"DA->B, C->D", ext(C(3), 0), 2},
		{"A->B, AC->D", ext(0, C(0)), 4},
		{"A->B, BC->D", ext(0, C(1)), 4},
		{"CA->B, AC->D", ext(C(2), C(0)), 2},
	}
	for _, tc := range cases {
		got := a.CoverSize(tc.ext) * alpha
		if got != tc.deltaP {
			t.Errorf("%s: δP = %d, want %d", tc.name, got, tc.deltaP)
		}
	}
}

func TestCoverIsVertexCover(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	a := New(in, sigma)
	edges := testkit.Edges(in, sigma)
	cover := a.Cover(nil)
	if !testkit.IsVertexCover(edges, cover) {
		t.Fatalf("cover %v misses an edge of %v", cover, edges)
	}
}

func TestNoViolationsMeansEmptyCover(t *testing.T) {
	in := testkit.Build([]string{"A", "B"}, [][]string{
		{"1", "x"}, {"1", "x"}, {"2", "y"},
	})
	a := New(in, fd.MustParseSet(in.Schema, "A->B"))
	if a.CoverSize(nil) != 0 {
		t.Error("satisfied instance must have an empty cover")
	}
	if a.HasViolation(nil) {
		t.Error("HasViolation on satisfied instance")
	}
	if len(a.DiffSets(10)) != 0 {
		t.Error("no difference sets expected")
	}
}

// TestCoverTwoApproxProperty checks on random instances that the cover is
// (a) a genuine vertex cover of the pairwise-defined conflict graph and
// (b) at most twice an exact minimum vertex cover.
func TestCoverTwoApproxProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		in := testkit.RandomInstance(rng, 6+rng.Intn(5), 4, 2+rng.Intn(2))
		sigma := testkit.RandomFDs(rng, 4, 1+rng.Intn(2), 2)
		a := New(in, sigma)
		edges := testkit.Edges(in, sigma)
		cover := a.Cover(nil)
		if !testkit.IsVertexCover(edges, cover) {
			t.Fatalf("trial %d: not a vertex cover\n%s\nΣ=%v cover=%v edges=%v",
				trial, in, sigma, cover, edges)
		}
		opt := testkit.MinVertexCover(edges)
		if len(cover) > 2*opt {
			t.Fatalf("trial %d: |cover|=%d > 2·OPT=%d", trial, len(cover), 2*opt)
		}
		if opt == 0 && len(cover) != 0 {
			t.Fatalf("trial %d: nonempty cover with no edges", trial)
		}
	}
}

// TestCoverSubgraphForExtensions checks the subgraph property the Analysis
// exploits: covers computed via cluster refinement for an extension vector
// equal covers computed from a fresh Analysis of the extended FD set.
func TestCoverSubgraphForExtensions(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		width := 4
		in := testkit.RandomInstance(rng, 8, width, 2)
		sigma := testkit.RandomFDs(rng, width, 2, 2)
		a := New(in, sigma)

		// Random extension vector.
		ext := make([]relation.AttrSet, len(sigma))
		for i, f := range sigma {
			for b := 0; b < width; b++ {
				if b != f.RHS && !f.LHS.Contains(b) && rng.Intn(3) == 0 {
					ext[i] = ext[i].Add(b)
				}
			}
		}
		extended := make(fd.Set, len(sigma))
		for i, f := range sigma {
			g, err := f.Extend(ext[i])
			if err != nil {
				t.Fatal(err)
			}
			extended[i] = g
		}
		fresh := New(in, extended)

		edges := testkit.Edges(in, extended)
		refined := a.Cover(ext)
		direct := fresh.Cover(nil)
		if !testkit.IsVertexCover(edges, refined) {
			t.Fatalf("trial %d: refined cover %v misses an edge of Σ'=%v", trial, refined, extended)
		}
		if !testkit.IsVertexCover(edges, direct) {
			t.Fatalf("trial %d: direct cover %v misses an edge", trial, direct)
		}
		opt := testkit.MinVertexCover(edges)
		if len(refined) > 2*opt {
			t.Fatalf("trial %d: refined cover %d > 2·OPT %d", trial, len(refined), opt)
		}
	}
}

func TestDiffSetsMatchPairwiseDefinition(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	a := New(in, sigma)
	ds := a.DiffSets(0)
	// Paper: difference sets of (t1,t2), (t2,t3), (t3,t4) are BD, AD, BCD.
	want := map[relation.AttrSet]int{
		relation.NewAttrSet(1, 3):    1, // BD
		relation.NewAttrSet(0, 3):    1, // AD
		relation.NewAttrSet(1, 2, 3): 1, // BCD
	}
	if len(ds) != len(want) {
		t.Fatalf("got %d difference sets, want %d: %v", len(ds), len(want), ds)
	}
	for _, d := range ds {
		if want[d.Attrs] != len(d.Edges) {
			t.Errorf("diffset %v has %d edges, want %d", d.Attrs, len(d.Edges), want[d.Attrs])
		}
	}
}

func TestDiffSetsSortedByCount(t *testing.T) {
	in := testkit.Build([]string{"A", "B", "C"}, [][]string{
		{"1", "x", "same"}, {"1", "y", "same"}, // diff {B}
		{"2", "x", "1"}, {"2", "y", "2"}, // diff {B,C}
		{"3", "x", "1"}, {"3", "y", "2"}, // diff {B,C}
	})
	a := New(in, fd.MustParseSet(in.Schema, "A->B"))
	ds := a.DiffSets(0)
	if len(ds) != 2 {
		t.Fatalf("got %d diffsets", len(ds))
	}
	if ds[0].Attrs != relation.NewAttrSet(1, 2) || len(ds[0].Edges) != 2 {
		t.Errorf("first diffset should be {B,C} with 2 edges, got %v×%d", ds[0].Attrs, len(ds[0].Edges))
	}
}

func TestDiffSetsCapLimitsEnumeration(t *testing.T) {
	// One cluster with 6×6 cross pairs = 36 edges; cap at 5.
	rows := make([][]string, 0, 12)
	for i := 0; i < 6; i++ {
		rows = append(rows, []string{"k", "x", itoa(i)})
		rows = append(rows, []string{"k", "y", itoa(i + 10)})
	}
	in := testkit.Build([]string{"A", "B", "C"}, rows)
	a := New(in, fd.MustParseSet(in.Schema, "A->B"))
	total := 0
	for _, d := range a.DiffSets(5) {
		total += len(d.Edges)
	}
	if total > 5 {
		t.Errorf("cap exceeded: %d edges sampled", total)
	}
	if total == 0 {
		t.Error("sampling returned nothing")
	}
}

func TestDiffSetsDedupAcrossFDs(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	a := New(in, sigma)
	seen := map[Edge]int{}
	for _, d := range a.DiffSets(0) {
		for _, e := range d.Edges {
			seen[e]++
		}
	}
	for e, c := range seen {
		if c > 1 {
			t.Errorf("edge %v appears %d times across difference sets", e, c)
		}
	}
}

func TestEdgeCountExact(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	a := New(in, sigma)
	// Per-FD pair counts: A->B has (t1,t2) and (t3,t4); C->D has (t1,t2),
	// (t2,t3) — 4 in total under the paper's per-FD |E| convention.
	if got := a.EdgeCountExact(); got != 4 {
		t.Errorf("EdgeCountExact = %d, want 4", got)
	}
}

func TestViolatingTuples(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	a := New(in, sigma)
	if got := a.ViolatingTuples(); got != 4 {
		t.Errorf("ViolatingTuples = %d, want 4", got)
	}
}

func TestDescribeClusters(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	a := New(in, sigma)
	if s := a.DescribeClusters(); len(s) == 0 {
		t.Error("empty description")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}
