package conflict

// Component-restricted cover queries. internal/components decomposes the
// conflict hypergraph into connected components (tuple-disjoint sets of
// violation clusters) and evaluates the two cover passes per component;
// this file exposes the cluster structure and the restricted passes it
// needs. The global cover() is exactly recovered from the restricted
// results: epoch marks never cross components (their tuple sets are
// disjoint), so pass-1 pairs and pass-2 cover members computed per
// component sum to the global counts, and the 2·|M| certificate fallback
// applied to the sums reproduces the global decision. See the package doc
// of internal/components for the full argument.

import "relatrust/internal/relation"

// ClusterRef names one violation cluster: cluster Cluster of FD FD, in the
// base analysis' deterministic construction order.
type ClusterRef struct {
	FD, Cluster int32
}

// NumClusters returns the number of violation clusters of FD fi.
func (a *Analysis) NumClusters(fi int) int { return len(a.clusters[fi]) }

// ClusterTuples returns the tuple indices of cluster ci of FD fi. The
// returned slice aliases the shared immutable cluster arena and must not
// be modified.
func (a *Analysis) ClusterTuples(fi, ci int) []int32 { return a.clusters[fi][ci] }

// SubsetCover runs both passes of cover() restricted to the given clusters
// and returns the pass-2 cover length and the pass-1 matching size. The
// extension attributes of each cluster's FD are additionally intersected
// with relevant before refining: callers pass the attributes on which the
// clusters' tuples actually differ, so refining by an attribute every
// tuple agrees on — a partition no-op — is skipped without changing any
// group.
//
// For a set of clusters closed under tuple sharing (a connected component
// of the conflict hypergraph), the results equal the component's
// contribution to the global cover() passes bit for bit; min(coverLen,
// 2·pairs) summed over all components is CoverSize. Callers own the usual
// single-goroutine scratch contract.
func (a *Analysis) SubsetCover(refs []ClusterRef, ext []relation.AttrSet, relevant relation.AttrSet) (coverLen, pairs int) {
	a.epoch++
	a.matchedList = a.matchedList[:0]
	for _, r := range refs {
		fi := int(r.FD)
		y := a.extOf(ext, fi).Intersect(relevant)
		pairs += a.matchCluster(fi, int(r.Cluster), a.Sigma[fi].RHS, y)
	}
	a.epoch++
	a.coverScratch = a.coverScratch[:0]
	for _, r := range refs {
		fi := int(r.FD)
		y := a.extOf(ext, fi).Intersect(relevant)
		a.coverCluster(fi, int(r.Cluster), a.Sigma[fi].RHS, y, nil)
	}
	return len(a.coverScratch), pairs
}
