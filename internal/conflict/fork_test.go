package conflict

import (
	"math/rand"
	"sync"
	"testing"

	"relatrust/internal/relation"
	"relatrust/internal/testkit"
)

// TestForkMatchesOriginal: a fork must answer every cover and matching
// query with results identical to the analysis it was forked from.
func TestForkMatchesOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		width := 4 + rng.Intn(3)
		in := testkit.RandomInstance(rng, 12+rng.Intn(20), width, 2)
		sigma := testkit.RandomFDs(rng, width, 1+rng.Intn(2), 2)
		a := New(in, sigma)
		f := a.Fork()
		for q := 0; q < 10; q++ {
			ext := make([]relation.AttrSet, len(sigma))
			for i := range ext {
				for b := 0; b < width; b++ {
					if rng.Intn(3) == 0 {
						ext[i] = ext[i].Add(b)
					}
				}
			}
			c1, c2 := a.Cover(ext), f.Cover(ext)
			if len(c1) != len(c2) {
				t.Fatalf("trial %d: cover sizes differ: %d vs %d", trial, len(c1), len(c2))
			}
			for i := range c1 {
				if c1[i] != c2[i] {
					t.Fatalf("trial %d: covers differ at %d: %d vs %d", trial, i, c1[i], c2[i])
				}
			}
			if a.MatchingSize(ext) != f.MatchingSize(ext) {
				t.Fatalf("trial %d: matching sizes differ", trial)
			}
		}
		f.Release()
	}
}

// TestForkConcurrentQueries: forks queried from many goroutines at once
// must each return the sequential answer (run under -race in CI).
func TestForkConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := testkit.RandomInstance(rng, 60, 5, 2)
	sigma := testkit.RandomFDs(rng, 5, 2, 2)
	a := New(in, sigma)

	exts := make([][]relation.AttrSet, 32)
	want := make([]int, len(exts))
	for q := range exts {
		ext := make([]relation.AttrSet, len(sigma))
		for i := range ext {
			for b := 0; b < 5; b++ {
				if rng.Intn(3) == 0 {
					ext[i] = ext[i].Add(b)
				}
			}
		}
		exts[q] = ext
		want[q] = a.CoverSize(ext)
	}

	var wg sync.WaitGroup
	got := make([]int, len(exts))
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f := a.Fork()
			defer f.Release()
			for q := w; q < len(exts); q += 8 {
				got[q] = f.CoverSize(exts[q])
			}
		}(w)
	}
	wg.Wait()
	for q := range exts {
		if got[q] != want[q] {
			t.Fatalf("query %d: concurrent fork cover %d, sequential %d", q, got[q], want[q])
		}
	}
}

// TestForkRecycling: Fork after Release must reuse the pooled scratch
// instead of reallocating it.
func TestForkRecycling(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	a := New(in, sigma)
	f := a.Fork()
	f.CoverSize(nil) // grow the scratch to the working-set size
	f.Release()
	allocs := testing.AllocsPerRun(50, func() {
		g := a.Fork()
		g.CoverSize(nil)
		g.Release()
	})
	// A recycled fork reuses its partitioner scratch and matched marks; a
	// handful of allocations is tolerated for sync.Pool internals.
	if allocs > 4 {
		t.Errorf("Fork/CoverSize/Release allocates %.0f objects per cycle; want ~0 (pooled scratch)", allocs)
	}
}
