package conflict

// Partition caching across cover queries. Sibling states of the A* search
// share LHS-prefix refinements: the cover query of a child state refines
// every violation cluster by an extension set that differs from its
// parent's in at most one position, by exactly one appended attribute. The
// cache stores flat Partition snapshots of *whole* clusters keyed by
// (cluster, extension-set); a query either hits the exact set, or reloads
// the parent set's snapshot (the set minus its greatest attribute, under
// the single-parent rule) and refines it by that one attribute, or refines
// from scratch. Filtering out already-matched tuples happens lazily after
// the cached partition is retrieved — the refinement of the full cluster
// is a pure function of (cluster, extension-set), which is what makes it
// cacheable, while the matched set varies within a single cover pass.
//
// Soundness of the reordering: refining the unmatched seed directly (the
// uncached path) and refining the full cluster then dropping matched
// tuples produce the same groups as *sets of tuples in the same relative
// order* (refinement is stable and per-tuple independent); only the order
// of groups within one cluster can differ, and group processing order
// within a cluster never affects which tuples end up matched or covered —
// groups of one cluster are disjoint, so marks made while processing one
// group never touch another. Cover and CoverSize are therefore
// bit-identical with the cache on or off (Cover sorts; CoverSize counts),
// which the determinism suite pins.
//
// Lifecycle: caching is strictly opt-in per fork (EnableCoverCache) and
// dropped on Release, so a recycled fork is handed out cache-free — no
// owner inherits another's snapshots, memory profile, or counters.
// Entries are additionally versioned by an epoch bumped on every
// re-enable, so re-enabling a live analysis invalidates its surviving
// snapshots instead of trusting them across runs; memory stays bounded at
// cacheWays snapshots per cluster.

import (
	"relatrust/internal/relation"
)

// CoverStats counts cover-query refinement effort and, when the partition
// cache is enabled, its effectiveness. Queries and RefineSteps are tracked
// with the cache on or off, so runs are comparable; Hits/ParentHits/Misses
// stay zero without a cache.
type CoverStats struct {
	// Queries counts cluster-refinement requests issued by cover, matching
	// and edge-sampling passes.
	Queries int64
	// Hits counts queries answered by an exact (cluster, extension-set)
	// snapshot — zero refinement work.
	Hits int64
	// ParentHits counts queries answered by refining the parent extension
	// set's snapshot by one attribute.
	ParentHits int64
	// Misses counts queries refined from scratch with the cache enabled.
	Misses int64
	// RefineSteps counts single-attribute refinement passes executed — the
	// quantity the cache exists to reduce.
	RefineSteps int64
}

// Add returns the field-wise sum, for aggregating per-worker stats.
func (s CoverStats) Add(o CoverStats) CoverStats {
	s.Queries += o.Queries
	s.Hits += o.Hits
	s.ParentHits += o.ParentHits
	s.Misses += o.Misses
	s.RefineSteps += o.RefineSteps
	return s
}

// HitRate returns the fraction of cached-path lookups answered without a
// from-scratch refinement (exact hits plus one-step parent refinements).
func (s CoverStats) HitRate() float64 {
	n := s.Hits + s.ParentHits + s.Misses
	if n == 0 {
		return 0
	}
	return float64(s.Hits+s.ParentHits) / float64(n)
}

// cacheWays is the number of snapshot slots per cluster. Slots are
// direct-mapped by a hash of the extension set; eviction only costs future
// hit rate, never correctness (the cache is a pure-function memo).
const cacheWays = 4

// cacheEntry is one snapshot: the flat partition of a full cluster refined
// by the extension set y.
type cacheEntry struct {
	y       relation.AttrSet
	epoch   uint64
	used    bool
	tuples  []int32
	offsets []int32
}

// partCache holds the per-fork snapshots, indexed by a global cluster
// number (base[fi]+ci) and the way of the extension set's hash.
type partCache struct {
	epoch   uint64
	base    []int
	entries []cacheEntry
}

func newPartCache(clusters [][][]int32) *partCache {
	base := make([]int, len(clusters))
	total := 0
	for fi, cl := range clusters {
		base[fi] = total
		total += len(cl)
	}
	return &partCache{epoch: 1, base: base, entries: make([]cacheEntry, total*cacheWays)}
}

// way maps an extension set to its slot within a cluster's ways.
func cacheWay(y relation.AttrSet) int {
	return int((uint64(y) * 0x9E3779B97F4A7C15) >> 62)
}

// EnableCoverCache attaches a partition cache to the analysis (typically a
// per-worker fork) and resets its cover statistics. Cover and CoverSize
// results are bit-identical with or without the cache; only the refinement
// work per query changes. Release drops the cache; re-enabling an analysis
// that still holds one starts a fresh epoch, invalidating its surviving
// snapshots.
func (a *Analysis) EnableCoverCache() {
	a.stats = CoverStats{}
	if a.pcache != nil {
		a.pcache.epoch++
		return
	}
	a.pcache = newPartCache(a.clusters)
}

// DisableCoverCache detaches the partition cache (dropping its snapshots)
// and resets the cover statistics.
func (a *Analysis) DisableCoverCache() {
	a.stats = CoverStats{}
	a.pcache = nil
}

// CoverStats returns the refinement-effort counters accumulated since the
// cache was last enabled or disabled (or since New, if neither happened).
func (a *Analysis) CoverStats() CoverStats { return a.stats }

// cachedRefine returns the partition of the whole cluster (fi, ci) refined
// by the non-empty extension set y, serving it from the cache when
// possible and storing what it computes. The returned partition aliases
// the cache entry and stays valid until the entry's way is overwritten —
// callers consume it (filter + split) before the next refinement request.
func (a *Analysis) cachedRefine(fi, ci int, y relation.AttrSet) relation.Partition {
	c := a.pcache
	slot := (c.base[fi] + ci) * cacheWays
	ways := c.entries[slot : slot+cacheWays : slot+cacheWays]
	e := &ways[cacheWay(y)]
	if e.used && e.epoch == c.epoch && e.y == y {
		a.stats.Hits++
		return relation.Partition{Tuples: e.tuples, Offsets: e.offsets}
	}
	// Under the single-parent rule a child state appends one attribute,
	// strictly the greatest of the resulting set — so the parent state's
	// extension for this FD is y minus its maximum, and its snapshot is
	// hot when the coordinator pops a parent right before batch-scoring
	// its children.
	maxA := y.Max()
	py := y.Remove(maxA)
	pe := &ways[cacheWay(py)]
	if !py.IsEmpty() && pe.used && pe.epoch == c.epoch && pe.y == py {
		a.stats.ParentHits++
		a.stats.RefineSteps++
		a.part.BeginFrom(relation.Partition{Tuples: pe.tuples, Offsets: pe.offsets})
		a.part.Refine(maxA)
	} else {
		a.stats.Misses++
		a.stats.RefineSteps += int64(y.Len())
		a.part.Begin(a.clusters[fi][ci])
		a.part.RefineSet(y)
	}
	pt := a.part.Partition()
	e.y, e.epoch, e.used = y, c.epoch, true
	e.tuples = append(e.tuples[:0], pt.Tuples...)
	e.offsets = append(e.offsets[:0], pt.Offsets...)
	return relation.Partition{Tuples: e.tuples, Offsets: e.offsets}
}

// filterUnmarked projects a full-cluster partition onto the tuples not yet
// marked in the current epoch (the lazy counterpart of the uncached path's
// seed filtering), dropping groups that become empty. The result aliases
// per-analysis scratch and stays valid across Split calls.
func (a *Analysis) filterUnmarked(full relation.Partition) relation.Partition {
	ft := a.filtTuples[:0]
	fo := append(a.filtOffsets[:0], 0)
	for gi := 0; gi < full.NumGroups(); gi++ {
		for _, t := range full.Group(gi) {
			if a.matched[t] != a.epoch {
				ft = append(ft, t)
			}
		}
		if n := int32(len(ft)); n > fo[len(fo)-1] {
			fo = append(fo, n)
		}
	}
	a.filtTuples, a.filtOffsets = ft, fo
	return relation.Partition{Tuples: ft, Offsets: fo}
}
