// Package conflict implements the conflict graph of an instance and an FD
// set (Definition 6 of the paper), the greedy 2-approximate minimum vertex
// cover used throughout the repair algorithms, and difference sets with
// edge multiplicities (Section 5.2).
//
// Conflict graphs of badly-violated FDs can have Θ(n²) edges, so the
// implementation never materializes the full edge set. The greedy
// 2-approximation of minimum vertex cover is the endpoint set of a maximal
// matching; within one LHS-cluster the conflict graph is complete
// multipartite with the RHS subgroups as parts, so a maximal matching is
// found cluster-by-cluster in time linear in the number of violating
// tuples.
//
// A key structural fact drives the design: for every Σ′ ∈ S(Σ) (LHS
// extensions only), a tuple pair violating an extended FD XiYi→Ai also
// violates the original Xi→Ai — agreement on XiYi implies agreement on Xi.
// Hence the conflict graph of any candidate Σ′ is a subgraph of the
// conflict graph of Σ, and an Analysis built once from (I, Σ) can answer
// vertex-cover queries for every extension vector by refining its stored
// clusters instead of rescanning the instance.
//
// # Concurrency model
//
// An Analysis is single-goroutine: cover queries run against per-Analysis
// epoch-versioned scratch. Concurrent evaluation (the parallel A* engine in
// internal/search) uses Fork: a forked Analysis shares the instance, its
// immutable code columns and dictionary, and the cluster arenas — all
// read-only after New — while owning private partitioner scratch, matched
// marks, and cover buffers, so queries on different forks never touch the
// same mutable memory. Queries are deterministic: any fork returns
// bit-identical covers for the same extension vector. Release returns a
// fork's scratch to a pool shared by every fork of the same analysis, so a
// search run that repeatedly forks (one fork per worker, per search)
// allocates the scratch only once.
//
// A fork may additionally enable a partition cache (EnableCoverCache):
// refined full-cluster partitions are memoized by (cluster,
// extension-set) and child queries refine incrementally from their parent
// set's snapshot — see cache.go for the design and the epoch rules that
// keep fork recycling sound. Results are bit-identical with the cache on
// or off. The session engine (internal/session) pools whole analyses the
// same way across repair sessions: roots cached per FD set, forks handed
// out and recycled.
package conflict

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// Edge is one conflict-graph edge: a violating tuple pair (T1 < T2).
type Edge struct {
	T1, T2 int32
}

// Analysis holds the per-FD violation clusters of an instance with respect
// to a base FD set, and answers vertex-cover and difference-set queries for
// arbitrary LHS-extension vectors over that base set.
//
// An Analysis is immutable after New and safe for concurrent readers except
// for the scratch buffers used by Cover*; callers that share an Analysis
// across goroutines must give each goroutine its own Analysis.
type Analysis struct {
	In    *relation.Instance
	Sigma fd.Set

	// clusters[i] lists, for FD i, the groups of tuples that share the
	// original LHS projection and contain at least two distinct RHS
	// values. Only such groups can contribute violations for any
	// extension of FD i.
	clusters [][][]int32

	// protected, when set, steers pass-2 cover construction away from
	// the marked tuples (see CoverAvoiding).
	protected func(int32) bool

	// part groups tuples by dictionary codes; together with the
	// epoch-versioned scratch below it makes steady-state cover queries
	// allocation-free (no strings, no maps, no clearing passes).
	part         *relation.Partitioner
	matched      []int
	epoch        int
	seedScratch  []int32
	coverScratch []int32
	matchedList  []int32 // endpoints of the pass-1 matching, in pair order

	// pcache, when enabled, memoizes refined full-cluster partitions
	// keyed by (cluster, extension-set); filtTuples/filtOffsets hold the
	// lazily matched-filtered view handed to the match/cover passes. See
	// cache.go.
	pcache      *partCache
	stats       CoverStats
	filtTuples  []int32
	filtOffsets []int32

	// forkPool recycles released forks across the forks of one analysis,
	// so repeated Fork/Release cycles (one per search run) reuse the
	// per-fork scratch instead of reallocating it.
	forkPool *sync.Pool
}

// New builds the analysis in O(|Σ|·n) expected time.
func New(in *relation.Instance, sigma fd.Set) *Analysis {
	return NewFiltered(in, sigma, nil)
}

// NewFiltered builds the analysis considering, for FD i, only the tuples
// accepted by filters[i] (nil filters, or a nil entry, accept everything).
// This is the hook conditional constraints use: a CFD is its embedded FD
// restricted to the tuples matching its pattern, and every cover and
// difference-set query then transparently respects the restriction.
func NewFiltered(in *relation.Instance, sigma fd.Set, filters []func(relation.Tuple) bool) *Analysis {
	a := &Analysis{
		In:       in,
		Sigma:    sigma,
		clusters: make([][][]int32, len(sigma)),
		matched:  make([]int, in.N()),
		part:     relation.NewPartitioner(in),
		forkPool: &sync.Pool{},
	}
	seed := make([]int32, 0, in.N())
	for fi, f := range sigma {
		var accept func(relation.Tuple) bool
		if filters != nil {
			accept = filters[fi]
		}
		seed = seed[:0]
		for t := 0; t < in.N(); t++ {
			if accept != nil && !accept(in.Tuples[t]) {
				continue
			}
			seed = append(seed, int32(t))
		}
		a.part.Begin(seed)
		a.part.RefineSet(f.LHS)
		pt := a.part.Partition()
		rhs, _ := in.Codes(f.RHS)
		// Keep groups of ≥2 tuples with ≥2 distinct RHS codes. Two passes:
		// the first sizes one arena exactly, so the kept cluster slices
		// share a backing array that never reallocates from under them.
		kept, total := make([]int32, 0, 64), 0
		for gi := 0; gi < pt.NumGroups(); gi++ {
			g := pt.Group(gi)
			if len(g) >= 2 && mixedRHS(g, rhs) {
				kept = append(kept, int32(gi))
				total += len(g)
			}
		}
		if len(kept) == 0 {
			continue
		}
		// Canonical cluster order: ascending by leading (minimum) tuple.
		// The partitioner emits groups in hierarchical refinement order,
		// which depends on the refinement path; sorting by the leading
		// tuple makes the cluster list a pure function of membership, so
		// incrementally spliced analyses (internal/live) reproduce it
		// exactly — including the order-sensitive capped samplers
		// (MatchingEdgeSample, DiffSets).
		sort.Slice(kept, func(i, j int) bool {
			return pt.Group(int(kept[i]))[0] < pt.Group(int(kept[j]))[0]
		})
		arena := make([]int32, 0, total)
		cl := make([][]int32, 0, len(kept))
		for _, gi := range kept {
			g := pt.Group(int(gi))
			start := len(arena)
			arena = append(arena, g...)
			cl = append(cl, arena[start:len(arena):len(arena)])
		}
		a.clusters[fi] = cl
	}
	return a
}

// NewFromClusters wraps externally maintained violation clusters in an
// Analysis without re-partitioning the instance. The caller (the live
// mutation tier) guarantees the clusters are exactly what NewFiltered
// would compute for (in, sigma): per FD, the LHS-projection groups with
// ≥2 tuples spanning ≥2 distinct RHS codes, members ascending, clusters
// in ascending order of leading member. The cluster slices are aliased,
// not copied; the caller must not mutate them while any fork of the
// analysis is live.
func NewFromClusters(in *relation.Instance, sigma fd.Set, clusters [][][]int32) *Analysis {
	return &Analysis{
		In:       in,
		Sigma:    sigma,
		clusters: clusters,
		matched:  make([]int, in.N()),
		part:     relation.NewPartitioner(in),
		forkPool: &sync.Pool{},
	}
}

// mixedRHS reports whether the group spans ≥2 distinct RHS codes.
func mixedRHS(g []int32, rhs []int32) bool {
	first := rhs[g[0]]
	for _, t := range g[1:] {
		if rhs[t] != first {
			return true
		}
	}
	return false
}

// N returns the number of tuples in the analyzed instance.
func (a *Analysis) N() int { return a.In.N() }

// Fork returns an Analysis answering the same queries as a, for use on a
// different goroutine. The fork shares everything immutable — the instance
// (and its code columns and dictionary, which are built once under the
// instance's mutex), the FD set, and the cluster arenas — and owns private
// epoch-versioned scratch (partitioner buffers, matched marks, cover and
// matching lists), so cover and matching queries on distinct forks are
// lock-free and never race. Query results are bit-identical across forks.
//
// Forks are recycled: Fork first tries the pool fed by Release, so a
// workload that forks repeatedly (a worker pool per search run) pays the
// scratch allocation only until the pool is warm. Forking a fork draws
// from the same pool.
func (a *Analysis) Fork() *Analysis {
	if f, _ := a.forkPool.Get().(*Analysis); f != nil {
		return f
	}
	return &Analysis{
		In:       a.In,
		Sigma:    a.Sigma,
		clusters: a.clusters,
		matched:  make([]int, a.In.N()),
		part:     relation.NewPartitioner(a.In),
		forkPool: a.forkPool,
	}
}

// Release returns an analysis obtained from Fork to the shared pool for
// reuse by a later Fork. The caller must not use the analysis afterwards.
// The partition cache and its statistics are dropped: a recycled fork is
// handed out in the same state as a fresh one — caching is strictly
// opt-in via EnableCoverCache, never inherited from a previous owner's
// recycling history.
func (a *Analysis) Release() {
	a.protected = nil
	a.pcache = nil
	a.stats = CoverStats{}
	a.forkPool.Put(a)
}

// ViolatingTuples returns how many tuples participate in at least one
// violating cluster of the base FD set; useful for sizing reports.
func (a *Analysis) ViolatingTuples() int {
	seen := make([]bool, a.In.N())
	count := 0
	for _, cl := range a.clusters {
		for _, g := range cl {
			for _, t := range g {
				if !seen[t] {
					seen[t] = true
					count++
				}
			}
		}
	}
	return count
}

// CoverSize returns |C2opt(Σ′, I)| where Σ′ extends the base set by ext
// (ext[i] is appended to the LHS of FD i; a nil ext means Σ′ = Σ).
func (a *Analysis) CoverSize(ext []relation.AttrSet) int {
	return len(a.cover(ext))
}

// Cover returns the tuple indices of C2opt(Σ′, I) in increasing order.
func (a *Analysis) Cover(ext []relation.AttrSet) []int32 {
	c := append([]int32(nil), a.cover(ext)...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}

// CoverAvoiding returns a vertex cover that keeps tuples marked protected
// out of the cover whenever some valid cover of equal per-group structure
// allows it — used by pinned-cell repairs, where rewriting a protected
// tuple may be impossible. The 2-approximation certificate still applies.
func (a *Analysis) CoverAvoiding(ext []relation.AttrSet, protected func(int32) bool) []int32 {
	a.protected = protected
	defer func() { a.protected = nil }()
	return a.Cover(ext)
}

// cover computes a 2-approximate minimum vertex cover of the conflict
// graph of Σ′ in two passes over the violation clusters:
//
//  1. a maximal matching M — the classical certificate |VC_opt| ≥ |M| —
//     found by pairing unmatched tuples across RHS subgroups of each
//     refined group;
//  2. a sequential "all but the largest subgroup" cover: per refined
//     group, every not-yet-covered tuple outside the subgroup with the
//     most uncovered members joins the cover. This covers every edge of
//     the group and never adds more vertices than taking both endpoints
//     of the group's matched pairs, so it tracks the paper's worked
//     examples (which report minimum covers on small graphs) while
//     staying within the guarantee.
//
// The pass-2 cover is returned when it respects the 2·|M| certificate;
// otherwise the matched endpoints are the provable fallback. The returned
// slice aliases internal scratch; callers that retain it must copy (Cover
// does).
func (a *Analysis) cover(ext []relation.AttrSet) []int32 {
	matchedPairs := 0
	a.epoch++
	a.matchedList = a.matchedList[:0]
	for fi, f := range a.Sigma {
		y := a.extOf(ext, fi)
		for ci := range a.clusters[fi] {
			matchedPairs += a.matchCluster(fi, ci, f.RHS, y)
		}
	}

	a.epoch++
	a.coverScratch = a.coverScratch[:0]
	for fi, f := range a.Sigma {
		y := a.extOf(ext, fi)
		for ci := range a.clusters[fi] {
			a.coverCluster(fi, ci, f.RHS, y, a.protected)
		}
	}
	if len(a.coverScratch) <= 2*matchedPairs {
		return a.coverScratch
	}
	// Fallback preserving the provable factor 2: both endpoints of M,
	// recorded by pass 1 in matchedList. (Reading the pass-1 epoch marks
	// back out of a.matched here would be wrong — pass 2 overwrites them
	// with its own epoch, which made this fallback return a subset that
	// is not a vertex cover. Triggered only under adversarial cluster
	// overlap.)
	a.coverScratch = append(a.coverScratch[:0], a.matchedList...)
	return a.coverScratch
}

// extOf returns the extension attributes of FD fi beyond its own LHS.
func (a *Analysis) extOf(ext []relation.AttrSet, fi int) relation.AttrSet {
	if ext == nil {
		return 0
	}
	return ext[fi].Diff(a.Sigma[fi].LHS)
}

// MatchingSize returns the number of pairs in the maximal matching of the
// conflict graph of Σ′ (base set extended by ext). It is a lower bound on
// every vertex cover of that graph — any algorithm's, not just this
// package's — which makes it the right quantity for feasibility floors.
func (a *Analysis) MatchingSize(ext []relation.AttrSet) int {
	a.epoch++
	a.matchedList = a.matchedList[:0]
	pairs := 0
	for fi, f := range a.Sigma {
		y := a.extOf(ext, fi)
		for ci := range a.clusters[fi] {
			pairs += a.matchCluster(fi, ci, f.RHS, y)
		}
	}
	return pairs
}

// PermanentMatching returns the size of a maximal matching over the
// conflict edges that no LHS extension can ever resolve: pairs of tuples
// identical on every attribute except some FD's RHS. Multiplied by α it is
// a hard lower bound on δP(Σ′, I) for every Σ′ ∈ S(Σ) — if it exceeds τ,
// no τ-constrained repair exists and the search can return φ immediately
// instead of exhausting the state space.
func (a *Analysis) PermanentMatching() int {
	width := a.In.Schema.Width()
	ext := make([]relation.AttrSet, len(a.Sigma))
	for i, f := range a.Sigma {
		ext[i] = relation.FullSet(width).Diff(f.LHS).Remove(f.RHS)
	}
	return a.MatchingSize(ext)
}

// refineGroups refines cluster (fi, ci) by the extension attributes y,
// skipping tuples already marked in the current epoch. Groups come back in
// deterministic (refinement encounter) order; within one cluster they are
// disjoint, so processing order never affects which tuples end up matched
// or covered. The result aliases per-analysis scratch and stays valid
// across Split calls.
//
// With the partition cache enabled the full cluster's refinement is served
// from (or stored into) the cache and the matched filter is applied
// afterwards; group order within the cluster can differ from the uncached
// path, which by the disjointness argument above never changes any result.
func (a *Analysis) refineGroups(fi, ci int, y relation.AttrSet) relation.Partition {
	a.stats.Queries++
	if a.pcache != nil && !y.IsEmpty() {
		return a.filterUnmarked(a.cachedRefine(fi, ci, y))
	}
	seed := a.seedScratch[:0]
	for _, t := range a.clusters[fi][ci] {
		if a.matched[t] != a.epoch {
			seed = append(seed, t)
		}
	}
	a.seedScratch = seed
	a.stats.RefineSteps += int64(y.Len())
	a.part.Begin(seed)
	a.part.RefineSet(y)
	return a.part.Partition()
}

// matchCluster greedily matches unmatched tuples across RHS subgroups of
// each refined group and returns the number of pairs matched.
func (a *Analysis) matchCluster(fi, ci int, rhs int, y relation.AttrSet) int {
	pt := a.refineGroups(fi, ci, y)
	pairs := 0
	for gi := 0; gi < pt.NumGroups(); gi++ {
		grp := pt.Group(gi)
		if len(grp) < 2 {
			continue
		}
		sp := a.part.Split(grp, rhs)
		if sp.NumGroups() < 2 {
			continue
		}
		// Complete multipartite matching: pair the lowest-subgroup entry
		// with the highest-subgroup entry until the remainder collapses
		// into a single subgroup (the flat partition layout is grouped by
		// subgroup already).
		flat, offs := sp.Tuples, sp.Offsets
		i, j := 0, len(flat)-1
		sgi, sgj := 0, sp.NumGroups()-1
		for i < j && sgi != sgj {
			a.matched[flat[i]] = a.epoch
			a.matched[flat[j]] = a.epoch
			a.matchedList = append(a.matchedList, flat[i], flat[j])
			pairs++
			i++
			j--
			for int32(i) >= offs[sgi+1] {
				sgi++
			}
			for int32(j) < offs[sgj] {
				sgj--
			}
		}
	}
	return pairs
}

// coverCluster adds, per refined group, every uncovered tuple outside one
// exempted subgroup to the cover scratch, marking them covered for
// subsequent clusters. The exempted subgroup is the one with the most
// uncovered members — or, when a protected predicate is supplied, the one
// sheltering the most protected tuples (ties broken by size, then by
// order), so pinned tuples stay out of the cover whenever a valid cover
// allows it.
func (a *Analysis) coverCluster(fi, ci int, rhs int, y relation.AttrSet, protected func(int32) bool) {
	pt := a.refineGroups(fi, ci, y)
	for gi := 0; gi < pt.NumGroups(); gi++ {
		grp := pt.Group(gi)
		if len(grp) < 2 {
			continue
		}
		sp := a.part.Split(grp, rhs)
		if sp.NumGroups() < 2 {
			continue
		}
		exempt := 0
		if protected == nil {
			for si := 1; si < sp.NumGroups(); si++ {
				if len(sp.Group(si)) > len(sp.Group(exempt)) {
					exempt = si
				}
			}
		} else {
			bestProt := -1
			for si := 0; si < sp.NumGroups(); si++ {
				sub := sp.Group(si)
				prot := 0
				for _, t := range sub {
					if protected(t) {
						prot++
					}
				}
				if prot > bestProt || (prot == bestProt && len(sub) > len(sp.Group(exempt))) {
					bestProt = prot
					exempt = si
				}
			}
		}
		for si := 0; si < sp.NumGroups(); si++ {
			if si == exempt {
				continue
			}
			for _, t := range sp.Group(si) {
				a.matched[t] = a.epoch
				a.coverScratch = append(a.coverScratch, t)
			}
		}
	}
}

// HasViolation reports whether Σ′ (base set extended by ext) still has any
// violating pair in the instance.
func (a *Analysis) HasViolation(ext []relation.AttrSet) bool {
	return a.CoverSize(ext) > 0
}

// MatchingEdgeSample returns up to cap edges of a maximal matching of the
// base conflict graph (cap <= 0 means all). The edges are globally
// vertex-disjoint, so for any Σ′ ∈ S(Σ) the edges of the sample still
// violating Σ′ form a matching of Σ′'s conflict graph — their count lower
// bounds every vertex cover of it. This powers the knapsack half of the
// A* heuristic.
func (a *Analysis) MatchingEdgeSample(cap int) []Edge {
	a.epoch++
	var out []Edge
	for fi, f := range a.Sigma {
		for ci := range a.clusters[fi] {
			out = a.matchClusterEdges(fi, ci, f.RHS, out, cap)
			if cap > 0 && len(out) >= cap {
				return out
			}
		}
	}
	return out
}

// matchClusterEdges is matchCluster collecting the matched pairs.
func (a *Analysis) matchClusterEdges(fi, ci int, rhs int, out []Edge, cap int) []Edge {
	pt := a.refineGroups(fi, ci, 0)
	for gi := 0; gi < pt.NumGroups(); gi++ {
		grp := pt.Group(gi)
		if len(grp) < 2 {
			continue
		}
		sp := a.part.Split(grp, rhs)
		if sp.NumGroups() < 2 {
			continue
		}
		flat, offs := sp.Tuples, sp.Offsets
		i, j := 0, len(flat)-1
		sgi, sgj := 0, sp.NumGroups()-1
		for i < j && sgi != sgj {
			t1, t2 := flat[i], flat[j]
			a.matched[t1] = a.epoch
			a.matched[t2] = a.epoch
			if t1 > t2 {
				t1, t2 = t2, t1
			}
			out = append(out, Edge{T1: t1, T2: t2})
			if cap > 0 && len(out) >= cap {
				return out
			}
			i++
			j--
			for int32(i) >= offs[sgi+1] {
				sgi++
			}
			for int32(j) < offs[sgj] {
				sgj--
			}
		}
	}
	return out
}

// DiffSet aggregates the conflict-graph edges that share one difference set
// (the attributes on which the edge's tuples disagree).
type DiffSet struct {
	Attrs relation.AttrSet
	Edges []Edge // sampled edges, deduplicated across FDs, capped
}

// Count returns the number of sampled edges carrying this difference set.
func (d DiffSet) Count() int { return len(d.Edges) }

// DiffSets enumerates conflict-graph edges of the base FD set, sampling at
// most capPerCluster edges per violation cluster (capPerCluster <= 0 means
// no cap — beware of quadratic blowup), deduplicates pairs that violate
// several FDs, and groups them by difference set. The result is sorted by
// descending edge count, then by attribute set, so selection heuristics and
// reports are deterministic.
//
// Sampling keeps every downstream use sound: difference sets and their edge
// counts feed the A* lower bound gc(S), and an undercounted bound is still
// a lower bound (Lemma 1's argument applies to any subset of the edges).
func (a *Analysis) DiffSets(capPerCluster int) []DiffSet {
	type agg struct {
		attrs relation.AttrSet
		edges []Edge
	}
	byAttrs := make(map[relation.AttrSet]*agg)
	seen := make(map[int64]bool)
	n := int64(a.In.N())
	for fi, f := range a.Sigma {
		for _, g := range a.clusters[fi] {
			a.sampleClusterEdges(g, f.RHS, capPerCluster, func(e Edge) {
				id := int64(e.T1)*n + int64(e.T2)
				if seen[id] {
					return
				}
				seen[id] = true
				d := a.In.Tuples[e.T1].DiffSet(a.In.Tuples[e.T2])
				ag, ok := byAttrs[d]
				if !ok {
					ag = &agg{attrs: d}
					byAttrs[d] = ag
				}
				ag.edges = append(ag.edges, e)
			})
		}
	}
	out := make([]DiffSet, 0, len(byAttrs))
	for _, ag := range byAttrs {
		out = append(out, DiffSet{Attrs: ag.attrs, Edges: ag.edges})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Edges) != len(out[j].Edges) {
			return len(out[i].Edges) > len(out[j].Edges)
		}
		return out[i].Attrs < out[j].Attrs
	})
	return out
}

// sampleClusterEdges emits up to cap cross-subgroup pairs of one cluster.
// The sample leads with a maximal matching (vertex-disjoint pairs) so that
// matching-based budget tests over sampled edges are as sharp as the
// cluster allows — a sample of overlapping pairs would make every excluded
// difference set look cheap. Remaining combinations follow round-robin
// until the cap binds.
func (a *Analysis) sampleClusterEdges(g []int32, rhs int, cap int, emit func(Edge)) {
	sp := a.part.Split(g, rhs)
	if sp.NumGroups() < 2 {
		return
	}
	emitted := 0
	send := func(t1, t2 int32) bool {
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		emit(Edge{T1: t1, T2: t2})
		emitted++
		return cap > 0 && emitted >= cap
	}
	// Phase 1: a maximal matching via the two-pointer sweep over the
	// subgroup-ordered flat partition (same construction as matchCluster).
	flat, offs := sp.Tuples, sp.Offsets
	inMatching := make(map[[2]int32]bool)
	i, j := 0, len(flat)-1
	sgi, sgj := 0, sp.NumGroups()-1
	for i < j && sgi != sgj {
		t1, t2 := flat[i], flat[j]
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		inMatching[[2]int32{t1, t2}] = true
		if send(t1, t2) {
			return
		}
		i++
		j--
		for int32(i) >= offs[sgi+1] {
			sgi++
		}
		for int32(j) < offs[sgj] {
			sgj--
		}
	}
	// Phase 2: remaining cross pairs in deterministic round-robin order,
	// skipping the matched pairs already emitted.
	for round := 0; ; round++ {
		any := false
		for x := 0; x < sp.NumGroups(); x++ {
			for y := x + 1; y < sp.NumGroups(); y++ {
				sx, sy := sp.Group(x), sp.Group(y)
				ai := round % len(sx)
				bj := round / len(sx)
				if bj >= len(sy) {
					continue
				}
				any = true
				t1, t2 := sx[ai], sy[bj]
				if t1 > t2 {
					t1, t2 = t2, t1
				}
				if inMatching[[2]int32{t1, t2}] {
					continue
				}
				if send(t1, t2) {
					return
				}
			}
		}
		if !any {
			return
		}
	}
}

// EdgeCountExact returns the exact number of conflict-graph edges of the
// base set (sum over clusters of cross-subgroup pair counts, with pairs
// violating several FDs counted once per FD, as in the paper's |E|). It is
// O(|Σ|·n) and never enumerates pairs.
func (a *Analysis) EdgeCountExact() int64 {
	var total int64
	for fi, f := range a.Sigma {
		for _, g := range a.clusters[fi] {
			sp := a.part.Split(g, f.RHS)
			var sum, sq int64
			for si := 0; si < sp.NumGroups(); si++ {
				c := int64(len(sp.Group(si)))
				sum += c
				sq += c * c
			}
			total += (sum*sum - sq) / 2
		}
	}
	return total
}

// DescribeClusters renders a short human-readable summary, used by the CLI.
func (a *Analysis) DescribeClusters() string {
	var b strings.Builder
	for fi := range a.Sigma {
		total := 0
		for _, g := range a.clusters[fi] {
			total += len(g)
		}
		b.WriteString(a.Sigma[fi].String())
		b.WriteString(": ")
		fmt.Fprintf(&b, "%d violating clusters, %d tuples involved\n", len(a.clusters[fi]), total)
	}
	return b.String()
}
