//go:build unix

package store

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mmapSnapshotImpl maps path read-only. Errors here are never surfaced to
// Load callers — they only send the load down the buffered path — so a
// zero-length or oversized file simply declines the mapping.
func mmapSnapshotImpl(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size <= 0 || size > math.MaxInt32 {
		return nil, nil, fmt.Errorf("store: file size %d not mappable", size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return b, func() { _ = syscall.Munmap(b) }, nil
}
