package store

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"relatrust/internal/relation"
	"relatrust/internal/testkit"
)

// openTest returns a store over a fresh temp dir with a logger capturing
// structured lines into buf.
func openTest(t *testing.T) (*Store, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&syncWriter{w: &buf}, nil))
	s, err := Open(filepath.Join(t.TempDir(), "data"), Options{Logger: log})
	if err != nil {
		t.Fatal(err)
	}
	return s, &buf
}

// syncWriter guards the capture buffer; store methods may log from
// multiple goroutines in the concurrency test.
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func fixture(t *testing.T) *relation.Instance {
	t.Helper()
	return testkit.Build([]string{"City", "ZIP"}, [][]string{
		{"Springfield", "62701"},
		{"Springfield", "97477"},
		{"Shelbyville", "46176"},
	})
}

func TestSaveLoadRoundtrip(t *testing.T) {
	s, _ := openTest(t)
	in := fixture(t)
	if err := s.Save("cities", in); err != nil {
		t.Fatal(err)
	}
	out, err := s.Load("cities")
	if err != nil {
		t.Fatal(err)
	}
	if out.N() != in.N() {
		t.Fatalf("loaded %d tuples, want %d", out.N(), in.N())
	}
	for i := range in.Tuples {
		if !out.Tuples[i].Equal(in.Tuples[i]) {
			t.Errorf("tuple %d = %v, want %v", i, out.Tuples[i], in.Tuples[i])
		}
	}
	if st := s.Stats(); st.Saves != 1 || st.Loads != 1 || st.Quarantined != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLoadMissing(t *testing.T) {
	s, _ := openTest(t)
	if _, err := s.Load("nope"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("err = %v, want fs.ErrNotExist", err)
	}
}

func TestSaveAtomicReplace(t *testing.T) {
	s, _ := openTest(t)
	if err := s.Save("d", fixture(t)); err != nil {
		t.Fatal(err)
	}
	bigger := fixture(t)
	if err := bigger.AppendConsts("Ogdenville", "11111"); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("d", bigger); err != nil {
		t.Fatal(err)
	}
	out, err := s.Load("d")
	if err != nil {
		t.Fatal(err)
	}
	if out.N() != bigger.N() {
		t.Errorf("replaced snapshot has %d tuples, want %d", out.N(), bigger.N())
	}
	// No temp droppings survive a successful save.
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestDeleteIdempotent(t *testing.T) {
	s, _ := openTest(t)
	if err := s.Save("d", fixture(t)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("d"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("after delete: err = %v, want fs.ErrNotExist", err)
	}
	if err := s.Delete("d"); err != nil {
		t.Errorf("second delete: %v", err)
	}
}

func TestListSorted(t *testing.T) {
	s, _ := openTest(t)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := s.Save(n, fixture(t)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"alpha", "mid", "zeta"}; !equalStrings(names, want) {
		t.Errorf("List = %v, want %v", names, want)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLoadAllQuarantinesCorrupt is the tentpole contract: a damaged
// snapshot is renamed aside with a structured log line, the healthy
// datasets still load, and nothing crashes.
func TestLoadAllQuarantinesCorrupt(t *testing.T) {
	s, logBuf := openTest(t)
	if err := s.Save("good", fixture(t)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("bad", fixture(t)); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of "bad": the checksum catches it at load.
	path := filepath.Join(s.Dir(), "bad.snap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x5a
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "good" {
		t.Fatalf("LoadAll = %v, want only %q", got, "good")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt snapshot not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("corrupt snapshot still in place: %v", err)
	}
	if !strings.Contains(logBuf.String(), "quarantined corrupt snapshot") {
		t.Errorf("no quarantine log line; log:\n%s", logBuf.String())
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", st.Quarantined)
	}

	// The next boot sees only the healthy dataset — the quarantined file
	// does not resurface.
	again, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 1 || again[0].Name != "good" {
		t.Errorf("second LoadAll = %v", again)
	}
}

func TestInvalidNames(t *testing.T) {
	s, _ := openTest(t)
	for _, name := range []string{"", "a/b", `a\b`, "..", ".hidden", "x.snap", strings.Repeat("n", 129)} {
		if err := s.Save(name, fixture(t)); err == nil {
			t.Errorf("Save(%q) accepted an invalid name", name)
		}
		if _, err := s.Load(name); err == nil {
			t.Errorf("Load(%q) accepted an invalid name", name)
		}
	}
}

// TestConcurrentSaveLoad exercises the store from many goroutines for the
// -race pass: concurrent saves of distinct names plus reloads.
func TestConcurrentSaveLoad(t *testing.T) {
	s, _ := openTest(t)
	in := fixture(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("d%d", g)
			for i := 0; i < 5; i++ {
				if err := s.Save(name, in); err != nil {
					t.Errorf("Save %s: %v", name, err)
					return
				}
				if _, err := s.Load(name); err != nil {
					t.Errorf("Load %s: %v", name, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 8 {
		t.Errorf("%d datasets after concurrent saves, want 8", len(names))
	}
}
