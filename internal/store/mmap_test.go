package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"relatrust/internal/relation"
)

// openMmapTest returns a store with the mmap fast path enabled.
func openMmapTest(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), Options{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMmapLoadRoundtrip pins the fast path end to end: a snapshot saved
// normally loads identically through the mapping, code columns included.
func TestMmapLoadRoundtrip(t *testing.T) {
	s := openMmapTest(t)
	in := fixture(t)
	if err := s.Save("cities", in); err != nil {
		t.Fatal(err)
	}
	out, err := s.Load("cities")
	if err != nil {
		t.Fatal(err)
	}
	if out.N() != in.N() {
		t.Fatalf("loaded %d tuples, want %d", out.N(), in.N())
	}
	for i := range in.Tuples {
		if !out.Tuples[i].Equal(in.Tuples[i]) {
			t.Errorf("tuple %d = %v, want %v", i, out.Tuples[i], in.Tuples[i])
		}
	}
	for a := 0; a < in.Schema.Width(); a++ {
		wantCodes, wantDistinct := in.Codes(a)
		gotCodes, gotDistinct := out.Codes(a)
		if wantDistinct != gotDistinct {
			t.Fatalf("attr %d: %d distinct codes, want %d", a, gotDistinct, wantDistinct)
		}
		for i := range wantCodes {
			if wantCodes[i] != gotCodes[i] {
				t.Fatalf("attr %d tuple %d: code %d, want %d", a, i, gotCodes[i], wantCodes[i])
			}
		}
	}
	if st := s.Stats(); st.Loads != 1 {
		t.Errorf("loads = %d, want 1", st.Loads)
	}
}

// TestMmapFallbackOnError forces every mmap attempt to fail and checks the
// load silently falls back to the buffered path — same instance, same
// stats — and that genuine corruption still reports through the buffered
// path's error (so quarantine decisions are unaffected by the flag).
func TestMmapFallbackOnError(t *testing.T) {
	prev := mmapSnapshot
	mmapSnapshot = func(string) ([]byte, func(), error) {
		return nil, nil, errors.New("forced mmap failure")
	}
	defer func() { mmapSnapshot = prev }()

	s := openMmapTest(t)
	in := fixture(t)
	if err := s.Save("cities", in); err != nil {
		t.Fatal(err)
	}
	out, err := s.Load("cities")
	if err != nil {
		t.Fatalf("load with failing mmap: %v", err)
	}
	if out.N() != in.N() {
		t.Fatalf("fallback loaded %d tuples, want %d", out.N(), in.N())
	}
	if st := s.Stats(); st.Loads != 1 {
		t.Errorf("loads = %d, want 1", st.Loads)
	}
}

// TestMmapCorruptSnapshot checks a damaged file errors with the usual
// ErrSnapshotCorrupt through the mmap-enabled store, not with some
// mapping-layer error.
func TestMmapCorruptSnapshot(t *testing.T) {
	s := openMmapTest(t)
	in := fixture(t)
	if err := s.Save("cities", in); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), "cities"+snapExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("cities"); !errors.Is(err, relation.ErrSnapshotCorrupt) {
		t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
	}
}

// TestReadSnapshotBytesMatchesReader cross-checks the in-memory decoder
// against the io.Reader one on valid and malformed documents.
func TestReadSnapshotBytesMatchesReader(t *testing.T) {
	s := openMmapTest(t)
	in := fixture(t)
	if err := s.Save("cities", in); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(s.Dir(), "cities"+snapExt))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := relation.ReadSnapshotBytes(raw); err != nil {
		t.Fatalf("valid document: %v", err)
	}
	bad := [][]byte{
		nil,
		raw[:10],                           // short header
		raw[:len(raw)-1],                   // truncated payload
		append(raw[:len(raw):len(raw)], 0), // trailing byte
	}
	for i, b := range bad {
		if _, err := relation.ReadSnapshotBytes(b); !errors.Is(err, relation.ErrSnapshotCorrupt) {
			t.Errorf("case %d: err = %v, want ErrSnapshotCorrupt", i, err)
		}
	}
}
