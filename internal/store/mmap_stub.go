//go:build !unix

package store

import "errors"

// mmapSnapshotImpl declines on platforms without a unix mmap; loads fall
// back to the buffered path.
func mmapSnapshotImpl(string) ([]byte, func(), error) {
	return nil, nil, errors.New("store: mmap unsupported on this platform")
}
