// Package store persists registered datasets as columnar snapshot files,
// so a restarted daemon rehydrates its registry instead of losing every
// uploaded instance.
//
// # Layout and durability
//
// A Store owns one directory; each dataset lives in a single file
// "<name>.snap" holding one relation snapshot (format RTSNAP01, see
// relation.WriteSnapshot): per-attribute value dictionaries plus int32
// code columns, checksummed, so loading rehydrates the instance together
// with its dictionary-code columns and pays no re-interning. Save writes
// atomically — the snapshot goes to a temp file in the same directory,
// is fsynced, and is renamed over the target — so a crash mid-write
// leaves either the old snapshot or the new one, never a torn file.
//
// # Corruption
//
// A snapshot that fails its checksum or structure checks is *quarantined*,
// never fatal: LoadAll renames it to "<name>.snap.corrupt", emits one
// structured log line, and carries on with the remaining datasets. A
// repaired or re-uploaded dataset simply writes a fresh snapshot. I/O
// errors (permissions, a vanished directory) are surfaced to the caller —
// they are operational problems, not data damage.
package store

import (
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"relatrust/internal/faultinject"
	"relatrust/internal/relation"
)

// snapExt is the dataset snapshot suffix; quarantined files get
// snapExt + corruptExt.
const (
	snapExt    = ".snap"
	corruptExt = ".corrupt"
	// genExt is the generation sidecar suffix (see SaveGeneration).
	genExt = ".gen"
)

// Options tunes a Store.
type Options struct {
	// Logger receives quarantine and skip events. nil selects
	// slog.Default().
	Logger *slog.Logger
	// Mmap memory-maps snapshot files for decoding instead of reading
	// them through a buffer — one copy fewer per load, which matters when
	// a boot rehydrates many large datasets. Decoding copies every value
	// it keeps, so the mapping is dropped before Load returns. Any
	// mmap-path failure (including platforms without mmap support) falls
	// back silently to the buffered read path, whose error is then
	// authoritative.
	Mmap bool
}

// Store is a directory of dataset snapshots. Methods are safe for
// concurrent use; concurrent Saves of the same name serialize on the
// atomic rename (last writer wins).
type Store struct {
	dir  string
	log  *slog.Logger
	mmap bool

	saves       atomic.Int64
	loads       atomic.Int64
	quarantined atomic.Int64
}

// Stats counts a store's lifetime activity (exported via /statz and
// /metrics).
type Stats struct {
	// Saves is the number of snapshots written successfully.
	Saves int64
	// Loads is the number of snapshots decoded successfully.
	Loads int64
	// Quarantined is the number of corrupt snapshots renamed aside.
	Quarantined int64
}

// Open returns a store over dir, creating the directory if needed.
func Open(dir string, opt Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	log := opt.Logger
	if log == nil {
		log = slog.Default()
	}
	return &Store{dir: dir, log: log, mmap: opt.Mmap}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the lifetime counters.
func (s *Store) Stats() Stats {
	return Stats{
		Saves:       s.saves.Load(),
		Loads:       s.loads.Load(),
		Quarantined: s.quarantined.Load(),
	}
}

// validName guards the name→filename mapping: a dataset name is used
// verbatim as the file stem, so anything that could escape the directory
// or collide with the store's own suffixes is rejected.
func validName(name string) error {
	switch {
	case name == "" || len(name) > 128:
		return fmt.Errorf("store: invalid dataset name %q (need 1-128 chars)", name)
	case strings.ContainsAny(name, "/\\\x00") || strings.HasPrefix(name, "."):
		return fmt.Errorf("store: invalid dataset name %q (no path separators or leading dots)", name)
	case strings.Contains(name, snapExt):
		return fmt.Errorf("store: invalid dataset name %q (reserved suffix %s)", name, snapExt)
	case strings.Contains(name, genExt):
		return fmt.Errorf("store: invalid dataset name %q (reserved suffix %s)", name, genExt)
	}
	return nil
}

func (s *Store) path(name string) string {
	return filepath.Join(s.dir, name+snapExt)
}

// Save persists the instance under the name, atomically replacing any
// previous snapshot: the bytes land in a temp file first and are renamed
// over the target only after a successful write and fsync.
func (s *Store) Save(name string, in *relation.Instance) error {
	if err := validName(name); err != nil {
		return err
	}
	if err := faultinject.Hit(faultinject.StoreWrite); err != nil {
		return fmt.Errorf("store: saving %q: %w", name, err)
	}
	tmp, err := os.CreateTemp(s.dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: saving %q: %w", name, err)
	}
	// Any failure below removes the temp file; the old snapshot (if any)
	// is untouched until the final rename.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: saving %q: %w", name, err)
	}
	if err := relation.WriteSnapshot(tmp, in); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp.Name(), s.path(name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: saving %q: %w", name, err)
	}
	s.saves.Add(1)
	return nil
}

// Load reads one snapshot. A missing dataset reports fs.ErrNotExist; a
// corrupt snapshot reports relation.ErrSnapshotCorrupt (and is NOT
// quarantined — only LoadAll, the boot path, moves files aside).
func (s *Store) Load(name string) (*relation.Instance, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	return s.loadFile(s.path(name))
}

func (s *Store) loadFile(path string) (*relation.Instance, error) {
	if err := faultinject.Hit(faultinject.StoreLoad); err != nil {
		return nil, fmt.Errorf("store: loading %s: %w", filepath.Base(path), err)
	}
	if s.mmap {
		// The mmap fast path decodes straight off the page cache. Only a
		// successful decode is trusted: corruption found there is
		// re-checked through the buffered path below, so the reported
		// error (and quarantine decision) always comes from one code
		// path regardless of the flag.
		if in, err := loadMapped(path); err == nil {
			s.loads.Add(1)
			return in, nil
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	in, err := relation.ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("store: loading %s: %w", filepath.Base(path), err)
	}
	s.loads.Add(1)
	return in, nil
}

// mmapSnapshot maps a file read-only and returns the bytes plus an unmap
// function. A package variable so the fallback test can force the mmap
// path to fail; the real implementation is per-platform (mmap_unix.go,
// mmap_stub.go).
var mmapSnapshot = mmapSnapshotImpl

// loadMapped decodes a snapshot through the memory-mapped fast path. The
// decoder copies everything it keeps, so the mapping is dropped before
// returning.
func loadMapped(path string) (*relation.Instance, error) {
	b, unmap, err := mmapSnapshot(path)
	if err != nil {
		return nil, err
	}
	defer unmap()
	return relation.ReadSnapshotBytes(b)
}

// genPath is the generation sidecar of a dataset: a small text file next
// to the snapshot holding the live mutation generation the snapshot
// represents.
func (s *Store) genPath(name string) string {
	return filepath.Join(s.dir, name+genExt)
}

// SaveGeneration persists the dataset's mutation generation, atomically
// (temp + fsync + rename) like Save. The serving layer writes it BEFORE
// the mutated snapshot: if a crash separates the two writes, the
// directory claims a newer generation than its rows — which at worst
// costs a redundant fresh sweep — instead of serving mutated rows under
// the pre-mutation generation, which would let generation-addressed job
// results answer for the wrong data.
func (s *Store) SaveGeneration(name string, gen int64) error {
	if err := validName(name); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: saving generation of %q: %w", name, err)
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: saving generation of %q: %w", name, err)
	}
	if _, err := fmt.Fprintf(tmp, "%d\n", gen); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp.Name(), s.genPath(name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: saving generation of %q: %w", name, err)
	}
	return nil
}

// LoadGeneration reads the dataset's persisted mutation generation. A
// missing sidecar is generation 0 (never mutated, or persisted before the
// live tier existed), not an error; an unreadable one is.
func (s *Store) LoadGeneration(name string) (int64, error) {
	if err := validName(name); err != nil {
		return 0, err
	}
	b, err := os.ReadFile(s.genPath(name))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: loading generation of %q: %w", name, err)
	}
	var gen int64
	if _, err := fmt.Sscanf(string(b), "%d", &gen); err != nil || gen < 0 {
		return 0, fmt.Errorf("store: generation sidecar of %q is malformed: %q", name, b)
	}
	return gen, nil
}

// Delete removes the snapshot of the name and its generation sidecar.
// Deleting a dataset that has no snapshot is not an error (idempotent).
func (s *Store) Delete(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	if err := os.Remove(s.path(name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: deleting %q: %w", name, err)
	}
	if err := os.Remove(s.genPath(name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: deleting generation of %q: %w", name, err)
	}
	return nil
}

// List returns the persisted dataset names in sorted order.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), snapExt); ok && !e.IsDir() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Dataset is one rehydrated dataset.
type Dataset struct {
	Name     string
	Instance *relation.Instance
}

// LoadAll rehydrates every snapshot in the directory, in sorted name
// order. A snapshot that fails to decode is skipped with a structured log
// line — corrupt files are additionally quarantined (renamed aside) so
// the next boot does not trip over them again — and never aborts the
// load: the error return covers only directory-level I/O failure.
func (s *Store) LoadAll() ([]Dataset, error) {
	names, err := s.List()
	if err != nil {
		return nil, err
	}
	out := make([]Dataset, 0, len(names))
	for _, name := range names {
		path := s.path(name)
		in, err := s.loadFile(path)
		if err != nil {
			if errors.Is(err, relation.ErrSnapshotCorrupt) {
				s.quarantine(path, err)
			} else {
				s.log.Error("store: skipping unreadable snapshot",
					"file", path, "err", err)
			}
			continue
		}
		out = append(out, Dataset{Name: name, Instance: in})
	}
	return out, nil
}

// quarantine moves a corrupt snapshot aside so it is preserved for
// inspection but never reloaded, and logs the event.
func (s *Store) quarantine(path string, cause error) {
	s.quarantined.Add(1)
	qpath := path + corruptExt
	if err := os.Rename(path, qpath); err != nil {
		s.log.Error("store: quarantining corrupt snapshot failed",
			"file", path, "cause", cause, "err", err)
		return
	}
	s.log.Error("store: quarantined corrupt snapshot",
		"file", path, "quarantined_as", qpath, "err", cause)
}
