package store

// Unit tests for the job record and result-log codecs: round-trips,
// atomicity of the record write, torn-tail truncation of the append-only
// log, and quarantine of files that fail their checksums.

import (
	"bytes"
	"errors"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
)

func testJobStore(t *testing.T) *JobStore {
	t.Helper()
	s, err := OpenJobs(t.TempDir(), Options{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testRecord(id string) JobRecord {
	return JobRecord{
		ID: id, Dataset: "paper", FDs: "A->B; C->D",
		TauLow: 0, TauHigh: -1, Weights: "distinct-count", Seed: 9,
		State: "running", CreatedUnix: 1700000000, UpdatedUnix: 1700000001,
	}
}

func TestJobRecordRoundTrip(t *testing.T) {
	s := testJobStore(t)
	want := testRecord("j0011223344556677")
	if err := s.SaveRecord(want); err != nil {
		t.Fatal(err)
	}
	// Overwrites are atomic replacements, not appends.
	want.State = "completed"
	want.UpdatedUnix = 1700000002
	if err := s.SaveRecord(want); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("LoadAll returned %d jobs, want 1", len(got))
	}
	if got[0].Record != want {
		t.Fatalf("record round-trip:\n got %+v\nwant %+v", got[0].Record, want)
	}
	if len(got[0].Frames) != 0 || got[0].LogBytes != 0 {
		t.Fatalf("job without a log reports frames=%d bytes=%d", len(got[0].Frames), got[0].LogBytes)
	}
}

func TestJobRecordInvalidID(t *testing.T) {
	s := testJobStore(t)
	for _, id := range []string{"", "../escape", "a/b", ".hidden", "x.job", "y.rlog"} {
		if err := s.SaveRecord(testRecord(id)); err == nil {
			t.Errorf("SaveRecord accepted id %q", id)
		}
	}
}

func TestJobResultLogRoundTrip(t *testing.T) {
	s := testJobStore(t)
	id := "jlog"
	frames := [][]byte{[]byte(`{"level":1}`), []byte(`{"level":2}`), []byte(`{"level":3}`)}
	var total int64
	for _, f := range frames {
		n, err := s.AppendResult(id, f)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	got, size, err := s.readResultLog(id)
	if err != nil {
		t.Fatal(err)
	}
	if size != total {
		t.Errorf("log size %d, appended %d", size, total)
	}
	if len(got) != len(frames) {
		t.Fatalf("replayed %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Errorf("frame %d: got %q want %q", i, got[i], frames[i])
		}
	}
}

func TestJobResultLogTornTailTruncated(t *testing.T) {
	s := testJobStore(t)
	id := "jtorn"
	if _, err := s.AppendResult(id, []byte(`{"level":1}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendResult(id, []byte(`{"level":2}`)); err != nil {
		t.Fatal(err)
	}
	path := s.logPath(id)
	whole, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a frame header with half its payload.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{20, 0, 0, 0, 1, 2, 3, 4, 'h', 'a', 'l'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	frames, size, err := s.readResultLog(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("replayed %d frames through a torn tail, want 2", len(frames))
	}
	if size != whole.Size() {
		t.Errorf("truncated size %d, want the pre-crash size %d", size, whole.Size())
	}
	if st, _ := os.Stat(path); st.Size() != whole.Size() {
		t.Errorf("file not truncated: %d bytes on disk, want %d", st.Size(), whole.Size())
	}
	// Appends after the truncation frame cleanly.
	if _, err := s.AppendResult(id, []byte(`{"level":3}`)); err != nil {
		t.Fatal(err)
	}
	frames, _, err = s.readResultLog(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("replayed %d frames after post-truncation append, want 3", len(frames))
	}
}

func TestJobResultLogChecksumCutsReplay(t *testing.T) {
	s := testJobStore(t)
	id := "jcrc"
	for i := 0; i < 3; i++ {
		if _, err := s.AppendResult(id, []byte(`{"row":true}`)); err != nil {
			t.Fatal(err)
		}
	}
	// Flip one payload byte of the second frame; it and everything after
	// it are unreplayable (the log is only trusted up to the first bad
	// checksum).
	raw, err := os.ReadFile(s.logPath(id))
	if err != nil {
		t.Fatal(err)
	}
	frameLen := 8 + len(`{"row":true}`)
	raw[len(logMagic)+frameLen+8+2] ^= 0xFF
	if err := os.WriteFile(s.logPath(id), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	frames, _, err := s.readResultLog(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("replayed %d frames past a checksum failure, want 1", len(frames))
	}
}

func TestJobResultLogBadHeaderQuarantined(t *testing.T) {
	s := testJobStore(t)
	id := "jhdr"
	if err := os.WriteFile(s.logPath(id), []byte("NOTALOG!stuff"), 0o644); err != nil {
		t.Fatal(err)
	}
	frames, size, err := s.readResultLog(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 0 || size != 0 {
		t.Fatalf("bad-header log replayed frames=%d size=%d, want empty", len(frames), size)
	}
	if s.Quarantined() != 1 {
		t.Errorf("quarantined = %d, want 1", s.Quarantined())
	}
	if _, err := os.Stat(s.logPath(id) + corruptExt); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
}

func TestJobCorruptRecordQuarantined(t *testing.T) {
	s := testJobStore(t)
	rec := testRecord("jcorrupt")
	if err := s.SaveRecord(rec); err != nil {
		t.Fatal(err)
	}
	path := s.recordPath(rec.ID)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.loadRecord(path); !errors.Is(err, ErrJobCorrupt) {
		t.Fatalf("loadRecord on flipped bytes = %v, want ErrJobCorrupt", err)
	}
	got, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("LoadAll returned %d jobs from a corrupt record", len(got))
	}
	if s.Quarantined() != 1 {
		t.Errorf("quarantined = %d, want 1", s.Quarantined())
	}
}

func TestJobRecordIDMismatchQuarantined(t *testing.T) {
	s := testJobStore(t)
	rec := testRecord("joriginal")
	if err := s.SaveRecord(rec); err != nil {
		t.Fatal(err)
	}
	// A record renamed to another job's file must not resume as that job.
	if err := os.Rename(s.recordPath(rec.ID), s.recordPath("jother")); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("LoadAll resumed %d jobs from a renamed record", len(got))
	}
	if s.Quarantined() != 1 {
		t.Errorf("quarantined = %d, want 1", s.Quarantined())
	}
}

func TestJobDelete(t *testing.T) {
	s := testJobStore(t)
	rec := testRecord("jdel")
	if err := s.SaveRecord(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendResult(rec.ID, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteJob(rec.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteJob(rec.ID); err != nil {
		t.Fatalf("second delete not idempotent: %v", err)
	}
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("leftover file %s", filepath.Join(s.Dir(), e.Name()))
	}
}
