package store

// Job persistence: the durable half of the internal/jobs tier. A JobStore
// owns one directory holding, per job, a record file ("<id>.job", format
// RTJOB001: magic + crc32c + length + JSON payload, written atomically
// like dataset snapshots) and an append-only result log ("<id>.rlog",
// format RTJLOG01: a magic header followed by length+crc32c-framed
// frontier rows, fsynced per append). The discipline matches RTSNAP01:
// a crash mid-write leaves either the old record or the new one; a crash
// mid-append leaves a torn final frame that the next open truncates away,
// so every frame that survives a reboot is exactly the bytes that were
// checkpointed. Corrupt records and unrecognizable logs are quarantined
// ("<file>.corrupt"), never fatal.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"relatrust/internal/faultinject"
)

const (
	jobExt = ".job"
	logExt = ".rlog"

	recordMagic = "RTJOB001"
	logMagic    = "RTJLOG01"

	// logFrameOverhead is the per-frame framing cost in the result log:
	// a 4-byte little-endian payload length plus a 4-byte crc32c.
	logFrameOverhead = 8
	// maxLogFrame bounds one frame's payload; a length field beyond it is
	// corruption, not a row.
	maxLogFrame = 64 << 20
)

var jobCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrJobCorrupt marks a job record or result log that failed its checksum
// or structure checks; match with errors.Is.
var ErrJobCorrupt = errors.New("store: corrupt job file")

// JobRecord is the durable identity and terminal state of one job. The
// spec fields are the job's content address (the ID is derived from them
// by internal/jobs); State is "running" until the sweep reaches a terminal
// state, which is what makes boot-time resume possible: a record still
// "running" after a crash is a sweep to continue from its result log.
type JobRecord struct {
	ID      string `json:"id"`
	Dataset string `json:"dataset"`
	// FDs is the canonical (schema-formatted) FD set.
	FDs     string `json:"fds"`
	TauLow  int    `json:"tau_low"`
	TauHigh int    `json:"tau_high"` // -1 = sweep from δP(Σ, I)
	Weights string `json:"weights"`
	Seed    int64  `json:"seed,omitempty"`
	// IncludeChanges is part of the address: it changes the row bytes.
	IncludeChanges bool `json:"include_changes,omitempty"`
	// Generation is the dataset's mutation generation the job answers
	// for; a mismatch at recovery fails the job instead of resuming it.
	Generation int64 `json:"generation,omitempty"`

	// Kind distinguishes job bodies ("" = frontier sweep, "discover" =
	// FD mining); the discovery knobs below are set only for the latter.
	// All are additive and omitempty, so pre-upgrade records decode with
	// their zero values and keep their ids.
	Kind       string  `json:"kind,omitempty"`
	MaxLHS     int     `json:"max_lhs,omitempty"`
	MaxError   float64 `json:"max_error,omitempty"`
	MaxResults int     `json:"max_results,omitempty"`
	Attrs      string  `json:"attrs,omitempty"`

	State        string `json:"state"`
	ErrorCode    string `json:"error_code,omitempty"`
	ErrorMessage string `json:"error_message,omitempty"`
	CreatedUnix  int64  `json:"created_unix,omitempty"`
	UpdatedUnix  int64  `json:"updated_unix,omitempty"`
}

// JobStore is a directory of job records and result logs. Methods are safe
// for concurrent use across distinct jobs; callers serialize per job (the
// job manager owns each job's lifecycle).
type JobStore struct {
	dir string
	log *slog.Logger

	quarantined atomic.Int64
}

// OpenJobs returns a job store over dir, creating the directory if needed.
func OpenJobs(dir string, opt Options) (*JobStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty jobs directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	log := opt.Logger
	if log == nil {
		log = slog.Default()
	}
	return &JobStore{dir: dir, log: log}, nil
}

// Dir returns the store's directory.
func (s *JobStore) Dir() string { return s.dir }

// Quarantined returns how many corrupt job files were renamed aside.
func (s *JobStore) Quarantined() int64 { return s.quarantined.Load() }

// validJobID guards the id→filename mapping, like validName for datasets.
func validJobID(id string) error {
	if id == "" || len(id) > 128 || strings.ContainsAny(id, "/\\\x00") ||
		strings.HasPrefix(id, ".") || strings.Contains(id, jobExt) || strings.Contains(id, logExt) {
		return fmt.Errorf("store: invalid job id %q", id)
	}
	return nil
}

func (s *JobStore) recordPath(id string) string { return filepath.Join(s.dir, id+jobExt) }
func (s *JobStore) logPath(id string) string    { return filepath.Join(s.dir, id+logExt) }

// SaveRecord persists the record, atomically replacing any previous one
// (temp file + fsync + rename, exactly like dataset snapshots).
func (s *JobStore) SaveRecord(rec JobRecord) error {
	if err := validJobID(rec.ID); err != nil {
		return err
	}
	if err := faultinject.Hit(faultinject.JobRecordWrite); err != nil {
		return fmt.Errorf("store: saving job record %q: %w", rec.ID, err)
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: saving job record %q: %w", rec.ID, err)
	}
	buf := make([]byte, 0, len(recordMagic)+12+len(payload))
	buf = append(buf, recordMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, jobCRC))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)

	tmp, err := os.CreateTemp(s.dir, rec.ID+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: saving job record %q: %w", rec.ID, err)
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: saving job record %q: %w", rec.ID, err)
	}
	if _, err := tmp.Write(buf); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp.Name(), s.recordPath(rec.ID)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: saving job record %q: %w", rec.ID, err)
	}
	return nil
}

// loadRecord decodes one record file. Checksum or structure failure wraps
// ErrJobCorrupt.
func (s *JobStore) loadRecord(path string) (JobRecord, error) {
	var rec JobRecord
	raw, err := os.ReadFile(path)
	if err != nil {
		return rec, fmt.Errorf("store: %w", err)
	}
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("store: %s: %w: %s", filepath.Base(path), ErrJobCorrupt, fmt.Sprintf(format, args...))
	}
	if len(raw) < len(recordMagic)+12 {
		return rec, corrupt("truncated header (%d bytes)", len(raw))
	}
	if string(raw[:len(recordMagic)]) != recordMagic {
		return rec, corrupt("bad magic %q", raw[:len(recordMagic)])
	}
	sum := binary.LittleEndian.Uint32(raw[len(recordMagic):])
	n := binary.LittleEndian.Uint64(raw[len(recordMagic)+4:])
	payload := raw[len(recordMagic)+12:]
	if uint64(len(payload)) != n {
		return rec, corrupt("payload length %d, header says %d", len(payload), n)
	}
	if crc32.Checksum(payload, jobCRC) != sum {
		return rec, corrupt("checksum mismatch")
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, corrupt("decoding payload: %v", err)
	}
	return rec, nil
}

// AppendResult appends one checkpointed frontier row to the job's result
// log and fsyncs it, creating the log (with its magic header) on first
// use. It returns the bytes written to disk. A crash mid-append leaves a
// torn tail that readResultLog truncates on the next boot, so the log
// never replays a partially-written frame.
func (s *JobStore) AppendResult(id string, frame []byte) (int64, error) {
	if err := validJobID(id); err != nil {
		return 0, err
	}
	if err := faultinject.Hit(faultinject.JobCheckpoint); err != nil {
		return 0, fmt.Errorf("store: checkpointing job %q: %w", id, err)
	}
	f, err := os.OpenFile(s.logPath(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: checkpointing job %q: %w", id, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("store: checkpointing job %q: %w", id, err)
	}
	buf := make([]byte, 0, len(logMagic)+logFrameOverhead+len(frame))
	if st.Size() == 0 {
		buf = append(buf, logMagic...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(frame)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(frame, jobCRC))
	buf = append(buf, frame...)
	if _, err := f.Write(buf); err != nil {
		return 0, fmt.Errorf("store: checkpointing job %q: %w", id, err)
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("store: checkpointing job %q: %w", id, err)
	}
	return int64(len(buf)), nil
}

// readResultLog replays the job's checkpointed frames. A missing log is an
// empty one. A torn or checksum-failing tail is truncated away (with a log
// line) so later appends continue from the last good frame; a log whose
// magic header is wrong is quarantined wholesale and replays as empty.
func (s *JobStore) readResultLog(id string) (frames [][]byte, size int64, err error) {
	path := s.logPath(id)
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("store: reading result log %q: %w", id, err)
	}
	if len(raw) < len(logMagic) || string(raw[:len(logMagic)]) != logMagic {
		s.quarantine(path, fmt.Errorf("%w: bad result-log header", ErrJobCorrupt))
		return nil, 0, nil
	}
	good := int64(len(logMagic))
	rest := raw[len(logMagic):]
	for len(rest) > 0 {
		if len(rest) < logFrameOverhead {
			break // torn frame header
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n > maxLogFrame || len(rest) < logFrameOverhead+int(n) {
			break // implausible length or torn payload
		}
		payload := rest[logFrameOverhead : logFrameOverhead+int(n)]
		if crc32.Checksum(payload, jobCRC) != sum {
			break // corrupt payload; everything after it is unframeable
		}
		frames = append(frames, bytes.Clone(payload))
		good += int64(logFrameOverhead + int(n))
		rest = rest[logFrameOverhead+int(n):]
	}
	if good < int64(len(raw)) {
		s.log.Warn("store: truncating torn result-log tail",
			"file", path, "good_bytes", good, "total_bytes", len(raw), "frames", len(frames))
		if err := os.Truncate(path, good); err != nil {
			return nil, 0, fmt.Errorf("store: truncating result log %q: %w", id, err)
		}
	}
	return frames, good, nil
}

// DeleteJob removes the job's record and result log (idempotent).
func (s *JobStore) DeleteJob(id string) error {
	if err := validJobID(id); err != nil {
		return err
	}
	var firstErr error
	for _, p := range []string{s.recordPath(id), s.logPath(id)} {
		if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) && firstErr == nil {
			firstErr = fmt.Errorf("store: deleting job %q: %w", id, err)
		}
	}
	return firstErr
}

// RecoveredJob is one persisted job rehydrated at boot: its record plus
// every frame that survived in its result log.
type RecoveredJob struct {
	Record JobRecord
	Frames [][]byte
	// LogBytes is the result log's on-disk size after tail truncation.
	LogBytes int64
}

// LoadAll rehydrates every persisted job in sorted id order. Corrupt
// records are quarantined, unreadable ones skipped with a log line;
// neither aborts the load — the error return covers only directory-level
// I/O failure. An orphaned result log (no record) is left in place: its
// record may reappear, and DeleteJob clears both.
func (s *JobStore) LoadAll() ([]RecoveredJob, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if id, ok := strings.CutSuffix(e.Name(), jobExt); ok && !e.IsDir() {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	out := make([]RecoveredJob, 0, len(ids))
	for _, id := range ids {
		path := s.recordPath(id)
		if err := faultinject.Hit(faultinject.JobResumeLoad); err != nil {
			s.log.Error("store: skipping unreadable job record", "file", path, "err", err)
			continue
		}
		rec, err := s.loadRecord(path)
		if err != nil {
			if errors.Is(err, ErrJobCorrupt) {
				s.quarantine(path, err)
			} else {
				s.log.Error("store: skipping unreadable job record", "file", path, "err", err)
			}
			continue
		}
		if rec.ID != id {
			// A record renamed to another job's name would resume the wrong
			// sweep; treat the mismatch as corruption.
			s.quarantine(path, fmt.Errorf("%w: record id %q under file %q", ErrJobCorrupt, rec.ID, id))
			continue
		}
		frames, size, err := s.readResultLog(id)
		if err != nil {
			s.log.Error("store: skipping job with unreadable result log", "id", id, "err", err)
			continue
		}
		out = append(out, RecoveredJob{Record: rec, Frames: frames, LogBytes: size})
	}
	return out, nil
}

// quarantine moves a corrupt job file aside (shared spelling with the
// dataset store's quarantine, counted separately).
func (s *JobStore) quarantine(path string, cause error) {
	s.quarantined.Add(1)
	qpath := path + corruptExt
	if err := os.Rename(path, qpath); err != nil {
		s.log.Error("store: quarantining corrupt job file failed",
			"file", path, "cause", cause, "err", err)
		return
	}
	s.log.Error("store: quarantined corrupt job file",
		"file", path, "quarantined_as", qpath, "err", cause)
}

// ResultLogSize reports the job's current result-log size in bytes (0 if
// absent), for eviction accounting.
func (s *JobStore) ResultLogSize(id string) int64 {
	st, err := os.Stat(s.logPath(id))
	if err != nil {
		return 0
	}
	return st.Size()
}
