// Package testkit provides small builders and generators shared by the test
// suites: literal instances, random instances with controlled violation
// structure, and brute-force reference implementations (minimum vertex
// cover, exhaustive goal-state search) that the fast implementations are
// checked against.
package testkit

import (
	"runtime"
	"time"

	"fmt"
	"math/rand"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
)

// Build constructs an instance from a header and rows of constants,
// panicking on malformed input (tests only).
func Build(header []string, rows [][]string) *relation.Instance {
	s := relation.MustSchema(header...)
	in := relation.NewInstance(s)
	for _, r := range rows {
		if err := in.AppendConsts(r...); err != nil {
			panic(err)
		}
	}
	return in
}

// Paper4x4 returns the running example of Figures 2-3 and 6 of the paper:
// a 4-attribute, 4-tuple instance with Σ = {A→B, C→D}.
func Paper4x4() (*relation.Instance, fd.Set) {
	in := Build([]string{"A", "B", "C", "D"}, [][]string{
		{"1", "1", "1", "1"},
		{"1", "2", "1", "3"},
		{"2", "2", "1", "1"},
		{"2", "3", "4", "3"},
	})
	return in, fd.MustParseSet(in.Schema, "A->B; C->D")
}

// RandomInstance generates a small random instance: n tuples over width
// attributes with per-attribute domain sizes dom (small domains make FD
// violations likely). Deterministic for a fixed rng.
func RandomInstance(rng *rand.Rand, n, width, dom int) *relation.Instance {
	names := make([]string, width)
	for i := range names {
		names[i] = fmt.Sprintf("A%d", i)
	}
	in := relation.NewInstance(relation.MustSchema(names...))
	for t := 0; t < n; t++ {
		row := make([]string, width)
		for a := range row {
			row[a] = fmt.Sprintf("v%d", rng.Intn(dom))
		}
		if err := in.AppendConsts(row...); err != nil {
			panic(err)
		}
	}
	return in
}

// RandomFDs draws k random non-trivial FDs over the schema width, each with
// 1..maxLHS LHS attributes.
func RandomFDs(rng *rand.Rand, width, k, maxLHS int) fd.Set {
	set := make(fd.Set, 0, k)
	for len(set) < k {
		rhs := rng.Intn(width)
		var lhs relation.AttrSet
		for lhs.IsEmpty() {
			for a := 0; a < width; a++ {
				if a != rhs && rng.Intn(width) < maxLHS {
					lhs = lhs.Add(a)
				}
			}
			if lhs.Len() > maxLHS {
				attrs := lhs.Attrs()
				rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
				lhs = relation.NewAttrSet(attrs[:maxLHS]...)
			}
		}
		set = append(set, fd.MustNew(lhs, rhs))
	}
	return set
}

// Edges enumerates every conflict-graph edge of (in, sigma) pairwise — the
// O(n²) reference definition. Pairs violating several FDs appear once.
func Edges(in *relation.Instance, sigma fd.Set) [][2]int {
	var out [][2]int
	for i := 0; i < in.N(); i++ {
		for j := i + 1; j < in.N(); j++ {
			for _, f := range sigma {
				if f.Violates(in.Tuples[i], in.Tuples[j]) {
					out = append(out, [2]int{i, j})
					break
				}
			}
		}
	}
	return out
}

// MinVertexCover computes an exact minimum vertex cover size of the given
// edge list by exhaustive search over the involved vertices (tests only;
// exponential).
func MinVertexCover(edges [][2]int) int {
	verts := map[int]int{}
	var order []int
	for _, e := range edges {
		for _, v := range e {
			if _, ok := verts[v]; !ok {
				verts[v] = len(order)
				order = append(order, v)
			}
		}
	}
	k := len(order)
	if k > 22 {
		panic("testkit: too many vertices for brute-force vertex cover")
	}
	best := k
	for mask := 0; mask < 1<<k; mask++ {
		covered := true
		for _, e := range edges {
			if mask&(1<<verts[e[0]]) == 0 && mask&(1<<verts[e[1]]) == 0 {
				covered = false
				break
			}
		}
		if covered {
			if c := popcount(mask); c < best {
				best = c
			}
		}
	}
	return best
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// IsVertexCover reports whether cover (tuple indices) covers every edge.
func IsVertexCover(edges [][2]int, cover []int32) bool {
	in := make(map[int]bool, len(cover))
	for _, v := range cover {
		in[int(v)] = true
	}
	for _, e := range edges {
		if !in[e[0]] && !in[e[1]] {
			return false
		}
	}
	return true
}

// WaitGoroutineBaseline polls until the goroutine count returns to the
// recorded baseline, failing t after two seconds. Cancellation tests use
// it to prove worker pools drain: workers unwind asynchronously after
// their task channel closes, so a single instantaneous read races.
func WaitGoroutineBaseline(t TB, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TB is the subset of testing.TB the helpers need (avoids importing
// testing into non-test code).
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}
