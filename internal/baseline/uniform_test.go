package baseline

import (
	"math/rand"
	"testing"

	"relatrust/internal/fd"
	"relatrust/internal/testkit"
	"relatrust/internal/weights"
)

func TestRepairProducesConsistentOutput(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	res, err := Repair(in, sigma, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sigma.SatisfiedBy(res.Data.Instance) {
		t.Fatal("baseline output violates its own Σ'")
	}
	if !res.Sigma.IsRelaxationOf(sigma) {
		t.Fatal("baseline Σ' is not a relaxation of Σ")
	}
	if res.Cost != res.FDCost+res.CellCost {
		t.Error("cost breakdown inconsistent")
	}
}

func TestCostRatioControlsImplicitTrust(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	// Cheap cells, expensive FDs: repair data only.
	dataSide, err := Repair(in, sigma, Config{CellCost: 0.01, FDCost: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !dataSide.Sigma.Equal(sigma) {
		t.Errorf("cheap-cell config modified the FDs: %v", dataSide.Sigma)
	}
	// Expensive cells, cheap FDs: prefer FD modifications.
	fdSide, err := Repair(in, sigma, Config{CellCost: 100, FDCost: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ext := 0
	for _, y := range fdSide.Ext {
		ext += y.Len()
	}
	if ext == 0 {
		t.Error("cheap-FD config never modified the FDs")
	}
	if fdSide.Data.NumChanges() > dataSide.Data.NumChanges() {
		t.Error("trusting data more should not increase cell changes")
	}
}

func TestRepairOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		in := testkit.RandomInstance(rng, 10, 5, 2)
		sigma := testkit.RandomFDs(rng, 5, 2, 2)
		res, err := Repair(in, sigma, Config{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Sigma.SatisfiedBy(res.Data.Instance) {
			t.Fatalf("trial %d: output inconsistent", trial)
		}
	}
}

func TestRepairRejectsEmptySigma(t *testing.T) {
	in, _ := testkit.Paper4x4()
	if _, err := Repair(in, fd.Set{}, Config{}); err == nil {
		t.Error("empty Σ must be rejected")
	}
}

func TestSweepAndBest(t *testing.T) {
	in, sigma := testkit.Paper4x4()
	cfgs := SweepConfigs(weights.AttrCount{}, 1)
	if len(cfgs) < 3 {
		t.Fatal("sweep too small")
	}
	res, err := Best(in, sigma, cfgs, func(r *Result) float64 {
		return -float64(r.Data.NumChanges()) // prefer fewest cell changes
	})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("Best returned nothing")
	}
	// The pure-data end of the sweep changes 2 cells on this instance; an
	// FD-trusting ratio must do strictly better. The greedy can stop in a
	// local minimum (1 change here — it cannot see that two additions to
	// C→D clear everything), which is exactly the limitation the paper's
	// comparison highlights, so 0 is not required.
	dataOnly, err := Repair(in, sigma, Config{CellCost: 0.01, FDCost: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Data.NumChanges() >= dataOnly.Data.NumChanges() {
		t.Errorf("best of sweep changes %d cells, pure-data changes %d",
			res.Data.NumChanges(), dataOnly.Data.NumChanges())
	}
}
