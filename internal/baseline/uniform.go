// Package baseline re-implements the comparison system of the paper's
// Section 8.2: a unified-cost data-and-constraint repair in the style of
// Chiang & Miller (ICDE 2011, reference [5]). The original system is not
// available, so this is a faithful functional substitute along the two
// axes the paper's comparison exercises:
//
//   - one repair at one *implicit* trust level: a single cost model
//     aggregates cell changes and FD modifications, and the algorithm
//     returns the (heuristically) minimum-cost repair — there is no τ;
//   - a constrained FD-modification space: only single-attribute LHS
//     additions are considered, applied greedily while they reduce the
//     unified cost.
package baseline

import (
	"fmt"
	"math"

	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/repair"
	"relatrust/internal/session"
	"relatrust/internal/weights"
)

// Config sets the unified cost model: total cost = CellCost · (cells to
// change) + FDCost · Σ w(appended attribute). The ratio CellCost/FDCost is
// the implicit trust level; the paper's experiments sweep it and report
// the best achievable quality.
type Config struct {
	// CellCost prices one cell modification. Default 1.
	CellCost float64
	// FDCost scales the weighting of appended attributes. Default 1.
	FDCost float64
	// Weights prices appended attributes; nil means weights.AttrCount.
	Weights weights.Func
	// Seed drives the randomized data-repair order.
	Seed int64
	// MaxRounds bounds the greedy loop (0 = |Σ|·|R|, enough to add every
	// attribute everywhere).
	MaxRounds int
	// Engine, when non-nil, supplies the shared repair-session engine
	// (bound to the repaired instance) the conflict analysis is acquired
	// from — Best and the experiment sweeps set it so every cost-ratio run
	// forks the same warm cluster arenas. Nil builds a private engine.
	Engine *session.Engine
}

func (c Config) withDefaults() Config {
	if c.CellCost == 0 {
		c.CellCost = 1
	}
	if c.FDCost == 0 {
		c.FDCost = 1
	}
	if c.Weights == nil {
		c.Weights = weights.AttrCount{}
	}
	return c
}

// Result is the single repair the unified-cost model selects.
type Result struct {
	Sigma    fd.Set
	Ext      []relation.AttrSet // appended attributes per FD
	Data     *repair.DataRepair
	Cost     float64 // unified cost of the selected repair
	FDCost   float64 // the FD component of Cost
	CellCost float64 // the data component of Cost
}

// Repair greedily minimizes the unified cost: starting from Σ unchanged,
// it repeatedly applies the single-attribute LHS addition with the best
// cost reduction (FD penalty paid, cell-change estimate δP reduced), stops
// at a local minimum, and materializes the data repair for the remaining
// violations.
func Repair(in *relation.Instance, sigma fd.Set, cfg Config) (*Result, error) {
	if len(sigma) == 0 {
		return nil, fmt.Errorf("baseline: empty FD set")
	}
	cfg = cfg.withDefaults()
	eng, err := session.For(cfg.Engine, in)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	an := eng.Acquire(sigma)
	defer eng.Release(an)
	width := in.Schema.Width()
	alpha := width - 1
	if len(sigma) < alpha {
		alpha = len(sigma)
	}

	ext := make([]relation.AttrSet, len(sigma))
	fdPenalty := 0.0
	unified := func(extCost float64) float64 {
		return cfg.CellCost*float64(alpha*an.CoverSize(ext)) + cfg.FDCost*extCost
	}
	cur := unified(fdPenalty)

	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = len(sigma) * width
	}
	for round := 0; round < maxRounds; round++ {
		bestCost := cur
		bestFD, bestAttr := -1, -1
		bestPenalty := fdPenalty
		for i, f := range sigma {
			blocked := f.LHS.Union(ext[i]).Add(f.RHS)
			for a := 0; a < width; a++ {
				if blocked.Contains(a) {
					continue
				}
				ext[i] = ext[i].Add(a)
				// The paper's unified models price each addition
				// individually; the marginal weight of the single
				// attribute is the increment.
				penalty := fdPenalty + cfg.Weights.Weight(relation.NewAttrSet(a))
				c := unified(penalty)
				ext[i] = ext[i].Remove(a)
				if c < bestCost-1e-12 {
					bestCost, bestFD, bestAttr, bestPenalty = c, i, a, penalty
				}
			}
		}
		if bestFD < 0 {
			break // local minimum
		}
		ext[bestFD] = ext[bestFD].Add(bestAttr)
		fdPenalty = bestPenalty
		cur = bestCost
	}

	sigmaR := make(fd.Set, len(sigma))
	for i, f := range sigma {
		g, err := f.Extend(ext[i])
		if err != nil {
			return nil, err
		}
		sigmaR[i] = g
	}
	cover := an.Cover(ext)
	data, err := repair.RepairData(in, sigmaR, cover, cfg.Seed, eng)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Sigma:    sigmaR,
		Ext:      ext,
		Data:     data,
		FDCost:   cfg.FDCost * fdPenalty,
		CellCost: cfg.CellCost * float64(data.NumChanges()),
	}
	res.Cost = res.FDCost + res.CellCost
	return res, nil
}

// SweepConfigs returns the cost-ratio grid the experiments test, mirroring
// the paper's "we tested multiple parameter settings": cell/FD cost ratios
// spanning several orders of magnitude.
func SweepConfigs(w weights.Func, seed int64) []Config {
	ratios := []float64{0.01, 0.1, 0.5, 1, 2, 10, 100}
	out := make([]Config, 0, len(ratios))
	for _, r := range ratios {
		out = append(out, Config{CellCost: r, FDCost: 1, Weights: w, Seed: seed})
	}
	return out
}

// Best runs every config and returns the result scored best by the given
// function (higher is better), mirroring how the paper reports the
// baseline's best achievable quality. Configs without an engine share one
// engine across the sweep, so the conflict clusters are built once.
func Best(in *relation.Instance, sigma fd.Set, cfgs []Config, score func(*Result) float64) (*Result, error) {
	eng := session.New(in)
	var best *Result
	bestScore := math.Inf(-1)
	for _, cfg := range cfgs {
		if cfg.Engine == nil {
			cfg.Engine = eng
		}
		r, err := Repair(in, sigma, cfg)
		if err != nil {
			return nil, err
		}
		if s := score(r); s > bestScore {
			best, bestScore = r, s
		}
	}
	return best, nil
}
