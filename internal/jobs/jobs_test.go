package jobs

// Manager tests over fake sweeps: lifecycle, coalescing, checkpoint
// restart, shutdown/recover resume, dataset cascade, and eviction. The
// real sweep (A* over a dataset) lives behind the server; here a Sweep is
// just a function emitting canned frames, which is exactly the coupling
// the package boundary promises.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
	"testing"
	"time"

	"relatrust/internal/store"
)

func testManager(t *testing.T, opt Options) *Manager {
	t.Helper()
	if opt.Logger == nil {
		opt.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opt.Now == nil {
		opt.Now = func() int64 { return 1700000000 }
	}
	return New(opt)
}

func testStore(t *testing.T) *store.JobStore {
	t.Helper()
	s, err := store.OpenJobs(t.TempDir(), store.Options{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testSpec(dataset string) Spec {
	return Spec{Dataset: dataset, FDs: "A->B", TauLow: 0, TauHigh: -1, Weights: "unit", Seed: 7}
}

// TestSpecIDStability pins the content address across upgrades. The
// legacy digest (Kind == "") is frozen: a daemon upgraded across the Kind
// field addition must derive the same id for a persisted sweep record, or
// boot resume would orphan every job. The literal below pins that digest
// — a failure here means the wire-stable hash drifted.
func TestSpecIDStability(t *testing.T) {
	legacy := Spec{Dataset: "paper", FDs: "A->B; C->D", TauLow: 0, TauHigh: -1,
		Weights: "distinct-count", Seed: 9, IncludeChanges: true, Generation: 3}
	if got := legacy.ID(); got != "j4de424163deefe52" {
		t.Errorf("legacy spec id = %s, want j4de424163deefe52", got)
	}

	// Discovery knobs are outside the legacy address: a sweep spec with
	// stray knob values still derives the legacy id.
	stray := legacy
	stray.MaxLHS, stray.MaxError, stray.MaxResults, stray.Attrs = 4, 0.5, 10, "A,B"
	if got := stray.ID(); got != legacy.ID() {
		t.Errorf("sweep spec id depends on discovery knobs: %s vs %s", got, legacy.ID())
	}

	// A non-empty Kind extends the address, and every discovery knob
	// participates in it.
	disc := Spec{Dataset: "paper", Generation: 3, Kind: "discover", MaxLHS: 3}
	if disc.ID() == legacy.ID() {
		t.Error("discover spec collides with the legacy sweep spec")
	}
	seen := map[string]string{disc.ID(): "base"}
	for name, vary := range map[string]Spec{
		"max_lhs":     {Dataset: "paper", Generation: 3, Kind: "discover", MaxLHS: 4},
		"max_error":   {Dataset: "paper", Generation: 3, Kind: "discover", MaxLHS: 3, MaxError: 0.1},
		"max_results": {Dataset: "paper", Generation: 3, Kind: "discover", MaxLHS: 3, MaxResults: 5},
		"attrs":       {Dataset: "paper", Generation: 3, Kind: "discover", MaxLHS: 3, Attrs: "A,B"},
		"generation":  {Dataset: "paper", Generation: 4, Kind: "discover", MaxLHS: 3},
	} {
		id := vary.ID()
		if prev, dup := seen[id]; dup {
			t.Errorf("spec variant %q collides with %q", name, prev)
		}
		seen[id] = name
	}
}

// starter wraps a sweep body in a StartFunc and counts admissions and
// releases, so tests can assert coalescing never double-admits.
type starter struct {
	admitted atomic.Int64
	released atomic.Int64
}

func (s *starter) start(sw Sweep) StartFunc {
	return func(*Job) (Sweep, func(), error) {
		s.admitted.Add(1)
		return sw, func() { s.released.Add(1) }, nil
	}
}

// emitN returns a sweep that emits frames tagged level start..start+n-1
// and returns err.
func emitN(start, n int, err error) Sweep {
	return func(_ context.Context, emit func([]byte) error) error {
		for i := 0; i < n; i++ {
			if e := emit(fmt.Appendf(nil, `{"level":%d}`, start+i)); e != nil {
				return e
			}
		}
		return err
	}
}

// waitTerminal blocks until the job leaves StateRunning (or, when
// interrupted, sets the flag), using the follower protocol.
func waitTerminal(t *testing.T, j *Job) Status {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		_, st, change := j.Next(0)
		if st.State != StateRunning || st.Interrupted {
			return st
		}
		select {
		case <-change:
		case <-deadline:
			t.Fatalf("job %s still running", j.ID)
		}
	}
}

func TestSpecIDStableAndDistinct(t *testing.T) {
	a, b := testSpec("d"), testSpec("d")
	if a.ID() != b.ID() {
		t.Fatalf("identical specs got distinct ids %s and %s", a.ID(), b.ID())
	}
	variants := []Spec{testSpec("other"), a, a, a, a, a, a}
	variants[1].FDs = "A->C"
	variants[2].TauLow = 1
	variants[3].Weights = "distinct-count"
	variants[4].Seed = 8
	variants[5].IncludeChanges = true
	// A mutation bumps the generation: the same spec must address a new
	// job, never coalesce onto the pre-mutation frontier.
	variants[6].Generation = 1
	seen := map[string]int{a.ID(): -1}
	for i, v := range variants {
		id := v.ID()
		if prev, dup := seen[id]; dup {
			t.Errorf("variant %d collides with %d: %s", i, prev, id)
		}
		seen[id] = i
	}
}

func TestSubmitCompleteAndFollow(t *testing.T) {
	m := testManager(t, Options{})
	var adm starter
	j, started, err := m.Submit(testSpec("d"), adm.start(emitN(1, 3, nil)))
	if err != nil || !started {
		t.Fatalf("Submit = started=%v err=%v", started, err)
	}
	st := waitTerminal(t, j)
	if st.State != StateCompleted || st.Rows != 3 {
		t.Fatalf("terminal status %+v, want completed with 3 rows", st)
	}
	frames, _, _ := j.Next(1)
	if len(frames) != 2 || string(frames[0]) != `{"level":2}` {
		t.Fatalf("Next(1) = %q", frames)
	}
	if adm.admitted.Load() != 1 || adm.released.Load() != 1 {
		t.Errorf("admitted=%d released=%d, want 1/1", adm.admitted.Load(), adm.released.Load())
	}
	stats := m.Stats()
	if stats.Completed != 1 || stats.Active != 0 || stats.Coalesced != 0 {
		t.Errorf("stats %+v", stats)
	}
}

func TestCoalesceRunningAndCompleted(t *testing.T) {
	m := testManager(t, Options{})
	var adm starter
	gate := make(chan struct{})
	blocking := func(ctx context.Context, emit func([]byte) error) error {
		if err := emit([]byte(`{"level":1}`)); err != nil {
			return err
		}
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return context.Cause(ctx)
		}
	}
	j1, started, err := m.Submit(testSpec("d"), adm.start(blocking))
	if err != nil || !started {
		t.Fatalf("first Submit = started=%v err=%v", started, err)
	}
	// While running: coalesce, no second admission.
	j2, started, err := m.Submit(testSpec("d"), adm.start(emitN(0, 0, nil)))
	if err != nil || started || j2 != j1 {
		t.Fatalf("running coalesce = job=%p started=%v err=%v, want %p/false/nil", j2, started, err, j1)
	}
	close(gate)
	waitTerminal(t, j1)
	// Completed: still coalesces, frontier served from the log.
	j3, started, err := m.Submit(testSpec("d"), adm.start(emitN(0, 0, nil)))
	if err != nil || started || j3 != j1 {
		t.Fatalf("completed coalesce = job=%p started=%v err=%v, want %p/false/nil", j3, started, err, j1)
	}
	if got := adm.admitted.Load(); got != 1 {
		t.Errorf("admitted %d times, want 1", got)
	}
	if got := m.Stats().Coalesced; got != 2 {
		t.Errorf("coalesced = %d, want 2", got)
	}
}

func TestCancelRunningThenRemoveTerminal(t *testing.T) {
	m := testManager(t, Options{})
	var adm starter
	running := make(chan struct{})
	j, _, err := m.Submit(testSpec("d"), adm.start(func(ctx context.Context, emit func([]byte) error) error {
		close(running)
		<-ctx.Done()
		return context.Cause(ctx)
	}))
	if err != nil {
		t.Fatal(err)
	}
	<-running
	found, removed := m.Cancel(j.ID)
	if !found || removed {
		t.Fatalf("Cancel(running) = %v,%v, want true,false", found, removed)
	}
	st := waitTerminal(t, j)
	if st.State != StateCancelled || st.ErrorCode != "cancelled" {
		t.Fatalf("after cancel: %+v", st)
	}
	if adm.released.Load() != 1 {
		t.Errorf("slot not released after cancel")
	}
	found, removed = m.Cancel(j.ID)
	if !found || !removed {
		t.Fatalf("Cancel(terminal) = %v,%v, want true,true", found, removed)
	}
	if m.Get(j.ID) != nil {
		t.Error("job still listed after terminal cancel")
	}
	if found, _ := m.Cancel(j.ID); found {
		t.Error("Cancel of unknown id reported found")
	}
}

func TestResubmitFailedResumesFromCheckpoint(t *testing.T) {
	m := testManager(t, Options{})
	var adm starter
	j, _, err := m.Submit(testSpec("d"), adm.start(emitN(1, 2, errors.New("boom"))))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateFailed || st.ErrorCode != "internal" || st.Rows != 2 {
		t.Fatalf("after failure: %+v", st)
	}
	// The restart sweep sees the two checkpointed rows and continues; a
	// restart that re-emitted from scratch would duplicate them.
	resume := func(ctx context.Context, emit func([]byte) error) error {
		if got := j.Rows(); got != 2 {
			return fmt.Errorf("resume saw %d checkpointed rows, want 2", got)
		}
		return emitN(3, 2, nil)(ctx, emit)
	}
	j2, started, err := m.Submit(testSpec("d"), adm.start(resume))
	if err != nil || !started || j2 != j {
		t.Fatalf("resubmit = job=%p started=%v err=%v", j2, started, err)
	}
	st = waitTerminal(t, j)
	if st.State != StateCompleted || st.Rows != 4 || st.ErrorCode != "" {
		t.Fatalf("after resume: %+v", st)
	}
	if got := m.Stats().Resumed; got != 1 {
		t.Errorf("resumed = %d, want 1", got)
	}
}

func TestErrorCodeClassifier(t *testing.T) {
	m := testManager(t, Options{ErrorCode: func(err error) string { return "classified" }})
	var adm starter
	j, _, err := m.Submit(testSpec("d"), adm.start(emitN(0, 0, errors.New("boom"))))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st.ErrorCode != "classified" {
		t.Fatalf("error code %q, want the classifier's", st.ErrorCode)
	}
}

func TestSweepPanicFailsJobOnly(t *testing.T) {
	m := testManager(t, Options{})
	var adm starter
	j, _, err := m.Submit(testSpec("d"), adm.start(func(context.Context, func([]byte) error) error {
		panic("sweep exploded")
	}))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateFailed {
		t.Fatalf("after panic: %+v", st)
	}
	if adm.released.Load() != 1 {
		t.Error("slot leaked by panicking sweep")
	}
}

func TestShutdownInterruptsAndRecoverResumes(t *testing.T) {
	dir := testStore(t)
	m := testManager(t, Options{Store: dir})
	var adm starter
	emitted := make(chan struct{})
	j, _, err := m.Submit(testSpec("d"), adm.start(func(ctx context.Context, emit func([]byte) error) error {
		if err := emit([]byte(`{"level":1}`)); err != nil {
			return err
		}
		if err := emit([]byte(`{"level":2}`)); err != nil {
			return err
		}
		close(emitted)
		<-ctx.Done()
		return context.Cause(ctx)
	}))
	if err != nil {
		t.Fatal(err)
	}
	<-emitted
	m.Shutdown()
	st := waitTerminal(t, j)
	if !st.Interrupted || st.State != StateRunning {
		t.Fatalf("after shutdown: %+v, want interrupted+running", st)
	}
	if adm.released.Load() != 1 {
		t.Fatal("slot not released by interrupted sweep")
	}

	// "Reboot": a fresh manager over the same store resumes the sweep from
	// the checkpointed rows.
	m2 := testManager(t, Options{Store: dir})
	var adm2 starter
	resumed := make(chan *Job, 1)
	n, err := m2.Recover(func(rj *Job) (Sweep, func(), error) {
		resumed <- rj
		adm2.admitted.Add(1)
		sw := func(ctx context.Context, emit func([]byte) error) error {
			if got := rj.Rows(); got != 2 {
				return fmt.Errorf("resume saw %d rows, want 2", got)
			}
			return emit([]byte(`{"level":3}`))
		}
		return sw, func() { adm2.released.Add(1) }, nil
	})
	if err != nil || n != 1 {
		t.Fatalf("Recover = %d, %v, want 1 resumed", n, err)
	}
	var rj *Job
	select {
	case rj = <-resumed:
	case <-time.After(5 * time.Second):
		t.Fatal("recovery never started the sweep")
	}
	if rj.ID != j.ID {
		t.Fatalf("recovered id %s, want %s", rj.ID, j.ID)
	}
	st = waitTerminal(t, rj)
	if st.State != StateCompleted || st.Rows != 3 {
		t.Fatalf("after recovery: %+v, want completed with 3 rows", st)
	}
	frames := rj.Frames()
	for i, want := range []string{`{"level":1}`, `{"level":2}`, `{"level":3}`} {
		if string(frames[i]) != want {
			t.Errorf("frame %d = %q, want %q (replay and live bytes must agree)", i, frames[i], want)
		}
	}
	if got := m2.Stats().Resumed; got != 1 {
		t.Errorf("resumed = %d, want 1", got)
	}

	// A third boot finds the completed record and resumes nothing.
	m3 := testManager(t, Options{Store: dir})
	n, err = m3.Recover(func(*Job) (Sweep, func(), error) {
		t.Error("completed job restarted at boot")
		return nil, nil, errors.New("unreachable")
	})
	if err != nil || n != 0 {
		t.Fatalf("third Recover = %d, %v, want 0 resumed", n, err)
	}
	j3 := m3.Get(j.ID)
	if j3 == nil {
		t.Fatal("completed job not rehydrated")
	}
	if st := j3.Status(); st.State != StateCompleted || st.Rows != 3 {
		t.Fatalf("rehydrated terminal job: %+v", st)
	}
}

func TestRecoverDatasetGone(t *testing.T) {
	dir := testStore(t)
	m := testManager(t, Options{Store: dir})
	rec := store.JobRecord{
		ID: testSpec("ghost").ID(), Dataset: "ghost", FDs: "A->B",
		TauHigh: -1, Weights: "unit", Seed: 7, State: "running",
	}
	if err := dir.SaveRecord(rec); err != nil {
		t.Fatal(err)
	}
	n, err := m.Recover(func(*Job) (Sweep, func(), error) {
		return nil, nil, fmt.Errorf("%w: dataset %q is not registered", ErrDatasetDeleted, "ghost")
	})
	if err != nil || n != 1 {
		t.Fatalf("Recover = %d, %v", n, err)
	}
	// The job cancels and its durable trace drops (async: start runs on a
	// goroutine).
	deadline := time.After(5 * time.Second)
	for m.Get(rec.ID) != nil {
		select {
		case <-deadline:
			t.Fatalf("dataset-gone job still present: %+v", m.Get(rec.ID).Status())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if got, err := dir.LoadAll(); err != nil || len(got) != 0 {
		t.Fatalf("durable trace survived dataset-gone recovery: %d jobs, %v", len(got), err)
	}
}

func TestCancelDatasetCascade(t *testing.T) {
	dir := testStore(t)
	m := testManager(t, Options{Store: dir})
	var adm starter
	// A completed job and a running job on "a", a completed job on "b".
	ja, _, err := m.Submit(testSpec("a"), adm.start(emitN(1, 1, nil)))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, ja)
	jb, _, err := m.Submit(testSpec("b"), adm.start(emitN(1, 1, nil)))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, jb)
	running := make(chan struct{})
	spec2 := testSpec("a")
	spec2.Seed = 99
	jrun, _, err := m.Submit(spec2, adm.start(func(ctx context.Context, emit func([]byte) error) error {
		close(running)
		<-ctx.Done()
		return context.Cause(ctx)
	}))
	if err != nil {
		t.Fatal(err)
	}
	<-running

	m.CancelDataset("a")
	st := waitTerminal(t, jrun)
	if st.State != StateCancelled || st.ErrorCode != "dataset_deleted" {
		t.Fatalf("running job after dataset delete: %+v", st)
	}
	deadline := time.After(5 * time.Second)
	for m.Get(jrun.ID) != nil || m.Get(ja.ID) != nil {
		select {
		case <-deadline:
			t.Fatal("dataset-a jobs still listed")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if m.Get(jb.ID) == nil {
		t.Fatal("dataset-b job was collateral damage")
	}
	recovered, err := dir.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].Record.ID != jb.ID {
		t.Fatalf("durable store after cascade holds %d jobs, want only %s", len(recovered), jb.ID)
	}
}

func TestEvictionOldestTerminalFirst(t *testing.T) {
	dir := testStore(t)
	// Each completed job's log is 27 bytes (8 magic + 8 framing + 11
	// payload); a 60-byte cap holds two logs but not three.
	m := testManager(t, Options{Store: dir, MaxResultBytes: 60})
	var adm starter
	specs := []Spec{testSpec("a"), testSpec("b"), testSpec("c")}
	jobsByID := make([]*Job, len(specs))
	for i, sp := range specs {
		j, _, err := m.Submit(sp, adm.start(emitN(1, 1, nil)))
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
		jobsByID[i] = j
	}
	if m.Get(jobsByID[0].ID) != nil {
		t.Error("oldest terminal job not evicted")
	}
	if m.Get(jobsByID[2].ID) == nil {
		t.Error("newest terminal job evicted")
	}
	if got := m.Stats().ResultsEvictedBytes; got <= 0 {
		t.Errorf("results_evicted_bytes = %d, want > 0", got)
	}
	// The evicted job's durable trace is gone too.
	recovered, err := dir.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recovered {
		if r.Record.ID == jobsByID[0].ID {
			t.Error("evicted job still on disk")
		}
	}
	// A running job is never evicted, no matter how much it logs.
	running := make(chan struct{})
	release := make(chan struct{})
	spec := testSpec("big")
	jr, _, err := m.Submit(spec, adm.start(func(ctx context.Context, emit func([]byte) error) error {
		for i := 0; i < 20; i++ {
			if err := emit(fmt.Appendf(nil, `{"level":%d,"pad":"xxxxxxxxxxxxxxxx"}`, i+1)); err != nil {
				return err
			}
		}
		close(running)
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return context.Cause(ctx)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	<-running
	if m.Get(jr.ID) == nil {
		t.Fatal("running job evicted")
	}
	close(release)
	waitTerminal(t, jr)
}
