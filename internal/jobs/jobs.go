// Package jobs runs τ-sweeps as durable, resumable, content-addressed
// jobs, detached from any client connection.
//
// # Model
//
// A job is one frontier sweep identified by its spec — (dataset, FD set,
// τ-range, weighting, seed, include_changes). The id is a hash of the
// spec, so identical submissions coalesce onto the running (or finished)
// job instead of admitting a second sweep, and a restarted daemon derives
// the same id for the same work. The manager owns every job's lifecycle:
//
//	running ──→ completed            (sweep finished the range)
//	        ──→ failed               (sweep error or recovered panic)
//	        ──→ cancelled            (DELETE, or the dataset was deleted)
//
// A daemon shutdown is none of these: the sweep is interrupted, the
// durable record keeps saying "running", and the next boot resumes it.
//
// # Checkpoint/replay invariants
//
// The search layer emits a frontier row only once no equal-cost goal can
// supersede it (the result sink holds the most recent goal back until a
// goal of strictly different cost arrives), so every row the sweep yields
// is final. The manager exploits that:
//
//  1. Each emitted row is appended to the job's durable result log
//     (crc-framed, fsynced) BEFORE it becomes visible to streaming
//     followers. A row a client saw is a row that survives a crash.
//  2. Rows are strictly append-only and never rewritten, so a follower at
//     offset k and a replay from the log agree byte-for-byte.
//  3. Resuming re-runs the sweep over [tauLow, lastRow.DeltaP-1]: the
//     uninterrupted sweep would have continued with exactly that budget
//     after emitting lastRow, so the concatenation of replayed rows and
//     the resumed sweep's rows is identical to an uninterrupted run
//     (Repairer.FrontierRange pins this contract). A last row with
//     DeltaP-1 below tauLow means the frontier was already complete.
//
// The manager never parses row bytes itself — the sweep callback supplied
// by the server owns the wire format, including deriving the resume bound
// from the last replayed row.
package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"relatrust/internal/store"
)

// State is a job's lifecycle state.
type State string

const (
	StateRunning   State = "running"
	StateCompleted State = "completed"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Cancellation causes. The manager cancels a job's context with one of
// these; the facade surfaces context.Cause, so the sweep's terminal error
// matches them with errors.Is and finish classifies accordingly.
var (
	// ErrCancelled is the cause of an explicit DELETE of a running job.
	ErrCancelled = errors.New("jobs: cancelled by request")
	// ErrDatasetDeleted is the cause when the job's dataset was deleted
	// out from under it; it is also the start error a recovery uses when
	// the dataset no longer exists at boot.
	ErrDatasetDeleted = errors.New("jobs: dataset deleted")
	// ErrInterrupted is the shutdown cause: the job is not terminal — its
	// durable record stays "running" and the next boot resumes it.
	ErrInterrupted = errors.New("jobs: interrupted by shutdown")
	// ErrDatasetMutated is the start error when a recovered job's
	// generation no longer matches the dataset's: its partial results
	// answer for rows that were since rewritten, so the job fails rather
	// than resume against the wrong data.
	ErrDatasetMutated = errors.New("jobs: dataset mutated since the job was recorded")
	// ErrCheckpoint wraps a result-log append failure, so the serving
	// layer can map it to its storage error code.
	ErrCheckpoint = errors.New("jobs: checkpoint append failed")
)

// Spec is a job's content address. Engine tuning knobs (workers,
// best-first, visit caps) are deliberately excluded: they do not change
// the frontier, so submissions differing only in them coalesce (first
// submission's knobs win). Seed and IncludeChanges are included because
// they change the row bytes.
type Spec struct {
	Dataset string
	// FDs is the canonical, schema-formatted FD set.
	FDs    string
	TauLow int
	// TauHigh < 0 means δP(Σ, I).
	TauHigh        int
	Weights        string
	Seed           int64
	IncludeChanges bool
	// Generation is the dataset's mutation generation at submission:
	// mutating a dataset re-addresses every job against it, so a
	// resubmitted spec runs a fresh sweep instead of replaying answers
	// computed over rows that no longer exist.
	Generation int64

	// Kind selects the job body: "" is a frontier sweep (the original job
	// kind), "discover" an FD-mining run. The discovery knobs below are
	// part of the address only when Kind is non-empty.
	Kind       string
	MaxLHS     int
	MaxError   float64
	MaxResults int
	// Attrs is the canonical comma-separated attribute-name restriction.
	Attrs string
}

// ID derives the job id from the spec: a short hex digest with a "j"
// prefix. Identical specs — including across process restarts — get
// identical ids; that is what coalescing and boot resume key on. The
// legacy sweep digest (Kind == "") is frozen: a daemon upgraded across
// this field addition must derive the same id for a persisted sweep job,
// or boot resume would orphan every record.
func (sp Spec) ID() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x1f%s\x1f%d\x1f%d\x1f%s\x1f%d\x1f%t\x1f%d",
		sp.Dataset, sp.FDs, sp.TauLow, sp.TauHigh, sp.Weights, sp.Seed, sp.IncludeChanges,
		sp.Generation)
	if sp.Kind != "" {
		fmt.Fprintf(h, "\x1f%s\x1f%d\x1f%g\x1f%d\x1f%s",
			sp.Kind, sp.MaxLHS, sp.MaxError, sp.MaxResults, sp.Attrs)
	}
	return "j" + hex.EncodeToString(h.Sum(nil))[:16]
}

// Sweep runs one job's τ-sweep: it must call emit with each finished
// frontier row's wire bytes, in order, and return the sweep's terminal
// error (nil when the range is exhausted). When the job already holds
// replayed rows the sweep must continue from them, not restart. An emit
// error must abort the sweep and be returned.
type Sweep func(ctx context.Context, emit func(frame []byte) error) error

// StartFunc admits one job's sweep: it acquires whatever slot the serving
// layer rations, and returns the sweep body plus a release invoked exactly
// once when the sweep goroutine finishes. An error (e.g. load shedding)
// aborts the submission with nothing admitted.
type StartFunc func(j *Job) (Sweep, func(), error)

// Job is one managed sweep. The embedded Spec and ID are immutable; the
// mutable state is guarded by mu and observed through Status and Next.
type Job struct {
	Spec
	ID string

	m *Manager

	mu          sync.Mutex
	state       State
	errCode     string
	errMsg      string
	interrupted bool // shutdown detached the runner; record still "running"
	frames      [][]byte
	bytes       int64 // result-log bytes (framing included) for eviction
	change      chan struct{}
	cancel      context.CancelCauseFunc
	doneSeq     int64 // terminal order; eviction drops the oldest first
	createdUnix int64
}

// Status is a consistent snapshot of a job's observable state.
type Status struct {
	ID string
	Spec
	State        State
	Rows         int
	ErrorCode    string
	ErrorMessage string
	// Interrupted reports a running job whose sweep was detached by
	// shutdown; it resumes on the next boot.
	Interrupted bool
}

// Status returns a snapshot.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID: j.ID, Spec: j.Spec, State: j.state, Rows: len(j.frames),
		ErrorCode: j.errCode, ErrorMessage: j.errMsg, Interrupted: j.interrupted,
	}
}

// Rows returns how many frontier rows the job holds.
func (j *Job) Rows() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.frames)
}

// Frames returns the rows emitted so far. The returned slice is a
// snapshot; the frame byte slices are shared and must not be mutated.
func (j *Job) Frames() [][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([][]byte(nil), j.frames...)
}

// Next is the follower protocol: it returns every frame from offset `from`
// on, the current status, and a channel that closes on the next state or
// frame change. A follower drains frames, re-checks, and when no frames
// remain and the status is terminal (or interrupted) ends its stream;
// otherwise it waits on the channel.
func (j *Job) Next(from int) ([][]byte, Status, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var frames [][]byte
	if from >= 0 && from < len(j.frames) {
		frames = append(frames, j.frames[from:]...)
	}
	st := Status{
		ID: j.ID, Spec: j.Spec, State: j.state, Rows: len(j.frames),
		ErrorCode: j.errCode, ErrorMessage: j.errMsg, Interrupted: j.interrupted,
	}
	return frames, st, j.change
}

// broadcastLocked wakes every waiter (close-and-replace; j.mu held).
func (j *Job) broadcastLocked() {
	close(j.change)
	j.change = make(chan struct{})
}

// Options tunes a Manager.
type Options struct {
	// Store, when non-nil, makes jobs durable: records and result logs
	// persist, and Recover resumes interrupted sweeps at boot. nil keeps
	// the whole tier in memory (jobs still coalesce and stream).
	Store *store.JobStore
	// MaxResultBytes bounds the bytes held by terminal jobs' result logs;
	// when exceeded the oldest terminal jobs are evicted (memory and
	// disk), never a running job and never the most recent terminal one.
	// 0 = unbounded.
	MaxResultBytes int64
	// ErrorCode classifies a failed sweep's terminal error into the wire
	// code recorded on the job. nil records "internal".
	ErrorCode func(error) string
	// Logger receives panic stacks and storage trouble. nil selects
	// slog.Default().
	Logger *slog.Logger
	// Now supplies record timestamps (unix seconds). nil selects the wall
	// clock; tests freeze it.
	Now func() int64
}

// Manager owns every job. Lock order: Manager.mu before Job.mu.
type Manager struct {
	opt Options
	log *slog.Logger

	mu        sync.Mutex
	jobs      map[string]*Job
	finishSeq int64

	resumed         atomic.Int64
	coalesced       atomic.Int64
	checkpointBytes atomic.Int64
	evictedBytes    atomic.Int64
}

// Stats is the manager's counter snapshot (exported via /statz and
// /metrics).
type Stats struct {
	Active    int
	Completed int
	Failed    int
	Cancelled int
	// Resumed counts sweeps restarted from a checkpoint — at boot, or by
	// resubmission of a failed/cancelled job.
	Resumed int64
	// Coalesced counts submissions answered by an already-known job.
	Coalesced int64
	// CheckpointBytes counts bytes appended to durable result logs.
	CheckpointBytes int64
	// ResultsEvictedBytes counts result-log bytes dropped by eviction.
	ResultsEvictedBytes int64
}

// New returns a Manager with no jobs.
func New(opt Options) *Manager {
	if opt.Logger == nil {
		opt.Logger = slog.Default()
	}
	if opt.Now == nil {
		opt.Now = func() int64 { return time.Now().Unix() }
	}
	return &Manager{opt: opt, log: opt.Logger, jobs: make(map[string]*Job)}
}

// Stats returns the counter snapshot.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Resumed:             m.resumed.Load(),
		Coalesced:           m.coalesced.Load(),
		CheckpointBytes:     m.checkpointBytes.Load(),
		ResultsEvictedBytes: m.evictedBytes.Load(),
	}
	for _, j := range m.jobs {
		j.mu.Lock()
		switch j.state {
		case StateRunning:
			st.Active++
		case StateCompleted:
			st.Completed++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
		j.mu.Unlock()
	}
	return st
}

// Get returns the job, or nil.
func (m *Manager) Get(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// List returns every job in sorted id order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Submit coalesces or starts the job for the spec. A running or completed
// job with the same id is returned as-is (started=false) — coalescing
// costs no admission slot. A failed or cancelled job is restarted from its
// checkpoints. Otherwise a new job is admitted through start; its record
// is persisted before the sweep runs, and a record that cannot be written
// aborts the submission (the slot is released) — a job that would silently
// lose durability is not admitted.
func (m *Manager) Submit(spec Spec, start StartFunc) (j *Job, started bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := spec.ID()
	if j := m.jobs[id]; j != nil {
		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		if st == StateRunning || st == StateCompleted {
			m.coalesced.Add(1)
			return j, false, nil
		}
		// Failed or cancelled: restart from whatever was checkpointed.
		sw, release, err := start(j)
		if err != nil {
			return nil, false, err
		}
		j.mu.Lock()
		j.state = StateRunning
		j.errCode, j.errMsg = "", ""
		j.interrupted = false
		j.broadcastLocked()
		j.mu.Unlock()
		m.resumed.Add(1)
		m.saveRecordBestEffort(j)
		m.run(j, sw, release)
		return j, true, nil
	}
	j = &Job{Spec: spec, ID: id, m: m, state: StateRunning,
		change: make(chan struct{}), createdUnix: m.opt.Now()}
	sw, release, err := start(j)
	if err != nil {
		return nil, false, err
	}
	if m.opt.Store != nil {
		if err := m.opt.Store.SaveRecord(m.record(j)); err != nil {
			release()
			return nil, false, err
		}
	}
	m.jobs[id] = j
	m.run(j, sw, release)
	return j, true, nil
}

// run spawns the sweep goroutine for a job already marked running.
func (m *Manager) run(j *Job, sw Sweep, release func()) {
	ctx, cancel := context.WithCancelCause(context.Background())
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	go func() {
		defer release()
		err := m.sweep(ctx, j, sw)
		if err != nil {
			// The facade reports context.Cause, but be robust to layers
			// that surface the bare context error.
			if cause := context.Cause(ctx); cause != nil && errors.Is(err, context.Canceled) {
				err = cause
			}
		}
		cancel(nil)
		m.finish(j, err)
	}()
}

// sweep runs the sweep body with checkpoint-then-publish emits and a
// panic net: a panic on the sweep goroutine fails this job, not the
// process.
func (m *Manager) sweep(ctx context.Context, j *Job, sw Sweep) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			m.log.Error("jobs: panic in sweep",
				"job", j.ID, "panic", rec, "stack", string(debug.Stack()))
			err = fmt.Errorf("jobs: panic running job %s: %v", j.ID, rec)
		}
	}()
	emit := func(frame []byte) error {
		var diskBytes int64
		if m.opt.Store != nil {
			n, aerr := m.opt.Store.AppendResult(j.ID, frame)
			if aerr != nil {
				return fmt.Errorf("%w: %w", ErrCheckpoint, aerr)
			}
			diskBytes = n
			m.checkpointBytes.Add(n)
		} else {
			diskBytes = int64(len(frame)) + 8
		}
		j.mu.Lock()
		j.frames = append(j.frames, frame)
		j.bytes += diskBytes
		j.broadcastLocked()
		j.mu.Unlock()
		return nil
	}
	return sw(ctx, emit)
}

// finish classifies the sweep's terminal error, persists the terminal
// record, and wakes followers. A shutdown interruption is special: the
// durable record is left saying "running" so the next boot resumes the
// sweep; in memory the job is flagged interrupted and followers are told
// to re-attach after the restart.
func (m *Manager) finish(j *Job, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.mu.Lock()
	j.cancel = nil
	datasetGone := false
	switch {
	case err == nil:
		j.state = StateCompleted
	case errors.Is(err, ErrInterrupted):
		j.interrupted = true
		j.broadcastLocked()
		j.mu.Unlock()
		return
	case errors.Is(err, ErrDatasetDeleted):
		j.state = StateCancelled
		j.errCode, j.errMsg = "dataset_deleted", err.Error()
		datasetGone = true
	case errors.Is(err, ErrCancelled), errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.errCode, j.errMsg = "cancelled", err.Error()
	default:
		j.state = StateFailed
		j.errCode, j.errMsg = m.errorCode(err), err.Error()
	}
	m.finishSeq++
	j.doneSeq = m.finishSeq
	j.broadcastLocked()
	j.mu.Unlock()
	if datasetGone {
		// The dataset no longer exists; the partial frontier describes
		// nothing, so drop the durable trace and let the id be reused if
		// the dataset name ever comes back.
		delete(m.jobs, j.ID)
		m.deleteDurable(j.ID)
	} else {
		m.saveRecordBestEffort(j)
	}
	m.evictLocked()
}

func (m *Manager) errorCode(err error) string {
	if errors.Is(err, ErrCheckpoint) {
		return "storage"
	}
	if m.opt.ErrorCode != nil {
		return m.opt.ErrorCode(err)
	}
	return "internal"
}

// record builds the durable record from the job's current state (j.mu NOT
// held by the caller is fine; it locks).
func (m *Manager) record(j *Job) store.JobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return store.JobRecord{
		ID: j.ID, Dataset: j.Dataset, FDs: j.FDs,
		TauLow: j.TauLow, TauHigh: j.TauHigh, Weights: j.Weights,
		Seed: j.Seed, IncludeChanges: j.IncludeChanges, Generation: j.Generation,
		Kind: j.Kind, MaxLHS: j.MaxLHS, MaxError: j.MaxError,
		MaxResults: j.MaxResults, Attrs: j.Attrs,
		State: string(j.state), ErrorCode: j.errCode, ErrorMessage: j.errMsg,
		CreatedUnix: j.createdUnix, UpdatedUnix: m.opt.Now(),
	}
}

// saveRecordBestEffort persists the record, logging (not failing) on
// error: by the time a terminal record write fails the sweep already
// happened, and the worst case of a stale "running" record is a redundant
// resume of work whose log is already complete.
func (m *Manager) saveRecordBestEffort(j *Job) {
	if m.opt.Store == nil {
		return
	}
	if err := m.opt.Store.SaveRecord(m.record(j)); err != nil {
		m.log.Error("jobs: persisting job record", "job", j.ID, "err", err)
	}
}

func (m *Manager) deleteDurable(id string) {
	if m.opt.Store == nil {
		return
	}
	if err := m.opt.Store.DeleteJob(id); err != nil {
		m.log.Error("jobs: deleting durable job", "job", id, "err", err)
	}
}

// Cancel resolves a DELETE: a running job's sweep is cancelled (the state
// transition lands when the sweep unwinds; removed=false), a terminal job
// is removed outright with its durable trace (removed=true).
func (m *Manager) Cancel(id string) (found, removed bool) {
	m.mu.Lock()
	j := m.jobs[id]
	if j == nil {
		m.mu.Unlock()
		return false, false
	}
	j.mu.Lock()
	if j.state == StateRunning {
		cancel := j.cancel
		if cancel == nil {
			// Interrupted by shutdown: no runner to unwind, transition
			// directly.
			j.state = StateCancelled
			j.errCode, j.errMsg = "cancelled", ErrCancelled.Error()
			m.finishSeq++
			j.doneSeq = m.finishSeq
			j.broadcastLocked()
			j.mu.Unlock()
			m.saveRecordBestEffort(j)
			m.mu.Unlock()
			return true, false
		}
		j.mu.Unlock()
		m.mu.Unlock()
		cancel(ErrCancelled)
		return true, false
	}
	j.mu.Unlock()
	delete(m.jobs, id)
	m.deleteDurable(id)
	m.mu.Unlock()
	return true, true
}

// CancelDataset handles DELETE of a dataset: running jobs over it are
// cancelled with the dataset_deleted cause (their followers receive the
// structured error and their slots free as the sweeps unwind), and
// terminal jobs over it are dropped with their durable traces — a
// frontier for data that no longer exists is not served.
func (m *Manager) CancelDataset(name string) {
	m.mu.Lock()
	var cancels []context.CancelCauseFunc
	for id, j := range m.jobs {
		if j.Dataset != name {
			continue
		}
		j.mu.Lock()
		if j.state == StateRunning && j.cancel != nil {
			cancels = append(cancels, j.cancel)
			j.mu.Unlock()
			continue
		}
		j.mu.Unlock()
		delete(m.jobs, id)
		m.deleteDurable(id)
	}
	m.mu.Unlock()
	for _, cancel := range cancels {
		cancel(ErrDatasetDeleted)
	}
}

// Shutdown interrupts every running sweep with ErrInterrupted. Their
// durable records keep saying "running", which is exactly what makes the
// next boot resume them; followers are woken with the interrupted flag.
// The caller's drain (the serving layer's sweep WaitGroup) observes the
// unwinding sweeps as usual.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	var cancels []context.CancelCauseFunc
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	for _, cancel := range cancels {
		cancel(ErrInterrupted)
	}
}

// Recover rehydrates persisted jobs at boot: terminal jobs come back with
// their result logs replayed and are immediately streamable; jobs whose
// records still say "running" are resumed — start runs on a per-job
// goroutine (it may block on admission at boot) and the sweep continues
// from the last checkpointed row. A resume whose dataset no longer exists
// should fail start with ErrDatasetDeleted; the job is then cancelled and
// its durable trace dropped. Returns how many sweeps were resumed.
func (m *Manager) Recover(start StartFunc) (int, error) {
	if m.opt.Store == nil {
		return 0, nil
	}
	recovered, err := m.opt.Store.LoadAll()
	if err != nil {
		return 0, err
	}
	var toStart []*Job
	m.mu.Lock()
	for _, r := range recovered {
		if _, ok := m.jobs[r.Record.ID]; ok {
			continue // already live (Recover after jobs were submitted)
		}
		j := &Job{
			Spec: Spec{
				Dataset: r.Record.Dataset, FDs: r.Record.FDs,
				TauLow: r.Record.TauLow, TauHigh: r.Record.TauHigh,
				Weights: r.Record.Weights, Seed: r.Record.Seed,
				IncludeChanges: r.Record.IncludeChanges,
				Generation:     r.Record.Generation,
				Kind:           r.Record.Kind,
				MaxLHS:         r.Record.MaxLHS,
				MaxError:       r.Record.MaxError,
				MaxResults:     r.Record.MaxResults,
				Attrs:          r.Record.Attrs,
			},
			ID: r.Record.ID, m: m,
			state:       State(r.Record.State),
			errCode:     r.Record.ErrorCode,
			errMsg:      r.Record.ErrorMessage,
			frames:      r.Frames,
			bytes:       r.LogBytes,
			change:      make(chan struct{}),
			createdUnix: r.Record.CreatedUnix,
		}
		switch j.state {
		case StateRunning:
			toStart = append(toStart, j)
		case StateCompleted, StateFailed, StateCancelled:
			m.finishSeq++
			j.doneSeq = m.finishSeq
		default:
			m.log.Error("jobs: skipping record with unknown state",
				"job", j.ID, "state", r.Record.State)
			continue
		}
		m.jobs[j.ID] = j
	}
	m.mu.Unlock()
	for _, j := range toStart {
		m.resumed.Add(1)
		go func(j *Job) {
			sw, release, err := start(j)
			if err != nil {
				m.finish(j, err)
				return
			}
			m.runSync(j, sw, release)
		}(j)
	}
	return len(toStart), nil
}

// runSync is run's body without the extra goroutine (Recover already runs
// per-job goroutines).
func (m *Manager) runSync(j *Job, sw Sweep, release func()) {
	ctx, cancel := context.WithCancelCause(context.Background())
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	defer release()
	err := m.sweep(ctx, j, sw)
	if err != nil {
		if cause := context.Cause(ctx); cause != nil && errors.Is(err, context.Canceled) {
			err = cause
		}
	}
	cancel(nil)
	m.finish(j, err)
}

// evictLocked enforces MaxResultBytes over terminal jobs (m.mu held):
// oldest-finished first, never a running job, never the most recently
// finished one — the job a client just completed stays streamable.
func (m *Manager) evictLocked() {
	max := m.opt.MaxResultBytes
	if max <= 0 {
		return
	}
	type victim struct {
		j     *Job
		bytes int64
		seq   int64
	}
	var terminal []victim
	var total int64
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.state != StateRunning {
			terminal = append(terminal, victim{j, j.bytes, j.doneSeq})
			total += j.bytes
		}
		j.mu.Unlock()
	}
	if total <= max || len(terminal) <= 1 {
		return
	}
	sort.Slice(terminal, func(i, k int) bool { return terminal[i].seq < terminal[k].seq })
	for _, v := range terminal[:len(terminal)-1] {
		if total <= max {
			break
		}
		delete(m.jobs, v.j.ID)
		m.deleteDurable(v.j.ID)
		m.evictedBytes.Add(v.bytes)
		total -= v.bytes
		m.log.Info("jobs: evicted terminal job results",
			"job", v.j.ID, "bytes", v.bytes)
	}
}
