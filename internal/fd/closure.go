package fd

import (
	"relatrust/internal/relation"
)

// Closure returns the attribute closure X⁺ of X under the set, computed with
// the standard fixed-point iteration (Armstrong's axioms).
func (set Set) Closure(x relation.AttrSet) relation.AttrSet {
	closure := x
	for changed := true; changed; {
		changed = false
		for _, f := range set {
			if f.LHS.SubsetOf(closure) && !closure.Contains(f.RHS) {
				closure = closure.Add(f.RHS)
				changed = true
			}
		}
	}
	return closure
}

// Implies reports whether the set logically implies the FD g: g.RHS ∈ g.LHS⁺.
func (set Set) Implies(g FD) bool {
	return set.Closure(g.LHS).Contains(g.RHS)
}

// ImpliesSet reports whether the set logically implies every FD of other.
func (set Set) ImpliesSet(other Set) bool {
	for _, g := range other {
		if !set.Implies(g) {
			return false
		}
	}
	return true
}

// EquivalentTo reports whether the two sets imply each other.
func (set Set) EquivalentTo(other Set) bool {
	return set.ImpliesSet(other) && other.ImpliesSet(set)
}

// IsRelaxationOf reports whether every FD of this set is implied by the
// other set — i.e. I ⊨ other implies I ⊨ set for every instance I. This is
// the paper's condition for Σ′ ∈ S(Σ) (Section 3.1), which our LHS-append
// operator guarantees by construction; the predicate exists so tests can
// verify it for arbitrary candidates.
func (set Set) IsRelaxationOf(other Set) bool {
	return other.ImpliesSet(set)
}

// MinimalCover returns a minimal cover of the set in the sense of [1]
// (Abiteboul et al.): every FD has a single RHS attribute (already our
// normal form), no LHS attribute is redundant, and no FD is redundant.
// The result is a new set; the receiver is unchanged.
func (set Set) MinimalCover() Set {
	cover := set.Clone()
	// Remove extraneous LHS attributes: A is extraneous in X→B if
	// (X\{A})⁺ under the current cover still contains B.
	for i := range cover {
		for {
			reduced := false
			for _, a := range cover[i].LHS.Attrs() {
				smaller := cover[i].LHS.Remove(a)
				// A is extraneous iff B ∈ (X\{A})⁺ under the current
				// cover, with the unreduced FD still in place: X→B only
				// fires during that closure if A itself is derivable.
				if cover.Closure(smaller).Contains(cover[i].RHS) {
					cover[i] = FD{LHS: smaller, RHS: cover[i].RHS}
					reduced = true
					break
				}
			}
			if !reduced {
				break
			}
		}
	}
	// Remove redundant FDs: f is redundant if cover\{f} implies f.
	out := cover[:0:0]
	for i := range cover {
		rest := make(Set, 0, len(cover)-1)
		rest = append(rest, out...)
		rest = append(rest, cover[i+1:]...)
		if !rest.Implies(cover[i]) {
			out = append(out, cover[i])
		}
	}
	return out
}

// IsMinimal reports whether the set is its own minimal cover (up to order).
func (set Set) IsMinimal() bool {
	mc := set.MinimalCover()
	if len(mc) != len(set) {
		return false
	}
	for i := range set {
		found := false
		for j := range mc {
			if set[i].Equal(mc[j]) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
