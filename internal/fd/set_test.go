package fd

import (
	"math/rand"
	"testing"

	"relatrust/internal/relation"
)

func buildInstance(t *testing.T, header []string, rows [][]string) *relation.Instance {
	t.Helper()
	in := relation.NewInstance(relation.MustSchema(header...))
	for _, r := range rows {
		if err := in.AppendConsts(r...); err != nil {
			t.Fatal(err)
		}
	}
	return in
}

func TestParseSet(t *testing.T) {
	set, err := ParseSet(schemaABCD, "A->B; C->D")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("len = %d", len(set))
	}
	if set.Format(schemaABCD) != "A->B; C->D" {
		t.Errorf("Format = %q", set.Format(schemaABCD))
	}
}

func TestParseSetMultiRHSAndComments(t *testing.T) {
	set, err := ParseSet(schemaABCD, "# leading comment\nA->B,C\nB -> D")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("multi-RHS expansion: len = %d, want 3", len(set))
	}
	if _, err := ParseSet(schemaABCD, "# only a comment"); err == nil {
		t.Error("comment-only spec must fail (no FDs)")
	}
}

func TestSatisfiedByAndFirstViolation(t *testing.T) {
	in := buildInstance(t, []string{"A", "B"}, [][]string{
		{"1", "x"}, {"1", "x"}, {"2", "y"},
	})
	set := MustParseSet(in.Schema, "A->B")
	if !set.SatisfiedBy(in) {
		t.Error("instance satisfies A->B")
	}
	in2 := buildInstance(t, []string{"A", "B"}, [][]string{
		{"1", "x"}, {"2", "y"}, {"1", "z"},
	})
	v := set.FirstViolation(in2)
	if v == nil {
		t.Fatal("violation expected")
	}
	if v.T1 != 0 || v.T2 != 2 || v.FD != 0 {
		t.Errorf("violation = %+v", v)
	}
}

func TestViolationsEnumeratesAllPairs(t *testing.T) {
	in := buildInstance(t, []string{"A", "B"}, [][]string{
		{"1", "x"}, {"1", "y"}, {"1", "z"},
	})
	set := MustParseSet(in.Schema, "A->B")
	vs := set.Violations(in, 0)
	if len(vs) != 3 { // all three pairs differ on B
		t.Fatalf("got %d violations, want 3: %v", len(vs), vs)
	}
	if got := set.Violations(in, 2); len(got) != 2 {
		t.Errorf("cap ignored: %d", len(got))
	}
}

func TestViolationsMatchesPairwiseDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		in := buildRandom(rng, 8, 3, 2)
		set := Set{MustNew(relation.NewAttrSet(0), 1), MustNew(relation.NewAttrSet(2), 0)}
		got := map[[3]int]bool{}
		for _, v := range set.Violations(in, 0) {
			got[[3]int{v.T1, v.T2, v.FD}] = true
		}
		for i := 0; i < in.N(); i++ {
			for j := i + 1; j < in.N(); j++ {
				for fi, f := range set {
					want := f.Violates(in.Tuples[i], in.Tuples[j])
					if got[[3]int{i, j, fi}] != want {
						t.Fatalf("trial %d: pair (%d,%d) fd %d: enumerated=%v pairwise=%v",
							trial, i, j, fi, !want, want)
					}
				}
			}
		}
		if set.SatisfiedBy(in) != (len(got) == 0) {
			t.Fatalf("trial %d: SatisfiedBy inconsistent with Violations", trial)
		}
	}
}

func buildRandom(rng *rand.Rand, n, width, dom int) *relation.Instance {
	names := []string{"A", "B", "C", "D", "E"}[:width]
	in := relation.NewInstance(relation.MustSchema(names...))
	for t := 0; t < n; t++ {
		row := make([]string, width)
		for a := range row {
			row[a] = string(rune('a' + rng.Intn(dom)))
		}
		_ = in.AppendConsts(row...)
	}
	return in
}

func TestSetCloneEqual(t *testing.T) {
	set := MustParseSet(schemaABCD, "A->B; C->D")
	cp := set.Clone()
	if !set.Equal(cp) {
		t.Error("clone differs")
	}
	cp[0] = MustNew(relation.NewAttrSet(0, 2), 1)
	if set.Equal(cp) {
		t.Error("mutated clone still equal")
	}
	if set.Equal(set[:1]) {
		t.Error("length mismatch must not be equal")
	}
}

func TestAttrsUsed(t *testing.T) {
	set := MustParseSet(schemaABCD, "A->B; C->D")
	if set.AttrsUsed() != relation.NewAttrSet(0, 1, 2, 3) {
		t.Errorf("AttrsUsed = %v", set.AttrsUsed())
	}
}
