package fd

import (
	"math/rand"
	"sort"
	"testing"

	"relatrust/internal/relation"
)

// The seed implementation of FirstViolation/Violations projected tuples to
// concatenated string keys. The ports below reproduce it verbatim as
// oracles; the code-based implementations must preserve FirstViolation's
// first-pair-in-tuple-order contract exactly and enumerate the same pair
// set in Violations.

func oracleFirstViolation(set Set, in *relation.Instance) *Violation {
	for fi, f := range set {
		groups := make(map[string]int, in.N())
		for i := 0; i < in.N(); i++ {
			key := in.Project(i, f.LHS)
			if j, ok := groups[key]; ok {
				if !in.Tuples[i][f.RHS].Equal(in.Tuples[j][f.RHS]) {
					t1, t2 := j, i
					if t1 > t2 {
						t1, t2 = t2, t1
					}
					return &Violation{T1: t1, T2: t2, FD: fi}
				}
				continue
			}
			groups[key] = i
		}
	}
	return nil
}

func oracleViolations(set Set, in *relation.Instance, cap int) []Violation {
	var out []Violation
	for fi, f := range set {
		groups := make(map[string][]int, in.N())
		for i := 0; i < in.N(); i++ {
			key := in.Project(i, f.LHS)
			groups[key] = append(groups[key], i)
		}
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			g := groups[k]
			for a := 0; a < len(g); a++ {
				for b := a + 1; b < len(g); b++ {
					if !in.Tuples[g[a]][f.RHS].Equal(in.Tuples[g[b]][f.RHS]) {
						out = append(out, Violation{T1: g[a], T2: g[b], FD: fi})
						if cap > 0 && len(out) >= cap {
							return out
						}
					}
				}
			}
		}
	}
	return out
}

// randomVInstance builds an instance over small domains with occasional
// variable cells (shared and unique), exercising V-instance semantics.
func randomVInstance(rng *rand.Rand, n, width, domain int) (*relation.Instance, *relation.VarGen) {
	names := make([]string, width)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	s, err := relation.NewSchema(names...)
	if err != nil {
		panic(err)
	}
	in := relation.NewInstance(s)
	vg := &relation.VarGen{}
	var sharedVar relation.Value
	hasShared := false
	for i := 0; i < n; i++ {
		t := make(relation.Tuple, width)
		for a := range t {
			switch rng.Intn(10) {
			case 0:
				t[a] = vg.Fresh()
			case 1:
				if !hasShared {
					sharedVar = vg.Fresh()
					hasShared = true
				}
				t[a] = sharedVar
			default:
				t[a] = relation.Const(string(rune('a' + rng.Intn(domain))))
			}
		}
		if err := in.Append(t); err != nil {
			panic(err)
		}
	}
	return in, vg
}

func randomSet(rng *rand.Rand, width, size int) Set {
	var out Set
	for len(out) < size {
		lhsSize := 1 + rng.Intn(2)
		var lhs relation.AttrSet
		for lhs.Len() < lhsSize {
			lhs = lhs.Add(rng.Intn(width))
		}
		rhs := rng.Intn(width)
		if lhs.Contains(rhs) {
			continue
		}
		f, err := New(lhs, rhs)
		if err != nil {
			continue
		}
		out = append(out, f)
	}
	return out
}

// TestFirstViolationMatchesOracle pins the code-column implementation to
// the string-keyed scan pair-for-pair on randomized V-instances.
func TestFirstViolationMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	checked := 0
	for trial := 0; trial < 300; trial++ {
		width := 3 + rng.Intn(3)
		in, _ := randomVInstance(rng, 4+rng.Intn(24), width, 2+rng.Intn(3))
		set := randomSet(rng, width, 1+rng.Intn(3))
		want := oracleFirstViolation(set, in)
		got := set.FirstViolation(in)
		if (want == nil) != (got == nil) {
			t.Fatalf("trial %d: oracle %+v, got %+v\nΣ=%v\n%s", trial, want, got, set, in)
		}
		if want == nil {
			continue
		}
		checked++
		if *want != *got {
			t.Fatalf("trial %d: oracle %+v, got %+v (first-pair-in-tuple-order contract)\nΣ=%v\n%s",
				trial, want, got, set, in)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d trials had violations; workload too clean to be meaningful", checked)
	}
}

// TestViolationsMatchOracle: the enumerated pair set must equal the
// oracle's (order may legitimately differ — the oracle visited groups in
// sorted-string-key order, the port in first-member order — so both sides
// are compared as sorted sets), and capping must truncate a prefix of the
// ported order.
func TestViolationsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(654))
	sortViol := func(v []Violation) {
		sort.Slice(v, func(i, j int) bool {
			if v[i].FD != v[j].FD {
				return v[i].FD < v[j].FD
			}
			if v[i].T1 != v[j].T1 {
				return v[i].T1 < v[j].T1
			}
			return v[i].T2 < v[j].T2
		})
	}
	for trial := 0; trial < 200; trial++ {
		width := 3 + rng.Intn(3)
		in, _ := randomVInstance(rng, 4+rng.Intn(20), width, 2+rng.Intn(2))
		set := randomSet(rng, width, 1+rng.Intn(3))

		want := oracleViolations(set, in, 0)
		got := set.Violations(in, 0)
		if len(want) != len(got) {
			t.Fatalf("trial %d: oracle %d pairs, got %d", trial, len(want), len(got))
		}
		full := append([]Violation(nil), got...)
		sortViol(want)
		sortViol(got)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: pair sets differ at %d: oracle %+v, got %+v", trial, i, want[i], got[i])
			}
		}
		if len(full) > 1 {
			capN := 1 + rng.Intn(len(full))
			capped := set.Violations(in, capN)
			if len(capped) != capN {
				t.Fatalf("trial %d: cap %d returned %d pairs", trial, capN, len(capped))
			}
			for i := range capped {
				if capped[i] != full[i] {
					t.Fatalf("trial %d: capped result is not a prefix of the full enumeration", trial)
				}
			}
		}
	}
}
