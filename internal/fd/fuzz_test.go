package fd

import (
	"testing"

	"relatrust/internal/relation"
)

// FuzzParse checks the FD parser never panics and that accepted specs
// round-trip through Format.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"A->B", "A,B->C", "A ,B -> C", "->", "A->", "->B", "A→B",
		"A->B,C", "Z->A", "A,A->B", "", "A,B,C,D->A", "A-->B", "|||",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := relation.MustSchema("A", "B", "C", "D")
	f.Fuzz(func(t *testing.T, spec string) {
		fdep, err := Parse(schema, spec)
		if err != nil {
			return
		}
		// Accepted FDs are well-formed and re-parseable.
		if fdep.LHS.Contains(fdep.RHS) {
			t.Fatalf("parser accepted trivial FD from %q", spec)
		}
		back, err := Parse(schema, fdep.Format(schema))
		if err != nil {
			t.Fatalf("formatted FD %q does not re-parse: %v", fdep.Format(schema), err)
		}
		if !back.Equal(fdep) {
			t.Fatalf("round trip changed the FD: %v vs %v", fdep, back)
		}
	})
}

// FuzzParseSet checks the set parser never panics and output sets are
// position-stable under re-parsing.
func FuzzParseSet(f *testing.F) {
	for _, s := range []string{"A->B; C->D", "A->B,C\nB->D", "# c\nA->B", ";;;", "A->B;"} {
		f.Add(s)
	}
	schema := relation.MustSchema("A", "B", "C", "D")
	f.Fuzz(func(t *testing.T, spec string) {
		set, err := ParseSet(schema, spec)
		if err != nil {
			return
		}
		back, err := ParseSet(schema, set.Format(schema))
		if err != nil || !back.Equal(set) {
			t.Fatalf("set round trip failed for %q: %v", spec, err)
		}
	})
}
