package fd

import (
	"testing"

	"relatrust/internal/relation"
)

var schemaABCD = relation.MustSchema("A", "B", "C", "D")

func TestParse(t *testing.T) {
	f, err := Parse(schemaABCD, "A,B->C")
	if err != nil {
		t.Fatal(err)
	}
	if f.LHS != relation.NewAttrSet(0, 1) || f.RHS != 2 {
		t.Errorf("parsed %v", f)
	}
	if f.Format(schemaABCD) != "A,B->C" {
		t.Errorf("Format = %q", f.Format(schemaABCD))
	}
	if _, err := Parse(schemaABCD, "A→B"); err != nil {
		t.Errorf("unicode arrow rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"A,B",      // no arrow
		"A->Z",     // unknown RHS
		"Z->A",     // unknown LHS
		"A->B,C",   // multi-attribute RHS
		"A,B->A",   // trivial
		"->",       // empty everything
		"A -> B,C", // multi RHS with spaces
	} {
		if _, err := Parse(schemaABCD, spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestNewRejectsTrivial(t *testing.T) {
	if _, err := New(relation.NewAttrSet(1), 1); err == nil {
		t.Error("A ∈ X must be rejected")
	}
	if _, err := New(relation.NewAttrSet(1), -1); err == nil {
		t.Error("negative RHS must be rejected")
	}
}

func TestExtend(t *testing.T) {
	f := MustNew(relation.NewAttrSet(0), 1)
	g, err := f.Extend(relation.NewAttrSet(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if g.LHS != relation.NewAttrSet(0, 2, 3) || g.RHS != 1 {
		t.Errorf("Extend = %v", g)
	}
	if _, err := f.Extend(relation.NewAttrSet(1)); err == nil {
		t.Error("extending with the RHS must fail")
	}
}

func TestViolates(t *testing.T) {
	f := MustNew(relation.NewAttrSet(0), 1) // A->B
	mk := func(a, b string) relation.Tuple {
		return relation.Tuple{relation.Const(a), relation.Const(b)}
	}
	if !f.Violates(mk("1", "x"), mk("1", "y")) {
		t.Error("same LHS, different RHS must violate")
	}
	if f.Violates(mk("1", "x"), mk("2", "y")) {
		t.Error("different LHS must not violate")
	}
	if f.Violates(mk("1", "x"), mk("1", "x")) {
		t.Error("identical tuples must not violate")
	}
}

func TestViolatesWithVariables(t *testing.T) {
	var g relation.VarGen
	f := MustNew(relation.NewAttrSet(0), 1)
	v := g.Fresh()
	t1 := relation.Tuple{relation.Const("1"), v}
	t2 := relation.Tuple{relation.Const("1"), g.Fresh()}
	if !f.Violates(t1, t2) {
		t.Error("distinct RHS variables differ, so the pair violates")
	}
	t3 := relation.Tuple{relation.Const("1"), v}
	if f.Violates(t1, t3) {
		t.Error("identical RHS variable means no violation")
	}
	t4 := relation.Tuple{g.Fresh(), relation.Const("x")}
	if f.Violates(t1, t4) {
		t.Error("a fresh LHS variable never agrees with a constant")
	}
}

func TestViolatedByDiff(t *testing.T) {
	f := MustNew(relation.NewAttrSet(0), 1) // A->B
	if !f.ViolatedByDiff(relation.NewAttrSet(1)) {
		t.Error("diff {B} violates A->B")
	}
	if !f.ViolatedByDiff(relation.NewAttrSet(1, 2)) {
		t.Error("diff {B,C} violates A->B")
	}
	if f.ViolatedByDiff(relation.NewAttrSet(0, 1)) {
		t.Error("diff containing an LHS attribute cannot violate")
	}
	if f.ViolatedByDiff(relation.NewAttrSet(2)) {
		t.Error("diff without the RHS cannot violate")
	}
}

func TestViolatedByDiffAgreesWithViolates(t *testing.T) {
	// For constant tuples, ViolatedByDiff(DiffSet(t,u)) == Violates(t,u).
	f := MustNew(relation.NewAttrSet(0, 2), 3)
	rows := [][]string{
		{"1", "1", "1", "1"},
		{"1", "2", "1", "2"},
		{"1", "1", "2", "2"},
		{"2", "1", "1", "1"},
	}
	tuples := make([]relation.Tuple, len(rows))
	for i, r := range rows {
		tp := make(relation.Tuple, len(r))
		for j, v := range r {
			tp[j] = relation.Const(v)
		}
		tuples[i] = tp
	}
	for i := range tuples {
		for j := i + 1; j < len(tuples); j++ {
			d := tuples[i].DiffSet(tuples[j])
			if f.ViolatedByDiff(d) != f.Violates(tuples[i], tuples[j]) {
				t.Errorf("mismatch for pair (%d,%d), diff %v", i, j, d)
			}
		}
	}
}
