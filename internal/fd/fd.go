// Package fd implements functional dependencies over the relation substrate:
// parsing, satisfaction and violation checks, attribute closure, implication,
// minimal covers, and the LHS-relaxation space S(Σ) of the paper (Section 3.1).
package fd

import (
	"fmt"
	"strings"

	"relatrust/internal/relation"
)

// FD is a functional dependency X → A in the normal form the paper assumes:
// a set of LHS attributes and a single RHS attribute, with A ∉ X.
type FD struct {
	LHS relation.AttrSet
	RHS int
}

// New builds an FD, rejecting trivial dependencies (A ∈ X) and empty RHS.
func New(lhs relation.AttrSet, rhs int) (FD, error) {
	if rhs < 0 || rhs >= relation.MaxAttrs {
		return FD{}, fmt.Errorf("fd: RHS attribute %d out of range", rhs)
	}
	if lhs.Contains(rhs) {
		return FD{}, fmt.Errorf("fd: trivial dependency: RHS attribute %d appears in LHS %s", rhs, lhs)
	}
	return FD{LHS: lhs, RHS: rhs}, nil
}

// MustNew is New but panics on error.
func MustNew(lhs relation.AttrSet, rhs int) FD {
	f, err := New(lhs, rhs)
	if err != nil {
		panic(err)
	}
	return f
}

// Attrs returns LHS ∪ {RHS}.
func (f FD) Attrs() relation.AttrSet { return f.LHS.Add(f.RHS) }

// Extend returns the FD with Y appended to the LHS (the paper's relaxation
// operator). Attributes equal to the RHS are rejected to keep the FD
// non-trivial.
func (f FD) Extend(y relation.AttrSet) (FD, error) {
	if y.Contains(f.RHS) {
		return FD{}, fmt.Errorf("fd: cannot append RHS attribute %d to LHS", f.RHS)
	}
	return FD{LHS: f.LHS.Union(y), RHS: f.RHS}, nil
}

// Violates reports whether the tuple pair (t, u) violates the FD under
// V-instance semantics: they agree on every LHS attribute but differ on the
// RHS.
func (f FD) Violates(t, u relation.Tuple) bool {
	return t.AgreeOn(u, f.LHS) && !t[f.RHS].Equal(u[f.RHS])
}

// ViolatedByDiff reports whether a tuple pair with the given difference set
// violates the FD: the pair agrees on the LHS (LHS ∩ d = ∅) and differs on
// the RHS (A ∈ d). This is the test Algorithm 3 of the paper applies per
// difference set.
func (f FD) ViolatedByDiff(d relation.AttrSet) bool {
	return !f.LHS.Intersects(d) && d.Contains(f.RHS)
}

// Equal reports structural equality.
func (f FD) Equal(g FD) bool { return f.LHS == g.LHS && f.RHS == g.RHS }

// String renders the FD with attribute indices, e.g. "{0,1}→3".
func (f FD) String() string { return fmt.Sprintf("%s→%d", f.LHS, f.RHS) }

// Format renders the FD with attribute names, e.g. "Surname,GivenName->Income".
func (f FD) Format(s *relation.Schema) string {
	return f.LHS.Names(s) + "->" + s.Name(f.RHS)
}

// Parse reads an FD in "A,B->C" form against a schema. A multi-attribute
// RHS such as "A->B,C" is rejected; split it into one FD per RHS attribute
// with ParseSet.
func Parse(s *relation.Schema, spec string) (FD, error) {
	lhsStr, rhsStr, ok := cutArrow(spec)
	if !ok {
		return FD{}, fmt.Errorf("fd: %q is not of the form \"A,B->C\"", spec)
	}
	lhs, err := s.ParseAttrs(lhsStr)
	if err != nil {
		return FD{}, err
	}
	rhsStr = strings.TrimSpace(rhsStr)
	if strings.Contains(rhsStr, ",") {
		return FD{}, fmt.Errorf("fd: %q has a multi-attribute RHS; use one FD per RHS attribute", spec)
	}
	rhs := s.Index(rhsStr)
	if rhs < 0 {
		return FD{}, fmt.Errorf("fd: unknown RHS attribute %q in %q", rhsStr, spec)
	}
	return New(lhs, rhs)
}

// cutArrow splits on "->" or the unicode arrow "→".
func cutArrow(s string) (lhs, rhs string, ok bool) {
	if l, r, found := strings.Cut(s, "->"); found {
		return l, r, true
	}
	if l, r, found := strings.Cut(s, "→"); found {
		return l, r, true
	}
	return "", "", false
}
