package fd

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"relatrust/internal/relation"
)

// genFD draws a random non-trivial FD over width attributes.
func genFD(rng *rand.Rand, width int) FD {
	rhs := rng.Intn(width)
	var lhs relation.AttrSet
	for lhs.IsEmpty() {
		for a := 0; a < width; a++ {
			if a != rhs && rng.Intn(2) == 0 {
				lhs = lhs.Add(a)
			}
		}
	}
	return FD{LHS: lhs, RHS: rhs}
}

// fdSetGen implements quick.Generator for small random FD sets.
type fdSetGen struct{ Set Set }

func (fdSetGen) Generate(rng *rand.Rand, _ int) reflect.Value {
	width := 4 + rng.Intn(3)
	k := 1 + rng.Intn(3)
	set := make(Set, 0, k)
	for len(set) < k {
		set = append(set, genFD(rng, width))
	}
	return reflect.ValueOf(fdSetGen{Set: set})
}

// TestQuickClosureProperties: X ⊆ X⁺, monotone, idempotent.
func TestQuickClosureProperties(t *testing.T) {
	f := func(g fdSetGen, xRaw uint8) bool {
		set := g.Set
		x := relation.AttrSet(xRaw) & relation.FullSet(7)
		cl := set.Closure(x)
		if !x.SubsetOf(cl) {
			return false
		}
		if set.Closure(cl) != cl { // idempotent
			return false
		}
		// Monotone: (X ∪ {a})⁺ ⊇ X⁺.
		for a := 0; a < 7; a++ {
			if !cl.SubsetOf(set.Closure(x.Add(a))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickMinimalCoverEquivalence: the minimal cover is always equivalent
// to the input and never larger.
func TestQuickMinimalCoverEquivalence(t *testing.T) {
	f := func(g fdSetGen) bool {
		set := g.Set
		mc := set.MinimalCover()
		return mc.EquivalentTo(set) && len(mc) <= len(set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickRelaxationImplication: any LHS extension of any FD of a set is
// implied by the set (the premise of the paper's repair space S(Σ)).
func TestQuickRelaxationImplication(t *testing.T) {
	f := func(g fdSetGen, extRaw uint8) bool {
		set := g.Set
		for _, fdep := range set {
			ext := relation.AttrSet(extRaw) & relation.FullSet(7)
			ext = ext.Diff(fdep.LHS).Remove(fdep.RHS)
			relaxed := FD{LHS: fdep.LHS.Union(ext), RHS: fdep.RHS}
			if !set.Implies(relaxed) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickViolatesSymmetric: Violates is symmetric in its tuple pair.
func TestQuickViolatesSymmetric(t *testing.T) {
	f := func(g fdSetGen, aRaw, bRaw [7]uint8) bool {
		mk := func(raw [7]uint8) relation.Tuple {
			tp := make(relation.Tuple, 7)
			for i, v := range raw {
				tp[i] = relation.Const(string(rune('a' + v%3)))
			}
			return tp
		}
		t1, t2 := mk(aRaw), mk(bRaw)
		for _, fdep := range g.Set {
			if fdep.Violates(t1, t2) != fdep.Violates(t2, t1) {
				return false
			}
			// Consistency with the difference-set characterization.
			if fdep.Violates(t1, t2) != fdep.ViolatedByDiff(t1.DiffSet(t2)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
