package fd

import (
	"fmt"
	"strings"

	"relatrust/internal/relation"
)

// Set is an ordered list of FDs, Σ. Order is significant: the repair search
// represents candidate modifications as a vector of LHS extensions indexed
// by position in Σ (the paper keeps |Σ′| = |Σ| by allowing duplicates).
type Set []FD

// ParseSet parses a semicolon- or newline-separated list of FD specs.
// Multi-attribute RHS specs like "A->B,C" are expanded into one FD per RHS
// attribute.
func ParseSet(s *relation.Schema, specs string) (Set, error) {
	var out Set
	fields := strings.FieldsFunc(specs, func(r rune) bool { return r == ';' || r == '\n' })
	for _, spec := range fields {
		spec = strings.TrimSpace(spec)
		if spec == "" || strings.HasPrefix(spec, "#") {
			continue
		}
		lhsStr, rhsStr, ok := cutArrow(spec)
		if !ok {
			return nil, fmt.Errorf("fd: %q is not of the form \"A,B->C\"", spec)
		}
		lhs, err := s.ParseAttrs(lhsStr)
		if err != nil {
			return nil, err
		}
		for _, rhsName := range strings.Split(rhsStr, ",") {
			rhsName = strings.TrimSpace(rhsName)
			if rhsName == "" {
				continue
			}
			rhs := s.Index(rhsName)
			if rhs < 0 {
				return nil, fmt.Errorf("fd: unknown RHS attribute %q in %q", rhsName, spec)
			}
			f, err := New(lhs, rhs)
			if err != nil {
				return nil, err
			}
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fd: no dependencies found in %q", specs)
	}
	return out, nil
}

// MustParseSet is ParseSet but panics on error.
func MustParseSet(s *relation.Schema, specs string) Set {
	set, err := ParseSet(s, specs)
	if err != nil {
		panic(err)
	}
	return set
}

// Clone returns a copy of the set.
func (set Set) Clone() Set { return append(Set(nil), set...) }

// Equal reports position-wise equality.
func (set Set) Equal(other Set) bool {
	if len(set) != len(other) {
		return false
	}
	for i := range set {
		if !set[i].Equal(other[i]) {
			return false
		}
	}
	return true
}

// String renders the set with attribute indices.
func (set Set) String() string {
	parts := make([]string, len(set))
	for i, f := range set {
		parts[i] = f.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Format renders the set with attribute names, one FD per element, joined
// by "; ".
func (set Set) Format(s *relation.Schema) string {
	parts := make([]string, len(set))
	for i, f := range set {
		parts[i] = f.Format(s)
	}
	return strings.Join(parts, "; ")
}

// SatisfiedBy reports whether the instance satisfies every FD in the set.
// It runs in O(|Σ|·n) time by partitioning tuples on dictionary-encoded
// LHS codes instead of testing all pairs. Variables are interned by
// identity, so two tuples land in the same group iff they agree on the LHS
// under V-instance semantics.
//
// Like every code-column consumer, this reads the instance's cached
// dictionary codes: callers that mutate cells in place between checks must
// call Instance.InvalidateCodes first (appends and clones are tracked
// automatically).
func (set Set) SatisfiedBy(in *relation.Instance) bool {
	return set.FirstViolation(in) == nil
}

// Violation describes one violating tuple pair and the FD (by position) it
// violates.
type Violation struct {
	T1, T2 int // tuple indices, T1 < T2
	FD     int // index into the Set
}

// FirstViolation returns one violation, or nil if the instance satisfies
// the set. The pair is the first in tuple order: for the first FD (in Σ
// order) with any violation, T2 is the smallest tuple index whose RHS
// disagrees with the representative (first member, = T1) of its LHS group.
// The pair a string-keyed single-pass scan would report; pinned by an
// equivalence test against that oracle.
func (set Set) FirstViolation(in *relation.Instance) *Violation {
	p := relation.NewPartitioner(in)
	for fi, f := range set {
		p.BeginAll()
		p.RefineSet(f.LHS)
		pt := p.Partition()
		rhs, _ := in.Codes(f.RHS)
		// Refinement is stable over the ascending seed, so each group lists
		// its members in tuple order and g[0] is the group representative.
		// The scan's first conflicting tuple is the smallest "first member
		// disagreeing with its representative" across groups.
		t2 := -1
		t1 := -1
		for gi := 0; gi < pt.NumGroups(); gi++ {
			g := pt.Group(gi)
			if len(g) < 2 {
				continue
			}
			r0 := rhs[g[0]]
			for _, m := range g[1:] {
				if rhs[m] != r0 {
					if t2 < 0 || int(m) < t2 {
						t1, t2 = int(g[0]), int(m)
					}
					break
				}
			}
		}
		if t2 >= 0 {
			return &Violation{T1: t1, T2: t2, FD: fi}
		}
	}
	return nil
}

// Violations enumerates all violating pairs for every FD in the set, up to
// the given cap (cap <= 0 means unlimited). The result is deterministic for
// a fixed instance: FDs in Σ order, LHS groups in order of their first
// member (stable code-based refinement keeps members in tuple order), pairs
// in lexicographic (T1, T2) order within a group. Beware: badly violated
// FDs can induce Θ(n²) pairs; use the conflict package for cover
// computations that avoid enumeration.
func (set Set) Violations(in *relation.Instance, cap int) []Violation {
	p := relation.NewPartitioner(in)
	var out []Violation
	for fi, f := range set {
		p.BeginAll()
		p.RefineSet(f.LHS)
		pt := p.Partition()
		rhs, _ := in.Codes(f.RHS)
		for gi := 0; gi < pt.NumGroups(); gi++ {
			g := pt.Group(gi)
			for a := 0; a < len(g); a++ {
				for b := a + 1; b < len(g); b++ {
					if rhs[g[a]] != rhs[g[b]] {
						out = append(out, Violation{T1: int(g[a]), T2: int(g[b]), FD: fi})
						if cap > 0 && len(out) >= cap {
							return out
						}
					}
				}
			}
		}
	}
	return out
}

// AttrsUsed returns the union of attributes mentioned by any FD.
func (set Set) AttrsUsed() relation.AttrSet {
	var s relation.AttrSet
	for _, f := range set {
		s = s.Union(f.Attrs())
	}
	return s
}
