package fd

import (
	"math/rand"
	"testing"

	"relatrust/internal/relation"
)

func TestClosure(t *testing.T) {
	set := MustParseSet(schemaABCD, "A->B; B->C")
	got := set.Closure(relation.NewAttrSet(0))
	if got != relation.NewAttrSet(0, 1, 2) {
		t.Errorf("A+ = %v, want {A,B,C}", got)
	}
	if set.Closure(relation.NewAttrSet(3)) != relation.NewAttrSet(3) {
		t.Error("D+ should be {D}")
	}
}

func TestImplies(t *testing.T) {
	set := MustParseSet(schemaABCD, "A->B; B->C")
	if !set.Implies(MustNew(relation.NewAttrSet(0), 2)) {
		t.Error("A->C is implied (transitivity)")
	}
	if set.Implies(MustNew(relation.NewAttrSet(2), 0)) {
		t.Error("C->A is not implied")
	}
	if !set.Implies(MustNew(relation.NewAttrSet(0, 3), 1)) {
		t.Error("A,D->B is implied (augmentation)")
	}
}

func TestRelaxationSemantics(t *testing.T) {
	sigma := MustParseSet(schemaABCD, "A->B")
	relaxed := MustParseSet(schemaABCD, "A,C->B")
	if !relaxed.IsRelaxationOf(sigma) {
		t.Error("appending LHS attributes is a relaxation")
	}
	if sigma.IsRelaxationOf(relaxed) {
		t.Error("the original is not a relaxation of the extension")
	}
}

func TestEquivalentTo(t *testing.T) {
	a := MustParseSet(schemaABCD, "A->B; B->C")
	b := MustParseSet(schemaABCD, "A->B; B->C; A->C")
	if !a.EquivalentTo(b) {
		t.Error("adding an implied FD preserves equivalence")
	}
	c := MustParseSet(schemaABCD, "A->B")
	if a.EquivalentTo(c) {
		t.Error("dropping B->C changes the theory")
	}
}

func TestMinimalCoverRemovesRedundantFD(t *testing.T) {
	set := MustParseSet(schemaABCD, "A->B; B->C; A->C")
	mc := set.MinimalCover()
	if len(mc) != 2 {
		t.Fatalf("minimal cover size = %d, want 2 (%v)", len(mc), mc)
	}
	if !mc.EquivalentTo(set) {
		t.Error("minimal cover must stay equivalent")
	}
}

func TestMinimalCoverReducesLHS(t *testing.T) {
	// In {A->B, A,B->C}, B is extraneous in the second FD's LHS.
	set := MustParseSet(schemaABCD, "A->B; A,B->C")
	mc := set.MinimalCover()
	if !mc.EquivalentTo(set) {
		t.Fatal("cover not equivalent")
	}
	for _, f := range mc {
		if f.RHS == 2 && f.LHS != relation.NewAttrSet(0) {
			t.Errorf("LHS of ...->C not reduced: %v", f)
		}
	}
	if set.IsMinimal() {
		t.Error("input set is not minimal")
	}
	if !mc.IsMinimal() {
		t.Error("cover of a cover must be minimal")
	}
}

func TestMinimalCoverRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		width := 4 + rng.Intn(2)
		var set Set
		for len(set) < 3 {
			rhs := rng.Intn(width)
			var lhs relation.AttrSet
			for a := 0; a < width; a++ {
				if a != rhs && rng.Intn(3) == 0 {
					lhs = lhs.Add(a)
				}
			}
			if lhs.IsEmpty() {
				lhs = lhs.Add((rhs + 1) % width)
			}
			set = append(set, MustNew(lhs, rhs))
		}
		mc := set.MinimalCover()
		if !mc.EquivalentTo(set) {
			t.Fatalf("trial %d: cover %v not equivalent to %v", trial, mc, set)
		}
		if len(mc) > len(set) {
			t.Fatalf("trial %d: cover grew", trial)
		}
		// Every FD in the cover is non-redundant.
		for i := range mc {
			rest := append(mc[:i:i].Clone(), mc[i+1:]...)
			if len(rest) > 0 && rest.Implies(mc[i]) {
				t.Fatalf("trial %d: redundant FD %v survived in %v", trial, mc[i], mc)
			}
		}
	}
}
