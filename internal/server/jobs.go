package server

// The durable job tier: POST /v1/jobs runs a frontier sweep detached from
// any connection, checkpointing every Pareto point through the job store
// the moment its τ finishes. Followers attach (and re-attach, after a
// disconnect or a daemon restart) with GET /v1/jobs/{id}/stream?from=N:
// persisted rows replay first, then the stream follows live — the
// concatenation is byte-identical to an uninterrupted /v1/repair stream
// of the same spec. Jobs are content-addressed (see jobs.Spec.ID), so
// identical submissions coalesce onto one sweep and one admission slot,
// and completed frontiers are served from the result log without
// re-admission. Jobs respect the same sweep caps as request sweeps: a
// saturated server sheds a NEW job with 429 + Retry-After (coalesced
// submissions are never shed — they cost nothing).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"relatrust"

	"relatrust/internal/jobs"
	"relatrust/internal/report"
	"relatrust/internal/weights"
)

// JobInfo is the wire description of a job (POST /v1/jobs and
// GET /v1/jobs/{id}).
type JobInfo struct {
	ID      string `json:"id"`
	Dataset string `json:"dataset"`
	FDs     string `json:"fds"`
	TauLow  int    `json:"tau_low"`
	// TauHigh is -1 when the sweep starts from δP(Σ, I).
	TauHigh        int    `json:"tau_high"`
	Weights        string `json:"weights"`
	Seed           int64  `json:"seed,omitempty"`
	IncludeChanges bool   `json:"include_changes,omitempty"`
	// Generation is the dataset mutation generation the job answers for.
	Generation int64 `json:"generation,omitempty"`
	// Kind distinguishes job bodies: "" is a frontier sweep, "discover"
	// an FD-mining run addressed by the discovery knobs below.
	Kind       string  `json:"kind,omitempty"`
	MaxLHS     int     `json:"max_lhs,omitempty"`
	MaxError   float64 `json:"max_error,omitempty"`
	MaxResults int     `json:"max_results,omitempty"`
	Attrs      string  `json:"attrs,omitempty"`
	State      string  `json:"state"`
	// Rows is how many frontier rows are checkpointed and streamable.
	Rows  int          `json:"rows"`
	Error *ErrorDetail `json:"error,omitempty"`
}

func jobInfo(st jobs.Status) JobInfo {
	info := JobInfo{
		ID: st.ID, Dataset: st.Dataset, FDs: st.FDs,
		TauLow: st.TauLow, TauHigh: st.TauHigh, Weights: st.Weights,
		Seed: st.Seed, IncludeChanges: st.IncludeChanges,
		Generation: st.Generation,
		Kind:       st.Kind, MaxLHS: st.MaxLHS, MaxError: st.MaxError,
		MaxResults: st.MaxResults, Attrs: st.Attrs,
		State: string(st.State), Rows: st.Rows,
	}
	if st.ErrorCode != "" {
		info.Error = &ErrorDetail{Code: st.ErrorCode, Message: st.ErrorMessage}
	}
	return info
}

// jobSpec canonicalizes the request into the job's content address: FDs
// are re-formatted against the schema (so "A ,B->C" and "A,B->C" address
// the same job), the weighting name is validated and defaulted, and the
// dataset's current mutation generation is stamped in — so resubmitting a
// spec after a PATCH addresses a new job over the new rows instead of
// coalescing onto the stale frontier.
func (s *Server) jobSpec(d *dataset, req RepairRequest, sigma relatrust.FDSet) (jobs.Spec, error) {
	if req.TauLow < 0 {
		return jobs.Spec{}, fmt.Errorf("tau_low must be non-negative")
	}
	hi := -1
	if req.TauHigh != nil && *req.TauHigh >= 0 {
		hi = *req.TauHigh
	}
	if hi >= 0 && req.TauLow > hi {
		return jobs.Spec{}, fmt.Errorf("tau_low %d exceeds tau_high %d", req.TauLow, hi)
	}
	wname := req.Weights
	if wname == "" {
		wname = "distinct-count"
	}
	in := d.live.Rows()
	if _, err := weights.ByName(wname, in); err != nil {
		return jobs.Spec{}, err
	}
	parts := make([]string, len(sigma))
	for i, f := range sigma {
		parts[i] = f.Format(in.Schema)
	}
	return jobs.Spec{
		Dataset:        d.name,
		FDs:            strings.Join(parts, "; "),
		TauLow:         req.TauLow,
		TauHigh:        hi,
		Weights:        wname,
		Seed:           req.Seed,
		IncludeChanges: req.IncludeChanges,
		Generation:     d.live.Generation(),
	}, nil
}

// handleSubmitJob admits (or coalesces) a job. 201 with the job body when
// a sweep was started (new or resumed from a checkpoint), 200 when an
// existing job answered the submission.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRepairRequest(http.MaxBytesReader(w, r.Body, s.opt.MaxUploadBytes))
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "decoding job request: %v", err)
		return
	}
	d := s.lookup(req.Dataset)
	if d == nil {
		writeErrorCode(w, http.StatusNotFound, codeUnknownDataset, "dataset %q is not registered", req.Dataset)
		return
	}
	schema := d.live.Rows().Schema
	sigma, err := relatrust.ParseFDs(schema, req.FDs)
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadFDs, "parsing FDs: %v", err)
		return
	}
	if len(sigma) == 0 {
		status, body := mapError(relatrust.ErrEmptyFDSet, schema)
		writeError(w, status, body)
		return
	}
	spec, err := s.jobSpec(d, req, sigma)
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	j, started, err := s.jobs.Submit(spec, s.jobStarter(d, req))
	switch {
	case errors.Is(err, ErrShuttingDown):
		writeErrorCode(w, http.StatusServiceUnavailable, codeShuttingDown, "server is shutting down")
		return
	case errors.Is(err, errOverloaded):
		d.mu.Lock()
		d.sweepsShed++
		d.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeErrorCode(w, http.StatusTooManyRequests, codeOverloaded,
			"sweep capacity for dataset %q is saturated; retry shortly", d.name)
		return
	case err != nil:
		// The only remaining submission failure is the durable record
		// write; the job was not admitted.
		writeErrorCode(w, http.StatusInternalServerError, codeStorage, "%v", err)
		return
	}
	status := http.StatusOK
	if started {
		status = http.StatusCreated
	}
	writeJSON(w, status, jobInfo(j.Status()))
}

// jobStarter adapts a submission to the manager's StartFunc: non-blocking
// admission under the same caps as request sweeps, counted against the
// dataset like any other sweep.
func (s *Server) jobStarter(d *dataset, req RepairRequest) jobs.StartFunc {
	return func(j *jobs.Job) (jobs.Sweep, func(), error) {
		if err := s.beginSweepSlot(d); err != nil {
			return nil, nil, err
		}
		d.mu.Lock()
		d.sweepsStarted++
		d.mu.Unlock()
		return s.jobSweep(d, req, j), func() { s.endSweepSlot(d) }, nil
	}
}

// discoverJobSpec canonicalizes a discovery submission into its content
// address: attribute names are resolved and re-formatted against the
// schema, and MaxLHS is defaulted before hashing, so "max_lhs": 0 and
// "max_lhs": 3 coalesce onto one job.
func (s *Server) discoverJobSpec(d *dataset, req DiscoverRequest) (jobs.Spec, error) {
	if req.Mode != "" {
		return jobs.Spec{}, fmt.Errorf("discovery jobs run the mining phase only; mode must be empty")
	}
	if req.MaxLHS < 0 || req.MaxResults < 0 {
		return jobs.Spec{}, fmt.Errorf("max_lhs and max_results must be non-negative")
	}
	if req.MaxError < 0 || req.MaxError > 1 {
		return jobs.Spec{}, fmt.Errorf("max_error must be within [0, 1]")
	}
	in := d.live.Rows()
	attrs := ""
	if req.Attrs != "" {
		set, err := in.Schema.ParseAttrs(req.Attrs)
		if err != nil {
			return jobs.Spec{}, err
		}
		attrs = set.Names(in.Schema)
	}
	maxLHS := req.MaxLHS
	if maxLHS == 0 {
		maxLHS = 3 // the facade default, pinned into the address
	}
	return jobs.Spec{
		Dataset:    d.name,
		Generation: d.live.Generation(),
		Kind:       "discover",
		MaxLHS:     maxLHS,
		MaxError:   req.MaxError,
		MaxResults: req.MaxResults,
		Attrs:      attrs,
	}, nil
}

// handleSubmitDiscoverJob admits (or coalesces) a discovery job: the
// mining phase of /v1/discover, detached from the connection, with the
// same checkpoint/replay contract as sweep jobs — each fd frame persists
// before a follower sees it, and the stream of a resumed job is
// byte-identical to an uninterrupted run because mining is deterministic.
func (s *Server) handleSubmitDiscoverJob(w http.ResponseWriter, r *http.Request) {
	req, err := decodeDiscoverRequest(http.MaxBytesReader(w, r.Body, s.opt.MaxUploadBytes))
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "decoding discover job request: %v", err)
		return
	}
	d := s.lookup(req.Dataset)
	if d == nil {
		writeErrorCode(w, http.StatusNotFound, codeUnknownDataset, "dataset %q is not registered", req.Dataset)
		return
	}
	spec, err := s.discoverJobSpec(d, req)
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	j, started, err := s.jobs.Submit(spec, s.discoverJobStarter(d))
	switch {
	case errors.Is(err, ErrShuttingDown):
		writeErrorCode(w, http.StatusServiceUnavailable, codeShuttingDown, "server is shutting down")
		return
	case errors.Is(err, errOverloaded):
		d.mu.Lock()
		d.sweepsShed++
		d.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeErrorCode(w, http.StatusTooManyRequests, codeOverloaded,
			"sweep capacity for dataset %q is saturated; retry shortly", d.name)
		return
	case err != nil:
		writeErrorCode(w, http.StatusInternalServerError, codeStorage, "%v", err)
		return
	}
	status := http.StatusOK
	if started {
		status = http.StatusCreated
	}
	writeJSON(w, status, jobInfo(j.Status()))
}

// discoverJobStarter is jobStarter for discovery jobs: same admission,
// same slot accounting, a mining body instead of a sweep.
func (s *Server) discoverJobStarter(d *dataset) jobs.StartFunc {
	return func(j *jobs.Job) (jobs.Sweep, func(), error) {
		if err := s.beginSweepSlot(d); err != nil {
			return nil, nil, err
		}
		d.mu.Lock()
		d.sweepsStarted++
		d.mu.Unlock()
		return s.discoverJobSweep(d, j), func() { s.endSweepSlot(d) }, nil
	}
}

// isSigmaFrame reports whether a checkpointed frame is the terminal sigma
// frame — its presence in the log is how a resume knows mining finished
// and only the terminal record write was lost.
func isSigmaFrame(frame []byte) bool {
	var probe struct {
		Sigma *string `json:"sigma"`
	}
	return json.Unmarshal(frame, &probe) == nil && probe.Sigma != nil
}

// discoverJobSweep builds the manager's sweep body for a discovery job.
// Resume leans on determinism instead of a τ bound: mining emits FDs in a
// fixed order for a fixed (instance, knobs), so a job holding k
// checkpointed frames re-runs the walk and skips the first k emissions —
// the concatenation is byte-identical to an uninterrupted run. A log
// whose last frame is the sigma frame is already complete.
func (s *Server) discoverJobSweep(d *dataset, j *jobs.Job) jobs.Sweep {
	return func(ctx context.Context, emit func(frame []byte) error) (err error) {
		rows := 0
		defer func() {
			if rec := recover(); rec != nil {
				stack := debug.Stack()
				s.panics.Add(1)
				s.log.Error("server: panic during discovery job",
					"dataset", d.name, "job", j.ID, "panic", rec, "stack", string(stack))
				err = &relatrust.PanicError{Value: rec, Stack: stack}
			}
			d.sweepDone(rows, err)
		}()
		in, sess, gen := s.snapshotFor(d)
		if j.Generation != gen {
			return fmt.Errorf("%w: job answers for generation %d, dataset is at %d",
				jobs.ErrDatasetMutated, j.Generation, gen)
		}
		skip := j.Rows()
		if frames := j.Frames(); skip > 0 && isSigmaFrame(frames[skip-1]) {
			return nil // mining finished; the crash hit before the terminal record
		}
		var attrs relatrust.AttrSet
		if j.Attrs != "" {
			if attrs, err = in.Schema.ParseAttrs(j.Attrs); err != nil {
				return err
			}
		}
		opt := relatrust.DiscoverOptions{
			MaxLHS: j.MaxLHS, MaxError: j.MaxError, MaxResults: j.MaxResults,
			Attrs: attrs, Session: sess,
		}
		if observe := s.opt.ObserveDiscovery; observe != nil {
			opt.Progress = func(level, sets int) { observe(d.name, level, sets) }
		}
		dv, err := relatrust.NewDiscoverer(in, opt)
		if err != nil {
			return err
		}
		n := 0
		var mined relatrust.FDSet
		for f, ferr := range dv.Stream(ctx) {
			if ferr != nil {
				return ferr
			}
			n++
			mined = append(mined, f.FD)
			if n <= skip {
				continue // deterministic replay of an already-checkpointed frame
			}
			raw, merr := json.Marshal(discoverFrame{N: n, FD: f.FD.Format(in.Schema), Level: f.Level, Error: f.Error})
			if merr != nil {
				return merr
			}
			if eerr := emit(raw); eerr != nil {
				return eerr
			}
			rows++
		}
		sortSigma(mined)
		raw, merr := json.Marshal(sigmaFrame{Sigma: mined.Format(in.Schema), FDs: len(mined)})
		if merr != nil {
			return merr
		}
		if eerr := emit(raw); eerr != nil {
			return eerr
		}
		rows++
		return nil
	}
}

// RecoverJobs rehydrates persisted jobs after Rehydrate: terminal jobs
// become streamable from their result logs, and records still "running"
// resume sweeping from their last checkpointed row. Boot-time admission
// waits for a slot (per-job goroutine) instead of shedding — resumed work
// was already admitted once. Returns how many sweeps were resumed.
func (s *Server) RecoverJobs() (int, error) {
	return s.jobs.Recover(func(j *jobs.Job) (jobs.Sweep, func(), error) {
		d := s.lookup(j.Dataset)
		if d == nil {
			return nil, nil, fmt.Errorf("%w: dataset %q is not registered", jobs.ErrDatasetDeleted, j.Dataset)
		}
		if j.Kind == "discover" {
			if err := s.waitSweepSlot(d); err != nil {
				return nil, nil, err
			}
			d.mu.Lock()
			d.sweepsStarted++
			d.mu.Unlock()
			return s.discoverJobSweep(d, j), func() { s.endSweepSlot(d) }, nil
		}
		req := RepairRequest{
			Dataset: j.Dataset, FDs: j.FDs, TauLow: j.TauLow,
			Weights: j.Weights, Seed: j.Seed, IncludeChanges: j.IncludeChanges,
			Workers: s.opt.Workers,
		}
		if j.TauHigh >= 0 {
			hi := j.TauHigh
			req.TauHigh = &hi
		}
		if err := s.waitSweepSlot(d); err != nil {
			return nil, nil, err
		}
		d.mu.Lock()
		d.sweepsStarted++
		d.mu.Unlock()
		return s.jobSweep(d, req, j), func() { s.endSweepSlot(d) }, nil
	})
}

// waitSweepSlot is beginSweepSlot with patience, for boot-time resume:
// overload waits and retries instead of shedding; only shutdown refuses.
func (s *Server) waitSweepSlot(d *dataset) error {
	for {
		err := s.beginSweepSlot(d)
		if !errors.Is(err, errOverloaded) {
			return err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// jobSweep builds the manager's sweep body for one job: it re-derives the
// Repairer from the job's canonical spec, continues from the last
// checkpointed row when the job holds replayed frames (the resume bound
// is that row's δP−1 — see the package doc of internal/jobs for why that
// reproduces the uninterrupted stream exactly), and emits each row's wire
// bytes through the manager's checkpoint-then-publish path. The sweep
// pins the dataset's snapshot at start and refuses to run if its
// generation no longer matches the job's — checkpointed rows of a
// pre-mutation frontier must never be continued over different data
// (this is the boot-resume path after a restart that followed a PATCH).
func (s *Server) jobSweep(d *dataset, req RepairRequest, j *jobs.Job) jobs.Sweep {
	return func(ctx context.Context, emit func(frame []byte) error) (err error) {
		rows := 0
		defer func() {
			if rec := recover(); rec != nil {
				stack := debug.Stack()
				s.panics.Add(1)
				s.log.Error("server: panic during job sweep",
					"dataset", d.name, "job", j.ID, "panic", rec, "stack", string(stack))
				err = &relatrust.PanicError{Value: rec, Stack: stack}
			}
			d.sweepDone(rows, err)
		}()
		in, sess, gen := s.snapshotFor(d)
		if j.Generation != gen {
			return fmt.Errorf("%w: job answers for generation %d, dataset is at %d",
				jobs.ErrDatasetMutated, j.Generation, gen)
		}
		sigma, err := relatrust.ParseFDs(in.Schema, j.FDs)
		if err != nil {
			return err
		}
		opt, err := s.options(d, req, in, sess)
		if err != nil {
			return err
		}
		rp, err := relatrust.NewRepairer(in, sigma, opt)
		if err != nil {
			return err
		}
		lo, hi := j.TauLow, j.TauHigh
		level := j.Rows()
		if level > 0 {
			last, err := lastDeltaP(j.Frames())
			if err != nil {
				return err
			}
			hi = last - 1
			if hi < lo {
				// The checkpoints already hold the full frontier; the crash
				// hit between the last row and the completion record.
				return nil
			}
		}
		for rep, ferr := range rp.FrontierRange(ctx, lo, hi) {
			if ferr != nil {
				return ferr
			}
			level++
			frame := frontierFrame{Row: report.RowOf(in, level, rep)}
			if j.IncludeChanges {
				frame.Changes = changesOf(in, rep.Data)
			}
			raw, merr := json.Marshal(frame)
			if merr != nil {
				return merr
			}
			if eerr := emit(raw); eerr != nil {
				return eerr
			}
			rows++
		}
		return nil
	}
}

// lastDeltaP parses the resume bound out of the last checkpointed row.
func lastDeltaP(frames [][]byte) (int, error) {
	var row report.Row
	if err := json.Unmarshal(frames[len(frames)-1], &row); err != nil {
		return 0, fmt.Errorf("decoding checkpointed row: %w", err)
	}
	return row.DeltaP, nil
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	all := s.jobs.List()
	infos := make([]JobInfo, 0, len(all))
	for _, j := range all {
		infos = append(infos, jobInfo(j.Status()))
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobInfo `json:"jobs"`
	}{infos})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.Get(r.PathValue("id"))
	if j == nil {
		writeErrorCode(w, http.StatusNotFound, codeUnknownJob, "job %q is not known", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, jobInfo(j.Status()))
}

// handleDeleteJob cancels a running job (202; the cancelled state lands
// when its sweep unwinds) or removes a terminal one with its durable
// trace (204).
func (s *Server) handleDeleteJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	found, removed := s.jobs.Cancel(id)
	if !found {
		writeErrorCode(w, http.StatusNotFound, codeUnknownJob, "job %q is not known", id)
		return
	}
	if removed {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	j := s.jobs.Get(id)
	if j == nil { // removed by a concurrent delete
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusAccepted, jobInfo(j.Status()))
}

// handleJobStream attaches to a job's frontier stream: rows [from, ...)
// replay from the checkpoint log, then the stream follows live until the
// job reaches a terminal state — completion ends the stream like a
// finished /v1/repair sweep (EOF for NDJSON, "done" for SSE); failure and
// cancellation arrive as the same in-band error frames. A job interrupted
// by shutdown reports shutting_down: re-attach after the restart and the
// replay continues where it left off.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.Get(r.PathValue("id"))
	if j == nil {
		writeErrorCode(w, http.StatusNotFound, codeUnknownJob, "job %q is not known", r.PathValue("id"))
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "from must be a non-negative row offset")
			return
		}
		from = v
	}
	st := newStream(w, r)
	i := from
	for {
		frames, status, wait := j.Next(i)
		for _, f := range frames {
			if err := st.rawRow(f); err != nil {
				return // client gone; the job sweeps on regardless
			}
			i++
		}
		if len(frames) > 0 {
			continue // drain everything visible before deciding to wait
		}
		switch {
		case status.State == jobs.StateCompleted:
			st.done(i)
			return
		case status.State == jobs.StateFailed || status.State == jobs.StateCancelled:
			st.fail(ErrorBody{Error: ErrorDetail{Code: status.ErrorCode, Message: status.ErrorMessage}})
			return
		case status.Interrupted:
			st.fail(ErrorBody{Error: ErrorDetail{
				Code:    codeShuttingDown,
				Message: "server is shutting down; re-attach after restart to resume the stream",
			}})
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wait:
		}
	}
}
