package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestRepairStreamDecompositionByteIdentical pins the decomposition at the
// wire: the NDJSON frontier stream of a decomposed sweep is byte-identical
// to a no_decomposition sweep of the same request, and the subsequent
// /statz and /metrics expose the component counters of the last finished
// (decomposed) sweep.
func TestRepairStreamDecompositionByteIdentical(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	registerCities(t, ts.URL)

	sweep := func(noDecomp bool) string {
		resp := postJSON(t, ts.URL+"/v1/repair", RepairRequest{
			Dataset:         "cities",
			FDs:             multiFDs,
			Workers:         4,
			NoDecomposition: noDecomp,
			IncludeChanges:  true,
		})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("repair: status %d, body %s", resp.StatusCode, b)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	monolithic := sweep(true)
	decomposed := sweep(false)
	if monolithic != decomposed {
		t.Fatalf("decomposed stream differs from monolithic stream:\ndecomposed:\n%s\nmonolithic:\n%s", decomposed, monolithic)
	}
	if !strings.Contains(decomposed, "\n") {
		t.Fatal("stream carried no frames")
	}

	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var statz Statz
	decodeBody(t, resp, &statz)
	if len(statz.Datasets) != 1 {
		t.Fatalf("statz datasets = %d, want 1", len(statz.Datasets))
	}
	d := statz.Datasets[0]
	if d.Components <= 0 || d.LargestComponent <= 0 {
		t.Fatalf("statz after decomposed sweep: components=%d largest_component=%d, want both > 0",
			d.Components, d.LargestComponent)
	}
	// The raw JSON keys are part of the wire format.
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"components"`, `"largest_component"`, `"components_parallel"`} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("dataset statz JSON misses %s: %s", key, raw)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"relatrust_conflict_components",
		"relatrust_conflict_largest_component_tuples",
		"relatrust_component_parallel_evals_total",
	} {
		if !strings.Contains(string(metrics), name+`{dataset="cities"}`) {
			t.Fatalf("/metrics misses %s for the dataset:\n%s", name, metrics)
		}
	}
}
