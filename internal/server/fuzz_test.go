package server

// Native fuzz targets for the service's two untrusted decode paths: the
// JSON repair-request body and the CSV dataset upload. Plain `go test`
// replays the f.Add seeds plus the checked-in corpora under testdata/fuzz
// (CI's fuzz-regression step); `go test -fuzz FuzzX` explores further.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"relatrust"
)

func FuzzDecodeRepairRequest(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"dataset":"cities","fds":"City->ZIP"}`),
		[]byte(`{"dataset":"cities","fds":"A,B->C; D->E","tau":0,"workers":4,"best_first":true}`),
		[]byte(`{"dataset":"x","fds":"A->B","tau_low":1,"tau_high":3,"timeout_ms":100,"include_changes":true}`),
		[]byte(`{"dataset":"x","fds":"A->B","k":3,"max":10,"seed":-1,"weights":"entropy"}`),
		[]byte(`{"unknown_field":true}`),
		[]byte(`{"tau":18446744073709551615}`),
		[]byte(`{"dataset":"x","fds":"A->B"}{"trailing":"object"}`),
		[]byte(`null`),
		[]byte(``),
		[]byte(`[{"dataset":"x"}]`),
		[]byte("{\"dataset\":\"\xff\xfe\"}"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeRepairRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted requests must survive a marshal round trip: the server
		// logs and echoes request fields, so re-encoding cannot fail.
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request fails to re-marshal: %v", err)
		}
		again, err := decodeRepairRequest(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("re-marshaled request fails to decode: %v", err)
		}
		if req.Dataset != again.Dataset || req.FDs != again.FDs ||
			(req.Tau == nil) != (again.Tau == nil) || (req.TauHigh == nil) != (again.TauHigh == nil) {
			t.Fatalf("round trip changed the request: %+v vs %+v", req, again)
		}
	})
}

func FuzzUploadCSV(f *testing.F) {
	seeds := [][]byte{
		[]byte("A,B\n1,2\n"),
		[]byte("City,ZIP,State\nSpringfield,62701,IL\n"),
		[]byte("A\n\n"),
		[]byte("A,B\n\"x,y\",z\n"),
		[]byte("A,A\n1,2\n"),
		[]byte(",\n,\n"),
		[]byte("A,B\n1\n"),
		[]byte("A,B\r\n1,2\r\n"),
		[]byte("\"unclosed\n"),
		[]byte("A;B\n1;2\n"),
		[]byte{0xff, 0xfe, 0x00, 'A'},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	srv := New(Options{})
	var n int
	f.Fuzz(func(t *testing.T, data []byte) {
		// Drive the real handler: the fuzzed CSV rides inside the upload
		// body exactly as a client would send it.
		n++
		name := fmt.Sprintf("fz%d", n)
		body, err := json.Marshal(registerRequest{Name: name, CSV: string(data)})
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/datasets", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)

		switch rec.Code {
		case http.StatusCreated:
			// Registration succeeded: the dataset must be queryable and
			// agree with a direct parse of the (possibly UTF-8-sanitized)
			// upload payload.
			var info DatasetInfo
			if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
				t.Fatalf("201 with undecodable body %q: %v", rec.Body, err)
			}
			var up registerRequest
			if err := json.Unmarshal(body, &up); err != nil {
				t.Fatal(err)
			}
			in, err := relatrust.ReadCSV(strings.NewReader(up.CSV))
			if err != nil {
				t.Fatalf("server accepted CSV a direct parse rejects: %v", err)
			}
			if info.Tuples != in.N() || len(info.Attributes) != in.Schema.Width() {
				t.Fatalf("registered shape %dx%d, direct parse %dx%d",
					info.Tuples, len(info.Attributes), in.N(), in.Schema.Width())
			}
			getReq := httptest.NewRequest(http.MethodGet, "/v1/datasets/"+name, nil)
			getRec := httptest.NewRecorder()
			srv.ServeHTTP(getRec, getReq)
			if getRec.Code != http.StatusOK {
				t.Fatalf("registered dataset not retrievable: %d", getRec.Code)
			}
			delReq := httptest.NewRequest(http.MethodDelete, "/v1/datasets/"+name, nil)
			delRec := httptest.NewRecorder()
			srv.ServeHTTP(delRec, delReq)
			if delRec.Code != http.StatusNoContent {
				t.Fatalf("cleanup delete failed: %d", delRec.Code)
			}
		default:
			// Rejected: the error must be a structured body with a code.
			var eb ErrorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error.Code == "" {
				t.Fatalf("status %d with unstructured body %q", rec.Code, rec.Body)
			}
		}
	})
}
