package server

// End-to-end tests of the streaming /v1/repair endpoint — the acceptance
// criteria of the serving layer:
//
//   - rows stream incrementally: the first NDJSON row is read by the
//     client while the sweep is provably still mid-flight (held at a
//     progress gate);
//   - the streamed rows are byte-identical, in content and order, to the
//     frames an in-process caller builds from Repairer.Frontier;
//   - a client disconnect mid-sweep cancels the sweep, frees all
//     goroutines, and leaves the dataset's shared session serving
//     correct follow-up requests;
//   - SSE framing carries the same payloads;
//   - the per-dataset semaphore bounds concurrent sweeps.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"relatrust"

	"relatrust/internal/report"
	"relatrust/internal/testkit"
)

// paperCSV is the running example of the paper's Figures 2-3: its
// frontier has three trust levels, so a sweep gated at the second level
// still has real search work left — which is what the cancellation tests
// need between the gate and the end of the sweep.
const paperCSV = `A,B,C,D
1,1,1,1
1,2,1,3
2,2,1,1
2,3,4,3
`

const paperFDs = "A->B; C->D"

// registerPaper registers the streaming fixture dataset.
func registerPaper(t *testing.T, base string) {
	t.Helper()
	resp := postJSON(t, base+"/v1/datasets", registerRequest{Name: "paper", CSV: paperCSV})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
}

// frontierFrames is the in-process oracle: the exact JSON lines the
// server must stream for (paperCSV, paperFDs, seed).
func frontierFrames(t *testing.T, seed int64) []string {
	t.Helper()
	in, err := relatrust.ReadCSV(strings.NewReader(paperCSV))
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := relatrust.ParseFDs(in.Schema, paperFDs)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := relatrust.NewRepairer(in, sigma, relatrust.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	level := 0
	for r, err := range rp.Frontier(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		level++
		raw, err := json.Marshal(frontierFrame{Row: report.RowOf(in, level, r)})
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(raw))
	}
	if len(lines) < 3 {
		t.Fatalf("fixture frontier has %d points; the streaming tests need ≥ 3", len(lines))
	}
	return lines
}

// repairBody builds the request body for the fixture sweep.
func repairBody(t *testing.T, seed int64) *bytes.Reader {
	t.Helper()
	raw, err := json.Marshal(RepairRequest{Dataset: "paper", FDs: paperFDs, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(raw)
}

// gateAtSecondTau installs an observer callback that blocks the sweeping
// goroutine at the second finished trust level until release is closed.
// At that gate the first row has already been written and flushed (the
// facade yields each point before the search continues), while the sweep
// itself is provably unfinished.
func gateAtSecondTau(obs *observer) (reached <-chan struct{}, release chan<- struct{}) {
	reachedC := make(chan struct{})
	releaseC := make(chan struct{})
	finished := 0
	obs.set(func(_ string, ev relatrust.ProgressEvent) {
		if ev.Kind != relatrust.ProgressTauFinished {
			return
		}
		finished++
		if finished == 2 {
			close(reachedC)
			<-releaseC
		}
	})
	return reachedC, releaseC
}

// TestRepairStreamsIncrementally is the acceptance test: the first row is
// observed by the HTTP client strictly before the sweep completes, and the
// full stream is byte-identical in content and order to the in-process
// frontier.
func TestRepairStreamsIncrementally(t *testing.T) {
	want := frontierFrames(t, 9)
	ts, _, obs := newTestServer(t, Options{})
	registerPaper(t, ts.URL)

	reached, release := gateAtSecondTau(obs)
	defer obs.set(nil)

	resp, err := http.Post(ts.URL+"/v1/repair", "application/json", repairBody(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	// Read the first row while the sweep is held at the gate: the gate
	// sits before the second row's yield and before stream completion, so
	// a successful read here proves the row traveled mid-sweep.
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading first streamed row: %v", err)
	}
	select {
	case <-reached:
	case <-time.After(5 * time.Second):
		t.Fatal("sweep never reached the second trust level")
	}
	// The sweep is still blocked at the gate; only now let it finish.
	close(release)

	got := []string{strings.TrimSuffix(first, "\n")}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			break
		}
		got = append(got, strings.TrimSuffix(line, "\n"))
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d rows, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d:\n  streamed %s\n  want     %s", i, got[i], want[i])
		}
	}
}

// TestRepairStreamCancelMidSweep: dropping the connection mid-sweep
// cancels the search, returns every goroutine to baseline, and leaves the
// shared session correct for a follow-up request.
func TestRepairStreamCancelMidSweep(t *testing.T) {
	want := frontierFrames(t, 9)
	ts, srv, obs := newTestServer(t, Options{})
	registerPaper(t, ts.URL)
	client := ts.Client()

	// Warm the dataset (and the connection pool) so the baseline below
	// reflects an idle-but-warm server.
	resp, err := client.Post(ts.URL+"/v1/repair", "application/json", repairBody(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	all, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if n := bytes.Count(all, []byte("\n")); n != len(want) {
		t.Fatalf("warm-up streamed %d rows, want %d", n, len(want))
	}
	client.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	reached, release := gateAtSecondTau(obs)
	defer obs.set(nil)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/repair", repairBody(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading first streamed row: %v", err)
	}
	select {
	case <-reached:
	case <-time.After(5 * time.Second):
		t.Fatal("sweep never reached the second trust level")
	}
	// Disconnect while the sweep is provably mid-flight. The brief pause
	// lets the server's connection reader observe the close and cancel
	// the request context before the sweep resumes; the remaining trust
	// level then runs straight into the cancelled context.
	cancel()
	resp.Body.Close()
	time.Sleep(50 * time.Millisecond)
	close(release)

	// The server records the abandoned sweep as cancelled.
	deadline := time.Now().Add(5 * time.Second)
	for {
		d := srv.lookup("paper").statz()
		if d.SweepsCancelled == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancelled sweep never recorded: %+v", d)
		}
		time.Sleep(5 * time.Millisecond)
	}
	client.CloseIdleConnections()
	testkit.WaitGoroutineBaseline(t, baseline)

	// The shared session survived: a follow-up sweep over the same
	// dataset streams the full, identical frontier.
	obs.set(nil)
	resp, err = client.Post(ts.URL+"/v1/repair", "application/json", repairBody(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var got []string
	for sc.Scan() {
		got = append(got, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("post-cancel sweep streamed %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("post-cancel row %d:\n  streamed %s\n  want     %s", i, got[i], want[i])
		}
	}
	// The cancelled fork went back to the shared engine: builds stayed at
	// one while acquires kept growing.
	d := srv.lookup("paper").statz()
	if d.SessionBuilds < 1 || d.SessionAcquires <= d.SessionBuilds {
		t.Errorf("session counters after cancel: %+v", d)
	}
}

// TestRepairRangeValidation: malformed τ ranges are pre-stream 400s, not
// in-band "internal" errors behind a committed 200.
func TestRepairRangeValidation(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	registerPaper(t, ts.URL)

	post := func(req RepairRequest) *http.Response {
		t.Helper()
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/repair", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	two := 2
	resp := post(RepairRequest{Dataset: "paper", FDs: paperFDs, TauLow: 5, TauHigh: &two})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)
	// tau_low above δP (= 4 on this fixture) with no tau_high.
	resp = post(RepairRequest{Dataset: "paper", FDs: paperFDs, TauLow: 100})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)
	resp = post(RepairRequest{Dataset: "paper", FDs: paperFDs, TauLow: -1})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)

	// A valid sub-range still streams (τ ∈ [0, 2] covers the two relaxed
	// levels of the paper fixture).
	resp = post(RepairRequest{Dataset: "paper", FDs: paperFDs, TauHigh: &two})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid sub-range: status %d", resp.StatusCode)
	}
	rows := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"error"`) {
			t.Fatalf("sub-range stream error: %s", sc.Text())
		}
		rows++
	}
	if rows == 0 {
		t.Error("valid sub-range streamed no rows")
	}
}

// TestRepairStreamSSE: the same sweep over Server-Sent Events framing —
// repair events carry exactly the NDJSON payloads, and the stream ends
// with a done event carrying the row count.
func TestRepairStreamSSE(t *testing.T) {
	want := frontierFrames(t, 9)
	ts, _, _ := newTestServer(t, Options{})
	registerPaper(t, ts.URL)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/repair", repairBody(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}

	var events []string
	var datas []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			events = append(events, strings.TrimPrefix(line, "event: "))
		case strings.HasPrefix(line, "data: "):
			datas = append(datas, strings.TrimPrefix(line, "data: "))
		case line == "":
		default:
			t.Errorf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(want)+1 || len(datas) != len(events) {
		t.Fatalf("%d events / %d data lines for %d rows", len(events), len(datas), len(want))
	}
	for i := range want {
		if events[i] != "repair" {
			t.Errorf("event %d = %q", i, events[i])
		}
		if datas[i] != want[i] {
			t.Errorf("event %d payload:\n  streamed %s\n  want     %s", i, datas[i], want[i])
		}
	}
	if last := events[len(events)-1]; last != "done" {
		t.Errorf("terminal event = %q, want done", last)
	}
	var done struct {
		Rows int `json:"rows"`
	}
	if err := json.Unmarshal([]byte(datas[len(datas)-1]), &done); err != nil || done.Rows != len(want) {
		t.Errorf("done payload %q (err %v), want rows=%d", datas[len(datas)-1], err, len(want))
	}
}

// TestRepairStreamDeadline: a server-side timeout_ms deadline aborts the
// sweep with an in-band deadline_exceeded frame, and the sweep counts as
// cancelled, not finished.
func TestRepairStreamDeadline(t *testing.T) {
	ts, srv, obs := newTestServer(t, Options{})
	registerPaper(t, ts.URL)

	// Hold the sweep at its very first progress event until the 5 ms
	// deadline has certainly expired: the next context check fails.
	obs.set(func(_ string, ev relatrust.ProgressEvent) {
		if ev.Kind == relatrust.ProgressSweepStarted {
			time.Sleep(50 * time.Millisecond)
		}
	})
	defer obs.set(nil)

	raw, err := json.Marshal(RepairRequest{Dataset: "paper", FDs: paperFDs, TimeoutMS: 5})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/repair", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sawDeadline bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var frame struct {
			Error *ErrorDetail `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &frame); err != nil {
			t.Fatalf("non-JSON frame %q: %v", sc.Text(), err)
		}
		if frame.Error != nil {
			if frame.Error.Code != codeDeadline {
				t.Errorf("in-band error code = %q, want %q", frame.Error.Code, codeDeadline)
			}
			sawDeadline = true
		}
	}
	if !sawDeadline {
		t.Fatal("stream ended without the in-band deadline frame")
	}
	d := srv.lookup("paper").statz()
	if d.SweepsCancelled != 1 || d.SweepsFinished != 0 {
		t.Errorf("deadline sweep counted as %+v", d)
	}
}

// TestSweepShedding: with MaxSweepsPerDataset=1, a second sweep finding
// the slot held is shed immediately — 429 overloaded with a Retry-After
// header, never queued — and succeeds on retry once the slot frees up.
func TestSweepShedding(t *testing.T) {
	ts, srv, obs := newTestServer(t, Options{MaxSweepsPerDataset: 1})
	registerPaper(t, ts.URL)

	reached, release := gateAtSecondTau(obs)
	defer obs.set(nil)

	// First sweep: acquire the only slot and park at the gate.
	resp1, err := http.Post(ts.URL+"/v1/repair", "application/json", repairBody(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	defer resp1.Body.Close()
	select {
	case <-reached:
	case <-time.After(5 * time.Second):
		t.Fatal("first sweep never reached the gate")
	}

	// Second sweep: shed with a proper status (not in-band), carrying the
	// retry hint.
	resp2, err := http.Post(ts.URL+"/v1/repair", "application/json", repairBody(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("shed response has no Retry-After header")
	}
	wantErrorCode(t, resp2, http.StatusTooManyRequests, codeOverloaded)

	d := srv.lookup("paper").statz()
	if d.ActiveSweeps != 1 {
		t.Errorf("active sweeps = %d while the gate is held", d.ActiveSweeps)
	}
	if d.SweepsStarted != 1 {
		t.Errorf("the shed sweep started anyway: %+v", d)
	}
	if d.SweepsShed != 1 {
		t.Errorf("sweeps_shed = %d, want 1", d.SweepsShed)
	}

	close(release)
	// The first sweep completes normally once released.
	var rows int
	sc := bufio.NewScanner(resp1.Body)
	for sc.Scan() {
		rows++
	}
	if rows < 2 {
		t.Errorf("first sweep streamed %d rows", rows)
	}

	// With the slot free again, the retry is admitted and streams.
	resp3, err := http.Post(ts.URL+"/v1/repair", "application/json", repairBody(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("retry status = %d, want 200", resp3.StatusCode)
	}
	rows = 0
	sc = bufio.NewScanner(resp3.Body)
	for sc.Scan() {
		rows++
	}
	if rows < 2 {
		t.Errorf("retried sweep streamed %d rows", rows)
	}
}

// TestGlobalSweepCap: the cross-dataset in-flight cap sheds even when the
// target dataset's own semaphore has room.
func TestGlobalSweepCap(t *testing.T) {
	ts, _, obs := newTestServer(t, Options{MaxSweepsPerDataset: 2, MaxConcurrentSweeps: 1})
	registerPaper(t, ts.URL)

	reached, release := gateAtSecondTau(obs)
	defer obs.set(nil)

	resp1, err := http.Post(ts.URL+"/v1/repair", "application/json", repairBody(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	defer resp1.Body.Close()
	select {
	case <-reached:
	case <-time.After(5 * time.Second):
		t.Fatal("first sweep never reached the gate")
	}

	resp2, err := http.Post(ts.URL+"/v1/repair", "application/json", repairBody(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	wantErrorCode(t, resp2, http.StatusTooManyRequests, codeOverloaded)

	close(release)
	sc := bufio.NewScanner(resp1.Body)
	for sc.Scan() {
	}
}
