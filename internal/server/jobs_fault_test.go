//go:build faultinject

package server

// Fault-injection tests for the durable job tier (go test -tags
// faultinject): record-write failures roll submissions back, checkpoint
// failures fail the job (not the process), resume-load failures skip
// records at boot, and — the crash acceptance test — a daemon that dies
// mid-sweep with its terminal record unwritten resumes from the last
// checkpointed τ with a byte-identical stream.

import (
	"errors"
	"net/http"
	"sync/atomic"
	"testing"

	"relatrust/internal/faultinject"
)

// TestFaultJobRecordWriteFails: when the initial record cannot be
// persisted the submission aborts with 500 storage, nothing is admitted
// (the slot frees), and the same submission succeeds once the fault
// clears.
func TestFaultJobRecordWriteFails(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	ts, srv, _ := newJobServer(t, "", t.TempDir(), Options{})
	registerPaper(t, ts.URL)

	faultinject.Set(faultinject.JobRecordWrite, func() error {
		return errors.New("injected: job record unwritable")
	})
	resp := postJSON(t, ts.URL+"/v1/jobs", jobRequest(9))
	wantErrorCode(t, resp, http.StatusInternalServerError, codeStorage)

	var list struct {
		Jobs []JobInfo `json:"jobs"`
	}
	lresp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, lresp, &list)
	if len(list.Jobs) != 0 {
		t.Fatalf("failed submission left %d jobs in the registry", len(list.Jobs))
	}
	if d := srv.lookup("paper").statz(); d.ActiveSweeps != 0 {
		t.Fatalf("failed submission leaked %d sweep slots", d.ActiveSweeps)
	}

	faultinject.Reset()
	info, status := submitJob(t, ts.URL, jobRequest(9))
	if status != http.StatusCreated {
		t.Fatalf("post-fault submit: status %d", status)
	}
	waitJob(t, ts.URL, info.ID, func(i JobInfo) bool { return i.State == "completed" }, "completed")
}

// TestFaultJobCheckpointFails: a result-log append failure fails the job
// with the storage code — followers get the structured error, the slot
// frees, the process stays up — and resubmission after the fault clears
// restarts the sweep to a full, oracle-identical frontier.
func TestFaultJobCheckpointFails(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	want := frontierFrames(t, 9)
	ts, srv, _ := newJobServer(t, "", t.TempDir(), Options{})
	registerPaper(t, ts.URL)

	faultinject.Set(faultinject.JobCheckpoint, func() error {
		return errors.New("injected: checkpoint append failed")
	})
	info, status := submitJob(t, ts.URL, jobRequest(9))
	if status != http.StatusCreated {
		t.Fatalf("submit: status %d", status)
	}
	failed := waitJob(t, ts.URL, info.ID, func(i JobInfo) bool { return i.State == "failed" }, "failed")
	if failed.Error == nil || failed.Error.Code != codeStorage {
		t.Fatalf("failed job error %+v, want %s", failed.Error, codeStorage)
	}
	if rows, terminal := readJobStream(t, ts.URL, info.ID, 0); terminal == nil || terminal.Code != codeStorage || len(rows) != 0 {
		t.Fatalf("failed stream: %d rows, terminal %+v", len(rows), terminal)
	}
	if d := srv.lookup("paper").statz(); d.ActiveSweeps != 0 {
		t.Fatalf("failed sweep leaked %d slots", d.ActiveSweeps)
	}

	faultinject.Reset()
	retry, status := submitJob(t, ts.URL, jobRequest(9))
	if status != http.StatusCreated || retry.ID != info.ID {
		t.Fatalf("resubmit: status %d id %s, want 201 %s (restart, not coalesce)", status, retry.ID, info.ID)
	}
	waitJob(t, ts.URL, info.ID, func(i JobInfo) bool { return i.State == "completed" }, "completed")
	rows, terminal := readJobStream(t, ts.URL, info.ID, 0)
	if terminal != nil || len(rows) != len(want) {
		t.Fatalf("post-fault stream: %d rows, terminal %+v", len(rows), terminal)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("row %d differs after checkpoint-fault restart", i)
		}
	}
}

// TestFaultJobResumeLoadSkips: an I/O error while loading job records at
// boot skips them without failing the boot; the next recovery picks the
// jobs up intact.
func TestFaultJobResumeLoadSkips(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dataDir, jobsDir := t.TempDir(), t.TempDir()
	ts1, _, _ := newJobServer(t, dataDir, jobsDir, Options{})
	registerPaper(t, ts1.URL)
	info, _ := submitJob(t, ts1.URL, jobRequest(9))
	done := waitJob(t, ts1.URL, info.ID, func(i JobInfo) bool { return i.State == "completed" }, "completed")
	ts1.Close()

	faultinject.Set(faultinject.JobResumeLoad, func() error {
		return errors.New("injected: transient read failure")
	})
	ts2, srv2, _ := newJobServer(t, dataDir, jobsDir, Options{})
	if n, err := srv2.RecoverJobs(); err != nil || n != 0 {
		t.Fatalf("RecoverJobs under load faults = (%d, %v), want (0, nil)", n, err)
	}
	resp, err := http.Get(ts2.URL + "/v1/jobs/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	wantErrorCode(t, resp, http.StatusNotFound, codeUnknownJob)

	// Skipped, not quarantined: the record recovers once the fault clears.
	faultinject.Reset()
	if n, err := srv2.RecoverJobs(); err != nil || n != 0 {
		t.Fatalf("post-fault RecoverJobs = (%d, %v), want (0, nil): the job is terminal", n, err)
	}
	got := getJob(t, ts2.URL, info.ID)
	if got.State != "completed" || got.Rows != done.Rows {
		t.Fatalf("recovered job %+v, want completed with %d rows", got, done.Rows)
	}
}

// TestFaultCrashResumeByteIdentical is the crash acceptance test: the
// sweep dies after two checkpointed rows AND the terminal record write
// fails — on disk that is indistinguishable from SIGKILL mid-sweep (a
// "running" record plus two durable frames). A second server over the
// same directories resumes from the last checkpointed τ and its full
// stream is byte-identical to an uninterrupted run.
func TestFaultCrashResumeByteIdentical(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	want := frontierFrames(t, 9)
	dataDir, jobsDir := t.TempDir(), t.TempDir()
	ts1, _, _ := newJobServer(t, dataDir, jobsDir, Options{})
	registerPaper(t, ts1.URL)

	// Checkpoint 1 and 2 land; the third append "crashes". Every record
	// write after the initial "running" one fails too, so the terminal
	// state never reaches disk — exactly a process killed mid-sweep.
	var checkpoints, records atomic.Int64
	faultinject.Set(faultinject.JobCheckpoint, func() error {
		if checkpoints.Add(1) >= 3 {
			return errors.New("injected: crash during third checkpoint")
		}
		return nil
	})
	faultinject.Set(faultinject.JobRecordWrite, func() error {
		if records.Add(1) >= 2 {
			return errors.New("injected: crash before terminal record")
		}
		return nil
	})
	info, status := submitJob(t, ts1.URL, jobRequest(9))
	if status != http.StatusCreated {
		t.Fatalf("submit: status %d", status)
	}
	crashed := waitJob(t, ts1.URL, info.ID, func(i JobInfo) bool { return i.State == "failed" }, "failed")
	if crashed.Rows != 2 {
		t.Fatalf("crashed with %d checkpointed rows, want 2", crashed.Rows)
	}
	ts1.Close()
	faultinject.Reset()

	ts2, srv2, _ := newJobServer(t, dataDir, jobsDir, Options{})
	n, err := srv2.RecoverJobs()
	if err != nil || n != 1 {
		t.Fatalf("RecoverJobs = (%d, %v), want 1 resumed: the durable record still says running", n, err)
	}
	waitJob(t, ts2.URL, info.ID, func(i JobInfo) bool { return i.State == "completed" }, "completed")
	rows, terminal := readJobStream(t, ts2.URL, info.ID, 0)
	if terminal != nil {
		t.Fatalf("resumed stream terminal %+v", terminal)
	}
	if len(rows) != len(want) {
		t.Fatalf("resumed stream has %d rows, want %d", len(rows), len(want))
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("row %d:\n  resumed %s\n  want    %s", i, rows[i], want[i])
		}
	}
	if got := srv2.statzBody().Jobs.Resumed; got != 1 {
		t.Errorf("resumed counter = %d, want 1", got)
	}
}
