package server

// PATCH /v1/datasets/{name}/rows: the live mutation endpoint. A batch of
// row operations is applied atomically as one new generation — any
// invalid op rejects the whole batch and nothing changes. With a store
// attached the batch writes through before it commits (generation sidecar
// first, then the snapshot — see store.SaveGeneration for the ordering
// rationale), so a storage failure aborts the batch and a restart never
// serves pre-mutation rows under a post-mutation generation. Sweeps
// running mid-batch keep streaming their pinned snapshot; the next sweep
// sees the new rows.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"relatrust"
)

// mutateOp is one wire row operation. Values addresses cells by attribute
// name; insert and update must provide every attribute of the schema.
type mutateOp struct {
	// Op is "insert", "update", or "delete".
	Op string `json:"op"`
	// Row is the target row (update/delete). Indices address the instance
	// as left by the preceding ops of the batch: inserts append, deletes
	// swap-remove (the last row takes the deleted row's index).
	Row *int `json:"row,omitempty"`
	// Values is the full tuple (insert/update), keyed by attribute name.
	Values map[string]string `json:"values,omitempty"`
}

// mutateRequest is the body of PATCH /v1/datasets/{name}/rows.
type mutateRequest struct {
	Ops []mutateOp `json:"ops"`
}

// mutateMove reports one swap-remove renumbering.
type mutateMove struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// mutateResponse reports what the committed batch did.
type mutateResponse struct {
	Generation        int64        `json:"generation"`
	Applied           int          `json:"applied"`
	Rows              int          `json:"rows"`
	ComponentsDirtied int          `json:"components_dirtied"`
	Moves             []mutateMove `json:"moves,omitempty"`
}

// decodeRowOps translates the wire batch into facade ops against the
// schema. Shape errors (unknown op, missing row or values, unknown or
// missing attribute) are reported with the op's index; range errors are
// left to the live tier's own validation.
func decodeRowOps(schema *relatrust.Schema, ops []mutateOp) ([]relatrust.RowOp, error) {
	out := make([]relatrust.RowOp, 0, len(ops))
	tupleOf := func(i int, values map[string]string) (relatrust.Tuple, error) {
		if len(values) != schema.Width() {
			return nil, fmt.Errorf("op %d: values must name all %d attributes (got %d)", i, schema.Width(), len(values))
		}
		t := make(relatrust.Tuple, schema.Width())
		for name, v := range values {
			a := schema.Index(name)
			if a < 0 {
				return nil, fmt.Errorf("op %d: unknown attribute %q", i, name)
			}
			t[a] = relatrust.Const(v)
		}
		return t, nil
	}
	for i, op := range ops {
		switch op.Op {
		case "insert":
			t, err := tupleOf(i, op.Values)
			if err != nil {
				return nil, err
			}
			out = append(out, relatrust.RowOp{Kind: relatrust.RowInsert, Tuple: t})
		case "update":
			if op.Row == nil {
				return nil, fmt.Errorf("op %d: update needs a row", i)
			}
			t, err := tupleOf(i, op.Values)
			if err != nil {
				return nil, err
			}
			out = append(out, relatrust.RowOp{Kind: relatrust.RowUpdate, Row: *op.Row, Tuple: t})
		case "delete":
			if op.Row == nil {
				return nil, fmt.Errorf("op %d: delete needs a row", i)
			}
			out = append(out, relatrust.RowOp{Kind: relatrust.RowDelete, Row: *op.Row})
		default:
			return nil, fmt.Errorf("op %d: unknown op %q (insert, update, or delete)", i, op.Op)
		}
	}
	return out, nil
}

func (s *Server) handleMutateRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d := s.lookup(name)
	if d == nil {
		writeErrorCode(w, http.StatusNotFound, codeUnknownDataset, "dataset %q is not registered", name)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opt.MaxUploadBytes))
	dec.DisallowUnknownFields()
	var req mutateRequest
	if err := dec.Decode(&req); err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "decoding mutation request: %v", err)
		return
	}
	if dec.More() {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "unexpected data after the mutation object")
		return
	}
	if len(req.Ops) == 0 {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "mutation batch has no ops")
		return
	}
	ops, err := decodeRowOps(d.live.Rows().Schema, req.Ops)
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeInvalidOps, "%v", err)
		return
	}

	// Serialize batches per dataset: the write-through below persists the
	// post-batch generation, which is only known if no other batch can
	// commit between our generation read and our commit.
	d.mutMu.Lock()
	defer d.mutMu.Unlock()
	var precommit func(*relatrust.Instance) error
	if s.opt.Store != nil {
		next := d.live.Generation() + 1
		precommit = func(in *relatrust.Instance) error {
			if err := s.opt.Store.SaveGeneration(name, next); err != nil {
				return err
			}
			return s.opt.Store.Save(name, in)
		}
	}
	res, err := d.live.Apply(ops, precommit)
	switch {
	case errors.Is(err, relatrust.ErrInvalidRowOp):
		writeErrorCode(w, http.StatusBadRequest, codeInvalidOps, "%v", err)
		return
	case err != nil:
		// The only other failure is the write-through; nothing committed.
		writeErrorCode(w, http.StatusInternalServerError, codeStorage,
			"persisting mutated dataset %q: %v", name, err)
		return
	}
	resp := mutateResponse{
		Generation:        res.Generation,
		Applied:           res.Applied,
		Rows:              res.NewRows,
		ComponentsDirtied: res.ComponentsDirtied,
	}
	for _, m := range res.Moves {
		resp.Moves = append(resp.Moves, mutateMove{From: m.From, To: m.To})
	}
	writeJSON(w, http.StatusOK, resp)
}
