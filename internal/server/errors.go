package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"relatrust"

	"relatrust/internal/jobs"
)

// ErrorBody is the structured JSON error envelope of every non-2xx
// response and every in-band stream error frame.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail names the failure. Code is stable and machine-matchable —
// one code per facade sentinel — while Message is human-readable and may
// change. The optional fields carry the typed wrappers' payloads.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// FD is the offending dependency (schema_mismatch only).
	FD string `json:"fd,omitempty"`
	// Tau is the infeasible budget (no_repair_in_budget only).
	Tau *int `json:"tau,omitempty"`
	// Visited is the search effort at the abort (max_visited only).
	Visited int `json:"visited,omitempty"`
}

// Error codes. The facade sentinels each map to a distinct (code, HTTP
// status) pair; request-shape failures get their own codes so clients can
// tell a malformed request from an infeasible one.
const (
	codeBadRequest       = "bad_request"
	codeBadCSV           = "bad_csv"
	codeBadFDs           = "bad_fds"
	codeUnknownDataset   = "unknown_dataset"
	codeDatasetExists    = "dataset_exists"
	codeUnknownJob       = "unknown_job"
	codeDatasetDeleted   = "dataset_deleted"
	codeDatasetMutated   = "dataset_mutated"
	codeInvalidOps       = "invalid_ops"
	codeEmptyFDSet       = "empty_fd_set"
	codeEmptyInstance    = "empty_instance"
	codeSchemaMismatch   = "schema_mismatch"
	codeNoRepairInBudget = "no_repair_in_budget"
	codeMaxVisited       = "max_visited"
	codeDeadline         = "deadline_exceeded"
	codeCancelled        = "cancelled"
	codeOverloaded       = "overloaded"
	codeShuttingDown     = "shutting_down"
	codeStorage          = "storage"
	codeInternalPanic    = "internal_panic"
	codeInternal         = "internal"
)

// statusClientClosedRequest is nginx's conventional status for a request
// the client abandoned; no one receives the body, but the access log and
// the in-band stream frame stay truthful.
const statusClientClosedRequest = 499

// mapError translates an error out of the relatrust facade (or the
// request's context) into its HTTP status and wire body. Every facade
// sentinel maps to a distinct pair:
//
//	ErrEmptyFDSet       → 400 empty_fd_set
//	ErrEmptyInstance    → 422 empty_instance
//	ErrSchemaMismatch   → 422 schema_mismatch (carries the FD)
//	AttrsRangeError     → 422 schema_mismatch (a discovery attrs restriction
//	                      outside the schema)
//	ErrNoRepairInBudget → 409 no_repair_in_budget (carries τ)
//	ErrMaxVisited       → 503 max_visited (carries the visited count)
//	DeadlineExceeded    → 504 deadline_exceeded
//	Canceled            → 499 cancelled
//	ErrPanic            → 500 internal_panic (stack in the log only)
//
// The schema renders the mismatching FD with attribute names when the
// dataset is known; pass nil otherwise. Unrecognized errors are 500
// internal.
func mapError(err error, schema *relatrust.Schema) (int, ErrorBody) {
	detail := ErrorDetail{Message: err.Error()}
	var status int
	var sm *relatrust.SchemaMismatchError
	var ar *relatrust.AttrsRangeError
	var be *relatrust.BudgetError
	var mv *relatrust.MaxVisitedError
	switch {
	case errors.As(err, &ar):
		// A discovery attrs restriction referencing a column the schema does
		// not have — the same shape mismatch class as a misfit FD.
		status, detail.Code = http.StatusUnprocessableEntity, codeSchemaMismatch
	case errors.As(err, &sm):
		status, detail.Code = http.StatusUnprocessableEntity, codeSchemaMismatch
		if schema != nil && sm.FD.RHS < schema.Width() && sm.FD.LHS.Max() < schema.Width() {
			detail.FD = sm.FD.Format(schema)
		} else {
			detail.FD = sm.FD.String()
		}
	case errors.As(err, &be):
		status, detail.Code = http.StatusConflict, codeNoRepairInBudget
		tau := be.Tau
		detail.Tau = &tau
	case errors.As(err, &mv):
		status, detail.Code = http.StatusServiceUnavailable, codeMaxVisited
		detail.Visited = mv.Stats.Visited
	case errors.Is(err, jobs.ErrDatasetMutated):
		// A recovered job whose dataset moved to a new generation: the
		// checkpointed frontier answers for rows that no longer exist.
		// 409 — resubmit the spec to sweep the current generation.
		status, detail.Code = http.StatusConflict, codeDatasetMutated
	case errors.Is(err, relatrust.ErrEmptyFDSet):
		status, detail.Code = http.StatusBadRequest, codeEmptyFDSet
	case errors.Is(err, relatrust.ErrEmptyInstance):
		status, detail.Code = http.StatusUnprocessableEntity, codeEmptyInstance
	case errors.Is(err, context.DeadlineExceeded):
		status, detail.Code = http.StatusGatewayTimeout, codeDeadline
	case errors.Is(err, context.Canceled):
		status, detail.Code = statusClientClosedRequest, codeCancelled
	case errors.Is(err, relatrust.ErrPanic):
		// A recovered panic: the sweep failed, the process and session did
		// not. The stack went to the log, not the wire.
		status, detail.Code = http.StatusInternalServerError, codeInternalPanic
	default:
		status, detail.Code = http.StatusInternalServerError, codeInternal
	}
	return status, ErrorBody{Error: detail}
}

// writeError sends a structured error response.
func writeError(w http.ResponseWriter, status int, body ErrorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

// writeErrorCode is writeError for request-shape failures with no
// underlying facade error.
func writeErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeError(w, status, ErrorBody{Error: ErrorDetail{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}
