package server

// End-to-end tests of the live mutation tier: PATCH semantics and
// validation, byte-identity of post-mutation repairs with an
// upload-from-scratch dataset, snapshot isolation of a sweep gated
// mid-flight while a batch commits, generation re-addressing of jobs, and
// durability of mutations and generations across a restart.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// patchRows applies a mutation batch over HTTP and returns the response.
func patchRows(t *testing.T, base, name string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPatch,
		fmt.Sprintf("%s/v1/datasets/%s/rows", base, name), bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// mustPatch applies the batch and decodes the success body.
func mustPatch(t *testing.T, base, name string, ops []mutateOp) mutateResponse {
	t.Helper()
	resp := patchRows(t, base, name, mutateRequest{Ops: ops})
	if resp.StatusCode != http.StatusOK {
		var eb ErrorBody
		decodeBody(t, resp, &eb)
		t.Fatalf("patch: status %d, error %+v", resp.StatusCode, eb.Error)
	}
	var out mutateResponse
	decodeBody(t, resp, &out)
	return out
}

// repairLines streams /v1/repair for the request and returns the NDJSON
// data lines (failing on any in-band error frame).
func repairLines(t *testing.T, base string, req RepairRequest) []string {
	t.Helper()
	resp := postJSON(t, base+"/v1/repair", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repair: status %d", resp.StatusCode)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		var eb ErrorBody
		if json.Unmarshal([]byte(line), &eb) == nil && eb.Error.Code != "" {
			t.Fatalf("repair stream error frame: %+v", eb.Error)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// vals builds a full paper-schema tuple for the wire batch.
func vals(a, b, c, d string) map[string]string {
	return map[string]string{"A": a, "B": b, "C": c, "D": d}
}

// paperBatch is the fixture mutation batch over paperCSV, and
// paperMutatedCSV the rows it must leave behind, derived by hand from the
// batch semantics (inserts append, deletes swap-remove — the last row
// takes the deleted row's index — and indices address the instance as
// left by the preceding ops):
//
//	start:   (1,1,1,1) (1,2,1,3) (2,2,1,1) (2,3,4,3)
//	delete 0: (2,3,4,3) (1,2,1,3) (2,2,1,1)      [move 3→0]
//	insert:   (2,3,4,3) (1,2,1,3) (2,2,1,1) (3,1,1,2)
//	update 1: (2,3,4,3) (1,2,4,1) (2,2,1,1) (3,1,1,2)
func paperBatch() []mutateOp {
	row1 := 1
	row0 := 0
	return []mutateOp{
		{Op: "delete", Row: &row0},
		{Op: "insert", Values: vals("3", "1", "1", "2")},
		{Op: "update", Row: &row1, Values: vals("1", "2", "4", "1")},
	}
}

const paperMutatedCSV = `A,B,C,D
2,3,4,3
1,2,4,1
2,2,1,1
3,1,1,2
`

// TestMutateThenRepairMatchesFreshUpload is the serving-layer oracle: a
// PATCHed dataset must answer /v1/repair byte-identically to a dataset
// uploaded from scratch with the post-mutation rows — same NDJSON, same
// order — because the incremental state behind it is supposed to be
// indistinguishable from a rebuild.
func TestMutateThenRepairMatchesFreshUpload(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	registerPaper(t, ts.URL)

	res := mustPatch(t, ts.URL, "paper", paperBatch())
	if res.Generation != 1 || res.Applied != 3 || res.Rows != 4 {
		t.Fatalf("patch result = %+v, want generation 1, applied 3, rows 4", res)
	}
	if len(res.Moves) != 1 || res.Moves[0] != (mutateMove{From: 3, To: 0}) {
		t.Fatalf("moves = %+v, want [{3 0}]", res.Moves)
	}

	resp := postJSON(t, ts.URL+"/v1/datasets", registerRequest{Name: "fresh", CSV: paperMutatedCSV})
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register fresh: status %d", resp.StatusCode)
	}

	live := repairLines(t, ts.URL, RepairRequest{Dataset: "paper", FDs: paperFDs, Seed: 9})
	want := repairLines(t, ts.URL, RepairRequest{Dataset: "fresh", FDs: paperFDs, Seed: 9})
	if len(live) != len(want) {
		t.Fatalf("mutated dataset streamed %d rows, fresh upload %d", len(live), len(want))
	}
	for i := range want {
		if live[i] != want[i] {
			t.Errorf("row %d:\n  mutated %s\n  fresh   %s", i, live[i], want[i])
		}
	}

	// The same must hold for a second batch over the already-warm state.
	row2 := 2
	mustPatch(t, ts.URL, "paper", []mutateOp{{Op: "delete", Row: &row2}})
	mustPatch(t, ts.URL, "fresh", []mutateOp{{Op: "delete", Row: &row2}})
	live = repairLines(t, ts.URL, RepairRequest{Dataset: "paper", FDs: paperFDs, Seed: 9})
	want = repairLines(t, ts.URL, RepairRequest{Dataset: "fresh", FDs: paperFDs, Seed: 9})
	for i := range want {
		if i >= len(live) || live[i] != want[i] {
			t.Fatalf("after second batch, row %d diverged", i)
		}
	}
}

// TestMutateMidSweepIsolation pins the snapshot contract on the wire: a
// sweep gated mid-flight while a PATCH commits keeps streaming the
// pre-mutation frontier byte-for-byte, and the very next sweep answers
// for the new rows.
func TestMutateMidSweepIsolation(t *testing.T) {
	want := frontierFrames(t, 9)
	ts, srv, obs := newTestServer(t, Options{})
	registerPaper(t, ts.URL)

	reached, release := gateAtSecondTau(obs)
	type result struct {
		lines []string
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/repair", "application/json", repairBody(t, 9))
		if err != nil {
			got <- result{}
			return
		}
		defer resp.Body.Close()
		var lines []string
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		got <- result{lines: lines}
	}()
	<-reached
	// The sweep is provably mid-flight; commit a batch under it.
	res := mustPatch(t, ts.URL, "paper", paperBatch())
	if res.Generation != 1 {
		t.Fatalf("generation = %d, want 1", res.Generation)
	}
	close(release)
	obs.set(nil)

	r := <-got
	if len(r.lines) != len(want) {
		t.Fatalf("gated sweep streamed %d rows, want %d", len(r.lines), len(want))
	}
	for i := range want {
		if r.lines[i] != want[i] {
			t.Errorf("row %d drifted from the pre-mutation frontier:\n  got  %s\n  want %s", i, r.lines[i], want[i])
		}
	}

	// The next sweep answers for generation 1: identical to a fresh upload
	// of the mutated rows.
	resp := postJSON(t, ts.URL+"/v1/datasets", registerRequest{Name: "fresh", CSV: paperMutatedCSV})
	resp.Body.Close()
	after := repairLines(t, ts.URL, RepairRequest{Dataset: "paper", FDs: paperFDs, Seed: 9})
	fresh := repairLines(t, ts.URL, RepairRequest{Dataset: "fresh", FDs: paperFDs, Seed: 9})
	for i := range fresh {
		if i >= len(after) || after[i] != fresh[i] {
			t.Fatalf("post-mutation sweep row %d diverged from fresh upload", i)
		}
	}
	if st := srv.lookup("paper").statz(); st.Generation != 1 || st.MutationsApplied != 3 {
		t.Errorf("statz generation/mutations = %d/%d, want 1/3", st.Generation, st.MutationsApplied)
	}
}

// TestJobReaddressedAfterMutation is the jobs-generation regression test:
// an identical spec coalesces while the dataset is unchanged, and sweeps
// afresh under a new job ID once a mutation batch commits — the old job's
// replayed frontier stays served, answering for its own generation.
func TestJobReaddressedAfterMutation(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	registerPaper(t, ts.URL)

	first, status := submitJob(t, ts.URL, jobRequest(9))
	if status != http.StatusCreated || first.Generation != 0 {
		t.Fatalf("first submit: status %d, generation %d", status, first.Generation)
	}
	waitJob(t, ts.URL, first.ID, func(i JobInfo) bool { return i.State == "completed" }, "completed")
	same, status := submitJob(t, ts.URL, jobRequest(9))
	if status != http.StatusOK || same.ID != first.ID {
		t.Fatalf("unmutated resubmission: status %d, id %s (want coalesce onto %s)", status, same.ID, first.ID)
	}
	oldRows, terminal := readJobStream(t, ts.URL, first.ID, 0)
	if terminal != nil || len(oldRows) == 0 {
		t.Fatalf("first job stream: %d rows, terminal %+v", len(oldRows), terminal)
	}

	mustPatch(t, ts.URL, "paper", paperBatch())

	second, status := submitJob(t, ts.URL, jobRequest(9))
	if status != http.StatusCreated {
		t.Fatalf("post-mutation resubmission coalesced (status %d) — stale frontier served", status)
	}
	if second.ID == first.ID || second.Generation != 1 {
		t.Fatalf("post-mutation job: id %s generation %d, want a fresh id at generation 1", second.ID, second.Generation)
	}
	waitJob(t, ts.URL, second.ID, func(i JobInfo) bool { return i.State == "completed" }, "completed")

	// Both frontiers stay served, each answering for its own generation.
	replayed, terminal := readJobStream(t, ts.URL, first.ID, 0)
	if terminal != nil || len(replayed) != len(oldRows) {
		t.Fatalf("old job replay after mutation: %d rows, terminal %+v", len(replayed), terminal)
	}
	for i := range oldRows {
		if replayed[i] != oldRows[i] {
			t.Errorf("old job row %d changed after mutation", i)
		}
	}
}

// TestMutateValidation covers the endpoint's error surface; every
// rejection must leave the dataset untouched.
func TestMutateValidation(t *testing.T) {
	ts, srv, _ := newTestServer(t, Options{})
	registerPaper(t, ts.URL)
	row0, row9 := 0, 9

	resp := patchRows(t, ts.URL, "nope", mutateRequest{Ops: []mutateOp{{Op: "delete", Row: &row0}}})
	wantErrorCode(t, resp, http.StatusNotFound, codeUnknownDataset)

	for name, ops := range map[string][]mutateOp{
		"unknown op":        {{Op: "upsert", Row: &row0, Values: vals("1", "1", "1", "1")}},
		"unknown attribute": {{Op: "insert", Values: map[string]string{"A": "1", "B": "1", "C": "1", "Z": "1"}}},
		"missing attribute": {{Op: "insert", Values: map[string]string{"A": "1"}}},
		"update needs row":  {{Op: "update", Values: vals("1", "1", "1", "1")}},
		"row out of range":  {{Op: "delete", Row: &row9}},
		"valid prefix, invalid tail": {
			{Op: "insert", Values: vals("9", "9", "9", "9")},
			{Op: "delete", Row: &row9},
		},
	} {
		resp := patchRows(t, ts.URL, "paper", mutateRequest{Ops: ops})
		wantErrorCode(t, resp, http.StatusBadRequest, codeInvalidOps)
		_ = name
	}

	resp = patchRows(t, ts.URL, "paper", mutateRequest{})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)
	resp, err := http.DefaultClient.Do(func() *http.Request {
		r, _ := http.NewRequest(http.MethodPatch, ts.URL+"/v1/datasets/paper/rows", strings.NewReader("{nope"))
		return r
	}())
	if err != nil {
		t.Fatal(err)
	}
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)

	if st := srv.lookup("paper").statz(); st.Generation != 0 || st.Tuples != 4 || st.MutationsApplied != 0 {
		t.Fatalf("rejected batches changed the dataset: %+v", st)
	}
}

// TestMutateDurableAcrossRestart: committed batches write through —
// generation sidecar first, then the snapshot — so a rebooted server
// rehydrates the mutated rows under the right generation and answers
// byte-identical repairs.
func TestMutateDurableAcrossRestart(t *testing.T) {
	dataDir := t.TempDir()

	ts1, srv1, _ := newJobServer(t, dataDir, "", Options{})
	registerPaper(t, ts1.URL)
	res := mustPatch(t, ts1.URL, "paper", paperBatch())
	if res.Generation != 1 {
		t.Fatalf("generation = %d, want 1", res.Generation)
	}
	before := repairLines(t, ts1.URL, RepairRequest{Dataset: "paper", FDs: paperFDs, Seed: 9})
	ts1.Close()
	srv1.Close()

	ts2, srv2, _ := newJobServer(t, dataDir, "", Options{})
	st := srv2.lookup("paper")
	if st == nil {
		t.Fatal("dataset not rehydrated")
	}
	if g := st.statz(); g.Generation != 1 || g.Tuples != 4 {
		t.Fatalf("rehydrated generation/tuples = %d/%d, want 1/4", g.Generation, g.Tuples)
	}
	after := repairLines(t, ts2.URL, RepairRequest{Dataset: "paper", FDs: paperFDs, Seed: 9})
	if len(after) != len(before) {
		t.Fatalf("rebooted stream has %d rows, want %d", len(after), len(before))
	}
	for i := range before {
		if after[i] != before[i] {
			t.Errorf("row %d changed across restart:\n  before %s\n  after  %s", i, before[i], after[i])
		}
	}
}

// TestRecoveredJobFailsAfterMutation: a job interrupted by shutdown whose
// dataset is mutated before its sweep resumes must fail with
// dataset_mutated — its checkpointed rows answer for rows that no longer
// exist, so resuming over the new generation would splice two frontiers.
func TestRecoveredJobFailsAfterMutation(t *testing.T) {
	dataDir, jobsDir := t.TempDir(), t.TempDir()

	ts1, srv1, obs1 := newJobServer(t, dataDir, jobsDir, Options{})
	registerPaper(t, ts1.URL)
	reached, release := gateAtSecondTau(obs1)
	info, _ := submitJob(t, ts1.URL, jobRequest(9))
	<-reached
	srv1.BeginShutdown()
	close(release)
	obs1.set(nil)
	if _, terminal := readJobStream(t, ts1.URL, info.ID, 0); terminal == nil {
		t.Fatal("interrupted job stream ended cleanly")
	}
	ts1.Close()
	srv1.Close()

	// Reboot, mutate BEFORE recovering jobs (the daemon's Rehydrate →
	// serve → RecoverJobs window, compressed).
	ts2, srv2, _ := newJobServer(t, dataDir, jobsDir, Options{})
	mustPatch(t, ts2.URL, "paper", paperBatch())
	if _, err := srv2.RecoverJobs(); err != nil {
		t.Fatal(err)
	}
	failed := waitJob(t, ts2.URL, info.ID, func(i JobInfo) bool { return i.State == "failed" }, "failed")
	if failed.Error == nil || failed.Error.Code != codeDatasetMutated {
		t.Fatalf("recovered job error = %+v, want %s", failed.Error, codeDatasetMutated)
	}
	// A resubmission addresses the new generation and sweeps cleanly.
	fresh, status := submitJob(t, ts2.URL, jobRequest(9))
	if status != http.StatusCreated || fresh.ID == info.ID || fresh.Generation != 1 {
		t.Fatalf("resubmission: status %d id %s generation %d", status, fresh.ID, fresh.Generation)
	}
	waitJob(t, ts2.URL, fresh.ID, func(i JobInfo) bool { return i.State == "completed" }, "completed")
}
