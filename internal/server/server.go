// Package server implements relatrustd: an HTTP service that serves the
// relative-trust repair spectrum over registered datasets.
//
// # Model
//
// Clients register CSV instances into a dataset registry (POST
// /v1/datasets); each dataset is a relatrust.LiveDataset, so the conflict
// analysis stays warm — and incrementally maintained across row mutations
// — for the dataset's whole lifetime, and every repair request over a hot
// dataset forks the cached state instead of re-scanning the data. Repair
// requests name a dataset plus an FD set and run through the public
// relatrust.Repairer facade:
//
//	POST  /v1/repair               stream the Pareto frontier (NDJSON, or SSE via Accept)
//	POST  /v1/discover             mine FDs from the data and stream each (mode
//	                               discover_then_repair appends a frontier sweep over the mined Σ)
//	POST  /v1/repair/budget        the single repair for one cell-change budget τ
//	POST  /v1/sample               k sampled minimal data-only repairs
//	POST  /v1/violations           violating tuple pairs for an FD set
//	PATCH /v1/datasets/{name}/rows apply a row-mutation batch (insert/update/delete)
//	GET   /healthz                 liveness
//	GET   /statz                   registry and sweep statistics
//	GET   /metrics                 the same counters in Prometheus text format
//
// With Options.Store set the registry is durable: registration writes a
// columnar snapshot through to disk, deletion removes it, and Rehydrate
// reloads every persisted dataset on boot (corrupt snapshots are
// quarantined by the store, never fatal). Row mutations write through
// before they commit, so a restart never resurrects pre-mutation rows.
//
// # Mutations and generations
//
// Each dataset carries a mutation generation, advanced by every committed
// PATCH batch. Sweeps pin the (instance, session, generation) snapshot
// current when they start and finish against it even if mutations land
// mid-sweep — streamed rows always describe one consistent generation,
// stamped on progress events and /statz. Jobs address their generation:
// mutating a dataset re-addresses subsequent submissions (a resubmitted
// spec sweeps afresh) and fails recovered jobs whose generation no longer
// matches (dataset_mutated) instead of resuming them against new rows.
//
// # Streaming
//
// /v1/repair writes one frontier row the moment its trust level finishes:
// the handler ranges over Repairer.Frontier and flushes each NDJSON line
// (or SSE "repair" event) as it is yielded, so a slow sweep shows
// progress and a client can stop reading once it has seen enough of the
// spectrum. An NDJSON stream carries data rows only; an error mid-sweep is
// delivered in-band as a final {"error": ...} line (SSE: an "error"
// event; a successful SSE stream ends with a "done" event). Rows encode
// report.Row — byte-identical to the rows an in-process caller would build
// from the same Frontier sequence.
//
// # Cancellation
//
// Every sweep runs under the request's context: a client disconnect or an
// explicit timeout_ms deadline cancels the FD-modification search through
// the facade's context plumbing, which drains the parallel workers and
// returns the forked analysis to the shared session before the handler
// exits. The shared session is therefore unaffected by abandoned requests
// — the next request over the dataset reuses it as if the cancel never
// happened.
//
// # Concurrency and load shedding
//
// Requests over distinct datasets are independent. Within one dataset a
// counting semaphore (Options.MaxSweepsPerDataset) bounds the number of
// concurrently running sweeps, and Options.MaxConcurrentSweeps bounds
// them globally; a request that finds either saturated is shed
// immediately — 429 with a Retry-After header — rather than queued, so
// overload degrades into fast, honest rejections instead of a convoy.
// Acquired analyses are per-request forks, so concurrent sweeps under the
// bound are safe; the registry itself is guarded by a read-write mutex.
//
// # Panic isolation
//
// A panic anywhere in a request — handler, sweep, or a parallel search
// worker (contained in the search layer and surfaced as a
// relatrust.PanicError) — fails that request only: before the response
// header is committed it becomes a structured 500 internal_panic; after,
// an in-band error frame. The stack goes to the log, the poisoned forked
// state is dropped rather than recycled, and the dataset's shared session
// keeps serving.
//
// # Shutdown
//
// BeginShutdown stops admitting sweeps (503 shutting_down), Drain waits
// for the in-flight ones under a deadline, Close drops the registry;
// Shutdown composes the three for the daemon's signal handler.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"relatrust"

	"relatrust/internal/jobs"
	"relatrust/internal/store"
)

// Options tunes a Server.
type Options struct {
	// MaxSweepsPerDataset bounds concurrently running sweeps (frontier,
	// budget, sample) per dataset; further requests wait. 0 selects 2.
	MaxSweepsPerDataset int
	// MaxUploadBytes caps the request body of dataset registration.
	// 0 selects 32 MiB.
	MaxUploadBytes int64
	// Workers is the default search parallelism for requests that do not
	// set workers themselves. 0 selects the facade default (GOMAXPROCS).
	Workers int
	// Observe, when non-nil, receives every sweep's progress events
	// (relatrust.Options.Progress) tagged with the dataset name. Callbacks
	// run synchronously on the sweeping goroutine — keep them fast. Used
	// for logging, metrics, and by the test harness to pause a sweep at a
	// known point.
	Observe func(dataset string, ev relatrust.ProgressEvent)
	// ObserveDiscovery, when non-nil, receives every discovery run's
	// lattice-level progress (relatrust.DiscoverOptions.Progress) tagged
	// with the dataset name. Same contract as Observe: synchronous on the
	// mining goroutine, keep it fast.
	ObserveDiscovery func(dataset string, level, sets int)
	// MaxConcurrentSweeps caps sweeps running across ALL datasets; a
	// request that finds the cap (or its dataset's semaphore) saturated is
	// shed with 429 + Retry-After instead of queueing. 0 selects 8.
	MaxConcurrentSweeps int
	// Store, when non-nil, makes the registry durable: Rehydrate loads
	// every persisted dataset on boot, registration writes through, and
	// deletion removes the snapshot.
	Store *store.Store
	// JobStore, when non-nil, makes the job tier durable: POST /v1/jobs
	// records and frontier checkpoints persist, and RecoverJobs resumes
	// interrupted sweeps on boot. nil keeps jobs in memory only (they
	// still coalesce and stream, but a restart loses them).
	JobStore *store.JobStore
	// MaxJobResultsBytes bounds the result-log bytes held by terminal
	// jobs; beyond it the oldest terminal jobs are evicted (counted by
	// job_results_evicted_bytes). 0 = unbounded.
	MaxJobResultsBytes int64
	// MaxWarmSessions bounds how many datasets keep a warm session at
	// once; beyond it the least recently swept session is dropped (counted
	// by sessions_evicted) and rebuilt on the dataset's next sweep.
	// 0 = unbounded.
	MaxWarmSessions int
	// Logger receives panic stacks and storage trouble. nil selects
	// slog.Default().
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.MaxSweepsPerDataset <= 0 {
		o.MaxSweepsPerDataset = 2
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 32 << 20
	}
	if o.MaxConcurrentSweeps <= 0 {
		o.MaxConcurrentSweeps = 8
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// Server is the relatrustd HTTP handler: a dataset registry plus the
// repair endpoints. Create one with New and mount it (it implements
// http.Handler).
type Server struct {
	opt   Options
	mux   *http.ServeMux
	start time.Time
	now   func() time.Time // clock hook; tests freeze it for golden output
	log   *slog.Logger

	// inflight is the global sweep cap (load shedding, with the
	// per-dataset semaphores); panics counts recovered handler and stream
	// panics.
	inflight chan struct{}
	panics   atomic.Int64

	// sweeps tracks running sweeps for Drain; draining flips under
	// sweepMu so no sweep starts after a drain began waiting.
	sweepMu  sync.Mutex
	draining bool
	sweeps   sync.WaitGroup

	// jobs owns the durable job tier (POST /v1/jobs).
	jobs *jobs.Manager

	// warmMu guards the warm-session budget (warmCount, warmClock); the
	// per-dataset sess pointer itself lives under the dataset's mu. Lock
	// order: warmMu, then mu, then a dataset's mu.
	warmMu          sync.Mutex
	warmCount       int
	warmClock       int64
	sessionsEvicted atomic.Int64

	mu       sync.RWMutex
	datasets map[string]*dataset
}

// ErrDatasetExists reports a name collision from Register, matched with
// errors.Is (the daemon uses it to skip preloads already rehydrated from
// the store).
var ErrDatasetExists = errors.New("server: dataset already registered")

// ErrShuttingDown reports a sweep refused because shutdown began.
var ErrShuttingDown = errors.New("server: shutting down")

// dataset is one registered instance with its live mutation tier and
// serving statistics.
type dataset struct {
	name string
	// live owns the rows, the mutation generation, and the incrementally
	// maintained repair state; all reads go through its snapshots.
	live *relatrust.LiveDataset
	// sem bounds concurrent sweeps; acquire before any repair work.
	sem chan struct{}
	// mutMu serializes PATCH batches so the write-through can persist the
	// post-batch generation before the batch commits (sweeps never take
	// it — they only snapshot).
	mutMu sync.Mutex

	mu sync.Mutex
	// warm records whether the dataset's live tier currently counts
	// against the warm-session budget; under Options.MaxWarmSessions the
	// least recently swept dataset is evicted (sessUsed is the LRU stamp)
	// back to cold state. In-flight sweeps keep their own snapshot
	// references, so eviction never breaks them.
	warm            bool
	sessUsed        int64
	sweepsStarted   int64
	sweepsFinished  int64
	sweepsCancelled int64
	sweepsFailed    int64
	sweepsShed      int64
	rowsStreamed    int64
	lastHitRate     float64
	// last* component fields describe the conflict-hypergraph
	// decomposition reported by the most recently finished sweep.
	lastComponents         int
	lastLargestComponent   int
	lastComponentsParallel int64
}

// New returns a Server with an empty registry. With Options.Store set,
// call Rehydrate next to load the persisted datasets.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:      opt,
		start:    time.Now(),
		now:      time.Now,
		log:      opt.Logger,
		inflight: make(chan struct{}, opt.MaxConcurrentSweeps),
		datasets: make(map[string]*dataset),
	}
	s.jobs = jobs.New(jobs.Options{
		Store:          opt.JobStore,
		MaxResultBytes: opt.MaxJobResultsBytes,
		Logger:         opt.Logger,
		ErrorCode: func(err error) string {
			_, body := mapError(err, nil)
			return body.Error.Code
		},
	})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/datasets", s.handleRegister)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleGetDataset)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDeleteDataset)
	mux.HandleFunc("PATCH /v1/datasets/{name}/rows", s.handleMutateRows)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("POST /v1/jobs/discover", s.handleSubmitDiscoverJob)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDeleteJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	mux.HandleFunc("POST /v1/repair", s.handleRepair)
	mux.HandleFunc("POST /v1/discover", s.handleDiscover)
	mux.HandleFunc("POST /v1/repair/budget", s.handleBudget)
	mux.HandleFunc("POST /v1/sample", s.handleSample)
	mux.HandleFunc("POST /v1/violations", s.handleViolations)
	s.mux = mux
	return s
}

// ServeHTTP dispatches to the registered routes under the panic-recovery
// middleware: a handler panic that escapes (the streaming path recovers
// its own first — see streamFrontier) is logged with its stack and, when
// the response header is not yet committed, answered with a structured
// 500. The process and every other connection stay up either way.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rw := &recordingWriter{ResponseWriter: w}
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler { // deliberate abort, not a fault
			panic(rec)
		}
		s.panics.Add(1)
		s.log.Error("server: panic in handler",
			"method", r.Method, "path", r.URL.Path,
			"panic", rec, "stack", string(debug.Stack()))
		if !rw.committed {
			writeErrorCode(rw, http.StatusInternalServerError, codeInternalPanic,
				"internal panic while handling the request")
		}
	}()
	s.mux.ServeHTTP(rw, r)
}

// recordingWriter remembers whether the response header was committed, so
// the recovery middleware knows whether a structured 500 can still be
// sent. Unwrap keeps http.ResponseController (flushing) working through
// the wrapper.
type recordingWriter struct {
	http.ResponseWriter
	committed bool
}

func (rw *recordingWriter) WriteHeader(code int) {
	rw.committed = true
	rw.ResponseWriter.WriteHeader(code)
}

func (rw *recordingWriter) Write(b []byte) (int, error) {
	rw.committed = true
	return rw.ResponseWriter.Write(b)
}

func (rw *recordingWriter) Unwrap() http.ResponseWriter { return rw.ResponseWriter }

// DatasetInfo is the wire description of a registered dataset.
type DatasetInfo struct {
	Name       string   `json:"name"`
	Tuples     int      `json:"tuples"`
	Attributes []string `json:"attributes"`
}

func (d *dataset) info() DatasetInfo {
	in := d.live.Rows()
	return DatasetInfo{
		Name:       d.name,
		Tuples:     in.N(),
		Attributes: in.Schema.Names(),
	}
}

// Register adds an instance under the name programmatically (daemon
// preloading and tests; HTTP clients use POST /v1/datasets), writing
// through to the durable store when one is attached: the dataset is
// registered only if its snapshot also landed on disk. The instance must
// not be mutated afterwards — the dataset's shared session aliases it for
// its whole lifetime. A name collision reports ErrDatasetExists.
func (s *Server) Register(name string, in *relatrust.Instance) (DatasetInfo, error) {
	info, err := s.register(name, in, 0)
	if err != nil {
		return DatasetInfo{}, err
	}
	if s.opt.Store != nil {
		if err := s.opt.Store.Save(name, in); err != nil {
			// Roll the in-memory reservation back: a dataset the store
			// could not persist would silently vanish on restart.
			s.mu.Lock()
			delete(s.datasets, name)
			s.mu.Unlock()
			return DatasetInfo{}, fmt.Errorf("server: persisting dataset %q: %w", name, err)
		}
	}
	return info, nil
}

// register inserts into the in-memory registry only (the rehydration path,
// and the first half of Register). generation seeds the live tier: fresh
// registrations start at 0, rehydration passes the persisted value so job
// generation checks survive restarts.
func (s *Server) register(name string, in *relatrust.Instance, generation int64) (DatasetInfo, error) {
	if err := validateDatasetName(name); err != nil {
		return DatasetInfo{}, err
	}
	d := &dataset{
		name: name,
		live: relatrust.NewLiveDatasetAt(in, generation),
		sem:  make(chan struct{}, s.opt.MaxSweepsPerDataset),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.datasets[name]; ok {
		return DatasetInfo{}, fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	s.datasets[name] = d
	return d.info(), nil
}

// Rehydrate loads every dataset persisted in the attached store into the
// registry (no-op without a store) and returns how many it registered.
// Corrupt snapshots were already quarantined by the store; a name that is
// somehow both preloaded and persisted keeps the in-memory one, with a
// log line.
func (s *Server) Rehydrate() (int, error) {
	if s.opt.Store == nil {
		return 0, nil
	}
	loaded, err := s.opt.Store.LoadAll()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, d := range loaded {
		// The generation sidecar is written before the snapshot on every
		// mutation, so the loaded pair is never older than its label; a
		// missing sidecar reads as generation 0 (never mutated).
		gen, err := s.opt.Store.LoadGeneration(d.Name)
		if err != nil {
			s.log.Warn("server: unreadable generation sidecar; treating dataset as fresh",
				"name", d.Name, "err", err)
			gen = 0
		}
		if _, err := s.register(d.Name, d.Instance, gen); err != nil {
			s.log.Warn("server: skipping persisted dataset", "name", d.Name, "err", err)
			continue
		}
		n++
	}
	return n, nil
}

func validateDatasetName(name string) error {
	// The constraints are the union of the registry's and the snapshot
	// store's (names become file stems there), so a dataset never
	// registers in memory but fails to persist on a name technicality.
	if name == "" || len(name) > 128 || strings.ContainsAny(name, "/\\\x00 \t\n") ||
		strings.HasPrefix(name, ".") || strings.Contains(name, ".snap") ||
		strings.Contains(name, ".gen") {
		return fmt.Errorf("server: invalid dataset name %q (non-empty, ≤128 chars, no spaces, slashes, leading dots, .snap, or .gen)", name)
	}
	return nil
}

// lookup returns the dataset, or nil if unregistered.
func (s *Server) lookup(name string) *dataset {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.datasets[name]
}

// registerRequest is the body of POST /v1/datasets: the CSV text is parsed
// header-first, exactly like relatrust.ReadCSV.
type registerRequest struct {
	Name string `json:"name"`
	CSV  string `json:"csv"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxUploadBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req registerRequest
	if err := dec.Decode(&req); err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "decoding register request: %v", err)
		return
	}
	if dec.More() {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "unexpected data after the register object")
		return
	}
	if err := validateDatasetName(req.Name); err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	in, err := relatrust.ReadCSV(strings.NewReader(req.CSV))
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadCSV, "parsing CSV: %v", err)
		return
	}
	info, err := s.Register(req.Name, in)
	switch {
	case errors.Is(err, ErrDatasetExists):
		writeErrorCode(w, http.StatusConflict, codeDatasetExists, "%v", err)
		return
	case err != nil:
		// The write-through to the snapshot store failed; nothing was
		// registered (see Register's rollback).
		writeErrorCode(w, http.StatusInternalServerError, codeStorage, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	infos := make([]DatasetInfo, 0, len(s.datasets))
	for _, d := range s.datasets {
		infos = append(infos, d.info())
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, struct {
		Datasets []DatasetInfo `json:"datasets"`
	}{infos})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	d := s.lookup(r.PathValue("name"))
	if d == nil {
		writeErrorCode(w, http.StatusNotFound, codeUnknownDataset, "dataset %q is not registered", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, d.info())
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.warmMu.Lock()
	s.mu.Lock()
	d, ok := s.datasets[name]
	delete(s.datasets, name)
	if ok {
		d.mu.Lock()
		if d.warm {
			s.warmCount--
		}
		d.mu.Unlock()
	}
	s.mu.Unlock()
	s.warmMu.Unlock()
	if !ok {
		writeErrorCode(w, http.StatusNotFound, codeUnknownDataset, "dataset %q is not registered", name)
		return
	}
	if s.opt.Store != nil {
		// The registry entry is gone either way; a snapshot the store
		// could not remove resurfaces on the next boot, which beats
		// resurrecting the handler's response with an error.
		if err := s.opt.Store.Delete(name); err != nil {
			s.log.Error("server: deleting persisted dataset", "name", name, "err", err)
		}
	}
	// Running jobs over the dataset are cancelled (their followers get a
	// structured dataset_deleted error and the slots free as the sweeps
	// unwind); terminal jobs over it are dropped with their result logs.
	s.jobs.CancelDataset(name)
	// In-flight request sweeps over the dataset keep their references and
	// finish normally; the session is garbage once they do.
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		OK bool `json:"ok"`
	}{true})
}

// beginSweepSlot is the admission decision of the sweeping handlers:
// nil on success (endSweepSlot must follow), ErrShuttingDown once
// BeginShutdown ran, errOverloaded when the global in-flight cap or the
// dataset's semaphore is saturated — the request is shed, never queued.
func (s *Server) beginSweepSlot(d *dataset) error {
	s.sweepMu.Lock()
	if s.draining {
		s.sweepMu.Unlock()
		return ErrShuttingDown
	}
	s.sweeps.Add(1)
	s.sweepMu.Unlock()
	select {
	case s.inflight <- struct{}{}:
	default:
		s.sweeps.Done()
		return errOverloaded
	}
	select {
	case d.sem <- struct{}{}:
	default:
		<-s.inflight
		s.sweeps.Done()
		return errOverloaded
	}
	return nil
}

func (s *Server) endSweepSlot(d *dataset) {
	<-d.sem
	<-s.inflight
	s.sweeps.Done()
}

// errOverloaded marks a shed sweep internally; the wire sees 429
// overloaded with a Retry-After.
var errOverloaded = errors.New("server: sweep capacity saturated")

// snapshotFor pins the dataset's current (instance, session, generation)
// triple for one sweep, marking the dataset warm and most-recently-used.
// The triple is immutable: the sweep finishes against it no matter how
// many mutation batches commit behind it. When warming pushes the count
// over Options.MaxWarmSessions, the least recently used other dataset is
// evicted: it re-pays the conflict analysis on its next sweep, while
// sweeps already holding its snapshots keep their references and finish
// unaffected.
func (s *Server) snapshotFor(d *dataset) (*relatrust.Instance, *relatrust.Session, int64) {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	d.mu.Lock()
	created := !d.warm
	d.warm = true
	s.warmClock++
	d.sessUsed = s.warmClock
	d.mu.Unlock()
	in, sess, gen := d.live.Snapshot()
	if created {
		s.warmCount++
		s.evictWarmLocked(d)
	}
	return in, sess, gen
}

// evictWarmLocked enforces MaxWarmSessions (warmMu held), never evicting
// the dataset just touched.
func (s *Server) evictWarmLocked(keep *dataset) {
	max := s.opt.MaxWarmSessions
	if max <= 0 {
		return
	}
	for s.warmCount > max {
		var victim *dataset
		var victimUsed int64
		s.mu.RLock()
		for _, d := range s.datasets {
			if d == keep {
				continue
			}
			d.mu.Lock()
			if d.warm && (victim == nil || d.sessUsed < victimUsed) {
				victim, victimUsed = d, d.sessUsed
			}
			d.mu.Unlock()
		}
		s.mu.RUnlock()
		if victim == nil {
			return
		}
		victim.mu.Lock()
		victim.warm = false
		victim.mu.Unlock()
		victim.live.Evict()
		s.warmCount--
		s.sessionsEvicted.Add(1)
	}
}

// BeginShutdown stops admitting sweeps: every subsequent repair-family
// request is answered 503 shutting_down. Registration and read endpoints
// keep working so health checks and drain monitoring stay truthful.
// Running jobs are interrupted — not failed: their durable records keep
// saying "running" and the next boot resumes them from their checkpoints —
// so the Drain that follows is not held hostage by long sweeps.
func (s *Server) BeginShutdown() {
	s.sweepMu.Lock()
	s.draining = true
	s.sweepMu.Unlock()
	s.jobs.Shutdown()
}

// Drain blocks until every in-flight sweep finished, or ctx expires
// (returning its cause). Call BeginShutdown first, or new sweeps keep
// extending the wait.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.sweeps.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// Close empties the registry, dropping every shared session. Sessions
// hold no OS resources — sweeps still running keep their forks alive and
// everything is garbage once they return.
func (s *Server) Close() {
	s.mu.Lock()
	s.datasets = make(map[string]*dataset)
	s.mu.Unlock()
}

// Shutdown is the graceful sequence the daemon runs: stop admitting,
// drain in-flight sweeps within ctx, then drop the registry. The drain
// error (deadline exceeded with streams still running) is returned after
// Close so callers can report a dirty shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginShutdown()
	err := s.Drain(ctx)
	s.Close()
	return err
}

// DatasetStatz is the per-dataset block of GET /statz.
type DatasetStatz struct {
	DatasetInfo
	// ActiveSweeps is the number of sweeps currently holding the
	// dataset's semaphore.
	ActiveSweeps  int   `json:"active_sweeps"`
	SweepsStarted int64 `json:"sweeps_started"`
	// SweepsFinished + SweepsCancelled (disconnects, deadlines) +
	// SweepsFailed (MaxVisited, internal faults) accounts for every
	// sweep that is no longer active.
	SweepsFinished  int64 `json:"sweeps_finished"`
	SweepsCancelled int64 `json:"sweeps_cancelled"`
	SweepsFailed    int64 `json:"sweeps_failed"`
	// SweepsShed counts requests answered 429 because the dataset's
	// semaphore or the global in-flight cap was saturated.
	SweepsShed   int64 `json:"sweeps_shed"`
	RowsStreamed int64 `json:"rows_streamed"`
	// PartitionCacheHitRate is the hit rate reported by the most recently
	// finished sweep (0 until one finishes).
	PartitionCacheHitRate float64 `json:"partition_cache_hit_rate"`
	// Components and LargestComponent describe the conflict-hypergraph
	// decomposition of the most recently finished sweep (component count
	// and biggest component's tuple count); ComponentsParallel counts
	// its per-component cover evaluations dispatched across the worker
	// pool. All zero until a sweep finishes or when decomposition was
	// disabled.
	Components         int   `json:"components"`
	LargestComponent   int   `json:"largest_component"`
	ComponentsParallel int64 `json:"components_parallel"`
	// SessionAcquires/SessionBuilds are the shared session's counters:
	// analyses handed out vs built from scratch. A hot dataset shows
	// acquires far above builds.
	SessionAcquires int64 `json:"session_acquires"`
	SessionBuilds   int64 `json:"session_builds"`
	// Generation is the dataset's current mutation generation;
	// MutationsApplied and ComponentsDirtied are the live tier's lifetime
	// counters (ops that changed rows, and conflict components whose
	// memoized cover state a batch invalidated).
	Generation        int64 `json:"generation"`
	MutationsApplied  int64 `json:"mutations_applied"`
	ComponentsDirtied int64 `json:"components_dirtied"`
}

// StoreStatz is the snapshot-store block of GET /statz (present only when
// a store is attached).
type StoreStatz struct {
	Saves       int64 `json:"saves"`
	Loads       int64 `json:"loads"`
	Quarantined int64 `json:"quarantined"`
}

// JobsStatz is the job-tier block of GET /statz.
type JobsStatz struct {
	Active    int `json:"active"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// Resumed counts sweeps restarted from a checkpoint (boot recovery or
	// resubmission of a failed/cancelled job); Coalesced counts
	// submissions answered by an already-known job without a new sweep.
	Resumed   int64 `json:"resumed"`
	Coalesced int64 `json:"coalesced"`
	// CheckpointBytes counts bytes appended to durable result logs;
	// ResultsEvictedBytes counts bytes dropped by MaxJobResultsBytes
	// eviction.
	CheckpointBytes     int64 `json:"checkpoint_bytes"`
	ResultsEvictedBytes int64 `json:"results_evicted_bytes"`
}

// Statz is the body of GET /statz.
type Statz struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Sessions      int     `json:"sessions"`
	// WarmSessions counts datasets currently holding a built session;
	// SessionsEvicted counts sessions dropped by MaxWarmSessions.
	WarmSessions    int   `json:"warm_sessions"`
	SessionsEvicted int64 `json:"sessions_evicted"`
	// PanicsRecovered counts panics contained by the recovery layers —
	// each one failed a single request, not the process.
	PanicsRecovered int64          `json:"panics_recovered"`
	Jobs            JobsStatz      `json:"jobs"`
	Store           *StoreStatz    `json:"store,omitempty"`
	Datasets        []DatasetStatz `json:"datasets"`
}

// statzBody gathers the full statistics snapshot (shared by /statz and
// /metrics).
func (s *Server) statzBody() Statz {
	s.mu.RLock()
	stats := make([]DatasetStatz, 0, len(s.datasets))
	for _, d := range s.datasets {
		stats = append(stats, d.statz())
	}
	s.mu.RUnlock()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
	s.warmMu.Lock()
	warm := s.warmCount
	s.warmMu.Unlock()
	jst := s.jobs.Stats()
	body := Statz{
		UptimeSeconds:   s.now().Sub(s.start).Seconds(),
		Sessions:        len(stats),
		WarmSessions:    warm,
		SessionsEvicted: s.sessionsEvicted.Load(),
		PanicsRecovered: s.panics.Load(),
		Jobs: JobsStatz{
			Active:              jst.Active,
			Completed:           jst.Completed,
			Failed:              jst.Failed,
			Cancelled:           jst.Cancelled,
			Resumed:             jst.Resumed,
			Coalesced:           jst.Coalesced,
			CheckpointBytes:     jst.CheckpointBytes,
			ResultsEvictedBytes: jst.ResultsEvictedBytes,
		},
		Datasets: stats,
	}
	if s.opt.Store != nil {
		st := s.opt.Store.Stats()
		body.Store = &StoreStatz{Saves: st.Saves, Loads: st.Loads, Quarantined: st.Quarantined}
	}
	return body
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statzBody())
}

func (d *dataset) statz() DatasetStatz {
	d.mu.Lock()
	warm := d.warm
	st := DatasetStatz{
		DatasetInfo:           d.info(),
		ActiveSweeps:          len(d.sem),
		SweepsStarted:         d.sweepsStarted,
		SweepsFinished:        d.sweepsFinished,
		SweepsCancelled:       d.sweepsCancelled,
		SweepsFailed:          d.sweepsFailed,
		SweepsShed:            d.sweepsShed,
		RowsStreamed:          d.rowsStreamed,
		PartitionCacheHitRate: d.lastHitRate,
		Components:            d.lastComponents,
		LargestComponent:      d.lastLargestComponent,
		ComponentsParallel:    d.lastComponentsParallel,
	}
	d.mu.Unlock()
	lst := d.live.Stats()
	st.Generation = d.live.Generation()
	st.MutationsApplied = lst.MutationsApplied
	st.ComponentsDirtied = lst.ComponentsDirtied
	// A cold dataset (no sweep yet, or its warm state was evicted) reports
	// zero session counters; the lifetime eviction count lives at the top
	// level.
	if warm {
		_, sess, _ := d.live.Snapshot()
		ss := sess.Stats()
		st.SessionAcquires = ss.Acquires
		st.SessionBuilds = ss.Builds
	}
	return st
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
