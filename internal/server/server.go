// Package server implements relatrustd: an HTTP service that serves the
// relative-trust repair spectrum over registered datasets.
//
// # Model
//
// Clients register CSV instances into a dataset registry (POST
// /v1/datasets); each dataset keeps one shared relatrust.Session warm for
// its whole lifetime, so every repair request over a hot dataset forks the
// cached conflict analysis instead of re-scanning the data. Repair
// requests name a dataset plus an FD set and run through the public
// relatrust.Repairer facade:
//
//	POST /v1/repair         stream the Pareto frontier (NDJSON, or SSE via Accept)
//	POST /v1/repair/budget  the single repair for one cell-change budget τ
//	POST /v1/sample         k sampled minimal data-only repairs
//	POST /v1/violations     violating tuple pairs for an FD set
//	GET  /healthz           liveness
//	GET  /statz             registry and sweep statistics
//
// # Streaming
//
// /v1/repair writes one frontier row the moment its trust level finishes:
// the handler ranges over Repairer.Frontier and flushes each NDJSON line
// (or SSE "repair" event) as it is yielded, so a slow sweep shows
// progress and a client can stop reading once it has seen enough of the
// spectrum. An NDJSON stream carries data rows only; an error mid-sweep is
// delivered in-band as a final {"error": ...} line (SSE: an "error"
// event; a successful SSE stream ends with a "done" event). Rows encode
// report.Row — byte-identical to the rows an in-process caller would build
// from the same Frontier sequence.
//
// # Cancellation
//
// Every sweep runs under the request's context: a client disconnect or an
// explicit timeout_ms deadline cancels the FD-modification search through
// the facade's context plumbing, which drains the parallel workers and
// returns the forked analysis to the shared session before the handler
// exits. The shared session is therefore unaffected by abandoned requests
// — the next request over the dataset reuses it as if the cancel never
// happened.
//
// # Concurrency
//
// Requests over distinct datasets are independent. Within one dataset a
// counting semaphore (Options.MaxSweepsPerDataset) bounds the number of
// concurrently running sweeps; excess requests wait in line under their
// own contexts rather than fork-storming the session engine. Acquired
// analyses are per-request forks, so concurrent sweeps under the bound are
// safe; the registry itself is guarded by a read-write mutex.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"relatrust"
)

// Options tunes a Server.
type Options struct {
	// MaxSweepsPerDataset bounds concurrently running sweeps (frontier,
	// budget, sample) per dataset; further requests wait. 0 selects 2.
	MaxSweepsPerDataset int
	// MaxUploadBytes caps the request body of dataset registration.
	// 0 selects 32 MiB.
	MaxUploadBytes int64
	// Workers is the default search parallelism for requests that do not
	// set workers themselves. 0 selects the facade default (GOMAXPROCS).
	Workers int
	// Observe, when non-nil, receives every sweep's progress events
	// (relatrust.Options.Progress) tagged with the dataset name. Callbacks
	// run synchronously on the sweeping goroutine — keep them fast. Used
	// for logging, metrics, and by the test harness to pause a sweep at a
	// known point.
	Observe func(dataset string, ev relatrust.ProgressEvent)
}

func (o Options) withDefaults() Options {
	if o.MaxSweepsPerDataset <= 0 {
		o.MaxSweepsPerDataset = 2
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 32 << 20
	}
	return o
}

// Server is the relatrustd HTTP handler: a dataset registry plus the
// repair endpoints. Create one with New and mount it (it implements
// http.Handler).
type Server struct {
	opt   Options
	mux   *http.ServeMux
	start time.Time

	mu       sync.RWMutex
	datasets map[string]*dataset
}

// dataset is one registered instance with its warm shared session and
// serving statistics.
type dataset struct {
	name string
	in   *relatrust.Instance
	sess *relatrust.Session
	// sem bounds concurrent sweeps; acquire before any repair work.
	sem chan struct{}

	mu              sync.Mutex
	sweepsStarted   int64
	sweepsFinished  int64
	sweepsCancelled int64
	sweepsFailed    int64
	rowsStreamed    int64
	lastHitRate     float64
}

// New returns a Server with an empty registry.
func New(opt Options) *Server {
	s := &Server{
		opt:      opt.withDefaults(),
		start:    time.Now(),
		datasets: make(map[string]*dataset),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	mux.HandleFunc("POST /v1/datasets", s.handleRegister)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleGetDataset)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDeleteDataset)
	mux.HandleFunc("POST /v1/repair", s.handleRepair)
	mux.HandleFunc("POST /v1/repair/budget", s.handleBudget)
	mux.HandleFunc("POST /v1/sample", s.handleSample)
	mux.HandleFunc("POST /v1/violations", s.handleViolations)
	s.mux = mux
	return s
}

// ServeHTTP dispatches to the registered routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// DatasetInfo is the wire description of a registered dataset.
type DatasetInfo struct {
	Name       string   `json:"name"`
	Tuples     int      `json:"tuples"`
	Attributes []string `json:"attributes"`
}

func (d *dataset) info() DatasetInfo {
	return DatasetInfo{
		Name:       d.name,
		Tuples:     d.in.N(),
		Attributes: d.in.Schema.Names(),
	}
}

// Register adds an instance under the name programmatically (daemon
// preloading and tests; HTTP clients use POST /v1/datasets). The instance
// must not be mutated afterwards — the dataset's shared session aliases
// it for its whole lifetime.
func (s *Server) Register(name string, in *relatrust.Instance) (DatasetInfo, error) {
	if err := validateDatasetName(name); err != nil {
		return DatasetInfo{}, err
	}
	d := &dataset{
		name: name,
		in:   in,
		sess: relatrust.NewSession(in),
		sem:  make(chan struct{}, s.opt.MaxSweepsPerDataset),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.datasets[name]; ok {
		return DatasetInfo{}, fmt.Errorf("server: dataset %q already registered", name)
	}
	s.datasets[name] = d
	return d.info(), nil
}

func validateDatasetName(name string) error {
	if name == "" || len(name) > 128 || strings.ContainsAny(name, "/\x00 \t\n") {
		return fmt.Errorf("server: invalid dataset name %q (non-empty, ≤128 chars, no spaces or slashes)", name)
	}
	return nil
}

// lookup returns the dataset, or nil if unregistered.
func (s *Server) lookup(name string) *dataset {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.datasets[name]
}

// registerRequest is the body of POST /v1/datasets: the CSV text is parsed
// header-first, exactly like relatrust.ReadCSV.
type registerRequest struct {
	Name string `json:"name"`
	CSV  string `json:"csv"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxUploadBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req registerRequest
	if err := dec.Decode(&req); err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "decoding register request: %v", err)
		return
	}
	if dec.More() {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "unexpected data after the register object")
		return
	}
	if err := validateDatasetName(req.Name); err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	in, err := relatrust.ReadCSV(strings.NewReader(req.CSV))
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadCSV, "parsing CSV: %v", err)
		return
	}
	info, err := s.Register(req.Name, in)
	if err != nil {
		writeErrorCode(w, http.StatusConflict, codeDatasetExists, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	infos := make([]DatasetInfo, 0, len(s.datasets))
	for _, d := range s.datasets {
		infos = append(infos, d.info())
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, struct {
		Datasets []DatasetInfo `json:"datasets"`
	}{infos})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	d := s.lookup(r.PathValue("name"))
	if d == nil {
		writeErrorCode(w, http.StatusNotFound, codeUnknownDataset, "dataset %q is not registered", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, d.info())
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, ok := s.datasets[name]
	delete(s.datasets, name)
	s.mu.Unlock()
	if !ok {
		writeErrorCode(w, http.StatusNotFound, codeUnknownDataset, "dataset %q is not registered", name)
		return
	}
	// In-flight sweeps over the dataset keep their references and finish
	// normally; the session is garbage once they do.
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		OK bool `json:"ok"`
	}{true})
}

// DatasetStatz is the per-dataset block of GET /statz.
type DatasetStatz struct {
	DatasetInfo
	// ActiveSweeps is the number of sweeps currently holding the
	// dataset's semaphore.
	ActiveSweeps  int   `json:"active_sweeps"`
	SweepsStarted int64 `json:"sweeps_started"`
	// SweepsFinished + SweepsCancelled (disconnects, deadlines) +
	// SweepsFailed (MaxVisited, internal faults) accounts for every
	// sweep that is no longer active.
	SweepsFinished  int64 `json:"sweeps_finished"`
	SweepsCancelled int64 `json:"sweeps_cancelled"`
	SweepsFailed    int64 `json:"sweeps_failed"`
	RowsStreamed    int64 `json:"rows_streamed"`
	// PartitionCacheHitRate is the hit rate reported by the most recently
	// finished sweep (0 until one finishes).
	PartitionCacheHitRate float64 `json:"partition_cache_hit_rate"`
	// SessionAcquires/SessionBuilds are the shared session's counters:
	// analyses handed out vs built from scratch. A hot dataset shows
	// acquires far above builds.
	SessionAcquires int64 `json:"session_acquires"`
	SessionBuilds   int64 `json:"session_builds"`
}

// Statz is the body of GET /statz.
type Statz struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Sessions      int            `json:"sessions"`
	Datasets      []DatasetStatz `json:"datasets"`
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	stats := make([]DatasetStatz, 0, len(s.datasets))
	for _, d := range s.datasets {
		stats = append(stats, d.statz())
	}
	s.mu.RUnlock()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
	writeJSON(w, http.StatusOK, Statz{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Sessions:      len(stats),
		Datasets:      stats,
	})
}

func (d *dataset) statz() DatasetStatz {
	sess := d.sess.Stats()
	d.mu.Lock()
	defer d.mu.Unlock()
	return DatasetStatz{
		DatasetInfo:           d.info(),
		ActiveSweeps:          len(d.sem),
		SweepsStarted:         d.sweepsStarted,
		SweepsFinished:        d.sweepsFinished,
		SweepsCancelled:       d.sweepsCancelled,
		SweepsFailed:          d.sweepsFailed,
		RowsStreamed:          d.rowsStreamed,
		PartitionCacheHitRate: d.lastHitRate,
		SessionAcquires:       sess.Acquires,
		SessionBuilds:         sess.Builds,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
