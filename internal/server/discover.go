package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"relatrust"
)

// DiscoverRequest is the JSON body of POST /v1/discover (and the
// discovery job submission). Dataset is required; the discovery knobs
// mirror relatrust.DiscoverOptions with attribute names instead of
// positions. Mode "discover_then_repair" appends a frontier sweep over
// the mined Σ, tuned by the same repair fields /v1/repair takes.
type DiscoverRequest struct {
	// Dataset names a registered dataset.
	Dataset string `json:"dataset"`

	// MaxLHS is the largest LHS size to explore (0 = the default, 3).
	MaxLHS int `json:"max_lhs,omitempty"`
	// MaxError is the largest tolerated g3 error fraction (0 = exact FDs).
	MaxError float64 `json:"max_error,omitempty"`
	// MaxResults stops mining after this many FDs (0 = unlimited).
	MaxResults int `json:"max_results,omitempty"`
	// Attrs restricts mining to the named attributes, comma-separated
	// ("City,ZIP"). Empty means all.
	Attrs string `json:"attrs,omitempty"`

	// Mode selects the flow: "" mines and streams FDs; and
	// "discover_then_repair" feeds the mined Σ straight into a frontier
	// sweep — the paper's end-to-end story for rule-less uploads.
	Mode string `json:"mode,omitempty"`

	// TauLow/TauHigh restrict the appended frontier sweep
	// (discover_then_repair only); TauHigh nil or negative means δP(Σ, I).
	TauLow  int  `json:"tau_low,omitempty"`
	TauHigh *int `json:"tau_high,omitempty"`
	// Weights, BestFirst, Workers, Seed, MaxVisited, NoPartitionCache,
	// NoDecomposition, IncludeChanges tune the appended sweep exactly as
	// on /v1/repair.
	Weights          string `json:"weights,omitempty"`
	BestFirst        bool   `json:"best_first,omitempty"`
	Workers          int    `json:"workers,omitempty"`
	Seed             int64  `json:"seed,omitempty"`
	MaxVisited       int    `json:"max_visited,omitempty"`
	NoPartitionCache bool   `json:"no_partition_cache,omitempty"`
	NoDecomposition  bool   `json:"no_decomposition,omitempty"`
	IncludeChanges   bool   `json:"include_changes,omitempty"`

	// TimeoutMS imposes a server-side deadline on the whole run (mining
	// plus the appended sweep); exceeding it reports deadline_exceeded.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

const modeDiscoverThenRepair = "discover_then_repair"

// decodeDiscoverRequest parses and shape-checks the body — untrusted
// input, handled with the same strictness as decodeRepairRequest.
func decodeDiscoverRequest(r io.Reader) (DiscoverRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req DiscoverRequest
	if err := dec.Decode(&req); err != nil {
		return DiscoverRequest{}, err
	}
	if dec.More() {
		return DiscoverRequest{}, fmt.Errorf("unexpected data after the request object")
	}
	return req, nil
}

// discoverFrame is one streamed discovery: the FD rendered with attribute
// names, its lattice level, and — for approximate mining — its g3 error.
// NDJSON: one line per FD; SSE: an "fd" event.
type discoverFrame struct {
	N     int     `json:"n"`
	FD    string  `json:"fd"`
	Level int     `json:"level"`
	Error float64 `json:"error,omitempty"`
}

// sigmaFrame closes the mining phase: the full mined set, sorted, in
// ParseFDs syntax — ready to submit to /v1/repair verbatim. NDJSON: a
// line carrying "sigma"; SSE: a "sigma" event.
type sigmaFrame struct {
	Sigma string `json:"sigma"`
	FDs   int    `json:"fds"`
}

// fdRow emits one discovery frame ("fd" SSE event, or an NDJSON line).
func (st *stream) fdRow(v discoverFrame) error {
	if st.sse {
		return st.event("fd", v)
	}
	return st.line(v)
}

// sigmaRow emits the mined-set frame.
func (st *stream) sigmaRow(v sigmaFrame) error {
	if st.sse {
		return st.event("sigma", v)
	}
	return st.line(v)
}

// handleDiscover streams mined FDs the moment the lattice walk finds
// them, over the same NDJSON/SSE plumbing as /v1/repair: pre-stream
// failures are status responses, mid-stream failures arrive in-band, and
// the run holds a sweep slot so discovery sheds load like any sweep. In
// discover_then_repair mode the mined Σ feeds a frontier sweep whose rows
// are byte-identical to posting the sigma frame's string to /v1/repair.
func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	req, err := decodeDiscoverRequest(http.MaxBytesReader(w, r.Body, s.opt.MaxUploadBytes))
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "decoding discover request: %v", err)
		return
	}
	d := s.lookup(req.Dataset)
	if d == nil {
		writeErrorCode(w, http.StatusNotFound, codeUnknownDataset, "dataset %q is not registered", req.Dataset)
		return
	}
	in, sess, gen := s.snapshotFor(d)
	dopt, ok := s.discoverOptions(w, d, req, in, sess)
	if !ok {
		return
	}
	// Repair-mode knobs are validated before the 200 commits, like
	// /v1/repair's: a malformed range is a client mistake, not a failure.
	switch req.Mode {
	case "", modeDiscoverThenRepair:
	default:
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest,
			"unknown mode %q (want %q)", req.Mode, modeDiscoverThenRepair)
		return
	}
	if req.TauLow < 0 {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "tau_low must be non-negative")
		return
	}
	if req.TauHigh != nil && *req.TauHigh >= 0 && req.TauLow > *req.TauHigh {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest,
			"tau_low %d exceeds tau_high %d", req.TauLow, *req.TauHigh)
		return
	}
	dv, err := relatrust.NewDiscoverer(in, dopt)
	if err != nil {
		status, body := mapError(err, in.Schema)
		writeError(w, status, body)
		return
	}

	// Admission: a discovery run occupies a sweep slot exactly like a
	// repair sweep, reusing the shared prologue via a synthesized call.
	call := repairCall{req: RepairRequest{TimeoutMS: req.TimeoutMS}, ds: d, in: in, gen: gen}
	ctx, done, ok := s.startSweep(w, r, call)
	if !ok {
		return
	}
	st := newStream(w, r)
	rows := 0
	var mined relatrust.FDSet
	runErr := func() (sweepErr error) {
		defer s.recoverSweep(d.name, &sweepErr)
		for f, err := range dv.Stream(ctx) {
			if err != nil {
				return err
			}
			rows++
			frame := discoverFrame{N: rows, FD: f.FD.Format(in.Schema), Level: f.Level, Error: f.Error}
			if err := st.fdRow(frame); err != nil {
				return context.Canceled
			}
			mined = append(mined, f.FD)
		}
		return nil
	}()
	if runErr != nil {
		_, body := mapError(runErr, in.Schema)
		st.fail(body)
		done(rows, runErr)
		return
	}
	sortSigma(mined)
	if err := st.sigmaRow(sigmaFrame{Sigma: mined.Format(in.Schema), FDs: len(mined)}); err != nil {
		done(rows, context.Canceled)
		return
	}
	if req.Mode != modeDiscoverThenRepair {
		st.done(rows)
		done(rows, nil)
		return
	}

	// discover_then_repair: the mined Σ drives a frontier sweep identical
	// to posting it to /v1/repair — same options path, same frame bytes,
	// rows renumbered from 1.
	repairRows, repairErr := s.repairMined(ctx, d, req, in, sess, gen, mined, st)
	if repairErr != nil {
		_, body := mapError(repairErr, in.Schema)
		st.fail(body)
		done(rows+repairRows, repairErr)
		return
	}
	st.done(rows + repairRows)
	done(rows+repairRows, nil)
}

// sortSigma orders a mined Σ the way the batch discovery entry points do
// (RHS, then LHS size, then LHS) — the canonical order of the sigma frame.
func sortSigma(set relatrust.FDSet) {
	sort.Slice(set, func(i, j int) bool {
		if set[i].RHS != set[j].RHS {
			return set[i].RHS < set[j].RHS
		}
		if set[i].LHS.Len() != set[j].LHS.Len() {
			return set[i].LHS.Len() < set[j].LHS.Len()
		}
		return set[i].LHS < set[j].LHS
	})
}

// discoverOptions maps the request's discovery knobs onto the facade
// options, resolving attribute names against the pinned snapshot's schema
// and wiring the observe hook. On failure it writes the error response.
func (s *Server) discoverOptions(w http.ResponseWriter, d *dataset, req DiscoverRequest, in *relatrust.Instance, sess *relatrust.Session) (relatrust.DiscoverOptions, bool) {
	var opt relatrust.DiscoverOptions
	if req.MaxLHS < 0 || req.MaxResults < 0 {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "max_lhs and max_results must be non-negative")
		return opt, false
	}
	if req.MaxError < 0 || req.MaxError > 1 {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "max_error must be within [0, 1]")
		return opt, false
	}
	var attrs relatrust.AttrSet
	if req.Attrs != "" {
		var err error
		if attrs, err = in.Schema.ParseAttrs(req.Attrs); err != nil {
			writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "parsing attrs: %v", err)
			return opt, false
		}
	}
	observe := s.opt.ObserveDiscovery
	opt = relatrust.DiscoverOptions{
		MaxLHS:     req.MaxLHS,
		MaxError:   req.MaxError,
		MaxResults: req.MaxResults,
		Attrs:      attrs,
		Session:    sess,
	}
	if observe != nil {
		opt.Progress = func(level, sets int) { observe(d.name, level, sets) }
	}
	return opt, true
}

// repairMined runs the appended frontier sweep of discover_then_repair.
// It resolves the τ range the way /v1/repair does (post-mining, because
// δP depends on Σ) and streams through the shared streamFrontier, so each
// frame is byte-identical to the two-step flow's.
func (s *Server) repairMined(ctx context.Context, d *dataset, req DiscoverRequest, in *relatrust.Instance, sess *relatrust.Session, gen int64, mined relatrust.FDSet, st *stream) (int, error) {
	if len(mined) == 0 {
		return 0, relatrust.ErrEmptyFDSet
	}
	rreq := RepairRequest{
		Dataset:          req.Dataset,
		TauLow:           req.TauLow,
		TauHigh:          req.TauHigh,
		Weights:          req.Weights,
		BestFirst:        req.BestFirst,
		Workers:          req.Workers,
		Seed:             req.Seed,
		MaxVisited:       req.MaxVisited,
		NoPartitionCache: req.NoPartitionCache,
		NoDecomposition:  req.NoDecomposition,
		IncludeChanges:   req.IncludeChanges,
		TimeoutMS:        req.TimeoutMS,
	}
	opt, err := s.options(d, rreq, in, sess)
	if err != nil {
		return 0, err
	}
	rp, err := relatrust.NewRepairer(in, mined, opt)
	if err != nil {
		return 0, err
	}
	lo := rreq.TauLow
	hi := -1
	if rreq.TauHigh != nil && *rreq.TauHigh >= 0 {
		hi = *rreq.TauHigh
	} else {
		if hi, err = rp.MaxBudget(ctx); err != nil {
			return 0, err
		}
	}
	if lo > hi {
		return 0, fmt.Errorf("tau_low %d exceeds the sweep's upper bound %d", lo, hi)
	}
	call := repairCall{req: rreq, ds: d, in: in, gen: gen, sigma: mined, rp: rp}
	return s.streamFrontier(ctx, call, st, lo, hi)
}
