package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"time"

	"relatrust"

	"relatrust/internal/faultinject"
	"relatrust/internal/jobs"
	"relatrust/internal/report"
	"relatrust/internal/weights"
)

// RepairRequest is the JSON body shared by the repair-family endpoints.
// Dataset and FDs are always required; the remaining fields tune the
// specific endpoint (tau for /v1/repair/budget, k for /v1/sample, max for
// /v1/violations) or map one-to-one onto relatrust.Options.
type RepairRequest struct {
	// Dataset names a registered dataset.
	Dataset string `json:"dataset"`
	// FDs is the FD set in relatrust.ParseFDs syntax ("A,B->C; D->E").
	FDs string `json:"fds"`

	// Tau is the cell-change budget (/v1/repair/budget; required there).
	Tau *int `json:"tau,omitempty"`
	// TauLow/TauHigh restrict the frontier sweep (/v1/repair); TauHigh
	// nil or negative means δP(Σ, I).
	TauLow  int  `json:"tau_low,omitempty"`
	TauHigh *int `json:"tau_high,omitempty"`
	// K is the number of sampled data repairs (/v1/sample; required there).
	K int `json:"k,omitempty"`
	// Max caps reported violating pairs (/v1/violations; 0 = 1000).
	Max int `json:"max,omitempty"`

	// Weights selects the FD-modification weighting: attr-count,
	// distinct-count (default), entropy, or mdl.
	Weights string `json:"weights,omitempty"`
	// BestFirst, Workers, Seed, MaxVisited, NoPartitionCache,
	// NoDecomposition mirror relatrust.Options.
	BestFirst        bool  `json:"best_first,omitempty"`
	Workers          int   `json:"workers,omitempty"`
	Seed             int64 `json:"seed,omitempty"`
	MaxVisited       int   `json:"max_visited,omitempty"`
	NoPartitionCache bool  `json:"no_partition_cache,omitempty"`
	NoDecomposition  bool  `json:"no_decomposition,omitempty"`

	// TimeoutMS imposes a server-side deadline on the sweep; exceeding it
	// reports deadline_exceeded. 0 means no deadline beyond the client's.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// IncludeChanges adds the changed-cell listing to each repair.
	IncludeChanges bool `json:"include_changes,omitempty"`
}

// decodeRepairRequest parses and shape-checks the body. It is the JSON
// half of the service's untrusted input surface (the CSV upload being the
// other) and is fuzzed as such.
func decodeRepairRequest(r io.Reader) (RepairRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req RepairRequest
	if err := dec.Decode(&req); err != nil {
		return RepairRequest{}, err
	}
	if dec.More() {
		// A concatenated second document means the client sent something
		// other than one request; answering only the first half would
		// silently drop payload.
		return RepairRequest{}, fmt.Errorf("unexpected data after the request object")
	}
	return req, nil
}

// CellChange is the wire form of one repaired cell. After renders
// variables ("any fresh value") as ?vN.
type CellChange struct {
	Tuple  int    `json:"tuple"`
	Attr   string `json:"attr"`
	Before string `json:"before"`
	After  string `json:"after"`
}

// frontierFrame is one streamed repair: the shared wire row, plus the
// changed cells when the request asked for them. With Changes empty the
// encoding is byte-identical to report.Row's.
type frontierFrame struct {
	report.Row
	Changes []CellChange `json:"changes,omitempty"`
}

func changesOf(in *relatrust.Instance, d *relatrust.DataRepair) []CellChange {
	out := make([]CellChange, 0, len(d.Changed))
	for _, c := range d.Changed {
		out = append(out, CellChange{
			Tuple:  c.Tuple,
			Attr:   in.Schema.Name(c.Attr),
			Before: in.Tuples[c.Tuple][c.Attr].String(),
			After:  d.Instance.Tuples[c.Tuple][c.Attr].String(),
		})
	}
	return out
}

// repairCall is the validated common prefix of the repair-family handlers.
// in and gen are the snapshot the call is pinned to: mutation batches
// committing mid-sweep never change what this call streams.
type repairCall struct {
	req   RepairRequest
	ds    *dataset
	in    *relatrust.Instance
	gen   int64
	sigma relatrust.FDSet
	rp    *relatrust.Repairer
}

// prepare decodes the request, resolves the dataset, pins its current
// snapshot, parses the FDs, and constructs the Repairer over the pinned
// session. On failure it writes the error response and returns false.
func (s *Server) prepare(w http.ResponseWriter, r *http.Request) (repairCall, bool) {
	var c repairCall
	req, err := decodeRepairRequest(http.MaxBytesReader(w, r.Body, s.opt.MaxUploadBytes))
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "decoding repair request: %v", err)
		return c, false
	}
	c.req = req
	if c.ds = s.lookup(req.Dataset); c.ds == nil {
		writeErrorCode(w, http.StatusNotFound, codeUnknownDataset, "dataset %q is not registered", req.Dataset)
		return c, false
	}
	var sess *relatrust.Session
	c.in, sess, c.gen = s.snapshotFor(c.ds)
	if c.sigma, err = relatrust.ParseFDs(c.in.Schema, req.FDs); err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadFDs, "parsing FDs: %v", err)
		return c, false
	}
	opt, err := s.options(c.ds, req, c.in, sess)
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return c, false
	}
	if c.rp, err = relatrust.NewRepairer(c.in, c.sigma, opt); err != nil {
		status, body := mapError(err, c.in.Schema)
		writeError(w, status, body)
		return c, false
	}
	return c, true
}

// options maps the request onto relatrust.Options over the pinned
// snapshot's session, wiring the progress hook that feeds /statz and
// Options.Observe. in must be the instance of the same snapshot, so the
// weighting describes the rows the sweep actually repairs.
func (s *Server) options(d *dataset, req RepairRequest, in *relatrust.Instance, sess *relatrust.Session) (relatrust.Options, error) {
	opt := relatrust.Options{
		BestFirst:        req.BestFirst,
		Seed:             req.Seed,
		MaxVisited:       req.MaxVisited,
		Workers:          req.Workers,
		NoPartitionCache: req.NoPartitionCache,
		NoDecomposition:  req.NoDecomposition,
		Session:          sess,
	}
	if opt.Workers == 0 {
		opt.Workers = s.opt.Workers
	}
	if req.Weights != "" {
		w, err := weights.ByName(req.Weights, in)
		if err != nil {
			return opt, err
		}
		opt.Weights = w
	}
	observe := s.opt.Observe
	opt.Progress = func(ev relatrust.ProgressEvent) {
		if ev.Kind == relatrust.ProgressSweepFinished {
			d.mu.Lock()
			d.lastHitRate = ev.CacheHitRate
			d.lastComponents = ev.Components
			d.lastLargestComponent = ev.LargestComponent
			d.lastComponentsParallel = ev.ComponentsParallel
			d.mu.Unlock()
		}
		if observe != nil {
			observe(d.name, ev)
		}
	}
	return opt, nil
}

// sweepCtx applies the request's optional server-side deadline.
func sweepCtx(r *http.Request, req RepairRequest) (context.Context, context.CancelFunc) {
	if req.TimeoutMS > 0 {
		return context.WithTimeout(r.Context(), time.Duration(req.TimeoutMS)*time.Millisecond)
	}
	return context.WithCancel(r.Context())
}

// sweepDone records one sweep's outcome: finished, cancelled (a client
// disconnect or deadline), or failed (any other error — MaxVisited, an
// internal fault). The classification lives here so the three sweeping
// handlers cannot drift apart.
func (d *dataset) sweepDone(rows int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rowsStreamed += int64(rows)
	switch {
	case err == nil:
		d.sweepsFinished++
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded),
		// Job sweeps surface their cancellation causes directly.
		errors.Is(err, jobs.ErrCancelled), errors.Is(err, jobs.ErrDatasetDeleted),
		errors.Is(err, jobs.ErrInterrupted):
		d.sweepsCancelled++
	default:
		d.sweepsFailed++
	}
}

// startSweep is the shared prologue of the sweeping handlers: it admits
// the sweep (or sheds it — a saturated dataset semaphore or global cap is
// a 429 with a Retry-After, a draining server a 503; neither queues),
// applies the request deadline, and counts the start. On ok the caller
// must invoke done exactly once with the sweep's row count and terminal
// error.
func (s *Server) startSweep(w http.ResponseWriter, r *http.Request, c repairCall) (context.Context, func(rows int, err error), bool) {
	if err := faultinject.Hit(faultinject.SweepStart); err != nil {
		writeErrorCode(w, http.StatusInternalServerError, codeInternal, "starting sweep: %v", err)
		return nil, nil, false
	}
	if err := s.beginSweepSlot(c.ds); err != nil {
		if errors.Is(err, ErrShuttingDown) {
			writeErrorCode(w, http.StatusServiceUnavailable, codeShuttingDown,
				"server is shutting down")
			return nil, nil, false
		}
		c.ds.mu.Lock()
		c.ds.sweepsShed++
		c.ds.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeErrorCode(w, http.StatusTooManyRequests, codeOverloaded,
			"sweep capacity for dataset %q is saturated; retry shortly", c.ds.name)
		return nil, nil, false
	}
	ctx, cancel := sweepCtx(r, c.req)
	c.ds.mu.Lock()
	c.ds.sweepsStarted++
	c.ds.mu.Unlock()
	done := func(rows int, err error) {
		c.ds.sweepDone(rows, err)
		s.endSweepSlot(c.ds)
		cancel()
	}
	return ctx, done, true
}

// handleRepair streams the frontier. The semaphore is held for the whole
// sweep; validation errors are pre-stream status responses, while sweep
// failures — cancellation, deadline, MaxVisited — arrive in-band because
// the 200 header is already committed.
func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	c, ok := s.prepare(w, r)
	if !ok {
		return
	}
	// Resolve and validate the τ range before the 200 commits: a
	// malformed range is a client mistake, not a sweep failure.
	lo := c.req.TauLow
	if lo < 0 {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "tau_low must be non-negative")
		return
	}
	hi := -1
	if c.req.TauHigh != nil && *c.req.TauHigh >= 0 {
		hi = *c.req.TauHigh
	} else {
		dp, err := c.rp.MaxBudget(r.Context())
		if err != nil {
			status, body := mapError(err, c.in.Schema)
			writeError(w, status, body)
			return
		}
		hi = dp
	}
	if lo > hi {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest,
			"tau_low %d exceeds the sweep's upper bound %d", lo, hi)
		return
	}

	ctx, done, ok := s.startSweep(w, r, c)
	if !ok {
		return
	}
	st := newStream(w, r)
	rows, sweepErr := s.streamFrontier(ctx, c, st, lo, hi)
	if sweepErr != nil {
		_, body := mapError(sweepErr, c.in.Schema)
		st.fail(body)
	} else {
		st.done(rows)
	}
	done(rows, sweepErr)
}

// streamFrontier runs the sweep and emits each frontier row as it lands.
// The 200 is already committed when it runs, so it recovers its own
// panics — a panic mid-sweep becomes the terminal error of the stream
// (delivered in-band by the caller), with the stack logged; the sweep's
// forked state never re-enters the shared session, which stays usable.
func (s *Server) streamFrontier(ctx context.Context, c repairCall, st *stream, lo, hi int) (rows int, sweepErr error) {
	defer s.recoverSweep(c.ds.name, &sweepErr)
	for rep, err := range c.rp.FrontierRange(ctx, lo, hi) {
		if err != nil {
			sweepErr = err
			break
		}
		if err := faultinject.Hit(faultinject.StreamEmit); err != nil {
			sweepErr = err
			break
		}
		rows++
		frame := frontierFrame{Row: report.RowOf(c.in, rows, rep)}
		if c.req.IncludeChanges {
			frame.Changes = changesOf(c.in, rep.Data)
		}
		if err := st.row(frame); err != nil {
			// The client is gone; breaking the range loop stops the
			// sweep, and the outcome counts as cancelled.
			sweepErr = context.Canceled
			break
		}
	}
	return rows, sweepErr
}

// recoverSweep is the deferred second line of panic defense (the first is
// the search pool's own recovery, which already yields a PanicError): any
// panic that unwinds out of sweep code on the handler goroutine becomes
// the sweep's terminal error instead of escaping past the slot release.
// The stack goes to the log; the error maps to internal_panic on the wire.
func (s *Server) recoverSweep(dataset string, sweepErr *error) {
	if rec := recover(); rec != nil {
		stack := debug.Stack()
		s.panics.Add(1)
		s.log.Error("server: panic during sweep",
			"dataset", dataset, "panic", rec, "stack", string(stack))
		*sweepErr = &relatrust.PanicError{Value: rec, Stack: stack}
	}
}

// runBudget and runSample wrap the facade calls of the non-streaming
// sweep handlers in recoverSweep, so a panic is released and reported
// exactly like any other sweep failure.
func (s *Server) runBudget(ctx context.Context, c repairCall) (rep *relatrust.Repair, err error) {
	defer s.recoverSweep(c.ds.name, &err)
	return c.rp.RepairWithBudget(ctx, *c.req.Tau)
}

func (s *Server) runSample(ctx context.Context, c repairCall) (samples []*relatrust.DataRepair, err error) {
	defer s.recoverSweep(c.ds.name, &err)
	return c.rp.Sample(ctx, c.req.K)
}

// handleBudget answers the single-τ repair (the paper's Algorithm 1).
func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	c, ok := s.prepare(w, r)
	if !ok {
		return
	}
	if c.req.Tau == nil || *c.req.Tau < 0 {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "budget repair needs a non-negative tau")
		return
	}
	ctx, done, ok := s.startSweep(w, r, c)
	if !ok {
		return
	}
	rep, err := s.runBudget(ctx, c)
	if err != nil {
		done(0, err)
		status, body := mapError(err, c.in.Schema)
		writeError(w, status, body)
		return
	}
	frame := frontierFrame{Row: report.RowOf(c.in, 1, rep)}
	if c.req.IncludeChanges {
		frame.Changes = changesOf(c.in, rep.Data)
	}
	done(1, nil)
	writeJSON(w, http.StatusOK, struct {
		Repair frontierFrame `json:"repair"`
	}{frame})
}

// sampleResponse is the body of POST /v1/sample.
type sampleResponse struct {
	Samples []sampleRepair `json:"samples"`
}

type sampleRepair struct {
	CellChanges int          `json:"cell_changes"`
	Changes     []CellChange `json:"changes,omitempty"`
}

// handleSample draws k distinct minimal data-only repairs.
func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	c, ok := s.prepare(w, r)
	if !ok {
		return
	}
	if c.req.K <= 0 {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "sampling needs k ≥ 1")
		return
	}
	ctx, done, ok := s.startSweep(w, r, c)
	if !ok {
		return
	}
	samples, err := s.runSample(ctx, c)
	if err != nil {
		done(0, err)
		status, body := mapError(err, c.in.Schema)
		writeError(w, status, body)
		return
	}
	resp := sampleResponse{Samples: make([]sampleRepair, 0, len(samples))}
	for _, d := range samples {
		sr := sampleRepair{CellChanges: d.NumChanges()}
		if c.req.IncludeChanges {
			sr.Changes = changesOf(c.in, d)
		}
		resp.Samples = append(resp.Samples, sr)
	}
	done(len(samples), nil)
	writeJSON(w, http.StatusOK, resp)
}

// violationsResponse is the body of POST /v1/violations.
type violationsResponse struct {
	Satisfied  bool            `json:"satisfied"`
	Count      int             `json:"count"`
	Truncated  bool            `json:"truncated"`
	Violations []wireViolation `json:"violations"`
}

type wireViolation struct {
	T1      int    `json:"t1"`
	T2      int    `json:"t2"`
	FDIndex int    `json:"fd_index"`
	FD      string `json:"fd"`
}

// handleViolations reports violating tuple pairs. It needs no sweep slot —
// no search runs — but the pair listing is capped (request max, default
// 1000) because a badly violated instance has quadratically many.
func (s *Server) handleViolations(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRepairRequest(http.MaxBytesReader(w, r.Body, s.opt.MaxUploadBytes))
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "decoding violations request: %v", err)
		return
	}
	ds := s.lookup(req.Dataset)
	if ds == nil {
		writeErrorCode(w, http.StatusNotFound, codeUnknownDataset, "dataset %q is not registered", req.Dataset)
		return
	}
	// Pin the current generation's rows once: the scan and the formatted
	// output describe the same instance even if a PATCH lands mid-request.
	in := ds.live.Rows()
	sigma, err := relatrust.ParseFDs(in.Schema, req.FDs)
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadFDs, "parsing FDs: %v", err)
		return
	}
	if len(sigma) == 0 {
		status, body := mapError(relatrust.ErrEmptyFDSet, in.Schema)
		writeError(w, status, body)
		return
	}
	if req.Max < 0 {
		writeErrorCode(w, http.StatusBadRequest, codeBadRequest, "max must be non-negative")
		return
	}
	max := req.Max
	if max == 0 {
		max = 1000
	}
	// Ask for one extra pair to detect truncation without enumerating all;
	// the same scan answers satisfaction (no pairs at all = satisfied),
	// so no second pass over the instance is needed.
	found := relatrust.Violations(in, sigma, max+1)
	truncated := len(found) > max
	if truncated {
		found = found[:max]
	}
	resp := violationsResponse{
		Satisfied:  len(found) == 0,
		Count:      len(found),
		Truncated:  truncated,
		Violations: make([]wireViolation, 0, len(found)),
	}
	for _, v := range found {
		resp.Violations = append(resp.Violations, wireViolation{
			T1:      v.T1,
			T2:      v.T2,
			FDIndex: v.FD,
			FD:      sigma[v.FD].Format(in.Schema),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
