//go:build faultinject

package server

// Fault-injection tests (go test -tags faultinject): inject I/O errors
// and panics at the registered fault points and assert the serving tier
// degrades per contract — structured errors, no crashes, no leaked slots,
// and full recovery once the fault clears.

import (
	"bufio"
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"relatrust/internal/faultinject"
	"relatrust/internal/store"
)

// TestFaultStoreWriteFails: a snapshot write failure rolls the
// registration back entirely — the client gets a 500 storage error, the
// registry holds nothing, and the same registration succeeds once the
// fault clears.
func TestFaultStoreWriteFails(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	ts, srv, _ := newDurableServer(t, t.TempDir())

	faultinject.Set(faultinject.StoreWrite, func() error {
		return errors.New("injected: disk on fire")
	})
	resp := postJSON(t, ts.URL+"/v1/datasets", registerRequest{Name: "paper", CSV: paperCSV})
	wantErrorCode(t, resp, http.StatusInternalServerError, codeStorage)
	if srv.lookup("paper") != nil {
		t.Fatal("failed registration left the dataset in the registry")
	}

	faultinject.Reset()
	registerPaper(t, ts.URL)
	assertFullFrontier(t, ts.Client(), ts.URL, frontierFrames(t, 9), "post-fault")
}

// TestFaultStoreLoadSkips: an I/O error while loading snapshots at boot
// skips the affected dataset without failing the boot; the next
// rehydration picks it up.
func TestFaultStoreLoadSkips(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	ts1, _, _ := newDurableServer(t, dir)
	registerPaper(t, ts1.URL)

	faultinject.Set(faultinject.StoreLoad, func() error {
		return errors.New("injected: transient read failure")
	})
	st, err := store.Open(dir, store.Options{Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Options{Store: st, Logger: quietLogger()})
	n, err := srv2.Rehydrate()
	if err != nil {
		t.Fatalf("rehydrate with load faults must not fail the boot: %v", err)
	}
	if n != 0 {
		t.Fatalf("rehydrated %d datasets through a failing loader", n)
	}

	// The snapshot was skipped, not quarantined: once the fault clears it
	// rehydrates cleanly.
	faultinject.Reset()
	if n, err := srv2.Rehydrate(); err != nil || n != 1 {
		t.Fatalf("post-fault rehydrate = (%d, %v), want (1, nil)", n, err)
	}
	if srv2.lookup("paper") == nil {
		t.Fatal("dataset missing after post-fault rehydration")
	}
}

// TestFaultSweepStartPanic: a panic at the sweep-start fault point unwinds
// on the handler goroutine before any response bytes — the recovery
// middleware turns it into a structured 500 and the process keeps serving.
func TestFaultSweepStartPanic(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	ts, srv, _ := newTestServer(t, Options{Logger: quietLogger()})
	registerPaper(t, ts.URL)

	faultinject.Set(faultinject.SweepStart, func() error {
		panic("injected: sweep-start explosion")
	})
	resp, err := http.Post(ts.URL+"/v1/repair", "application/json", repairBody(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	wantErrorCode(t, resp, http.StatusInternalServerError, codeInternalPanic)
	if got := srv.panics.Load(); got != 1 {
		t.Errorf("panics recovered = %d, want 1", got)
	}
	d := srv.lookup("paper").statz()
	if d.ActiveSweeps != 0 {
		t.Errorf("active sweeps = %d after pre-admission panic", d.ActiveSweeps)
	}

	faultinject.Reset()
	assertFullFrontier(t, ts.Client(), ts.URL, frontierFrames(t, 9), "post-fault")
}

// TestFaultStreamEmitError: an error injected between two row emissions
// arrives as the stream's in-band error frame behind the committed 200,
// after at least one good row; the sweep counts as failed and the next
// sweep is whole.
func TestFaultStreamEmitError(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	ts, srv, _ := newTestServer(t, Options{Logger: quietLogger()})
	registerPaper(t, ts.URL)
	want := frontierFrames(t, 9)

	hits := 0
	faultinject.Set(faultinject.StreamEmit, func() error {
		hits++
		if hits == 2 {
			return errors.New("injected: emit failure")
		}
		return nil
	})
	resp, err := http.Post(ts.URL+"/v1/repair", "application/json", repairBody(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var dataRows int
	var errFrame *ErrorDetail
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var frame struct {
			Error *ErrorDetail `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &frame); err != nil {
			t.Fatalf("non-JSON frame %q: %v", sc.Text(), err)
		}
		if frame.Error != nil {
			errFrame = frame.Error
			continue
		}
		dataRows++
	}
	resp.Body.Close()
	if dataRows != 1 {
		t.Errorf("data rows before the fault = %d, want 1", dataRows)
	}
	if errFrame == nil || errFrame.Code != codeInternal {
		t.Errorf("in-band frame = %+v, want code %q", errFrame, codeInternal)
	}
	d := srv.lookup("paper").statz()
	if d.SweepsFailed != 1 {
		t.Errorf("sweeps_failed = %d, want 1", d.SweepsFailed)
	}

	faultinject.Reset()
	assertFullFrontier(t, ts.Client(), ts.URL, want, "post-fault")
}
