package server

// End-to-end tests of the non-streaming endpoints: registry lifecycle,
// violations, sampling, budgeted repair, the structured error mapping, and
// /healthz + /statz. The streaming endpoint has its own suite in
// stream_test.go.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"relatrust"
)

// multiCSV violates City->ZIP and City->State several times, giving a
// frontier with multiple trust levels (same fixture as the facade tests).
const multiCSV = `City,ZIP,State
Springfield,62701,IL
Springfield,62701,IL
Springfield,97477,OR
Shelbyville,46176,IN
Shelbyville,46176,TN
`

const multiFDs = "City->ZIP; City->State"

// observer lets a test intercept sweep progress mid-flight; the zero
// value forwards nothing.
type observer struct {
	mu sync.Mutex
	fn func(dataset string, ev relatrust.ProgressEvent)
}

func (o *observer) set(fn func(string, relatrust.ProgressEvent)) {
	o.mu.Lock()
	o.fn = fn
	o.mu.Unlock()
}

func (o *observer) observe(name string, ev relatrust.ProgressEvent) {
	o.mu.Lock()
	fn := o.fn
	o.mu.Unlock()
	if fn != nil {
		fn(name, ev)
	}
}

// newTestServer starts a Server over httptest with the observer wired in.
func newTestServer(t *testing.T, opt Options) (*httptest.Server, *Server, *observer) {
	t.Helper()
	obs := &observer{}
	opt.Observe = obs.observe
	s := New(opt)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s, obs
}

// postJSON posts v as JSON and returns the response.
func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeBody decodes the full response body into v and closes it.
func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding response body: %v", err)
	}
}

// registerCities registers the shared fixture dataset.
func registerCities(t *testing.T, base string) {
	t.Helper()
	resp := postJSON(t, base+"/v1/datasets", registerRequest{Name: "cities", CSV: multiCSV})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("register: status %d, body %s", resp.StatusCode, b)
	}
}

// wantErrorCode asserts the response is a structured error with the code
// and status, returning the detail for payload checks.
func wantErrorCode(t *testing.T, resp *http.Response, status int, code string) ErrorDetail {
	t.Helper()
	if resp.StatusCode != status {
		t.Errorf("status = %d, want %d", resp.StatusCode, status)
	}
	var body ErrorBody
	decodeBody(t, resp, &body)
	if body.Error.Code != code {
		t.Errorf("error code = %q, want %q", body.Error.Code, code)
	}
	if body.Error.Message == "" {
		t.Error("error message is empty")
	}
	return body.Error
}

func TestHealthz(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		OK bool `json:"ok"`
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	decodeBody(t, resp, &body)
	if !body.OK {
		t.Error("healthz not ok")
	}
}

func TestDatasetLifecycle(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	registerCities(t, ts.URL)

	// Duplicate registration conflicts.
	resp := postJSON(t, ts.URL+"/v1/datasets", registerRequest{Name: "cities", CSV: multiCSV})
	wantErrorCode(t, resp, http.StatusConflict, codeDatasetExists)

	// Malformed CSV and malformed JSON are distinct errors.
	resp = postJSON(t, ts.URL+"/v1/datasets", registerRequest{Name: "bad", CSV: "A,B\n1\n"})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadCSV)
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)
	// Concatenated documents are one malformed request, not a half-served
	// one (same contract on the repair endpoints via decodeRepairRequest).
	resp, err = http.Post(ts.URL+"/v1/datasets", "application/json",
		strings.NewReader(`{"name":"x","csv":"A\n1\n"}{"name":"y","csv":"A\n1\n"}`))
	if err != nil {
		t.Fatal(err)
	}
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)
	resp = postJSON(t, ts.URL+"/v1/datasets", registerRequest{Name: "no spaces", CSV: multiCSV})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)

	// GET one and list.
	resp, err = http.Get(ts.URL + "/v1/datasets/cities")
	if err != nil {
		t.Fatal(err)
	}
	var info DatasetInfo
	decodeBody(t, resp, &info)
	if info.Name != "cities" || info.Tuples != 5 || len(info.Attributes) != 3 {
		t.Errorf("dataset info = %+v", info)
	}
	resp, err = http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	decodeBody(t, resp, &list)
	if len(list.Datasets) != 1 || list.Datasets[0].Name != "cities" {
		t.Errorf("list = %+v", list)
	}

	// Delete, then 404 on both GET and DELETE.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/cities", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/datasets/cities")
	if err != nil {
		t.Fatal(err)
	}
	wantErrorCode(t, resp, http.StatusNotFound, codeUnknownDataset)
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/cities", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wantErrorCode(t, resp, http.StatusNotFound, codeUnknownDataset)
}

func TestViolationsEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	registerCities(t, ts.URL)

	resp := postJSON(t, ts.URL+"/v1/violations", RepairRequest{Dataset: "cities", FDs: multiFDs})
	var body violationsResponse
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	decodeBody(t, resp, &body)
	if body.Satisfied {
		t.Error("fixture reported satisfied")
	}
	if body.Count == 0 || len(body.Violations) != body.Count {
		t.Errorf("count %d with %d violations", body.Count, len(body.Violations))
	}
	// The wire pairs match the in-process answer.
	in, err := relatrust.ReadCSV(strings.NewReader(multiCSV))
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := relatrust.ParseFDs(in.Schema, multiFDs)
	if err != nil {
		t.Fatal(err)
	}
	want := relatrust.Violations(in, sigma, 0)
	if len(want) != body.Count {
		t.Fatalf("wire reports %d violations, in-process %d", body.Count, len(want))
	}
	for i, v := range body.Violations {
		if v.T1 != want[i].T1 || v.T2 != want[i].T2 || v.FDIndex != want[i].FD {
			t.Errorf("violation %d: wire %+v, want %+v", i, v, want[i])
		}
		if v.FD != sigma[want[i].FD].Format(in.Schema) {
			t.Errorf("violation %d renders FD %q", i, v.FD)
		}
	}

	// Truncation: max=1 reports one pair and the flag.
	resp = postJSON(t, ts.URL+"/v1/violations", RepairRequest{Dataset: "cities", FDs: multiFDs, Max: 1})
	decodeBody(t, resp, &body)
	if body.Count != 1 || !body.Truncated {
		t.Errorf("max=1: count %d truncated %v", body.Count, body.Truncated)
	}

	// A satisfied FD set reports satisfied with zero pairs (ZIP->City
	// holds in the fixture).
	body = violationsResponse{}
	resp = postJSON(t, ts.URL+"/v1/violations", RepairRequest{Dataset: "cities", FDs: "ZIP->City"})
	decodeBody(t, resp, &body)
	if !body.Satisfied || body.Count != 0 {
		t.Errorf("satisfied FD: %+v", body)
	}

	// Error shapes. An empty FD spec fails at parse time, so the wire
	// reports bad_fds (the empty_fd_set sentinel is unreachable over
	// HTTP; its mapping is unit-tested in TestMapErrorSentinels).
	resp = postJSON(t, ts.URL+"/v1/violations", RepairRequest{Dataset: "nope", FDs: multiFDs})
	wantErrorCode(t, resp, http.StatusNotFound, codeUnknownDataset)
	resp = postJSON(t, ts.URL+"/v1/violations", RepairRequest{Dataset: "cities", FDs: "Nope->ZIP"})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadFDs)
	resp = postJSON(t, ts.URL+"/v1/violations", RepairRequest{Dataset: "cities", FDs: ""})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadFDs)
	resp = postJSON(t, ts.URL+"/v1/violations", RepairRequest{Dataset: "cities", FDs: multiFDs, Max: -1})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)
}

func TestBudgetEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	registerCities(t, ts.URL)

	// In-process oracle for the same request.
	in, err := relatrust.ReadCSV(strings.NewReader(multiCSV))
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := relatrust.ParseFDs(in.Schema, multiFDs)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := relatrust.NewRepairer(in, sigma, relatrust.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := rp.MaxBudget(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := rp.RepairWithBudget(context.Background(), dp)
	if err != nil {
		t.Fatal(err)
	}

	tau := dp
	resp := postJSON(t, ts.URL+"/v1/repair/budget", RepairRequest{
		Dataset: "cities", FDs: multiFDs, Tau: &tau, Seed: 3, IncludeChanges: true,
	})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var body struct {
		Repair frontierFrame `json:"repair"`
	}
	decodeBody(t, resp, &body)
	if body.Repair.Tau != want.Tau || body.Repair.CellChanges != want.Data.NumChanges() ||
		body.Repair.Sigma != want.Sigma.Format(in.Schema) || body.Repair.DeltaP != want.DeltaP {
		t.Errorf("wire repair %+v diverges from in-process %v", body.Repair, want)
	}
	if len(body.Repair.Changes) != want.Data.NumChanges() {
		t.Errorf("%d wire changes, want %d", len(body.Repair.Changes), want.Data.NumChanges())
	}
	for i, c := range body.Repair.Changes {
		ref := want.Data.Changed[i]
		if c.Tuple != ref.Tuple || c.Attr != in.Schema.Name(ref.Attr) ||
			c.Before != in.Tuples[ref.Tuple][ref.Attr].String() {
			t.Errorf("change %d = %+v, want cell %v", i, c, ref)
		}
	}

	// Missing and negative τ are request errors.
	resp = postJSON(t, ts.URL+"/v1/repair/budget", RepairRequest{Dataset: "cities", FDs: multiFDs})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)
	neg := -1
	resp = postJSON(t, ts.URL+"/v1/repair/budget", RepairRequest{Dataset: "cities", FDs: multiFDs, Tau: &neg})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)
}

// TestSentinelErrorMapping drives each facade sentinel through the HTTP
// surface and asserts the (status, code, payload) triple is distinct.
func TestSentinelErrorMapping(t *testing.T) {
	ts, srv, _ := newTestServer(t, Options{})
	registerCities(t, ts.URL)
	// A two-column dataset with an unextendable FD: τ=0 is infeasible.
	resp := postJSON(t, ts.URL+"/v1/datasets", registerRequest{Name: "two", CSV: "City,ZIP\nA,1\nA,2\n"})
	resp.Body.Close()

	zero := 0
	resp = postJSON(t, ts.URL+"/v1/repair/budget", RepairRequest{Dataset: "two", FDs: "City->ZIP", Tau: &zero})
	detail := wantErrorCode(t, resp, http.StatusConflict, codeNoRepairInBudget)
	if detail.Tau == nil || *detail.Tau != 0 {
		t.Errorf("no_repair_in_budget does not carry τ: %+v", detail)
	}

	// MaxVisited=1 with τ between the feasibility floor and δP aborts.
	in, err := relatrust.ReadCSV(strings.NewReader(multiCSV))
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := relatrust.ParseFDs(in.Schema, multiFDs)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := relatrust.MaxBudget(in, sigma, relatrust.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tau := dp - 1
	resp = postJSON(t, ts.URL+"/v1/repair/budget", RepairRequest{
		Dataset: "cities", FDs: multiFDs, Tau: &tau, MaxVisited: 1,
	})
	detail = wantErrorCode(t, resp, http.StatusServiceUnavailable, codeMaxVisited)
	if detail.Visited != 1 {
		t.Errorf("max_visited does not carry the visited count: %+v", detail)
	}
	// The aborted sweep is accounted as failed, not finished.
	if d := srv.lookup("cities").statz(); d.SweepsFailed != 1 || d.SweepsFinished != 0 {
		t.Errorf("aborted sweep counted as %+v", d)
	}

	// An empty FD spec is rejected at parse time — ErrEmptyFDSet itself
	// cannot reach the wire, but its mapping stays pinned below.
	resp = postJSON(t, ts.URL+"/v1/repair/budget", RepairRequest{Dataset: "cities", FDs: " ", Tau: &zero})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadFDs)

	// Empty instance: a header-only dataset validates per request.
	resp = postJSON(t, ts.URL+"/v1/datasets", registerRequest{Name: "empty", CSV: "A,B\n"})
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/repair/budget", RepairRequest{Dataset: "empty", FDs: "A->B", Tau: &zero})
	wantErrorCode(t, resp, http.StatusUnprocessableEntity, codeEmptyInstance)
}

// TestMapErrorSentinels covers the sentinels the HTTP surface cannot
// reach (FDs parse against the dataset schema, so an out-of-schema FD and
// the empty set fail earlier as bad_fds): the mapping itself must still be
// correct for embedded users of the package.
func TestMapErrorSentinels(t *testing.T) {
	in, err := relatrust.ReadCSV(strings.NewReader("A,B\n1,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := relatrust.NewSchema("A", "B", "C", "D")
	if err != nil {
		t.Fatal(err)
	}
	bad, err := relatrust.ParseFD(wide, "C->D")
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := relatrust.NewRepairer(in, relatrust.FDSet{bad}, relatrust.Options{})
	if rerr == nil {
		t.Fatal("expected schema mismatch")
	}
	status, body := mapError(rerr, wide)
	if status != http.StatusUnprocessableEntity || body.Error.Code != codeSchemaMismatch {
		t.Errorf("mapped to (%d, %q)", status, body.Error.Code)
	}
	if body.Error.FD != "C->D" {
		t.Errorf("mismatch renders FD %q", body.Error.FD)
	}

	if status, body := mapError(relatrust.ErrEmptyFDSet, nil); status != http.StatusBadRequest || body.Error.Code != codeEmptyFDSet {
		t.Errorf("empty FD set mapped to (%d, %q)", status, body.Error.Code)
	}

	// Cancellation and deadline map to their own distinct pairs.
	if status, body := mapError(context.Canceled, nil); status != statusClientClosedRequest || body.Error.Code != codeCancelled {
		t.Errorf("canceled mapped to (%d, %q)", status, body.Error.Code)
	}
	if status, body := mapError(context.DeadlineExceeded, nil); status != http.StatusGatewayTimeout || body.Error.Code != codeDeadline {
		t.Errorf("deadline mapped to (%d, %q)", status, body.Error.Code)
	}
	if status, body := mapError(errors.New("boom"), nil); status != http.StatusInternalServerError || body.Error.Code != codeInternal {
		t.Errorf("unknown error mapped to (%d, %q)", status, body.Error.Code)
	}
}

func TestSampleEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	registerCities(t, ts.URL)

	resp := postJSON(t, ts.URL+"/v1/sample", RepairRequest{
		Dataset: "cities", FDs: multiFDs, K: 3, Seed: 5, IncludeChanges: true,
	})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var body sampleResponse
	decodeBody(t, resp, &body)
	if len(body.Samples) == 0 {
		t.Fatal("no samples")
	}
	for i, s := range body.Samples {
		if s.CellChanges == 0 || len(s.Changes) != s.CellChanges {
			t.Errorf("sample %d: %d cell changes, %d listed", i, s.CellChanges, len(s.Changes))
		}
	}

	// The wire samples match the in-process draw with the same seed.
	in, err := relatrust.ReadCSV(strings.NewReader(multiCSV))
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := relatrust.ParseFDs(in.Schema, multiFDs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := relatrust.SampleRepairs(in, sigma, 3, relatrust.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(body.Samples) {
		t.Fatalf("wire drew %d samples, in-process %d", len(body.Samples), len(want))
	}
	for i := range want {
		if want[i].NumChanges() != body.Samples[i].CellChanges {
			t.Errorf("sample %d: wire %d changes, in-process %d",
				i, body.Samples[i].CellChanges, want[i].NumChanges())
		}
	}

	// k is required.
	resp = postJSON(t, ts.URL+"/v1/sample", RepairRequest{Dataset: "cities", FDs: multiFDs})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)
}

func TestStatz(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	registerCities(t, ts.URL)

	// One budget call and one sweep, then read the counters.
	tau := 100
	resp := postJSON(t, ts.URL+"/v1/repair/budget", RepairRequest{Dataset: "cities", FDs: multiFDs, Tau: &tau})
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/repair", RepairRequest{Dataset: "cities", FDs: multiFDs})
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var statz Statz
	decodeBody(t, resp, &statz)
	if statz.Sessions != 1 || len(statz.Datasets) != 1 {
		t.Fatalf("statz = %+v", statz)
	}
	d := statz.Datasets[0]
	if d.Name != "cities" || d.Tuples != 5 {
		t.Errorf("dataset block = %+v", d)
	}
	if d.SweepsStarted != 2 || d.SweepsFinished != 2 || d.SweepsCancelled != 0 {
		t.Errorf("sweep counters = %+v", d)
	}
	if d.RowsStreamed < 3 { // 1 budget repair + a ≥2-point frontier
		t.Errorf("rows streamed = %d", d.RowsStreamed)
	}
	if d.ActiveSweeps != 0 {
		t.Errorf("active sweeps = %d at rest", d.ActiveSweeps)
	}
	// The shared session served both requests: analyses were handed out
	// repeatedly but the cluster build ran once per FD set.
	if d.SessionAcquires < 2 || d.SessionBuilds < 1 || d.SessionBuilds >= d.SessionAcquires {
		t.Errorf("session counters: acquires %d builds %d", d.SessionAcquires, d.SessionBuilds)
	}
}
