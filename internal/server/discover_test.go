package server

// End-to-end tests of POST /v1/discover — the discovery acceptance
// criteria:
//
//   - mined FDs stream incrementally: the first NDJSON frame is read by
//     the client while the lattice walk is provably still mid-flight
//     (held at a level gate through Options.ObserveDiscovery);
//   - the streamed frames are byte-identical, in content and order, to
//     the frames an in-process caller builds from Discoverer.Stream;
//   - discover_then_repair produces a frontier byte-identical to mining
//     first and posting the sigma frame's Σ to /v1/repair;
//   - the structured errors map like the repair family's.

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"relatrust"
)

// keyCSV has Name as a key, so level 1 already emits FDs — which the
// incrementality gate at level 2 needs — and Dept↔Floor adds non-key FDs.
const keyCSV = `Name,Dept,Floor
ann,eng,3
bob,eng,3
cam,ops,5
dee,ops,5
`

func registerKeyed(t *testing.T, base string) {
	t.Helper()
	resp := postJSON(t, base+"/v1/datasets", registerRequest{Name: "keyed", CSV: keyCSV})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
}

// discoverFrames is the in-process oracle: the exact NDJSON lines the
// server must stream for (csv, opt), fd frames first, sigma frame last.
func discoverFrames(t *testing.T, csv string, opt relatrust.DiscoverOptions) []string {
	t.Helper()
	in, err := relatrust.ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	dv, err := relatrust.NewDiscoverer(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	var mined relatrust.FDSet
	n := 0
	for f, err := range dv.Stream(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		raw, err := json.Marshal(discoverFrame{N: n, FD: f.FD.Format(in.Schema), Level: f.Level, Error: f.Error})
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(raw))
		mined = append(mined, f.FD)
	}
	sort.Slice(mined, func(i, j int) bool {
		if mined[i].RHS != mined[j].RHS {
			return mined[i].RHS < mined[j].RHS
		}
		if mined[i].LHS.Len() != mined[j].LHS.Len() {
			return mined[i].LHS.Len() < mined[j].LHS.Len()
		}
		return mined[i].LHS < mined[j].LHS
	})
	raw, err := json.Marshal(sigmaFrame{Sigma: mined.Format(in.Schema), FDs: len(mined)})
	if err != nil {
		t.Fatal(err)
	}
	return append(lines, string(raw))
}

// discoverObserver gates the mining goroutine at a lattice level, the
// discovery counterpart of gateAtSecondTau.
type discoverObserver struct {
	mu sync.Mutex
	fn func(dataset string, level, sets int)
}

func (o *discoverObserver) set(fn func(string, int, int)) {
	o.mu.Lock()
	o.fn = fn
	o.mu.Unlock()
}

func (o *discoverObserver) observe(name string, level, sets int) {
	o.mu.Lock()
	fn := o.fn
	o.mu.Unlock()
	if fn != nil {
		fn(name, level, sets)
	}
}

// TestDiscoverStreamsIncrementally is the acceptance test: the first
// mined FD is observed by the HTTP client strictly before the lattice
// walk completes, and the full stream is byte-identical in content and
// order to the in-process Discoverer.Stream frames plus the sigma frame.
func TestDiscoverStreamsIncrementally(t *testing.T) {
	want := discoverFrames(t, keyCSV, relatrust.DiscoverOptions{MaxLHS: 2})
	obs := &discoverObserver{}
	ts, _, _ := newTestServer(t, Options{ObserveDiscovery: obs.observe})
	registerKeyed(t, ts.URL)

	// Gate the mining goroutine at the start of level 2: every level-1 FD
	// is already written and flushed, the run is provably unfinished.
	reached := make(chan struct{})
	release := make(chan struct{})
	obs.set(func(_ string, level, _ int) {
		if level == 2 {
			close(reached)
			<-release
		}
	})
	defer obs.set(nil)

	resp := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: "keyed", MaxLHS: 2})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	br := bufio.NewReader(resp.Body)
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading first streamed FD: %v", err)
	}
	select {
	case <-reached:
	case <-time.After(5 * time.Second):
		t.Fatal("mining never reached level 2")
	}
	// The walk is still blocked at the gate; only now let it finish.
	close(release)

	got := []string{strings.TrimSuffix(first, "\n")}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			break
		}
		got = append(got, strings.TrimSuffix(line, "\n"))
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d frames, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("frame %d:\n  streamed %s\n  want     %s", i, got[i], want[i])
		}
	}
}

// ndjsonLines splits a response body into trimmed NDJSON lines.
func ndjsonLines(t *testing.T, body []byte) []string {
	t.Helper()
	var lines []string
	for _, l := range strings.Split(string(body), "\n") {
		if l != "" {
			lines = append(lines, l)
		}
	}
	return lines
}

// sigmaOf finds the sigma frame in a discovery stream and returns its Σ
// string and index.
func sigmaOf(t *testing.T, lines []string) (string, int) {
	t.Helper()
	for i, l := range lines {
		var frame struct {
			Sigma *string `json:"sigma"`
		}
		if err := json.Unmarshal([]byte(l), &frame); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if frame.Sigma != nil {
			return *frame.Sigma, i
		}
	}
	t.Fatal("no sigma frame in the stream")
	return "", -1
}

// TestDiscoverThenRepairMatchesTwoStep: the repair section of one
// mode=discover_then_repair response is byte-identical to mining first
// and posting the sigma frame's Σ to /v1/repair. Approximate mining
// (max_error) makes the mined FDs almost-hold, so the sweep does real
// work.
func TestDiscoverThenRepairMatchesTwoStep(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	registerPaper(t, ts.URL)

	disc := DiscoverRequest{Dataset: "paper", MaxLHS: 2, MaxError: 0.3, Seed: 9}

	// Step 1 of the two-step flow: mine alone, keep the sigma frame.
	status, mineBody := goldenBody(t, http.MethodPost, ts.URL+"/v1/discover", disc, "")
	if status != http.StatusOK {
		t.Fatalf("discover status %d: %s", status, mineBody)
	}
	mineLines := ndjsonLines(t, mineBody)
	sigma, sigmaAt := sigmaOf(t, mineLines)
	if sigmaAt != len(mineLines)-1 {
		t.Fatalf("sigma frame at %d, want last (%d)", sigmaAt, len(mineLines)-1)
	}
	if sigma == "" {
		t.Fatal("mined Σ is empty; the fixture should mine approximate FDs")
	}

	// Step 2: repair against the mined Σ.
	status, repBody := goldenBody(t, http.MethodPost, ts.URL+"/v1/repair",
		RepairRequest{Dataset: "paper", FDs: sigma, Seed: 9}, "")
	if status != http.StatusOK {
		t.Fatalf("repair status %d: %s", status, repBody)
	}
	twoStep := ndjsonLines(t, repBody)

	// Combined mode: same discovery knobs, same repair knobs, one request.
	combined := disc
	combined.Mode = "discover_then_repair"
	status, comboBody := goldenBody(t, http.MethodPost, ts.URL+"/v1/discover", combined, "")
	if status != http.StatusOK {
		t.Fatalf("combined status %d: %s", status, comboBody)
	}
	comboLines := ndjsonLines(t, comboBody)
	_, comboSigmaAt := sigmaOf(t, comboLines)

	// The mining prefix is identical, and the rows after the sigma frame
	// are exactly the two-step frontier.
	if mining := comboLines[:comboSigmaAt+1]; len(mining) != len(mineLines) {
		t.Fatalf("combined mining prefix has %d frames, two-step %d", len(mining), len(mineLines))
	}
	for i, l := range comboLines[:comboSigmaAt+1] {
		if l != mineLines[i] {
			t.Errorf("mining frame %d:\n  combined %s\n  two-step %s", i, l, mineLines[i])
		}
	}
	rows := comboLines[comboSigmaAt+1:]
	if len(rows) != len(twoStep) {
		t.Fatalf("combined repair section has %d rows, two-step %d:\n%s",
			len(rows), len(twoStep), strings.Join(rows, "\n"))
	}
	for i := range twoStep {
		if rows[i] != twoStep[i] {
			t.Errorf("repair row %d:\n  combined %s\n  two-step %s", i, rows[i], twoStep[i])
		}
	}
}

// TestDiscoverThenRepairEmptySigma: when mining finds nothing, the
// appended sweep has no Σ to repair against — in-band empty_fd_set after
// the (empty) sigma frame.
func TestDiscoverThenRepairEmptySigma(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	// No FD holds in either direction, even approximately at 0 error.
	resp := postJSON(t, ts.URL+"/v1/datasets", registerRequest{Name: "nofd", CSV: "A,B\n1,1\n1,2\n2,1\n2,2\n"})
	resp.Body.Close()

	status, body := goldenBody(t, http.MethodPost, ts.URL+"/v1/discover",
		DiscoverRequest{Dataset: "nofd", MaxLHS: 1, Mode: "discover_then_repair"}, "")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	lines := ndjsonLines(t, body)
	sigma, at := sigmaOf(t, lines)
	if sigma != "" || at != 0 {
		t.Fatalf("want empty sigma frame first, got %q at %d", sigma, at)
	}
	var errFrame ErrorBody
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &errFrame); err != nil {
		t.Fatal(err)
	}
	if errFrame.Error.Code != codeEmptyFDSet {
		t.Errorf("in-band error code = %q, want %q", errFrame.Error.Code, codeEmptyFDSet)
	}
}

// TestDiscoverErrors pins the pre-stream error mapping of /v1/discover.
func TestDiscoverErrors(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	registerKeyed(t, ts.URL)

	cases := []struct {
		name   string
		req    DiscoverRequest
		status int
		code   string
	}{
		{"unknown dataset", DiscoverRequest{Dataset: "nope"}, http.StatusNotFound, codeUnknownDataset},
		{"bad attrs name", DiscoverRequest{Dataset: "keyed", Attrs: "Name,Nope"}, http.StatusBadRequest, codeBadRequest},
		{"bad mode", DiscoverRequest{Dataset: "keyed", Mode: "repair_then_discover"}, http.StatusBadRequest, codeBadRequest},
		{"negative max_error", DiscoverRequest{Dataset: "keyed", MaxError: -0.1}, http.StatusBadRequest, codeBadRequest},
		{"max_error above 1", DiscoverRequest{Dataset: "keyed", MaxError: 1.5}, http.StatusBadRequest, codeBadRequest},
		{"negative max_lhs", DiscoverRequest{Dataset: "keyed", MaxLHS: -1}, http.StatusBadRequest, codeBadRequest},
		{"negative tau_low", DiscoverRequest{Dataset: "keyed", TauLow: -1}, http.StatusBadRequest, codeBadRequest},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/discover", c.req)
		detail := wantErrorCode(t, resp, c.status, c.code)
		if detail.Message == "" {
			t.Errorf("%s: empty message", c.name)
		}
	}

	// Unknown fields are a malformed request, same as the repair decoder.
	resp, err := http.Post(ts.URL+"/v1/discover", "application/json",
		strings.NewReader(`{"dataset":"keyed","surprise":1}`))
	if err != nil {
		t.Fatal(err)
	}
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)

	// An attrs restriction outside the schema is the same mismatch class
	// as a misfit FD: 422 schema_mismatch. The HTTP path cannot produce it
	// (names resolve against the schema), so pin the mapping directly.
	if status, body := mapError(&relatrust.AttrsRangeError{Attr: 7, Width: 3}, nil); status != http.StatusUnprocessableEntity || body.Error.Code != codeSchemaMismatch {
		t.Errorf("AttrsRangeError maps to %d %s", status, body.Error.Code)
	}
}

// TestDiscoverMaxResults: the cap truncates the stream without an error,
// and the sigma frame carries exactly the streamed FDs.
func TestDiscoverMaxResults(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	registerKeyed(t, ts.URL)

	status, body := goldenBody(t, http.MethodPost, ts.URL+"/v1/discover",
		DiscoverRequest{Dataset: "keyed", MaxLHS: 2, MaxResults: 2}, "")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	lines := ndjsonLines(t, body)
	sigma, at := sigmaOf(t, lines)
	if at != 2 {
		t.Fatalf("want 2 fd frames before sigma, got %d:\n%s", at, strings.Join(lines, "\n"))
	}
	var frame struct {
		FDs int `json:"fds"`
	}
	if err := json.Unmarshal([]byte(lines[at]), &frame); err != nil {
		t.Fatal(err)
	}
	if frame.FDs != 2 || sigma == "" {
		t.Errorf("sigma frame = %s, want 2 FDs", lines[at])
	}
}

// TestDiscoverSharesSweepAdmission: a discovery run holds a sweep slot,
// so a saturated dataset sheds it with 429 like any sweep.
func TestDiscoverSharesSweepAdmission(t *testing.T) {
	obs := &discoverObserver{}
	ts, _, _ := newTestServer(t, Options{ObserveDiscovery: obs.observe, MaxSweepsPerDataset: 1})
	registerKeyed(t, ts.URL)

	reached := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	obs.set(func(_ string, level, _ int) {
		once.Do(func() {
			close(reached)
			<-release
		})
	})
	defer obs.set(nil)

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/discover", "application/json",
			strings.NewReader(`{"dataset":"keyed"}`))
		if err == nil {
			_, err = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()
	select {
	case <-reached:
	case <-time.After(5 * time.Second):
		t.Fatal("first discovery never started mining")
	}
	resp := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Dataset: "keyed"})
	wantErrorCode(t, resp, http.StatusTooManyRequests, codeOverloaded)
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}
