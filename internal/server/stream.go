package server

import (
	"encoding/json"
	"net/http"
	"strings"
)

// stream frames the frontier rows of one /v1/repair response and flushes
// every frame immediately, so each Pareto point reaches the client the
// moment its trust level finishes. Two framings:
//
//   - NDJSON (default, application/x-ndjson): one JSON object per line —
//     data rows only; an error mid-sweep is a final {"error": ...} line,
//     and a clean EOF without one means the frontier completed.
//   - SSE (Accept: text/event-stream): "repair" events carrying the same
//     JSON rows, a terminal "done" event on success, an "error" event on
//     failure.
type stream struct {
	w   http.ResponseWriter
	rc  *http.ResponseController
	sse bool
}

// wantSSE reports whether the request asked for an event stream.
func wantSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// newStream writes the response headers and returns the framer. The
// status is committed here: stream errors after this point travel in-band.
func newStream(w http.ResponseWriter, r *http.Request) *stream {
	st := &stream{w: w, rc: http.NewResponseController(w), sse: wantSSE(r)}
	if st.sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	// Proxies that buffer streaming responses (nginx) honor this opt-out.
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	_ = st.rc.Flush()
	return st
}

// row emits one frontier frame and flushes it.
func (st *stream) row(v any) error {
	if st.sse {
		return st.event("repair", v)
	}
	return st.line(v)
}

// rawRow emits one already-encoded frontier frame (the job tier
// checkpoints encoded rows, so replay and live rows share exact bytes
// with /v1/repair's output: NDJSON appends the newline json.Encoder
// would, SSE wraps the same payload in a "repair" event).
func (st *stream) rawRow(payload []byte) error {
	if st.sse {
		if _, err := st.w.Write([]byte("event: repair\ndata: " + string(payload) + "\n\n")); err != nil {
			return err
		}
		return st.rc.Flush()
	}
	// Two writes, not append(payload, '\n'): the frame bytes are shared
	// with the job's in-memory log and must never be grown in place.
	if _, err := st.w.Write(payload); err != nil {
		return err
	}
	if _, err := st.w.Write([]byte{'\n'}); err != nil {
		return err
	}
	return st.rc.Flush()
}

// fail emits the in-band error frame.
func (st *stream) fail(body ErrorBody) {
	if st.sse {
		_ = st.event("error", body)
		return
	}
	_ = st.line(body)
}

// done closes an SSE stream with the terminal event (NDJSON ends at EOF).
func (st *stream) done(rows int) {
	if !st.sse {
		return
	}
	_ = st.event("done", struct {
		Rows int `json:"rows"`
	}{rows})
}

// line writes one NDJSON frame. json.Encoder appends the newline.
func (st *stream) line(v any) error {
	if err := json.NewEncoder(st.w).Encode(v); err != nil {
		return err
	}
	return st.rc.Flush()
}

// event writes one SSE frame. The payload is a single JSON line, so one
// data: field suffices.
func (st *stream) event(name string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := st.w.Write([]byte("event: " + name + "\ndata: " + string(payload) + "\n\n")); err != nil {
		return err
	}
	return st.rc.Flush()
}
