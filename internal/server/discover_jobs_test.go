package server

// End-to-end tests of the discovery job tier (POST /v1/jobs/discover):
// lifecycle and byte-identity with /v1/discover, content-address
// canonicalization and coalescing, and restart-resume via deterministic
// replay.

import (
	"net/http"
	"testing"

	"relatrust"
)

// submitDiscoverJob posts the request to /v1/jobs/discover and decodes
// the job body.
func submitDiscoverJob(t *testing.T, base string, req DiscoverRequest) (JobInfo, int) {
	t.Helper()
	resp := postJSON(t, base+"/v1/jobs/discover", req)
	status := resp.StatusCode
	if status != http.StatusOK && status != http.StatusCreated {
		t.Fatalf("submit discover job: status %d", status)
	}
	var info JobInfo
	decodeBody(t, resp, &info)
	return info, status
}

// TestDiscoverJobLifecycle: a discovery job's stream is byte-identical to
// /v1/discover over the same knobs, identical submissions coalesce (with
// max_lhs defaulted into the address), and the job reports its kind.
func TestDiscoverJobLifecycle(t *testing.T) {
	want := discoverFrames(t, keyCSV, relatrust.DiscoverOptions{MaxLHS: 2})
	ts, _, _ := newJobServer(t, "", "", Options{})
	registerKeyed(t, ts.URL)

	info, status := submitDiscoverJob(t, ts.URL, DiscoverRequest{Dataset: "keyed", MaxLHS: 2})
	if status != http.StatusCreated {
		t.Fatalf("first submission status %d, want 201", status)
	}
	if info.Kind != "discover" || info.MaxLHS != 2 || info.Dataset != "keyed" {
		t.Fatalf("job info = %+v", info)
	}
	done := waitJob(t, ts.URL, info.ID, func(i JobInfo) bool { return i.State == "completed" }, "completed")
	if done.Rows != len(want) {
		t.Fatalf("job finished with %d frames, want %d", done.Rows, len(want))
	}

	rows, terminal := readJobStream(t, ts.URL, info.ID, 0)
	if terminal != nil {
		t.Fatalf("stream terminal %+v", terminal)
	}
	if len(rows) != len(want) {
		t.Fatalf("stream has %d frames, want %d", len(rows), len(want))
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("frame %d:\n  job  %s\n  want %s", i, rows[i], want[i])
		}
	}

	// Identical resubmission coalesces onto the finished job.
	again, status := submitDiscoverJob(t, ts.URL, DiscoverRequest{Dataset: "keyed", MaxLHS: 2})
	if status != http.StatusOK || again.ID != info.ID {
		t.Errorf("resubmit: status %d id %s, want 200 and %s", status, again.ID, info.ID)
	}

	// max_lhs 0 defaults to 3 before hashing, so 0 and 3 share an address
	// — and differ from the max_lhs 2 job.
	zero, _ := submitDiscoverJob(t, ts.URL, DiscoverRequest{Dataset: "keyed"})
	three, status := submitDiscoverJob(t, ts.URL, DiscoverRequest{Dataset: "keyed", MaxLHS: 3})
	if zero.ID != three.ID {
		t.Errorf("max_lhs 0 and 3 address different jobs: %s vs %s", zero.ID, three.ID)
	}
	if status != http.StatusOK {
		t.Errorf("max_lhs 3 resubmit started a new sweep (status %d)", status)
	}
	if zero.ID == info.ID {
		t.Error("max_lhs 3 job coalesced onto the max_lhs 2 job")
	}
}

// TestDiscoverJobSubmitValidation pins the submission-time errors.
func TestDiscoverJobSubmitValidation(t *testing.T) {
	ts, _, _ := newJobServer(t, "", "", Options{})
	registerKeyed(t, ts.URL)

	resp := postJSON(t, ts.URL+"/v1/jobs/discover", DiscoverRequest{Dataset: "nope"})
	wantErrorCode(t, resp, http.StatusNotFound, codeUnknownDataset)

	resp = postJSON(t, ts.URL+"/v1/jobs/discover", DiscoverRequest{Dataset: "keyed", Mode: "discover_then_repair"})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)

	resp = postJSON(t, ts.URL+"/v1/jobs/discover", DiscoverRequest{Dataset: "keyed", Attrs: "Name,Nope"})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)

	resp = postJSON(t, ts.URL+"/v1/jobs/discover", DiscoverRequest{Dataset: "keyed", MaxError: 2})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)
}

// TestDiscoverJobAttrsCanonicalized: attrs spelled differently address
// the same job once resolved against the schema.
func TestDiscoverJobAttrsCanonicalized(t *testing.T) {
	ts, _, _ := newJobServer(t, "", "", Options{})
	registerKeyed(t, ts.URL)

	a, _ := submitDiscoverJob(t, ts.URL, DiscoverRequest{Dataset: "keyed", Attrs: "Floor, Dept"})
	b, _ := submitDiscoverJob(t, ts.URL, DiscoverRequest{Dataset: "keyed", Attrs: "Dept,Floor"})
	if a.ID != b.ID {
		t.Errorf("equivalent attrs address different jobs: %s vs %s", a.ID, b.ID)
	}
	if a.Attrs != "Dept,Floor" {
		t.Errorf("canonical attrs = %q, want position order", a.Attrs)
	}
}

// TestDiscoverJobResumesAcrossRestart: an interrupted discovery job keeps
// its checkpointed frames, the next boot resumes it by deterministic
// replay, and the concatenated stream is byte-identical to an
// uninterrupted run. A third boot replays from the log without mining.
func TestDiscoverJobResumesAcrossRestart(t *testing.T) {
	want := discoverFrames(t, keyCSV, relatrust.DiscoverOptions{MaxLHS: 2})
	dataDir, jobsDir := t.TempDir(), t.TempDir()

	dobs := &discoverObserver{}
	ts1, srv1, _ := newJobServer(t, dataDir, jobsDir, Options{ObserveDiscovery: dobs.observe})
	registerKeyed(t, ts1.URL)

	// Gate the mining goroutine at level 2: the level-1 FDs are already
	// checkpointed, the run is provably unfinished.
	reached := make(chan struct{})
	release := make(chan struct{})
	dobs.set(func(_ string, level, _ int) {
		if level == 2 {
			close(reached)
			<-release
		}
	})

	info, _ := submitDiscoverJob(t, ts1.URL, DiscoverRequest{Dataset: "keyed", MaxLHS: 2})
	<-reached
	partial := getJob(t, ts1.URL, info.ID)
	if partial.Rows == 0 || partial.Rows >= len(want) {
		t.Fatalf("gated job checkpointed %d frames, want mid-run", partial.Rows)
	}
	srv1.BeginShutdown()
	close(release)
	dobs.set(nil)
	rows, terminal := readJobStream(t, ts1.URL, info.ID, 0)
	if terminal == nil || terminal.Code != codeShuttingDown {
		t.Fatalf("interrupted stream terminal %+v after %d frames", terminal, len(rows))
	}
	ts1.Close()
	srv1.Close()

	ts2, srv2, _ := newJobServer(t, dataDir, jobsDir, Options{})
	n, err := srv2.RecoverJobs()
	if err != nil || n != 1 {
		t.Fatalf("RecoverJobs = %d, %v, want 1 resumed", n, err)
	}
	done := waitJob(t, ts2.URL, info.ID, func(i JobInfo) bool { return i.State == "completed" }, "completed")
	if done.Rows != len(want) {
		t.Fatalf("resumed job finished with %d frames, want %d", done.Rows, len(want))
	}
	got, terminal := readJobStream(t, ts2.URL, info.ID, 0)
	if terminal != nil {
		t.Fatalf("resumed stream terminal %+v", terminal)
	}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("resumed frame %d differs:\n  job  %s\n  want %s", i, got[i], want[i])
		}
	}

	// Third boot: the record is terminal and the sigma frame closes the
	// log, so nothing resumes and nothing mines — pure replay.
	ts3, srv3, _ := newJobServer(t, dataDir, jobsDir, Options{})
	n, err = srv3.RecoverJobs()
	if err != nil || n != 0 {
		t.Fatalf("third boot RecoverJobs = %d, %v, want 0", n, err)
	}
	replayed, terminal := readJobStream(t, ts3.URL, info.ID, 0)
	if terminal != nil || len(replayed) != len(want) {
		t.Fatalf("third-boot replay: %d frames, terminal %+v", len(replayed), terminal)
	}
	if d := srv3.lookup("keyed").statz(); d.SweepsStarted != 0 {
		t.Errorf("third boot started %d sweeps, want 0 (replay only)", d.SweepsStarted)
	}
}
