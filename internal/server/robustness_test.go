package server

// Crash-safety tests: panic recovery on every sweep path, durable
// registration with restart recovery, load shedding under a saturated
// registry, and graceful shutdown. The fault-injection build
// (-tags faultinject) adds I/O-level fault tests in faultinject_test.go.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"relatrust"

	"relatrust/internal/store"
	"relatrust/internal/testkit"
)

// quietLogger drops panic stacks during the panic tests so expected
// failures do not spray the test log, while still exercising the logging
// path.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestPanicPreCommitStructured500: an Observe callback that panics at the
// very start of a budget sweep unwinds on the handler goroutine before any
// response bytes are written. The client gets a structured 500
// internal_panic, the process stays up, and the dataset's shared session
// serves an identical follow-up sweep.
func TestPanicPreCommitStructured500(t *testing.T) {
	want := frontierFrames(t, 9)
	ts, srv, obs := newTestServer(t, Options{Logger: quietLogger()})
	registerPaper(t, ts.URL)
	client := ts.Client()

	// Warm up so the goroutine baseline reflects an idle-but-warm server.
	resp := postJSON(t, ts.URL+"/v1/repair/budget", RepairRequest{Dataset: "paper", FDs: paperFDs, Tau: ptr(2), Seed: 9})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	client.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	obs.set(func(_ string, ev relatrust.ProgressEvent) {
		if ev.Kind == relatrust.ProgressSweepStarted {
			panic("injected: observer exploded at sweep start")
		}
	})
	resp = postJSON(t, ts.URL+"/v1/repair/budget", RepairRequest{Dataset: "paper", FDs: paperFDs, Tau: ptr(2), Seed: 9})
	wantErrorCode(t, resp, http.StatusInternalServerError, codeInternalPanic)
	obs.set(nil)

	d := srv.lookup("paper").statz()
	if d.SweepsFailed != 1 {
		t.Errorf("sweeps_failed = %d, want 1", d.SweepsFailed)
	}
	if got := srv.panics.Load(); got != 1 {
		t.Errorf("panics recovered = %d, want 1", got)
	}
	if d.ActiveSweeps != 0 {
		t.Errorf("active sweeps = %d after the panic; the slot leaked", d.ActiveSweeps)
	}
	client.CloseIdleConnections()
	testkit.WaitGoroutineBaseline(t, baseline)

	// The shared session is unharmed: the full frontier still streams
	// byte-identically.
	assertFullFrontier(t, client, ts.URL, want, "post-panic")
}

// TestPanicMidStreamInBand: a panic after the 200 is committed and rows
// are in flight cannot become a status code; it must arrive as the
// stream's in-band error frame, with the session unharmed.
func TestPanicMidStreamInBand(t *testing.T) {
	want := frontierFrames(t, 9)
	ts, srv, obs := newTestServer(t, Options{Logger: quietLogger()})
	registerPaper(t, ts.URL)
	client := ts.Client()

	// Warm up, as above.
	assertFullFrontier(t, client, ts.URL, want, "warm-up")
	client.CloseIdleConnections()
	baseline := runtime.NumGoroutine()
	warmBuilds := srv.lookup("paper").statz().SessionBuilds

	// Panic on the sweeping goroutine at the second finished trust level —
	// by then the first row has provably been flushed to the client.
	var once sync.Once
	finished := 0
	obs.set(func(_ string, ev relatrust.ProgressEvent) {
		if ev.Kind != relatrust.ProgressTauFinished {
			return
		}
		finished++
		if finished == 2 {
			once.Do(func() { panic("injected: observer exploded mid-stream") })
		}
	})
	resp, err := client.Post(ts.URL+"/v1/repair", "application/json", repairBody(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (the panic hits after commit)", resp.StatusCode)
	}
	var dataRows int
	var errFrame *ErrorDetail
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var frame struct {
			Error *ErrorDetail `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &frame); err != nil {
			t.Fatalf("non-JSON frame %q: %v", sc.Text(), err)
		}
		if frame.Error != nil {
			errFrame = frame.Error
			continue
		}
		dataRows++
	}
	resp.Body.Close()
	obs.set(nil)
	if errFrame == nil {
		t.Fatal("stream ended without an in-band error frame")
	}
	if errFrame.Code != codeInternalPanic {
		t.Errorf("in-band error code = %q, want %q", errFrame.Code, codeInternalPanic)
	}
	if dataRows < 1 {
		t.Error("no data rows before the in-band panic frame")
	}
	if dataRows >= len(want) {
		t.Errorf("all %d rows streamed; the panic should have cut the sweep short", dataRows)
	}

	d := srv.lookup("paper").statz()
	if d.SweepsFailed != 1 {
		t.Errorf("sweeps_failed = %d, want 1", d.SweepsFailed)
	}
	client.CloseIdleConnections()
	testkit.WaitGoroutineBaseline(t, baseline)

	// Identical follow-up over the same shared session, with no rebuild:
	// the engine's cached roots survived the panic.
	assertFullFrontier(t, client, ts.URL, want, "post-panic")
	d = srv.lookup("paper").statz()
	if d.SessionBuilds != warmBuilds {
		t.Errorf("session builds = %d after mid-stream panic, want %d (no rebuild)", d.SessionBuilds, warmBuilds)
	}
}

// assertFullFrontier streams the fixture sweep and requires the exact
// oracle frames.
func assertFullFrontier(t *testing.T, client *http.Client, base string, want []string, label string) {
	t.Helper()
	resp, err := client.Post(base+"/v1/repair", "application/json", repairBody(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status = %d", label, resp.StatusCode)
	}
	var got []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		got = append(got, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: streamed %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s row %d:\n  streamed %s\n  want     %s", label, i, got[i], want[i])
		}
	}
}

func ptr[T any](v T) *T { return &v }

// newDurableServer builds a Server over a snapshot store in dir.
func newDurableServer(t *testing.T, dir string) (*httptest.Server, *Server, *observer) {
	t.Helper()
	st, err := store.Open(dir, store.Options{Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	obs := &observer{}
	srv := New(Options{Store: st, Observe: obs.observe, Logger: quietLogger()})
	if _, err := srv.Rehydrate(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv, obs
}

// TestRestartRecoversMidStream is the kill-and-restart e2e at the handler
// level: a dataset is registered durably, a streaming sweep over it is
// abandoned mid-flight (the "crash"), a second server boots from the same
// directory, and the recovered dataset serves a frontier byte-identical
// to a fresh in-process sweep — without the client ever re-uploading.
func TestRestartRecoversMidStream(t *testing.T) {
	want := frontierFrames(t, 9)
	dir := t.TempDir()

	ts1, _, obs1 := newDurableServer(t, dir)
	registerPaper(t, ts1.URL)

	// Park a sweep mid-stream, then sever the client — the first server's
	// useful life ends with a stream in flight, like a crash would.
	reached, release := gateAtSecondTau(obs1)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts1.URL+"/v1/repair", repairBody(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts1.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading first streamed row: %v", err)
	}
	select {
	case <-reached:
	case <-time.After(5 * time.Second):
		t.Fatal("sweep never reached the gate")
	}
	cancel()
	resp.Body.Close()
	close(release)
	obs1.set(nil)

	// Second boot over the same directory: the registry rehydrates from
	// the snapshot, codes and all, and the frontier is exactly the fresh
	// sweep's.
	ts2, srv2, _ := newDurableServer(t, dir)
	var listed struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	resp, err = http.Get(ts2.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &listed)
	if len(listed.Datasets) != 1 || listed.Datasets[0].Name != "paper" {
		t.Fatalf("rehydrated registry = %+v, want just %q", listed.Datasets, "paper")
	}
	assertFullFrontier(t, ts2.Client(), ts2.URL, want, "recovered")

	st := srv2.statzBody()
	if st.Store == nil || st.Store.Loads != 1 {
		t.Errorf("store statz after rehydration = %+v", st.Store)
	}
}

// TestDeleteRemovesSnapshot: deletion writes through, so a deleted dataset
// stays deleted across a restart.
func TestDeleteRemovesSnapshot(t *testing.T) {
	dir := t.TempDir()
	ts1, _, _ := newDurableServer(t, dir)
	registerPaper(t, ts1.URL)

	req, err := http.NewRequest(http.MethodDelete, ts1.URL+"/v1/datasets/paper", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}

	_, srv2, _ := newDurableServer(t, dir)
	srv2.mu.RLock()
	n := len(srv2.datasets)
	srv2.mu.RUnlock()
	if n != 0 {
		t.Errorf("deleted dataset resurfaced after restart (%d registered)", n)
	}
}

// TestRehydrateSkipsCorrupt: a snapshot damaged on disk is quarantined at
// boot; the healthy dataset loads and serves.
func TestRehydrateSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	ts1, _, _ := newDurableServer(t, dir)
	registerPaper(t, ts1.URL)
	resp := postJSON(t, ts1.URL+"/v1/datasets", registerRequest{Name: "doomed", CSV: multiCSV})
	resp.Body.Close()

	corruptSnapshot(t, dir, "doomed")

	ts2, srv2, _ := newDurableServer(t, dir)
	if d := srv2.lookup("doomed"); d != nil {
		t.Error("corrupt dataset rehydrated anyway")
	}
	if d := srv2.lookup("paper"); d == nil {
		t.Fatal("healthy dataset missing after rehydration")
	}
	st := srv2.statzBody()
	if st.Store == nil || st.Store.Quarantined != 1 {
		t.Errorf("store statz = %+v, want 1 quarantined", st.Store)
	}
	assertFullFrontier(t, ts2.Client(), ts2.URL, frontierFrames(t, 9), "post-quarantine")
}

// corruptSnapshot flips one payload byte of the dataset's snapshot file.
func corruptSnapshot(t *testing.T, dir, name string) {
	t.Helper()
	path := filepath.Join(dir, name+".snap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x5a
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDrainsInFlight: after BeginShutdown, new sweeps get 503
// shutting_down while the in-flight stream finishes inside the drain
// deadline; a drain cut short by its context reports the deadline.
func TestShutdownDrainsInFlight(t *testing.T) {
	want := frontierFrames(t, 9)
	ts, srv, obs := newTestServer(t, Options{})
	registerPaper(t, ts.URL)

	reached, release := gateAtSecondTau(obs)
	defer obs.set(nil)

	resp1, err := http.Post(ts.URL+"/v1/repair", "application/json", repairBody(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	defer resp1.Body.Close()
	select {
	case <-reached:
	case <-time.After(5 * time.Second):
		t.Fatal("sweep never reached the gate")
	}

	srv.BeginShutdown()

	// New sweeps are refused outright — before touching the semaphores.
	resp2, err := http.Post(ts.URL+"/v1/repair", "application/json", repairBody(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	wantErrorCode(t, resp2, http.StatusServiceUnavailable, codeShuttingDown)

	// A drain bounded tighter than the gated sweep reports its deadline.
	shortCtx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	if err := srv.Drain(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("short drain = %v, want deadline exceeded", err)
	}
	cancel()

	// Release the gate: the in-flight stream completes in full and the
	// drain goes clean.
	close(release)
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain after release: %v", err)
	}
	var rows int
	sc := bufio.NewScanner(resp1.Body)
	for sc.Scan() {
		rows++
	}
	if rows != len(want) {
		t.Errorf("draining stream delivered %d rows, want %d", rows, len(want))
	}
	srv.Close()
	if d := srv.lookup("paper"); d != nil {
		t.Error("registry not empty after Close")
	}
}

// TestMetricsGolden freezes the clock, runs one deterministic sweep, and
// pins the full Prometheus exposition output.
func TestMetricsGolden(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Store: st, Logger: quietLogger()})
	srv.now = func() time.Time { return srv.start.Add(90 * time.Second) }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	registerPaper(t, ts.URL)
	resp := postJSON(t, ts.URL+"/v1/datasets", registerRequest{Name: "two", CSV: multiCSV})
	resp.Body.Close()

	// One finished sequential sweep gives stable nonzero counters (the
	// partition-cache hit rate of the parallel engine varies with
	// GOMAXPROCS; workers=1 does not).
	raw, err := json.Marshal(RepairRequest{Dataset: "paper", FDs: paperFDs, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/repair", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	checkGolden(t, "metrics.golden", body)
}
