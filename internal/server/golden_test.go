package server

// Golden-file tests for the wire formats: the NDJSON and SSE frontier
// streams and the structured error bodies. A diff in testdata/ means a
// serialization change a client would see — make it deliberately, with
// -update.

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("%s drifted from golden file (intentional changes: re-run with -update):\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// goldenServer registers the deterministic fixtures used by every golden
// request.
func goldenServer(t *testing.T) *httptestServerHandle {
	t.Helper()
	ts, _, _ := newTestServer(t, Options{})
	registerPaper(t, ts.URL)
	resp := postJSON(t, ts.URL+"/v1/datasets", registerRequest{Name: "two", CSV: "City,ZIP\nA,1\nA,2\n"})
	resp.Body.Close()
	return &httptestServerHandle{URL: ts.URL}
}

// httptestServerHandle keeps the golden helpers free of the httptest
// import juggling; only the base URL matters here.
type httptestServerHandle struct{ URL string }

// body performs the request and returns the raw response body.
func goldenBody(t *testing.T, method, url string, reqBody any, accept string) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(reqBody)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, got
}

func TestGoldenFrontierNDJSON(t *testing.T) {
	h := goldenServer(t)
	status, got := goldenBody(t, http.MethodPost, h.URL+"/v1/repair",
		RepairRequest{Dataset: "paper", FDs: paperFDs, Seed: 1}, "")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	checkGolden(t, "frontier.ndjson.golden", got)
}

func TestGoldenFrontierNDJSONWithChanges(t *testing.T) {
	h := goldenServer(t)
	status, got := goldenBody(t, http.MethodPost, h.URL+"/v1/repair",
		RepairRequest{Dataset: "paper", FDs: paperFDs, Seed: 1, IncludeChanges: true}, "")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	checkGolden(t, "frontier.changes.ndjson.golden", got)
}

func TestGoldenFrontierSSE(t *testing.T) {
	h := goldenServer(t)
	status, got := goldenBody(t, http.MethodPost, h.URL+"/v1/repair",
		RepairRequest{Dataset: "paper", FDs: paperFDs, Seed: 1}, "text/event-stream")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	checkGolden(t, "frontier.sse.golden", got)
}

func TestGoldenDiscoverNDJSON(t *testing.T) {
	h := goldenServer(t)
	status, got := goldenBody(t, http.MethodPost, h.URL+"/v1/discover",
		DiscoverRequest{Dataset: "paper", MaxLHS: 2}, "")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	checkGolden(t, "discover.ndjson.golden", got)
}

func TestGoldenDiscoverSSE(t *testing.T) {
	h := goldenServer(t)
	status, got := goldenBody(t, http.MethodPost, h.URL+"/v1/discover",
		DiscoverRequest{Dataset: "paper", MaxLHS: 2}, "text/event-stream")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	checkGolden(t, "discover.sse.golden", got)
}

func TestGoldenDiscoverThenRepairNDJSON(t *testing.T) {
	h := goldenServer(t)
	status, got := goldenBody(t, http.MethodPost, h.URL+"/v1/discover",
		DiscoverRequest{Dataset: "paper", MaxLHS: 2, MaxError: 0.3, Mode: "discover_then_repair", Seed: 1}, "")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	checkGolden(t, "discover.then_repair.ndjson.golden", got)
}

func TestGoldenBudgetRepair(t *testing.T) {
	h := goldenServer(t)
	tau := 2
	status, got := goldenBody(t, http.MethodPost, h.URL+"/v1/repair/budget",
		RepairRequest{Dataset: "paper", FDs: paperFDs, Tau: &tau, Seed: 1, IncludeChanges: true}, "")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	checkGolden(t, "budget.json.golden", got)
}

// TestGoldenErrorBodies pins the structured error envelope for the error
// shapes a client must dispatch on.
func TestGoldenErrorBodies(t *testing.T) {
	h := goldenServer(t)
	zero, three := 0, 3
	cases := []struct {
		name   string
		url    string
		body   RepairRequest
		status int
	}{
		{"error.unknown_dataset.json.golden", "/v1/repair/budget",
			RepairRequest{Dataset: "nope", FDs: paperFDs, Tau: &zero}, http.StatusNotFound},
		{"error.bad_fds.json.golden", "/v1/repair/budget",
			RepairRequest{Dataset: "paper", FDs: "A->", Tau: &zero}, http.StatusBadRequest},
		{"error.no_repair_in_budget.json.golden", "/v1/repair/budget",
			RepairRequest{Dataset: "two", FDs: "City->ZIP", Tau: &zero}, http.StatusConflict},
		// τ=3 sits between the feasibility floor and δP=4, so the search
		// must actually expand states and the one-visit cap fires.
		{"error.max_visited.json.golden", "/v1/repair/budget",
			RepairRequest{Dataset: "paper", FDs: paperFDs, Tau: &three, MaxVisited: 1}, http.StatusServiceUnavailable},
	}
	for _, c := range cases {
		status, got := goldenBody(t, http.MethodPost, h.URL+c.url, c.body, "")
		if status != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, status, c.status, got)
			continue
		}
		checkGolden(t, c.name, got)
	}
}
