package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// handleMetrics renders the /statz counters in the Prometheus text
// exposition format (version 0.0.4), so the daemon plugs into a standard
// scrape config with no client library. Per-dataset series carry a
// dataset label; dataset names are emitted in sorted order and the label
// value is escaped per the format's rules, so output for a fixed registry
// state is deterministic (golden-tested).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	body := s.statzBody()
	var b strings.Builder

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, formatMetric(v))
	}
	gauge("relatrust_uptime_seconds", "Seconds since the server started.", body.UptimeSeconds)
	gauge("relatrust_datasets", "Registered datasets.", float64(body.Sessions))
	gauge("relatrust_warm_sessions", "Datasets currently holding a warm session.", float64(body.WarmSessions))
	gauge("relatrust_sessions_evicted_total", "Warm sessions evicted under MaxWarmSessions.", float64(body.SessionsEvicted))
	gauge("relatrust_panics_recovered_total", "Panics contained by the recovery layers.", float64(body.PanicsRecovered))

	gauge("relatrust_jobs_active", "Jobs currently running.", float64(body.Jobs.Active))
	gauge("relatrust_jobs_completed", "Jobs whose frontier completed.", float64(body.Jobs.Completed))
	gauge("relatrust_jobs_failed", "Jobs that ended in an error.", float64(body.Jobs.Failed))
	gauge("relatrust_jobs_cancelled", "Jobs cancelled by request or dataset deletion.", float64(body.Jobs.Cancelled))
	gauge("relatrust_jobs_resumed_total", "Job sweeps resumed from a checkpoint.", float64(body.Jobs.Resumed))
	gauge("relatrust_jobs_coalesced_total", "Job submissions answered by an existing job.", float64(body.Jobs.Coalesced))
	gauge("relatrust_job_checkpoint_bytes_total", "Bytes appended to durable job result logs.", float64(body.Jobs.CheckpointBytes))
	gauge("relatrust_job_results_evicted_bytes_total", "Result-log bytes evicted under MaxJobResultsBytes.", float64(body.Jobs.ResultsEvictedBytes))

	if body.Store != nil {
		gauge("relatrust_store_saves_total", "Dataset snapshots written.", float64(body.Store.Saves))
		gauge("relatrust_store_loads_total", "Dataset snapshots loaded.", float64(body.Store.Loads))
		gauge("relatrust_store_quarantined_total", "Corrupt snapshots quarantined.", float64(body.Store.Quarantined))
	}

	perDataset := []struct {
		name string
		help string
		get  func(DatasetStatz) float64
	}{
		{"relatrust_dataset_tuples", "Tuples in the dataset.", func(d DatasetStatz) float64 { return float64(d.Tuples) }},
		{"relatrust_active_sweeps", "Sweeps currently holding a slot.", func(d DatasetStatz) float64 { return float64(d.ActiveSweeps) }},
		{"relatrust_sweeps_started_total", "Sweeps admitted.", func(d DatasetStatz) float64 { return float64(d.SweepsStarted) }},
		{"relatrust_sweeps_finished_total", "Sweeps completed cleanly.", func(d DatasetStatz) float64 { return float64(d.SweepsFinished) }},
		{"relatrust_sweeps_cancelled_total", "Sweeps cancelled by disconnect or deadline.", func(d DatasetStatz) float64 { return float64(d.SweepsCancelled) }},
		{"relatrust_sweeps_failed_total", "Sweeps failed by an error or recovered panic.", func(d DatasetStatz) float64 { return float64(d.SweepsFailed) }},
		{"relatrust_sweeps_shed_total", "Sweeps shed with 429 under load.", func(d DatasetStatz) float64 { return float64(d.SweepsShed) }},
		{"relatrust_rows_streamed_total", "Frontier rows streamed to clients.", func(d DatasetStatz) float64 { return float64(d.RowsStreamed) }},
		{"relatrust_partition_cache_hit_rate", "Partition-cache hit rate of the last finished sweep.", func(d DatasetStatz) float64 { return d.PartitionCacheHitRate }},
		{"relatrust_conflict_components", "Conflict-hypergraph components of the last finished sweep.", func(d DatasetStatz) float64 { return float64(d.Components) }},
		{"relatrust_conflict_largest_component_tuples", "Tuples in the largest conflict component of the last finished sweep.", func(d DatasetStatz) float64 { return float64(d.LargestComponent) }},
		{"relatrust_component_parallel_evals_total", "Per-component cover evaluations dispatched across the worker pool by the last finished sweep.", func(d DatasetStatz) float64 { return float64(d.ComponentsParallel) }},
		{"relatrust_session_acquires_total", "Analyses handed out by the shared session.", func(d DatasetStatz) float64 { return float64(d.SessionAcquires) }},
		{"relatrust_session_builds_total", "Analyses built from scratch by the shared session.", func(d DatasetStatz) float64 { return float64(d.SessionBuilds) }},
		{"relatrust_dataset_generation", "Current mutation generation of the dataset.", func(d DatasetStatz) float64 { return float64(d.Generation) }},
		{"relatrust_mutations_applied_total", "Row operations applied by committed mutation batches.", func(d DatasetStatz) float64 { return float64(d.MutationsApplied) }},
		{"relatrust_components_dirtied_total", "Conflict components whose memoized cover state mutations invalidated.", func(d DatasetStatz) float64 { return float64(d.ComponentsDirtied) }},
	}
	for _, m := range perDataset {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", m.name, m.help, m.name)
		// %q escapes backslash and quote exactly as the exposition format
		// wants; newlines cannot occur in dataset names by validation.
		for _, d := range body.Datasets {
			fmt.Fprintf(&b, "%s{dataset=%q} %s\n", m.name, d.Name, formatMetric(m.get(d)))
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}

// formatMetric renders a sample value the way Prometheus expects: integral
// values without an exponent, everything else in Go's shortest form.
func formatMetric(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
