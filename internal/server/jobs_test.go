package server

// End-to-end tests of the durable job tier: lifecycle, byte-identity of
// job streams with /v1/repair, coalescing of identical submissions,
// restart-resume, the dataset-deletion cascade, and both eviction knobs.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"relatrust/internal/store"
)

// newJobServer builds a Server over a snapshot store in dataDir and a job
// store in jobsDir (either may be empty for the in-memory variant), the
// same wiring cmd/relatrustd does. Restart tests call it twice over the
// same directories.
func newJobServer(t *testing.T, dataDir, jobsDir string, opt Options) (*httptest.Server, *Server, *observer) {
	t.Helper()
	obs := &observer{}
	opt.Observe = obs.observe
	if opt.Logger == nil {
		opt.Logger = quietLogger()
	}
	if dataDir != "" {
		st, err := store.Open(dataDir, store.Options{Logger: quietLogger()})
		if err != nil {
			t.Fatal(err)
		}
		opt.Store = st
	}
	if jobsDir != "" {
		js, err := store.OpenJobs(jobsDir, store.Options{Logger: quietLogger()})
		if err != nil {
			t.Fatal(err)
		}
		opt.JobStore = js
	}
	srv := New(opt)
	if opt.Store != nil {
		if _, err := srv.Rehydrate(); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv, obs
}

// submitJob posts the request to /v1/jobs and decodes the job body.
func submitJob(t *testing.T, base string, req RepairRequest) (JobInfo, int) {
	t.Helper()
	resp := postJSON(t, base+"/v1/jobs", req)
	status := resp.StatusCode
	if status != http.StatusOK && status != http.StatusCreated {
		t.Fatalf("submit: status %d", status)
	}
	var info JobInfo
	decodeBody(t, resp, &info)
	return info, status
}

// getJob fetches the job body (the job must exist).
func getJob(t *testing.T, base, id string) JobInfo {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("get job %s: status %d", id, resp.StatusCode)
	}
	var info JobInfo
	decodeBody(t, resp, &info)
	return info
}

// waitJob polls until pred accepts the job's state.
func waitJob(t *testing.T, base, id string, pred func(JobInfo) bool, label string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		info := getJob(t, base, id)
		if pred(info) {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s: %+v", id, label, info)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// readJobStream attaches to the job's NDJSON stream and splits the result
// into data rows and the terminal in-band error (nil on clean EOF).
func readJobStream(t *testing.T, base, id string, from int) ([]string, *ErrorDetail) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/stream?from=%d", base, id, from))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream %s: status %d", id, resp.StatusCode)
	}
	var rows []string
	var terminal *ErrorDetail
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		var eb ErrorBody
		if json.Unmarshal([]byte(line), &eb) == nil && eb.Error.Code != "" {
			if terminal != nil {
				t.Fatalf("stream %s: two error frames", id)
			}
			terminal = &eb.Error
			continue
		}
		if terminal != nil {
			t.Fatalf("stream %s: data row after the error frame", id)
		}
		rows = append(rows, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rows, terminal
}

func jobRequest(seed int64) RepairRequest {
	return RepairRequest{Dataset: "paper", FDs: paperFDs, Seed: seed}
}

// TestJobLifecycleStreamMatchesRepair: a job's replayed stream is
// byte-identical to what /v1/repair streams for the same spec, offsets
// skip replayed rows, and the job shows up in the list and the statz
// counters.
func TestJobLifecycleStreamMatchesRepair(t *testing.T) {
	want := frontierFrames(t, 9)
	ts, srv, _ := newTestServer(t, Options{})
	registerPaper(t, ts.URL)

	info, status := submitJob(t, ts.URL, jobRequest(9))
	if status != http.StatusCreated {
		t.Fatalf("fresh submit: status %d, want 201", status)
	}
	if info.Dataset != "paper" || info.FDs != paperFDs || info.TauHigh != -1 || info.Weights != "distinct-count" {
		t.Fatalf("job body %+v", info)
	}
	done := waitJob(t, ts.URL, info.ID, func(i JobInfo) bool { return i.State == "completed" }, "completed")
	if done.Rows != len(want) {
		t.Fatalf("completed with %d rows, want %d", done.Rows, len(want))
	}

	rows, terminal := readJobStream(t, ts.URL, info.ID, 0)
	if terminal != nil {
		t.Fatalf("completed stream ended with error %+v", terminal)
	}
	if len(rows) != len(want) {
		t.Fatalf("streamed %d rows, want %d", len(rows), len(want))
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("row %d:\n  job    %s\n  repair %s", i, rows[i], want[i])
		}
	}
	// Offsets skip replayed rows; an offset past the end replays nothing.
	tail, _ := readJobStream(t, ts.URL, info.ID, len(want)-1)
	if len(tail) != 1 || tail[0] != want[len(want)-1] {
		t.Errorf("from=%d replayed %q", len(want)-1, tail)
	}
	if none, _ := readJobStream(t, ts.URL, info.ID, 100); len(none) != 0 {
		t.Errorf("from=100 replayed %d rows", len(none))
	}

	var list struct {
		Jobs []JobInfo `json:"jobs"`
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != info.ID {
		t.Errorf("job list %+v", list.Jobs)
	}
	if st := srv.statzBody().Jobs; st.Completed != 1 || st.Active != 0 {
		t.Errorf("jobs statz %+v", st)
	}
}

// TestJobSubmitValidation: malformed submissions are rejected with the
// same structured errors as /v1/repair.
func TestJobSubmitValidation(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	registerPaper(t, ts.URL)

	resp := postJSON(t, ts.URL+"/v1/jobs", RepairRequest{Dataset: "nope", FDs: paperFDs})
	wantErrorCode(t, resp, http.StatusNotFound, codeUnknownDataset)
	resp = postJSON(t, ts.URL+"/v1/jobs", RepairRequest{Dataset: "paper", FDs: "A->Nope"})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadFDs)
	resp = postJSON(t, ts.URL+"/v1/jobs", RepairRequest{Dataset: "paper", FDs: paperFDs, TauLow: 3, TauHigh: ptr(1)})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)
	resp = postJSON(t, ts.URL+"/v1/jobs", RepairRequest{Dataset: "paper", FDs: paperFDs, Weights: "nope"})
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)

	// Bad stream offsets and unknown job ids are structured errors too.
	info, _ := submitJob(t, ts.URL, jobRequest(9))
	resp, err := http.Get(ts.URL + "/v1/jobs/" + info.ID + "/stream?from=-1")
	if err != nil {
		t.Fatal(err)
	}
	wantErrorCode(t, resp, http.StatusBadRequest, codeBadRequest)
	resp, err = http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	wantErrorCode(t, resp, http.StatusNotFound, codeUnknownJob)
}

// TestJobCoalescingOneSweep is the dedupe acceptance test: concurrent
// identical submissions while the sweep runs — and a resubmission after it
// completes — are all answered by the same job, with exactly one admitted
// sweep and one session build.
func TestJobCoalescingOneSweep(t *testing.T) {
	ts, srv, obs := newTestServer(t, Options{})
	registerPaper(t, ts.URL)

	reached, release := gateAtSecondTau(obs)
	defer obs.set(nil)
	first, status := submitJob(t, ts.URL, jobRequest(9))
	if status != http.StatusCreated {
		t.Fatalf("first submit: status %d", status)
	}
	<-reached

	// The sweep is provably mid-flight; identical submissions coalesce
	// without a second admission.
	const dupes = 4
	type res struct {
		info   JobInfo
		status int
	}
	results := make(chan res, dupes)
	for i := 0; i < dupes; i++ {
		go func() {
			info, status := submitJob(t, ts.URL, jobRequest(9))
			results <- res{info, status}
		}()
	}
	for i := 0; i < dupes; i++ {
		r := <-results
		if r.status != http.StatusOK || r.info.ID != first.ID {
			t.Errorf("duplicate submit: status %d id %s, want 200 %s", r.status, r.info.ID, first.ID)
		}
	}
	close(release)
	waitJob(t, ts.URL, first.ID, func(i JobInfo) bool { return i.State == "completed" }, "completed")
	oneSweepBuilds := srv.lookup("paper").statz().SessionBuilds

	// Completed frontiers keep coalescing: served from the result log.
	again, status := submitJob(t, ts.URL, jobRequest(9))
	if status != http.StatusOK || again.ID != first.ID || again.State != "completed" {
		t.Fatalf("post-completion submit: status %d %+v", status, again)
	}

	d := srv.lookup("paper").statz()
	if d.SweepsStarted != 1 {
		t.Errorf("sweeps started = %d, want 1 (coalescing must not admit again)", d.SweepsStarted)
	}
	if d.SessionBuilds != oneSweepBuilds {
		t.Errorf("session builds grew from %d to %d on coalesced submissions", oneSweepBuilds, d.SessionBuilds)
	}
	if got := srv.statzBody().Jobs.Coalesced; got != dupes+1 {
		t.Errorf("coalesced = %d, want %d", got, dupes+1)
	}
}

// TestJobStreamFollowsLive: a follower attached mid-sweep sees replayed
// rows and then live rows as their τ finishes, ending at EOF with the
// exact /v1/repair bytes.
func TestJobStreamFollowsLive(t *testing.T) {
	want := frontierFrames(t, 9)
	ts, _, obs := newTestServer(t, Options{})
	registerPaper(t, ts.URL)

	reached, release := gateAtSecondTau(obs)
	defer obs.set(nil)
	info, _ := submitJob(t, ts.URL, jobRequest(9))
	<-reached

	resp, err := http.Get(ts.URL + "/v1/jobs/" + info.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first row while the sweep is gated: %v", sc.Err())
	}
	if got := sc.Text(); got != want[0] {
		t.Fatalf("live first row:\n  got  %s\n  want %s", got, want[0])
	}
	// The sweep is still gated: the first row arrived before completion.
	close(release)
	got := []string{want[0]}
	for sc.Scan() {
		got = append(got, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("followed %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d:\n  got  %s\n  want %s", i, got[i], want[i])
		}
	}
}

// TestJobShedsNewButCoalescesDuplicates: with the per-dataset cap
// saturated by a running job, a different submission sheds 429 while an
// identical one still coalesces (it needs no slot).
func TestJobShedsNewButCoalescesDuplicates(t *testing.T) {
	ts, _, obs := newTestServer(t, Options{MaxSweepsPerDataset: 1})
	registerPaper(t, ts.URL)

	reached, release := gateAtSecondTau(obs)
	defer obs.set(nil)
	first, _ := submitJob(t, ts.URL, jobRequest(9))
	<-reached

	resp := postJSON(t, ts.URL+"/v1/jobs", jobRequest(10))
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed job response missing Retry-After")
	}
	wantErrorCode(t, resp, http.StatusTooManyRequests, codeOverloaded)

	dup, status := submitJob(t, ts.URL, jobRequest(9))
	if status != http.StatusOK || dup.ID != first.ID {
		t.Errorf("duplicate under saturation: status %d id %s", status, dup.ID)
	}
	close(release)
	waitJob(t, ts.URL, first.ID, func(i JobInfo) bool { return i.State == "completed" }, "completed")
}

// TestJobDeleteSemantics: DELETE cancels a running job (202, then the
// cancelled state lands and followers get the in-band error), removes a
// terminal job (204), and unknown ids 404.
func TestJobDeleteSemantics(t *testing.T) {
	ts, _, obs := newTestServer(t, Options{})
	registerPaper(t, ts.URL)

	reached, release := gateAtSecondTau(obs)
	defer obs.set(nil)
	info, _ := submitJob(t, ts.URL, jobRequest(9))
	<-reached

	del := func(id string) *http.Response {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := del(info.ID)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE running job: status %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
	close(release) // let the cancelled sweep unwind through the gate
	cancelled := waitJob(t, ts.URL, info.ID, func(i JobInfo) bool { return i.State == "cancelled" }, "cancelled")
	if cancelled.Error == nil || cancelled.Error.Code != "cancelled" {
		t.Fatalf("cancelled job error %+v", cancelled.Error)
	}
	rows, terminal := readJobStream(t, ts.URL, info.ID, 0)
	if terminal == nil || terminal.Code != "cancelled" {
		t.Fatalf("cancelled stream terminal %+v after %d rows", terminal, len(rows))
	}

	resp = del(info.ID)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE terminal job: status %d, want 204", resp.StatusCode)
	}
	resp.Body.Close()
	wantErrorCode(t, del(info.ID), http.StatusNotFound, codeUnknownJob)
}

// TestDatasetDeleteCancelsJobs: deleting a dataset cancels its running
// jobs with the structured dataset_deleted error, frees their slots, and
// drops them from the registry so the id does not resurrect.
func TestDatasetDeleteCancelsJobs(t *testing.T) {
	ts, srv, obs := newTestServer(t, Options{MaxSweepsPerDataset: 1})
	registerPaper(t, ts.URL)

	reached, release := gateAtSecondTau(obs)
	defer obs.set(nil)
	info, _ := submitJob(t, ts.URL, jobRequest(9))
	<-reached

	// Attach a follower and read the first row before deleting, so the
	// stream is provably live when the cascade fires.
	stream, err := http.Get(ts.URL + "/v1/jobs/" + info.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	if !sc.Scan() {
		t.Fatalf("no first row while the sweep is gated: %v", sc.Err())
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/paper", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE dataset: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	close(release)

	// The follower drains any remaining rows and ends on the structured
	// dataset_deleted frame.
	var terminal *ErrorDetail
	for sc.Scan() {
		var eb ErrorBody
		if json.Unmarshal(sc.Bytes(), &eb) == nil && eb.Error.Code != "" {
			terminal = &eb.Error
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if terminal == nil || terminal.Code != codeDatasetDeleted {
		t.Fatalf("follower terminal %+v, want %s", terminal, codeDatasetDeleted)
	}
	// The job drops from the registry once the sweep unwinds, and its
	// admission slot frees with it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + info.ID)
		if err != nil {
			t.Fatal(err)
		}
		gone := resp.StatusCode == http.StatusNotFound
		resp.Body.Close()
		if gone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dataset-deleted job still resolvable")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.statzBody().Jobs; got.Active != 0 {
		t.Errorf("jobs active = %d after cascade", got.Active)
	}
}

// TestWarmSessionEviction: with MaxWarmSessions=1 the least recently swept
// dataset loses its session (counted), and rebuilds it on its next sweep.
func TestWarmSessionEviction(t *testing.T) {
	want := frontierFrames(t, 9)
	ts, srv, _ := newTestServer(t, Options{MaxWarmSessions: 1})
	registerPaper(t, ts.URL)
	registerCities(t, ts.URL)

	assertFullFrontier(t, http.DefaultClient, ts.URL, want, "warm paper")
	body := srv.statzBody()
	if body.WarmSessions != 1 || body.SessionsEvicted != 0 {
		t.Fatalf("after one sweep: warm=%d evicted=%d", body.WarmSessions, body.SessionsEvicted)
	}

	// Sweeping cities evicts paper's session (LRU, cap 1).
	resp := postJSON(t, ts.URL+"/v1/repair", RepairRequest{Dataset: "cities", FDs: multiFDs, Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cities sweep: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	body = srv.statzBody()
	if body.WarmSessions != 1 || body.SessionsEvicted != 1 {
		t.Fatalf("after second dataset: warm=%d evicted=%d, want 1/1", body.WarmSessions, body.SessionsEvicted)
	}

	// Paper sweeps again identically — through a rebuilt session.
	assertFullFrontier(t, http.DefaultClient, ts.URL, want, "rebuilt paper")
	if d := srv.lookup("paper").statz(); d.SessionBuilds != 2 {
		t.Errorf("paper session builds = %d, want 2 (evict then rebuild)", d.SessionBuilds)
	}
}

// TestJobResultsEviction: MaxJobResultsBytes drops the oldest terminal
// job (memory and disk) while the newest stays streamable.
func TestJobResultsEviction(t *testing.T) {
	jobsDir := t.TempDir()
	ts, srv, _ := newJobServer(t, "", jobsDir, Options{MaxJobResultsBytes: 1})
	registerPaper(t, ts.URL)

	first, _ := submitJob(t, ts.URL, jobRequest(9))
	waitJob(t, ts.URL, first.ID, func(i JobInfo) bool { return i.State == "completed" }, "completed")
	// The sole terminal job is over the cap but never evicted: the most
	// recently finished frontier stays streamable.
	if _, terminal := readJobStream(t, ts.URL, first.ID, 0); terminal != nil {
		t.Fatalf("sole job evicted: %+v", terminal)
	}

	second, _ := submitJob(t, ts.URL, jobRequest(10))
	if second.ID == first.ID {
		t.Fatal("distinct seeds coalesced")
	}
	waitJob(t, ts.URL, second.ID, func(i JobInfo) bool { return i.State == "completed" }, "completed")

	resp, err := http.Get(ts.URL + "/v1/jobs/" + first.ID)
	if err != nil {
		t.Fatal(err)
	}
	wantErrorCode(t, resp, http.StatusNotFound, codeUnknownJob)
	if got := srv.statzBody().Jobs.ResultsEvictedBytes; got <= 0 {
		t.Errorf("results_evicted_bytes = %d, want > 0", got)
	}
	// Disk agrees: only the surviving job's files remain.
	js, err := store.OpenJobs(jobsDir, store.Options{Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := js.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].Record.ID != second.ID {
		t.Fatalf("durable store holds %d jobs, want only %s", len(recovered), second.ID)
	}
}

// TestJobResumesAcrossRestart is the restart acceptance test at the
// handler level: a job interrupted by shutdown mid-sweep keeps its durable
// record "running"; a second server over the same directories resumes it
// from the last checkpointed τ, and the resumed job's full stream is
// byte-identical to an uninterrupted run.
func TestJobResumesAcrossRestart(t *testing.T) {
	want := frontierFrames(t, 9)
	dataDir, jobsDir := t.TempDir(), t.TempDir()

	ts1, srv1, obs1 := newJobServer(t, dataDir, jobsDir, Options{})
	registerPaper(t, ts1.URL)
	reached, release := gateAtSecondTau(obs1)
	info, _ := submitJob(t, ts1.URL, jobRequest(9))
	<-reached
	// At the gate at least one row is checkpointed and the sweep is
	// provably unfinished. Interrupt it: the durable record stays
	// "running".
	partial := getJob(t, ts1.URL, info.ID)
	if partial.Rows == 0 || partial.Rows >= len(want) {
		t.Fatalf("gated job checkpointed %d rows, want mid-sweep", partial.Rows)
	}
	srv1.BeginShutdown()
	close(release)
	obs1.set(nil)
	// Followers are told to re-attach after the restart; the frame also
	// confirms the interrupted sweep fully unwound.
	rows, terminal := readJobStream(t, ts1.URL, info.ID, 0)
	if terminal == nil || terminal.Code != codeShuttingDown {
		t.Fatalf("interrupted stream terminal %+v after %d rows", terminal, len(rows))
	}
	ts1.Close()
	srv1.Close()

	// "Reboot" over the same directories, the way cmd/relatrustd does.
	ts2, srv2, _ := newJobServer(t, dataDir, jobsDir, Options{})
	n, err := srv2.RecoverJobs()
	if err != nil || n != 1 {
		t.Fatalf("RecoverJobs = %d, %v, want 1 resumed", n, err)
	}
	done := waitJob(t, ts2.URL, info.ID, func(i JobInfo) bool { return i.State == "completed" }, "completed")
	if done.Rows != len(want) {
		t.Fatalf("resumed job finished with %d rows, want %d", done.Rows, len(want))
	}
	got, terminal := readJobStream(t, ts2.URL, info.ID, 0)
	if terminal != nil {
		t.Fatalf("resumed stream terminal %+v", terminal)
	}
	if len(got) != len(want) {
		t.Fatalf("resumed stream has %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d:\n  resumed %s\n  want    %s", i, got[i], want[i])
		}
	}
	if stz := srv2.statzBody().Jobs; stz.Resumed != 1 {
		t.Errorf("resumed counter = %d, want 1", stz.Resumed)
	}

	// A third boot resumes nothing: the record is terminal, but the
	// frontier replays from the log without re-running the sweep.
	ts3, srv3, _ := newJobServer(t, dataDir, jobsDir, Options{})
	n, err = srv3.RecoverJobs()
	if err != nil || n != 0 {
		t.Fatalf("third boot RecoverJobs = %d, %v, want 0", n, err)
	}
	replayed, terminal := readJobStream(t, ts3.URL, info.ID, 0)
	if terminal != nil || len(replayed) != len(want) {
		t.Fatalf("third-boot replay: %d rows, terminal %+v", len(replayed), terminal)
	}
	for i := range want {
		if replayed[i] != want[i] {
			t.Errorf("third-boot row %d differs", i)
		}
	}
	if d := srv3.lookup("paper").statz(); d.SweepsStarted != 0 {
		t.Errorf("third boot started %d sweeps, want 0 (replay only)", d.SweepsStarted)
	}
}
