package live

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"relatrust/internal/components"
	"relatrust/internal/conflict"
	"relatrust/internal/fd"
	"relatrust/internal/relation"
	"relatrust/internal/testkit"
)

// randTuple draws a random tuple over the small test domain — the same
// value space testkit.RandomInstance uses, so mutations both create and
// destroy violations.
func randTuple(rng *rand.Rand, width, dom int) relation.Tuple {
	t := make(relation.Tuple, width)
	for a := range t {
		t[a] = relation.Const(fmt.Sprintf("v%d", rng.Intn(dom)))
	}
	return t
}

// randBatch draws a mixed batch of 1..6 ops against a table of n rows and
// returns the expected row count after it.
func randBatch(rng *rand.Rand, n, width, dom int) ([]Op, int) {
	k := 1 + rng.Intn(6)
	ops := make([]Op, 0, k)
	for i := 0; i < k; i++ {
		switch {
		case n == 0 || rng.Intn(3) == 0:
			ops = append(ops, Op{Kind: OpInsert, Tuple: randTuple(rng, width, dom)})
			n++
		case rng.Intn(2) == 0:
			ops = append(ops, Op{Kind: OpUpdate, Row: rng.Intn(n), Tuple: randTuple(rng, width, dom)})
		default:
			ops = append(ops, Op{Kind: OpDelete, Row: rng.Intn(n)})
			n--
		}
	}
	return ops, n
}

// randExt draws a random extension vector; a third of the draws are nil
// (the base cover query).
func randExt(rng *rand.Rand, sigma fd.Set, width int) []relation.AttrSet {
	if rng.Intn(3) == 0 {
		return nil
	}
	ext := make([]relation.AttrSet, len(sigma))
	for fi := range ext {
		for a := 0; a < width; a++ {
			if rng.Intn(width+1) == 0 {
				ext[fi] = ext[fi].Add(a)
			}
		}
	}
	return ext
}

// checkAgainstRebuild asserts the table's current spliced analysis and
// evaluator for sigma answer bit-identically to a from-scratch rebuild of
// the current instance: cluster arenas equal in content AND order (the
// capped samplers are order-sensitive), and CoverSize equal over random
// extension vectors through both the analysis and the spliced evaluator.
func checkAgainstRebuild(t *testing.T, tb *Table, sigma fd.Set, rng *rand.Rand, trials int) {
	t.Helper()
	cur, eng, _ := tb.Snapshot()
	spliced := eng.Acquire(sigma)
	defer eng.Release(spliced)
	fresh := conflict.New(cur, sigma)
	for fi := range sigma {
		if got, want := spliced.NumClusters(fi), fresh.NumClusters(fi); got != want {
			t.Fatalf("FD %d: spliced has %d clusters, rebuild has %d", fi, got, want)
		}
		for ci := 0; ci < fresh.NumClusters(fi); ci++ {
			g, w := spliced.ClusterTuples(fi, ci), fresh.ClusterTuples(fi, ci)
			if len(g) != len(w) {
				t.Fatalf("FD %d cluster %d: spliced %v, rebuild %v", fi, ci, g, w)
			}
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("FD %d cluster %d: spliced %v, rebuild %v", fi, ci, g, w)
				}
			}
		}
	}
	ev := eng.CoverEvaluator(sigma)
	width := cur.Schema.Width()
	for trial := 0; trial < trials; trial++ {
		ext := randExt(rng, sigma, width)
		want := fresh.CoverSize(ext)
		if got := spliced.CoverSize(ext); got != want {
			t.Fatalf("trial %d: spliced CoverSize = %d, rebuild = %d (ext %v)", trial, got, want, ext)
		}
		if got := ev.CoverSize(spliced, ext); got != want {
			t.Fatalf("trial %d: spliced evaluator CoverSize = %d, rebuild = %d (ext %v)", trial, got, want, ext)
		}
	}
}

// TestApplyMatchesRebuild is the tier's core oracle: over randomized
// insert/update/delete streams, after every batch the incrementally
// spliced analysis and component evaluator must be indistinguishable from
// throwing everything away and re-analyzing the mutated instance.
func TestApplyMatchesRebuild(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const width, dom = 4, 2
			in := testkit.RandomInstance(rng, 30+rng.Intn(30), width, dom)
			sigma := testkit.RandomFDs(rng, width, 2, 2)
			tb := NewTable(in, 1)

			// Warm the root and its evaluator so batches splice rather than
			// cold-build.
			_, eng, _ := tb.Snapshot()
			eng.Release(eng.Acquire(sigma))
			eng.CoverEvaluator(sigma)

			n := in.N()
			for batch := 0; batch < 30; batch++ {
				ops, wantN := randBatch(rng, n, width, dom)
				res, err := tb.Apply(ops, nil)
				if err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				if res.NewN != wantN {
					t.Fatalf("batch %d: NewN = %d, want %d", batch, res.NewN, wantN)
				}
				n = res.NewN
				if got := tb.Generation(); got != res.Generation {
					t.Fatalf("batch %d: table generation %d, result says %d", batch, got, res.Generation)
				}
				checkAgainstRebuild(t, tb, sigma, rng, 40)
			}
			st := tb.Stats()
			if st.MutationsApplied == 0 {
				t.Fatalf("no mutations recorded")
			}
		})
	}
}

// TestSnapshotIsolation pins the structural isolation guarantee: an
// engine acquired before a batch keeps answering for its own instance —
// bit-identically to a rebuild of that instance — after arbitrarily many
// later batches have been committed.
func TestSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const width, dom = 4, 2
	in := testkit.RandomInstance(rng, 50, width, dom)
	sigma := testkit.RandomFDs(rng, width, 2, 2)
	tb := NewTable(in, 7)

	oldIn, oldEng, oldGen := tb.Snapshot()
	oldEng.Release(oldEng.Acquire(sigma))
	oldEng.CoverEvaluator(sigma)
	if oldGen != 7 {
		t.Fatalf("initial generation = %d, want 7", oldGen)
	}

	n := in.N()
	for batch := 0; batch < 10; batch++ {
		ops, wantN := randBatch(rng, n, width, dom)
		if _, err := tb.Apply(ops, nil); err != nil {
			t.Fatal(err)
		}
		n = wantN
	}
	if g := tb.Generation(); g == oldGen {
		t.Fatalf("generation did not advance")
	}

	// The old engine — the one a mid-sweep materialization would re-acquire
	// from — still answers for the pre-mutation instance.
	a := oldEng.Acquire(sigma)
	defer oldEng.Release(a)
	ref := conflict.New(oldIn, sigma)
	ev := oldEng.CoverEvaluator(sigma)
	for trial := 0; trial < 60; trial++ {
		ext := randExt(rng, sigma, width)
		want := ref.CoverSize(ext)
		if got := a.CoverSize(ext); got != want {
			t.Fatalf("old snapshot drifted: CoverSize = %d, want %d", got, want)
		}
		if got := ev.CoverSize(a, ext); got != want {
			t.Fatalf("old evaluator drifted: CoverSize = %d, want %d", got, want)
		}
	}
}

// TestEvictThenApply checks Evict drops the warm state without losing
// correctness: the next batch cold-rebuilds and the oracle still holds.
func TestEvictThenApply(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const width, dom = 4, 2
	in := testkit.RandomInstance(rng, 40, width, dom)
	sigma := testkit.RandomFDs(rng, width, 2, 2)
	tb := NewTable(in, 1)
	n := in.N()
	for batch := 0; batch < 4; batch++ {
		ops, wantN := randBatch(rng, n, width, dom)
		if _, err := tb.Apply(ops, nil); err != nil {
			t.Fatal(err)
		}
		n = wantN
	}
	gen := tb.Generation()
	tb.Evict()
	if g := tb.Generation(); g != gen {
		t.Fatalf("Evict changed the generation: %d -> %d", gen, g)
	}
	_, eng, _ := tb.Snapshot()
	eng.Release(eng.Acquire(sigma))
	eng.CoverEvaluator(sigma)
	for batch := 0; batch < 4; batch++ {
		ops, wantN := randBatch(rng, n, width, dom)
		if _, err := tb.Apply(ops, nil); err != nil {
			t.Fatal(err)
		}
		n = wantN
		checkAgainstRebuild(t, tb, sigma, rng, 30)
	}
}

// TestSwapRemoveMoves pins the delete renumbering contract: deleting a
// non-last row moves the last row into its slot and reports the move.
func TestSwapRemoveMoves(t *testing.T) {
	in := testkit.Build([]string{"A", "B"}, [][]string{
		{"a0", "b0"},
		{"a1", "b1"},
		{"a2", "b2"},
	})
	tb := NewTable(in, 1)
	res, err := tb.Apply([]Op{{Kind: OpDelete, Row: 0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moves) != 1 || res.Moves[0] != (Move{From: 2, To: 0}) {
		t.Fatalf("moves = %v, want [{2 0}]", res.Moves)
	}
	if res.NewN != 2 {
		t.Fatalf("NewN = %d, want 2", res.NewN)
	}
	cur, _, _ := tb.Snapshot()
	if got := cur.Tuples[0][0].Str(); got != "a2" {
		t.Fatalf("row 0 = %q after swap-remove, want a2", got)
	}
	// Deleting the last row moves nothing.
	res, err = tb.Apply([]Op{{Kind: OpDelete, Row: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moves) != 0 {
		t.Fatalf("deleting the last row reported moves %v", res.Moves)
	}
}

// TestBadOpsRejectWholeBatch checks validation: any invalid op aborts the
// whole batch with ErrBadOp and the table unchanged.
func TestBadOpsRejectWholeBatch(t *testing.T) {
	in := testkit.Build([]string{"A", "B"}, [][]string{{"a", "b"}, {"a", "c"}})
	tb := NewTable(in, 3)
	bad := [][]Op{
		{{Kind: OpUpdate, Row: 5, Tuple: relation.Tuple{relation.Const("x"), relation.Const("y")}}},
		{{Kind: OpUpdate, Row: -1, Tuple: relation.Tuple{relation.Const("x"), relation.Const("y")}}},
		{{Kind: OpDelete, Row: 2}},
		{{Kind: OpInsert, Tuple: relation.Tuple{relation.Const("x")}}},
		{{Kind: OpKind(99)}},
		// Valid prefix, invalid tail: the prefix must not stick either.
		{
			{Kind: OpInsert, Tuple: relation.Tuple{relation.Const("x"), relation.Const("y")}},
			{Kind: OpDelete, Row: 40},
		},
	}
	for i, ops := range bad {
		if _, err := tb.Apply(ops, nil); !errors.Is(err, ErrBadOp) {
			t.Fatalf("batch %d: err = %v, want ErrBadOp", i, err)
		}
		if g := tb.Generation(); g != 3 {
			t.Fatalf("batch %d advanced the generation to %d", i, g)
		}
		if cur, _, _ := tb.Snapshot(); cur.N() != 2 {
			t.Fatalf("batch %d changed the instance", i)
		}
	}
	// Row indices address the evolving batch state: deleting row 1 twice
	// from a 2-row table is invalid, but insert-then-update-the-insert is
	// valid.
	if _, err := tb.Apply([]Op{{Kind: OpDelete, Row: 1}, {Kind: OpDelete, Row: 1}}, nil); !errors.Is(err, ErrBadOp) {
		t.Fatalf("double delete of the shrunk row accepted")
	}
	res, err := tb.Apply([]Op{
		{Kind: OpInsert, Tuple: relation.Tuple{relation.Const("p"), relation.Const("q")}},
		{Kind: OpUpdate, Row: 2, Tuple: relation.Tuple{relation.Const("p"), relation.Const("r")}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 || res.NewN != 3 {
		t.Fatalf("insert+update batch: applied %d rows %d", res.Applied, res.NewN)
	}
}

// TestNoOpBatch checks identical updates and empty batches commit nothing.
func TestNoOpBatch(t *testing.T) {
	in := testkit.Build([]string{"A", "B"}, [][]string{{"a", "b"}})
	tb := NewTable(in, 2)
	res, err := tb.Apply([]Op{
		{Kind: OpUpdate, Row: 0, Tuple: relation.Tuple{relation.Const("a"), relation.Const("b")}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 0 || res.Generation != 2 {
		t.Fatalf("no-op update committed: applied %d generation %d", res.Applied, res.Generation)
	}
	res, err = tb.Apply(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 2 || res.NewN != 1 {
		t.Fatalf("empty batch committed: %+v", res)
	}
}

// TestPrecommitAbort checks a precommit error rolls the batch back: the
// table keeps its generation, instance, and engine, and a later batch
// still splices correctly.
func TestPrecommitAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const width, dom = 4, 2
	in := testkit.RandomInstance(rng, 30, width, dom)
	sigma := testkit.RandomFDs(rng, width, 2, 2)
	tb := NewTable(in, 1)
	_, eng, _ := tb.Snapshot()
	eng.Release(eng.Acquire(sigma))

	boom := errors.New("disk full")
	var sawN int
	_, err := tb.Apply([]Op{{Kind: OpInsert, Tuple: randTuple(rng, width, dom)}}, func(next *relation.Instance) error {
		sawN = next.N()
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the precommit error", err)
	}
	if sawN != 31 {
		t.Fatalf("precommit saw %d rows, want the post-batch 31", sawN)
	}
	if g := tb.Generation(); g != 1 {
		t.Fatalf("aborted batch advanced the generation to %d", g)
	}
	cur, curEng, _ := tb.Snapshot()
	if cur != in || curEng != eng {
		t.Fatalf("aborted batch swapped the snapshot")
	}
	// The tier still works after the abort.
	if _, err := tb.Apply([]Op{{Kind: OpInsert, Tuple: randTuple(rng, width, dom)}}, nil); err != nil {
		t.Fatal(err)
	}
	checkAgainstRebuild(t, tb, sigma, rng, 30)
}

// TestDirtiedCounter sanity-checks the observability counter: a batch
// that rewrites a violating cluster reports at least one dirtied
// component when the root had an evaluator.
func TestDirtiedCounter(t *testing.T) {
	in := testkit.Build([]string{"A", "B"}, [][]string{
		{"a", "b1"},
		{"a", "b2"},
		{"c", "d"},
	})
	sigma := fd.MustParseSet(in.Schema, "A->B")
	tb := NewTable(in, 1)
	_, eng, _ := tb.Snapshot()
	eng.Release(eng.Acquire(sigma))
	eng.CoverEvaluator(sigma)
	res, err := tb.Apply([]Op{
		{Kind: OpUpdate, Row: 1, Tuple: relation.Tuple{relation.Const("a"), relation.Const("b1")}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ComponentsDirtied == 0 {
		t.Fatalf("repairing the only violation dirtied no component")
	}
	if st := tb.Stats(); st.ComponentsDirtied == 0 || st.MutationsApplied != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The violation is gone now.
	cur, eng2, _ := tb.Snapshot()
	a := eng2.Acquire(sigma)
	defer eng2.Release(a)
	if a.ViolatingTuples() != 0 {
		t.Fatalf("violations remain after the repair update: %s", a.DescribeClusters())
	}
	if ev := eng2.CoverEvaluator(sigma); ev.Decomposition().Components() != 0 {
		t.Fatalf("components remain after the repair update")
	}
	_ = cur
}

// TestSplicedSamplersMatch pins the order-sensitive surfaces: the capped
// edge and diff-set samplers of a spliced analysis must equal a rebuild's
// byte for byte (they iterate the cluster arenas in order).
func TestSplicedSamplersMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const width, dom = 4, 2
	in := testkit.RandomInstance(rng, 60, width, dom)
	sigma := testkit.RandomFDs(rng, width, 2, 2)
	tb := NewTable(in, 1)
	_, eng, _ := tb.Snapshot()
	eng.Release(eng.Acquire(sigma))
	n := in.N()
	for batch := 0; batch < 8; batch++ {
		ops, wantN := randBatch(rng, n, width, dom)
		if _, err := tb.Apply(ops, nil); err != nil {
			t.Fatal(err)
		}
		n = wantN
	}
	cur, eng2, _ := tb.Snapshot()
	spliced := eng2.Acquire(sigma)
	defer eng2.Release(spliced)
	fresh := conflict.New(cur, sigma)
	if got, want := spliced.DescribeClusters(), fresh.DescribeClusters(); got != want {
		t.Fatalf("cluster description diverged:\nspliced: %s\nrebuild: %s", got, want)
	}
	gotE, wantE := spliced.MatchingEdgeSample(16), fresh.MatchingEdgeSample(16)
	if len(gotE) != len(wantE) {
		t.Fatalf("edge samples diverged: %d vs %d edges", len(gotE), len(wantE))
	}
	for i := range gotE {
		if gotE[i] != wantE[i] {
			t.Fatalf("edge sample %d diverged: %v vs %v", i, gotE[i], wantE[i])
		}
	}
	gotD, wantD := spliced.DiffSets(8), fresh.DiffSets(8)
	if len(gotD) != len(wantD) {
		t.Fatalf("diff sets diverged: %d vs %d", len(gotD), len(wantD))
	}
	for i := range gotD {
		if gotD[i].Attrs != wantD[i].Attrs || gotD[i].Count() != wantD[i].Count() {
			t.Fatalf("diff set %d diverged: %+v vs %+v", i, gotD[i], wantD[i])
		}
	}
	// The evaluator derived through the whole batch sequence still matches.
	ev := eng2.CoverEvaluator(sigma)
	fev := components.NewEvaluator(fresh)
	for trial := 0; trial < 40; trial++ {
		ext := randExt(rng, sigma, width)
		if got, want := ev.CoverSize(spliced, ext), fev.CoverSize(fresh, ext); got != want {
			t.Fatalf("trial %d: spliced evaluator %d, fresh evaluator %d", trial, got, want)
		}
	}
}
